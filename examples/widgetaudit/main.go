// Widgetaudit reproduces the §5 case study on a single synthetic page:
// an e-commerce site embedding a LiveChat-style customer-support widget
// with the exact §5.2 delegation template. The audit visits the page,
// compares delegated permissions against observed usage, and reports
// the over-permissioning and wildcard-hijack risks.
//
//	go run ./examples/widgetaudit
package main

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"strings"

	"permodyssey/internal/browser"
	"permodyssey/internal/core"
	"permodyssey/internal/policy"
	"permodyssey/internal/static"
)

// The §5.2 LiveChat template, verbatim.
const liveChatAllow = "clipboard-read; clipboard-write; autoplay; microphone *; camera *; display-capture *; picture-in-picture *; fullscreen *;"

func main() {
	page := func(body string) *browser.Response {
		return &browser.Response{Status: 200, Header: http.Header{}, Body: body}
	}
	fetcher := browser.MapFetcher{
		"https://shop.example/": page(fmt.Sprintf(
			`<html><body>
			<iframe src="https://chat.vendor.example/widget" allow=%q></iframe>
			</body></html>`, liveChatAllow)),
		// The widget performs no permission-related work: instead of a
		// video call it sends a meeting URL (§5.2).
		"https://chat.vendor.example/widget": page(`
			<script>
			window.addEventListener('load', function () {
				fetch('/meeting').then(function (r) { console.log('meeting url sent'); });
			});
			</script>`),
	}

	b := browser.New(fetcher, browser.DefaultOptions())
	result, err := b.Visit(context.Background(), "https://shop.example/")
	if err != nil {
		fmt.Fprintln(os.Stderr, "widgetaudit:", err)
		os.Exit(1)
	}

	fmt.Println("== Widget audit: shop.example ==")
	for _, f := range result.EmbeddedFrames() {
		delegated, _ := policy.ParseAllowAttr(f.Element.Allow)
		used := map[string]bool{}
		for _, inv := range f.Invocations {
			for _, p := range inv.Permissions {
				used[p] = true
			}
		}
		for _, p := range static.Permissions(f.StaticFindings) {
			used[p] = true
		}
		fmt.Printf("\nframe %s\n  delegated: %s\n", f.URL, f.Element.Allow)
		var unused, wildcard []string
		for _, d := range delegated.Directives {
			if !used[d.Feature] {
				unused = append(unused, d.Feature)
			}
			if d.Allowlist.All {
				wildcard = append(wildcard, d.Feature)
			}
		}
		fmt.Printf("  observed usage: %d permission-related calls, %d static findings\n",
			len(f.Invocations), len(f.StaticFindings))
		fmt.Printf("  UNUSED delegations: %s\n", strings.Join(unused, ", "))
		fmt.Printf("  wildcard delegations (survive redirects, §5.2): %s\n", strings.Join(wildcard, ", "))
	}

	// What the developer should deploy instead.
	rec, err := core.RecommendFromPage(result)
	if err != nil {
		fmt.Fprintln(os.Stderr, "widgetaudit:", err)
		os.Exit(1)
	}
	fmt.Println("\n== Recommendation (§5.3 / §6.3) ==")
	fmt.Println("Permissions-Policy:", truncate(rec.Header, 120))
	for _, fa := range rec.FrameAdvice {
		fmt.Printf("iframe %s → allow=%q\n", fa.FrameURL, fa.SuggestedAllow)
	}
	for _, f := range rec.Findings {
		fmt.Println("finding:", f)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
