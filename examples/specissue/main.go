// Specissue demonstrates the §6.2 local-scheme delegation bypass end to
// end through the mini browser — not just the policy engine — including
// the CSP interaction: with no frame-src directive the attack works;
// with frame-src 'self' the injected data: frame never loads.
//
//	go run ./examples/specissue
package main

import (
	"context"
	"fmt"
	"net/http"
	"os"

	"permodyssey/internal/browser"
	"permodyssey/internal/policy"
)

func main() {
	mkFetcher := func(csp string) browser.MapFetcher {
		headers := http.Header{}
		headers.Set("Permissions-Policy", "camera=(self)")
		if csp != "" {
			headers.Set("Content-Security-Policy", csp)
		}
		return browser.MapFetcher{
			// The victim page. The attacker injected (e.g. via HTML
			// injection under a CSP that stops scripts but not frames)
			// a data: iframe that re-delegates camera outward.
			"https://victim.example/": {Status: 200, Header: headers, Body: `
				<html><body>
				<h1>victim.example — Permissions-Policy: camera=(self)</h1>
				<iframe src="data:text/html,<iframe src='https://attacker.example/spy' allow='camera'></iframe>" allow="camera"></iframe>
				</body></html>`},
			"https://attacker.example/spy": {Status: 200, Header: http.Header{}, Body: `
				<script>
				navigator.mediaDevices.getUserMedia({video: true})
					.then(function (s) { console.log('camera hijacked'); })
					.catch(function (e) { console.log('blocked'); });
				</script>`},
		}
	}

	run := func(label, csp string, mode policy.SpecMode) {
		opts := browser.DefaultOptions()
		opts.Mode = mode
		b := browser.New(mkFetcher(csp), opts)
		page, err := b.Visit(context.Background(), "https://victim.example/")
		if err != nil {
			fmt.Fprintln(os.Stderr, "specissue:", err)
			os.Exit(1)
		}
		outcome := "attacker frame not loaded (CSP blocked the injection)"
		for _, f := range page.Frames {
			if f.URL != "https://attacker.example/spy" {
				continue
			}
			outcome = "attacker camera BLOCKED"
			for _, inv := range f.Invocations {
				if !inv.Blocked {
					outcome = "attacker camera GRANTED — permission hijacked"
				}
			}
		}
		fmt.Printf("%-46s → %s\n", label, outcome)
	}

	fmt.Println("victim declares Permissions-Policy: camera=(self)")
	fmt.Println()
	run("spec as written (Chromium), no CSP", "", policy.SpecActual)
	run("expected behaviour, no CSP", "", policy.SpecExpected)
	run("spec as written + CSP frame-src 'self'", "frame-src 'self'", policy.SpecActual)
}
