// Headeradvisor is the paper's second developer tool (§6.3): it crawls
// a website including an interaction pass (like a developer clicking
// through the site), observes every permission the site and its iframes
// actually use — including ones gated behind clicks — and suggests the
// least-privilege Permissions-Policy header and allow attributes.
//
//	go run ./examples/headeradvisor
package main

import (
	"context"
	"fmt"
	"net/http"
	"os"

	"permodyssey/internal/browser"
	"permodyssey/internal/core"
)

func main() {
	page := func(body string, headers map[string]string) *browser.Response {
		h := http.Header{}
		for k, v := range headers {
			h.Set(k, v)
		}
		return &browser.Response{Status: 200, Header: h, Body: body}
	}
	// A storefront: geolocation behind a "stores near me" button,
	// checkout iframe using payment, maps iframe using geolocation.
	fetcher := browser.MapFetcher{
		"https://store.example/": page(`
			<html><body>
			<div id="near-me"></div>
			<script>
			document.getElementById('near-me').addEventListener('click', function () {
				navigator.geolocation.getCurrentPosition(function (p) {});
			});
			</script>
			<iframe src="https://pay.example/checkout" allow="payment; camera"></iframe>
			<iframe src="https://maps.example/embed" allow="geolocation *"></iframe>
			</body></html>`,
			map[string]string{"Permissions-Policy": "fullscreen=*"}),
		"https://pay.example/checkout": page(
			`<script>var r = new PaymentRequest([], {}); r.canMakePayment();</script>`, nil),
		"https://maps.example/embed": page(
			`<script>navigator.geolocation.getCurrentPosition(function (p) {}, function () {});</script>`, nil),
	}

	rec := &core.Recommender{Fetcher: fetcher, Interact: true}
	out, err := rec.Recommend(context.Background(), "https://store.example/")
	if err != nil {
		fmt.Fprintln(os.Stderr, "headeradvisor:", err)
		os.Exit(1)
	}

	fmt.Println("== Header advisor: store.example ==")
	fmt.Println("\npermissions observed in use:", out.UsedPermissions)
	fmt.Println("\nsuggested Permissions-Policy header:")
	fmt.Println(" ", out.Header)
	fmt.Println("\nper-iframe delegation advice:")
	for _, fa := range out.FrameAdvice {
		fmt.Printf("  %s\n    current:   allow=%q\n    suggested: allow=%q\n",
			fa.FrameURL, fa.CurrentAllow, fa.SuggestedAllow)
		if len(fa.UnusedDelegations) > 0 {
			fmt.Printf("    unused: %v\n", fa.UnusedDelegations)
		}
	}
	fmt.Println("\nfindings (deployed config broader than ideal):")
	for _, f := range out.Findings {
		fmt.Println("  -", f)
	}
}
