// Fingerprint demonstrates the §4.1.1 observation the paper raises but
// does not exploit: "permission lists could fingerprint browsers and
// versions". A page script retrieves document.featurePolicy.features()
// — exactly what 482,309 measured contexts do — and the observer maps
// the returned surface back to candidate engine versions.
//
//	go run ./examples/fingerprint
package main

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"strings"

	"permodyssey/internal/browser"
	"permodyssey/internal/origin"
	"permodyssey/internal/permissions"
	"permodyssey/internal/policy"
	"permodyssey/internal/webapi"
)

func main() {
	// 1) A tracking script harvests the full permission surface.
	fetcher := browser.MapFetcher{
		"https://victim.example/": {Status: 200, Header: http.Header{}, Body: `
			<script src="https://tracker.example/fp.js"></script>`},
		"https://tracker.example/fp.js": {Status: 200, Body: `
			var surface = document.featurePolicy.features();
			window.__exfil = surface.join(',');
		`},
	}
	b := browser.New(fetcher, browser.DefaultOptions())
	if _, err := b.Visit(context.Background(), "https://victim.example/"); err != nil {
		fmt.Fprintln(os.Stderr, "fingerprint:", err)
		os.Exit(1)
	}

	// 2) Re-run the harvest against realms emulating different browser
	// versions and identify each from the surface alone.
	fmt.Println("observed permission surface → identified engine versions")
	for _, version := range []int{100, 114, 115, 127} {
		doc := policy.NewTopLevel(origin.MustParse("https://victim.example"), policy.Policy{})
		realm := webapi.NewRealm(doc, "https://victim.example/")
		realm.Version = version
		if err := realm.RunScript(`window.__exfil = document.featurePolicy.features().join(',');`, ""); err != nil {
			fmt.Fprintln(os.Stderr, "fingerprint:", err)
			os.Exit(1)
		}
		win, _ := realm.In.Global.Get("window")
		exfil, _ := win.Obj().Get("__exfil")
		surface := strings.Split(exfil.ToString(), ",")
		ranges := permissions.IdentifyFromSurface(surface)
		var labels []string
		for _, r := range ranges {
			labels = append(labels, r.String())
		}
		fmt.Printf("  actual Chromium %d (%2d features) → %s\n",
			version, len(surface), strings.Join(labels, ", "))
	}
	fmt.Printf("\ndistinct surfaces across tracked engines/versions: %d\n", permissions.SurfaceEntropy())
}
