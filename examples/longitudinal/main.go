// Longitudinal crawls the same seeded population under two synthweb
// eras — 2020's Feature-Policy web (few adopters, no
// Permissions-Policy yet) and the paper's 2024 web — seals each crawl
// into a Web Execution Bundle, and diffs the bundles into a drift
// report: header adoption moving after the rename, permissions newly
// declared or dropped, delegation changes. It is the in-process shape
// of:
//
//	permcrawl -era 2020 -cache-dir a20 -bundle era2020.bundle ...
//	permcrawl -era 2024 -cache-dir a24 -bundle era2024.bundle ...
//	permreport -diff-bundles era2020.bundle era2024.bundle
//
//	go run ./examples/longitudinal
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"permodyssey/internal/cli"
)

func main() {
	work, err := os.MkdirTemp("", "longitudinal-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "longitudinal:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(work)

	// One population skeleton (same sites, same seed), two header
	// climates: any drift between the bundles is era drift, not
	// population noise.
	seal := func(era string) string {
		path := filepath.Join(work, "era"+era+".bundle")
		args := []string{
			"-sites", "800", "-seed", "41", "-workers", "24",
			"-timeout", "2s", "-retries", "0", "-era", era,
			"-out", filepath.Join(work, "era"+era+".jsonl"),
			"-cache-dir", filepath.Join(work, "archive-"+era),
			"-bundle", path,
		}
		if code := cli.Crawl(context.Background(), args, io.Discard, os.Stderr); code != 0 {
			os.Exit(code)
		}
		return path
	}
	before, after := seal("2020"), seal("2024")

	if code := cli.Report([]string{"-diff-bundles", before, after}, os.Stdout, os.Stderr); code != 0 {
		os.Exit(code)
	}
	fmt.Println("Shape: Feature-Policy's small 2020 footprint gives way to")
	fmt.Println("Permissions-Policy adoption after the rename — while the deprecated")
	fmt.Println("API names live on in scripts (§6.2).")
}
