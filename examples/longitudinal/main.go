// Longitudinal compares header adoption across measurement eras,
// reproducing the trajectory from Kaleli et al.'s 2020 Feature-Policy
// study (few adopters, no Permissions-Policy header yet) through the
// rename to the paper's 2024 numbers (7.9% of documents).
//
//	go run ./examples/longitudinal
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"permodyssey/internal/core"
	"permodyssey/internal/synthweb"
)

func main() {
	fmt.Println("Header adoption across eras (top-level documents)")
	fmt.Printf("%-6s %22s %22s\n", "Era", "Permissions-Policy", "Feature-Policy")
	for _, year := range []int{2020, 2022, 2024} {
		opts := core.DefaultMeasurementOptions()
		opts.Web = synthweb.EraConfig(year)
		opts.Web.NumSites = 800
		opts.Web.Seed = int64(year)
		opts.Crawl.Workers = 24
		opts.Crawl.PerSiteTimeout = 400 * time.Millisecond
		opts.StallTime = 800 * time.Millisecond
		m, err := core.Run(context.Background(), opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "longitudinal:", err)
			os.Exit(1)
		}
		ad := m.Analysis.Figure2Adoption()
		fmt.Printf("%-6d %17.2f%% %21.2f%%\n", year, ad.PPTopLevelPct,
			100*float64(ad.FPDocuments)/float64(max(1, ad.Documents)))
	}
	fmt.Println("\nShape: Feature-Policy's small 2020 footprint gives way to")
	fmt.Println("Permissions-Policy adoption after the rename — while the deprecated")
	fmt.Println("API names live on in scripts (§6.2).")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
