// Quickstart: run a small end-to-end measurement — generate a 600-site
// synthetic web, crawl it, and print the paper-style report.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"permodyssey/internal/core"
)

func main() {
	opts := core.DefaultMeasurementOptions()
	opts.Web.NumSites = 600
	opts.Web.Seed = 2025
	opts.Crawl.Workers = 24
	opts.Crawl.PerSiteTimeout = 300 * time.Millisecond
	opts.StallTime = 600 * time.Millisecond
	opts.Log = os.Stderr

	m, err := core.Run(context.Background(), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
	fmt.Println(m.Report())
}
