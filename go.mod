module permodyssey

go 1.22
