// Command permfleet runs a distributed crawl: it forks N copies of
// itself as crawl workers, partitions the rank space among them
// (worker i crawls ranks ≡ i mod N), lets them populate one shared
// content-addressed archive through per-shard manifests, and merges
// the per-shard checkpoints and manifests back into the single
// dataset and archive a one-process crawl would have produced.
//
// Usage:
//
//	permfleet -procs 4 -out crawl.jsonl -cache-dir archive -- -sites 2000 -seed 13 -chaos
//	permfleet -procs 4 -out crawl.jsonl -merge-only   # re-merge after a worker failure
//	permfleet -procs 4 -out crawl.jsonl -cache-dir archive -bundle crawl.bundle -- -sites 2000
package main

import (
	"context"
	"os"
	"os/signal"
	"syscall"

	"permodyssey/internal/cli"
)

func main() {
	// Ctrl-C or a SIGTERM cancels the context: the driver propagates it
	// to every worker as SIGTERM, workers checkpoint and exit, and the
	// driver merges whatever completed before exiting nonzero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	args := os.Args[1:]
	// Re-exec dispatch: the driver spawns this same binary with a
	// sentinel first argument to run one shard's crawl.
	if len(args) > 0 && args[0] == cli.WorkerSentinel {
		os.Exit(cli.Crawl(ctx, args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(cli.Fleet(ctx, args, os.Stdout, os.Stderr))
}
