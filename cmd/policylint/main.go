// Command policylint lints Permissions-Policy / Feature-Policy header
// values and iframe allow attributes, reporting the misconfiguration
// classes the paper found in the wild (§4.3.3): syntax errors that drop
// the whole header (Feature-Policy syntax, misplaced commas),
// unrecognized tokens, unquoted origins, contradictory directives and
// url directives lacking self.
//
// Usage:
//
//	policylint -header "camera=(), geolocation=(self)"
//	policylint -header "camera 'none'"             # FP syntax → dropped
//	policylint -feature-policy "camera 'self'"
//	policylint -allow "camera *; microphone"
//	policylint -embedded -header "ch-ua=*"
package main

import (
	"os"

	"permodyssey/internal/cli"
)

func main() {
	os.Exit(cli.Lint(os.Args[1:], os.Stdout, os.Stderr))
}
