// Command permcrawl runs the full measurement: it generates a synthetic
// web calibrated to the paper's population, serves it on loopback,
// crawls every site with the mini browser, and stores the dataset as
// JSON lines for permreport to analyze.
//
// Usage:
//
//	permcrawl -sites 20000 -seed 1 -workers 32 -out crawl.jsonl
//	permcrawl -sites 2000 -interact -out crawl-interactive.jsonl
//	permcrawl -sites 2000 -follow-links 3 -out crawl-deep.jsonl
//	permcrawl -sites 2000 -cache-dir archive -bundle crawl.bundle -out crawl.jsonl
package main

import (
	"context"
	"os"
	"os/signal"
	"syscall"

	"permodyssey/internal/cli"
)

func main() {
	// SIGINT/SIGTERM cancel the crawl gracefully: in-flight visits are
	// abandoned as canceled, everything completed stays checkpointed in
	// -out, and the process exits 3 so a supervisor knows to -resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(cli.Crawl(ctx, os.Args[1:], os.Stdout, os.Stderr))
}
