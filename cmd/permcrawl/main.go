// Command permcrawl runs the full measurement: it generates a synthetic
// web calibrated to the paper's population, serves it on loopback,
// crawls every site with the mini browser, and stores the dataset as
// JSON lines for permreport to analyze.
//
// Usage:
//
//	permcrawl -sites 20000 -seed 1 -workers 32 -out crawl.jsonl
//	permcrawl -sites 2000 -interact -out crawl-interactive.jsonl
//	permcrawl -sites 2000 -follow-links 3 -out crawl-deep.jsonl
package main

import (
	"context"
	"os"

	"permodyssey/internal/cli"
)

func main() {
	os.Exit(cli.Crawl(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}
