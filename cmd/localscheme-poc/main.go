// Command localscheme-poc reproduces the specification issue of §6.2 /
// Table 11 (W3C webappsec-permissions-policy issue 552): local-scheme
// documents do not inherit their parent's declared Permissions-Policy,
// so a page declaring camera=(self) can be bypassed by a data: iframe
// that re-delegates camera to an arbitrary third party.
//
// Usage:
//
//	localscheme-poc
//	localscheme-poc -top https://bank.example -attacker https://evil.example
package main

import (
	"os"

	"permodyssey/internal/cli"
)

func main() {
	os.Exit(cli.PoC(os.Args[1:], os.Stdout, os.Stderr))
}
