// Command permreport regenerates the paper's tables and figures from a
// stored crawl dataset (produced by permcrawl).
//
// Usage:
//
//	permreport -in crawl.jsonl            # full report, all tables
//	permreport -in crawl.jsonl -table 9   # a single table
//	permreport -in crawl.jsonl -json      # machine-readable
//	permreport -in crawl.jsonl -html      # self-contained HTML page
//	permreport -from-bundle crawl.bundle  # verify a sealed bundle, re-analyze
//	permreport -diff-bundles a.bundle b.bundle  # longitudinal drift report
package main

import (
	"os"

	"permodyssey/internal/cli"
)

func main() {
	os.Exit(cli.Report(os.Args[1:], os.Stdout, os.Stderr))
}
