// Command policygen generates Permissions-Policy headers (the paper's
// header-generator website, Appendix A.7): disable everything, disable
// only powerful permissions, or a least-privilege header derived from a
// list of used permissions.
//
// Usage:
//
//	policygen -mode disable-all
//	policygen -mode disable-powerful -browser chromium -version 120
//	policygen -mode from-usage -used camera,geolocation -delegate camera=https://meet.example
//	policygen -mode disable-powerful -report-only
//	policygen -allow camera,microphone    # minimal iframe allow attribute
package main

import (
	"os"

	"permodyssey/internal/cli"
)

func main() {
	os.Exit(cli.Gen(os.Args[1:], os.Stdout, os.Stderr))
}
