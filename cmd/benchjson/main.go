// Command benchjson converts `go test -bench` text output on stdin
// into a JSON document on stdout, so CI can archive each run as a
// BENCH_*.json artifact and the perf trajectory accumulates in a
// machine-readable form.
//
//	go test -run '^$' -bench . -benchtime 1x . | benchjson > BENCH_local.json
//
// With -compare it instead diffs two such artifacts and fails when any
// benchmark regressed past the threshold — the CI perf gate:
//
//	benchjson -compare -threshold 0.35 BENCH_baseline.json BENCH_current.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the full converted run.
type Report struct {
	// Context lines: goos, goarch, pkg, cpu.
	Context map[string]string `json:"context,omitempty"`
	Results []Result          `json:"results"`
}

// parseLine parses one `go test -bench` output line, returning ok=false
// for non-benchmark lines (tables, PASS, context headers).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// The remainder alternates "value unit" pairs: 123 ns/op, 456 B/op...
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// contextKey extracts "goos: linux"-style header lines.
func contextKey(line string) (key, value string, ok bool) {
	for _, k := range []string{"goos", "goarch", "pkg", "cpu"} {
		if v, found := strings.CutPrefix(line, k+": "); found {
			return k, strings.TrimSpace(v), true
		}
	}
	return "", "", false
}

// convert reads bench text lines and builds the report.
func convert(lines []string) Report {
	rep := Report{Context: map[string]string{}, Results: []Result{}}
	for _, line := range lines {
		if k, v, ok := contextKey(line); ok {
			rep.Context[k] = v
			continue
		}
		if r, ok := parseLine(line); ok {
			rep.Results = append(rep.Results, r)
		}
	}
	return rep
}

// Delta is one benchmark's baseline-to-current movement.
type Delta struct {
	Name string
	// Old and New are ns/op; Ratio is New/Old - 1 (positive = slower).
	Old, New, Ratio float64
}

// compareReports diffs current against baseline on the ns/op metric.
// Benchmarks present on only one side are reported by name but never
// fail the gate: adding or retiring a benchmark is not a regression.
func compareReports(baseline, current Report) (deltas []Delta, onlyBaseline, onlyCurrent []string) {
	base := map[string]float64{}
	for _, r := range baseline.Results {
		if ns, ok := r.Metrics["ns/op"]; ok && ns > 0 {
			base[r.Name] = ns
		}
	}
	seen := map[string]bool{}
	for _, r := range current.Results {
		seen[r.Name] = true
		ns, ok := r.Metrics["ns/op"]
		if !ok || ns <= 0 {
			continue
		}
		old, ok := base[r.Name]
		if !ok {
			onlyCurrent = append(onlyCurrent, r.Name)
			continue
		}
		deltas = append(deltas, Delta{Name: r.Name, Old: old, New: ns, Ratio: ns/old - 1})
	}
	for name := range base {
		if !seen[name] {
			onlyBaseline = append(onlyBaseline, name)
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Ratio > deltas[j].Ratio })
	sort.Strings(onlyBaseline)
	sort.Strings(onlyCurrent)
	return deltas, onlyBaseline, onlyCurrent
}

// runCompare executes the gate, writing the verdict to w. It returns
// the benchmarks that regressed past threshold.
func runCompare(baseline, current Report, threshold float64, w io.Writer) []Delta {
	deltas, onlyBase, onlyCur := compareReports(baseline, current)
	var regressed []Delta
	for _, d := range deltas {
		verdict := "ok"
		if d.Ratio > threshold {
			verdict = "REGRESSED"
			regressed = append(regressed, d)
		}
		fmt.Fprintf(w, "%-50s %14.0f -> %14.0f ns/op  %+6.1f%%  %s\n",
			d.Name, d.Old, d.New, 100*d.Ratio, verdict)
	}
	for _, name := range onlyCur {
		fmt.Fprintf(w, "%-50s new benchmark (no baseline)\n", name)
	}
	for _, name := range onlyBase {
		fmt.Fprintf(w, "%-50s missing from current run\n", name)
	}
	return regressed
}

// loadReport reads a benchjson artifact from disk.
func loadReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func main() {
	compare := flag.Bool("compare", false, "compare two BENCH_*.json artifacts (baseline current) instead of converting stdin")
	threshold := flag.Float64("threshold", 0.35, "with -compare: fail when a benchmark's ns/op grew by more than this fraction")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare [-threshold f] baseline.json current.json")
			os.Exit(2)
		}
		baseline, err := loadReport(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		current, err := loadReport(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		regressed := runCompare(baseline, current, *threshold, os.Stdout)
		if len(regressed) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%%\n",
				len(regressed), 100**threshold)
			os.Exit(1)
		}
		return
	}

	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(convert(lines)); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
