// Command benchjson converts `go test -bench` text output on stdin
// into a JSON document on stdout, so CI can archive each run as a
// BENCH_*.json artifact and the perf trajectory accumulates in a
// machine-readable form.
//
//	go test -run '^$' -bench . -benchtime 1x . | benchjson > BENCH_local.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the full converted run.
type Report struct {
	// Context lines: goos, goarch, pkg, cpu.
	Context map[string]string `json:"context,omitempty"`
	Results []Result          `json:"results"`
}

// parseLine parses one `go test -bench` output line, returning ok=false
// for non-benchmark lines (tables, PASS, context headers).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// The remainder alternates "value unit" pairs: 123 ns/op, 456 B/op...
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// contextKey extracts "goos: linux"-style header lines.
func contextKey(line string) (key, value string, ok bool) {
	for _, k := range []string{"goos", "goarch", "pkg", "cpu"} {
		if v, found := strings.CutPrefix(line, k+": "); found {
			return k, strings.TrimSpace(v), true
		}
	}
	return "", "", false
}

// convert reads bench text lines and builds the report.
func convert(lines []string) Report {
	rep := Report{Context: map[string]string{}, Results: []Result{}}
	for _, line := range lines {
		if k, v, ok := contextKey(line); ok {
			rep.Context[k] = v
			continue
		}
		if r, ok := parseLine(line); ok {
			rep.Results = append(rep.Results, r)
		}
	}
	return rep
}

func main() {
	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(convert(lines)); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
