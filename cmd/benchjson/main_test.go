package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkCrawlCached \t       1\t25215013219 ns/op\t     36565 fetches/op\t        28.00 parses/op")
	if !ok {
		t.Fatal("line not recognised")
	}
	if r.Name != "BenchmarkCrawlCached" || r.Iterations != 1 {
		t.Errorf("parsed %+v", r)
	}
	if r.Metrics["ns/op"] != 25215013219 || r.Metrics["fetches/op"] != 36565 || r.Metrics["parses/op"] != 28 {
		t.Errorf("metrics = %v", r.Metrics)
	}

	for _, line := range []string{
		"PASS",
		"ok  \tpermodyssey\t25.870s",
		"goos: linux",
		"[bench BenchmarkCrawlCached]",
		"600 sites: 1151 HTTP fetches; 819 scripts executed, 27 parsed (cache)",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("non-benchmark line parsed: %q", line)
		}
	}
}

func TestConvert(t *testing.T) {
	rep := convert([]string{
		"goos: linux",
		"goarch: amd64",
		"pkg: permodyssey",
		"BenchmarkTable2_Characteristics-8   \t 8126787\t       147.5 ns/op",
		"BenchmarkCrawlUncached \t       1\t 622474887 ns/op\t      1665 fetches/op",
		"PASS",
	})
	if len(rep.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(rep.Results))
	}
	if rep.Context["goos"] != "linux" || rep.Context["pkg"] != "permodyssey" {
		t.Errorf("context = %v", rep.Context)
	}
	if rep.Results[0].Name != "BenchmarkTable2_Characteristics-8" || rep.Results[0].Iterations != 8126787 {
		t.Errorf("first result = %+v", rep.Results[0])
	}
}

// report builds a Report with the given name → ns/op pairs.
func report(nsop map[string]float64) Report {
	rep := Report{}
	for name, ns := range nsop {
		rep.Results = append(rep.Results, Result{Name: name, Iterations: 1, Metrics: map[string]float64{"ns/op": ns}})
	}
	return rep
}

func TestCompareReports(t *testing.T) {
	baseline := report(map[string]float64{"BenchA": 100, "BenchB": 200, "BenchGone": 50})
	current := report(map[string]float64{"BenchA": 110, "BenchB": 400, "BenchNew": 75})

	deltas, onlyBase, onlyCur := compareReports(baseline, current)
	if len(deltas) != 2 {
		t.Fatalf("deltas = %+v", deltas)
	}
	// Sorted worst-first: BenchB doubled, BenchA grew 10%.
	if deltas[0].Name != "BenchB" || deltas[0].Ratio != 1.0 {
		t.Errorf("worst delta = %+v", deltas[0])
	}
	if deltas[1].Name != "BenchA" || deltas[1].Ratio < 0.099 || deltas[1].Ratio > 0.101 {
		t.Errorf("second delta = %+v", deltas[1])
	}
	if len(onlyBase) != 1 || onlyBase[0] != "BenchGone" {
		t.Errorf("onlyBaseline = %v", onlyBase)
	}
	if len(onlyCur) != 1 || onlyCur[0] != "BenchNew" {
		t.Errorf("onlyCurrent = %v", onlyCur)
	}
}

func TestRunCompareGate(t *testing.T) {
	baseline := report(map[string]float64{"BenchA": 100, "BenchB": 200})

	// Inside tolerance: nothing regresses, new/missing benchmarks never
	// fail the gate.
	var out strings.Builder
	ok := report(map[string]float64{"BenchA": 120, "BenchNew": 999})
	if reg := runCompare(baseline, ok, 0.35, &out); len(reg) != 0 {
		t.Errorf("within-threshold run flagged: %+v", reg)
	}
	if !strings.Contains(out.String(), "new benchmark") || !strings.Contains(out.String(), "missing from current") {
		t.Errorf("report omits added/removed benchmarks:\n%s", out.String())
	}

	// Past tolerance: the slow benchmark is flagged.
	out.Reset()
	bad := report(map[string]float64{"BenchA": 100, "BenchB": 300})
	reg := runCompare(baseline, bad, 0.35, &out)
	if len(reg) != 1 || reg[0].Name != "BenchB" {
		t.Fatalf("regressions = %+v", reg)
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("report omits the verdict:\n%s", out.String())
	}

	// An improvement is never a regression.
	out.Reset()
	fast := report(map[string]float64{"BenchA": 10, "BenchB": 20})
	if reg := runCompare(baseline, fast, 0.35, &out); len(reg) != 0 {
		t.Errorf("improvement flagged: %+v", reg)
	}
}
