package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkCrawlCached \t       1\t25215013219 ns/op\t     36565 fetches/op\t        28.00 parses/op")
	if !ok {
		t.Fatal("line not recognised")
	}
	if r.Name != "BenchmarkCrawlCached" || r.Iterations != 1 {
		t.Errorf("parsed %+v", r)
	}
	if r.Metrics["ns/op"] != 25215013219 || r.Metrics["fetches/op"] != 36565 || r.Metrics["parses/op"] != 28 {
		t.Errorf("metrics = %v", r.Metrics)
	}

	for _, line := range []string{
		"PASS",
		"ok  \tpermodyssey\t25.870s",
		"goos: linux",
		"[bench BenchmarkCrawlCached]",
		"600 sites: 1151 HTTP fetches; 819 scripts executed, 27 parsed (cache)",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("non-benchmark line parsed: %q", line)
		}
	}
}

func TestConvert(t *testing.T) {
	rep := convert([]string{
		"goos: linux",
		"goarch: amd64",
		"pkg: permodyssey",
		"BenchmarkTable2_Characteristics-8   \t 8126787\t       147.5 ns/op",
		"BenchmarkCrawlUncached \t       1\t 622474887 ns/op\t      1665 fetches/op",
		"PASS",
	})
	if len(rep.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(rep.Results))
	}
	if rep.Context["goos"] != "linux" || rep.Context["pkg"] != "permodyssey" {
		t.Errorf("context = %v", rep.Context)
	}
	if rep.Results[0].Name != "BenchmarkTable2_Characteristics-8" || rep.Results[0].Iterations != 8126787 {
		t.Errorf("first result = %+v", rep.Results[0])
	}
}
