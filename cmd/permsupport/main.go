// Command permsupport prints the caniuse-style permission support
// matrix (the paper's website tool, Appendix A.6): per-permission
// classification (policy-controlled / powerful / default allowlist) and
// per-engine API/policy support, plus the historical change tracker and
// a surface fingerprinter.
//
// Usage:
//
//	permsupport
//	permsupport -chromium 100 -firefox 100 -safari 15
//	permsupport -changes chromium -from 80 -to 127
//	permsupport -identify camera,geolocation,...   # whose surface is this?
package main

import (
	"os"

	"permodyssey/internal/cli"
)

func main() {
	os.Exit(cli.Support(os.Args[1:], os.Stdout, os.Stderr))
}
