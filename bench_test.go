// Package permodyssey's root benchmark harness regenerates every table
// and figure of the paper's evaluation (go test -bench=. -benchmem).
// Each Benchmark prints its table once (via b.Logf on -v, or silently
// validates it) and then measures the cost of recomputing the analysis
// from the shared crawl dataset. The crawl itself is performed once per
// process over a deterministic synthetic web.
package permodyssey

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"permodyssey/internal/analysis"
	"permodyssey/internal/browser"
	"permodyssey/internal/core"
	"permodyssey/internal/crawler"
	"permodyssey/internal/html"
	"permodyssey/internal/origin"
	"permodyssey/internal/permissions"
	"permodyssey/internal/policy"
	"permodyssey/internal/script"
	"permodyssey/internal/store"
	"permodyssey/internal/synthweb"
)

const benchSeed = 20240823 // the paper's crawl began August 23, 2024

// benchSites sizes the shared dataset; the CI bench-smoke step shrinks
// it via the environment so `-benchtime 1x` stays fast.
var benchSites = envSites("PERMODYSSEY_BENCH_SITES", 1500)

func envSites(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

var (
	benchOnce sync.Once
	benchDS   *store.Dataset
	benchErr  error
)

// benchDataset crawls the shared synthetic web once.
func benchDataset(b *testing.B) *analysis.Analysis {
	b.Helper()
	benchOnce.Do(func() {
		cfg := synthweb.DefaultConfig()
		cfg.NumSites = benchSites
		cfg.Seed = benchSeed
		srv := synthweb.NewServer(cfg)
		srv.StallTime = 300 * time.Millisecond
		if benchErr = srv.Start(); benchErr != nil {
			return
		}
		defer srv.Close()
		br := browser.New(browser.NewHTTPFetcher(srv.Client(0)), browser.DefaultOptions())
		c := crawler.New(br, crawler.Config{Workers: 24, PerSiteTimeout: 150 * time.Millisecond})
		var targets []crawler.Target
		for _, s := range srv.Sites() {
			targets = append(targets, crawler.Target{Rank: s.Rank, URL: s.URL()})
		}
		benchDS = c.Crawl(context.Background(), targets)
		fmt.Fprintf(os.Stderr, "[bench] crawled %d sites: %v\n", benchSites, benchDS.FailureCounts())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return analysis.New(benchDS)
}

// printOnce emits a table to stderr exactly once per benchmark name.
var printed sync.Map

func printOnce(name, table string) {
	if _, loaded := printed.LoadOrStore(name, true); !loaded {
		fmt.Fprintf(os.Stderr, "\n[bench %s]\n%s\n", name, table)
	}
}

// BenchmarkTable1_CameraInterplay evaluates the eight header × allow
// configurations of Table 1 through the policy engine.
func BenchmarkTable1_CameraInterplay(b *testing.B) {
	exampleOrg := origin.MustParse("https://example.org")
	iframeCom := origin.MustParse("https://iframe.com")
	cases := []struct{ header, allow string }{
		{"", ""}, {"", "camera"},
		{"camera=()", "camera"}, {"camera=(self)", "camera"},
		{"camera=(*)", ""}, {"camera=(*)", "camera"},
		{`camera=(self "https://iframe.com")`, "camera"},
		{`camera=("https://iframe.com")`, "camera"},
	}
	var table string
	for i, tc := range cases {
		var declared policy.Policy
		if tc.header != "" {
			declared, _, _ = policy.ParsePermissionsPolicy(tc.header)
		}
		top := policy.NewTopLevel(exampleOrg, declared)
		allow, _ := policy.ParseAllowAttr(tc.allow)
		frame := policy.NewSubframe(top, policy.FrameSpec{
			SrcOrigin: iframeCom, DocumentOrigin: iframeCom, Allow: allow,
		}, policy.SpecActual)
		table += fmt.Sprintf("#%d header=%-38q allow=%-8q top=%v iframe=%v\n",
			i+1, tc.header, tc.allow, top.Allowed("camera"), frame.Allowed("camera"))
	}
	printOnce(b.Name(), table)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tc := range cases {
			var declared policy.Policy
			if tc.header != "" {
				declared, _, _ = policy.ParsePermissionsPolicy(tc.header)
			}
			top := policy.NewTopLevel(exampleOrg, declared)
			allow, _ := policy.ParseAllowAttr(tc.allow)
			frame := policy.NewSubframe(top, policy.FrameSpec{
				SrcOrigin: iframeCom, DocumentOrigin: iframeCom, Allow: allow,
			}, policy.SpecActual)
			_ = frame.Allowed("camera")
		}
	}
}

// BenchmarkTable2_Characteristics regenerates the permission
// characteristics examples.
func BenchmarkTable2_Characteristics(b *testing.B) {
	names := []string{"camera", "geolocation", "gamepad", "notifications", "push"}
	var table string
	for _, n := range names {
		p, _ := permissions.Lookup(n)
		table += fmt.Sprintf("%-14s powerful=%-5v policy-controlled=%-5v default=%s\n",
			n, p.Powerful, p.PolicyControlled(), p.Default)
	}
	printOnce(b.Name(), table)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range names {
			if _, ok := permissions.Lookup(n); !ok {
				b.Fatal("missing permission")
			}
		}
	}
}

func BenchmarkTable3_TopEmbeds(b *testing.B) {
	a := benchDataset(b)
	rows, total := a.Table3TopEmbeds(10)
	printOnce(b.Name(), analysis.RenderTable3(rows, total).String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Table3TopEmbeds(10)
	}
}

func BenchmarkTable4_Invocations(b *testing.B) {
	a := benchDataset(b)
	rows, totalRow, _ := a.Table4Invocations(10)
	printOnce(b.Name(), analysis.RenderTable4(rows, totalRow).String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Table4Invocations(10)
	}
}

func BenchmarkTable5_StatusChecks(b *testing.B) {
	a := benchDataset(b)
	rows, totalRow, _ := a.Table5StatusChecks(10)
	printOnce(b.Name(), analysis.RenderTable5(rows, totalRow).String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Table5StatusChecks(10)
	}
}

func BenchmarkTable6_Static(b *testing.B) {
	a := benchDataset(b)
	rows, totalRow, _ := a.Table6Static(10)
	printOnce(b.Name(), analysis.RenderTable6(rows, totalRow).String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Table6Static(10)
	}
}

func BenchmarkTable7_DelegatedEmbeds(b *testing.B) {
	a := benchDataset(b)
	rows, total := a.Table7DelegatedEmbeds(10)
	printOnce(b.Name(), analysis.RenderTable7(rows, total).String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Table7DelegatedEmbeds(10)
	}
}

func BenchmarkTable8_DelegatedPermissions(b *testing.B) {
	a := benchDataset(b)
	rows, totalRow := a.Table8DelegatedPermissions(10)
	printOnce(b.Name(), analysis.RenderTable8(rows, totalRow).String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Table8DelegatedPermissions(10)
	}
}

func BenchmarkTable9_HeaderDirectives(b *testing.B) {
	a := benchDataset(b)
	rows, totalRow, _ := a.Table9HeaderDirectives(10)
	printOnce(b.Name(), analysis.RenderTable9(rows, totalRow).String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Table9HeaderDirectives(10)
	}
}

func BenchmarkFigure2_Adoption(b *testing.B) {
	a := benchDataset(b)
	printOnce(b.Name(), analysis.RenderFigure2(a.Figure2Adoption()).String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Figure2Adoption()
	}
}

func BenchmarkTable10_Overpermissioned(b *testing.B) {
	a := benchDataset(b)
	cfg := analysis.DefaultOverPermissionConfig()
	rows, total := a.OverPermissioned(cfg, 10)
	printOnce(b.Name(), analysis.RenderTable10(rows, total).String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.OverPermissioned(cfg, 10)
	}
}

// BenchmarkTable11_SpecIssue probes the local-scheme inheritance bug in
// both specification modes.
func BenchmarkTable11_SpecIssue(b *testing.B) {
	out, err := core.RenderSpecIssue("https://example.org", "https://attacker.example")
	if err != nil {
		b.Fatal(err)
	}
	printOnce(b.Name(), out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, mode := range []policy.SpecMode{policy.SpecActual, policy.SpecExpected} {
			if _, err := core.ProbeSpecIssue("https://example.org", "https://attacker.example", mode); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable12_ManualValidation runs the Appendix A.3 interaction
// experiment (3 populations, no-interaction vs interaction pass).
func BenchmarkTable12_ManualValidation(b *testing.B) {
	cfg := synthweb.DefaultConfig()
	cfg.NumSites = 300
	cfg.Seed = benchSeed + 1
	cfg.UnreachableRate, cfg.TimeoutRate, cfg.EphemeralRate, cfg.MinorRate = 0, 0, 0, 0
	v := core.ValidationExperiment{Web: cfg, SitesPerExperiment: 15}
	rows, err := v.Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	printOnce(b.Name(), core.RenderValidation(rows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMisconfigurations(b *testing.B) {
	a := benchDataset(b)
	s := a.Misconfigurations()
	printOnce(b.Name(), fmt.Sprintf(
		"frames with header: %d; syntax-invalid: %d (top %d / emb %d); by kind: %v\nsemantic misconfig websites: top %d, embedded %d\n",
		s.FramesWithHeader, s.SyntaxErrorFrames, s.SyntaxErrorTopLevel, s.SyntaxErrorEmbedded,
		s.ByKind, s.SemanticMisconfigWebsites, s.SemanticMisconfigEmbedded))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Misconfigurations()
	}
}

func BenchmarkDelegationDirectives(b *testing.B) {
	a := benchDataset(b)
	printOnce(b.Name(), analysis.RenderDirectiveShares(a.DelegationDirectives()).String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.DelegationDirectives()
	}
}

func BenchmarkFailureTaxonomy(b *testing.B) {
	a := benchDataset(b)
	printOnce(b.Name(), analysis.RenderFailures(a.FailureTaxonomy()).String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.FailureTaxonomy()
	}
}

// ---- Ablations (DESIGN.md design-choice studies) ----

// BenchmarkAblationHybridDetection compares the three detection methods
// (static-only / dynamic-only / hybrid) on the shared dataset — the
// design rationale of §3.1.1.
func BenchmarkAblationHybridDetection(b *testing.B) {
	a := benchDataset(b)
	_, _, usum := a.Table4Invocations(0)
	_, _, ssum := a.Table6Static(0)
	hy := a.SummaryHybrid()
	printOnce(b.Name(), fmt.Sprintf(
		"dynamic-only: %d websites\nstatic-only:  %d websites\nhybrid:       %d websites (+%d over dynamic alone)\n",
		usum.WithAnyInvocation, ssum.Websites, hy.AnyActivity, hy.AnyActivity-usum.WithAnyInvocation))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.SummaryHybrid()
	}
}

// BenchmarkAblationLazyScroll crawls a small population with and
// without lazy-iframe scrolling, measuring the frame-coverage loss the
// paper's scrolling design avoids.
func BenchmarkAblationLazyScroll(b *testing.B) {
	cfg := synthweb.DefaultConfig()
	cfg.NumSites = 200
	cfg.Seed = benchSeed + 2
	cfg.UnreachableRate, cfg.TimeoutRate, cfg.EphemeralRate, cfg.MinorRate = 0, 0, 0, 0
	run := func(scroll bool) int {
		srv := synthweb.NewServer(cfg)
		if err := srv.Start(); err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		opts := browser.DefaultOptions()
		opts.ScrollLazyIframes = scroll
		br := browser.New(browser.NewHTTPFetcher(srv.Client(0)), opts)
		c := crawler.New(br, crawler.Config{Workers: 16, PerSiteTimeout: 300 * time.Millisecond})
		var targets []crawler.Target
		for _, s := range srv.Sites() {
			targets = append(targets, crawler.Target{Rank: s.Rank, URL: s.URL()})
		}
		ds := c.Crawl(context.Background(), targets)
		frames := 0
		for _, r := range ds.Successful() {
			frames += len(r.Page.Frames)
		}
		return frames
	}
	withScroll := run(true)
	withoutScroll := run(false)
	printOnce(b.Name(), fmt.Sprintf(
		"frames with lazy-scrolling: %d\nframes without:             %d (%.1f%% coverage loss)\n",
		withScroll, withoutScroll, 100*float64(withScroll-withoutScroll)/float64(withScroll)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(true)
	}
}

// BenchmarkAblationOverpermissionThreshold sweeps the §5 prevalence
// threshold, showing the paper's 5% choice sits on a stable plateau.
func BenchmarkAblationOverpermissionThreshold(b *testing.B) {
	a := benchDataset(b)
	var table string
	for _, th := range []float64{0.01, 0.05, 0.20, 0.50, 0.90} {
		cfg := analysis.OverPermissionConfig{Threshold: th, MinInclusions: 3}
		rows, total := a.OverPermissioned(cfg, 0)
		table += fmt.Sprintf("threshold %4.0f%%: %3d widgets flagged, %4d affected websites\n",
			th*100, len(rows), total)
	}
	printOnce(b.Name(), table)
	cfg := analysis.DefaultOverPermissionConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.OverPermissioned(cfg, 0)
	}
}

// BenchmarkAblationFirstOccurrenceDedup quantifies the first-occurrence
// rule of §4.1: raw invocation counts versus deduplicated contexts.
func BenchmarkAblationFirstOccurrenceDedup(b *testing.B) {
	a := benchDataset(b)
	_, totalRow, _ := a.Table4Invocations(0)
	raw := 0
	for _, rec := range benchDS.Successful() {
		for _, f := range rec.Page.Frames {
			raw += len(f.Invocations)
		}
	}
	printOnce(b.Name(), fmt.Sprintf(
		"raw invocation records:        %d\nfirst-occurrence contexts:     %d (%.1fx inflation avoided)\n",
		raw, totalRow.TotalContexts, float64(raw)/float64(max(1, totalRow.TotalContexts))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Table4Invocations(0)
	}
}

// BenchmarkAblationInternalLinks measures the coverage the paper's
// landing-page-only scope gives up (§6.1): crawl the same population
// with and without internal-link following and compare the permissions
// discovered.
func BenchmarkAblationInternalLinks(b *testing.B) {
	cfg := synthweb.DefaultConfig()
	cfg.NumSites = 250
	cfg.Seed = benchSeed + 4
	cfg.UnreachableRate, cfg.TimeoutRate, cfg.EphemeralRate, cfg.MinorRate = 0, 0, 0, 0
	run := func(follow int) *store.Dataset {
		srv := synthweb.NewServer(cfg)
		if err := srv.Start(); err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		br := browser.New(browser.NewHTTPFetcher(srv.Client(0)), browser.DefaultOptions())
		c := crawler.New(br, crawler.Config{Workers: 16, PerSiteTimeout: 5 * time.Second, FollowInternalLinks: follow})
		var targets []crawler.Target
		for _, s := range srv.Sites() {
			targets = append(targets, crawler.Target{Rank: s.Rank, URL: s.URL()})
		}
		return c.Crawl(context.Background(), targets)
	}
	withLinks := run(3)
	gain := analysis.New(withLinks).InternalPages()
	printOnce(b.Name(), fmt.Sprintf(
		"internal pages visited on %d sites; %d sites gained permissions only visible there (%v)\n",
		gain.SitesWithInternalPages, gain.SitesWithNewPermissions, gain.PermissionsGained))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(0)
	}
}

// ---- Crawl-at-scale: shared resource cache ----

// fetchCounter counts the HTTP fetches that actually reach the network
// layer, independent of any cache stacked above it.
type fetchCounter struct {
	inner browser.Fetcher
	n     atomic.Int64
}

func (f *fetchCounter) Fetch(ctx context.Context, rawURL string) (*browser.Response, error) {
	f.n.Add(1)
	return f.inner.Fetch(ctx, rawURL)
}

// crawlBench crawls the default-scale population once per iteration,
// with or without the shared fetch/parse caches, and reports how many
// HTTP fetches and script parses the crawl actually performed. Compare
// BenchmarkCrawlCached against BenchmarkCrawlUncached: the cache
// collapses the per-site re-fetching and re-parsing of the Zipf-popular
// shared widget documents and CDN scripts.
func crawlBench(b *testing.B, cached bool) {
	cfg := synthweb.DefaultConfig()
	cfg.NumSites = envSites("PERMODYSSEY_BENCH_CRAWL_SITES", cfg.NumSites)
	cfg.Seed = benchSeed + 5
	cfg.UnreachableRate, cfg.TimeoutRate, cfg.EphemeralRate, cfg.MinorRate = 0, 0, 0, 0

	srv := synthweb.NewServer(cfg)
	if err := srv.Start(); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	var targets []crawler.Target
	for _, s := range srv.Sites() {
		targets = append(targets, crawler.Target{Rank: s.Rank, URL: s.URL()})
	}

	var fetches, parses, scripts int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counter := &fetchCounter{inner: browser.NewHTTPFetcher(srv.Client(0))}
		var fetcher browser.Fetcher = counter
		opts := browser.DefaultOptions()
		if cached {
			fetcher = browser.NewCachingFetcher(counter)
			opts.ScriptCache = script.NewParseCache()
		}
		c := crawler.New(browser.New(fetcher, opts),
			crawler.Config{Workers: 24, PerSiteTimeout: 10 * time.Second})
		ds := c.Crawl(context.Background(), targets)
		if len(ds.Records) != cfg.NumSites {
			b.Fatal("short crawl")
		}
		fetches = counter.n.Load()
		if cached {
			ps := opts.ScriptCache.Stats()
			parses = int64(ps.Misses)
			scripts = int64(ps.Hits + ps.Misses + ps.Coalesced)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(fetches), "fetches/op")
	if cached {
		b.ReportMetric(float64(parses), "parses/op")
		printOnce(b.Name(), fmt.Sprintf(
			"%d sites: %d HTTP fetches; %d scripts executed, %d parsed (cache)\n",
			cfg.NumSites, fetches, scripts, parses))
	} else {
		printOnce(b.Name(), fmt.Sprintf(
			"%d sites: %d HTTP fetches, every script parsed per inclusion (no cache)\n",
			cfg.NumSites, fetches))
	}
}

func BenchmarkCrawlUncached(b *testing.B) { crawlBench(b, false) }
func BenchmarkCrawlCached(b *testing.B)   { crawlBench(b, true) }

// ---- Interpreter: compile-once vs tree-walk ----

// interpSmall is a typical short probe: config objects, a recursive
// helper, string assembly.
const interpSmall = `
var cfg = {retries: 3, delay: 10, tag: 'probe'};
function backoff(n) { return n <= 0 ? cfg.delay : backoff(n - 1) * 2; }
var msg = cfg.tag + ':' + backoff(cfg.retries);
var parts = [];
for (var i = 0; i < 8; i++) { parts.push(msg.length + i); }
var out = JSON.stringify({msg: msg, sum: parts.length});
`

// interpLoop is the interpreter-bound workload the 2x gate measures: a
// hot loop inside a function scope, where the compiled path's
// slot-resolved locals and pooled frames replace per-iteration map
// lookups. This is the shape of real widget code — analytics loops,
// array scans — where tree-walking is slowest.
const interpLoop = `
var total = (function () {
	var sum = 0;
	var weight = 3;
	for (var i = 0; i < 2500; i++) {
		var a = i * 2 + 1;
		var b = a % 7;
		sum = sum + a * weight - b;
	}
	return sum;
})();
`

// interpWidget models a consent-widget script: closures over state,
// object graphs, try/catch, array methods, repeated small calls.
const interpWidget = `
var state = {granted: [], denied: [], errors: 0};
function makeChecker(name) {
	return function (allowed) {
		if (allowed) { state.granted.push(name); } else { state.denied.push(name); }
		return state.granted.length;
	};
}
var names = ['camera', 'microphone', 'geolocation', 'notifications', 'midi'];
var checkers = [];
for (var i = 0; i < names.length; i++) { checkers.push(makeChecker(names[i])); }
for (var round = 0; round < 40; round++) {
	for (var j = 0; j < checkers.length; j++) {
		try {
			checkers[j]((round + j) % 3 !== 0);
			if (round % 7 === 0) { throw {code: round}; }
		} catch (e) {
			state.errors++;
		}
	}
}
var summary = JSON.stringify({g: state.granted.length, d: state.denied.length, e: state.errors});
`

// interpBench executes one pre-parsed (and, for the compiled variant,
// pre-lowered) script per iteration on a fresh interpreter — the
// per-frame execution pattern of a crawl, where the program is shared
// via the caches and only execution state is per-realm.
func interpBench(b *testing.B, src string, compiled bool) {
	prog, err := script.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	cp, err := script.Compile(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := script.NewInterp()
		if compiled {
			err = in.RunCompiled(cp, "https://cdn.example/w.js")
		} else {
			err = in.RunProgram(prog, "https://cdn.example/w.js")
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpretSmallTree(b *testing.B)      { interpBench(b, interpSmall, false) }
func BenchmarkInterpretSmallCompiled(b *testing.B)  { interpBench(b, interpSmall, true) }
func BenchmarkInterpretLoopTree(b *testing.B)       { interpBench(b, interpLoop, false) }
func BenchmarkInterpretLoopCompiled(b *testing.B)   { interpBench(b, interpLoop, true) }
func BenchmarkInterpretWidgetTree(b *testing.B)     { interpBench(b, interpWidget, false) }
func BenchmarkInterpretWidgetCompiled(b *testing.B) { interpBench(b, interpWidget, true) }

// ---- DOM: parse throughput, cache warm-up, extraction walks ----

// genPage builds a deterministic synthetic document of roughly `blocks`
// content blocks, shaped like the synthetic web's pages: text runs,
// permission-bearing iframes, inline and external scripts, links,
// entity references, and the occasional tag soup.
func genPage(r *rand.Rand, blocks int) string {
	var sb strings.Builder
	sb.WriteString("<!doctype html><html><head><title>bench &amp; page</title></head><body>\n")
	for i := 0; i < blocks; i++ {
		switch r.Intn(6) {
		case 0:
			fmt.Fprintf(&sb, `<div class="row r%d"><p>block %d text with &quot;entities&quot; and more words to scan</p></div>`, i, i)
		case 1:
			fmt.Fprintf(&sb, `<iframe src="https://widget.example/embed/%d" allow="camera %d; microphone *" loading="lazy"></iframe>`, r.Intn(50), i)
		case 2:
			fmt.Fprintf(&sb, `<script src="https://cdn.example/lib%d.js"></script>`, r.Intn(20))
		case 3:
			fmt.Fprintf(&sb, `<script>var q%d = init(%d); if (q%d < %d) { track("<span>"); }</script>`, i, i, i, r.Intn(100))
		case 4:
			fmt.Fprintf(&sb, `<a href="/page/%d">internal</a><a href="https://other.example/%d">external</a>`, i, r.Intn(30))
		case 5:
			fmt.Fprintf(&sb, `<div><span>unclosed %d<b>soup`, i)
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("</body></html>\n")
	return sb.String()
}

// parseCorpus generates n distinct documents of the given size.
func parseCorpus(n, blocks int, seed int64) []string {
	r := rand.New(rand.NewSource(seed))
	docs := make([]string, n)
	for i := range docs {
		docs[i] = genPage(r, blocks)
	}
	return docs
}

// parseBenchCold parses every document from scratch each iteration —
// the pre-cache cost of a fetch.
func parseBenchCold(b *testing.B, docs []string) {
	var bytes int64
	for _, d := range docs {
		bytes += int64(len(d))
	}
	b.SetBytes(bytes / int64(len(docs)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pd := html.ParseDoc(docs[i%len(docs)])
		pd.Release()
	}
}

// parseBenchWarm serves every document from a primed ParseCache — the
// cost of re-encountering a shared widget document mid-crawl.
func parseBenchWarm(b *testing.B, docs []string) {
	c := html.NewParseCache(0, 0)
	var bytes int64
	for _, d := range docs {
		bytes += int64(len(d))
		c.Parse(d).Release()
	}
	b.SetBytes(bytes / int64(len(docs)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pd := c.Parse(docs[i%len(docs)])
		pd.Release()
	}
}

func BenchmarkParseHTMLSmallCold(b *testing.B) { parseBenchCold(b, parseCorpus(16, 12, benchSeed)) }
func BenchmarkParseHTMLSmallWarm(b *testing.B) { parseBenchWarm(b, parseCorpus(16, 12, benchSeed)) }
func BenchmarkParseHTMLLargeCold(b *testing.B) { parseBenchCold(b, parseCorpus(4, 800, benchSeed)) }
func BenchmarkParseHTMLLargeWarm(b *testing.B) { parseBenchWarm(b, parseCorpus(4, 800, benchSeed)) }

// zipfDocs draws a Zipf-distributed access sequence over a corpus of 64
// distinct documents — the crawl's real body-popularity shape, where a
// few shared widget documents dominate fetches.
func zipfSequence(n int) ([]string, []int) {
	docs := parseCorpus(64, 40, benchSeed+7)
	r := rand.New(rand.NewSource(benchSeed + 8))
	z := rand.NewZipf(r, 1.3, 1, uint64(len(docs)-1))
	seq := make([]int, n)
	for i := range seq {
		seq[i] = int(z.Uint64())
	}
	return docs, seq
}

// BenchmarkParseHTMLZipfCold re-parses every access; ZipfWarm serves
// repeats from the cache. The bench-parse CI gate holds their ratio
// above the floor: if the cache stops delivering, the gate fails.
func BenchmarkParseHTMLZipfCold(b *testing.B) {
	docs, seq := zipfSequence(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pd := html.ParseDoc(docs[seq[i%len(seq)]])
		pd.Release()
	}
}

func BenchmarkParseHTMLZipfWarm(b *testing.B) {
	docs, seq := zipfSequence(4096)
	c := html.NewParseCache(0, 0)
	for _, d := range docs {
		c.Parse(d).Release()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pd := c.Parse(docs[seq[i%len(seq)]])
		pd.Release()
	}
}

// BenchmarkExtractThreeWalk vs SingleWalk: the old Parse + three
// FindAll-walk extraction against the single-pass ParseDoc that records
// iframes, scripts, and links during tree construction.
func BenchmarkExtractThreeWalk(b *testing.B) {
	docs := parseCorpus(16, 40, benchSeed+9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := html.Parse(docs[i%len(docs)])
		_ = html.Iframes(tree)
		_ = html.Scripts(tree)
		_ = html.Links(tree)
	}
}

func BenchmarkExtractSingleWalk(b *testing.B) {
	docs := parseCorpus(16, 40, benchSeed+9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pd := html.ParseDoc(docs[i%len(docs)])
		_, _, _ = pd.Iframes, pd.Scripts, pd.Links
		pd.Release()
	}
}

// ---- Crawl-at-scale: host-aware scheduler under chaos ----

// chaosSchedBench crawls a fault-heavy population with retries on, once
// per iteration against a fresh server (flap counters restart), either
// through the scheduler's non-blocking deferral heap or the legacy
// blocking-backoff baseline. The fault mix is fail-fast and
// deterministic — resets and flapping hosts, the kinds that trigger
// retries — so the measured gap is scheduling, not fault timing: the
// baseline burns each backoff inside a worker while the scheduler's
// workers keep crawling.
func chaosSchedBench(b *testing.B, blocking bool) {
	cfg := synthweb.DefaultConfig()
	cfg.NumSites = envSites("PERMODYSSEY_BENCH_CHAOS_SITES", 300)
	cfg.Seed = benchSeed + 6
	cfg.UnreachableRate, cfg.TimeoutRate, cfg.EphemeralRate, cfg.MinorRate = 0, 0, 0, 0
	cfg.Chaos = synthweb.ChaosConfig{
		Enabled:      true,
		SiteRate:     0.4,
		FlapFailures: 2,
		Kinds:        []synthweb.Fault{synthweb.FaultReset, synthweb.FaultFlap},
	}

	var retries, requeued int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv := synthweb.NewServer(cfg)
		if err := srv.Start(); err != nil {
			b.Fatal(err)
		}
		var targets []crawler.Target
		for _, s := range srv.Sites() {
			targets = append(targets, crawler.Target{Rank: s.Rank, URL: s.URL()})
		}
		br := browser.New(browser.NewHTTPFetcher(srv.Client(0)), browser.DefaultOptions())
		c := crawler.New(br, crawler.Config{
			Workers: 12, PerSiteTimeout: 2 * time.Second,
			MaxRetries: 2, RetryBackoff: 80 * time.Millisecond,
			BlockingBackoff: blocking,
		})
		ds := c.Crawl(context.Background(), targets)
		srv.Close()
		if len(ds.Records) != cfg.NumSites {
			b.Fatal("short crawl")
		}
		st := c.Stats()
		retries, requeued = st.Retries, st.Requeued
	}
	b.StopTimer()
	b.ReportMetric(float64(retries), "retries/op")
	b.ReportMetric(float64(requeued), "requeued/op")
	mode := "scheduler (non-blocking deferral)"
	if blocking {
		mode = "blocking backoff baseline"
	}
	printOnce(b.Name(), fmt.Sprintf("%d sites under chaos, %s: %d retries, %d requeued\n",
		cfg.NumSites, mode, retries, requeued))
}

func BenchmarkCrawlChaosBlocking(b *testing.B)  { chaosSchedBench(b, true) }
func BenchmarkCrawlChaosScheduler(b *testing.B) { chaosSchedBench(b, false) }

// BenchmarkFullPipeline measures a complete small measurement
// (generate → serve → crawl → analyze), the end-to-end cost unit.
func BenchmarkFullPipeline(b *testing.B) {
	opts := core.DefaultMeasurementOptions()
	opts.Web.NumSites = 100
	opts.Web.Seed = benchSeed + 3
	opts.Crawl.Workers = 16
	opts.Crawl.PerSiteTimeout = 200 * time.Millisecond
	opts.StallTime = 400 * time.Millisecond
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := core.Run(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(m.Dataset.Records) != 100 {
			b.Fatal("short crawl")
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
