package webapi

import (
	"testing"

	"permodyssey/internal/origin"
	"permodyssey/internal/policy"
)

// permissionSnippets maps each instrumented permission to a script that
// must produce a dynamic record for it. Together they prove the realm
// covers the Appendix A.4 surface.
var permissionSnippets = map[string]string{
	"camera":                       `navigator.mediaDevices.getUserMedia({video: true})`,
	"microphone":                   `navigator.mediaDevices.getUserMedia({audio: true})`,
	"display-capture":              `navigator.mediaDevices.getDisplayMedia({video: true})`,
	"speaker-selection":            `navigator.mediaDevices.selectAudioOutput()`,
	"geolocation":                  `navigator.geolocation.watchPosition(function () {})`,
	"battery":                      `navigator.getBattery()`,
	"clipboard-read":               `navigator.clipboard.readText()`,
	"clipboard-write":              `navigator.clipboard.write([])`,
	"web-share":                    `navigator.share({url: 'https://x'})`,
	"publickey-credentials-get":    `navigator.credentials.get({publicKey: {}})`,
	"publickey-credentials-create": `navigator.credentials.create({})`,
	"identity-credentials-get":     `navigator.credentials.get({identity: {}})`,
	"otp-credentials":              `navigator.credentials.get({otp: {}})`,
	"keyboard-map":                 `navigator.keyboard.getLayoutMap()`,
	"keyboard-lock":                `navigator.keyboard.lock()`,
	"gamepad":                      `navigator.getGamepads()`,
	"midi":                         `navigator.requestMIDIAccess()`,
	"usb":                          `navigator.usb.requestDevice({})`,
	"serial":                       `navigator.serial.requestPort()`,
	"hid":                          `navigator.hid.requestDevice({})`,
	"bluetooth":                    `navigator.bluetooth.requestDevice({})`,
	"screen-wake-lock":             `navigator.wakeLock.request('screen')`,
	"xr-spatial-tracking":          `navigator.xr.requestSession('immersive-vr')`,
	"run-ad-auction":               `navigator.runAdAuction({})`,
	"join-ad-interest-group":       `navigator.joinAdInterestGroup({})`,
	"encrypted-media":              `navigator.requestMediaKeySystemAccess('x', [])`,
	"browsing-topics":              `document.browsingTopics()`,
	"interest-cohort":              `document.interestCohort()`,
	"storage-access":               `document.requestStorageAccess()`,
	"top-level-storage-access":     `document.requestStorageAccessFor('https://o.example')`,
	"fullscreen":                   `document.body.requestFullscreen()`,
	"pointer-lock":                 `document.body.requestPointerLock()`,
	"picture-in-picture":           `document.createElement('video').requestPictureInPicture()`,
	"autoplay":                     `document.createElement('video').play()`,
	"notifications":                `Notification.requestPermission()`,
	"push":                         `navigator.serviceWorker.register('/sw.js').then(function (r) { r.pushManager.subscribe({}); })`,
	"accelerometer":                `new Accelerometer()`,
	"gyroscope":                    `new Gyroscope()`,
	"magnetometer":                 `new Magnetometer()`,
	"ambient-light-sensor":         `new AmbientLightSensor()`,
	"idle-detection":               `IdleDetector.requestPermission()`,
	"compute-pressure":             `new PressureObserver(function () {})`,
	"payment":                      `new PaymentRequest([], {})`,
	"local-fonts":                  `queryLocalFonts()`,
	"window-management":            `getScreenDetails()`,
	"direct-sockets":               `new TCPSocket('h', 1)`,
	"ch-ua-arch":                   `navigator.userAgentData.getHighEntropyValues(['arch'])`,
}

func TestAPICoverageAllPermissions(t *testing.T) {
	for perm, snippet := range permissionSnippets {
		t.Run(perm, func(t *testing.T) {
			doc := policy.NewTopLevel(origin.MustParse("https://example.org"), policy.Policy{})
			r := NewRealm(doc, "https://example.org/")
			if err := r.RunScript(snippet+";", "https://example.org/app.js"); err != nil {
				t.Fatalf("snippet failed: %v", err)
			}
			for _, inv := range r.Rec.Invocations {
				for _, p := range inv.Permissions {
					if p == perm {
						return
					}
				}
			}
			t.Errorf("no record for %s; got %+v", perm, r.Rec.Invocations)
		})
	}
}

// TestGatingCoveragePolicyControlled verifies that for every
// policy-controlled permission in the snippet table, a header disabling
// it makes the realm record the call as blocked.
func TestGatingCoveragePolicyControlled(t *testing.T) {
	for _, perm := range []string{
		"camera", "microphone", "display-capture", "geolocation", "battery",
		"clipboard-read", "clipboard-write", "web-share", "keyboard-map",
		"midi", "usb", "serial", "hid", "bluetooth", "screen-wake-lock",
		"xr-spatial-tracking", "run-ad-auction", "join-ad-interest-group",
		"encrypted-media", "browsing-topics", "storage-access",
		"fullscreen", "picture-in-picture", "autoplay", "accelerometer",
		"payment", "local-fonts", "window-management",
	} {
		t.Run(perm, func(t *testing.T) {
			declared, _, err := policy.ParsePermissionsPolicy(perm + "=()")
			if err != nil {
				t.Fatal(err)
			}
			doc := policy.NewTopLevel(origin.MustParse("https://example.org"), declared)
			r := NewRealm(doc, "https://example.org/")
			snippet := permissionSnippets[perm]
			// Blocked constructors throw; wrap to keep the script alive.
			_ = r.RunScript("try { "+snippet+"; } catch (e) {}", "")
			blocked := false
			for _, inv := range r.Rec.Invocations {
				for _, p := range inv.Permissions {
					if p == perm && inv.Blocked {
						blocked = true
					}
				}
			}
			if !blocked {
				t.Errorf("%s=() did not block the call: %+v", perm, r.Rec.Invocations)
			}
		})
	}
}
