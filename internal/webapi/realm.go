package webapi

import (
	"fmt"
	"sync"

	"permodyssey/internal/permissions"
	"permodyssey/internal/policy"
	"permodyssey/internal/script"
)

// Realm is one document's JavaScript realm: an interpreter with the
// instrumented Web-API surface installed, bound to the document's
// Permissions Policy.
//
// The surface itself — hundreds of natives across navigator, document,
// and a dozen constructors — is built ONCE on a package-level template
// and stamped into each realm as a deep clone (script.GlobalSnapshot).
// Natives are shared across realms and recover their realm through
// script.Interp.Host at call time; only the mutable object graph is
// cloned, so NewRealm costs a copy instead of a rebuild.
type Realm struct {
	Doc *policy.Document
	Rec *Recorder
	In  *script.Interp
	// FrameURL is the document's URL; inline scripts attribute to it.
	FrameURL string
	// Browser/Version select the support surface exposed to scripts
	// (feeding the fingerprinting observation of §4.1.1).
	Browser permissions.Browser
	Version int
	// ParseScript, when non-nil, replaces script.Parse — the crawl
	// installs a shared ParseCache here so each distinct script body is
	// parsed once per crawl instead of once per including frame.
	ParseScript func(src string) (*script.Program, error)
	// CompileScript, when non-nil, supplies pre-lowered programs
	// (typically CompileCache.Compile) and takes precedence over
	// ParseScript: scripts run through the compiled fast path.
	CompileScript func(src string) (*script.Compiled, error)

	handlers map[string][]script.Value
}

// NewRealm builds a realm for the document.
func NewRealm(doc *policy.Document, frameURL string) *Realm {
	r := &Realm{
		Doc:      doc,
		Rec:      &Recorder{},
		In:       script.NewBareInterp(),
		FrameURL: frameURL,
		Browser:  permissions.Chromium,
		Version:  127, // the paper crawled with Chromium 127 (C13)
		handlers: map[string][]script.Value{},
	}
	r.In.InstallSnapshot(surfaceSnapshot())
	r.In.Host = r
	r.patchRealmState()
	return r
}

// RunScript executes one script in the realm. scriptURL is "" for
// inline scripts (attributed to the frame itself, like the paper does).
func (r *Realm) RunScript(src, scriptURL string) error {
	if scriptURL == "" {
		scriptURL = r.FrameURL
	}
	if r.CompileScript != nil {
		prog, err := r.CompileScript(src)
		if err != nil {
			return err
		}
		return r.In.RunCompiled(prog, scriptURL)
	}
	if r.ParseScript != nil {
		prog, err := r.ParseScript(src)
		if err != nil {
			return err
		}
		return r.In.RunProgram(prog, scriptURL)
	}
	return r.In.Run(src, scriptURL)
}

// FireEvent invokes every handler registered for the event — the
// "manual interaction" pass of Appendix A.3 (clicks, loads, logins).
func (r *Realm) FireEvent(name string) error {
	ev := script.NewObject()
	ev.Class = "Event"
	ev.Set("type", script.String(name))
	for _, h := range r.handlers[name] {
		if _, err := r.In.CallFunction(h, script.Undefined(), []script.Value{script.ObjectValue(ev)}); err != nil {
			return err
		}
	}
	return nil
}

// HandlerCount reports how many handlers are registered for an event.
func (r *Realm) HandlerCount(name string) int { return len(r.handlers[name]) }

// record captures one instrumented call with stack attribution.
func (r *Realm) record(api string, kind Kind, perms []string, all, blocked, deprecated bool) {
	url := r.In.CurrentScriptURL()
	if url == r.FrameURL {
		url = "" // inline / document-attributed
	}
	r.Rec.record(Invocation{
		API:            api,
		Kind:           kind,
		Permissions:    perms,
		AllPermissions: all,
		ScriptURL:      url,
		Stack:          r.In.StackTrace(),
		Blocked:        blocked,
		Deprecated:     deprecated,
	})
}

// allowed consults the policy engine for a specific permission.
func (r *Realm) allowed(perm string) bool { return r.Doc.Allowed(perm) }

// gatedPromise records an invocation and returns a resolved promise
// with value v when allowed, or a rejected NotAllowedError otherwise.
func (r *Realm) gatedPromise(api string, perms []string, v script.Value) script.Value {
	blocked := false
	for _, p := range perms {
		if !r.allowed(p) {
			blocked = true
		}
	}
	r.record(api, KindInvocation, perms, false, blocked, false)
	if blocked {
		return rejectedDOMException("NotAllowedError",
			fmt.Sprintf("%s disallowed by permissions policy", api))
	}
	return script.ResolvedPromise(v)
}

func rejectedDOMException(name, msg string) script.Value {
	e := script.NewObject()
	e.Class = "DOMException"
	e.Set("name", script.String(name))
	e.Set("message", script.String(msg))
	return script.RejectedPromise(script.ObjectValue(e))
}

// nat is shorthand for a realm-independent native function value.
func nat(name string, fn func(in *script.Interp, this script.Value, args []script.Value) (script.Value, error)) script.Value {
	return script.NativeValue(name, fn)
}

// hostRealm recovers the realm a native is executing in. Surface
// natives are shared across realms (they live in the cloned snapshot),
// so per-realm state — policy document, recorder, handlers — must come
// from the interpreter, not from captured variables.
func hostRealm(in *script.Interp) *Realm { return in.Host.(*Realm) }

// rnat is shorthand for a realm-aware native function value.
func rnat(name string, fn func(r *Realm, in *script.Interp, this script.Value, args []script.Value) (script.Value, error)) script.Value {
	return script.NativeValue(name, func(in *script.Interp, this script.Value, args []script.Value) (script.Value, error) {
		return fn(hostRealm(in), in, this, args)
	})
}

// rnativeOf is rnat for constructor Call slots.
func rnativeOf(name string, fn func(r *Realm, in *script.Interp, this script.Value, args []script.Value) (script.Value, error)) *script.Native {
	return &script.Native{Name: name, Fn: func(in *script.Interp, this script.Value, args []script.Value) (script.Value, error) {
		return fn(hostRealm(in), in, this, args)
	}}
}

// addEventListenerV is the shared handler-registration native; it
// appends into the calling realm's handlers map.
var addEventListenerV = rnat("addEventListener", func(r *Realm, _ *script.Interp, _ script.Value, args []script.Value) (script.Value, error) {
	if len(args) >= 2 && args[0].Kind() == script.KindString && args[1].IsCallable() {
		name := args[0].Str()
		r.handlers[name] = append(r.handlers[name], args[1])
	}
	return script.Undefined(), nil
})

var noopV = nat("noop", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
	return script.Undefined(), nil
})

// surfaceSnapshot lazily builds the Web-API surface on a template
// interpreter and captures it for stamping into realms.
var (
	surfaceOnce sync.Once
	surfaceSnap *script.GlobalSnapshot
)

func surfaceSnapshot() *script.GlobalSnapshot {
	surfaceOnce.Do(func() {
		tmpl := script.NewInterp()
		installSurface(tmpl)
		surfaceSnap = tmpl.SnapshotGlobals()
	})
	return surfaceSnap
}

// patchRealmState overwrites the per-realm bindings the template cannot
// know: the frame's location, secure-context bit, and UA string.
func (r *Realm) patchRealmState() {
	g := r.In.Global
	if nav, ok := g.Get("navigator"); ok && nav.Kind() == script.KindObject {
		nav.Obj().Set("userAgent", script.String(fmt.Sprintf("Mozilla/5.0 (X11; Linux x86_64) Chrome/%d.0.0.0", r.Version)))
	}
	if loc, ok := g.Get("location"); ok && loc.Kind() == script.KindObject {
		lo := loc.Obj()
		lo.Set("href", script.String(r.FrameURL))
		lo.Set("origin", script.String(r.Doc.Origin.String()))
		lo.Set("hostname", script.String(r.Doc.Origin.Host))
		lo.Set("protocol", script.String(r.Doc.Origin.Scheme+":"))
	}
	if win, ok := g.Get("window"); ok && win.Kind() == script.KindObject {
		win.Obj().Set("isSecureContext", script.Bool(r.Doc.Origin.Scheme == "https"))
	}
}

// installSurface wires the full API surface into a template
// interpreter's global scope. Everything installed here must be
// realm-independent: natives reach their realm via hostRealm, and
// per-realm scalars (location fields, userAgent, isSecureContext) are
// placeholders overwritten by patchRealmState after cloning.
func installSurface(in *script.Interp) {
	g := in.Global

	nav := script.NewObject()
	nav.Class = "Navigator"
	doc := script.NewObject()
	doc.Class = "Document"
	// Define the globals before wiring members: installConstructors
	// attaches navigator.serviceWorker by global lookup.
	g.Define("navigator", script.ObjectValue(nav))
	g.Define("document", script.ObjectValue(doc))

	installPermissionsAPI(nav)
	installMedia(nav)
	installGeolocation(nav)
	installSimpleNavigatorAPIs(nav)
	installDocumentAPIs(doc)
	installPolicyAPIs(doc)
	installConstructors(g)

	// navigator identity (the crawler disabled navigator.webdriver, C8).
	// userAgent is per-realm (Version-dependent); patched after cloning.
	nav.Set("userAgent", script.String(""))
	nav.Set("webdriver", script.Bool(false))
	nav.Set("language", script.String("en-US"))

	// location of the frame — fields patched per realm.
	loc := script.NewObject()
	loc.Class = "Location"
	loc.Set("href", script.String(""))
	loc.Set("origin", script.String(""))
	loc.Set("hostname", script.String(""))
	loc.Set("protocol", script.String(""))

	// window: event target plus the usual aliases.
	win := script.NewObject()
	win.Class = "Window"
	win.Set("addEventListener", addEventListenerV)
	win.Set("removeEventListener", nat("removeEventListener", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return script.Undefined(), nil
	}))
	win.Set("navigator", script.ObjectValue(nav))
	win.Set("document", script.ObjectValue(doc))
	win.Set("location", script.ObjectValue(loc))
	win.Set("isSecureContext", script.Bool(false))

	doc.Set("location", script.ObjectValue(loc))
	doc.Set("addEventListener", addEventListenerV)
	doc.Set("cookie", script.String(""))

	g.Define("window", script.ObjectValue(win))
	g.Define("self", script.ObjectValue(win))
	g.Define("globalThis", script.ObjectValue(win))
	g.Define("location", script.ObjectValue(loc))
	g.Define("addEventListener", addEventListenerV)
	g.Define("fetch", nat("fetch", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		resp := script.NewObject()
		resp.Class = "Response"
		resp.Set("ok", script.Bool(true))
		resp.Set("status", script.Number(200))
		return script.ResolvedPromise(script.ObjectValue(resp)), nil
	}))
}

// installPermissionsAPI wires navigator.permissions.query — the most
// invoked general API in the study.
func installPermissionsAPI(nav *script.Object) {
	perms := script.NewObject()
	perms.Class = "Permissions"
	perms.Set("query", rnat("navigator.permissions.query", func(r *Realm, in *script.Interp, _ script.Value, args []script.Value) (script.Value, error) {
		var names []string
		if len(args) > 0 {
			if p, ok := permissionFromQueryArg(args[0]); ok {
				names = []string{p}
			}
		}
		if len(names) == 0 {
			// TypeError in a real browser; record the probe anyway.
			r.record("navigator.permissions.query", KindStatusCheck, nil, false, false, false)
			return script.Undefined(), &script.RuntimeError{Msg: "query requires a PermissionDescriptor"}
		}
		perm := names[0]
		blocked := false
		if p, known := permissions.Lookup(perm); known && p.PolicyControlled() {
			blocked = !r.allowed(perm)
		}
		r.record("navigator.permissions.query", KindStatusCheck, names, false, blocked, false)
		status := script.NewObject()
		status.Class = "PermissionStatus"
		status.Set("name", script.String(perm))
		state := "prompt"
		if blocked {
			state = "denied"
		}
		status.Set("state", script.String(state))
		status.Set("addEventListener", addEventListenerV)
		status.Set("onchange", script.Null())
		return script.ResolvedPromise(script.ObjectValue(status)), nil
	}))
	nav.Set("permissions", script.ObjectValue(perms))
}

// installMedia wires getUserMedia / getDisplayMedia / encrypted media.
func installMedia(nav *script.Object) {
	md := script.NewObject()
	md.Class = "MediaDevices"
	md.Set("getUserMedia", rnat("navigator.mediaDevices.getUserMedia", func(r *Realm, _ *script.Interp, _ script.Value, args []script.Value) (script.Value, error) {
		var perms []string
		if len(args) > 0 && args[0].Kind() == script.KindObject {
			if v, ok := args[0].Obj().Get("audio"); ok && v.Truthy() {
				perms = append(perms, "microphone")
			}
			if v, ok := args[0].Obj().Get("video"); ok && v.Truthy() {
				perms = append(perms, "camera")
			}
		}
		if len(perms) == 0 {
			return script.Undefined(), &script.RuntimeError{Msg: "getUserMedia requires audio or video"}
		}
		stream := script.NewObject()
		stream.Class = "MediaStream"
		stream.Set("active", script.Bool(true))
		return r.gatedPromise("navigator.mediaDevices.getUserMedia", perms, script.ObjectValue(stream)), nil
	}))
	md.Set("getDisplayMedia", rnat("navigator.mediaDevices.getDisplayMedia", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		stream := script.NewObject()
		stream.Class = "MediaStream"
		return r.gatedPromise("navigator.mediaDevices.getDisplayMedia", []string{"display-capture"}, script.ObjectValue(stream)), nil
	}))
	md.Set("selectAudioOutput", rnat("navigator.mediaDevices.selectAudioOutput", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		dev := script.NewObject()
		dev.Class = "MediaDeviceInfo"
		return r.gatedPromise("navigator.mediaDevices.selectAudioOutput", []string{"speaker-selection"}, script.ObjectValue(dev)), nil
	}))
	nav.Set("mediaDevices", script.ObjectValue(md))

	nav.Set("requestMediaKeySystemAccess", rnat("navigator.requestMediaKeySystemAccess", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		access := script.NewObject()
		access.Class = "MediaKeySystemAccess"
		return r.gatedPromise("navigator.requestMediaKeySystemAccess", []string{"encrypted-media"}, script.ObjectValue(access)), nil
	}))
}

func installGeolocation(nav *script.Object) {
	geo := script.NewObject()
	geo.Class = "Geolocation"
	positionCall := func(api string) script.Value {
		return rnat(api, func(r *Realm, in *script.Interp, _ script.Value, args []script.Value) (script.Value, error) {
			blocked := !r.allowed("geolocation")
			r.record(api, KindInvocation, []string{"geolocation"}, false, blocked, false)
			if blocked {
				if len(args) > 1 && args[1].IsCallable() {
					e := script.NewObject()
					e.Set("code", script.Number(1)) // PERMISSION_DENIED
					e.Set("message", script.String("permissions policy"))
					if _, err := in.CallFunction(args[1], script.Undefined(), []script.Value{script.ObjectValue(e)}); err != nil {
						return script.Undefined(), err
					}
				}
				return script.Undefined(), nil
			}
			if len(args) > 0 && args[0].IsCallable() {
				pos := script.NewObject()
				coords := script.NewObject()
				coords.Set("latitude", script.Number(52.52))
				coords.Set("longitude", script.Number(13.405))
				pos.Set("coords", script.ObjectValue(coords))
				if _, err := in.CallFunction(args[0], script.Undefined(), []script.Value{script.ObjectValue(pos)}); err != nil {
					return script.Undefined(), err
				}
			}
			return script.Number(1), nil
		})
	}
	geo.Set("getCurrentPosition", positionCall("navigator.geolocation.getCurrentPosition"))
	geo.Set("watchPosition", positionCall("navigator.geolocation.watchPosition"))
	geo.Set("clearWatch", nat("clearWatch", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return script.Undefined(), nil
	}))
	nav.Set("geolocation", script.ObjectValue(geo))
}

// installSimpleNavigatorAPIs wires the long tail of navigator.* calls.
func installSimpleNavigatorAPIs(nav *script.Object) {
	// battery (tracking-associated, Table 4 rank 2).
	nav.Set("getBattery", rnat("navigator.getBattery", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		bm := script.NewObject()
		bm.Class = "BatteryManager"
		bm.Set("level", script.Number(0.87))
		bm.Set("charging", script.Bool(true))
		bm.Set("addEventListener", addEventListenerV)
		return r.gatedPromise("navigator.getBattery", []string{"battery"}, script.ObjectValue(bm)), nil
	}))

	// clipboard.
	cb := script.NewObject()
	cb.Class = "Clipboard"
	cb.Set("readText", rnat("navigator.clipboard.readText", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return r.gatedPromise("navigator.clipboard.readText", []string{"clipboard-read"}, script.String("")), nil
	}))
	cb.Set("read", rnat("navigator.clipboard.read", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return r.gatedPromise("navigator.clipboard.read", []string{"clipboard-read"}, script.ArrayValue()), nil
	}))
	cb.Set("writeText", rnat("navigator.clipboard.writeText", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return r.gatedPromise("navigator.clipboard.writeText", []string{"clipboard-write"}, script.Undefined()), nil
	}))
	cb.Set("write", rnat("navigator.clipboard.write", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return r.gatedPromise("navigator.clipboard.write", []string{"clipboard-write"}, script.Undefined()), nil
	}))
	nav.Set("clipboard", script.ObjectValue(cb))

	// web share.
	nav.Set("share", rnat("navigator.share", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return r.gatedPromise("navigator.share", []string{"web-share"}, script.Undefined()), nil
	}))
	nav.Set("canShare", rnat("navigator.canShare", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		r.record("navigator.canShare", KindStatusCheck, []string{"web-share"}, false, !r.allowed("web-share"), false)
		return script.Bool(r.allowed("web-share")), nil
	}))

	// credentials.
	creds := script.NewObject()
	creds.Class = "CredentialsContainer"
	creds.Set("get", rnat("navigator.credentials.get", func(r *Realm, _ *script.Interp, _ script.Value, args []script.Value) (script.Value, error) {
		perm := "publickey-credentials-get"
		if len(args) > 0 && args[0].Kind() == script.KindObject {
			if _, ok := args[0].Obj().Get("identity"); ok {
				perm = "identity-credentials-get"
			} else if _, ok := args[0].Obj().Get("otp"); ok {
				perm = "otp-credentials"
			}
		}
		cred := script.NewObject()
		cred.Class = "Credential"
		return r.gatedPromise("navigator.credentials.get", []string{perm}, script.ObjectValue(cred)), nil
	}))
	creds.Set("create", rnat("navigator.credentials.create", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		cred := script.NewObject()
		cred.Class = "Credential"
		return r.gatedPromise("navigator.credentials.create", []string{"publickey-credentials-create"}, script.ObjectValue(cred)), nil
	}))
	nav.Set("credentials", script.ObjectValue(creds))

	// keyboard.
	kb := script.NewObject()
	kb.Class = "Keyboard"
	kb.Set("getLayoutMap", rnat("navigator.keyboard.getLayoutMap", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		m := script.NewObject()
		m.Class = "KeyboardLayoutMap"
		return r.gatedPromise("navigator.keyboard.getLayoutMap", []string{"keyboard-map"}, script.ObjectValue(m)), nil
	}))
	kb.Set("lock", rnat("navigator.keyboard.lock", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return r.gatedPromise("navigator.keyboard.lock", []string{"keyboard-lock"}, script.Undefined()), nil
	}))
	nav.Set("keyboard", script.ObjectValue(kb))

	// gamepad.
	nav.Set("getGamepads", rnat("navigator.getGamepads", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		blocked := !r.allowed("gamepad")
		r.record("navigator.getGamepads", KindInvocation, []string{"gamepad"}, false, blocked, false)
		return script.ArrayValue(), nil
	}))

	// midi.
	nav.Set("requestMIDIAccess", rnat("navigator.requestMIDIAccess", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		access := script.NewObject()
		access.Class = "MIDIAccess"
		return r.gatedPromise("navigator.requestMIDIAccess", []string{"midi"}, script.ObjectValue(access)), nil
	}))

	// device APIs: usb / serial / hid / bluetooth.
	deviceAPI := func(ns, method, perm, class string) {
		o := script.NewObject()
		api := "navigator." + ns + "." + method
		o.Set(method, rnat(api, func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
			dev := script.NewObject()
			dev.Class = class
			return r.gatedPromise(api, []string{perm}, script.ObjectValue(dev)), nil
		}))
		nav.Set(ns, script.ObjectValue(o))
	}
	deviceAPI("usb", "requestDevice", "usb", "USBDevice")
	deviceAPI("serial", "requestPort", "serial", "SerialPort")
	deviceAPI("hid", "requestDevice", "hid", "HIDDevice")
	deviceAPI("bluetooth", "requestDevice", "bluetooth", "BluetoothDevice")

	// wake lock.
	wl := script.NewObject()
	wl.Set("request", rnat("navigator.wakeLock.request", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		sentinel := script.NewObject()
		sentinel.Class = "WakeLockSentinel"
		return r.gatedPromise("navigator.wakeLock.request", []string{"screen-wake-lock"}, script.ObjectValue(sentinel)), nil
	}))
	nav.Set("wakeLock", script.ObjectValue(wl))

	// WebXR.
	xr := script.NewObject()
	xr.Set("requestSession", rnat("navigator.xr.requestSession", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		sess := script.NewObject()
		sess.Class = "XRSession"
		return r.gatedPromise("navigator.xr.requestSession", []string{"xr-spatial-tracking"}, script.ObjectValue(sess)), nil
	}))
	xr.Set("isSessionSupported", rnat("navigator.xr.isSessionSupported", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		r.record("navigator.xr.isSessionSupported", KindStatusCheck, []string{"xr-spatial-tracking"}, false, false, false)
		return script.ResolvedPromise(script.Bool(false)), nil
	}))
	nav.Set("xr", script.ObjectValue(xr))

	// Privacy Sandbox ad APIs.
	nav.Set("runAdAuction", rnat("navigator.runAdAuction", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return r.gatedPromise("navigator.runAdAuction", []string{"run-ad-auction"}, script.String("urn:uuid:auction-result")), nil
	}))
	nav.Set("joinAdInterestGroup", rnat("navigator.joinAdInterestGroup", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return r.gatedPromise("navigator.joinAdInterestGroup", []string{"join-ad-interest-group"}, script.Undefined()), nil
	}))

	// UA client hints.
	uad := script.NewObject()
	uad.Class = "NavigatorUAData"
	uad.Set("mobile", script.Bool(false))
	uad.Set("getHighEntropyValues", rnat("navigator.userAgentData.getHighEntropyValues", func(r *Realm, _ *script.Interp, _ script.Value, args []script.Value) (script.Value, error) {
		var perms []string
		if len(args) > 0 && args[0].Kind() == script.KindArray {
			for _, h := range args[0].Arr().Elems {
				hint := "ch-ua-" + h.ToString()
				if permissions.Known(hint) {
					perms = append(perms, hint)
				}
			}
		}
		if len(perms) == 0 {
			perms = []string{"ch-ua"}
		}
		r.record("navigator.userAgentData.getHighEntropyValues", KindInvocation, perms, false, false, false)
		return script.ResolvedPromise(script.ObjectValue(script.NewObject())), nil
	}))
	nav.Set("userAgentData", script.ObjectValue(uad))
}

// mkElement builds a host element supporting the element-level
// permission surface (fullscreen, picture-in-picture, pointer lock,
// autoplay). Elements are created fresh per call; their methods are
// shared realm-aware natives.
func mkElement(tag string) script.Value {
	el := script.NewObject()
	el.Class = "HTMLElement"
	el.Set("tagName", script.String(tag))
	el.Set("addEventListener", addEventListenerV)
	el.Set("setAttribute", noopV)
	el.Set("click", noopV)
	el.Set("requestFullscreen", requestFullscreenV)
	el.Set("requestPointerLock", requestPointerLockV)
	el.Set("requestPictureInPicture", requestPictureInPictureV)
	el.Set("play", playV)
	return script.ObjectValue(el)
}

var (
	requestFullscreenV = rnat("element.requestFullscreen", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return r.gatedPromise("element.requestFullscreen", []string{"fullscreen"}, script.Undefined()), nil
	})
	requestPointerLockV = rnat("element.requestPointerLock", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		blocked := !r.allowed("pointer-lock")
		r.record("element.requestPointerLock", KindInvocation, []string{"pointer-lock"}, false, blocked, false)
		return script.Undefined(), nil
	})
	requestPictureInPictureV = rnat("element.requestPictureInPicture", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		w := script.NewObject()
		w.Class = "PictureInPictureWindow"
		return r.gatedPromise("element.requestPictureInPicture", []string{"picture-in-picture"}, script.ObjectValue(w)), nil
	})
	playV = rnat("element.play", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return r.gatedPromise("element.play", []string{"autoplay"}, script.Undefined()), nil
	})
)

// installDocumentAPIs wires document-level permission calls.
func installDocumentAPIs(doc *script.Object) {
	doc.Set("browsingTopics", rnat("document.browsingTopics", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		topic := script.NewObject()
		topic.Set("topic", script.Number(42))
		return r.gatedPromise("document.browsingTopics", []string{"browsing-topics"}, script.ArrayValue(script.ObjectValue(topic))), nil
	}))
	doc.Set("interestCohort", rnat("document.interestCohort", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return r.gatedPromise("document.interestCohort", []string{"interest-cohort"}, script.ObjectValue(script.NewObject())), nil
	}))
	doc.Set("requestStorageAccess", rnat("document.requestStorageAccess", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return r.gatedPromise("document.requestStorageAccess", []string{"storage-access"}, script.Undefined()), nil
	}))
	doc.Set("hasStorageAccess", rnat("document.hasStorageAccess", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		r.record("document.hasStorageAccess", KindStatusCheck, []string{"storage-access"}, false, false, false)
		return script.ResolvedPromise(script.Bool(r.Doc.IsTopLevel())), nil
	}))
	doc.Set("requestStorageAccessFor", rnat("document.requestStorageAccessFor", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return r.gatedPromise("document.requestStorageAccessFor", []string{"top-level-storage-access"}, script.Undefined()), nil
	}))

	doc.Set("createElement", nat("document.createElement", func(_ *script.Interp, _ script.Value, args []script.Value) (script.Value, error) {
		tag := "div"
		if len(args) > 0 {
			tag = args[0].ToString()
		}
		return mkElement(tag), nil
	}))
	doc.Set("getElementById", nat("document.getElementById", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return mkElement("div"), nil
	}))
	doc.Set("querySelector", nat("document.querySelector", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return mkElement("div"), nil
	}))
	doc.Set("body", mkElement("body"))
}

// installPolicyAPIs wires the General Permission APIs of the Permissions
// Policy spec and the deprecated Feature Policy spec.
func installPolicyAPIs(doc *script.Object) {
	mk := func(prefix string, deprecated bool) script.Value {
		o := script.NewObject()
		o.Class = "FeaturePolicy"
		o.Set("allowedFeatures", rnat(prefix+".allowedFeatures", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
			r.record(prefix+".allowedFeatures", KindStatusCheck, nil, true, false, deprecated)
			return script.StringsValue(r.supportedAllowed()), nil
		}))
		o.Set("features", rnat(prefix+".features", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
			r.record(prefix+".features", KindStatusCheck, nil, true, false, deprecated)
			return script.StringsValue(permissions.SupportedPermissions(r.Browser, r.Version)), nil
		}))
		o.Set("allowsFeature", rnat(prefix+".allowsFeature", func(r *Realm, _ *script.Interp, _ script.Value, args []script.Value) (script.Value, error) {
			if len(args) == 0 {
				return script.Bool(false), nil
			}
			name := args[0].ToString()
			allowed := r.allowed(name)
			r.record(prefix+".allowsFeature", KindStatusCheck, []string{name}, false, !allowed, deprecated)
			return script.Bool(allowed), nil
		}))
		o.Set("getAllowlistForFeature", rnat(prefix+".getAllowlistForFeature", func(r *Realm, _ *script.Interp, _ script.Value, args []script.Value) (script.Value, error) {
			r.record(prefix+".getAllowlistForFeature", KindStatusCheck, nil, false, false, deprecated)
			return script.ArrayValue(), nil
		}))
		return script.ObjectValue(o)
	}
	doc.Set("featurePolicy", mk("document.featurePolicy", true))
	doc.Set("permissionsPolicy", mk("document.permissionsPolicy", false))
}

// supportedAllowed intersects the document's allowed features with the
// browser's supported surface — allowedFeatures() only reports features
// the engine knows, which is what makes it a version fingerprint.
func (r *Realm) supportedAllowed() []string {
	supported := map[string]bool{}
	for _, name := range permissions.SupportedPermissions(r.Browser, r.Version) {
		supported[name] = true
	}
	var out []string
	for _, f := range r.Doc.AllowedFeatures() {
		if supported[f] {
			out = append(out, f)
		}
	}
	return out
}

// pushSubscribeV backs pushManager.subscribe on every registration.
var pushSubscribeV = rnat("pushManager.subscribe", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
	blocked := !r.Doc.IsTopLevel()
	r.record("pushManager.subscribe", KindInvocation, []string{"push"}, false, blocked, false)
	sub := script.NewObject()
	sub.Class = "PushSubscription"
	if blocked {
		return rejectedDOMException("NotAllowedError", "push requires a top-level context"), nil
	}
	return script.ResolvedPromise(script.ObjectValue(sub)), nil
})

// newSWRegistration builds a fresh service-worker registration. Each
// register() call gets its own — a template-captured singleton would be
// shared (and mutable) across every realm cloned from the snapshot.
func newSWRegistration() script.Value {
	swReg := script.NewObject()
	pushMgr := script.NewObject()
	pushMgr.Class = "PushManager"
	pushMgr.Set("subscribe", pushSubscribeV)
	swReg.Set("pushManager", script.ObjectValue(pushMgr))
	return script.ObjectValue(swReg)
}

// installConstructors wires `new`-style APIs: Notification, sensors,
// PaymentRequest, IdleDetector, PressureObserver, direct sockets.
func installConstructors(g *script.Env) {
	// Notification: not policy-controlled; available only top-level.
	notif := script.NewObject()
	notif.Class = "NotificationConstructor"
	notif.Call = rnativeOf("Notification", func(r *Realm, _ *script.Interp, _ script.Value, args []script.Value) (script.Value, error) {
		blocked := !r.Doc.IsTopLevel()
		r.record("new Notification", KindInvocation, []string{"notifications"}, false, blocked, false)
		n := script.NewObject()
		n.Class = "Notification"
		if len(args) > 0 {
			n.Set("title", args[0])
		}
		return script.ObjectValue(n), nil
	})
	notif.Set("permission", script.String("default"))
	notif.Set("requestPermission", rnat("Notification.requestPermission", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		blocked := !r.Doc.IsTopLevel()
		r.record("Notification.requestPermission", KindInvocation, []string{"notifications"}, false, blocked, false)
		state := "default"
		if blocked {
			state = "denied"
		}
		return script.ResolvedPromise(script.String(state)), nil
	}))
	g.Define("Notification", script.ObjectValue(notif))

	// Push (via a minimal service-worker registration surface).
	sw := script.NewObject()
	sw.Set("register", nat("serviceWorker.register", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return script.ResolvedPromise(newSWRegistration()), nil
	}))
	sw.Set("ready", script.ResolvedPromise(newSWRegistration()))
	if nav, ok := g.Get("navigator"); ok && nav.Kind() == script.KindObject {
		nav.Obj().Set("serviceWorker", script.ObjectValue(sw))
	}

	// Sensor constructors.
	sensorCtor := func(name, perm string) {
		ctor := script.NewObject()
		ctor.Call = rnativeOf(name, func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
			blocked := !r.allowed(perm)
			r.record("new "+name, KindInvocation, []string{perm}, false, blocked, false)
			if blocked {
				return script.Undefined(), &script.RuntimeError{Msg: "SecurityError: " + perm + " disallowed by permissions policy"}
			}
			s := script.NewObject()
			s.Class = name
			s.Set("start", noopV)
			s.Set("stop", noopV)
			s.Set("addEventListener", addEventListenerV)
			return script.ObjectValue(s), nil
		})
		g.Define(name, script.ObjectValue(ctor))
	}
	sensorCtor("Accelerometer", "accelerometer")
	sensorCtor("Gyroscope", "gyroscope")
	sensorCtor("Magnetometer", "magnetometer")
	sensorCtor("AmbientLightSensor", "ambient-light-sensor")

	// PaymentRequest.
	pr := script.NewObject()
	pr.Call = rnativeOf("PaymentRequest", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		blocked := !r.allowed("payment")
		r.record("new PaymentRequest", KindInvocation, []string{"payment"}, false, blocked, false)
		if blocked {
			return script.Undefined(), &script.RuntimeError{Msg: "SecurityError: payment disallowed by permissions policy"}
		}
		req := script.NewObject()
		req.Class = "PaymentRequest"
		req.Set("show", rnat("PaymentRequest.show", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
			resp := script.NewObject()
			resp.Class = "PaymentResponse"
			return r.gatedPromise("PaymentRequest.show", []string{"payment"}, script.ObjectValue(resp)), nil
		}))
		req.Set("canMakePayment", rnat("PaymentRequest.canMakePayment", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
			r.record("PaymentRequest.canMakePayment", KindStatusCheck, []string{"payment"}, false, false, false)
			return script.ResolvedPromise(script.Bool(true)), nil
		}))
		return script.ObjectValue(req), nil
	})
	g.Define("PaymentRequest", script.ObjectValue(pr))

	// IdleDetector with static requestPermission.
	idle := script.NewObject()
	idle.Call = rnativeOf("IdleDetector", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		blocked := !r.allowed("idle-detection")
		r.record("new IdleDetector", KindInvocation, []string{"idle-detection"}, false, blocked, false)
		d := script.NewObject()
		d.Class = "IdleDetector"
		d.Set("start", nat("start", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
			return script.ResolvedPromise(script.Undefined()), nil
		}))
		d.Set("addEventListener", addEventListenerV)
		return script.ObjectValue(d), nil
	})
	idle.Set("requestPermission", rnat("IdleDetector.requestPermission", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		blocked := !r.allowed("idle-detection")
		r.record("IdleDetector.requestPermission", KindInvocation, []string{"idle-detection"}, false, blocked, false)
		return script.ResolvedPromise(script.String("granted")), nil
	}))
	g.Define("IdleDetector", script.ObjectValue(idle))

	// PressureObserver (compute-pressure).
	po := script.NewObject()
	po.Call = rnativeOf("PressureObserver", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		blocked := !r.allowed("compute-pressure")
		r.record("new PressureObserver", KindInvocation, []string{"compute-pressure"}, false, blocked, false)
		o := script.NewObject()
		o.Class = "PressureObserver"
		o.Set("observe", nat("observe", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
			return script.ResolvedPromise(script.Undefined()), nil
		}))
		return script.ObjectValue(o), nil
	})
	g.Define("PressureObserver", script.ObjectValue(po))

	// Direct sockets.
	sockCtor := func(name string) {
		c := script.NewObject()
		c.Call = rnativeOf(name, func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
			blocked := !r.allowed("direct-sockets")
			r.record("new "+name, KindInvocation, []string{"direct-sockets"}, false, blocked, false)
			s := script.NewObject()
			s.Class = name
			return script.ObjectValue(s), nil
		})
		g.Define(name, script.ObjectValue(c))
	}
	sockCtor("TCPSocket")
	sockCtor("UDPSocket")

	// queryLocalFonts / getScreenDetails are window-level functions.
	g.Define("queryLocalFonts", rnat("queryLocalFonts", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return r.gatedPromise("queryLocalFonts", []string{"local-fonts"}, script.ArrayValue()), nil
	}))
	g.Define("getScreenDetails", rnat("getScreenDetails", func(r *Realm, _ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		details := script.NewObject()
		details.Class = "ScreenDetails"
		return r.gatedPromise("getScreenDetails", []string{"window-management"}, script.ObjectValue(details)), nil
	}))
}
