package webapi

import (
	"fmt"

	"permodyssey/internal/permissions"
	"permodyssey/internal/policy"
	"permodyssey/internal/script"
)

// Realm is one document's JavaScript realm: an interpreter with the
// instrumented Web-API surface installed, bound to the document's
// Permissions Policy.
type Realm struct {
	Doc *policy.Document
	Rec *Recorder
	In  *script.Interp
	// FrameURL is the document's URL; inline scripts attribute to it.
	FrameURL string
	// Browser/Version select the support surface exposed to scripts
	// (feeding the fingerprinting observation of §4.1.1).
	Browser permissions.Browser
	Version int
	// ParseScript, when non-nil, replaces script.Parse — the crawl
	// installs a shared ParseCache here so each distinct script body is
	// parsed once per crawl instead of once per including frame.
	ParseScript func(src string) (*script.Program, error)

	handlers map[string][]script.Value
}

// NewRealm builds a realm for the document.
func NewRealm(doc *policy.Document, frameURL string) *Realm {
	r := &Realm{
		Doc:      doc,
		Rec:      &Recorder{},
		In:       script.NewInterp(),
		FrameURL: frameURL,
		Browser:  permissions.Chromium,
		Version:  127, // the paper crawled with Chromium 127 (C13)
		handlers: map[string][]script.Value{},
	}
	r.install()
	return r
}

// RunScript executes one script in the realm. scriptURL is "" for
// inline scripts (attributed to the frame itself, like the paper does).
func (r *Realm) RunScript(src, scriptURL string) error {
	if scriptURL == "" {
		scriptURL = r.FrameURL
	}
	if r.ParseScript != nil {
		prog, err := r.ParseScript(src)
		if err != nil {
			return err
		}
		return r.In.RunProgram(prog, scriptURL)
	}
	return r.In.Run(src, scriptURL)
}

// FireEvent invokes every handler registered for the event — the
// "manual interaction" pass of Appendix A.3 (clicks, loads, logins).
func (r *Realm) FireEvent(name string) error {
	ev := script.NewObject()
	ev.Class = "Event"
	ev.Set("type", script.String(name))
	for _, h := range r.handlers[name] {
		if _, err := r.In.CallFunction(h, script.Undefined(), []script.Value{script.ObjectValue(ev)}); err != nil {
			return err
		}
	}
	return nil
}

// HandlerCount reports how many handlers are registered for an event.
func (r *Realm) HandlerCount(name string) int { return len(r.handlers[name]) }

// record captures one instrumented call with stack attribution.
func (r *Realm) record(api string, kind Kind, perms []string, all, blocked, deprecated bool) {
	url := r.In.CurrentScriptURL()
	if url == r.FrameURL {
		url = "" // inline / document-attributed
	}
	r.Rec.record(Invocation{
		API:            api,
		Kind:           kind,
		Permissions:    perms,
		AllPermissions: all,
		ScriptURL:      url,
		Stack:          r.In.StackTrace(),
		Blocked:        blocked,
		Deprecated:     deprecated,
	})
}

// allowed consults the policy engine for a specific permission.
func (r *Realm) allowed(perm string) bool { return r.Doc.Allowed(perm) }

// gatedPromise records an invocation and returns a resolved promise
// with value v when allowed, or a rejected NotAllowedError otherwise.
func (r *Realm) gatedPromise(api string, perms []string, v script.Value) script.Value {
	blocked := false
	for _, p := range perms {
		if !r.allowed(p) {
			blocked = true
		}
	}
	r.record(api, KindInvocation, perms, false, blocked, false)
	if blocked {
		return rejectedDOMException("NotAllowedError",
			fmt.Sprintf("%s disallowed by permissions policy", api))
	}
	return script.ResolvedPromise(v)
}

func rejectedDOMException(name, msg string) script.Value {
	e := script.NewObject()
	e.Class = "DOMException"
	e.Set("name", script.String(name))
	e.Set("message", script.String(msg))
	return script.RejectedPromise(script.ObjectValue(e))
}

// nat is shorthand for a native function value.
func nat(name string, fn func(in *script.Interp, this script.Value, args []script.Value) (script.Value, error)) script.Value {
	return script.NativeValue(name, fn)
}

// install wires the full API surface into the realm's global scope.
func (r *Realm) install() {
	g := r.In.Global

	nav := script.NewObject()
	nav.Class = "Navigator"
	doc := script.NewObject()
	doc.Class = "Document"
	// Define the globals before wiring members: installConstructors
	// attaches navigator.serviceWorker by global lookup.
	g.Define("navigator", script.ObjectValue(nav))
	g.Define("document", script.ObjectValue(doc))

	r.installPermissionsAPI(nav)
	r.installMedia(nav)
	r.installGeolocation(nav)
	r.installSimpleNavigatorAPIs(nav)
	r.installDocumentAPIs(doc)
	r.installPolicyAPIs(doc)
	r.installConstructors(g)

	// navigator identity (the crawler disabled navigator.webdriver, C8).
	nav.Set("userAgent", script.String(fmt.Sprintf("Mozilla/5.0 (X11; Linux x86_64) Chrome/%d.0.0.0", r.Version)))
	nav.Set("webdriver", script.Bool(false))
	nav.Set("language", script.String("en-US"))

	// location of the frame.
	loc := script.NewObject()
	loc.Class = "Location"
	loc.Set("href", script.String(r.FrameURL))
	loc.Set("origin", script.String(r.Doc.Origin.String()))
	loc.Set("hostname", script.String(r.Doc.Origin.Host))
	loc.Set("protocol", script.String(r.Doc.Origin.Scheme+":"))

	// window: event target plus the usual aliases.
	win := script.NewObject()
	win.Class = "Window"
	win.Set("addEventListener", r.addEventListenerFn())
	win.Set("removeEventListener", nat("removeEventListener", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return script.Undefined(), nil
	}))
	win.Set("navigator", script.ObjectValue(nav))
	win.Set("document", script.ObjectValue(doc))
	win.Set("location", script.ObjectValue(loc))
	win.Set("isSecureContext", script.Bool(r.Doc.Origin.Scheme == "https"))

	doc.Set("location", script.ObjectValue(loc))
	doc.Set("addEventListener", r.addEventListenerFn())
	doc.Set("cookie", script.String(""))

	g.Define("window", script.ObjectValue(win))
	g.Define("self", script.ObjectValue(win))
	g.Define("globalThis", script.ObjectValue(win))
	g.Define("location", script.ObjectValue(loc))
	g.Define("addEventListener", r.addEventListenerFn())
	g.Define("fetch", nat("fetch", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		resp := script.NewObject()
		resp.Class = "Response"
		resp.Set("ok", script.Bool(true))
		resp.Set("status", script.Number(200))
		return script.ResolvedPromise(script.ObjectValue(resp)), nil
	}))
}

func (r *Realm) addEventListenerFn() script.Value {
	return nat("addEventListener", func(_ *script.Interp, _ script.Value, args []script.Value) (script.Value, error) {
		if len(args) >= 2 && args[0].Kind() == script.KindString && args[1].IsCallable() {
			name := args[0].Str()
			r.handlers[name] = append(r.handlers[name], args[1])
		}
		return script.Undefined(), nil
	})
}

// installPermissionsAPI wires navigator.permissions.query — the most
// invoked general API in the study.
func (r *Realm) installPermissionsAPI(nav *script.Object) {
	perms := script.NewObject()
	perms.Class = "Permissions"
	perms.Set("query", nat("navigator.permissions.query", func(in *script.Interp, _ script.Value, args []script.Value) (script.Value, error) {
		var names []string
		if len(args) > 0 {
			if p, ok := permissionFromQueryArg(args[0]); ok {
				names = []string{p}
			}
		}
		if len(names) == 0 {
			// TypeError in a real browser; record the probe anyway.
			r.record("navigator.permissions.query", KindStatusCheck, nil, false, false, false)
			return script.Undefined(), &script.RuntimeError{Msg: "query requires a PermissionDescriptor"}
		}
		perm := names[0]
		blocked := false
		if p, known := permissions.Lookup(perm); known && p.PolicyControlled() {
			blocked = !r.allowed(perm)
		}
		r.record("navigator.permissions.query", KindStatusCheck, names, false, blocked, false)
		status := script.NewObject()
		status.Class = "PermissionStatus"
		status.Set("name", script.String(perm))
		state := "prompt"
		if blocked {
			state = "denied"
		}
		status.Set("state", script.String(state))
		status.Set("addEventListener", r.addEventListenerFn())
		status.Set("onchange", script.Null())
		return script.ResolvedPromise(script.ObjectValue(status)), nil
	}))
	nav.Set("permissions", script.ObjectValue(perms))
}

// installMedia wires getUserMedia / getDisplayMedia / encrypted media.
func (r *Realm) installMedia(nav *script.Object) {
	md := script.NewObject()
	md.Class = "MediaDevices"
	md.Set("getUserMedia", nat("navigator.mediaDevices.getUserMedia", func(_ *script.Interp, _ script.Value, args []script.Value) (script.Value, error) {
		var perms []string
		if len(args) > 0 && args[0].Kind() == script.KindObject {
			if v, ok := args[0].Obj().Get("audio"); ok && v.Truthy() {
				perms = append(perms, "microphone")
			}
			if v, ok := args[0].Obj().Get("video"); ok && v.Truthy() {
				perms = append(perms, "camera")
			}
		}
		if len(perms) == 0 {
			return script.Undefined(), &script.RuntimeError{Msg: "getUserMedia requires audio or video"}
		}
		stream := script.NewObject()
		stream.Class = "MediaStream"
		stream.Set("active", script.Bool(true))
		return r.gatedPromise("navigator.mediaDevices.getUserMedia", perms, script.ObjectValue(stream)), nil
	}))
	md.Set("getDisplayMedia", nat("navigator.mediaDevices.getDisplayMedia", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		stream := script.NewObject()
		stream.Class = "MediaStream"
		return r.gatedPromise("navigator.mediaDevices.getDisplayMedia", []string{"display-capture"}, script.ObjectValue(stream)), nil
	}))
	md.Set("selectAudioOutput", nat("navigator.mediaDevices.selectAudioOutput", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		dev := script.NewObject()
		dev.Class = "MediaDeviceInfo"
		return r.gatedPromise("navigator.mediaDevices.selectAudioOutput", []string{"speaker-selection"}, script.ObjectValue(dev)), nil
	}))
	nav.Set("mediaDevices", script.ObjectValue(md))

	nav.Set("requestMediaKeySystemAccess", nat("navigator.requestMediaKeySystemAccess", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		access := script.NewObject()
		access.Class = "MediaKeySystemAccess"
		return r.gatedPromise("navigator.requestMediaKeySystemAccess", []string{"encrypted-media"}, script.ObjectValue(access)), nil
	}))
}

func (r *Realm) installGeolocation(nav *script.Object) {
	geo := script.NewObject()
	geo.Class = "Geolocation"
	positionCall := func(api string) script.Value {
		return nat(api, func(in *script.Interp, _ script.Value, args []script.Value) (script.Value, error) {
			blocked := !r.allowed("geolocation")
			r.record(api, KindInvocation, []string{"geolocation"}, false, blocked, false)
			if blocked {
				if len(args) > 1 && args[1].IsCallable() {
					e := script.NewObject()
					e.Set("code", script.Number(1)) // PERMISSION_DENIED
					e.Set("message", script.String("permissions policy"))
					if _, err := in.CallFunction(args[1], script.Undefined(), []script.Value{script.ObjectValue(e)}); err != nil {
						return script.Undefined(), err
					}
				}
				return script.Undefined(), nil
			}
			if len(args) > 0 && args[0].IsCallable() {
				pos := script.NewObject()
				coords := script.NewObject()
				coords.Set("latitude", script.Number(52.52))
				coords.Set("longitude", script.Number(13.405))
				pos.Set("coords", script.ObjectValue(coords))
				if _, err := in.CallFunction(args[0], script.Undefined(), []script.Value{script.ObjectValue(pos)}); err != nil {
					return script.Undefined(), err
				}
			}
			return script.Number(1), nil
		})
	}
	geo.Set("getCurrentPosition", positionCall("navigator.geolocation.getCurrentPosition"))
	geo.Set("watchPosition", positionCall("navigator.geolocation.watchPosition"))
	geo.Set("clearWatch", nat("clearWatch", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return script.Undefined(), nil
	}))
	nav.Set("geolocation", script.ObjectValue(geo))
}

// installSimpleNavigatorAPIs wires the long tail of navigator.* calls.
func (r *Realm) installSimpleNavigatorAPIs(nav *script.Object) {
	// battery (tracking-associated, Table 4 rank 2).
	nav.Set("getBattery", nat("navigator.getBattery", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		bm := script.NewObject()
		bm.Class = "BatteryManager"
		bm.Set("level", script.Number(0.87))
		bm.Set("charging", script.Bool(true))
		bm.Set("addEventListener", r.addEventListenerFn())
		return r.gatedPromise("navigator.getBattery", []string{"battery"}, script.ObjectValue(bm)), nil
	}))

	// clipboard.
	cb := script.NewObject()
	cb.Class = "Clipboard"
	cb.Set("readText", nat("navigator.clipboard.readText", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return r.gatedPromise("navigator.clipboard.readText", []string{"clipboard-read"}, script.String("")), nil
	}))
	cb.Set("read", nat("navigator.clipboard.read", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return r.gatedPromise("navigator.clipboard.read", []string{"clipboard-read"}, script.ArrayValue()), nil
	}))
	cb.Set("writeText", nat("navigator.clipboard.writeText", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return r.gatedPromise("navigator.clipboard.writeText", []string{"clipboard-write"}, script.Undefined()), nil
	}))
	cb.Set("write", nat("navigator.clipboard.write", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return r.gatedPromise("navigator.clipboard.write", []string{"clipboard-write"}, script.Undefined()), nil
	}))
	nav.Set("clipboard", script.ObjectValue(cb))

	// web share.
	nav.Set("share", nat("navigator.share", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return r.gatedPromise("navigator.share", []string{"web-share"}, script.Undefined()), nil
	}))
	nav.Set("canShare", nat("navigator.canShare", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		r.record("navigator.canShare", KindStatusCheck, []string{"web-share"}, false, !r.allowed("web-share"), false)
		return script.Bool(r.allowed("web-share")), nil
	}))

	// credentials.
	creds := script.NewObject()
	creds.Class = "CredentialsContainer"
	creds.Set("get", nat("navigator.credentials.get", func(_ *script.Interp, _ script.Value, args []script.Value) (script.Value, error) {
		perm := "publickey-credentials-get"
		if len(args) > 0 && args[0].Kind() == script.KindObject {
			if _, ok := args[0].Obj().Get("identity"); ok {
				perm = "identity-credentials-get"
			} else if _, ok := args[0].Obj().Get("otp"); ok {
				perm = "otp-credentials"
			}
		}
		cred := script.NewObject()
		cred.Class = "Credential"
		return r.gatedPromise("navigator.credentials.get", []string{perm}, script.ObjectValue(cred)), nil
	}))
	creds.Set("create", nat("navigator.credentials.create", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		cred := script.NewObject()
		cred.Class = "Credential"
		return r.gatedPromise("navigator.credentials.create", []string{"publickey-credentials-create"}, script.ObjectValue(cred)), nil
	}))
	nav.Set("credentials", script.ObjectValue(creds))

	// keyboard.
	kb := script.NewObject()
	kb.Class = "Keyboard"
	kb.Set("getLayoutMap", nat("navigator.keyboard.getLayoutMap", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		m := script.NewObject()
		m.Class = "KeyboardLayoutMap"
		return r.gatedPromise("navigator.keyboard.getLayoutMap", []string{"keyboard-map"}, script.ObjectValue(m)), nil
	}))
	kb.Set("lock", nat("navigator.keyboard.lock", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return r.gatedPromise("navigator.keyboard.lock", []string{"keyboard-lock"}, script.Undefined()), nil
	}))
	nav.Set("keyboard", script.ObjectValue(kb))

	// gamepad.
	nav.Set("getGamepads", nat("navigator.getGamepads", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		blocked := !r.allowed("gamepad")
		r.record("navigator.getGamepads", KindInvocation, []string{"gamepad"}, false, blocked, false)
		return script.ArrayValue(), nil
	}))

	// midi.
	nav.Set("requestMIDIAccess", nat("navigator.requestMIDIAccess", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		access := script.NewObject()
		access.Class = "MIDIAccess"
		return r.gatedPromise("navigator.requestMIDIAccess", []string{"midi"}, script.ObjectValue(access)), nil
	}))

	// device APIs: usb / serial / hid / bluetooth.
	deviceAPI := func(ns, method, perm, class string) {
		o := script.NewObject()
		api := "navigator." + ns + "." + method
		o.Set(method, nat(api, func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
			dev := script.NewObject()
			dev.Class = class
			return r.gatedPromise(api, []string{perm}, script.ObjectValue(dev)), nil
		}))
		nav.Set(ns, script.ObjectValue(o))
	}
	deviceAPI("usb", "requestDevice", "usb", "USBDevice")
	deviceAPI("serial", "requestPort", "serial", "SerialPort")
	deviceAPI("hid", "requestDevice", "hid", "HIDDevice")
	deviceAPI("bluetooth", "requestDevice", "bluetooth", "BluetoothDevice")

	// wake lock.
	wl := script.NewObject()
	wl.Set("request", nat("navigator.wakeLock.request", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		sentinel := script.NewObject()
		sentinel.Class = "WakeLockSentinel"
		return r.gatedPromise("navigator.wakeLock.request", []string{"screen-wake-lock"}, script.ObjectValue(sentinel)), nil
	}))
	nav.Set("wakeLock", script.ObjectValue(wl))

	// WebXR.
	xr := script.NewObject()
	xr.Set("requestSession", nat("navigator.xr.requestSession", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		sess := script.NewObject()
		sess.Class = "XRSession"
		return r.gatedPromise("navigator.xr.requestSession", []string{"xr-spatial-tracking"}, script.ObjectValue(sess)), nil
	}))
	xr.Set("isSessionSupported", nat("navigator.xr.isSessionSupported", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		r.record("navigator.xr.isSessionSupported", KindStatusCheck, []string{"xr-spatial-tracking"}, false, false, false)
		return script.ResolvedPromise(script.Bool(false)), nil
	}))
	nav.Set("xr", script.ObjectValue(xr))

	// Privacy Sandbox ad APIs.
	nav.Set("runAdAuction", nat("navigator.runAdAuction", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return r.gatedPromise("navigator.runAdAuction", []string{"run-ad-auction"}, script.String("urn:uuid:auction-result")), nil
	}))
	nav.Set("joinAdInterestGroup", nat("navigator.joinAdInterestGroup", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return r.gatedPromise("navigator.joinAdInterestGroup", []string{"join-ad-interest-group"}, script.Undefined()), nil
	}))

	// UA client hints.
	uad := script.NewObject()
	uad.Class = "NavigatorUAData"
	uad.Set("mobile", script.Bool(false))
	uad.Set("getHighEntropyValues", nat("navigator.userAgentData.getHighEntropyValues", func(_ *script.Interp, _ script.Value, args []script.Value) (script.Value, error) {
		var perms []string
		if len(args) > 0 && args[0].Kind() == script.KindArray {
			for _, h := range args[0].Arr().Elems {
				hint := "ch-ua-" + h.ToString()
				if permissions.Known(hint) {
					perms = append(perms, hint)
				}
			}
		}
		if len(perms) == 0 {
			perms = []string{"ch-ua"}
		}
		r.record("navigator.userAgentData.getHighEntropyValues", KindInvocation, perms, false, false, false)
		return script.ResolvedPromise(script.ObjectValue(script.NewObject())), nil
	}))
	nav.Set("userAgentData", script.ObjectValue(uad))
}

// installDocumentAPIs wires document-level permission calls.
func (r *Realm) installDocumentAPIs(doc *script.Object) {
	doc.Set("browsingTopics", nat("document.browsingTopics", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		topic := script.NewObject()
		topic.Set("topic", script.Number(42))
		return r.gatedPromise("document.browsingTopics", []string{"browsing-topics"}, script.ArrayValue(script.ObjectValue(topic))), nil
	}))
	doc.Set("interestCohort", nat("document.interestCohort", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return r.gatedPromise("document.interestCohort", []string{"interest-cohort"}, script.ObjectValue(script.NewObject())), nil
	}))
	doc.Set("requestStorageAccess", nat("document.requestStorageAccess", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return r.gatedPromise("document.requestStorageAccess", []string{"storage-access"}, script.Undefined()), nil
	}))
	doc.Set("hasStorageAccess", nat("document.hasStorageAccess", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		r.record("document.hasStorageAccess", KindStatusCheck, []string{"storage-access"}, false, false, false)
		return script.ResolvedPromise(script.Bool(r.Doc.IsTopLevel())), nil
	}))
	doc.Set("requestStorageAccessFor", nat("document.requestStorageAccessFor", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return r.gatedPromise("document.requestStorageAccessFor", []string{"top-level-storage-access"}, script.Undefined()), nil
	}))

	// Element factory: supports the element-level permission surface
	// (fullscreen, picture-in-picture, pointer lock, autoplay).
	mkElement := func(tag string) script.Value {
		el := script.NewObject()
		el.Class = "HTMLElement"
		el.Set("tagName", script.String(tag))
		el.Set("addEventListener", r.addEventListenerFn())
		el.Set("setAttribute", nat("setAttribute", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
			return script.Undefined(), nil
		}))
		el.Set("click", nat("click", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
			return script.Undefined(), nil
		}))
		el.Set("requestFullscreen", nat("element.requestFullscreen", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
			return r.gatedPromise("element.requestFullscreen", []string{"fullscreen"}, script.Undefined()), nil
		}))
		el.Set("requestPointerLock", nat("element.requestPointerLock", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
			blocked := !r.allowed("pointer-lock")
			r.record("element.requestPointerLock", KindInvocation, []string{"pointer-lock"}, false, blocked, false)
			return script.Undefined(), nil
		}))
		el.Set("requestPictureInPicture", nat("element.requestPictureInPicture", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
			w := script.NewObject()
			w.Class = "PictureInPictureWindow"
			return r.gatedPromise("element.requestPictureInPicture", []string{"picture-in-picture"}, script.ObjectValue(w)), nil
		}))
		el.Set("play", nat("element.play", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
			return r.gatedPromise("element.play", []string{"autoplay"}, script.Undefined()), nil
		}))
		return script.ObjectValue(el)
	}
	doc.Set("createElement", nat("document.createElement", func(_ *script.Interp, _ script.Value, args []script.Value) (script.Value, error) {
		tag := "div"
		if len(args) > 0 {
			tag = args[0].ToString()
		}
		return mkElement(tag), nil
	}))
	doc.Set("getElementById", nat("document.getElementById", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return mkElement("div"), nil
	}))
	doc.Set("querySelector", nat("document.querySelector", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return mkElement("div"), nil
	}))
	doc.Set("body", mkElement("body"))
}

// installPolicyAPIs wires the General Permission APIs of the Permissions
// Policy spec and the deprecated Feature Policy spec.
func (r *Realm) installPolicyAPIs(doc *script.Object) {
	mk := func(prefix string, deprecated bool) script.Value {
		o := script.NewObject()
		o.Class = "FeaturePolicy"
		o.Set("allowedFeatures", nat(prefix+".allowedFeatures", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
			r.record(prefix+".allowedFeatures", KindStatusCheck, nil, true, false, deprecated)
			return script.StringsValue(r.supportedAllowed()), nil
		}))
		o.Set("features", nat(prefix+".features", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
			r.record(prefix+".features", KindStatusCheck, nil, true, false, deprecated)
			return script.StringsValue(permissions.SupportedPermissions(r.Browser, r.Version)), nil
		}))
		o.Set("allowsFeature", nat(prefix+".allowsFeature", func(_ *script.Interp, _ script.Value, args []script.Value) (script.Value, error) {
			if len(args) == 0 {
				return script.Bool(false), nil
			}
			name := args[0].ToString()
			allowed := r.allowed(name)
			r.record(prefix+".allowsFeature", KindStatusCheck, []string{name}, false, !allowed, deprecated)
			return script.Bool(allowed), nil
		}))
		o.Set("getAllowlistForFeature", nat(prefix+".getAllowlistForFeature", func(_ *script.Interp, _ script.Value, args []script.Value) (script.Value, error) {
			r.record(prefix+".getAllowlistForFeature", KindStatusCheck, nil, false, false, deprecated)
			return script.ArrayValue(), nil
		}))
		return script.ObjectValue(o)
	}
	doc.Set("featurePolicy", mk("document.featurePolicy", true))
	doc.Set("permissionsPolicy", mk("document.permissionsPolicy", false))
}

// supportedAllowed intersects the document's allowed features with the
// browser's supported surface — allowedFeatures() only reports features
// the engine knows, which is what makes it a version fingerprint.
func (r *Realm) supportedAllowed() []string {
	supported := map[string]bool{}
	for _, name := range permissions.SupportedPermissions(r.Browser, r.Version) {
		supported[name] = true
	}
	var out []string
	for _, f := range r.Doc.AllowedFeatures() {
		if supported[f] {
			out = append(out, f)
		}
	}
	return out
}

// installConstructors wires `new`-style APIs: Notification, sensors,
// PaymentRequest, IdleDetector, PressureObserver, direct sockets.
func (r *Realm) installConstructors(g *script.Env) {
	// Notification: not policy-controlled; available only top-level.
	notif := script.NewObject()
	notif.Class = "NotificationConstructor"
	notif.Call = nativeOf("Notification", func(_ *script.Interp, _ script.Value, args []script.Value) (script.Value, error) {
		blocked := !r.Doc.IsTopLevel()
		r.record("new Notification", KindInvocation, []string{"notifications"}, false, blocked, false)
		n := script.NewObject()
		n.Class = "Notification"
		if len(args) > 0 {
			n.Set("title", args[0])
		}
		return script.ObjectValue(n), nil
	})
	notif.Set("permission", script.String("default"))
	notif.Set("requestPermission", nat("Notification.requestPermission", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		blocked := !r.Doc.IsTopLevel()
		r.record("Notification.requestPermission", KindInvocation, []string{"notifications"}, false, blocked, false)
		state := "default"
		if blocked {
			state = "denied"
		}
		return script.ResolvedPromise(script.String(state)), nil
	}))
	g.Define("Notification", script.ObjectValue(notif))

	// Push (via a minimal service-worker registration surface).
	swReg := script.NewObject()
	pushMgr := script.NewObject()
	pushMgr.Class = "PushManager"
	pushMgr.Set("subscribe", nat("pushManager.subscribe", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		blocked := !r.Doc.IsTopLevel()
		r.record("pushManager.subscribe", KindInvocation, []string{"push"}, false, blocked, false)
		sub := script.NewObject()
		sub.Class = "PushSubscription"
		if blocked {
			return rejectedDOMException("NotAllowedError", "push requires a top-level context"), nil
		}
		return script.ResolvedPromise(script.ObjectValue(sub)), nil
	}))
	swReg.Set("pushManager", script.ObjectValue(pushMgr))
	sw := script.NewObject()
	sw.Set("register", nat("serviceWorker.register", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return script.ResolvedPromise(script.ObjectValue(swReg)), nil
	}))
	sw.Set("ready", script.ResolvedPromise(script.ObjectValue(swReg)))
	if nav, ok := g.Get("navigator"); ok && nav.Kind() == script.KindObject {
		nav.Obj().Set("serviceWorker", script.ObjectValue(sw))
	}

	// Sensor constructors.
	sensorCtor := func(name, perm string) {
		ctor := script.NewObject()
		ctor.Call = nativeOf(name, func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
			blocked := !r.allowed(perm)
			r.record("new "+name, KindInvocation, []string{perm}, false, blocked, false)
			if blocked {
				return script.Undefined(), &script.RuntimeError{Msg: "SecurityError: " + perm + " disallowed by permissions policy"}
			}
			s := script.NewObject()
			s.Class = name
			s.Set("start", nat("start", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
				return script.Undefined(), nil
			}))
			s.Set("stop", nat("stop", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
				return script.Undefined(), nil
			}))
			s.Set("addEventListener", r.addEventListenerFn())
			return script.ObjectValue(s), nil
		})
		g.Define(name, script.ObjectValue(ctor))
	}
	sensorCtor("Accelerometer", "accelerometer")
	sensorCtor("Gyroscope", "gyroscope")
	sensorCtor("Magnetometer", "magnetometer")
	sensorCtor("AmbientLightSensor", "ambient-light-sensor")

	// PaymentRequest.
	pr := script.NewObject()
	pr.Call = nativeOf("PaymentRequest", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		blocked := !r.allowed("payment")
		r.record("new PaymentRequest", KindInvocation, []string{"payment"}, false, blocked, false)
		if blocked {
			return script.Undefined(), &script.RuntimeError{Msg: "SecurityError: payment disallowed by permissions policy"}
		}
		req := script.NewObject()
		req.Class = "PaymentRequest"
		req.Set("show", nat("PaymentRequest.show", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
			resp := script.NewObject()
			resp.Class = "PaymentResponse"
			return r.gatedPromise("PaymentRequest.show", []string{"payment"}, script.ObjectValue(resp)), nil
		}))
		req.Set("canMakePayment", nat("PaymentRequest.canMakePayment", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
			r.record("PaymentRequest.canMakePayment", KindStatusCheck, []string{"payment"}, false, false, false)
			return script.ResolvedPromise(script.Bool(true)), nil
		}))
		return script.ObjectValue(req), nil
	})
	g.Define("PaymentRequest", script.ObjectValue(pr))

	// IdleDetector with static requestPermission.
	idle := script.NewObject()
	idle.Call = nativeOf("IdleDetector", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		blocked := !r.allowed("idle-detection")
		r.record("new IdleDetector", KindInvocation, []string{"idle-detection"}, false, blocked, false)
		d := script.NewObject()
		d.Class = "IdleDetector"
		d.Set("start", nat("start", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
			return script.ResolvedPromise(script.Undefined()), nil
		}))
		d.Set("addEventListener", r.addEventListenerFn())
		return script.ObjectValue(d), nil
	})
	idle.Set("requestPermission", nat("IdleDetector.requestPermission", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		blocked := !r.allowed("idle-detection")
		r.record("IdleDetector.requestPermission", KindInvocation, []string{"idle-detection"}, false, blocked, false)
		return script.ResolvedPromise(script.String("granted")), nil
	}))
	g.Define("IdleDetector", script.ObjectValue(idle))

	// PressureObserver (compute-pressure).
	po := script.NewObject()
	po.Call = nativeOf("PressureObserver", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		blocked := !r.allowed("compute-pressure")
		r.record("new PressureObserver", KindInvocation, []string{"compute-pressure"}, false, blocked, false)
		o := script.NewObject()
		o.Class = "PressureObserver"
		o.Set("observe", nat("observe", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
			return script.ResolvedPromise(script.Undefined()), nil
		}))
		return script.ObjectValue(o), nil
	})
	g.Define("PressureObserver", script.ObjectValue(po))

	// Direct sockets.
	sockCtor := func(name string) {
		c := script.NewObject()
		c.Call = nativeOf(name, func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
			blocked := !r.allowed("direct-sockets")
			r.record("new "+name, KindInvocation, []string{"direct-sockets"}, false, blocked, false)
			s := script.NewObject()
			s.Class = name
			return script.ObjectValue(s), nil
		})
		g.Define(name, script.ObjectValue(c))
	}
	sockCtor("TCPSocket")
	sockCtor("UDPSocket")

	// queryLocalFonts / getScreenDetails are window-level functions.
	g.Define("queryLocalFonts", nat("queryLocalFonts", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		return r.gatedPromise("queryLocalFonts", []string{"local-fonts"}, script.ArrayValue()), nil
	}))
	g.Define("getScreenDetails", nat("getScreenDetails", func(_ *script.Interp, _ script.Value, _ []script.Value) (script.Value, error) {
		details := script.NewObject()
		details.Class = "ScreenDetails"
		return r.gatedPromise("getScreenDetails", []string{"window-management"}, script.ObjectValue(details)), nil
	}))
}

func nativeOf(name string, fn func(in *script.Interp, this script.Value, args []script.Value) (script.Value, error)) *script.Native {
	return &script.Native{Name: name, Fn: fn}
}
