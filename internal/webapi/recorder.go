// Package webapi builds the instrumented Web-API surface a document's
// scripts run against: navigator.permissions, mediaDevices, geolocation,
// battery, clipboard, the Permissions-Policy / Feature-Policy DOM APIs,
// Privacy-Sandbox calls, sensors, payment, credentials and more — every
// permission of Appendix A.4 plus the General Permission APIs.
//
// Every call is recorded before the "original" behaviour executes, with
// the stack trace and the invoking script's URL, exactly like the
// paper's Figure 1 wrapper. The host behaviour itself consults the
// policy engine, so blocked features reject the way a browser rejects
// them, and status checks observe the frame's real allowlist.
package webapi

import (
	"permodyssey/internal/permissions"
	"permodyssey/internal/script"
)

// Kind classifies a recorded API use, matching the paper's three
// reporting categories (§4.1).
type Kind uint8

const (
	// KindInvocation: a permission-related API was invoked (Table 4).
	KindInvocation Kind = iota
	// KindStatusCheck: the status of permissions was queried (Table 5).
	KindStatusCheck
	// KindGeneral: a General Permission API was used (specification-level
	// functions; also counted into Table 4's first row).
	KindGeneral
)

func (k Kind) String() string {
	switch k {
	case KindInvocation:
		return "invocation"
	case KindStatusCheck:
		return "status-check"
	default:
		return "general"
	}
}

// Invocation is one recorded API use.
type Invocation struct {
	// API is the instrumented expression ("navigator.permissions.query").
	API string
	// Kind is the reporting category.
	Kind Kind
	// Permissions are the specific permissions involved (from the API
	// itself, e.g. getUserMedia → camera/microphone, or from arguments,
	// e.g. query({name:'camera'}) → camera).
	Permissions []string
	// AllPermissions is set when the call retrieved the complete
	// permission list (featurePolicy.allowedFeatures & friends) — the
	// paper's dominant usage pattern ("All Permissions" in Table 5).
	AllPermissions bool
	// ScriptURL is the URL of the script attributed by the stack trace
	// ("" for inline scripts, which the paper classifies first-party).
	ScriptURL string
	// Stack is the captured stack trace.
	Stack string
	// Blocked reports that the policy engine denied the call.
	Blocked bool
	// Deprecated marks uses of the old Feature Policy API names (§6.2:
	// 429,259 websites still rely on them).
	Deprecated bool
}

// Recorder accumulates invocations for one document/execution context.
type Recorder struct {
	Invocations []Invocation
}

func (r *Recorder) record(inv Invocation) { r.Invocations = append(r.Invocations, inv) }

// ByKind returns the invocations of one kind.
func (r *Recorder) ByKind(k Kind) []Invocation {
	var out []Invocation
	for _, inv := range r.Invocations {
		if inv.Kind == k {
			out = append(out, inv)
		}
	}
	return out
}

// PermissionsSeen returns the distinct specific permissions touched by
// any record, regardless of kind.
func (r *Recorder) PermissionsSeen() []string {
	seen := map[string]bool{}
	var out []string
	for _, inv := range r.Invocations {
		for _, p := range inv.Permissions {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// UsedDeprecatedAPI reports whether any record used Feature-Policy-era
// API names.
func (r *Recorder) UsedDeprecatedAPI() bool {
	for _, inv := range r.Invocations {
		if inv.Deprecated {
			return true
		}
	}
	return false
}

// helper: resolve permission names from a query argument value.
func permissionFromQueryArg(arg script.Value) (string, bool) {
	if arg.Kind() != script.KindObject {
		return "", false
	}
	nameV, ok := arg.Obj().Get("name")
	if !ok || nameV.Kind() != script.KindString {
		return "", false
	}
	p, known := permissions.ByQueryName(nameV.Str())
	if !known {
		// Unknown query names still identify *which* string was checked;
		// record the raw name so the analysis can count it.
		return nameV.Str(), true
	}
	return p.Name, true
}
