package webapi

import (
	"encoding/json"
	"fmt"
	"testing"

	"permodyssey/internal/script"
)

// TestRealmIsolation proves realms stamped from the shared surface
// snapshot cannot observe each other's mutations: global writes, host
// object writes, and handler registrations stay realm-local.
func TestRealmIsolation(t *testing.T) {
	a := topLevelRealm(t, "")
	b := topLevelRealm(t, "")
	if err := a.RunScript(`
	window.tag = 'realm-a';
	navigator.planted = 42;
	document.body.planted = 'body-a';
	location.planted = true;
	addEventListener('click', function () {});
	`, ""); err != nil {
		t.Fatal(err)
	}
	if err := b.RunScript(`
	window.sawTag = typeof window.tag;
	window.sawNav = typeof navigator.planted;
	window.sawBody = typeof document.body.planted;
	window.sawLoc = typeof location.planted;
	`, ""); err != nil {
		t.Fatal(err)
	}
	win, _ := b.In.Global.Get("window")
	for _, key := range []string{"sawTag", "sawNav", "sawBody", "sawLoc"} {
		if v, _ := win.Obj().Get(key); v.ToString() != "undefined" {
			t.Errorf("realm B observed realm A's %s: %q", key, v.ToString())
		}
	}
	if a.HandlerCount("click") != 1 || b.HandlerCount("click") != 0 {
		t.Errorf("handlers leaked: a=%d b=%d", a.HandlerCount("click"), b.HandlerCount("click"))
	}
	// A third realm built after the mutations must come out pristine —
	// the template itself was not written through.
	c := topLevelRealm(t, "")
	if err := c.RunScript(`window.sawTag = typeof window.tag;`, ""); err != nil {
		t.Fatal(err)
	}
	winC, _ := c.In.Global.Get("window")
	if v, _ := winC.Obj().Get("sawTag"); v.ToString() != "undefined" {
		t.Error("template polluted: fresh realm observed an earlier realm's global write")
	}
}

// TestRealmGlobalAliasing verifies the cloner preserved intra-snapshot
// aliasing: window, self, and globalThis are one object; location is
// shared between window, document, and the global binding.
func TestRealmGlobalAliasing(t *testing.T) {
	r := topLevelRealm(t, "")
	if err := r.RunScript(`
	window.aliases = (window === self) && (window === globalThis);
	window.locShared = (window.location === location) && (document.location === location);
	window.navShared = (window.navigator === navigator);
	window.href = location.href;
	`, ""); err != nil {
		t.Fatal(err)
	}
	win, _ := r.In.Global.Get("window")
	for _, key := range []string{"aliases", "locShared", "navShared"} {
		if v, _ := win.Obj().Get(key); !v.Truthy() {
			t.Errorf("%s = %s; want true", key, v.ToString())
		}
	}
	if v, _ := win.Obj().Get("href"); v.ToString() != "https://example.org/" {
		t.Errorf("location.href = %q; want the frame URL", v.ToString())
	}
}

// TestRealmPerRealmState verifies the patched-in per-realm scalars and
// the call-time Browser/Version reads survive the template split.
func TestRealmPerRealmState(t *testing.T) {
	top := topLevelRealm(t, "")
	if err := top.RunScript(`
	window.ua = navigator.userAgent;
	window.secure = window.isSecureContext;
	window.origin = location.origin;
	`, ""); err != nil {
		t.Fatal(err)
	}
	win, _ := top.In.Global.Get("window")
	if v, _ := win.Obj().Get("ua"); v.ToString() != "Mozilla/5.0 (X11; Linux x86_64) Chrome/127.0.0.0" {
		t.Errorf("userAgent = %q", v.ToString())
	}
	if v, _ := win.Obj().Get("secure"); !v.Truthy() {
		t.Error("https frame must be a secure context")
	}
	if v, _ := win.Obj().Get("origin"); v.ToString() != "https://example.org" {
		t.Errorf("origin = %q", v.ToString())
	}

	emb := embeddedRealm(t, "", "")
	if err := emb.RunScript(`window.href = location.href;`, ""); err != nil {
		t.Fatal(err)
	}
	winE, _ := emb.In.Global.Get("window")
	if v, _ := winE.Obj().Get("href"); v.ToString() != "https://widget.example/embed" {
		t.Errorf("embedded href = %q", v.ToString())
	}
}

// TestServiceWorkerRegistrationsIndependent verifies register() hands
// out a fresh registration per call instead of a snapshot-shared
// singleton: a mutation through one realm's registration must not
// appear in another realm, and subscribe() still gates on context.
func TestServiceWorkerRegistrationsIndependent(t *testing.T) {
	a := topLevelRealm(t, "")
	b := topLevelRealm(t, "")
	if err := a.RunScript(`
	navigator.serviceWorker.register('/sw.js').then(function (reg) { reg.planted = 1; });
	navigator.serviceWorker.ready.then(function (reg) { reg.planted = 2; });
	`, ""); err != nil {
		t.Fatal(err)
	}
	if err := b.RunScript(`
	window.saw = 'none';
	navigator.serviceWorker.register('/sw.js').then(function (reg) {
		window.saw = typeof reg.planted;
		return reg.pushManager.subscribe();
	});
	navigator.serviceWorker.ready.then(function (reg) { window.sawReady = typeof reg.planted; });
	`, ""); err != nil {
		t.Fatal(err)
	}
	win, _ := b.In.Global.Get("window")
	if v, _ := win.Obj().Get("saw"); v.ToString() != "undefined" {
		t.Errorf("registration shared across realms: typeof planted = %q", v.ToString())
	}
	if v, _ := win.Obj().Get("sawReady"); v.ToString() != "undefined" {
		t.Errorf("ready registration shared across realms: typeof planted = %q", v.ToString())
	}
	if invs := b.Rec.ByKind(KindInvocation); len(invs) != 1 || invs[0].API != "pushManager.subscribe" || invs[0].Blocked {
		t.Errorf("subscribe via fresh registration: %+v", invs)
	}
}

// probeCorpus exercises the instrumented surface broadly — promise
// chains, callbacks, constructors, errors, handlers — so the compiled
// and tree-walk paths are compared over realistic probe scripts.
var probeCorpus = []string{
	`navigator.permissions.query({name: 'camera'}).then(function (s) { window.state = s.state; });`,
	`navigator.mediaDevices.getUserMedia({audio: true, video: true}).catch(function () {});`,
	`for (var i = 0; i < 3; i++) { navigator.clipboard.writeText('x' + i); }
	 document.featurePolicy.allowedFeatures();
	 window.n = document.featurePolicy.features().length;`,
	`var probe = function (names) {
		for (var i = 0; i < names.length; i++) {
			navigator.permissions.query({name: names[i]}).then(function (s) {
				window.last = s.name + ':' + s.state;
			});
		}
	};
	probe(['geolocation', 'camera', 'notifications']);`,
	`navigator.geolocation.getCurrentPosition(function (pos) { window.lat = pos.coords.latitude; });
	 navigator.getBattery().then(function (b) { window.level = b.level; });`,
	`try { var g = new Gyroscope(); g.start(); } catch (e) { window.err = 'caught'; }
	 document.getElementById('btn').addEventListener('click', function () {
		navigator.mediaDevices.getUserMedia({audio: true});
	 });`,
	`document.browsingTopics(); document.requestStorageAccess(); document.hasStorageAccess();
	 navigator.serviceWorker.register('/sw.js').then(function (reg) { return reg.pushManager.subscribe(); });`,
	`var el = document.createElement('video');
	 el.play(); el.requestFullscreen(); el.requestPictureInPicture();
	 new PaymentRequest([], {}).canMakePayment();`,
}

// TestCompiledRealmRecordsIdentical runs every probe through a
// tree-walking realm and a compiling realm and requires byte-identical
// recorded invocations — the zero-behavioral-diff acceptance gate.
func TestCompiledRealmRecordsIdentical(t *testing.T) {
	compileCache := script.NewCompileCache()
	for i, src := range probeCorpus {
		tree := topLevelRealm(t, "camera=(), geolocation=self")
		compiled := topLevelRealm(t, "camera=(), geolocation=self")
		compiled.CompileScript = compileCache.Compile

		url := fmt.Sprintf("https://cdn.example/probe%d.js", i)
		errTree := tree.RunScript(src, url)
		errCompiled := compiled.RunScript(src, url)
		if (errTree == nil) != (errCompiled == nil) {
			t.Fatalf("probe %d: error mismatch: tree=%v compiled=%v", i, errTree, errCompiled)
		}
		if err := tree.FireEvent("click"); err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
		if err := compiled.FireEvent("click"); err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}

		want, err := json.Marshal(tree.Rec.Invocations)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(compiled.Rec.Invocations)
		if err != nil {
			t.Fatal(err)
		}
		if string(want) != string(got) {
			t.Errorf("probe %d: recorded invocations differ\ntree:     %s\ncompiled: %s", i, want, got)
		}
	}
	if stats := compileCache.Stats(); stats.Misses == 0 {
		t.Error("compile cache never compiled anything")
	}
}
