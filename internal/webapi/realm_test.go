package webapi

import (
	"strings"
	"testing"

	"permodyssey/internal/origin"
	"permodyssey/internal/policy"
)

func topLevelRealm(t *testing.T, headerValue string) *Realm {
	t.Helper()
	var declared policy.Policy
	if headerValue != "" {
		p, _, err := policy.ParsePermissionsPolicy(headerValue)
		if err != nil {
			t.Fatalf("header %q: %v", headerValue, err)
		}
		declared = p
	}
	doc := policy.NewTopLevel(origin.MustParse("https://example.org"), declared)
	return NewRealm(doc, "https://example.org/")
}

func embeddedRealm(t *testing.T, parentHeader, allowAttr string) *Realm {
	t.Helper()
	var declared policy.Policy
	if parentHeader != "" {
		p, _, err := policy.ParsePermissionsPolicy(parentHeader)
		if err != nil {
			t.Fatal(err)
		}
		declared = p
	}
	top := policy.NewTopLevel(origin.MustParse("https://example.org"), declared)
	allow, _ := policy.ParseAllowAttr(allowAttr)
	child := origin.MustParse("https://widget.example")
	doc := policy.NewSubframe(top, policy.FrameSpec{
		SrcOrigin: child, DocumentOrigin: child, Allow: allow,
	}, policy.SpecActual)
	return NewRealm(doc, "https://widget.example/embed")
}

func apisRecorded(r *Realm) map[string]int {
	m := map[string]int{}
	for _, inv := range r.Rec.Invocations {
		m[inv.API]++
	}
	return m
}

func TestPermissionsQueryRecordsStatusCheck(t *testing.T) {
	r := topLevelRealm(t, "")
	err := r.RunScript(`navigator.permissions.query({name: 'camera'}).then(function (s) {
		window.state = s.state;
	});`, "https://cdn.example/probe.js")
	if err != nil {
		t.Fatal(err)
	}
	checks := r.Rec.ByKind(KindStatusCheck)
	if len(checks) != 1 {
		t.Fatalf("status checks: %d", len(checks))
	}
	c := checks[0]
	if c.API != "navigator.permissions.query" || len(c.Permissions) != 1 || c.Permissions[0] != "camera" {
		t.Errorf("check: %+v", c)
	}
	if c.ScriptURL != "https://cdn.example/probe.js" {
		t.Errorf("attribution: %q", c.ScriptURL)
	}
	if !strings.Contains(c.Stack, "cdn.example/probe.js") {
		t.Errorf("stack: %q", c.Stack)
	}
	if c.Blocked {
		t.Error("camera default-self at top level must not be blocked")
	}
}

func TestGetUserMediaPermissionsFromConstraints(t *testing.T) {
	r := topLevelRealm(t, "")
	if err := r.RunScript(`navigator.mediaDevices.getUserMedia({audio: true, video: true});`, ""); err != nil {
		t.Fatal(err)
	}
	invs := r.Rec.ByKind(KindInvocation)
	if len(invs) != 1 {
		t.Fatalf("invocations: %d", len(invs))
	}
	got := strings.Join(invs[0].Permissions, ",")
	if got != "microphone,camera" {
		t.Errorf("permissions: %q", got)
	}
	if invs[0].ScriptURL != "" {
		t.Errorf("inline script must attribute to the document: %q", invs[0].ScriptURL)
	}
}

func TestPolicyGatingBlocksCalls(t *testing.T) {
	// Header disables camera; getUserMedia({video}) must record blocked
	// and the script must observe the rejection.
	r := topLevelRealm(t, "camera=()")
	err := r.RunScript(`
	window.result = 'pending';
	navigator.mediaDevices.getUserMedia({video: true}).then(function () {
		window.result = 'granted';
	}).catch(function (e) {
		window.result = 'rejected:' + e.name;
	});`, "")
	if err != nil {
		t.Fatal(err)
	}
	invs := r.Rec.ByKind(KindInvocation)
	if len(invs) != 1 || !invs[0].Blocked {
		t.Fatalf("expected one blocked invocation: %+v", invs)
	}
	win, _ := r.In.Global.Get("window")
	res, _ := win.Obj().Get("result")
	if res.ToString() != "rejected:NotAllowedError" {
		t.Errorf("script observed %q", res.ToString())
	}
}

func TestQueryReportsDeniedUnderPolicy(t *testing.T) {
	r := topLevelRealm(t, "geolocation=()")
	if err := r.RunScript(`navigator.permissions.query({name:'geolocation'}).then(function(s){ window.st = s.state; });`, ""); err != nil {
		t.Fatal(err)
	}
	win, _ := r.In.Global.Get("window")
	st, _ := win.Obj().Get("st")
	if st.ToString() != "denied" {
		t.Errorf("state = %q; want denied", st.ToString())
	}
}

func TestEmbeddedFrameDelegation(t *testing.T) {
	// Without delegation: camera blocked in the iframe realm.
	r := embeddedRealm(t, "", "")
	if err := r.RunScript(`navigator.mediaDevices.getUserMedia({video:true}).catch(function(){});`, ""); err != nil {
		t.Fatal(err)
	}
	if invs := r.Rec.ByKind(KindInvocation); len(invs) != 1 || !invs[0].Blocked {
		t.Errorf("undelegated camera in iframe must be blocked: %+v", invs)
	}
	// With allow="camera": allowed.
	r2 := embeddedRealm(t, "", "camera")
	if err := r2.RunScript(`navigator.mediaDevices.getUserMedia({video:true});`, ""); err != nil {
		t.Fatal(err)
	}
	if invs := r2.Rec.ByKind(KindInvocation); len(invs) != 1 || invs[0].Blocked {
		t.Errorf("delegated camera must be allowed: %+v", invs)
	}
}

func TestFeaturePolicyAPIsAreDeprecatedAndAllFlagged(t *testing.T) {
	r := topLevelRealm(t, "")
	if err := r.RunScript(`
	var fp = document.featurePolicy.allowedFeatures();
	var pp = document.permissionsPolicy.allowedFeatures();
	window.hasCamera = fp.includes('camera');
	`, "https://legacy.example/lib.js"); err != nil {
		t.Fatal(err)
	}
	checks := r.Rec.ByKind(KindStatusCheck)
	if len(checks) != 2 {
		t.Fatalf("checks: %d", len(checks))
	}
	if !checks[0].Deprecated || !checks[0].AllPermissions {
		t.Errorf("featurePolicy call: %+v", checks[0])
	}
	if checks[1].Deprecated {
		t.Errorf("permissionsPolicy call must not be deprecated: %+v", checks[1])
	}
	if !r.Rec.UsedDeprecatedAPI() {
		t.Error("recorder must flag deprecated API usage")
	}
	win, _ := r.In.Global.Get("window")
	v, _ := win.Obj().Get("hasCamera")
	if !v.Truthy() {
		t.Error("allowedFeatures must include camera at top level")
	}
}

func TestAllowsFeatureReflectsPolicy(t *testing.T) {
	r := topLevelRealm(t, "microphone=()")
	if err := r.RunScript(`
	window.mic = document.featurePolicy.allowsFeature('microphone');
	window.cam = document.featurePolicy.allowsFeature('camera');
	`, ""); err != nil {
		t.Fatal(err)
	}
	win, _ := r.In.Global.Get("window")
	mic, _ := win.Obj().Get("mic")
	cam, _ := win.Obj().Get("cam")
	if mic.Truthy() || !cam.Truthy() {
		t.Errorf("mic=%v cam=%v", mic.ToString(), cam.ToString())
	}
}

func TestNotificationsTopLevelOnly(t *testing.T) {
	top := topLevelRealm(t, "")
	if err := top.RunScript(`Notification.requestPermission();`, ""); err != nil {
		t.Fatal(err)
	}
	if invs := top.Rec.ByKind(KindInvocation); len(invs) != 1 || invs[0].Blocked {
		t.Errorf("top-level notification must be allowed: %+v", invs)
	}
	frame := embeddedRealm(t, "", "")
	if err := frame.RunScript(`Notification.requestPermission();`, ""); err != nil {
		t.Fatal(err)
	}
	if invs := frame.Rec.ByKind(KindInvocation); len(invs) != 1 || !invs[0].Blocked {
		t.Errorf("embedded notification must be blocked (not delegatable): %+v", invs)
	}
}

func TestConstructorAPIs(t *testing.T) {
	r := topLevelRealm(t, "")
	src := `
	var a = new Accelerometer();
	a.start();
	var p = new PaymentRequest([], {});
	p.canMakePayment();
	var n = new Notification('hello');
	`
	if err := r.RunScript(src, "https://shop.example/pay.js"); err != nil {
		t.Fatal(err)
	}
	apis := apisRecorded(r)
	for _, want := range []string{"new Accelerometer", "new PaymentRequest", "PaymentRequest.canMakePayment", "new Notification"} {
		if apis[want] == 0 {
			t.Errorf("missing record for %s: %v", want, apis)
		}
	}
}

func TestSensorBlockedThrowsCatchable(t *testing.T) {
	r := embeddedRealm(t, "", "") // gyroscope default self → blocked cross-origin
	if err := r.RunScript(`
	window.err = '';
	try { var g = new Gyroscope(); g.start(); } catch (e) { window.err = 'caught'; }
	`, ""); err != nil {
		t.Fatal(err)
	}
	win, _ := r.In.Global.Get("window")
	v, _ := win.Obj().Get("err")
	if v.ToString() != "caught" {
		t.Error("blocked sensor construction must throw catchably")
	}
	if invs := r.Rec.ByKind(KindInvocation); len(invs) != 1 || !invs[0].Blocked {
		t.Errorf("blocked gyroscope: %+v", invs)
	}
}

func TestGeolocationCallbacks(t *testing.T) {
	r := topLevelRealm(t, "")
	if err := r.RunScript(`
	window.lat = 0;
	navigator.geolocation.getCurrentPosition(function (pos) { window.lat = pos.coords.latitude; });
	`, ""); err != nil {
		t.Fatal(err)
	}
	win, _ := r.In.Global.Get("window")
	lat, _ := win.Obj().Get("lat")
	if lat.Num() != 52.52 {
		t.Errorf("lat = %v", lat.ToString())
	}
	// Blocked: error callback path.
	r2 := topLevelRealm(t, "geolocation=()")
	if err := r2.RunScript(`
	window.code = 0;
	navigator.geolocation.getCurrentPosition(function () {}, function (e) { window.code = e.code; });
	`, ""); err != nil {
		t.Fatal(err)
	}
	win2, _ := r2.In.Global.Get("window")
	code, _ := win2.Obj().Get("code")
	if code.Num() != 1 {
		t.Errorf("error code = %v; want 1 (PERMISSION_DENIED)", code.ToString())
	}
}

func TestEventHandlersAndInteraction(t *testing.T) {
	// The Table 12 mechanism: a permission call hidden behind a click is
	// only observed after the interaction pass fires the handler.
	r := topLevelRealm(t, "")
	if err := r.RunScript(`
	document.getElementById('btn').addEventListener('click', function () {
		navigator.mediaDevices.getUserMedia({audio: true});
	});
	`, "https://site.example/app.js"); err != nil {
		t.Fatal(err)
	}
	if len(r.Rec.ByKind(KindInvocation)) != 0 {
		t.Fatal("no invocation before interaction")
	}
	if r.HandlerCount("click") != 1 {
		t.Fatalf("click handlers: %d", r.HandlerCount("click"))
	}
	if err := r.FireEvent("click"); err != nil {
		t.Fatal(err)
	}
	invs := r.Rec.ByKind(KindInvocation)
	if len(invs) != 1 || invs[0].Permissions[0] != "microphone" {
		t.Fatalf("after click: %+v", invs)
	}
	// Attribution: handler was defined by app.js, so the invocation must
	// attribute there even though the event fired from the host.
	if invs[0].ScriptURL != "https://site.example/app.js" {
		t.Errorf("attribution after event: %q", invs[0].ScriptURL)
	}
}

func TestBatteryAndTopicsAndStorageAccess(t *testing.T) {
	r := topLevelRealm(t, "")
	if err := r.RunScript(`
	navigator.getBattery().then(function (b) { window.level = b.level; });
	document.browsingTopics();
	document.requestStorageAccess();
	document.hasStorageAccess();
	`, "https://tracker.example/t.js"); err != nil {
		t.Fatal(err)
	}
	apis := apisRecorded(r)
	for _, want := range []string{"navigator.getBattery", "document.browsingTopics", "document.requestStorageAccess", "document.hasStorageAccess"} {
		if apis[want] == 0 {
			t.Errorf("missing %s: %v", want, apis)
		}
	}
	win, _ := r.In.Global.Get("window")
	level, _ := win.Obj().Get("level")
	if level.Num() != 0.87 {
		t.Errorf("battery level = %v", level.ToString())
	}
	seen := r.Rec.PermissionsSeen()
	joined := strings.Join(seen, ",")
	for _, p := range []string{"battery", "browsing-topics", "storage-access"} {
		if !strings.Contains(joined, p) {
			t.Errorf("permissions seen %v missing %s", seen, p)
		}
	}
}

func TestUnknownQueryNameRecordedRaw(t *testing.T) {
	r := topLevelRealm(t, "")
	if err := r.RunScript(`navigator.permissions.query({name: 'made-up'}).then(function(){});`, ""); err != nil {
		t.Fatal(err)
	}
	checks := r.Rec.ByKind(KindStatusCheck)
	if len(checks) != 1 || checks[0].Permissions[0] != "made-up" {
		t.Errorf("raw name: %+v", checks)
	}
}

func TestClipboardSplit(t *testing.T) {
	r := topLevelRealm(t, "")
	if err := r.RunScript(`
	navigator.clipboard.writeText('link');
	navigator.clipboard.readText();
	`, ""); err != nil {
		t.Fatal(err)
	}
	var perms []string
	for _, inv := range r.Rec.ByKind(KindInvocation) {
		perms = append(perms, inv.Permissions...)
	}
	got := strings.Join(perms, ",")
	if got != "clipboard-write,clipboard-read" {
		t.Errorf("clipboard perms: %q", got)
	}
}

func TestFingerprintSurfaceThroughFeatures(t *testing.T) {
	r := topLevelRealm(t, "")
	if err := r.RunScript(`window.count = document.featurePolicy.features().length;`, ""); err != nil {
		t.Fatal(err)
	}
	win, _ := r.In.Global.Get("window")
	count, _ := win.Obj().Get("count")
	if count.Num() < 30 {
		t.Errorf("Chromium 127 surface too small: %v", count.ToString())
	}
	// An older "browser" exposes fewer features — the version
	// fingerprint of §4.1.1.
	r2 := topLevelRealm(t, "")
	r2.Version = 80
	if err := r2.RunScript(`window.count = document.featurePolicy.features().length;`, ""); err != nil {
		t.Fatal(err)
	}
	win2, _ := r2.In.Global.Get("window")
	count2, _ := win2.Obj().Get("count")
	if count2.Num() >= count.Num() {
		t.Errorf("v80 surface (%v) should be smaller than v127 (%v)", count2.ToString(), count.ToString())
	}
}

func BenchmarkRealmProbeScript(b *testing.B) {
	doc := policy.NewTopLevel(origin.MustParse("https://example.org"), policy.Policy{})
	src := `
	document.featurePolicy.allowedFeatures();
	navigator.permissions.query({name: 'notifications'});
	navigator.getBattery();
	`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewRealm(doc, "https://example.org/")
		if err := r.RunScript(src, "https://cdn.example/p.js"); err != nil {
			b.Fatal(err)
		}
	}
}
