package policy

import (
	"permodyssey/internal/header"
)

// ReportingEndpoints extracts the report-to parameters of a
// Permissions-Policy header value: the Reporting API integration that
// lets a site monitor would-be violations. Returns feature → endpoint
// name for every directive carrying a report-to parameter.
//
// This covers the specification's reporting extension, which the paper
// lists under future ecosystem development; the
// Permissions-Policy-Report-Only header (parsed with the same grammar)
// lets sites trial a policy without enforcement, mirroring CSP's
// report-only mode.
func ReportingEndpoints(value string) (map[string]string, error) {
	dict, err := header.ParseDictionary(value)
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	for _, m := range dict.Members {
		params := m.Params
		if !m.IsInner {
			params = m.Item.Params
		}
		for _, p := range params {
			if p.Key != "report-to" {
				continue
			}
			switch p.Value.Kind {
			case header.KindToken:
				out[m.Key] = p.Value.Token
			case header.KindString:
				out[m.Key] = p.Value.String
			}
		}
	}
	return out, nil
}

// ParseReportOnly parses a Permissions-Policy-Report-Only header value.
// The grammar is identical to the enforced header; the semantics are
// observe-only, so the result is returned as a Policy plus the
// reporting endpoints, and is never fed to the enforcement engine.
func ParseReportOnly(value string) (Policy, map[string]string, []Issue, error) {
	p, issues, err := ParsePermissionsPolicy(value)
	if err != nil {
		return Policy{}, nil, issues, err
	}
	endpoints, err := ReportingEndpoints(value)
	if err != nil {
		return Policy{}, nil, issues, err
	}
	return p, endpoints, issues, nil
}
