package policy

import (
	"permodyssey/internal/origin"
	"permodyssey/internal/permissions"
)

// SpecMode selects between the Permissions Policy specification as
// written (which Chromium implements, including the local-scheme
// inheritance defect the paper reports in §6.2 / W3C issue 552) and the
// behaviour the paper argues developers expect.
type SpecMode uint8

const (
	// SpecActual models the specification as written: local-scheme
	// documents (data:, about:srcdoc, blob:, javascript:) do NOT inherit
	// the declared policy of their parent. A page that declares
	// camera=(self) can therefore be bypassed by creating a local-scheme
	// iframe which, carrying no declared policy of its own, re-delegates
	// camera to an arbitrary third party.
	SpecActual SpecMode = iota
	// SpecExpected models the fixed behaviour: local-scheme documents
	// inherit their parent's declared policy, so the parent's
	// restrictions keep binding nested delegations.
	SpecExpected
)

func (m SpecMode) String() string {
	if m == SpecExpected {
		return "expected"
	}
	return "actual-specification"
}

// Document is a document with its computed Permissions Policy: the
// declared policy (from its own headers — or, for local-scheme
// documents under SpecExpected, inherited from the parent) and the
// per-feature inherited policy computed from the embedding context.
type Document struct {
	// Origin is the document's effective origin for policy evaluation.
	// Local-scheme documents evaluate with their parent's origin (they
	// are "the same site" for prompting purposes; the prompt says
	// "example.org is asking to use your camera", §2.2.2).
	Origin origin.Origin
	// Declared is the policy from the document's Permissions-Policy (or
	// fallback Feature-Policy) header.
	Declared Policy
	// LocalScheme marks documents loaded from local schemes.
	LocalScheme bool

	parent    *Document
	inherited map[string]bool
}

// NewTopLevel creates the policy document for a top-level navigation.
func NewTopLevel(o origin.Origin, declared Policy) *Document {
	d := &Document{Origin: o, Declared: declared}
	d.computeInherited(nil, Policy{}, origin.Origin{})
	return d
}

// FrameSpec describes an iframe being loaded, as the engine needs it.
type FrameSpec struct {
	// SrcOrigin is the origin of the frame's src URL (the 'src' keyword
	// target). Zero for local-scheme frames.
	SrcOrigin origin.Origin
	// DocumentOrigin is the origin of the document that actually loaded
	// (usually SrcOrigin; differs after redirects).
	DocumentOrigin origin.Origin
	// Allow is the parsed allow attribute (container policy).
	Allow Policy
	// Declared is the child document's own header policy.
	Declared Policy
	// LocalScheme marks data:/about:/blob:/javascript: frames.
	LocalScheme bool
}

// NewSubframe computes the policy document for a frame embedded in
// parent, per the specification's inherited-policy algorithm, under the
// given SpecMode.
func NewSubframe(parent *Document, spec FrameSpec, mode SpecMode) *Document {
	d := &Document{LocalScheme: spec.LocalScheme, parent: parent}
	childOrigin := spec.DocumentOrigin
	srcOrigin := spec.SrcOrigin
	if spec.LocalScheme {
		// Local-scheme frames have no network src; the 'src' keyword (the
		// allow attribute's default) resolves to the embedding context.
		srcOrigin = parent.Origin
		// Local-scheme documents evaluate with the parent's origin: the
		// user-visible context (and the prompt) is the embedding page.
		childOrigin = parent.Origin
		switch mode {
		case SpecExpected:
			d.Declared = parent.Declared
		case SpecActual:
			// The defect: the parent's declared policy is NOT inherited.
			d.Declared = spec.Declared
		}
	} else {
		d.Declared = spec.Declared
	}
	d.Origin = childOrigin
	d.computeInherited(parent, spec.Allow, srcOrigin)
	return d
}

// computeInherited runs "Define an inherited policy for feature in
// container at origin" for every policy-controlled feature.
func (d *Document) computeInherited(parent *Document, containerPolicy Policy, srcOrigin origin.Origin) {
	d.inherited = make(map[string]bool)
	for _, p := range permissions.All() {
		if !p.PolicyControlled() {
			continue
		}
		d.inherited[p.Name] = inheritedPolicyFor(p, parent, containerPolicy, d.Origin, srcOrigin)
	}
}

// inheritedPolicyFor implements the specification algorithm:
//
//  1. If container is null, return Enabled.
//  2. If feature is Disabled in the container document for the container
//     document's origin, return Disabled.
//  3. If feature is Disabled in the container document for the new
//     document's origin, return Disabled.
//  4. If feature is present in the container policy (allow attribute),
//     return whether its allowlist matches the new document's origin.
//  5. If the feature's default allowlist is *, return Enabled.
//  6. If the feature's default allowlist is 'self' and the new origin is
//     same origin with the container document's origin, return Enabled.
//  7. Return Disabled.
func inheritedPolicyFor(p permissions.Permission, parent *Document, containerPolicy Policy,
	childOrigin, srcOrigin origin.Origin) bool {
	if parent == nil {
		return true
	}
	if !parent.EnabledForOrigin(p.Name, parent.Origin) {
		return false
	}
	if !parent.EnabledForOrigin(p.Name, childOrigin) {
		return false
	}
	if al, ok := containerPolicy.Get(p.Name); ok {
		return al.Matches(childOrigin, parent.Origin, srcOrigin)
	}
	switch p.Default {
	case permissions.DefaultAll:
		return true
	case permissions.DefaultSelf:
		return childOrigin.SameOrigin(parent.Origin)
	}
	return false
}

// EnabledForOrigin implements "Is feature enabled in document for
// origin?":
//
//  1. If the inherited policy for feature is Disabled, return Disabled.
//  2. If feature is in the declared policy, return whether its allowlist
//     matches origin.
//  3. Return Enabled (the inherited policy was Enabled).
//
// Features that are not policy-controlled are enabled exactly in
// top-level documents (paper §4.1.1: notifications "cannot be
// delegated", hence the low embedded counts).
func (d *Document) EnabledForOrigin(feature string, o origin.Origin) bool {
	p, known := permissions.Lookup(feature)
	if known && !p.PolicyControlled() {
		return d.parent == nil
	}
	if !d.inherited[feature] {
		return false
	}
	if al, ok := d.Declared.Get(feature); ok {
		return al.Matches(o, d.Origin, origin.Origin{})
	}
	return true
}

// Allowed reports whether the document itself may use the feature — the
// condition for the corresponding APIs being callable (and, for
// powerful features, for the browser being willing to prompt).
func (d *Document) Allowed(feature string) bool {
	return d.EnabledForOrigin(feature, d.Origin)
}

// AllowedFeatures returns the features allowed in this document, in
// registry order — the value the
// document.featurePolicy.allowedFeatures() / permissionsPolicy API
// exposes to scripts (heavily called per Table 4/5).
func (d *Document) AllowedFeatures() []string {
	var out []string
	for _, p := range permissions.All() {
		if p.PolicyControlled() && d.Allowed(p.Name) {
			out = append(out, p.Name)
		}
	}
	return out
}

// CanDelegate reports whether this document can delegate the feature to
// a child at childOrigin via an allow attribute — i.e. whether the
// feature would be enabled in the child (before the child's own header).
// "Only permissions that a website has access to itself can be
// delegated" (§2.2.2).
func (d *Document) CanDelegate(feature string, childOrigin origin.Origin) bool {
	p, ok := permissions.Lookup(feature)
	if !ok || !p.PolicyControlled() {
		return false
	}
	allow := Policy{Directives: []Directive{{
		Feature:   feature,
		Allowlist: Allowlist{Origins: []string{childOrigin.String()}},
	}}}
	child := NewSubframe(d, FrameSpec{
		SrcOrigin:      childOrigin,
		DocumentOrigin: childOrigin,
		Allow:          allow,
	}, SpecActual)
	return child.Allowed(feature)
}

// Parent returns the embedding document, or nil for top-level.
func (d *Document) Parent() *Document { return d.parent }

// IsTopLevel reports whether this is a top-level document.
func (d *Document) IsTopLevel() bool { return d.parent == nil }
