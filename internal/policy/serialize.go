package policy

import (
	"strings"
)

// HeaderValue serializes the policy as a Permissions-Policy header value.
func (p Policy) HeaderValue() string {
	parts := make([]string, 0, len(p.Directives))
	for _, d := range p.Directives {
		al := d.Allowlist
		if al.All {
			parts = append(parts, d.Feature+"=*")
			continue
		}
		parts = append(parts, d.Feature+"="+al.String())
	}
	return strings.Join(parts, ", ")
}

// FeaturePolicyValue serializes the policy in the legacy Feature-Policy
// header syntax.
func (p Policy) FeaturePolicyValue() string {
	parts := make([]string, 0, len(p.Directives))
	for _, d := range p.Directives {
		parts = append(parts, d.Feature+" "+legacyEntries(d.Allowlist, false))
	}
	return strings.Join(parts, "; ")
}

// AllowAttrValue serializes the policy as an iframe allow attribute.
// Directives whose allowlist is exactly 'src' are emitted bare, the
// idiomatic (and 82.12%-prevalent) form.
func (p Policy) AllowAttrValue() string {
	parts := make([]string, 0, len(p.Directives))
	for _, d := range p.Directives {
		al := d.Allowlist
		if al.Src && !al.All && !al.Self && len(al.Origins) == 0 {
			parts = append(parts, d.Feature)
			continue
		}
		parts = append(parts, d.Feature+" "+legacyEntries(al, true))
	}
	return strings.Join(parts, "; ")
}

func legacyEntries(al Allowlist, attr bool) string {
	if al.All {
		return "*"
	}
	if al.None() {
		return "'none'"
	}
	var entries []string
	if al.Self {
		entries = append(entries, "'self'")
	}
	if al.Src {
		entries = append(entries, "'src'")
	}
	entries = append(entries, al.Origins...)
	_ = attr
	return strings.Join(entries, " ")
}

// Lint parses and lints a Permissions-Policy header value, returning
// every finding. Unlike ParsePermissionsPolicy it also reports
// advisory findings that depend on header position (top-level wildcard
// uselessness).
func Lint(value string, topLevel bool) []Issue {
	p, issues, err := ParsePermissionsPolicy(value)
	if err != nil {
		return issues
	}
	if topLevel {
		for _, d := range p.Directives {
			if d.Allowlist.All {
				issues = append(issues, Issue{Kind: IssueUselessWildcard, Feature: d.Feature,
					Detail: "the header can only restrict; granting * has no effect beyond the default"})
			}
		}
	}
	return issues
}

// HasBlockingIssue reports whether any issue invalidates the whole
// header (syntax-class kinds).
func HasBlockingIssue(issues []Issue) bool {
	for _, i := range issues {
		switch i.Kind {
		case IssueSyntax, IssueFeaturePolicySyntax, IssueTrailingComma:
			return true
		}
	}
	return false
}
