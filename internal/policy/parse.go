package policy

import (
	"fmt"
	"strings"

	"permodyssey/internal/header"
	"permodyssey/internal/origin"
	"permodyssey/internal/permissions"
)

// IssueKind classifies a misconfiguration (§4.3.3). SyntaxError-class
// issues drop the whole header; the remaining kinds parse but are
// semantically wrong or useless.
type IssueKind string

const (
	// IssueSyntax: the header failed structured-field parsing; the
	// browser removes the complete header and the site falls back to the
	// default allowlists.
	IssueSyntax IssueKind = "syntax-error"
	// IssueFeaturePolicySyntax: the Permissions-Policy header was
	// written in Feature-Policy syntax — the most common parse error
	// the paper found.
	IssueFeaturePolicySyntax IssueKind = "feature-policy-syntax"
	// IssueTrailingComma: misplaced/trailing comma invalidating the header.
	IssueTrailingComma IssueKind = "trailing-comma"
	// IssueUnknownFeature: directive for a feature no browser knows.
	IssueUnknownFeature IssueKind = "unknown-feature"
	// IssueUnrecognizedToken: tokens such as `none` or `0` inside an
	// allowlist; browsers ignore them silently.
	IssueUnrecognizedToken IssueKind = "unrecognized-token"
	// IssueUnquotedOrigin: a URL written as a bare token instead of a
	// double-quoted string; browsers ignore it.
	IssueUnquotedOrigin IssueKind = "unquoted-origin"
	// IssueContradictory: directives combining self (or origins) with *,
	// e.g. camera=(self *): the wildcard makes the rest meaningless.
	IssueContradictory IssueKind = "contradictory-directive"
	// IssueOriginsWithoutSelf: a URL-only allowlist lacking self, which
	// the specification does not allow to take effect for delegation
	// (paper §2.2.4 case #8, W3C issue 480).
	IssueOriginsWithoutSelf IssueKind = "origins-without-self"
	// IssueInvalidOrigin: a quoted string that is not a parseable origin.
	IssueInvalidOrigin IssueKind = "invalid-origin"
	// IssueDuplicateFeature: the same feature declared more than once.
	IssueDuplicateFeature IssueKind = "duplicate-feature"
	// IssueUselessWildcard: a top-level header granting * — the header
	// can only restrict, so this "has no real effect" (§4.3.1).
	IssueUselessWildcard IssueKind = "useless-wildcard"
)

// Issue is one linter finding.
type Issue struct {
	Kind    IssueKind
	Feature string
	Detail  string
}

func (i Issue) String() string {
	if i.Feature != "" {
		return fmt.Sprintf("%s [%s]: %s", i.Kind, i.Feature, i.Detail)
	}
	return fmt.Sprintf("%s: %s", i.Kind, i.Detail)
}

// ParsePermissionsPolicy parses a Permissions-Policy header value.
// A non-nil error means the whole header is invalid and must be treated
// as absent (browser behaviour). Issues are returned in both cases:
// with an error they classify the syntax failure; without one they are
// semantic misconfigurations in an otherwise enforced header.
func ParsePermissionsPolicy(value string) (Policy, []Issue, error) {
	dict, err := header.ParseDictionary(value)
	if err != nil {
		return Policy{}, []Issue{classifySyntaxError(value, err)}, err
	}
	var p Policy
	var issues []Issue
	seen := map[string]bool{}
	for _, m := range dict.Members {
		feature := m.Key
		if seen[feature] {
			issues = append(issues, Issue{Kind: IssueDuplicateFeature, Feature: feature,
				Detail: "feature declared more than once; the last declaration wins"})
		}
		seen[feature] = true
		if !permissions.Known(feature) {
			issues = append(issues, Issue{Kind: IssueUnknownFeature, Feature: feature,
				Detail: "no browser recognizes this feature name"})
		}
		al, dirIssues := allowlistFromMember(m, feature)
		issues = append(issues, dirIssues...)
		p = upsert(p, Directive{Feature: feature, Allowlist: al})
	}
	return p, issues, nil
}

// upsert replaces an existing directive for the feature (last wins, per
// the dictionary semantics) or appends a new one.
func upsert(p Policy, d Directive) Policy {
	for i := range p.Directives {
		if p.Directives[i].Feature == d.Feature {
			p.Directives[i] = d
			return p
		}
	}
	p.Directives = append(p.Directives, d)
	return p
}

func allowlistFromMember(m header.Member, feature string) (Allowlist, []Issue) {
	var al Allowlist
	var issues []Issue
	items := m.Inner
	if !m.IsInner {
		items = []header.Item{m.Item}
	}
	for _, it := range items {
		switch it.Kind {
		case header.KindToken:
			switch it.Token {
			case "*":
				al.All = true
			case "self":
				al.Self = true
			case "src":
				al.Src = true
			case "none":
				issues = append(issues, Issue{Kind: IssueUnrecognizedToken, Feature: feature,
					Detail: "`none` is not a Permissions-Policy token; use an empty allowlist ()"})
			default:
				if strings.Contains(it.Token, "://") || strings.Contains(it.Token, ".") {
					issues = append(issues, Issue{Kind: IssueUnquotedOrigin, Feature: feature,
						Detail: fmt.Sprintf("origin %q must be a double-quoted string", it.Token)})
				} else {
					issues = append(issues, Issue{Kind: IssueUnrecognizedToken, Feature: feature,
						Detail: fmt.Sprintf("unrecognized token %q ignored", it.Token)})
				}
			}
		case header.KindString:
			if _, err := origin.Parse(it.String); err != nil || origin.IsLocalURL(it.String) {
				issues = append(issues, Issue{Kind: IssueInvalidOrigin, Feature: feature,
					Detail: fmt.Sprintf("%q is not a valid origin", it.String)})
				continue
			}
			al.Origins = append(al.Origins, it.String)
		default:
			issues = append(issues, Issue{Kind: IssueUnrecognizedToken, Feature: feature,
				Detail: "numbers and booleans are not allowlist entries"})
		}
	}
	if al.All && (al.Self || len(al.Origins) > 0) {
		issues = append(issues, Issue{Kind: IssueContradictory, Feature: feature,
			Detail: "wildcard * combined with self/origins; the other entries are redundant"})
	}
	if !al.All && !al.Self && len(al.Origins) > 0 {
		issues = append(issues, Issue{Kind: IssueOriginsWithoutSelf, Feature: feature,
			Detail: "url directives lacking self are not allowed (W3C issue 480); delegation will not work"})
	}
	return al, issues
}

// classifySyntaxError heuristically labels why a header failed to parse,
// reproducing the misconfiguration taxonomy of §4.3.3.
func classifySyntaxError(value string, err error) Issue {
	trimmed := strings.TrimSpace(value)
	switch {
	case looksLikeFeaturePolicy(trimmed):
		return Issue{Kind: IssueFeaturePolicySyntax,
			Detail: "header uses the deprecated Feature-Policy syntax; the browser drops it entirely"}
	case strings.HasSuffix(trimmed, ","):
		return Issue{Kind: IssueTrailingComma,
			Detail: "header ends with a comma, invalidating the whole header"}
	default:
		return Issue{Kind: IssueSyntax, Detail: err.Error()}
	}
}

// looksLikeFeaturePolicy detects the legacy "feature 'self' origin;"
// shape inside a Permissions-Policy value.
func looksLikeFeaturePolicy(value string) bool {
	if strings.Contains(value, "'self'") || strings.Contains(value, "'none'") ||
		strings.Contains(value, "'src'") {
		return true
	}
	// "camera self; geolocation none" — directives separated by
	// semicolons with space-separated values and no '='.
	if strings.Contains(value, ";") && !strings.Contains(value, "=") {
		return true
	}
	first := value
	if i := strings.IndexAny(value, ";,"); i >= 0 {
		first = value[:i]
	}
	first = strings.TrimSpace(first)
	if name, rest, ok := strings.Cut(first, " "); ok && !strings.Contains(name, "=") && rest != "" {
		return permissions.Known(name)
	}
	return false
}

// ParseFeaturePolicy parses the legacy Feature-Policy header value:
// semicolon-separated directives of the form
//
//	feature-name value*   with values *, 'self', 'none', 'src', origins.
//
// Browsers skip invalid directives individually rather than dropping the
// header, so this parser is tolerant and reports issues per directive.
func ParseFeaturePolicy(value string) (Policy, []Issue) {
	return parseLegacy(value, false)
}

// ParseAllowAttr parses an iframe allow attribute (§2.2.2). The syntax
// is the legacy one; a directive with no values defaults to 'src'
// (§4.2.2: 82.12% of delegations rely on that default).
func ParseAllowAttr(value string) (Policy, []Issue) {
	return parseLegacy(value, true)
}

func parseLegacy(value string, allowAttr bool) (Policy, []Issue) {
	var p Policy
	var issues []Issue
	for _, raw := range strings.Split(value, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		fields := strings.Fields(raw)
		feature := strings.ToLower(fields[0])
		if !validFeatureToken(feature) {
			issues = append(issues, Issue{Kind: IssueSyntax, Feature: feature,
				Detail: fmt.Sprintf("invalid feature token %q; directive skipped", fields[0])})
			continue
		}
		if !permissions.Known(feature) {
			issues = append(issues, Issue{Kind: IssueUnknownFeature, Feature: feature,
				Detail: "no browser recognizes this feature name"})
		}
		var al Allowlist
		explicitNone := false
		for _, v := range fields[1:] {
			switch strings.ToLower(v) {
			case "*":
				al.All = true
			case "'self'", "self":
				al.Self = true
			case "'src'", "src":
				al.Src = true
			case "'none'", "none":
				explicitNone = true
			default:
				if _, err := origin.Parse(v); err != nil || origin.IsLocalURL(v) {
					issues = append(issues, Issue{Kind: IssueInvalidOrigin, Feature: feature,
						Detail: fmt.Sprintf("%q is not a valid origin", v)})
					continue
				}
				al.Origins = append(al.Origins, v)
			}
		}
		if explicitNone {
			if !al.None() {
				issues = append(issues, Issue{Kind: IssueContradictory, Feature: feature,
					Detail: "'none' combined with other entries; 'none' wins"})
			}
			al = Allowlist{}
		} else if allowAttr && al.None() {
			// Bare directive in an allow attribute defaults to 'src'.
			al.Src = true
		}
		if al.All && (al.Self || al.Src || len(al.Origins) > 0) {
			issues = append(issues, Issue{Kind: IssueContradictory, Feature: feature,
				Detail: "wildcard * combined with other entries; the rest is redundant"})
		}
		if prev, dup := p.Get(feature); dup {
			issues = append(issues, Issue{Kind: IssueDuplicateFeature, Feature: feature,
				Detail: "feature declared more than once; entries merged"})
			al = prev.Merge(al)
		}
		p = upsert(p, Directive{Feature: feature, Allowlist: al})
	}
	return p, issues
}

func validFeatureToken(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-':
		default:
			return false
		}
	}
	return true
}

// DelegationDirectiveKind classifies how a single allow-attribute
// directive was expressed, feeding §4.2.2's distribution (default-src
// 82.12%, * 17.17%, explicit src 0.40%, none 0.15%, single origin 0.16%).
type DelegationDirectiveKind string

const (
	DelegationDefaultSrc  DelegationDirectiveKind = "default-src"
	DelegationWildcard    DelegationDirectiveKind = "wildcard"
	DelegationExplicitSrc DelegationDirectiveKind = "explicit-src"
	DelegationNone        DelegationDirectiveKind = "none"
	DelegationOrigin      DelegationDirectiveKind = "single-origin"
	DelegationSelf        DelegationDirectiveKind = "self"
)

// ClassifyAllowDirective classifies one raw allow-attribute directive.
func ClassifyAllowDirective(raw string) (feature string, kind DelegationDirectiveKind, ok bool) {
	fields := strings.Fields(strings.TrimSpace(raw))
	if len(fields) == 0 || !validFeatureToken(strings.ToLower(fields[0])) {
		return "", "", false
	}
	feature = strings.ToLower(fields[0])
	if len(fields) == 1 {
		return feature, DelegationDefaultSrc, true
	}
	switch strings.ToLower(fields[1]) {
	case "*":
		return feature, DelegationWildcard, true
	case "'src'", "src":
		return feature, DelegationExplicitSrc, true
	case "'none'", "none":
		return feature, DelegationNone, true
	case "'self'", "self":
		return feature, DelegationSelf, true
	default:
		return feature, DelegationOrigin, true
	}
}
