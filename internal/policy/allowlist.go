// Package policy implements the Permissions Policy machinery the paper
// studies: the Permissions-Policy header (RFC 8941 structured-field
// syntax), the deprecated Feature-Policy header and the iframe allow
// attribute (legacy ASCII syntax), allowlist matching, the
// specification's inherited-policy algorithm — including the
// local-scheme inheritance bug of §6.2 — and a misconfiguration linter
// covering the defect classes of §4.3.3.
package policy

import (
	"fmt"
	"sort"
	"strings"

	"permodyssey/internal/origin"
)

// Allowlist is the set of origins a directive grants a feature to
// (§2.2.1). The zero value is the empty allowlist ('none' / "()"),
// which matches nothing.
type Allowlist struct {
	// All is the wildcard '*': matches every origin, including after
	// redirections (§4.2.2 flags this as the risky convenience choice).
	All bool
	// Self matches the origin of the declaring document.
	Self bool
	// Src matches the origin the iframe's src attribute points to; only
	// meaningful in allow attributes, where it is also the default.
	Src bool
	// Origins are explicit origins, serialized.
	Origins []string
}

// None reports whether the allowlist is empty (matches nothing).
func (a Allowlist) None() bool {
	return !a.All && !a.Self && !a.Src && len(a.Origins) == 0
}

// Matches reports whether the allowlist matches the given origin.
// self is the origin of the declaring document; src is the origin of the
// iframe's src attribute (zero Origin when not applicable).
func (a Allowlist) Matches(o, self, src origin.Origin) bool {
	if a.All {
		return true
	}
	if a.Self && o.SameOrigin(self) {
		return true
	}
	if a.Src && o.SameOrigin(src) {
		return true
	}
	for _, entry := range a.Origins {
		eo, err := origin.Parse(entry)
		if err != nil {
			continue
		}
		if o.SameOrigin(eo) {
			return true
		}
	}
	return false
}

// Merge returns the union of two allowlists (used when duplicate
// directives for a feature appear in a legacy header: browsers combine
// the first occurrence's list; we keep the union, the linter flags the
// duplication anyway).
func (a Allowlist) Merge(b Allowlist) Allowlist {
	out := Allowlist{
		All:  a.All || b.All,
		Self: a.Self || b.Self,
		Src:  a.Src || b.Src,
	}
	seen := map[string]bool{}
	for _, o := range append(append([]string{}, a.Origins...), b.Origins...) {
		if !seen[o] {
			seen[o] = true
			out.Origins = append(out.Origins, o)
		}
	}
	return out
}

// Breadth classifies how permissive the allowlist is; larger is broader.
// The analysis of Table 9 reports, per website, the least restrictive
// directive observed.
type Breadth int

const (
	BreadthDisable    Breadth = iota // () / 'none'
	BreadthSelf                      // 'self' (or 'src' pointing home)
	BreadthSameOrigin                // explicit origins, all same-origin with self
	BreadthSameSite                  // explicit origins, all same-site with self
	BreadthThirdParty                // at least one cross-site origin
	BreadthAll                       // '*'
)

var breadthNames = map[Breadth]string{
	BreadthDisable:    "Disable",
	BreadthSelf:       "Self",
	BreadthSameOrigin: "Same Origin",
	BreadthSameSite:   "Same Site",
	BreadthThirdParty: "Third-party",
	BreadthAll:        "All *",
}

func (b Breadth) String() string { return breadthNames[b] }

// MarshalText makes Breadth render as its name in JSON map keys and
// values (machine-readable reports stay human-readable).
func (b Breadth) MarshalText() ([]byte, error) { return []byte(b.String()), nil }

// UnmarshalText parses a breadth name.
func (b *Breadth) UnmarshalText(text []byte) error {
	s := string(text)
	for k, v := range breadthNames {
		if v == s {
			*b = k
			return nil
		}
	}
	return fmt.Errorf("policy: unknown breadth %q", s)
}

// BreadthFor classifies the allowlist relative to the declaring
// document's origin, mirroring Table 9's column taxonomy.
func (a Allowlist) BreadthFor(self origin.Origin) Breadth {
	if a.All {
		return BreadthAll
	}
	if a.None() {
		return BreadthDisable
	}
	broadest := BreadthDisable
	if a.Self || a.Src {
		broadest = BreadthSelf
	}
	for _, entry := range a.Origins {
		eo, err := origin.Parse(entry)
		var b Breadth
		switch {
		case err != nil:
			continue
		case eo.SameOrigin(self):
			b = BreadthSameOrigin
		case eo.SameSite(self):
			b = BreadthSameSite
		default:
			b = BreadthThirdParty
		}
		if b > broadest {
			broadest = b
		}
	}
	return broadest
}

// String serializes the allowlist in Permissions-Policy header form.
func (a Allowlist) String() string {
	if a.All {
		return "*"
	}
	var parts []string
	if a.Self {
		parts = append(parts, "self")
	}
	if a.Src {
		parts = append(parts, "src")
	}
	origins := append([]string{}, a.Origins...)
	sort.Strings(origins)
	for _, o := range origins {
		parts = append(parts, `"`+o+`"`)
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// Directive binds a feature name to an allowlist.
type Directive struct {
	Feature   string
	Allowlist Allowlist
}

// Policy is an ordered list of directives as declared by one header or
// one allow attribute.
type Policy struct {
	Directives []Directive
}

// Get returns the allowlist declared for feature, if any.
func (p Policy) Get(feature string) (Allowlist, bool) {
	for _, d := range p.Directives {
		if d.Feature == feature {
			return d.Allowlist, true
		}
	}
	return Allowlist{}, false
}

// Features returns the declared feature names in order.
func (p Policy) Features() []string {
	out := make([]string, len(p.Directives))
	for i, d := range p.Directives {
		out[i] = d.Feature
	}
	return out
}

// Empty reports whether the policy declares nothing.
func (p Policy) Empty() bool { return len(p.Directives) == 0 }
