package policy

import (
	"strings"
	"testing"
	"testing/quick"

	"permodyssey/internal/origin"
)

func issueKinds(issues []Issue) map[IssueKind]int {
	m := map[IssueKind]int{}
	for _, i := range issues {
		m[i.Kind]++
	}
	return m
}

func TestParsePermissionsPolicyValid(t *testing.T) {
	p, issues, err := ParsePermissionsPolicy(`camera=(), geolocation=(self "https://maps.example"), fullscreen=*, payment=self`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, i := range issues {
		t.Errorf("unexpected issue: %v", i)
	}
	cam, ok := p.Get("camera")
	if !ok || !cam.None() {
		t.Errorf("camera: %+v", cam)
	}
	geo, _ := p.Get("geolocation")
	if !geo.Self || len(geo.Origins) != 1 || geo.Origins[0] != "https://maps.example" {
		t.Errorf("geolocation: %+v", geo)
	}
	fs, _ := p.Get("fullscreen")
	if !fs.All {
		t.Errorf("fullscreen: %+v", fs)
	}
	pay, _ := p.Get("payment")
	if !pay.Self {
		t.Errorf("payment=self (bare token): %+v", pay)
	}
}

func TestParsePermissionsPolicySyntaxErrorClasses(t *testing.T) {
	tests := []struct {
		value string
		kind  IssueKind
	}{
		// Feature-Policy syntax in a Permissions-Policy header: the most
		// common parse error (§4.3.3, §6.2).
		{"camera 'self'; geolocation 'none'", IssueFeaturePolicySyntax},
		{"camera 'none'", IssueFeaturePolicySyntax},
		{"geolocation https://x.com; camera *", IssueFeaturePolicySyntax},
		// Misplaced commas.
		{"camera=(),", IssueTrailingComma},
		{"camera=(), geolocation=(self),", IssueTrailingComma},
		// Other syntax garbage.
		{"camera=((a))", IssueSyntax},
		{"CAMERA=()", IssueSyntax},
	}
	for _, tt := range tests {
		_, issues, err := ParsePermissionsPolicy(tt.value)
		if err == nil {
			t.Errorf("ParsePermissionsPolicy(%q): expected error", tt.value)
			continue
		}
		if len(issues) != 1 || issues[0].Kind != tt.kind {
			t.Errorf("ParsePermissionsPolicy(%q): issues = %v; want kind %s", tt.value, issues, tt.kind)
		}
		if !HasBlockingIssue(issues) {
			t.Errorf("ParsePermissionsPolicy(%q): syntax issue must be blocking", tt.value)
		}
	}
}

func TestParsePermissionsPolicySemanticIssues(t *testing.T) {
	tests := []struct {
		value string
		kind  IssueKind
	}{
		{"camera=(none)", IssueUnrecognizedToken},
		{"camera=(0)", IssueUnrecognizedToken},
		{"camera=(https://x.com)", IssueUnquotedOrigin},
		{"camera=(self *)", IssueContradictory},
		{`camera=("https://x.com")`, IssueOriginsWithoutSelf},
		{`camera=("not a url%%%")`, IssueInvalidOrigin},
		{`camera=("data:text/html,x")`, IssueInvalidOrigin},
		{"camera=(), camera=(self)", IssueDuplicateFeature},
		{"made-up-thing=()", IssueUnknownFeature},
	}
	for _, tt := range tests {
		_, issues, err := ParsePermissionsPolicy(tt.value)
		if err != nil {
			t.Errorf("ParsePermissionsPolicy(%q): unexpected hard error %v", tt.value, err)
			continue
		}
		if issueKinds(issues)[tt.kind] == 0 {
			t.Errorf("ParsePermissionsPolicy(%q): issues %v missing kind %s", tt.value, issues, tt.kind)
		}
		if HasBlockingIssue(issues) {
			t.Errorf("ParsePermissionsPolicy(%q): semantic issues must not block", tt.value)
		}
	}
}

func TestParsePermissionsPolicyDuplicateLastWins(t *testing.T) {
	p, _, err := ParsePermissionsPolicy("camera=(self), camera=()")
	if err != nil {
		t.Fatal(err)
	}
	cam, _ := p.Get("camera")
	if !cam.None() {
		t.Errorf("last duplicate must win: %+v", cam)
	}
	if len(p.Directives) != 1 {
		t.Errorf("duplicates must collapse to one directive: %d", len(p.Directives))
	}
}

func TestParseFeaturePolicy(t *testing.T) {
	p, issues := ParseFeaturePolicy("camera 'self' https://trusted.com; geolocation 'none'; fullscreen *")
	if len(issues) != 0 {
		t.Errorf("unexpected issues: %v", issues)
	}
	cam, _ := p.Get("camera")
	if !cam.Self || len(cam.Origins) != 1 {
		t.Errorf("camera: %+v", cam)
	}
	geo, _ := p.Get("geolocation")
	if !geo.None() {
		t.Errorf("geolocation 'none': %+v", geo)
	}
	fs, _ := p.Get("fullscreen")
	if !fs.All {
		t.Errorf("fullscreen *: %+v", fs)
	}
}

func TestParseAllowAttr(t *testing.T) {
	// The LiveChat template from §5.2.
	p, issues := ParseAllowAttr("clipboard-read; clipboard-write; autoplay; microphone *; camera *; display-capture *; picture-in-picture *; fullscreen *;")
	if len(issues) != 0 {
		t.Errorf("unexpected issues: %v", issues)
	}
	if len(p.Directives) != 8 {
		t.Fatalf("expected 8 directives, got %d", len(p.Directives))
	}
	cr, _ := p.Get("clipboard-read")
	if !cr.Src || cr.All {
		t.Errorf("bare directive must default to 'src': %+v", cr)
	}
	mic, _ := p.Get("microphone")
	if !mic.All {
		t.Errorf("microphone *: %+v", mic)
	}
}

func TestParseAllowAttrEdgeCases(t *testing.T) {
	p, _ := ParseAllowAttr("gamepad 'none'")
	gp, ok := p.Get("gamepad")
	if !ok || !gp.None() {
		t.Errorf("gamepad 'none': %+v", gp)
	}
	p, _ = ParseAllowAttr("camera 'src'")
	cam, _ := p.Get("camera")
	if !cam.Src {
		t.Errorf("explicit 'src': %+v", cam)
	}
	p, _ = ParseAllowAttr("geolocation 'self' https://maps.example")
	geo, _ := p.Get("geolocation")
	if !geo.Self || len(geo.Origins) != 1 {
		t.Errorf("mixed entries: %+v", geo)
	}
	// Duplicates merge, with an issue.
	p, issues := ParseAllowAttr("camera; camera *")
	cam, _ = p.Get("camera")
	if !cam.All || !cam.Src {
		t.Errorf("merged duplicate: %+v", cam)
	}
	if issueKinds(issues)[IssueDuplicateFeature] == 0 {
		t.Errorf("expected duplicate-feature issue: %v", issues)
	}
	// 'none' combined with entries: none wins, contradictory flagged.
	p, issues = ParseAllowAttr("camera 'none' *")
	cam, _ = p.Get("camera")
	if !cam.None() {
		t.Errorf("'none' must win: %+v", cam)
	}
	if issueKinds(issues)[IssueContradictory] == 0 {
		t.Errorf("expected contradictory issue: %v", issues)
	}
	// Garbage feature tokens are skipped, not fatal.
	p, issues = ParseAllowAttr("c@mera; microphone")
	if _, ok := p.Get("microphone"); !ok {
		t.Error("valid directive after invalid one must survive")
	}
	if len(p.Directives) != 1 {
		t.Errorf("invalid directive must be dropped: %+v", p.Directives)
	}
	if issueKinds(issues)[IssueSyntax] == 0 {
		t.Errorf("expected syntax issue for bad token: %v", issues)
	}
}

func TestClassifyAllowDirective(t *testing.T) {
	tests := []struct {
		raw     string
		feature string
		kind    DelegationDirectiveKind
	}{
		{"camera", "camera", DelegationDefaultSrc},
		{"camera *", "camera", DelegationWildcard},
		{"camera 'src'", "camera", DelegationExplicitSrc},
		{"camera 'none'", "camera", DelegationNone},
		{"camera 'self'", "camera", DelegationSelf},
		{"camera https://x.com", "camera", DelegationOrigin},
	}
	for _, tt := range tests {
		f, k, ok := ClassifyAllowDirective(tt.raw)
		if !ok || f != tt.feature || k != tt.kind {
			t.Errorf("ClassifyAllowDirective(%q) = %q, %q, %v; want %q, %q",
				tt.raw, f, k, ok, tt.feature, tt.kind)
		}
	}
	if _, _, ok := ClassifyAllowDirective("   "); ok {
		t.Error("empty directive must not classify")
	}
}

func TestAllowlistMatches(t *testing.T) {
	self := origin.MustParse("https://example.org")
	src := origin.MustParse("https://widget.example")
	other := origin.MustParse("https://other.example")
	tests := []struct {
		al   Allowlist
		o    origin.Origin
		want bool
	}{
		{Allowlist{All: true}, other, true},
		{Allowlist{Self: true}, self, true},
		{Allowlist{Self: true}, other, false},
		{Allowlist{Src: true}, src, true},
		{Allowlist{Src: true}, other, false},
		{Allowlist{Origins: []string{"https://other.example"}}, other, true},
		{Allowlist{Origins: []string{"https://other.example:8443"}}, other, false},
		{Allowlist{Origins: []string{"%%%bad%%%"}}, other, false},
		{Allowlist{}, self, false},
	}
	for i, tt := range tests {
		if got := tt.al.Matches(tt.o, self, src); got != tt.want {
			t.Errorf("case %d: Matches(%v) = %v; want %v", i, tt.o, got, tt.want)
		}
	}
}

func TestBreadthFor(t *testing.T) {
	self := origin.MustParse("https://www.example.org")
	tests := []struct {
		al   Allowlist
		want Breadth
	}{
		{Allowlist{}, BreadthDisable},
		{Allowlist{Self: true}, BreadthSelf},
		{Allowlist{Self: true, Origins: []string{"https://www.example.org"}}, BreadthSameOrigin},
		{Allowlist{Origins: []string{"https://api.example.org"}}, BreadthSameSite},
		{Allowlist{Self: true, Origins: []string{"https://ads.example"}}, BreadthThirdParty},
		{Allowlist{All: true}, BreadthAll},
		{Allowlist{All: true, Self: true}, BreadthAll},
	}
	for i, tt := range tests {
		if got := tt.al.BreadthFor(self); got != tt.want {
			t.Errorf("case %d: BreadthFor = %v; want %v", i, got, tt.want)
		}
	}
	// Breadth ordering is what Table 9 sorts by.
	if !(BreadthDisable < BreadthSelf && BreadthSelf < BreadthSameOrigin &&
		BreadthSameOrigin < BreadthSameSite && BreadthSameSite < BreadthThirdParty &&
		BreadthThirdParty < BreadthAll) {
		t.Error("breadth ordering broken")
	}
}

func TestSerializationRoundTrips(t *testing.T) {
	values := []string{
		"camera=()",
		"camera=(self)",
		`geolocation=(self "https://maps.example")`,
		"fullscreen=*",
		`camera=(), geolocation=(self "https://a.example" "https://b.example"), payment=(self)`,
	}
	for _, v := range values {
		p, issues, err := ParsePermissionsPolicy(v)
		if err != nil {
			t.Fatalf("parse %q: %v", v, err)
		}
		if len(issues) > 0 {
			t.Fatalf("parse %q: issues %v", v, issues)
		}
		out := p.HeaderValue()
		p2, _, err := ParsePermissionsPolicy(out)
		if err != nil {
			t.Fatalf("re-parse %q: %v", out, err)
		}
		if p2.HeaderValue() != out {
			t.Errorf("round trip unstable: %q -> %q", out, p2.HeaderValue())
		}
	}
}

func TestAllowAttrSerializationRoundTrip(t *testing.T) {
	p, _ := ParseAllowAttr("camera; microphone *; geolocation 'self' https://maps.example; gamepad 'none'")
	out := p.AllowAttrValue()
	p2, issues := ParseAllowAttr(out)
	if len(issues) > 0 {
		t.Fatalf("re-parse issues: %v", issues)
	}
	for _, f := range []string{"camera", "microphone", "geolocation", "gamepad"} {
		a1, ok1 := p.Get(f)
		a2, ok2 := p2.Get(f)
		if ok1 != ok2 || a1.All != a2.All || a1.Self != a2.Self || a1.Src != a2.Src ||
			len(a1.Origins) != len(a2.Origins) || a1.None() != a2.None() {
			t.Errorf("%s: %+v != %+v", f, a1, a2)
		}
	}
}

func TestFeaturePolicySerialization(t *testing.T) {
	p, _ := ParseFeaturePolicy("camera 'self'; geolocation 'none'")
	out := p.FeaturePolicyValue()
	if !strings.Contains(out, "camera 'self'") || !strings.Contains(out, "geolocation 'none'") {
		t.Errorf("FeaturePolicyValue = %q", out)
	}
}

func TestLint(t *testing.T) {
	issues := Lint("camera=*", true)
	if issueKinds(issues)[IssueUselessWildcard] == 0 {
		t.Errorf("top-level wildcard must be flagged useless: %v", issues)
	}
	issues = Lint("camera=*", false)
	if issueKinds(issues)[IssueUselessWildcard] != 0 {
		t.Errorf("embedded wildcard not flagged by this rule: %v", issues)
	}
	issues = Lint("camera 'self'", true)
	if !HasBlockingIssue(issues) {
		t.Errorf("FP syntax must be blocking: %v", issues)
	}
}

// Property: parseLegacy never panics and never returns directives with
// invalid feature tokens.
func TestLegacyParseProperties(t *testing.T) {
	f := func(s string) bool {
		p, _ := ParseAllowAttr(s)
		for _, d := range p.Directives {
			if !validFeatureToken(d.Feature) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: for any parsed header, HeaderValue re-parses cleanly.
func TestHeaderValueAlwaysReparses(t *testing.T) {
	inputs := []string{
		"camera=(), microphone=(self)", "fullscreen=*, payment=(self)",
		`geolocation=(self "https://x.example")`,
		"usb=(), midi=(self), hid=*",
	}
	for _, in := range inputs {
		p, _, err := ParsePermissionsPolicy(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if _, _, err := ParsePermissionsPolicy(p.HeaderValue()); err != nil {
			t.Errorf("serialized form %q does not re-parse: %v", p.HeaderValue(), err)
		}
	}
}

func BenchmarkParseAllowAttr(b *testing.B) {
	attr := "clipboard-read; clipboard-write; autoplay; microphone *; camera *; display-capture *; picture-in-picture *; fullscreen *;"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ParseAllowAttr(attr)
	}
}

func BenchmarkInheritedPolicy(b *testing.B) {
	top := NewTopLevel(exampleOrg, Policy{})
	allow := mustAllow("camera; microphone; geolocation")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewSubframe(top, FrameSpec{SrcOrigin: iframeCom, DocumentOrigin: iframeCom, Allow: allow}, SpecActual)
	}
}

func TestBreadthTextMarshalRoundTrip(t *testing.T) {
	for b := BreadthDisable; b <= BreadthAll; b++ {
		text, err := b.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Breadth
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("unmarshal %q: %v", text, err)
		}
		if back != b {
			t.Errorf("round trip %v -> %q -> %v", b, text, back)
		}
	}
	var bad Breadth
	if err := bad.UnmarshalText([]byte("nope")); err == nil {
		t.Error("unknown breadth name must fail")
	}
}
