package policy

import (
	"testing"
)

func TestReportingEndpoints(t *testing.T) {
	eps, err := ReportingEndpoints(`camera=();report-to=default, geolocation=(self);report-to="geo-endpoint", microphone=()`)
	if err != nil {
		t.Fatal(err)
	}
	if eps["camera"] != "default" {
		t.Errorf("camera endpoint: %q", eps["camera"])
	}
	if eps["geolocation"] != "geo-endpoint" {
		t.Errorf("geolocation endpoint: %q", eps["geolocation"])
	}
	if _, ok := eps["microphone"]; ok {
		t.Error("microphone has no report-to")
	}
}

func TestReportingEndpointsInvalidHeader(t *testing.T) {
	if _, err := ReportingEndpoints("camera 'none'"); err == nil {
		t.Error("invalid header must error")
	}
}

func TestParseReportOnly(t *testing.T) {
	p, eps, issues, err := ParseReportOnly(`camera=();report-to=default, geolocation=(self)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 0 {
		t.Errorf("issues: %v", issues)
	}
	cam, ok := p.Get("camera")
	if !ok || !cam.None() {
		t.Errorf("camera: %+v", cam)
	}
	if eps["camera"] != "default" {
		t.Errorf("endpoints: %v", eps)
	}
	// Report-only headers with FP syntax are dropped like enforced ones.
	if _, _, _, err := ParseReportOnly("camera 'none'"); err == nil {
		t.Error("invalid report-only header must error")
	}
}
