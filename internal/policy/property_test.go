package policy

import (
	"testing"
	"testing/quick"

	"permodyssey/internal/origin"
	"permodyssey/internal/permissions"
)

// genHeader builds a header from three random directive choices.
func genHeader(picks [3]uint8) Policy {
	features := []string{"camera", "geolocation", "fullscreen", "payment", "gamepad", "usb"}
	lists := []Allowlist{
		{},           // ()
		{Self: true}, // (self)
		{All: true},  // *
		{Self: true, Origins: []string{"https://w.example"}}, // (self "https://w.example")
		{Origins: []string{"https://iframe.com"}},            // ("https://iframe.com")
	}
	var p Policy
	for i, pick := range picks {
		p.Directives = append(p.Directives, Directive{
			Feature:   features[(int(pick)+i*2)%len(features)],
			Allowlist: lists[int(pick)%len(lists)],
		})
	}
	return p
}

// Property: a top-level header can only RESTRICT the document's own
// access — for every feature, Allowed under any header implies Allowed
// under no header (§2.2.3: "the Permissions-Policy header can only
// further restrict the available permissions").
func TestHeaderOnlyRestrictsOwnContext(t *testing.T) {
	base := NewTopLevel(exampleOrg, Policy{})
	f := func(picks [3]uint8) bool {
		withHeader := NewTopLevel(exampleOrg, genHeader(picks))
		for _, p := range permissions.All() {
			if !p.PolicyControlled() {
				continue
			}
			if withHeader.Allowed(p.Name) && !base.Allowed(p.Name) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a child frame's own header can never ENABLE a feature its
// inherited policy denied.
func TestChildHeaderCannotEscalate(t *testing.T) {
	top := NewTopLevel(exampleOrg, Policy{})
	f := func(picks [3]uint8) bool {
		childHeader := genHeader(picks)
		bare := NewSubframe(top, FrameSpec{
			SrcOrigin: iframeCom, DocumentOrigin: iframeCom,
		}, SpecActual)
		withHeader := NewSubframe(top, FrameSpec{
			SrcOrigin: iframeCom, DocumentOrigin: iframeCom,
			Declared: childHeader,
		}, SpecActual)
		for _, p := range permissions.All() {
			if !p.PolicyControlled() {
				continue
			}
			if withHeader.Allowed(p.Name) && !bare.Allowed(p.Name) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: delegation is bounded by the parent — a child never holds a
// feature its parent document could not use or delegate.
func TestDelegationBoundedByParent(t *testing.T) {
	f := func(picks [3]uint8, allowAll bool) bool {
		parentHeader := genHeader(picks)
		top := NewTopLevel(exampleOrg, parentHeader)
		allowValue := "camera; geolocation; fullscreen; payment; gamepad; usb"
		if allowAll {
			allowValue = "camera *; geolocation *; fullscreen *; payment *; gamepad *; usb *"
		}
		allow, _ := ParseAllowAttr(allowValue)
		child := NewSubframe(top, FrameSpec{
			SrcOrigin: iframeCom, DocumentOrigin: iframeCom, Allow: allow,
		}, SpecActual)
		for _, p := range permissions.All() {
			if !p.PolicyControlled() {
				continue
			}
			if child.Allowed(p.Name) && !top.EnabledForOrigin(p.Name, iframeCom) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: SpecExpected is never more permissive than SpecActual for
// the local-scheme chain — the fix only removes capability.
func TestExpectedModeNeverBroader(t *testing.T) {
	f := func(picks [3]uint8) bool {
		header := genHeader(picks)
		for _, p := range permissions.All() {
			if !p.PolicyControlled() {
				continue
			}
			allow, _ := ParseAllowAttr(p.Name)
			run := func(mode SpecMode) bool {
				top := NewTopLevel(exampleOrg, header)
				local := NewSubframe(top, FrameSpec{LocalScheme: true, Allow: allow}, mode)
				third := NewSubframe(local, FrameSpec{
					SrcOrigin: attacker, DocumentOrigin: attacker, Allow: allow,
				}, mode)
				return third.Allowed(p.Name)
			}
			if run(SpecExpected) && !run(SpecActual) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: AllowedFeatures is consistent with Allowed.
func TestAllowedFeaturesConsistent(t *testing.T) {
	f := func(picks [3]uint8) bool {
		d := NewTopLevel(exampleOrg, genHeader(picks))
		set := map[string]bool{}
		for _, name := range d.AllowedFeatures() {
			set[name] = true
		}
		for _, p := range permissions.All() {
			if !p.PolicyControlled() {
				continue
			}
			if set[p.Name] != d.Allowed(p.Name) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Breadth classification is monotone under Merge — merging
// allowlists never narrows breadth.
func TestMergeMonotoneBreadth(t *testing.T) {
	self := origin.MustParse("https://example.org")
	lists := []Allowlist{
		{}, {Self: true}, {All: true},
		{Origins: []string{"https://example.org"}},
		{Origins: []string{"https://api.example.org"}},
		{Origins: []string{"https://third.example"}},
		{Self: true, Origins: []string{"https://third.example"}},
	}
	f := func(i, j uint8) bool {
		a := lists[int(i)%len(lists)]
		b := lists[int(j)%len(lists)]
		merged := a.Merge(b)
		return merged.BreadthFor(self) >= a.BreadthFor(self) &&
			merged.BreadthFor(self) >= b.BreadthFor(self)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
