package policy

import (
	"testing"

	"permodyssey/internal/origin"
)

var (
	exampleOrg = origin.MustParse("https://example.org")
	iframeCom  = origin.MustParse("https://iframe.com")
	attacker   = origin.MustParse("https://attacker.com")
)

// mustPP parses a Permissions-Policy header value or fails the test.
func mustPP(t *testing.T, value string) Policy {
	t.Helper()
	if value == "" {
		return Policy{}
	}
	p, _, err := ParsePermissionsPolicy(value)
	if err != nil {
		t.Fatalf("ParsePermissionsPolicy(%q): %v", value, err)
	}
	return p
}

// mustAllow parses an allow attribute.
func mustAllow(value string) Policy {
	p, _ := ParseAllowAttr(value)
	return p
}

// TestTable1CameraInterplay reproduces every row of the paper's Table 1:
// the interplay of the top-level Permissions-Policy header and the
// iframe allow attribute for the camera permission (default allowlist
// self). Column 1 = can the top level prompt/delegate; column 2 = can
// the embedded iframe.com document.
func TestTable1CameraInterplay(t *testing.T) {
	cases := []struct {
		name       string
		header     string
		allow      string
		topLevelOK bool
		iframeOK   bool
	}{
		{"1 no header, no allow", "", "", true, false},
		{"2 no header, allow camera", "", "camera", true, true},
		{"3 deny", "camera=()", "camera", false, false},
		{"4 allow self", "camera=(self)", "camera", true, false},
		{"5 allow all, no allow", "camera=(*)", "", true, false},
		{"6 allow all, allow camera", "camera=(*)", "camera", true, true},
		{"7 allow necessary", `camera=(self "https://iframe.com")`, "camera", true, true},
		{"8 allow iframe only", `camera=("https://iframe.com")`, "camera", false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			top := NewTopLevel(exampleOrg, mustPP(t, tc.header))
			if got := top.Allowed("camera"); got != tc.topLevelOK {
				t.Errorf("top-level camera = %v; want %v", got, tc.topLevelOK)
			}
			frame := NewSubframe(top, FrameSpec{
				SrcOrigin:      iframeCom,
				DocumentOrigin: iframeCom,
				Allow:          mustAllow(tc.allow),
			}, SpecActual)
			if got := frame.Allowed("camera"); got != tc.iframeOK {
				t.Errorf("iframe camera = %v; want %v", got, tc.iframeOK)
			}
		})
	}
}

// TestTable11LocalSchemeSpecIssue reproduces the specification issue of
// §6.2: with header camera=(self), a local-scheme document can (under
// the specification as written) delegate camera to an external
// third-party origin, bypassing the declared policy.
func TestTable11LocalSchemeSpecIssue(t *testing.T) {
	for _, tc := range []struct {
		mode       SpecMode
		attackerOK bool
	}{
		{SpecExpected, false},
		{SpecActual, true},
	} {
		t.Run(tc.mode.String(), func(t *testing.T) {
			top := NewTopLevel(exampleOrg, mustPP(t, "camera=(self)"))
			// The local-scheme document (e.g. a data: URI iframe).
			local := NewSubframe(top, FrameSpec{
				LocalScheme: true,
				Allow:       mustAllow("camera"),
			}, tc.mode)
			// Both rows of Table 11: the local-scheme document itself has
			// camera access and delegation capability.
			if !local.Allowed("camera") {
				t.Fatal("local-scheme document must have camera access in both modes")
			}
			// The local document delegates camera to the attacker.
			third := NewSubframe(local, FrameSpec{
				SrcOrigin:      attacker,
				DocumentOrigin: attacker,
				Allow:          mustAllow("camera"),
			}, tc.mode)
			if got := third.Allowed("camera"); got != tc.attackerOK {
				t.Errorf("mode %v: attacker camera = %v; want %v", tc.mode, got, tc.attackerOK)
			}
		})
	}
}

// TestNestedDelegationUncontrollable verifies §2.2.5: once a permission
// is delegated to an embedded document, the top-level website can no
// longer prevent nested delegations.
func TestNestedDelegationUncontrollable(t *testing.T) {
	top := NewTopLevel(exampleOrg, mustPP(t, `camera=(self "https://iframe.com")`))
	frame := NewSubframe(top, FrameSpec{
		SrcOrigin:      iframeCom,
		DocumentOrigin: iframeCom,
		Allow:          mustAllow("camera"),
	}, SpecActual)
	if !frame.Allowed("camera") {
		t.Fatal("setup: iframe.com must have camera (Table 1 case 7)")
	}
	nested := NewSubframe(frame, FrameSpec{
		SrcOrigin:      attacker,
		DocumentOrigin: attacker,
		Allow:          mustAllow("camera"),
	}, SpecActual)
	if !nested.Allowed("camera") {
		t.Error("nested delegation must succeed regardless of the top-level header")
	}
}

// TestChildHeaderRestricts: the embedded document's own header can still
// opt out of a delegated permission.
func TestChildHeaderRestricts(t *testing.T) {
	top := NewTopLevel(exampleOrg, Policy{})
	frame := NewSubframe(top, FrameSpec{
		SrcOrigin:      iframeCom,
		DocumentOrigin: iframeCom,
		Allow:          mustAllow("camera"),
		Declared:       mustPP(t, "camera=()"),
	}, SpecActual)
	if frame.Allowed("camera") {
		t.Error("child's own camera=() header must disable the delegated permission")
	}
}

func TestDefaultAllowlists(t *testing.T) {
	top := NewTopLevel(exampleOrg, Policy{})
	sameOriginFrame := NewSubframe(top, FrameSpec{
		SrcOrigin:      exampleOrg,
		DocumentOrigin: exampleOrg,
	}, SpecActual)
	crossFrame := NewSubframe(top, FrameSpec{
		SrcOrigin:      iframeCom,
		DocumentOrigin: iframeCom,
	}, SpecActual)

	// Default self: enabled top-level and same-origin frames only.
	for _, d := range []*Document{top, sameOriginFrame} {
		if !d.Allowed("geolocation") {
			t.Errorf("geolocation (default self) should be enabled in %v", d.Origin)
		}
	}
	if crossFrame.Allowed("geolocation") {
		t.Error("geolocation must be disabled in a cross-origin frame without delegation")
	}
	// Default *: enabled everywhere (picture-in-picture; §4.2.1 notes
	// delegating it is unnecessary).
	for _, d := range []*Document{top, sameOriginFrame, crossFrame} {
		if !d.Allowed("picture-in-picture") {
			t.Errorf("picture-in-picture (default *) should be enabled in %v", d.Origin)
		}
	}
	// Not policy-controlled: top-level only (§4.1.1: notifications
	// cannot be delegated).
	if !top.Allowed("notifications") {
		t.Error("notifications allowed at top level")
	}
	if crossFrame.Allowed("notifications") || sameOriginFrame.Allowed("notifications") {
		t.Error("notifications must not be available to embedded documents")
	}
}

func TestRedirectWithSrcDirective(t *testing.T) {
	// §4.2.2/§5.2: the default 'src' directive follows the iframe's src
	// origin; a wildcard keeps the permission across redirections to
	// other origins.
	top := NewTopLevel(exampleOrg, Policy{})
	// allow="camera" (defaults to 'src'); document redirected elsewhere.
	redirected := NewSubframe(top, FrameSpec{
		SrcOrigin:      iframeCom,
		DocumentOrigin: attacker, // redirect landed here
		Allow:          mustAllow("camera"),
	}, SpecActual)
	if redirected.Allowed("camera") {
		t.Error("'src' delegation must not survive a cross-origin redirect")
	}
	// allow="camera *": wildcard survives the redirect (the LiveChat
	// hijacking risk of §5.2).
	wildcard := NewSubframe(top, FrameSpec{
		SrcOrigin:      iframeCom,
		DocumentOrigin: attacker,
		Allow:          mustAllow("camera *"),
	}, SpecActual)
	if !wildcard.Allowed("camera") {
		t.Error("wildcard delegation survives redirects — that is the documented risk")
	}
}

func TestCanDelegate(t *testing.T) {
	top := NewTopLevel(exampleOrg, mustPP(t, "camera=(self), geolocation=()"))
	if top.CanDelegate("camera", iframeCom) {
		t.Error("camera=(self) prevents delegating to iframe.com (Table 1 case 4)")
	}
	if top.CanDelegate("geolocation", iframeCom) {
		t.Error("geolocation=() prevents any delegation")
	}
	open := NewTopLevel(exampleOrg, Policy{})
	if !open.CanDelegate("camera", iframeCom) {
		t.Error("without a header, camera can be delegated (Table 1 case 2)")
	}
	if open.CanDelegate("notifications", iframeCom) {
		t.Error("notifications is not policy-controlled; never delegatable")
	}
	if open.CanDelegate("made-up-feature", iframeCom) {
		t.Error("unknown features cannot be delegated")
	}
}

func TestAllowedFeatures(t *testing.T) {
	top := NewTopLevel(exampleOrg, mustPP(t, "camera=(), microphone=()"))
	feats := top.AllowedFeatures()
	set := map[string]bool{}
	for _, f := range feats {
		set[f] = true
	}
	if set["camera"] || set["microphone"] {
		t.Error("disabled features must not appear in allowedFeatures")
	}
	if !set["geolocation"] || !set["picture-in-picture"] {
		t.Error("defaults must appear in allowedFeatures")
	}
	// Embedded cross-origin document: default-self features absent,
	// default-* features present.
	frame := NewSubframe(top, FrameSpec{SrcOrigin: iframeCom, DocumentOrigin: iframeCom}, SpecActual)
	fset := map[string]bool{}
	for _, f := range frame.AllowedFeatures() {
		fset[f] = true
	}
	if fset["geolocation"] {
		t.Error("cross-origin frame must not list geolocation")
	}
	if !fset["gamepad"] {
		t.Error("cross-origin frame should list gamepad (default *)")
	}
}

func TestEnabledForOriginWithDeclaredDirective(t *testing.T) {
	// A declared directive makes EnabledForOrigin answer per-origin: the
	// base of delegation decisions.
	top := NewTopLevel(exampleOrg, mustPP(t, `geolocation=(self "https://trusted.com")`))
	trusted := origin.MustParse("https://trusted.com")
	if !top.EnabledForOrigin("geolocation", trusted) {
		t.Error("trusted.com is in the declared allowlist")
	}
	if top.EnabledForOrigin("geolocation", attacker) {
		t.Error("attacker.com is not in the declared allowlist")
	}
}

func TestLocalSchemeDocumentSharesParentOrigin(t *testing.T) {
	top := NewTopLevel(exampleOrg, Policy{})
	local := NewSubframe(top, FrameSpec{LocalScheme: true}, SpecActual)
	if !local.Origin.SameOrigin(exampleOrg) {
		t.Error("local-scheme documents evaluate with the parent's origin")
	}
	// Default-self features are therefore available without delegation.
	if !local.Allowed("geolocation") {
		t.Error("local-scheme document gets default-self features of the parent context")
	}
}

func TestIsTopLevelAndParent(t *testing.T) {
	top := NewTopLevel(exampleOrg, Policy{})
	if !top.IsTopLevel() || top.Parent() != nil {
		t.Error("top-level document misclassified")
	}
	frame := NewSubframe(top, FrameSpec{SrcOrigin: iframeCom, DocumentOrigin: iframeCom}, SpecActual)
	if frame.IsTopLevel() || frame.Parent() != top {
		t.Error("subframe misclassified")
	}
}
