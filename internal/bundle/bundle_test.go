package bundle_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"permodyssey/internal/browser"
	"permodyssey/internal/bundle"
	"permodyssey/internal/diskcache"
	"permodyssey/internal/store"
)

const fixtureReport = "Table 3 — everything\n0 rows\n"

// fixture builds a minimal sealed-crawl input set: a merged archive
// with a success and an archived failure, a two-record dataset, and a
// crawl-time report. Deterministic — two calls produce byte-identical
// inputs.
func fixture(t *testing.T) bundle.Spec {
	t.Helper()
	dir := t.TempDir()
	arch := filepath.Join(dir, "cache")
	a, err := diskcache.Open(arch, diskcache.Options{Classify: func(error) string { return "unreachable" }})
	if err != nil {
		t.Fatal(err)
	}
	a.Store("https://site-0.test/", &browser.Response{Status: 200, Body: "<html>ok</html>"})
	a.StoreFailure("https://site-1.test/", errors.New("no route"))
	a.Close()
	if _, err := diskcache.MergeShards(arch); err != nil {
		t.Fatal(err)
	}
	ds := &store.Dataset{Records: []store.SiteRecord{
		{Rank: 0, URL: "https://site-0.test/"},
		{Rank: 1, URL: "https://site-1.test/", Failure: store.FailureUnreachable, Error: "no route"},
	}}
	dataset := filepath.Join(dir, "crawl.jsonl")
	if err := ds.SaveFile(dataset); err != nil {
		t.Fatal(err)
	}
	return bundle.Spec{
		DatasetPath: dataset,
		ArchiveDir:  arch,
		Report:      fixtureReport,
		Tool:        "permcrawl",
		ToolVersion: "test",
		Config:      bundle.Config{Sites: 2, Seed: 7},
		Records:     2,
	}
}

func seal(t *testing.T, path string, spec bundle.Spec) bundle.Manifest {
	t.Helper()
	m, err := bundle.Seal(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSealVerifyRoundTrip(t *testing.T) {
	spec := fixture(t)
	path := filepath.Join(t.TempDir(), "b")
	m := seal(t, path, spec)
	if m.FormatVersion != bundle.FormatVersion || m.DatasetSchema != store.SchemaVersion {
		t.Errorf("manifest versions = %+v", m)
	}
	if m.Records != 2 || m.Tool != "permcrawl" || m.Config.Seed != 7 {
		t.Errorf("manifest provenance = %+v", m)
	}
	b, err := bundle.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Verify(""); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	ds, err := b.Dataset()
	if err != nil || len(ds.Records) != 2 {
		t.Fatalf("Dataset = %v, %v; want 2 records", ds, err)
	}
	if rep, err := b.Report(); err != nil || rep != fixtureReport {
		t.Errorf("Report = %q, %v; want the sealed report byte-exact", rep, err)
	}
	// The sealed archive replays offline directly.
	ar, err := diskcache.Open(b.ArchivePath(), diskcache.Options{Offline: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := ar.Load("https://site-0.test/"); err != nil || got == nil || got.Body != "<html>ok</html>" {
		t.Errorf("offline Load from sealed archive = %v, %v", got, err)
	}
	var rf *browser.ReplayedFailure
	if _, err := ar.Load("https://site-1.test/"); !errors.As(err, &rf) {
		t.Errorf("archived failure did not replay: %v", err)
	}
}

// TestSealDeterministicDigest: sealing the same crawl twice — and to a
// tarball — yields the same content digest, so a bundle's digest
// identifies its evidence, not the sealing run.
func TestSealDeterministicDigest(t *testing.T) {
	spec := fixture(t)
	dir := t.TempDir()
	m1 := seal(t, filepath.Join(dir, "b1"), spec)
	m2 := seal(t, filepath.Join(dir, "b2"), spec)
	if m1.Digest != m2.Digest {
		t.Errorf("digests differ across identical seals: %s vs %s", m1.Digest, m2.Digest)
	}
	m3 := seal(t, filepath.Join(dir, "b3.tar.gz"), spec)
	if m3.Digest != m1.Digest {
		t.Errorf("tarball digest differs from directory digest: %s vs %s", m3.Digest, m1.Digest)
	}
	// The tarball itself is byte-deterministic too.
	seal(t, filepath.Join(dir, "b4.tar.gz"), spec)
	raw3, _ := os.ReadFile(filepath.Join(dir, "b3.tar.gz"))
	raw4, _ := os.ReadFile(filepath.Join(dir, "b4.tar.gz"))
	if len(raw3) == 0 || string(raw3) != string(raw4) {
		t.Error("identical seals produced different tarball bytes")
	}
}

func TestTarballRoundTrip(t *testing.T) {
	spec := fixture(t)
	path := filepath.Join(t.TempDir(), "b.tgz")
	m := seal(t, path, spec)
	b, err := bundle.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(""); err != nil {
		t.Fatalf("Verify after tarball round trip: %v", err)
	}
	if b.Manifest.Digest != m.Digest {
		t.Errorf("digest changed through the tarball: %s vs %s", b.Manifest.Digest, m.Digest)
	}
	ds, err := b.Dataset()
	if err != nil || len(ds.Records) != 2 {
		t.Fatalf("Dataset = %v, %v", ds, err)
	}
	tmp := b.Dir
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("Close left the extraction dir behind: %v", err)
	}
}

// TestTamperDetected: every way a bundle can lie — altered file,
// deleted file, smuggled extra file, rewritten digest — fails Verify
// with ErrVerify.
func TestTamperDetected(t *testing.T) {
	tamper := map[string]func(t *testing.T, dir string){
		"altered dataset": func(t *testing.T, dir string) {
			f, err := os.OpenFile(filepath.Join(dir, bundle.DatasetName), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			f.WriteString("{\"rank\":99,\"url\":\"https://forged.test/\"}\n")
			f.Close()
		},
		"deleted report": func(t *testing.T, dir string) {
			os.Remove(filepath.Join(dir, bundle.ReportName))
		},
		"extra file": func(t *testing.T, dir string) {
			os.WriteFile(filepath.Join(dir, "smuggled.txt"), []byte("hi"), 0o644)
		},
		"rewritten digest": func(t *testing.T, dir string) {
			raw, err := os.ReadFile(filepath.Join(dir, bundle.ManifestName))
			if err != nil {
				t.Fatal(err)
			}
			b, err := bundle.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			forged := strings.ReplaceAll(string(raw), b.Manifest.Digest, flipDigest(b.Manifest.Digest))
			os.WriteFile(filepath.Join(dir, bundle.ManifestName), []byte(forged), 0o644)
		},
	}
	for name, fn := range tamper {
		t.Run(name, func(t *testing.T) {
			spec := fixture(t)
			dir := filepath.Join(t.TempDir(), "b")
			seal(t, dir, spec)
			fn(t, dir)
			b, err := bundle.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := b.Verify(""); !errors.Is(err, bundle.ErrVerify) {
				t.Errorf("Verify after tamper = %v, want ErrVerify", err)
			}
		})
	}
}

// flipDigest flips the first hex digit so the forged digest stays
// well-formed but wrong.
func flipDigest(d string) string {
	if d[0] == 'f' {
		return "0" + d[1:]
	}
	return "f" + d[1:]
}

func TestSignature(t *testing.T) {
	spec := fixture(t)
	spec.Key = "fleet-secret"
	dir := filepath.Join(t.TempDir(), "b")
	m := seal(t, dir, spec)
	if m.Signature == "" {
		t.Fatal("sealing with a key produced no signature")
	}
	b, err := bundle.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Verify("fleet-secret"); err != nil {
		t.Errorf("Verify with the right key: %v", err)
	}
	if err := b.Verify("wrong"); !errors.Is(err, bundle.ErrVerify) {
		t.Errorf("Verify with the wrong key = %v, want ErrVerify", err)
	}
	// Content checks still run without the key.
	if err := b.Verify(""); err != nil {
		t.Errorf("keyless Verify of a signed bundle: %v", err)
	}

	unsigned := filepath.Join(t.TempDir(), "u")
	spec.Key = ""
	seal(t, unsigned, spec)
	ub, err := bundle.Open(unsigned)
	if err != nil {
		t.Fatal(err)
	}
	if err := ub.Verify("fleet-secret"); !errors.Is(err, bundle.ErrVerify) {
		t.Errorf("Verify of an unsigned bundle with a key = %v, want ErrVerify", err)
	}
}

func TestSealRefusals(t *testing.T) {
	spec := fixture(t)
	occupied := t.TempDir()
	if err := os.WriteFile(filepath.Join(occupied, "x"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := bundle.Seal(occupied, spec); err == nil {
		t.Error("Seal into a non-empty directory succeeded")
	}

	// An unmerged archive (leftover shard manifest) must be refused.
	shardy := fixture(t)
	if err := os.WriteFile(filepath.Join(shardy.ArchiveDir, "manifest-0.jsonl"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := bundle.Seal(filepath.Join(t.TempDir(), "b"), shardy); err == nil {
		t.Error("Seal over an unmerged archive succeeded")
	}
}
