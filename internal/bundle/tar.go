package bundle

import (
	"archive/tar"
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// pack writes dir as a deterministic gzipped tarball at path: entries
// sorted by slash path (listFiles order, plus bundle.json first),
// regular files only, mtimes pinned to the epoch, uid/gid zeroed, and
// a USTAR header format so no extension record smuggles a timestamp
// back in. Packing the same sealed directory twice yields identical
// bytes.
func pack(path, dir string) error {
	files, err := listFiles(dir)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(files)+1)
	names = append(names, ManifestName)
	for _, f := range files {
		names = append(names, f.Path)
	}
	out, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	bw := bufferedWriteCloser{bufio.NewWriter(out), out}
	gz := gzip.NewWriter(bw) // gzip header carries no mtime unless one is set
	tw := tar.NewWriter(gz)
	for _, name := range names {
		if err := packOne(tw, dir, name); err != nil {
			tw.Close()
			gz.Close()
			bw.Close()
			os.Remove(path)
			return err
		}
	}
	err = tw.Close()
	if err2 := gz.Close(); err == nil {
		err = err2
	}
	if err2 := bw.Close(); err == nil {
		err = err2
	}
	if err != nil {
		os.Remove(path)
		return fmt.Errorf("bundle: packing: %w", err)
	}
	return nil
}

func packOne(tw *tar.Writer, dir, name string) error {
	full := filepath.Join(dir, filepath.FromSlash(name))
	fi, err := os.Stat(full)
	if err != nil {
		return fmt.Errorf("bundle: packing: %w", err)
	}
	hdr := &tar.Header{
		Name:    name,
		Mode:    0o644,
		Size:    fi.Size(),
		ModTime: time.Unix(0, 0),
		Format:  tar.FormatUSTAR,
	}
	if err := tw.WriteHeader(hdr); err != nil {
		return fmt.Errorf("bundle: packing %s: %w", name, err)
	}
	f, err := os.Open(full)
	if err != nil {
		return fmt.Errorf("bundle: packing %s: %w", name, err)
	}
	_, err = io.Copy(tw, f)
	f.Close()
	if err != nil {
		return fmt.Errorf("bundle: packing %s: %w", name, err)
	}
	return nil
}

// unpack extracts a bundle tarball into dst, refusing entry names that
// would escape it (absolute paths, ".." traversal) — a bundle from
// elsewhere is untrusted input until Verify passes, and even then must
// never write outside its extraction root.
func unpack(path, dst string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(bufio.NewReader(f))
	if err != nil {
		return fmt.Errorf("bundle: reading %s: %w", path, err)
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("bundle: reading %s: %w", path, err)
		}
		name := filepath.ToSlash(hdr.Name)
		if name == "" || strings.HasPrefix(name, "/") || strings.Contains(name, "..") {
			return fmt.Errorf("bundle: tarball entry %q escapes the extraction root", hdr.Name)
		}
		switch hdr.Typeflag {
		case tar.TypeDir:
			continue // directories materialize from file paths
		case tar.TypeReg:
		default:
			return fmt.Errorf("bundle: tarball entry %q has unsupported type %c", hdr.Name, hdr.Typeflag)
		}
		full := filepath.Join(dst, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			return fmt.Errorf("bundle: %w", err)
		}
		out, err := os.Create(full)
		if err != nil {
			return fmt.Errorf("bundle: %w", err)
		}
		if _, err := io.Copy(out, tr); err != nil {
			out.Close()
			return fmt.Errorf("bundle: extracting %s: %w", name, err)
		}
		if err := out.Close(); err != nil {
			return fmt.Errorf("bundle: %w", err)
		}
	}
}
