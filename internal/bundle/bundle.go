// Package bundle seals a finished crawl into a Web Execution Bundle:
// one self-contained, versioned directory (or tarball) holding
// everything needed to re-run the paper's analysis without re-running
// the crawl — the crawl configuration (population size, seed, era,
// chaos profile, raw flags), the output dataset JSONL, the crawl-time
// analysis report, the content-addressed resource archive (compacted
// manifest plus objects, i.e. diskcache.MergeShards output), the tool
// and dataset-schema versions, and a content digest over the lot,
// optionally HMAC-signed. The design follows Hantke et al.'s argument
// that archived, verifiable crawl evidence is what makes web
// measurements reproducible: `permreport -from-bundle` verifies the
// digest and re-runs analysis only — no browser, no network, no script
// interpreter — and two bundles from different crawl eras diff into a
// longitudinal drift report.
//
// A bundle is deterministic end to end: sealing the same crawl twice
// produces byte-identical contents and therefore the same digest. No
// timestamps are recorded anywhere — not in bundle.json, not in the
// tarball (entries are sorted, mtimes zeroed) — because a bundle's
// identity is its evidence, not when it was boxed.
package bundle

import (
	"bufio"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"permodyssey/internal/fleet"
	"permodyssey/internal/store"
)

// FormatVersion is the bundle layout version written to bundle.json.
// A reader refuses a bundle whose format it does not understand.
const FormatVersion = 1

// Well-known paths inside a bundle, relative to its root.
const (
	ManifestName = "bundle.json"
	DatasetName  = "dataset.jsonl"
	ReportName   = "report.txt"
	ArchiveDir   = "archive"
)

// ErrVerify wraps every verification failure — a tampered file, a
// missing or extra file, a digest or signature mismatch — so callers
// can distinguish "bundle is lying" from "bundle is unreadable".
var ErrVerify = errors.New("bundle: verification failed")

// Config records how the sealed crawl was produced. Enough to re-run
// the same crawl from scratch (population knobs) and to label the
// bundle in a longitudinal diff (era).
type Config struct {
	// Sites and Seed pin the synthetic population.
	Sites int   `json:"sites"`
	Seed  int64 `json:"seed"`
	// Era is the synthweb calibration year (0 = the default,
	// present-day population).
	Era int `json:"era,omitempty"`
	// Chaos marks a fault-injected crawl; ChaosFaults is the injected
	// fault-kind list ("" = all kinds).
	Chaos       bool   `json:"chaos,omitempty"`
	ChaosFaults string `json:"chaos_faults,omitempty"`
	// Flags is the raw command line the sealing tool was invoked with,
	// for provenance beyond the structured fields above.
	Flags []string `json:"flags,omitempty"`
}

// FileEntry is one sealed file: its slash-separated path relative to
// the bundle root, content hash, and size.
type FileEntry struct {
	Path   string `json:"path"`
	SHA256 string `json:"sha256"`
	Size   int64  `json:"size"`
}

// Manifest is bundle.json: the bundle's self-description and the
// digest that seals it.
type Manifest struct {
	FormatVersion int    `json:"format_version"`
	Tool          string `json:"tool"`
	ToolVersion   string `json:"tool_version"`
	// DatasetSchema is store.SchemaVersion at seal time.
	DatasetSchema int    `json:"dataset_schema"`
	Config        Config `json:"config"`
	// Records is the sealed dataset's record count.
	Records int `json:"records"`
	// FleetMerge carries the shard-reconciliation provenance when the
	// bundle was sealed by permfleet after a merged crawl.
	FleetMerge *fleet.MergeReport `json:"fleet_merge,omitempty"`
	// Files lists every sealed file except bundle.json itself, sorted
	// by path.
	Files []FileEntry `json:"files"`
	// Digest is the hex SHA-256 of the canonical file listing (see
	// digest): it commits to every byte of every sealed file.
	Digest string `json:"digest"`
	// Signature is hex HMAC-SHA256(key, Digest) when the bundle was
	// sealed with a key, binding the digest to a secret the verifier
	// must present.
	Signature string `json:"signature,omitempty"`
}

// Spec is everything Seal needs from the sealing tool.
type Spec struct {
	// DatasetPath is the crawl's output JSONL, copied into the bundle.
	DatasetPath string
	// ArchiveDir is the crawl's resource archive root. It must already
	// be compacted (diskcache.MergeShards): Seal copies manifest.jsonl
	// and objects/ and refuses leftover shard manifests, because a
	// bundle must hold the one deterministic manifest, not a pile of
	// shards.
	ArchiveDir string
	// Report is the crawl-time analysis report, byte-exact as the
	// sealing tool printed it — the replay gate diffs against it.
	Report string
	// Tool/ToolVersion identify the sealer (e.g. "permcrawl",
	// core.ToolVersion).
	Tool        string
	ToolVersion string
	Config      Config
	Records     int
	FleetMerge  *fleet.MergeReport
	// Key, when non-empty, HMAC-signs the digest.
	Key string
}

// Bundle is an opened bundle rooted at a directory (possibly a
// temporary extraction of a tarball — Close removes it).
type Bundle struct {
	Dir      string
	Manifest Manifest
	tmp      string // extraction dir to remove on Close; "" for plain dirs
}

// Seal writes the bundle for spec at path. A path ending in .tar.gz or
// .tgz seals to a deterministic tarball; anything else seals to a
// directory, which must not already exist (or must be empty) — a
// bundle is immutable evidence, never an in-place update. Returns the
// manifest it wrote.
func Seal(path string, spec Spec) (Manifest, error) {
	if isTarball(path) {
		tmp, err := os.MkdirTemp(filepath.Dir(path), ".bundle-*")
		if err != nil {
			return Manifest{}, fmt.Errorf("bundle: %w", err)
		}
		defer os.RemoveAll(tmp)
		dir := filepath.Join(tmp, "bundle")
		m, err := sealDir(dir, spec)
		if err != nil {
			return Manifest{}, err
		}
		if err := pack(path, dir); err != nil {
			return Manifest{}, err
		}
		return m, nil
	}
	return sealDir(path, spec)
}

func sealDir(dir string, spec Spec) (Manifest, error) {
	if entries, err := os.ReadDir(dir); err == nil && len(entries) > 0 {
		return Manifest{}, fmt.Errorf("bundle: %s already exists and is not empty", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Manifest{}, fmt.Errorf("bundle: %w", err)
	}
	if err := copyFile(filepath.Join(dir, DatasetName), spec.DatasetPath); err != nil {
		return Manifest{}, fmt.Errorf("bundle: sealing dataset: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, ReportName), []byte(spec.Report), 0o644); err != nil {
		return Manifest{}, fmt.Errorf("bundle: sealing report: %w", err)
	}
	if err := copyArchive(filepath.Join(dir, ArchiveDir), spec.ArchiveDir); err != nil {
		return Manifest{}, err
	}
	files, err := listFiles(dir)
	if err != nil {
		return Manifest{}, err
	}
	m := Manifest{
		FormatVersion: FormatVersion,
		Tool:          spec.Tool,
		ToolVersion:   spec.ToolVersion,
		DatasetSchema: store.SchemaVersion,
		Config:        spec.Config,
		Records:       spec.Records,
		FleetMerge:    spec.FleetMerge,
		Files:         files,
		Digest:        digest(files),
	}
	if spec.Key != "" {
		m.Signature = sign(m.Digest, spec.Key)
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return Manifest{}, fmt.Errorf("bundle: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), append(raw, '\n'), 0o644); err != nil {
		return Manifest{}, fmt.Errorf("bundle: %w", err)
	}
	return m, nil
}

// copyArchive seals an archive directory: the compacted manifest and
// the object store, nothing else. Shard manifests present mean the
// archive was never merged — refuse rather than seal a view that
// depends on reconciliation at read time.
func copyArchive(dst, src string) error {
	shards, err := filepath.Glob(filepath.Join(src, "manifest-*.jsonl"))
	if err == nil && len(shards) > 0 {
		return fmt.Errorf("bundle: archive %s has %d unmerged shard manifests; run the merge first", src, len(shards))
	}
	if err := copyFile(filepath.Join(dst, "manifest.jsonl"), filepath.Join(src, "manifest.jsonl")); err != nil {
		return fmt.Errorf("bundle: sealing archive manifest: %w", err)
	}
	objects := filepath.Join(src, "objects")
	return filepath.WalkDir(objects, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) && path == objects {
				return nil // archive with no successful fetches
			}
			return fmt.Errorf("bundle: sealing objects: %w", err)
		}
		if d.IsDir() || strings.HasPrefix(d.Name(), ".") {
			return nil // skip temp debris; objects are plain hash-named files
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return fmt.Errorf("bundle: %w", err)
		}
		if err := copyFile(filepath.Join(dst, rel), path); err != nil {
			return fmt.Errorf("bundle: sealing %s: %w", rel, err)
		}
		return nil
	})
}

func copyFile(dst, src string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// listFiles walks dir and hashes every regular file except the
// manifest itself, returning entries sorted by slash-separated path.
func listFiles(dir string) ([]FileEntry, error) {
	var files []FileEntry
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if rel == ManifestName {
			return nil
		}
		sum, size, err := hashFile(path)
		if err != nil {
			return err
		}
		files = append(files, FileEntry{Path: rel, SHA256: sum, Size: size})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("bundle: %w", err)
	}
	sort.Slice(files, func(i, j int) bool { return files[i].Path < files[j].Path })
	return files, nil
}

func hashFile(path string) (sum string, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), n, nil
}

// digest commits to the full file listing: one canonical line per
// file, sorted by path, hashed as a whole. Any changed, added, or
// removed byte in any sealed file changes the digest.
func digest(files []FileEntry) string {
	h := sha256.New()
	for _, f := range files {
		fmt.Fprintf(h, "%s  %d  %s\n", f.SHA256, f.Size, f.Path)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func sign(digest, key string) string {
	mac := hmac.New(sha256.New, []byte(key))
	mac.Write([]byte(digest))
	return hex.EncodeToString(mac.Sum(nil))
}

// Open reads the bundle at path — a sealed directory or a .tar.gz /
// .tgz tarball, which is extracted to a temp directory removed by
// Close. Open only parses bundle.json; call Verify before trusting the
// contents.
func Open(path string) (*Bundle, error) {
	b := &Bundle{Dir: path}
	if isTarball(path) {
		tmp, err := os.MkdirTemp("", "bundle-*")
		if err != nil {
			return nil, fmt.Errorf("bundle: %w", err)
		}
		if err := unpack(path, tmp); err != nil {
			os.RemoveAll(tmp)
			return nil, err
		}
		b.Dir, b.tmp = tmp, tmp
	}
	raw, err := os.ReadFile(filepath.Join(b.Dir, ManifestName))
	if err != nil {
		b.Close()
		return nil, fmt.Errorf("bundle: %w", err)
	}
	if err := json.Unmarshal(raw, &b.Manifest); err != nil {
		b.Close()
		return nil, fmt.Errorf("bundle: parsing %s: %w", ManifestName, err)
	}
	if b.Manifest.FormatVersion != FormatVersion {
		b.Close()
		return nil, fmt.Errorf("bundle: format version %d not supported (want %d)", b.Manifest.FormatVersion, FormatVersion)
	}
	return b, nil
}

// Verify re-hashes every sealed file and checks the lot against the
// manifest: no file missing, none added, none changed, the digest
// matching the listing, and — when key is non-empty — the signature
// matching the digest. Every failure wraps ErrVerify and names the
// first offending path.
func (b *Bundle) Verify(key string) error {
	got, err := listFiles(b.Dir)
	if err != nil {
		return err
	}
	want := b.Manifest.Files
	byPath := make(map[string]FileEntry, len(want))
	for _, f := range want {
		byPath[f.Path] = f
	}
	for _, g := range got {
		w, ok := byPath[g.Path]
		if !ok {
			return fmt.Errorf("%w: unlisted file %s", ErrVerify, g.Path)
		}
		if g.SHA256 != w.SHA256 || g.Size != w.Size {
			return fmt.Errorf("%w: digest mismatch on %s (content altered since sealing)", ErrVerify, g.Path)
		}
		delete(byPath, g.Path)
	}
	for path := range byPath {
		return fmt.Errorf("%w: sealed file %s is missing", ErrVerify, path)
	}
	if d := digest(got); d != b.Manifest.Digest {
		return fmt.Errorf("%w: digest mismatch (manifest digest does not match sealed files)", ErrVerify)
	}
	if key != "" {
		if b.Manifest.Signature == "" {
			return fmt.Errorf("%w: bundle is unsigned but a key was provided", ErrVerify)
		}
		if !hmac.Equal([]byte(sign(b.Manifest.Digest, key)), []byte(b.Manifest.Signature)) {
			return fmt.Errorf("%w: signature mismatch (wrong key or forged digest)", ErrVerify)
		}
	}
	return nil
}

// Dataset loads the sealed dataset.
func (b *Bundle) Dataset() (*store.Dataset, error) {
	return store.LoadFile(filepath.Join(b.Dir, DatasetName))
}

// Report reads the sealed crawl-time report, byte-exact.
func (b *Bundle) Report() (string, error) {
	raw, err := os.ReadFile(filepath.Join(b.Dir, ReportName))
	if err != nil {
		return "", fmt.Errorf("bundle: %w", err)
	}
	return string(raw), nil
}

// ArchivePath returns the sealed archive root, usable directly as a
// diskcache directory for strict offline replay.
func (b *Bundle) ArchivePath() string {
	return filepath.Join(b.Dir, ArchiveDir)
}

// Close removes the temporary extraction of a tarball bundle; for a
// directory bundle it is a no-op.
func (b *Bundle) Close() error {
	if b.tmp == "" {
		return nil
	}
	err := os.RemoveAll(b.tmp)
	b.tmp = ""
	return err
}

func isTarball(path string) bool {
	return strings.HasSuffix(path, ".tar.gz") || strings.HasSuffix(path, ".tgz")
}

// bufferedWriteCloser pairs the bufio flush with the underlying close
// so pack's layered writers unwind in order.
type bufferedWriteCloser struct {
	*bufio.Writer
	c io.Closer
}

func (b bufferedWriteCloser) Close() error {
	if err := b.Flush(); err != nil {
		b.c.Close()
		return err
	}
	return b.c.Close()
}
