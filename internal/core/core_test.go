package core

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"permodyssey/internal/browser"
	"permodyssey/internal/permissions"
	"permodyssey/internal/policy"
)

func TestRunEndToEnd(t *testing.T) {
	opts := DefaultMeasurementOptions()
	opts.Web.NumSites = 120
	opts.Web.Seed = 3
	opts.Crawl.Workers = 16
	opts.Crawl.PerSiteTimeout = 200 * time.Millisecond
	opts.StallTime = 400 * time.Millisecond
	m, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Dataset.Records) != 120 {
		t.Fatalf("records: %d", len(m.Dataset.Records))
	}
	report := m.Report()
	for _, want := range []string{"Table 4", "Figure 2", "Table 10/13"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestGenerateDisableAll(t *testing.T) {
	header, err := Generate(GeneratorInput{Mode: DisableAll, Browser: permissions.Chromium, Version: 127})
	if err != nil {
		t.Fatal(err)
	}
	p, issues, err := policy.ParsePermissionsPolicy(header)
	if err != nil {
		t.Fatalf("generated header does not parse: %v", err)
	}
	if policy.HasBlockingIssue(issues) {
		t.Fatalf("issues: %v", issues)
	}
	// Every directive must be a full disable.
	for _, d := range p.Directives {
		if !d.Allowlist.None() {
			t.Errorf("%s not disabled: %+v", d.Feature, d.Allowlist)
		}
	}
	// It must cover every supported policy-controlled permission — the
	// configuration no measured website achieved (§4.3.1).
	covered := map[string]bool{}
	for _, d := range p.Directives {
		covered[d.Feature] = true
	}
	for _, name := range permissions.SupportedPermissions(permissions.Chromium, 127) {
		if perm, _ := permissions.Lookup(name); !perm.PolicyControlled() {
			continue
		}
		if !covered[name] {
			t.Errorf("supported permission %s not covered", name)
		}
	}
	if covered["notifications"] {
		t.Error("notifications is not policy-controlled; must not appear")
	}
}

func TestGenerateDisablePowerful(t *testing.T) {
	header, err := Generate(GeneratorInput{Mode: DisablePowerful, Browser: permissions.Chromium, Version: 127})
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := policy.ParsePermissionsPolicy(header)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range p.Directives {
		perm, ok := permissions.Lookup(d.Feature)
		if !ok || !perm.Powerful {
			t.Errorf("non-powerful %s in DisablePowerful header", d.Feature)
		}
	}
	if _, ok := p.Get("camera"); !ok {
		t.Error("camera must be disabled")
	}
	if _, ok := p.Get("gamepad"); ok {
		t.Error("gamepad is not powerful; must be left at default")
	}
}

func TestGenerateFromUsage(t *testing.T) {
	header, err := Generate(GeneratorInput{
		Mode:            FromUsage,
		Browser:         permissions.Chromium,
		Version:         127,
		UsedPermissions: []string{"geolocation", "camera"},
		DelegatedTo:     map[string][]string{"camera": {"https://meet.example"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, issues, err := policy.ParsePermissionsPolicy(header)
	if err != nil || policy.HasBlockingIssue(issues) {
		t.Fatalf("header: %v / %v", err, issues)
	}
	cam, _ := p.Get("camera")
	if !cam.Self || len(cam.Origins) != 1 || cam.Origins[0] != "https://meet.example" {
		t.Errorf("camera: %+v", cam)
	}
	geo, _ := p.Get("geolocation")
	if !geo.Self || len(geo.Origins) != 0 {
		t.Errorf("geolocation: %+v", geo)
	}
	mic, ok := p.Get("microphone")
	if !ok || !mic.None() {
		t.Errorf("unused microphone must be disabled: %+v ok=%v", mic, ok)
	}
	// Older browser: fewer directives.
	old, err := Generate(GeneratorInput{Mode: DisableAll, Browser: permissions.Chromium, Version: 80})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(old, "=") >= strings.Count(header, "=") {
		t.Error("Chromium 80 header must cover fewer permissions than 127")
	}
	// Unknown permission rejected.
	if _, err := Generate(GeneratorInput{Mode: FromUsage, UsedPermissions: []string{"bogus"}}); err == nil {
		t.Error("unknown permission must be rejected")
	}
}

func TestGenerateReportOnly(t *testing.T) {
	value, err := GenerateReportOnly(GeneratorInput{Mode: DisablePowerful, Browser: permissions.Chromium, Version: 127}, "violations")
	if err != nil {
		t.Fatal(err)
	}
	p, eps, issues, err := policy.ParseReportOnly(value)
	if err != nil {
		t.Fatalf("generated report-only header invalid: %v", err)
	}
	if policy.HasBlockingIssue(issues) {
		t.Fatalf("issues: %v", issues)
	}
	if _, ok := p.Get("camera"); !ok {
		t.Error("camera directive missing")
	}
	if eps["camera"] != "violations" {
		t.Errorf("camera endpoint: %q", eps["camera"])
	}
	// Every directive must carry the endpoint.
	if len(eps) != len(p.Directives) {
		t.Errorf("endpoints on %d of %d directives", len(eps), len(p.Directives))
	}
}

func TestGenerateAllowAttr(t *testing.T) {
	attr, err := GenerateAllowAttr([]string{"microphone", "camera", "camera"})
	if err != nil {
		t.Fatal(err)
	}
	if attr != "camera; microphone" {
		t.Errorf("attr = %q", attr)
	}
	if _, err := GenerateAllowAttr([]string{"notifications"}); err == nil {
		t.Error("non-policy-controlled permission must be rejected")
	}
	if _, err := GenerateAllowAttr([]string{"nope"}); err == nil {
		t.Error("unknown permission must be rejected")
	}
}

func TestProbeSpecIssueBothModes(t *testing.T) {
	actual, err := ProbeSpecIssue("https://example.org", "https://attacker.example", policy.SpecActual)
	if err != nil {
		t.Fatal(err)
	}
	expected, err := ProbeSpecIssue("https://example.org", "https://attacker.example", policy.SpecExpected)
	if err != nil {
		t.Fatal(err)
	}
	// Table 11: local doc allowed in both rows; third party differs.
	if !actual.LocalHasCamera || !expected.LocalHasCamera {
		t.Error("local-scheme document must have camera in both modes")
	}
	if !actual.ThirdPartyHasCamera {
		t.Error("actual spec: third party must gain camera (the bug)")
	}
	if expected.ThirdPartyHasCamera {
		t.Error("expected behaviour: third party must stay blocked")
	}
	out, err := RenderSpecIssue("https://example.org", "https://attacker.example")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table 11") || !strings.Contains(out, "ALLOWED") {
		t.Errorf("render: %q", out)
	}
}

func TestSupportTable(t *testing.T) {
	out := SupportTable(nil)
	for _, want := range []string{"camera", "notifications", "Chromium", "Firefox", "Safari", "PP=yes", "PP=no"} {
		if !strings.Contains(out, want) {
			t.Errorf("support table missing %q", want)
		}
	}
	changes := SupportChanges(permissions.Chromium, 88, 90)
	if !strings.Contains(changes, "interest-cohort") {
		t.Errorf("changes: %q", changes)
	}
}

func TestRecommender(t *testing.T) {
	page := func(body string, headers map[string]string) *browser.Response {
		h := http.Header{}
		for k, v := range headers {
			h.Set(k, v)
		}
		return &browser.Response{Status: 200, Header: h, Body: body}
	}
	fetcher := browser.MapFetcher{
		"https://shop.example/": page(`
			<script>navigator.geolocation.getCurrentPosition(function(){});</script>
			<iframe src="https://chat.example/widget" allow="camera *; microphone *; clipboard-read"></iframe>
			<iframe src="https://pay.example/checkout" allow="payment"></iframe>`, nil),
		"https://chat.example/widget": page(`<script>var nothing = 1;</script>`, nil),
		"https://pay.example/checkout": page(
			`<script>var p = new PaymentRequest([], {}); p.canMakePayment();</script>`, nil),
	}
	r := &Recommender{Fetcher: fetcher}
	rec, err := r.Recommend(context.Background(), "https://shop.example/")
	if err != nil {
		t.Fatal(err)
	}
	// geolocation used by the site itself, payment by the checkout frame.
	joined := strings.Join(rec.UsedPermissions, ",")
	if !strings.Contains(joined, "geolocation") || !strings.Contains(joined, "payment") {
		t.Errorf("used: %v", rec.UsedPermissions)
	}
	p, _, err := policy.ParsePermissionsPolicy(rec.Header)
	if err != nil {
		t.Fatalf("recommended header: %v", err)
	}
	pay, _ := p.Get("payment")
	if !pay.Self || len(pay.Origins) != 1 || pay.Origins[0] != "https://pay.example" {
		t.Errorf("payment allowlist: %+v", pay)
	}
	cam, ok := p.Get("camera")
	if !ok || !cam.None() {
		t.Errorf("camera must be disabled: %+v", cam)
	}
	// The chat widget's unused camera/microphone/clipboard-read must be
	// flagged, and its wildcard called out.
	var chatAdvice *FrameAdvice
	for i := range rec.FrameAdvice {
		if strings.Contains(rec.FrameAdvice[i].FrameURL, "chat.example") {
			chatAdvice = &rec.FrameAdvice[i]
		}
	}
	if chatAdvice == nil {
		t.Fatalf("no advice for the chat frame: %+v", rec.FrameAdvice)
	}
	unused := strings.Join(chatAdvice.UnusedDelegations, ",")
	for _, want := range []string{"camera", "microphone", "clipboard-read"} {
		if !strings.Contains(unused, want) {
			t.Errorf("unused delegations %v missing %s", chatAdvice.UnusedDelegations, want)
		}
	}
	findings := strings.Join(rec.Findings, "\n")
	if !strings.Contains(findings, "wildcard") {
		t.Errorf("wildcard finding missing: %v", rec.Findings)
	}
	if !strings.Contains(findings, "no Permissions-Policy header") {
		t.Errorf("missing-header finding absent: %v", rec.Findings)
	}
}
