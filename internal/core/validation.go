package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"permodyssey/internal/browser"
	"permodyssey/internal/permissions"
	"permodyssey/internal/static"
	"permodyssey/internal/synthweb"
	"permodyssey/internal/webapi"
)

// ValidationRow is one row of Table 12 (Appendix A.3): for one site
// population, the average permissions reported without interaction
// (static and dynamic) versus the permissions activated with
// interaction, and how much of the activated set the no-interaction
// analyses already captured.
type ValidationRow struct {
	Experiment string
	Sites      int
	// Averages per site.
	AvgStatic    float64
	AvgDynamic   float64
	AvgActivated float64
	// Detection rates over the activated permissions.
	DetectedByStatic        float64
	DetectedByStaticOrDynam float64
}

// ValidationExperiment reproduces the Appendix A.3 manual-testing
// methodology on the synthetic web: crawl candidate sites without
// interaction, then again with the interaction pass (the stand-in for a
// researcher clicking through the site), and compare.
type ValidationExperiment struct {
	// Web is the population to draw candidates from.
	Web synthweb.Config
	// SitesPerExperiment mirrors the paper's 25-site samples.
	SitesPerExperiment int
}

// Run executes all three experiments of Table 12.
func (v ValidationExperiment) Run(ctx context.Context) ([]ValidationRow, error) {
	if v.SitesPerExperiment <= 0 {
		v.SitesPerExperiment = 25
	}
	srv := synthweb.NewServer(v.Web)
	srv.StallTime = time.Second
	if err := srv.Start(); err != nil {
		return nil, err
	}
	defer srv.Close()
	client := srv.Client(0)

	plainOpts := browser.DefaultOptions()
	interOpts := browser.DefaultOptions()
	interOpts.Interact = true
	plain := browser.New(browser.NewHTTPFetcher(client), plainOpts)
	inter := browser.New(browser.NewHTTPFetcher(client), interOpts)

	// Candidate selection. Experiment 1: sites with static findings but
	// no dynamic activity (drawn from a preliminary pass, like the
	// paper samples from its own measurement results). Experiments 2/3:
	// by category, the paper's "Ecommerce" and "Video players".
	var staticOnly, ecommerce, video []synthweb.Site
	for _, s := range srv.Sites() {
		if s.Kind != synthweb.KindOK {
			continue
		}
		switch s.Category {
		case synthweb.CatEcommerce:
			ecommerce = append(ecommerce, s)
		case synthweb.CatVideo:
			video = append(video, s)
		}
	}
	for _, s := range srv.Sites() {
		if len(staticOnly) >= v.SitesPerExperiment*3 {
			break
		}
		if s.Kind != synthweb.KindOK {
			continue
		}
		page, err := plain.Visit(ctx, s.URL())
		if err != nil {
			continue
		}
		st, dyn := sitePermissions(page)
		if len(st) > 0 && len(dyn) == 0 {
			staticOnly = append(staticOnly, s)
		}
	}

	experiments := []struct {
		name  string
		sites []synthweb.Site
	}{
		{"Static-Only", staticOnly},
		{"Ecommerce", ecommerce},
		{"Video Players", video},
	}
	var rows []ValidationRow
	for _, exp := range experiments {
		sites := exp.sites
		if len(sites) > v.SitesPerExperiment {
			sites = sites[:v.SitesPerExperiment]
		}
		row := ValidationRow{Experiment: exp.name, Sites: len(sites)}
		var sumStatic, sumDyn, sumAct, sumHitStatic, sumHitEither, totalAct int
		for _, s := range sites {
			noInter, err := plain.Visit(ctx, s.URL())
			if err != nil {
				continue
			}
			withInter, err := inter.Visit(ctx, s.URL())
			if err != nil {
				continue
			}
			st, dyn := sitePermissions(noInter)
			_, activated := sitePermissions(withInter)
			sumStatic += len(st)
			sumDyn += len(dyn)
			sumAct += len(activated)
			for p := range activated {
				totalAct++
				if st[p] {
					sumHitStatic++
				}
				if st[p] || dyn[p] {
					sumHitEither++
				}
			}
		}
		if row.Sites > 0 {
			row.AvgStatic = float64(sumStatic) / float64(row.Sites)
			row.AvgDynamic = float64(sumDyn) / float64(row.Sites)
			row.AvgActivated = float64(sumAct) / float64(row.Sites)
		}
		if totalAct > 0 {
			row.DetectedByStatic = 100 * float64(sumHitStatic) / float64(totalAct)
			row.DetectedByStaticOrDynam = 100 * float64(sumHitEither) / float64(totalAct)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// sitePermissions extracts the distinct specific permissions seen
// statically and dynamically anywhere on the page.
func sitePermissions(page *browser.PageResult) (staticSet, dynamicSet map[string]bool) {
	staticSet, dynamicSet = map[string]bool{}, map[string]bool{}
	for _, f := range page.Frames {
		for _, p := range static.Permissions(f.StaticFindings) {
			if permissions.Known(p) {
				staticSet[p] = true
			}
		}
		for _, inv := range f.Invocations {
			if inv.Kind == webapi.KindStatusCheck {
				continue // Table 12 compares *activated* permissions
			}
			for _, p := range inv.Permissions {
				if permissions.Known(p) {
					dynamicSet[p] = true
				}
			}
		}
	}
	return staticSet, dynamicSet
}

// RenderValidation renders Table 12.
func RenderValidation(rows []ValidationRow) string {
	var b strings.Builder
	b.WriteString("Table 12: Manual Testing of Average Permission Detection Across Experiments\n")
	fmt.Fprintf(&b, "%-14s %5s  %10s %10s %11s  %10s %10s\n",
		"Experiment", "Sites", "Static", "Dynamic", "Activated", "by Static", "by S∪D")
	sort.SliceStable(rows, func(i, j int) bool { return false }) // keep order
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %5d  %10.2f %10.2f %11.2f  %9.2f%% %9.2f%%\n",
			r.Experiment, r.Sites, r.AvgStatic, r.AvgDynamic, r.AvgActivated,
			r.DetectedByStatic, r.DetectedByStaticOrDynam)
	}
	return b.String()
}
