package core

import (
	"context"
	"strings"
	"testing"

	"permodyssey/internal/synthweb"
)

func TestValidationExperiment(t *testing.T) {
	cfg := synthweb.DefaultConfig()
	cfg.NumSites = 400
	cfg.Seed = 5
	// Healthy sites only: the validation harness skips failures anyway,
	// but a clean population keeps the samples full.
	cfg.UnreachableRate, cfg.TimeoutRate, cfg.EphemeralRate, cfg.MinorRate = 0, 0, 0, 0

	v := ValidationExperiment{Web: cfg, SitesPerExperiment: 15}
	rows, err := v.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	byName := map[string]ValidationRow{}
	for _, r := range rows {
		byName[r.Experiment] = r
		t.Logf("%+v", r)
	}
	so := byName["Static-Only"]
	if so.Sites == 0 {
		t.Fatal("static-only sample empty")
	}
	// By construction these sites had no dynamic activity.
	if so.AvgDynamic != 0 {
		t.Errorf("static-only sites must have zero no-interaction dynamic average, got %.2f", so.AvgDynamic)
	}
	if so.AvgStatic <= 0 {
		t.Errorf("static-only sites must have static findings, got %.2f", so.AvgStatic)
	}
	// The paper's key qualitative result: static analysis captures a
	// substantial fraction of interaction-activated permissions, and
	// adding dynamic never hurts.
	for name, r := range byName {
		if r.Sites == 0 {
			continue
		}
		if r.DetectedByStaticOrDynam < r.DetectedByStatic {
			t.Errorf("%s: S∪D (%.1f%%) below static alone (%.1f%%)", name, r.DetectedByStaticOrDynam, r.DetectedByStatic)
		}
	}
	if so.AvgActivated > 0 && so.DetectedByStatic < 30 {
		t.Errorf("static-only population: static should capture much of the activated set, got %.1f%%", so.DetectedByStatic)
	}
	out := RenderValidation(rows)
	if !strings.Contains(out, "Table 12") || !strings.Contains(out, "Ecommerce") {
		t.Errorf("render: %q", out)
	}
}
