// Package core is the public face of the reproduction: the end-to-end
// measurement orchestrator (generate a synthetic web → serve it → crawl
// it → analyze it → render the paper's tables) and the developer tools
// the paper ships (§6.3): the Permissions-Policy header generator, the
// header/attribute linter, the least-privilege recommender, the
// caniuse-style support table, and the local-scheme specification-issue
// probe (§6.2).
package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"permodyssey/internal/analysis"
	"permodyssey/internal/browser"
	"permodyssey/internal/crawler"
	"permodyssey/internal/store"
	"permodyssey/internal/synthweb"
)

// MeasurementOptions configures a full measurement run.
type MeasurementOptions struct {
	// Web is the synthetic-web population configuration.
	Web synthweb.Config
	// Crawl tunes the crawler.
	Crawl crawler.Config
	// BrowserOpts tunes the mini browser.
	BrowserOpts browser.Options
	// StallTime is how long timeout-class sites hang (must exceed the
	// crawl deadline to be classified as timeouts).
	StallTime time.Duration
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

// DefaultMeasurementOptions mirrors the paper's setup, scaled down.
func DefaultMeasurementOptions() MeasurementOptions {
	crawlCfg := crawler.DefaultConfig()
	crawlCfg.PerSiteTimeout = 500 * time.Millisecond
	return MeasurementOptions{
		Web:         synthweb.DefaultConfig(),
		Crawl:       crawlCfg,
		BrowserOpts: browser.DefaultOptions(),
		StallTime:   time.Second,
	}
}

// Measurement is a completed run.
type Measurement struct {
	Dataset  *store.Dataset
	Analysis *analysis.Analysis
	Elapsed  time.Duration
}

// Run executes the full pipeline.
func Run(ctx context.Context, opts MeasurementOptions) (*Measurement, error) {
	start := time.Now()
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}

	srv := synthweb.NewServer(opts.Web)
	if opts.StallTime > 0 {
		srv.StallTime = opts.StallTime
	}
	if err := srv.Start(); err != nil {
		return nil, fmt.Errorf("starting synthetic web: %w", err)
	}
	defer srv.Close()
	logf("synthetic web: %d sites on %s (seed %d)", opts.Web.NumSites, srv.Addr(), opts.Web.Seed)

	fetcher := browser.NewHTTPFetcher(srv.Client(0))
	b := browser.New(fetcher, opts.BrowserOpts)
	c := crawler.New(b, opts.Crawl)

	targets := make([]crawler.Target, 0, opts.Web.NumSites)
	for _, s := range srv.Sites() {
		targets = append(targets, crawler.Target{Rank: s.Rank, URL: s.URL()})
	}
	logf("crawling %d sites with %d workers...", len(targets), opts.Crawl.Workers)
	ds := c.Crawl(ctx, targets)

	m := &Measurement{
		Dataset:  ds,
		Analysis: analysis.New(ds),
		Elapsed:  time.Since(start),
	}
	logf("crawl finished in %s: %v", m.Elapsed.Round(time.Millisecond), ds.FailureCounts())
	return m, nil
}

// Report renders the full paper-style report.
func (m *Measurement) Report() string { return m.Analysis.FullReport() }
