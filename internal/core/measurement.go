// Package core is the public face of the reproduction: the end-to-end
// measurement orchestrator (generate a synthetic web → serve it → crawl
// it → analyze it → render the paper's tables) and the developer tools
// the paper ships (§6.3): the Permissions-Policy header generator, the
// header/attribute linter, the least-privilege recommender, the
// caniuse-style support table, and the local-scheme specification-issue
// probe (§6.2).
package core

import (
	"context"
	"fmt"
	"io"
	"net/url"
	"time"

	"permodyssey/internal/analysis"
	"permodyssey/internal/browser"
	"permodyssey/internal/crawler"
	"permodyssey/internal/script"
	"permodyssey/internal/store"
	"permodyssey/internal/synthweb"
)

// MeasurementOptions configures a full measurement run.
type MeasurementOptions struct {
	// Web is the synthetic-web population configuration.
	Web synthweb.Config
	// Crawl tunes the crawler.
	Crawl crawler.Config
	// BrowserOpts tunes the mini browser.
	BrowserOpts browser.Options
	// StallTime is how long timeout-class sites hang (must exceed the
	// crawl deadline to be classified as timeouts).
	StallTime time.Duration
	// DisableCache turns off the shared fetch and script-parse caches.
	// They are on by default: per-site documents bypass the fetch cache
	// (each site is visited once), while cross-origin widget documents
	// and CDN scripts — fetched for thousands of sites — are served from
	// it, and each distinct script body is parsed once per crawl.
	// Caching is observationally transparent (TestCrawlDeterminism).
	DisableCache bool
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

// CrawlStats aggregates the observability counters of one run: what the
// fetch cache saved, what the parse cache saved, and what the crawler
// retried or resumed.
type CrawlStats struct {
	Fetch browser.CacheStats
	Parse script.ParseStats
	Crawl crawler.Stats
}

// DefaultMeasurementOptions mirrors the paper's setup, scaled down.
func DefaultMeasurementOptions() MeasurementOptions {
	crawlCfg := crawler.DefaultConfig()
	crawlCfg.PerSiteTimeout = 500 * time.Millisecond
	return MeasurementOptions{
		Web:         synthweb.DefaultConfig(),
		Crawl:       crawlCfg,
		BrowserOpts: browser.DefaultOptions(),
		StallTime:   time.Second,
	}
}

// Measurement is a completed run.
type Measurement struct {
	Dataset  *store.Dataset
	Analysis *analysis.Analysis
	Stats    CrawlStats
	Elapsed  time.Duration
}

// Run executes the full pipeline.
func Run(ctx context.Context, opts MeasurementOptions) (*Measurement, error) {
	start := time.Now()
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}

	srv := synthweb.NewServer(opts.Web)
	if opts.StallTime > 0 {
		srv.StallTime = opts.StallTime
	}
	if err := srv.Start(); err != nil {
		return nil, fmt.Errorf("starting synthetic web: %w", err)
	}
	defer srv.Close()
	logf("synthetic web: %d sites on %s (seed %d)", opts.Web.NumSites, srv.Addr(), opts.Web.Seed)

	var fetcher browser.Fetcher = browser.NewHTTPFetcher(srv.Client(0))
	var cache *browser.CachingFetcher
	targets := make([]crawler.Target, 0, opts.Web.NumSites)
	siteHosts := make(map[string]bool, opts.Web.NumSites)
	for _, s := range srv.Sites() {
		targets = append(targets, crawler.Target{Rank: s.Rank, URL: s.URL()})
		siteHosts[s.Host] = true
	}
	if !opts.DisableCache {
		cache = browser.NewCachingFetcher(fetcher)
		// Per-site documents (landing and internal pages) are fetched
		// once each — bypass them so cache memory stays bounded by the
		// shared widget/CDN population.
		cache.Cacheable = func(rawURL string) bool {
			u, err := url.Parse(rawURL)
			if err != nil {
				return false
			}
			return !siteHosts[u.Hostname()]
		}
		fetcher = cache
		opts.BrowserOpts.ScriptCache = script.NewParseCache()
	}
	b := browser.New(fetcher, opts.BrowserOpts)
	c := crawler.New(b, opts.Crawl)

	logf("crawling %d sites with %d workers...", len(targets), opts.Crawl.Workers)
	ds := c.Crawl(ctx, targets)

	m := &Measurement{
		Dataset:  ds,
		Analysis: analysis.New(ds),
		Elapsed:  time.Since(start),
	}
	m.Stats.Crawl = c.Stats()
	if cache != nil {
		m.Stats.Fetch = cache.Stats()
		m.Stats.Parse = opts.BrowserOpts.ScriptCache.Stats()
	}
	logf("crawl finished in %s: %v", m.Elapsed.Round(time.Millisecond), ds.FailureCounts())
	logf("%s", m.Stats.Summary())
	return m, nil
}

// Summary renders the counters as one log-friendly line.
func (s CrawlStats) Summary() string {
	return fmt.Sprintf(
		"visited %d (resumed %d, retries %d); fetch cache: %d hits, %d misses, %d coalesced, %d bypassed, %d errors, %d entries (%d unique bodies, %s deduped); parse cache: %d hits, %d misses, %d coalesced, %d entries",
		s.Crawl.Visited, s.Crawl.Resumed, s.Crawl.Retries,
		s.Fetch.Hits, s.Fetch.Misses, s.Fetch.Coalesced, s.Fetch.Bypassed,
		s.Fetch.Errors, s.Fetch.Entries, s.Fetch.UniqueBodies, byteSize(s.Fetch.DedupedBytes),
		s.Parse.Hits, s.Parse.Misses, s.Parse.Coalesced, s.Parse.Entries)
}

// byteSize renders n bytes human-readably.
func byteSize(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Report renders the full paper-style report.
func (m *Measurement) Report() string { return m.Analysis.FullReport() }
