// Package core is the public face of the reproduction: the end-to-end
// measurement orchestrator (generate a synthetic web → serve it → crawl
// it → analyze it → render the paper's tables) and the developer tools
// the paper ships (§6.3): the Permissions-Policy header generator, the
// header/attribute linter, the least-privilege recommender, the
// caniuse-style support table, and the local-scheme specification-issue
// probe (§6.2).
package core

import (
	"context"
	"fmt"
	"io"
	"net/url"
	"time"

	"permodyssey/internal/analysis"
	"permodyssey/internal/browser"
	"permodyssey/internal/crawler"
	"permodyssey/internal/diskcache"
	"permodyssey/internal/html"
	"permodyssey/internal/script"
	"permodyssey/internal/static"
	"permodyssey/internal/store"
	"permodyssey/internal/synthweb"
)

// MeasurementOptions configures a full measurement run.
type MeasurementOptions struct {
	// Web is the synthetic-web population configuration.
	Web synthweb.Config
	// Crawl tunes the crawler.
	Crawl crawler.Config
	// BrowserOpts tunes the mini browser.
	BrowserOpts browser.Options
	// StallTime is how long timeout-class sites hang (must exceed the
	// crawl deadline to be classified as timeouts).
	StallTime time.Duration
	// DisableCache turns off the shared fetch, script-parse, and
	// static-findings caches. They are on by default: per-site documents
	// bypass the fetch cache (each site is visited once), while
	// cross-origin widget documents and CDN scripts — fetched for
	// thousands of sites — are served from it, each distinct script body
	// is parsed once per crawl, and its pattern scan runs once per crawl.
	// Caching is observationally transparent (TestCrawlDeterminism).
	DisableCache bool
	// DisableCompile turns off the compile-once script path: realms fall
	// back to executing parsed ASTs directly. Compilation is on by
	// default when caching is enabled — each distinct script body is
	// lowered once per crawl and every realm runs the shared compiled
	// program through pooled scope frames. Observationally transparent
	// (TestCrawlCompileEquivalence).
	DisableCompile bool
	// DisableDOMCache turns off the shared parsed-document (DOM) cache:
	// every frame then parses its own arena-backed document instead of
	// sharing one immutable parse per distinct body. On by default when
	// caching is enabled — the Zipf-popular third-party documents
	// embedded by thousands of sites tokenize once per crawl.
	// Observationally transparent (TestCrawlDOMCacheEquivalence).
	DisableDOMCache bool
	// CacheEntries caps each cache (fetch responses, parsed programs,
	// parsed documents, static findings) at this many entries, evicted
	// LRU. 0 = unbounded.
	CacheEntries int
	// CacheBytes caps the fetch cache's total cached body bytes and,
	// independently, the DOM cache's summed parsed-source bytes, each
	// evicted LRU alongside the entry cap; a single body larger than the
	// budget is served but never retained. 0 = unbounded.
	CacheBytes int64
	// Breaker enables the per-host circuit breaker between the fetch
	// cache and the network when Threshold > 0: a host that fails
	// Threshold times in a row is refused (FailureBreakerOpen) until the
	// Cooldown passes and a half-open probe succeeds.
	Breaker crawler.BreakerConfig
	// MaxBodyBytes caps fetched response bodies; oversized bodies are
	// truncated and their records marked Partial. 0 = the fetcher's
	// 4 MiB default.
	MaxBodyBytes int64
	// CacheDir, when non-empty, roots a persistent content-addressed
	// resource archive (internal/diskcache) under the in-memory fetch
	// cache: every fetch outcome — responses and classified failures —
	// is written through, and a later run against the same directory
	// reads them back instead of refetching. Requires the cache enabled
	// (incompatible with DisableCache).
	CacheDir string
	// Offline switches the archive to strict replay: every fetch is
	// served from CacheDir, archived failures replay as their recorded
	// failure class, and a URL missing from the archive is an error
	// (classified unreachable) rather than a network fetch. Requires
	// CacheDir.
	Offline bool
	// Shard/Shards split the rank space across a fleet of crawler
	// processes: with Shards > 1 this process visits only ranks ≡ Shard
	// (mod Shards), and — when CacheDir is set — appends its archive
	// manifest lines to a per-shard manifest (manifest-<Shard>.jsonl)
	// so any number of processes can populate one shared archive
	// without interleaving writes. Each process streams its own
	// checkpoint JSONL with the usual resume semantics;
	// fleet.MergeDatasets and diskcache.MergeShards reconcile the
	// per-shard outputs into the dataset and archive a single-process
	// run would have produced. Shards <= 1 disables sharding.
	Shard, Shards int
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

// CrawlStats aggregates the observability counters of one run: what the
// fetch cache saved, what the parse cache saved, and what the crawler
// retried or resumed. Shard/Shards tag the counters with the rank
// partition that produced them (0/0 outside fleet mode), so the
// per-shard -stats-json files of a fleet crawl are self-describing.
type CrawlStats struct {
	Shard   int `json:"shard"`
	Shards  int `json:"shards"`
	Fetch   browser.CacheStats
	Parse   script.ParseStats
	Compile script.CompileStats
	DOM     html.ParseStats
	Static  static.CacheStats
	Crawl   crawler.Stats
	Breaker crawler.BreakerStats
}

// DefaultMeasurementOptions mirrors the paper's setup, scaled down.
func DefaultMeasurementOptions() MeasurementOptions {
	crawlCfg := crawler.DefaultConfig()
	crawlCfg.PerSiteTimeout = 500 * time.Millisecond
	return MeasurementOptions{
		Web:         synthweb.DefaultConfig(),
		Crawl:       crawlCfg,
		BrowserOpts: browser.DefaultOptions(),
		StallTime:   time.Second,
	}
}

// Measurement is a completed run.
type Measurement struct {
	Dataset  *store.Dataset
	Analysis *analysis.Analysis
	Stats    CrawlStats
	Elapsed  time.Duration
}

// Run executes the full pipeline.
func Run(ctx context.Context, opts MeasurementOptions) (*Measurement, error) {
	start := time.Now()
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}

	srv := synthweb.NewServer(opts.Web)
	if opts.StallTime > 0 {
		srv.StallTime = opts.StallTime
	}
	if err := srv.Start(); err != nil {
		return nil, fmt.Errorf("starting synthetic web: %w", err)
	}
	defer srv.Close()
	logf("synthetic web: %d sites on %s (seed %d)", opts.Web.NumSites, srv.Addr(), opts.Web.Seed)

	stack, err := newCrawlStack(srv, opts)
	if err != nil {
		return nil, err
	}
	defer stack.close()

	logf("crawling %d sites with %d workers...", len(stack.targets), opts.Crawl.Workers)
	ds := stack.crawler.Crawl(ctx, stack.targets)

	m := &Measurement{
		Dataset:  ds,
		Analysis: analysis.New(ds),
		Elapsed:  time.Since(start),
		Stats:    stack.stats(),
	}
	logf("crawl finished in %s: %v", m.Elapsed.Round(time.Millisecond), ds.FailureCounts())
	logf("%s", m.Stats.Summary())
	return m, nil
}

// crawlStack is the assembled fetch/browse/crawl pipeline over one
// synthetic-web server: HTTP fetcher → circuit breaker → shared cache →
// browser → crawler, with the observability counters of each layer.
type crawlStack struct {
	crawler *crawler.Crawler
	targets []crawler.Target

	shard, shards int

	cache        *browser.CachingFetcher
	breaker      *crawler.BreakerFetcher
	scriptCache  *script.ParseCache
	compileCache *script.CompileCache
	domCache     *html.ParseCache
	staticCache  *static.Cache
	archive      *diskcache.Archive
}

// archiveClass adapts crawler.Classify into the diskcache failure
// filter: crawl-local conditions — cancellation, an open circuit
// breaker — are artifacts of this run, not site properties, and must
// not be archived as if replay should reproduce them.
func archiveClass(err error) string {
	switch c := crawler.Classify(err); c {
	case store.FailureNone, store.FailureCanceled, store.FailureBreakerOpen:
		return ""
	default:
		return string(c)
	}
}

// newCrawlStack builds the pipeline the measurement options describe
// against an already-started server.
func newCrawlStack(srv *synthweb.Server, opts MeasurementOptions) (*crawlStack, error) {
	if opts.Offline && opts.CacheDir == "" {
		return nil, fmt.Errorf("core: Offline requires CacheDir")
	}
	if opts.CacheDir != "" && opts.DisableCache {
		return nil, fmt.Errorf("core: CacheDir requires the cache enabled (incompatible with DisableCache)")
	}
	if opts.Shards > 1 && (opts.Shard < 0 || opts.Shard >= opts.Shards) {
		return nil, fmt.Errorf("core: Shard %d out of range for %d shards", opts.Shard, opts.Shards)
	}
	if opts.Shards <= 1 && opts.Shard != 0 {
		return nil, fmt.Errorf("core: Shard %d set without Shards", opts.Shard)
	}
	st := &crawlStack{shard: opts.Shard, shards: opts.Shards}
	httpf := browser.NewHTTPFetcher(srv.Client(0))
	if opts.MaxBodyBytes > 0 {
		httpf.MaxBodyBytes = opts.MaxBodyBytes
	}
	var fetcher browser.Fetcher = httpf
	if opts.Breaker.Threshold > 0 {
		// The breaker sits directly above the network, below the cache:
		// cache hits never count toward a host's health, every real
		// attempt does.
		st.breaker = crawler.NewBreakerFetcher(fetcher, opts.Breaker)
		fetcher = st.breaker
		// Hand the breaker to the crawl scheduler so visits to open
		// circuits are deferred to the probe time, not short-circuited.
		opts.Crawl.Breaker = st.breaker.Breaker
	}
	siteHosts := make(map[string]bool, opts.Web.NumSites)
	for _, s := range srv.Sites() {
		st.targets = append(st.targets, crawler.Target{Rank: s.Rank, URL: s.URL()})
		siteHosts[s.Host] = true
	}
	// Fleet mode: this process covers only its rank partition. The host
	// bypass set stays the full population — shared widget/CDN hosts are
	// what the cache is for, whichever shard fetches them.
	st.targets = crawler.PartitionTargets(st.targets, opts.Shard, opts.Shards)
	if !opts.DisableCache {
		st.cache = browser.NewByteBoundedCachingFetcher(fetcher, opts.CacheEntries, opts.CacheBytes)
		// Per-site documents (landing and internal pages) are fetched
		// once each — bypass them so cache memory stays bounded by the
		// shared widget/CDN population.
		st.cache.Cacheable = func(rawURL string) bool {
			u, err := url.Parse(rawURL)
			if err != nil {
				return false
			}
			return !siteHosts[u.Hostname()]
		}
		if opts.CacheDir != "" {
			// The disk archive sits under the in-memory cache and, unlike
			// it, also covers bypassed per-site documents — offline replay
			// needs every resource, not just the shared ones. In fleet
			// mode each process appends to its own manifest shard, so N
			// processes can share the directory without interleaving.
			shardName := ""
			if opts.Shards > 1 {
				shardName = fmt.Sprint(opts.Shard)
			}
			ar, err := diskcache.Open(opts.CacheDir, diskcache.Options{
				Offline:  opts.Offline,
				Classify: archiveClass,
				Shard:    shardName,
			})
			if err != nil {
				return nil, fmt.Errorf("core: opening resource archive: %w", err)
			}
			st.archive = ar
			st.cache.Disk = ar
		}
		fetcher = st.cache
		st.scriptCache = script.NewBoundedParseCache(opts.CacheEntries)
		st.staticCache = static.NewCache(nil, opts.CacheEntries)
		opts.BrowserOpts.ScriptCache = st.scriptCache
		opts.BrowserOpts.StaticCache = st.staticCache
		if !opts.DisableCompile {
			// Layered over the parse cache: a compile miss parses through
			// it, so parse counters stay live under compilation.
			st.compileCache = script.NewBoundedCompileCache(opts.CacheEntries, st.scriptCache.Parse)
			opts.BrowserOpts.CompileCache = st.compileCache
		}
		if !opts.DisableDOMCache {
			// The DOM cache mirrors the script pipeline's layering on the
			// HTML side: one immutable parsed document per distinct body,
			// shared by every frame that embeds it.
			st.domCache = html.NewParseCache(opts.CacheEntries, opts.CacheBytes)
			opts.BrowserOpts.DocCache = st.domCache
		}
	}
	b := browser.New(fetcher, opts.BrowserOpts)
	st.crawler = crawler.New(b, opts.Crawl)
	return st, nil
}

// close releases resources the stack holds open (the archive's manifest
// append handle).
func (st *crawlStack) close() {
	if st.archive != nil {
		st.archive.Close()
	}
}

// stats collects every layer's counters.
func (st *crawlStack) stats() CrawlStats {
	s := CrawlStats{Shard: st.shard, Shards: st.shards, Crawl: st.crawler.Stats()}
	if st.cache != nil {
		s.Fetch = st.cache.Stats()
		s.Parse = st.scriptCache.Stats()
		s.Static = st.staticCache.Stats()
	}
	if st.compileCache != nil {
		s.Compile = st.compileCache.Stats()
	}
	if st.domCache != nil {
		s.DOM = st.domCache.Stats()
	}
	if st.breaker != nil {
		s.Breaker = st.breaker.Breaker.Stats()
	}
	return s
}

// Summary renders the counters as one log-friendly line.
func (s CrawlStats) Summary() string {
	line := fmt.Sprintf(
		"visited %d (resumed %d, retries %d, partial %d, panics %d); sched: %d requeued, %d deferred (%d breaker), max ready %d, max host in-flight %d; fetch cache: %d hits, %d misses, %d coalesced, %d bypassed, %d errors, %d evictions (%s), %d entries (%s, %d unique bodies, %s deduped); parse cache: %d hits, %d misses, %d coalesced, %d evictions, %d entries; static cache: %d hits, %d misses, %d evictions",
		s.Crawl.Visited, s.Crawl.Resumed, s.Crawl.Retries, s.Crawl.Partial, s.Crawl.Panics,
		s.Crawl.Requeued, s.Crawl.Deferred, s.Crawl.BreakerDeferred,
		s.Crawl.MaxReadyDepth, s.Crawl.MaxHostInFlight,
		s.Fetch.Hits, s.Fetch.Misses, s.Fetch.Coalesced, s.Fetch.Bypassed,
		s.Fetch.Errors, s.Fetch.Evictions, byteSize(s.Fetch.BytesEvicted),
		s.Fetch.Entries, byteSize(s.Fetch.CachedBytes), s.Fetch.UniqueBodies, byteSize(s.Fetch.DedupedBytes),
		s.Parse.Hits, s.Parse.Misses, s.Parse.Coalesced, s.Parse.Evictions, s.Parse.Entries,
		s.Static.Hits, s.Static.Misses, s.Static.Evictions)
	if s.Compile != (script.CompileStats{}) {
		line += fmt.Sprintf("; compile cache: %d hits, %d misses, %d coalesced, %d evictions, %d entries",
			s.Compile.Hits, s.Compile.Misses, s.Compile.Coalesced, s.Compile.Evictions, s.Compile.Entries)
	}
	if s.DOM != (html.ParseStats{}) {
		line += fmt.Sprintf("; dom cache: %d hits, %d misses, %d coalesced, %d evictions, %d entries (%s)",
			s.DOM.Hits, s.DOM.Misses, s.DOM.Coalesced, s.DOM.Evictions, s.DOM.Entries,
			byteSize(s.DOM.CachedBytes))
	}
	if s.Breaker != (crawler.BreakerStats{}) {
		line += fmt.Sprintf("; breaker: %d trips, %d half-open probes, %d closes, %d reopens, %d short-circuits, %d open hosts",
			s.Breaker.Trips, s.Breaker.HalfOpenProbes, s.Breaker.Closes, s.Breaker.Reopens,
			s.Breaker.ShortCircuits, s.Breaker.OpenHosts)
	}
	if s.Fetch.Disk != (browser.ArchiveStats{}) {
		line += fmt.Sprintf("; archive: %d disk hits, %d writes, %d corrupt recovered, %d orphans swept, %s stored, %d entries (%d objects), %d network fetches",
			s.Fetch.Disk.Hits, s.Fetch.Disk.Writes, s.Fetch.Disk.CorruptRecovered, s.Fetch.Disk.OrphansSwept,
			byteSize(s.Fetch.Disk.BytesStored), s.Fetch.Disk.Entries, s.Fetch.Disk.Objects,
			s.Fetch.NetworkFetches)
	}
	return line
}

// byteSize renders n bytes human-readably.
func byteSize(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Report renders the full paper-style report.
func (m *Measurement) Report() string { return m.Analysis.FullReport() }
