package core

import (
	"fmt"
	"sort"
	"strings"

	"permodyssey/internal/permissions"
	"permodyssey/internal/policy"
)

// GeneratorMode selects what the header generator emits (the predefined
// options of the paper's website tool, Appendix A.7).
type GeneratorMode uint8

const (
	// DisableAll turns every supported policy-controlled permission off
	// — the configuration no measured website achieved by hand (§4.3.1:
	// "none of the websites implement a directive for all supported
	// policy-controlled permissions").
	DisableAll GeneratorMode = iota
	// DisablePowerful turns off only powerful permissions — the tool's
	// "more common" predefined option.
	DisablePowerful
	// FromUsage keeps the permissions actually observed in use (self,
	// plus the origins they must be delegated to) and disables the rest.
	FromUsage
)

// GeneratorInput parameterizes header generation.
type GeneratorInput struct {
	Mode GeneratorMode
	// Browser/Version select the supported-permission list the header
	// covers; the tool regenerates as browsers change (§6.3).
	Browser permissions.Browser
	Version int
	// UsedPermissions are the permissions the site itself needs
	// (FromUsage mode).
	UsedPermissions []string
	// DelegatedTo maps permission → external origins that need it via
	// iframes; they are added alongside self, since url directives
	// lacking self are not allowed (W3C issue 480).
	DelegatedTo map[string][]string
}

// Generate produces a Permissions-Policy header value. The result
// always parses cleanly and lints clean.
func Generate(in GeneratorInput) (string, error) {
	if in.Version == 0 {
		in.Version = 127
	}
	supported := permissions.SupportedPermissions(in.Browser, in.Version)
	used := map[string]bool{}
	for _, u := range in.UsedPermissions {
		u = strings.ToLower(strings.TrimSpace(u))
		if u == "" {
			continue
		}
		if !permissions.Known(u) {
			return "", fmt.Errorf("generator: unknown permission %q", u)
		}
		used[u] = true
	}
	var p policy.Policy
	for _, name := range supported {
		perm, _ := permissions.Lookup(name)
		if !perm.PolicyControlled() {
			continue
		}
		var al policy.Allowlist
		switch in.Mode {
		case DisableAll:
			// empty allowlist
		case DisablePowerful:
			if !perm.Powerful {
				continue // leave non-powerful permissions at their default
			}
		case FromUsage:
			if used[name] {
				al.Self = true
				origins := append([]string{}, in.DelegatedTo[name]...)
				sort.Strings(origins)
				al.Origins = origins
			}
		}
		p.Directives = append(p.Directives, policy.Directive{Feature: name, Allowlist: al})
	}
	value := p.HeaderValue()
	if _, issues, err := policy.ParsePermissionsPolicy(value); err != nil {
		return "", fmt.Errorf("generator: produced invalid header: %w", err)
	} else if policy.HasBlockingIssue(issues) {
		return "", fmt.Errorf("generator: produced blocked header: %v", issues)
	}
	return value, nil
}

// GenerateReportOnly produces a Permissions-Policy-Report-Only header
// for the same input, with every directive reporting to the named
// Reporting-Endpoints group — the observe-before-enforce deployment
// path. The result is validated against the report-only parser.
func GenerateReportOnly(in GeneratorInput, endpoint string) (string, error) {
	if endpoint == "" {
		endpoint = "default"
	}
	header, err := Generate(in)
	if err != nil {
		return "", err
	}
	value := strings.ReplaceAll(header, ", ", ";report-to="+endpoint+", ") +
		";report-to=" + endpoint
	if _, eps, _, err := policy.ParseReportOnly(value); err != nil {
		return "", fmt.Errorf("generator: produced invalid report-only header: %w", err)
	} else if len(eps) == 0 {
		return "", fmt.Errorf("generator: report-to parameters were lost")
	}
	return value, nil
}

// GenerateAllowAttr produces the minimal allow attribute delegating
// exactly the given permissions to the iframe's own src origin (never
// the wildcard, per the §5.3 recommendation).
func GenerateAllowAttr(perms []string) (string, error) {
	var p policy.Policy
	seen := map[string]bool{}
	sorted := append([]string{}, perms...)
	sort.Strings(sorted)
	for _, name := range sorted {
		name = strings.ToLower(strings.TrimSpace(name))
		if name == "" || seen[name] {
			continue
		}
		perm, ok := permissions.Lookup(name)
		if !ok {
			return "", fmt.Errorf("generator: unknown permission %q", name)
		}
		if !perm.PolicyControlled() {
			return "", fmt.Errorf("generator: %q is not policy-controlled and cannot be delegated", name)
		}
		seen[name] = true
		p.Directives = append(p.Directives, policy.Directive{
			Feature:   name,
			Allowlist: policy.Allowlist{Src: true},
		})
	}
	return p.AllowAttrValue(), nil
}
