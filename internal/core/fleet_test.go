package core

import (
	"bytes"
	"context"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"permodyssey/internal/analysis"
	"permodyssey/internal/diskcache"
	"permodyssey/internal/fleet"
	"permodyssey/internal/store"
	"permodyssey/internal/synthweb"
)

// fleetOptions is the deterministic-chaos configuration shared by the
// fleet tests: the same fault set TestChaosResumeEquivalence pins —
// every fault whose statefulness could plausibly diverge between
// processes, none of the timing-raced ones.
func fleetOptions(sites int) MeasurementOptions {
	opts := chaosSoakOptions(sites)
	opts.Web.TimeoutRate = 0
	opts.Web.Chaos.Kinds = []synthweb.Fault{
		synthweb.FaultReset, synthweb.FaultMalformedHeader, synthweb.FaultOversizedHeader,
		synthweb.FaultRedirectLoop, synthweb.FaultFlap, synthweb.FaultOversizedBody,
	}
	opts.Crawl.PerSiteTimeout = 5 * time.Second
	return opts
}

// runShard crawls one rank partition against its own fresh server —
// the in-process equivalent of one fleet worker process — and returns
// its dataset.
func runShard(t *testing.T, opts MeasurementOptions, shard, shards int) *store.Dataset {
	t.Helper()
	srv := synthweb.NewServer(opts.Web)
	srv.StallTime = opts.StallTime
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	o := opts
	o.Shard, o.Shards = shard, shards
	stack, err := newCrawlStack(srv, o)
	if err != nil {
		t.Fatal(err)
	}
	defer stack.close()
	return stack.crawler.Crawl(context.Background(), stack.targets)
}

// TestFleetMergeEquivalence is the in-process version of the CI fleet
// soak: four shard crawls — each a fresh server and stack, running
// concurrently into one shared archive directory — merged back into a
// dataset that must match a single-process crawl of the same seed
// record for record, and an analysis report that must match byte for
// byte. Then the archive's manifest shards are compacted and the merge
// is checked for data loss.
func TestFleetMergeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const sites = 160
	const shards = 4
	opts := fleetOptions(sites)
	cacheDir := t.TempDir()

	// Baseline: one process, no sharding, no archive.
	single := runShard(t, opts, 0, 0)

	// Fleet: every shard concurrently, all writing through to the same
	// archive directory via their per-shard manifests.
	fleetOpts := opts
	fleetOpts.CacheDir = cacheDir
	parts := make([]*store.Dataset, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parts[i] = runShard(t, fleetOpts, i, shards)
		}(i)
	}
	wg.Wait()

	merged, rep := fleet.MergeDatasets(parts...)
	t.Logf("%s", rep)
	if rep.Records != sites {
		t.Fatalf("merged %d records, want %d (data loss in merge)", rep.Records, sites)
	}
	if rep.Duplicates != 0 {
		t.Errorf("disjoint rank partitions produced %d duplicates", rep.Duplicates)
	}

	// Record-level equivalence, modulo wall-clock noise.
	if len(merged.Records) != len(single.Records) {
		t.Fatalf("merged records %d != single-process %d", len(merged.Records), len(single.Records))
	}
	for i := range single.Records {
		a, b := normalizeChaosRecord(t, single.Records[i]), normalizeChaosRecord(t, merged.Records[i])
		if a != b {
			t.Errorf("rank %d differs between single and fleet run:\n single: %s\n fleet:  %s",
				single.Records[i].Rank, a, b)
		}
	}

	// Report-level equivalence: the analysis JSON — the artifact the CI
	// gate diffs — must be byte-identical.
	singleJSON, err := analysis.New(single).JSON(10)
	if err != nil {
		t.Fatal(err)
	}
	mergedJSON, err := analysis.New(merged).JSON(10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(singleJSON, mergedJSON) {
		t.Errorf("analysis reports diverge between single-process and merged fleet run")
	}

	// Archive merge: all four manifest shards compact into one manifest
	// with every object present — the data-loss gate.
	stats, err := diskcache.MergeShards(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("archive merge: %+v", stats)
	if stats.Shards != shards {
		t.Errorf("merged %d manifest shards, want %d", stats.Shards, shards)
	}
	if stats.MissingObjects != 0 {
		t.Errorf("%d manifest entries lost their objects in the merge", stats.MissingObjects)
	}
	if stats.URLs == 0 {
		t.Error("merged archive is empty")
	}
	entries, err := os.ReadDir(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "manifest-") {
			t.Errorf("shard manifest %s survived the merge", e.Name())
		}
	}

	// The compacted archive must be servable: reopen offline and read.
	ar, err := diskcache.Open(cacheDir, diskcache.Options{Offline: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ar.Close()
	if got := int(ar.Stats().Entries); got != stats.URLs {
		t.Errorf("reopened archive has %d entries, want %d", got, stats.URLs)
	}
}

// TestShardOptionValidation: the fleet options are rejected before any
// work happens when they cannot describe a valid partition.
func TestShardOptionValidation(t *testing.T) {
	opts := DefaultMeasurementOptions()
	opts.Web.NumSites = 2
	srv := synthweb.NewServer(opts.Web)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cases := []struct {
		name          string
		shard, shards int
		wantErr       bool
	}{
		{"no sharding", 0, 0, false},
		{"single shard", 0, 1, false},
		{"valid partition", 2, 4, false},
		{"shard == shards", 4, 4, true},
		{"negative shard", -1, 4, true},
		{"shard without shards", 2, 0, true},
	}
	for _, tc := range cases {
		o := opts
		o.Shard, o.Shards = tc.shard, tc.shards
		stack, err := newCrawlStack(srv, o)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr %v", tc.name, err, tc.wantErr)
		}
		if stack != nil {
			stack.close()
		}
	}
}

// TestFleetStatsTagged: the per-shard stats carry their partition so a
// directory of -stats-json files is self-describing.
func TestFleetStatsTagged(t *testing.T) {
	opts := DefaultMeasurementOptions()
	opts.Web.NumSites = 8
	srv := synthweb.NewServer(opts.Web)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	o := opts
	o.Shard, o.Shards = 1, 2
	stack, err := newCrawlStack(srv, o)
	if err != nil {
		t.Fatal(err)
	}
	defer stack.close()
	s := stack.stats()
	if s.Shard != 1 || s.Shards != 2 {
		t.Errorf("stats tagged %d/%d, want 1/2", s.Shard, s.Shards)
	}
}
