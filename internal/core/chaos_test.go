package core

import (
	"context"
	"encoding/json"
	"os"
	"regexp"
	"strconv"
	"testing"
	"time"

	"permodyssey/internal/crawler"
	"permodyssey/internal/store"
	"permodyssey/internal/synthweb"
)

// chaosSoakOptions is the shared configuration of the soak tests: every
// fault kind enabled at an aggressive rate over a population large
// enough that each kind appears, with retries and the breaker on.
func chaosSoakOptions(sites int) MeasurementOptions {
	opts := DefaultMeasurementOptions()
	opts.Web.NumSites = sites
	opts.Web.Seed = 11
	opts.Web.Chaos = synthweb.ChaosConfig{
		Enabled:         true,
		SiteRate:        0.25,
		SubresourceRate: 0.15,
		FlapFailures:    2,
		DripDelay:       30 * time.Millisecond,
		OversizeBytes:   512 << 10,
	}
	opts.Crawl.Workers = 24
	opts.Crawl.PerSiteTimeout = 300 * time.Millisecond
	opts.Crawl.MaxRetries = 3
	opts.Crawl.RetryBackoff = 30 * time.Millisecond
	opts.Crawl.HostConcurrency = 4
	opts.Crawl.DeferBreakerOpen = true
	opts.StallTime = 600 * time.Millisecond
	// Threshold low enough that a flapping host's own failures trip its
	// circuit before the flap recovers. The cooldown deliberately
	// exceeds the retry backoffs (30–120ms) by a wide margin: retries of
	// freshly-tripped hosts come up while their circuits are still open,
	// so the scheduler must defer them to the probe time — the soak
	// asserts it did. (Without DeferBreakerOpen a cooldown this long
	// would burn those retries as breaker-open records.)
	opts.Breaker = crawler.BreakerConfig{Threshold: 2, Cooldown: 500 * time.Millisecond}
	opts.MaxBodyBytes = 128 << 10
	opts.CacheEntries = 512
	return opts
}

// soakSites returns the soak population size (PERMODYSSEY_SOAK_SITES
// overrides the 600 default; the chaos contract is exercised from 500
// up).
func soakSites(t *testing.T) int {
	if s := os.Getenv("PERMODYSSEY_SOAK_SITES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 500 {
			t.Fatalf("PERMODYSSEY_SOAK_SITES=%q: want an integer >= 500", s)
		}
		return n
	}
	return 600
}

// TestChaosSoak crawls a fault-saturated population end to end and
// checks the robustness contract: no panic escapes, every site yields
// exactly one record, the outcome buckets partition the dataset, retry
// accounting reconciles between records, crawler stats, and the
// analysis table, and the circuit breaker demonstrably tripped and
// half-open-probed its way back.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	sites := soakSites(t)
	opts := chaosSoakOptions(sites)
	m, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ds, stats := m.Dataset, m.Stats

	// One record per site, no losses, no panics.
	if len(ds.Records) != sites {
		t.Fatalf("records: %d, want %d", len(ds.Records), sites)
	}
	if stats.Crawl.Panics != 0 {
		t.Errorf("crawl panicked %d times", stats.Crawl.Panics)
	}
	if stats.Crawl.Visited != sites {
		t.Errorf("visited %d, want %d", stats.Crawl.Visited, sites)
	}

	// The outcome buckets partition the dataset: ok + partial + every
	// failure class sums to the record count.
	counts := ds.FailureCounts()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != len(ds.Records) {
		t.Errorf("FailureCounts sum to %d of %d records: %v", total, len(ds.Records), counts)
	}
	t.Logf("outcomes: %v", counts)
	if counts["ok"] == 0 || counts["partial"] == 0 {
		t.Errorf("want both clean and partial successes, got %v", counts)
	}
	// Faults must actually hurt: ephemeral (resets), timeout
	// (slow-loris), and minor (malformed/oversized headers, redirect
	// loops) all appear even after retries.
	for _, class := range []store.FailureClass{store.FailureEphemeral, store.FailureTimeout, store.FailureMinor} {
		if counts[class] == 0 {
			t.Errorf("failure class %q never survived retries; chaos too gentle: %v", class, counts)
		}
	}

	// Retry accounting reconciles: per-record Retries sum to the
	// crawler's counter, and the analysis table sums to both.
	recRetries := 0
	for _, r := range ds.Records {
		if r.Retries > 0 && r.FirstAttemptFailure == store.FailureNone {
			t.Errorf("rank %d: %d retries but no FirstAttemptFailure", r.Rank, r.Retries)
		}
		if r.Retries == 0 && r.FirstAttemptFailure != store.FailureNone {
			t.Errorf("rank %d: FirstAttemptFailure %q without retries", r.Rank, r.FirstAttemptFailure)
		}
		recRetries += r.Retries
	}
	if recRetries != stats.Crawl.Retries {
		t.Errorf("record retries %d != crawler retries %d", recRetries, stats.Crawl.Retries)
	}
	rt := m.Analysis.RetryOutcomes()
	if rt.TotalRetries != stats.Crawl.Retries {
		t.Errorf("retry table total %d != crawler retries %d", rt.TotalRetries, stats.Crawl.Retries)
	}
	rowSites, rowRetries := 0, 0
	for _, row := range rt.Rows {
		rowSites += row.Sites
		rowRetries += row.RetriesSpent
		if row.Recovered+row.Stuck != row.Sites {
			t.Errorf("retry row %q: recovered %d + stuck %d != sites %d",
				row.FirstFailure, row.Recovered, row.Stuck, row.Sites)
		}
	}
	if rowSites != rt.RetriedSites || rowRetries != rt.TotalRetries {
		t.Errorf("retry rows sum to %d sites / %d retries, want %d / %d",
			rowSites, rowRetries, rt.RetriedSites, rt.TotalRetries)
	}
	if rt.RetriedSites == 0 || rt.Recovered == 0 {
		t.Errorf("want retried and recovered sites under chaos, got %+v", rt)
	}
	// Recovered-fraction floor: retries must actually heal faults, not
	// just spin. Most injected faults are permanent by design (a reset
	// host resets on the retry too) — only flapping hosts and timing
	// faults recover, which lands the fraction near 18-20% per seed. The
	// default floor is looser; CI pins a tighter one via
	// PERMODYSSEY_RECOVERED_FLOOR.
	floor := 0.10
	if s := os.Getenv("PERMODYSSEY_RECOVERED_FLOOR"); s != "" {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil || f < 0 || f > 1 {
			t.Fatalf("PERMODYSSEY_RECOVERED_FLOOR=%q: want a fraction in [0,1]", s)
		}
		floor = f
	}
	if frac := float64(rt.Recovered) / float64(rt.RetriedSites); frac < floor {
		t.Errorf("recovered %d of %d retried sites (%.0f%%), below the %.0f%% floor",
			rt.Recovered, rt.RetriedSites, 100*frac, 100*floor)
	}
	t.Logf("retries: %d sites retried, %d recovered (%.0f%%), %d attempts",
		rt.RetriedSites, rt.Recovered, 100*float64(rt.Recovered)/float64(rt.RetriedSites), rt.TotalRetries)

	// The breaker must have tripped on a flapping or dead host and
	// half-open-probed afterwards.
	if stats.Breaker.Trips == 0 {
		t.Errorf("breaker never tripped: %+v", stats.Breaker)
	}
	if stats.Breaker.HalfOpenProbes == 0 {
		t.Errorf("breaker never half-open probed: %+v", stats.Breaker)
	}
	t.Logf("breaker: %+v", stats.Breaker)

	// Scheduler accounting: every retry is a non-blocking requeue, the
	// deferral heap saw every requeue plus every breaker deferral, and —
	// with the cooldown exceeding the early backoffs — retries against
	// tripped circuits were deferred to the probe time instead of burned
	// as breaker-open dispatches.
	if stats.Crawl.Requeued != stats.Crawl.Retries {
		t.Errorf("requeued %d != retries %d: a retry blocked a worker", stats.Crawl.Requeued, stats.Crawl.Retries)
	}
	if stats.Crawl.Deferred != stats.Crawl.Requeued+stats.Crawl.BreakerDeferred {
		t.Errorf("deferred %d != requeued %d + breaker-deferred %d",
			stats.Crawl.Deferred, stats.Crawl.Requeued, stats.Crawl.BreakerDeferred)
	}
	if stats.Crawl.BreakerDeferred == 0 {
		t.Errorf("no breaker deferrals despite cooldown > backoff: %+v", stats.Crawl)
	}
	if cap := opts.Crawl.HostConcurrency; stats.Crawl.MaxHostInFlight > cap {
		t.Errorf("max host in-flight %d exceeds cap %d", stats.Crawl.MaxHostInFlight, cap)
	}
	t.Logf("sched: %d requeued, %d deferred (%d breaker), max ready %d, max host in-flight %d",
		stats.Crawl.Requeued, stats.Crawl.Deferred, stats.Crawl.BreakerDeferred,
		stats.Crawl.MaxReadyDepth, stats.Crawl.MaxHostInFlight)

	// Partial records carry their reasons; clean ones carry none.
	for _, r := range ds.Records {
		if r.Partial != (len(r.DegradedReasons) > 0) {
			t.Errorf("rank %d: Partial=%v with reasons %v", r.Rank, r.Partial, r.DegradedReasons)
		}
	}
}

// TestChaosResumeEquivalence: interrupting a chaotic crawl and resuming
// it converges to the same dataset as one uninterrupted run — fault
// injection is deterministic per (seed, rank) and subresource faults
// are stateless, so record contents cannot depend on visit scheduling.
// The timing-driven outcomes (slow-loris, stall-class timeouts) are
// excluded: their *classification* is stable, but they would make the
// comparison race the scheduler; the deterministic faults — resets,
// malformed and oversized headers, redirect loops, flapping hosts,
// oversized bodies — are the ones whose statefulness could plausibly
// break resume, and they are all on.
func TestChaosResumeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const sites = 150
	opts := chaosSoakOptions(sites)
	opts.Web.NumSites = sites
	opts.Web.TimeoutRate = 0
	opts.Web.Chaos.Kinds = []synthweb.Fault{
		synthweb.FaultReset, synthweb.FaultMalformedHeader, synthweb.FaultOversizedHeader,
		synthweb.FaultRedirectLoop, synthweb.FaultFlap, synthweb.FaultOversizedBody,
	}
	opts.Crawl.PerSiteTimeout = 5 * time.Second

	// Each run gets a fresh server (flap counters restart at zero, like
	// a crawler process restarting against the live web) and a fresh
	// stack (caches and breaker state are per-process too).
	run := func(resume *store.Dataset, only int) *store.Dataset {
		srv := synthweb.NewServer(opts.Web)
		srv.StallTime = opts.StallTime
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		o := opts
		o.Crawl.Resume = resume
		stack, err := newCrawlStack(srv, o)
		if err != nil {
			t.Fatal(err)
		}
		defer stack.close()
		return stack.crawler.Crawl(context.Background(), stack.targets[:only])
	}

	full := run(nil, sites)
	firstHalf := run(nil, sites/2)
	resumed := run(firstHalf, sites)

	if len(resumed.Records) != len(full.Records) {
		t.Fatalf("resumed records %d != full %d", len(resumed.Records), len(full.Records))
	}
	for i := range full.Records {
		a, b := normalizeChaosRecord(t, full.Records[i]), normalizeChaosRecord(t, resumed.Records[i])
		if a != b {
			t.Errorf("rank %d differs between full and resumed run:\n full:    %s\n resumed: %s",
				full.Records[i].Rank, a, b)
		}
	}
}

// addrPattern matches the ephemeral host:port pairs net errors embed
// ("read tcp 127.0.0.1:35194->127.0.0.1:38063: ..."): connection
// noise, different on every run.
var addrPattern = regexp.MustCompile(`127\.0\.0\.1:\d+`)

// normalizeChaosRecord strips wall-clock noise (Elapsed, the ephemeral
// ports inside net error strings) and serializes the rest for
// comparison. Failure class, error taxonomy, page content, retry
// counts, partial markers, and degraded reasons must all be
// schedule-independent.
func normalizeChaosRecord(t *testing.T, r store.SiteRecord) string {
	t.Helper()
	r.Elapsed = 0
	r.Error = addrPattern.ReplaceAllString(r.Error, "127.0.0.1:0")
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
