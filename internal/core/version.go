package core

// ToolVersion identifies this build of the measurement pipeline in
// provenance records — sealed crawl bundles (internal/bundle) embed it
// next to the dataset schema version so a replayed analysis knows
// which pipeline produced the evidence it is re-reading. Bump on any
// change that can alter crawl or analysis output.
const ToolVersion = "0.8.0"
