package core

import (
	"fmt"
	"strings"

	"permodyssey/internal/origin"
	"permodyssey/internal/policy"
)

// SpecIssueResult is one row of the Table 11 reproduction: what a given
// SpecMode yields for the local-scheme delegation chain.
type SpecIssueResult struct {
	Mode policy.SpecMode
	// LocalHasCamera: the local-scheme document can access/prompt.
	LocalHasCamera bool
	// ThirdPartyHasCamera: the external document reached through the
	// local-scheme document's delegation can access/prompt.
	ThirdPartyHasCamera bool
}

// ProbeSpecIssue reproduces the §6.2 PoC against the policy engine:
// example.org declares camera=(self); a local-scheme iframe (allow=
// "camera") embeds third-party.com with allow="camera". Under the
// specification as written the third party gains camera; under the
// expected behaviour it does not.
func ProbeSpecIssue(topOrigin, thirdParty string, mode policy.SpecMode) (SpecIssueResult, error) {
	topO, err := origin.Parse(topOrigin)
	if err != nil {
		return SpecIssueResult{}, fmt.Errorf("spec issue probe: %w", err)
	}
	attacker, err := origin.Parse(thirdParty)
	if err != nil {
		return SpecIssueResult{}, fmt.Errorf("spec issue probe: %w", err)
	}
	header, _, err := policy.ParsePermissionsPolicy("camera=(self)")
	if err != nil {
		return SpecIssueResult{}, err
	}
	allowCamera, _ := policy.ParseAllowAttr("camera")

	top := policy.NewTopLevel(topO, header)
	local := policy.NewSubframe(top, policy.FrameSpec{
		LocalScheme: true,
		Allow:       allowCamera,
	}, mode)
	third := policy.NewSubframe(local, policy.FrameSpec{
		SrcOrigin:      attacker,
		DocumentOrigin: attacker,
		Allow:          allowCamera,
	}, mode)
	return SpecIssueResult{
		Mode:                mode,
		LocalHasCamera:      local.Allowed("camera"),
		ThirdPartyHasCamera: third.Allowed("camera"),
	}, nil
}

// RenderSpecIssue renders the Table 11 comparison for both modes.
func RenderSpecIssue(topOrigin, thirdParty string) (string, error) {
	var b strings.Builder
	b.WriteString("Table 11: Permissions-Policy inheritance for local schemes (W3C issue 552)\n")
	fmt.Fprintf(&b, "%s: camera=(self) → local-scheme iframe (allow=\"camera\") → %s (allow=\"camera\")\n\n",
		topOrigin, thirdParty)
	fmt.Fprintf(&b, "%-22s  %-28s  %s\n", "Behaviour", "Local-scheme doc camera", "Third-party camera")
	for _, mode := range []policy.SpecMode{policy.SpecExpected, policy.SpecActual} {
		res, err := ProbeSpecIssue(topOrigin, thirdParty, mode)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-22s  %-28s  %s\n", mode, mark(res.LocalHasCamera), mark(res.ThirdPartyHasCamera))
	}
	b.WriteString("\nThe 'actual-specification' row is the bypass: the local-scheme document\n")
	b.WriteString("does not inherit the parent's declared policy, so its delegation escapes\n")
	b.WriteString("camera=(self). Mitigation: a CSP frame-src directive that blocks local\n")
	b.WriteString("schemes prevents injecting the intermediate frame (§6.2).\n")
	return b.String(), nil
}

func mark(allowed bool) string {
	if allowed {
		return "ALLOWED ✓"
	}
	return "blocked ✗"
}
