package core

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"permodyssey/internal/store"
)

// archiveOptions is a small population whose failure classes are all
// timing-free (no stall-based timeouts), so a warm crawl and its
// offline replay are deterministic enough to compare byte for byte.
func archiveOptions(t *testing.T, sites int) MeasurementOptions {
	t.Helper()
	opts := DefaultMeasurementOptions()
	opts.Web.NumSites = sites
	opts.Web.Seed = 11
	opts.Web.TimeoutRate = 0
	opts.Crawl.Workers = 16
	opts.Crawl.PerSiteTimeout = 5 * time.Second
	opts.Crawl.MaxRetries = 1
	opts.Crawl.RetryBackoff = time.Millisecond
	opts.CacheDir = t.TempDir()
	return opts
}

// TestOfflineReplayEquivalence is the acceptance test for the archive:
// a warm crawl with -cache-dir followed by an offline re-crawl of the
// same population produces an identical analysis report — failure
// classes and retry counts included, because failures are archived and
// replayed too — with zero fetches reaching the inner fetcher.
func TestOfflineReplayEquivalence(t *testing.T) {
	opts := archiveOptions(t, 250)

	warm, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ws := warm.Stats.Fetch
	if ws.Disk.Writes == 0 || ws.Disk.BytesStored == 0 {
		t.Fatalf("warm crawl archived nothing: %+v", ws.Disk)
	}
	if ws.NetworkFetches == 0 {
		t.Fatalf("warm crawl made no network fetches: %+v", ws)
	}

	opts.Offline = true
	replay, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	rs := replay.Stats.Fetch
	if rs.NetworkFetches != 0 {
		t.Errorf("offline replay made %d network fetches, want 0", rs.NetworkFetches)
	}
	if rs.Disk.Hits == 0 {
		t.Errorf("offline replay had no disk hits: %+v", rs.Disk)
	}
	if rs.Disk.Writes != 0 {
		t.Errorf("offline replay wrote %d archive entries, want 0", rs.Disk.Writes)
	}

	warmJSON, err := warm.Analysis.JSON(10)
	if err != nil {
		t.Fatal(err)
	}
	replayJSON, err := replay.Analysis.JSON(10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(warmJSON, replayJSON) {
		t.Errorf("analysis reports differ between warm crawl and offline replay:\nwarm failures:   %v\nreplay failures: %v",
			warm.Dataset.FailureCounts(), replay.Dataset.FailureCounts())
	}
}

// TestOfflineEmptyArchive: replaying against an archive that never saw
// a crawl turns every site into a distinguishable unreachable failure
// instead of silently fetching from the network.
func TestOfflineEmptyArchive(t *testing.T) {
	opts := archiveOptions(t, 30)
	opts.Offline = true

	m, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Stats.Fetch.NetworkFetches; got != 0 {
		t.Errorf("empty-archive replay made %d network fetches, want 0", got)
	}
	for _, r := range m.Dataset.Records {
		if r.Failure != store.FailureUnreachable {
			t.Errorf("rank %d: failure = %q, want %q (archive miss)", r.Rank, r.Failure, store.FailureUnreachable)
		}
	}
}

// TestCorruptArchiveDegrades: flip a byte in archived objects, re-run
// the warm crawl against the damaged archive, and the measurement is
// unchanged — corruption costs re-fetches, never correctness.
func TestCorruptArchiveDegrades(t *testing.T) {
	opts := archiveOptions(t, 120)

	first, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	firstJSON, err := first.Analysis.JSON(10)
	if err != nil {
		t.Fatal(err)
	}

	corrupted := 0
	err = filepath.Walk(filepath.Join(opts.CacheDir, "objects"), func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() || corrupted >= 5 {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil || len(raw) == 0 {
			return err
		}
		raw[len(raw)/2] ^= 0xFF
		corrupted++
		return os.WriteFile(path, raw, 0o644)
	})
	if err != nil || corrupted == 0 {
		t.Fatalf("corrupting archive: %v (corrupted %d)", err, corrupted)
	}

	second, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := second.Stats.Fetch.Disk.CorruptRecovered; got < uint64(corrupted) {
		t.Errorf("corrupt recoveries = %d, want >= %d", got, corrupted)
	}
	secondJSON, err := second.Analysis.JSON(10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(firstJSON, secondJSON) {
		t.Errorf("corruption changed the measurement:\nfirst failures:  %v\nsecond failures: %v",
			first.Dataset.FailureCounts(), second.Dataset.FailureCounts())
	}
}

// TestArchiveOptionValidation: the option combinations that cannot
// work fail loudly instead of silently dropping the archive.
func TestArchiveOptionValidation(t *testing.T) {
	opts := DefaultMeasurementOptions()
	opts.Web.NumSites = 5
	opts.Offline = true
	if _, err := Run(context.Background(), opts); err == nil {
		t.Error("Offline without CacheDir should fail")
	}

	opts = DefaultMeasurementOptions()
	opts.Web.NumSites = 5
	opts.CacheDir = t.TempDir()
	opts.DisableCache = true
	if _, err := Run(context.Background(), opts); err == nil {
		t.Error("CacheDir with DisableCache should fail")
	}
}
