package core

import (
	"fmt"
	"strings"

	"permodyssey/internal/permissions"
)

// SupportTable renders the caniuse-style permission support matrix of
// Appendix A.6: for every registered permission, whether each engine
// supports its API and honors it in policies, plus the
// policy-controlled / powerful classification and default allowlist.
func SupportTable(versions map[permissions.Browser]int) string {
	if versions == nil {
		versions = map[permissions.Browser]int{
			permissions.Chromium: 127,
			permissions.Firefox:  128,
			permissions.Safari:   17,
		}
	}
	var b strings.Builder
	b.WriteString("Permission support across browsers (API/policy)\n")
	fmt.Fprintf(&b, "%-30s %-8s %-9s %-8s", "Permission", "Default", "Powerful", "Policy")
	for _, br := range permissions.Browsers {
		fmt.Fprintf(&b, " %-14s", fmt.Sprintf("%s %d", br, versions[br]))
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 100))
	b.WriteString("\n")
	for _, p := range permissions.All() {
		fmt.Fprintf(&b, "%-30s %-8s %-9s %-8s",
			p.Name, p.Default, yn(p.Powerful), yn(p.PolicyControlled()))
		for _, br := range permissions.Browsers {
			s, ok := permissions.SupportFor(p.Name, br)
			cell := "-/-"
			if ok {
				cell = fmt.Sprintf("%s/%s",
					yn(s.Supported(versions[br])), yn(s.PolicySupported(versions[br])))
			}
			fmt.Fprintf(&b, " %-14s", cell)
		}
		b.WriteString("\n")
	}
	b.WriteString("\nHeader enforcement: ")
	for i, br := range permissions.Browsers {
		h := permissions.Headers[br]
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s PP=%s FP=%s allow=%s", br,
			yn(h.PermissionsPolicy), yn(h.FeaturePolicy), yn(h.AllowAttribute))
	}
	b.WriteString("\n")
	return b.String()
}

// SupportChanges renders the historical change tracker for one engine.
func SupportChanges(b permissions.Browser, from, to int) string {
	changes := permissions.ChangesBetween(b, from, to)
	if len(changes) == 0 {
		return fmt.Sprintf("no support changes in %s (%d, %d]\n", b, from, to)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "support changes in %s (%d, %d]:\n", b, from, to)
	for _, c := range changes {
		fmt.Fprintf(&sb, "  %s\n", c)
	}
	return sb.String()
}

func yn(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}
