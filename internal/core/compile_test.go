package core

import (
	"context"
	"testing"
	"time"

	"permodyssey/internal/analysis"
	"permodyssey/internal/synthweb"
)

// TestCrawlCompileEquivalence proves the compile-once script path is
// observationally transparent through the full measurement stack, under
// a chaos-seeded population: the compiled and tree-walking crawls must
// produce byte-identical records (after wall-clock normalization) and
// byte-identical analysis reports.
func TestCrawlCompileEquivalence(t *testing.T) {
	const sites = 120
	opts := chaosSoakOptions(sites)
	// Timing-dependent failure classes (slow-loris, stalls) would make
	// the success set schedule-dependent; equivalence is about content.
	opts.Web.TimeoutRate = 0
	opts.Web.Chaos.Kinds = []synthweb.Fault{
		synthweb.FaultReset, synthweb.FaultMalformedHeader, synthweb.FaultOversizedHeader,
		synthweb.FaultRedirectLoop, synthweb.FaultFlap, synthweb.FaultOversizedBody,
	}
	opts.Crawl.PerSiteTimeout = 5 * time.Second

	run := func(disableCompile bool) ([]string, string, CrawlStats) {
		srv := synthweb.NewServer(opts.Web)
		srv.StallTime = opts.StallTime
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		o := opts
		o.DisableCompile = disableCompile
		stack, err := newCrawlStack(srv, o)
		if err != nil {
			t.Fatal(err)
		}
		defer stack.close()
		ds := stack.crawler.Crawl(context.Background(), stack.targets)
		if len(ds.Records) != sites {
			t.Fatalf("records: %d", len(ds.Records))
		}
		m := &Measurement{Dataset: ds, Analysis: analysis.New(ds), Stats: stack.stats()}
		recs := make([]string, 0, len(ds.Records))
		for _, rec := range ds.Records {
			recs = append(recs, normalizeChaosRecord(t, rec))
		}
		return recs, m.Report(), m.Stats
	}

	treeRecs, treeReport, treeStats := run(true)
	compRecs, compReport, compStats := run(false)

	for i := range treeRecs {
		if treeRecs[i] != compRecs[i] {
			t.Errorf("record %d differs with compilation on:\ntree:     %s\ncompiled: %s",
				i, treeRecs[i], compRecs[i])
		}
	}
	if treeReport != compReport {
		t.Error("analysis reports differ between compiled and tree-walk crawls")
	}
	// The compiled run must actually have compiled — and shared: far
	// fewer compiles than executions (every site embeds shared widgets).
	if compStats.Compile.Misses == 0 {
		t.Fatal("compiled run never compiled a script")
	}
	if compStats.Compile.Hits == 0 {
		t.Error("compiled run never shared a compiled program across frames")
	}
	if treeStats.Compile.Misses != 0 || treeStats.Compile.Hits != 0 {
		t.Errorf("DisableCompile run still touched the compile cache: %+v", treeStats.Compile)
	}
	// The layered design keeps parse stats live under compilation.
	if compStats.Parse.Misses == 0 {
		t.Error("compile cache bypassed the parse cache")
	}
}
