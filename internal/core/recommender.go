package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"permodyssey/internal/browser"
	"permodyssey/internal/permissions"
	"permodyssey/internal/policy"
	"permodyssey/internal/static"
)

// Recommendation is the output of the §6.3 advisor tool: the
// least-privilege Permissions-Policy header for a site based on its
// observed behaviour, per-iframe allow suggestions, and findings where
// the deployed configuration is broader than the ideal one.
type Recommendation struct {
	// Header is the suggested Permissions-Policy value.
	Header string
	// UsedPermissions were observed in use by the site itself
	// (dynamically or statically).
	UsedPermissions []string
	// FrameAdvice is per-iframe delegation advice.
	FrameAdvice []FrameAdvice
	// Findings are places where the current configuration is broader
	// than the recommendation.
	Findings []string
	// HeaderIssues are linter findings on the deployed header.
	HeaderIssues []policy.Issue
}

// FrameAdvice describes the delegation of one embedded frame.
type FrameAdvice struct {
	FrameURL string
	// CurrentAllow is the deployed allow attribute.
	CurrentAllow string
	// SuggestedAllow delegates only the permissions the frame used.
	SuggestedAllow string
	// UnusedDelegations were granted but never exercised.
	UnusedDelegations []string
}

// Recommender drives a browser against a site (optionally with
// simulated interaction, like the tool's developer-click mode) and
// derives the recommendation.
type Recommender struct {
	Fetcher browser.Fetcher
	// Interact enables the interaction pass (the paper's tool lets the
	// developer click through the site).
	Interact bool
	// Mode selects the policy semantics (default: the actual spec).
	Mode policy.SpecMode
}

// Recommend visits the page and produces the advice.
func (r *Recommender) Recommend(ctx context.Context, pageURL string) (*Recommendation, error) {
	opts := browser.DefaultOptions()
	opts.Interact = r.Interact
	opts.Mode = r.Mode
	b := browser.New(r.Fetcher, opts)
	page, err := b.Visit(ctx, pageURL)
	if err != nil {
		return nil, fmt.Errorf("recommender: visiting %s: %w", pageURL, err)
	}
	return RecommendFromPage(page)
}

// RecommendFromPage derives the recommendation from an already-visited
// page (so the measurement dataset can be reused).
func RecommendFromPage(page *browser.PageResult) (*Recommendation, error) {
	top := page.TopFrame()
	if top == nil {
		return nil, fmt.Errorf("recommender: no top-level frame")
	}
	rec := &Recommendation{HeaderIssues: top.HeaderIssues}

	// Permissions the top-level document itself used.
	usedTop := map[string]bool{}
	for _, inv := range top.Invocations {
		for _, p := range inv.Permissions {
			if perm, ok := permissions.Lookup(p); ok && perm.PolicyControlled() {
				usedTop[p] = true
			}
		}
	}
	for _, p := range static.Permissions(top.StaticFindings) {
		if perm, ok := permissions.Lookup(p); ok && perm.PolicyControlled() {
			usedTop[p] = true
		}
	}

	// Per-frame usage and delegation advice; delegated-and-used
	// permissions must stay in the header allowlist for the frame's
	// origin (header restricting them would break the frame: Table 1
	// case 4 vs 7).
	delegatedTo := map[string][]string{}
	for _, f := range page.EmbeddedFrames() {
		if f.Depth != 1 {
			continue
		}
		frameUsed := map[string]bool{}
		for _, inv := range f.Invocations {
			for _, p := range inv.Permissions {
				if perm, ok := permissions.Lookup(p); ok && perm.PolicyControlled() {
					frameUsed[p] = true
				}
			}
		}
		for _, p := range static.Permissions(f.StaticFindings) {
			if perm, ok := permissions.Lookup(p); ok && perm.PolicyControlled() {
				frameUsed[p] = true
			}
		}
		if !f.Element.HasAllow && len(frameUsed) == 0 {
			continue
		}
		current, _ := policy.ParseAllowAttr(f.Element.Allow)
		var unused []string
		for _, d := range current.Directives {
			if !frameUsed[d.Feature] {
				unused = append(unused, d.Feature)
			}
		}
		sort.Strings(unused)
		var usedList []string
		for p := range frameUsed {
			usedList = append(usedList, p)
		}
		sort.Strings(usedList)
		suggested, err := GenerateAllowAttr(usedList)
		if err != nil {
			return nil, err
		}
		advice := FrameAdvice{
			FrameURL:          f.URL,
			CurrentAllow:      f.Element.Allow,
			SuggestedAllow:    suggested,
			UnusedDelegations: unused,
		}
		rec.FrameAdvice = append(rec.FrameAdvice, advice)
		if len(unused) > 0 {
			rec.Findings = append(rec.Findings, fmt.Sprintf(
				"frame %s is delegated %s without observed usage — drop them (supply-chain risk, §5)",
				f.URL, strings.Join(unused, ", ")))
		}
		for _, raw := range strings.Split(f.Element.Allow, ";") {
			feature, kind, ok := policy.ClassifyAllowDirective(raw)
			if ok && kind == policy.DelegationWildcard {
				rec.Findings = append(rec.Findings, fmt.Sprintf(
					"frame %s delegates %s with a wildcard — a redirect keeps the permission; pin the origin (§5.2)",
					f.URL, feature))
			}
		}
		if !f.LocalScheme && f.Origin != "" {
			for p := range frameUsed {
				delegatedTo[p] = append(delegatedTo[p], f.Origin)
			}
		}
	}

	var usedList []string
	for p := range usedTop {
		usedList = append(usedList, p)
	}
	for p := range delegatedTo {
		if !usedTop[p] {
			usedList = append(usedList, p)
		}
	}
	sort.Strings(usedList)
	rec.UsedPermissions = usedList

	header, err := Generate(GeneratorInput{
		Mode:            FromUsage,
		Browser:         permissions.Chromium,
		Version:         127,
		UsedPermissions: usedList,
		DelegatedTo:     delegatedTo,
	})
	if err != nil {
		return nil, err
	}
	rec.Header = header

	// Compare against the deployed header: flag breadth regressions.
	if top.HasPermissionsPolicy && top.HeaderValid {
		deployed, _, _ := policy.ParsePermissionsPolicy(top.PermissionsPolicyRaw)
		for _, d := range deployed.Directives {
			if d.Allowlist.All {
				rec.Findings = append(rec.Findings, fmt.Sprintf(
					"header grants %s=* which is broader than needed (and has no restricting effect)", d.Feature))
			}
		}
	} else if top.HasPermissionsPolicy && !top.HeaderValid {
		rec.Findings = append(rec.Findings,
			"deployed Permissions-Policy header is syntactically invalid; the browser ignores it entirely (§4.3.3)")
	} else {
		rec.Findings = append(rec.Findings,
			"no Permissions-Policy header deployed; unused powerful features are not opted out (§5.3)")
	}
	return rec, nil
}
