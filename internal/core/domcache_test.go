package core

import (
	"context"
	"testing"
	"time"

	"permodyssey/internal/analysis"
	"permodyssey/internal/html"
	"permodyssey/internal/synthweb"
)

// TestCrawlDOMCacheEquivalence proves the content-addressed DOM cache is
// observationally transparent through the full measurement stack, under
// a chaos-seeded population: crawls with the cache on and off must
// produce byte-identical records (after wall-clock normalization) and
// byte-identical analysis reports. Shared documents (widget frames,
// duplicated templates) exercise real cross-site cache hits.
func TestCrawlDOMCacheEquivalence(t *testing.T) {
	const sites = 120
	opts := chaosSoakOptions(sites)
	// Timing-dependent failure classes (slow-loris, stalls) would make
	// the success set schedule-dependent; equivalence is about content.
	opts.Web.TimeoutRate = 0
	opts.Web.Chaos.Kinds = []synthweb.Fault{
		synthweb.FaultReset, synthweb.FaultMalformedHeader, synthweb.FaultOversizedHeader,
		synthweb.FaultRedirectLoop, synthweb.FaultFlap, synthweb.FaultOversizedBody,
	}
	opts.Crawl.PerSiteTimeout = 5 * time.Second

	run := func(disableDOMCache bool) ([]string, string, CrawlStats) {
		srv := synthweb.NewServer(opts.Web)
		srv.StallTime = opts.StallTime
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		o := opts
		o.DisableDOMCache = disableDOMCache
		stack, err := newCrawlStack(srv, o)
		if err != nil {
			t.Fatal(err)
		}
		defer stack.close()
		ds := stack.crawler.Crawl(context.Background(), stack.targets)
		if len(ds.Records) != sites {
			t.Fatalf("records: %d", len(ds.Records))
		}
		m := &Measurement{Dataset: ds, Analysis: analysis.New(ds), Stats: stack.stats()}
		recs := make([]string, 0, len(ds.Records))
		for _, rec := range ds.Records {
			recs = append(recs, normalizeChaosRecord(t, rec))
		}
		return recs, m.Report(), m.Stats
	}

	plainRecs, plainReport, plainStats := run(true)
	cachedRecs, cachedReport, cachedStats := run(false)

	for i := range plainRecs {
		if plainRecs[i] != cachedRecs[i] {
			t.Errorf("record %d differs with DOM cache on:\nuncached: %s\ncached:   %s",
				i, plainRecs[i], cachedRecs[i])
		}
	}
	if plainReport != cachedReport {
		t.Error("analysis reports differ between cached and uncached crawls")
	}
	// The cached run must have actually cached — and shared: every site
	// embeds common widget documents, so hits must appear.
	if cachedStats.DOM.Misses == 0 {
		t.Fatal("cached run never parsed a document through the cache")
	}
	if cachedStats.DOM.Hits == 0 {
		t.Error("cached run never shared a parsed document across fetches")
	}
	if plainStats.DOM != (html.ParseStats{}) {
		t.Errorf("DisableDOMCache run still touched the DOM cache: %+v", plainStats.DOM)
	}
}
