// Package fleet reconciles the per-shard outputs of a distributed
// crawl — N crawler processes, each covering one rank partition
// (crawler.PartitionTargets) and streaming its own checkpoint JSONL —
// back into the single dataset a one-process crawl of the same
// population would have produced. The reconciliation rules mirror the
// archive's (diskcache.MergeShards): a successful record beats a
// failed one for the same rank, ties go to the lowest shard index, so
// the merge is deterministic no matter how the fleet's work actually
// interleaved. Canceled records — artifacts of a worker interrupted
// mid-visit, the same class resume drops — are discarded, leaving
// their ranks visibly missing rather than silently wrong.
package fleet

import (
	"fmt"
	"sort"
	"strings"

	"permodyssey/internal/store"
)

// MergeReport describes what a merge reconciled. The JSON form is
// embedded in sealed crawl bundles (internal/bundle) so a replayed
// fleet crawl carries its reconciliation provenance.
type MergeReport struct {
	// ShardRecords is the record count read from each input shard, in
	// input order.
	ShardRecords []int `json:"shard_records"`
	// Records is the merged dataset's size.
	Records int `json:"records"`
	// Duplicates counts ranks present in more than one shard (each
	// extra copy counts once); SuccessesPreferred the subset resolved
	// in favor of a successful record over a failed one.
	Duplicates         int `json:"duplicates"`
	SuccessesPreferred int `json:"successes_preferred"`
	// CanceledDropped counts canceled records discarded (interrupted
	// workers; their ranks need a re-crawl unless another shard covered
	// them).
	CanceledDropped int `json:"canceled_dropped"`
}

func (r MergeReport) String() string {
	return fmt.Sprintf("merged %d records from %d shards %v (%d duplicates reconciled, %d successes preferred, %d canceled dropped)",
		r.Records, len(r.ShardRecords), r.ShardRecords, r.Duplicates, r.SuccessesPreferred, r.CanceledDropped)
}

// MergeDatasets reconciles per-shard datasets into one rank-sorted
// dataset. Shard index is priority order: when two shards carry the
// same rank, a successful record wins over a failed one, then the
// lower-indexed shard wins — the same deterministic preference the
// archive merge applies to manifest entries.
func MergeDatasets(shards ...*store.Dataset) (*store.Dataset, MergeReport) {
	rep := MergeReport{ShardRecords: make([]int, len(shards))}
	byRank := map[int]store.SiteRecord{}
	for i, ds := range shards {
		if ds == nil {
			continue
		}
		rep.ShardRecords[i] = len(ds.Records)
		for _, rec := range ds.Records {
			if rec.Failure == store.FailureCanceled {
				rep.CanceledDropped++
				continue
			}
			cur, ok := byRank[rec.Rank]
			if !ok {
				byRank[rec.Rank] = rec
				continue
			}
			rep.Duplicates++
			if rec.OK() && !cur.OK() {
				rep.SuccessesPreferred++
				byRank[rec.Rank] = rec
			} else if cur.OK() && !rec.OK() {
				rep.SuccessesPreferred++
			}
			// Both succeeded or both failed: the incumbent came from a
			// lower shard index and keeps the rank.
		}
	}
	merged := &store.Dataset{Records: make([]store.SiteRecord, 0, len(byRank))}
	for _, rec := range byRank {
		merged.Records = append(merged.Records, rec)
	}
	sort.Slice(merged.Records, func(i, j int) bool { return merged.Records[i].Rank < merged.Records[j].Rank })
	rep.Records = len(merged.Records)
	return merged, rep
}

// MergeFiles loads each shard checkpoint tolerantly (a worker killed
// mid-write leaves a truncated final line, which is dropped exactly as
// resume would drop it), merges them, and writes the result to
// outPath. The inputs are read in slice order, which is their shard
// priority.
func MergeFiles(outPath string, shardPaths ...string) (*store.Dataset, MergeReport, error) {
	shards := make([]*store.Dataset, len(shardPaths))
	for i, p := range shardPaths {
		ds, err := store.LoadPartialFile(p)
		if err != nil {
			return nil, MergeReport{}, fmt.Errorf("fleet: reading shard %s: %w", p, err)
		}
		shards[i] = ds
	}
	merged, rep := MergeDatasets(shards...)
	if err := merged.SaveFile(outPath); err != nil {
		return nil, rep, fmt.Errorf("fleet: writing %s: %w", outPath, err)
	}
	return merged, rep, nil
}

// SumStats folds per-shard stats objects (decoded -stats-json files)
// into fleet-wide totals, structurally: numbers sum, nested objects
// recurse, and everything else keeps the first shard's value. Two
// exceptions make the totals honest rather than merely additive —
// keys naming a high-water mark (a "Max" prefix, as in MaxReadyDepth
// or MaxHostInFlight) take the maximum instead of the sum, and the
// shard-identity keys ("shard", "shards") are dropped because a sum
// of shard indices means nothing.
func SumStats(shards []map[string]any) map[string]any {
	totals := map[string]any{}
	for _, s := range shards {
		sumInto(totals, s)
	}
	return totals
}

func sumInto(dst, src map[string]any) {
	for k, v := range src {
		if k == "shard" || k == "shards" {
			continue
		}
		cur, ok := dst[k]
		if !ok {
			switch v := v.(type) {
			case map[string]any:
				m := map[string]any{}
				sumInto(m, v)
				dst[k] = m
			default:
				dst[k] = v
			}
			continue
		}
		switch cv := cur.(type) {
		case float64:
			if n, ok := v.(float64); ok {
				if strings.HasPrefix(k, "Max") {
					dst[k] = max(cv, n)
				} else {
					dst[k] = cv + n
				}
			}
		case map[string]any:
			if m, ok := v.(map[string]any); ok {
				sumInto(cv, m)
			}
		}
	}
}
