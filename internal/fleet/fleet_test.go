package fleet

import (
	"os"
	"path/filepath"
	"testing"

	"permodyssey/internal/browser"
	"permodyssey/internal/store"
)

func okRec(rank int) store.SiteRecord {
	return store.SiteRecord{
		Rank: rank,
		URL:  "https://site.test/",
		Page: &browser.PageResult{URL: "https://site.test/"},
	}
}

func failRec(rank int, class store.FailureClass) store.SiteRecord {
	return store.SiteRecord{Rank: rank, URL: "https://site.test/", Failure: class, Error: string(class)}
}

func ranks(ds *store.Dataset) []int {
	out := make([]int, len(ds.Records))
	for i, r := range ds.Records {
		out[i] = r.Rank
	}
	return out
}

func TestMergeDisjointShards(t *testing.T) {
	a := &store.Dataset{Records: []store.SiteRecord{okRec(1), okRec(5)}}
	b := &store.Dataset{Records: []store.SiteRecord{okRec(2), failRec(4, store.FailureTimeout)}}
	c := &store.Dataset{Records: []store.SiteRecord{okRec(3)}}
	merged, rep := MergeDatasets(a, b, c)
	if got, want := ranks(merged), []int{1, 2, 3, 4, 5}; len(got) != len(want) {
		t.Fatalf("merged ranks = %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("merged ranks = %v, want %v (rank-sorted)", got, want)
			}
		}
	}
	if rep.Duplicates != 0 || rep.Records != 5 || rep.CanceledDropped != 0 {
		t.Errorf("report = %+v, want 5 records, no duplicates", rep)
	}
}

// TestMergePrefersSuccess: a rank crawled by two shards keeps the
// successful record regardless of which shard succeeded.
func TestMergePrefersSuccess(t *testing.T) {
	fail := &store.Dataset{Records: []store.SiteRecord{failRec(7, store.FailureEphemeral)}}
	ok := &store.Dataset{Records: []store.SiteRecord{okRec(7)}}

	for name, order := range map[string][]*store.Dataset{
		"success in low shard":  {ok, fail},
		"success in high shard": {fail, ok},
	} {
		merged, rep := MergeDatasets(order...)
		if len(merged.Records) != 1 || !merged.Records[0].OK() {
			t.Errorf("%s: merged = %+v, want the success", name, merged.Records)
		}
		if rep.Duplicates != 1 || rep.SuccessesPreferred != 1 {
			t.Errorf("%s: report = %+v, want 1 duplicate, 1 success preferred", name, rep)
		}
	}
}

// TestMergeTieGoesToLowestShard: two failures (or two successes) for
// one rank resolve to the lower shard index, deterministically.
func TestMergeTieGoesToLowestShard(t *testing.T) {
	a := &store.Dataset{Records: []store.SiteRecord{failRec(3, store.FailureTimeout)}}
	b := &store.Dataset{Records: []store.SiteRecord{failRec(3, store.FailureEphemeral)}}
	merged, rep := MergeDatasets(a, b)
	if len(merged.Records) != 1 || merged.Records[0].Failure != store.FailureTimeout {
		t.Errorf("merged = %+v, want shard 0's timeout record", merged.Records)
	}
	if rep.SuccessesPreferred != 0 {
		t.Errorf("report = %+v, want no success preference on a failure tie", rep)
	}
}

// TestMergeDropsCanceled: canceled records are interruption artifacts;
// they never survive a merge, but a real record from another shard
// still covers the rank.
func TestMergeDropsCanceled(t *testing.T) {
	a := &store.Dataset{Records: []store.SiteRecord{failRec(1, store.FailureCanceled), okRec(2)}}
	b := &store.Dataset{Records: []store.SiteRecord{okRec(1)}}
	merged, rep := MergeDatasets(a, b)
	if len(merged.Records) != 2 || !merged.Records[0].OK() {
		t.Errorf("merged = %+v, want rank 1 covered by shard 1's success", merged.Records)
	}
	if rep.CanceledDropped != 1 || rep.Duplicates != 0 {
		t.Errorf("report = %+v, want 1 canceled dropped and no duplicate (canceled never competes)", rep)
	}
}

func TestMergeNilShard(t *testing.T) {
	merged, rep := MergeDatasets(nil, &store.Dataset{Records: []store.SiteRecord{okRec(1)}})
	if len(merged.Records) != 1 || rep.ShardRecords[0] != 0 || rep.ShardRecords[1] != 1 {
		t.Errorf("merged = %v, report = %+v", merged.Records, rep)
	}
}

// TestMergeFiles: file-level merge tolerates a truncated shard tail
// (worker killed mid-write) and writes a loadable rank-sorted output.
func TestMergeFiles(t *testing.T) {
	dir := t.TempDir()
	p0 := filepath.Join(dir, "out.shard0")
	p1 := filepath.Join(dir, "out.shard1")
	if err := (&store.Dataset{Records: []store.SiteRecord{okRec(2), okRec(4)}}).SaveFile(p0); err != nil {
		t.Fatal(err)
	}
	if err := (&store.Dataset{Records: []store.SiteRecord{okRec(1), okRec(3)}}).SaveFile(p1); err != nil {
		t.Fatal(err)
	}
	// Tear shard 1's tail: the torn line is dropped, not fatal.
	f, err := os.OpenFile(p1, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"rank":5,"url":"https://torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out := filepath.Join(dir, "merged.jsonl")
	merged, rep, err := MergeFiles(out, p0, p1)
	if err != nil {
		t.Fatal(err)
	}
	if got := ranks(merged); len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Errorf("merged ranks = %v, want [1 2 3 4]", got)
	}
	if rep.ShardRecords[1] != 2 {
		t.Errorf("shard 1 records = %d, want 2 (torn line dropped)", rep.ShardRecords[1])
	}
	reloaded, err := store.LoadFile(out)
	if err != nil || len(reloaded.Records) != 4 {
		t.Errorf("reloading merged output: %d records, %v", len(reloaded.Records), err)
	}
}

// TestSumStats: numbers sum, nested objects recurse, "Max"-prefixed
// high-water marks take the maximum, and shard-identity keys vanish
// from the totals.
func TestSumStats(t *testing.T) {
	a := map[string]any{
		"shard": 0.0, "shards": 2.0,
		"Crawl": map[string]any{"Visited": 10.0, "Resumed": 1.0, "MaxReadyDepth": 3.0},
		"Fetch": map[string]any{"Hits": 5.0},
		"note":  "first",
	}
	b := map[string]any{
		"shard": 1.0, "shards": 2.0,
		"Crawl": map[string]any{"Visited": 7.0, "Resumed": 0.0, "MaxReadyDepth": 9.0},
		"Fetch": map[string]any{"Hits": 2.0, "Misses": 4.0},
		"note":  "second",
	}
	got := SumStats([]map[string]any{a, b})
	if _, ok := got["shard"]; ok {
		t.Error("shard identity key leaked into totals")
	}
	crawl := got["Crawl"].(map[string]any)
	if crawl["Visited"] != 17.0 || crawl["Resumed"] != 1.0 {
		t.Errorf("Crawl totals = %v, want Visited 17, Resumed 1", crawl)
	}
	if crawl["MaxReadyDepth"] != 9.0 {
		t.Errorf("MaxReadyDepth = %v, want max(3,9) = 9", crawl["MaxReadyDepth"])
	}
	fetch := got["Fetch"].(map[string]any)
	if fetch["Hits"] != 7.0 || fetch["Misses"] != 4.0 {
		t.Errorf("Fetch totals = %v, want Hits 7, Misses 4", fetch)
	}
	if got["note"] != "first" {
		t.Errorf("non-numeric key = %v, want first shard's value kept", got["note"])
	}
	// Summing a shard into itself must not alias the input maps.
	if a["Crawl"].(map[string]any)["Visited"] != 10.0 {
		t.Error("SumStats mutated its input")
	}
}
