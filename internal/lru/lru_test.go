package lru

import "testing"

func TestBasicAddGet(t *testing.T) {
	c := New[string, int](0)
	c.Add("a", 1)
	c.Add("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("Get(missing) must miss")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestEvictionOrder(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	// Touch a so b is the LRU entry.
	c.Get("a")
	_, _, k, v, evicted := c.Add("c", 3)
	if !evicted || k != "b" || v != 2 {
		t.Fatalf("evicted %q=%d (%v), want b=2", k, v, evicted)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b must be gone")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a must survive")
	}
}

// TestReplaceReturnsOldValue: overwriting a live key must hand the
// displaced value back, so callers tracking per-value state (interned
// body refcounts) can release it — silently dropping it leaks.
func TestReplaceReturnsOldValue(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	old, replaced, _, _, evicted := c.Add("a", 10)
	if evicted {
		t.Fatal("replacing a live key must not evict")
	}
	if !replaced || old != 1 {
		t.Fatalf("replace reported old=%d replaced=%v, want 1, true", old, replaced)
	}
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("a = %d, want 10", v)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (replace keeps the entry count)", c.Len())
	}
	// A fresh insert must not claim a replace happened.
	if _, replaced, _, _, _ := c.Add("c", 3); replaced {
		t.Fatal("fresh insert must not report replaced")
	}
}

// TestReplaceRefreshesRecency: a replace counts as a use — the
// replaced key must become the most recently used entry.
func TestReplaceRefreshesRecency(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Add("a", 10) // a is now most recent; b is the LRU entry
	if _, _, k, _, evicted := c.Add("c", 3); !evicted || k != "b" {
		t.Fatalf("evicted %q (%v), want b", k, evicted)
	}
}

func TestPeekDoesNotTouchRecency(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Peek("a") // must NOT refresh a
	if _, _, k, _, evicted := c.Add("c", 3); !evicted || k != "a" {
		t.Fatalf("evicted %q (%v), want a", k, evicted)
	}
}

func TestRemoveAndUnbounded(t *testing.T) {
	c := New[int, int](0)
	for i := 0; i < 1000; i++ {
		if _, _, _, _, evicted := c.Add(i, i); evicted {
			t.Fatal("unbounded cache must never evict")
		}
	}
	if !c.Remove(500) || c.Remove(500) {
		t.Fatal("Remove must report presence exactly once")
	}
	if c.Len() != 999 {
		t.Fatalf("Len = %d", c.Len())
	}
}
