package lru

import "testing"

func TestBasicAddGet(t *testing.T) {
	c := New[string, int](0)
	c.Add("a", 1)
	c.Add("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("Get(missing) must miss")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestEvictionOrder(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	// Touch a so b is the LRU entry.
	c.Get("a")
	_, _, k, v, evicted := c.Add("c", 3)
	if !evicted || k != "b" || v != 2 {
		t.Fatalf("evicted %q=%d (%v), want b=2", k, v, evicted)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b must be gone")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a must survive")
	}
}

// TestReplaceReturnsOldValue: overwriting a live key must hand the
// displaced value back, so callers tracking per-value state (interned
// body refcounts) can release it — silently dropping it leaks.
func TestReplaceReturnsOldValue(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	old, replaced, _, _, evicted := c.Add("a", 10)
	if evicted {
		t.Fatal("replacing a live key must not evict")
	}
	if !replaced || old != 1 {
		t.Fatalf("replace reported old=%d replaced=%v, want 1, true", old, replaced)
	}
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("a = %d, want 10", v)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (replace keeps the entry count)", c.Len())
	}
	// A fresh insert must not claim a replace happened.
	if _, replaced, _, _, _ := c.Add("c", 3); replaced {
		t.Fatal("fresh insert must not report replaced")
	}
}

// TestReplaceRefreshesRecency: a replace counts as a use — the
// replaced key must become the most recently used entry.
func TestReplaceRefreshesRecency(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Add("a", 10) // a is now most recent; b is the LRU entry
	if _, _, k, _, evicted := c.Add("c", 3); !evicted || k != "b" {
		t.Fatalf("evicted %q (%v), want b", k, evicted)
	}
}

func TestPeekDoesNotTouchRecency(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Peek("a") // must NOT refresh a
	if _, _, k, _, evicted := c.Add("c", 3); !evicted || k != "a" {
		t.Fatalf("evicted %q (%v), want a", k, evicted)
	}
}

func TestRemoveAndUnbounded(t *testing.T) {
	c := New[int, int](0)
	for i := 0; i < 1000; i++ {
		if _, _, _, _, evicted := c.Add(i, i); evicted {
			t.Fatal("unbounded cache must never evict")
		}
	}
	if !c.Remove(500) || c.Remove(500) {
		t.Fatal("Remove must report presence exactly once")
	}
	if c.Len() != 999 {
		t.Fatalf("Len = %d", c.Len())
	}
}

// TestByteBudgetEviction: the byte bound evicts LRU entries until the
// budget holds again, reporting every one with its charged size.
func TestByteBudgetEviction(t *testing.T) {
	c := NewWithBytes[string, string](0, 100)
	c.AddWithSize("a", "A", 40)
	c.AddWithSize("b", "B", 40)
	if c.Bytes() != 80 {
		t.Fatalf("Bytes = %d, want 80", c.Bytes())
	}
	// 70 more bytes must push out both a and b: 150 over budget, still
	// 110 after a alone goes.
	_, _, evicted := c.AddWithSize("c", "C", 70)
	if len(evicted) != 2 || evicted[0].Key != "a" || evicted[1].Key != "b" {
		t.Fatalf("evicted %+v, want a then b", evicted)
	}
	if evicted[0].Size != 40 || evicted[1].Size != 40 {
		t.Fatalf("evicted sizes %+v, want 40 each", evicted)
	}
	if c.Len() != 1 || c.Bytes() != 70 {
		t.Fatalf("Len=%d Bytes=%d, want 1/70", c.Len(), c.Bytes())
	}
}

// TestByteBudgetOversizedEntry: a single entry larger than the whole
// budget cannot be retained — it evicts everything including itself.
func TestByteBudgetOversizedEntry(t *testing.T) {
	c := NewWithBytes[string, string](0, 100)
	c.AddWithSize("a", "A", 30)
	_, _, evicted := c.AddWithSize("huge", "H", 500)
	if len(evicted) != 2 || evicted[1].Key != "huge" {
		t.Fatalf("evicted %+v, want a then huge itself", evicted)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("Len=%d Bytes=%d, want empty", c.Len(), c.Bytes())
	}
}

// TestByteBudgetReplaceSwapsCharge: overwriting a key swaps its byte
// charge rather than double-counting, and Remove refunds it.
func TestByteBudgetReplaceSwapsCharge(t *testing.T) {
	c := NewWithBytes[string, string](0, 100)
	c.AddWithSize("a", "A", 30)
	old, replaced, evicted := c.AddWithSize("a", "A2", 70)
	if !replaced || old != "A" || len(evicted) != 0 {
		t.Fatalf("replace: old=%q replaced=%v evicted=%+v", old, replaced, evicted)
	}
	if c.Bytes() != 70 {
		t.Fatalf("Bytes = %d, want 70 (charge swapped, not summed)", c.Bytes())
	}
	c.AddWithSize("b", "B", 30)
	if !c.Remove("a") || c.Bytes() != 30 {
		t.Fatalf("Remove(a): Bytes = %d, want 30", c.Bytes())
	}
}

// TestByteBudgetWithEntryBound: both bounds apply together — whichever
// trips first evicts.
func TestByteBudgetWithEntryBound(t *testing.T) {
	c := NewWithBytes[string, int](2, 100)
	c.AddWithSize("a", 1, 10)
	c.AddWithSize("b", 2, 10)
	if _, _, ev := c.AddWithSize("c", 3, 10); len(ev) != 1 || ev[0].Key != "a" {
		t.Fatalf("entry bound: evicted %+v, want a", ev)
	}
	if _, _, ev := c.AddWithSize("d", 4, 95); len(ev) != 2 {
		t.Fatalf("byte bound: evicted %+v, want b and c", ev)
	}
}
