package lru

import "testing"

func TestBasicAddGet(t *testing.T) {
	c := New[string, int](0)
	c.Add("a", 1)
	c.Add("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("Get(missing) must miss")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestEvictionOrder(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	// Touch a so b is the LRU entry.
	c.Get("a")
	k, v, evicted := c.Add("c", 3)
	if !evicted || k != "b" || v != 2 {
		t.Fatalf("evicted %q=%d (%v), want b=2", k, v, evicted)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b must be gone")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a must survive")
	}
}

func TestReplaceDoesNotEvict(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	if _, _, evicted := c.Add("a", 10); evicted {
		t.Fatal("replacing a live key must not evict")
	}
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("a = %d, want 10", v)
	}
}

func TestPeekDoesNotTouchRecency(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Peek("a") // must NOT refresh a
	if k, _, evicted := c.Add("c", 3); !evicted || k != "a" {
		t.Fatalf("evicted %q (%v), want a", k, evicted)
	}
}

func TestRemoveAndUnbounded(t *testing.T) {
	c := New[int, int](0)
	for i := 0; i < 1000; i++ {
		if _, _, evicted := c.Add(i, i); evicted {
			t.Fatal("unbounded cache must never evict")
		}
	}
	if !c.Remove(500) || c.Remove(500) {
		t.Fatal("Remove must report presence exactly once")
	}
	if c.Len() != 999 {
		t.Fatalf("Len = %d", c.Len())
	}
}
