// Package lru provides the minimal least-recently-used bookkeeping the
// crawl caches share. A multi-million-site crawl must keep every cache
// memory-bounded (ROADMAP: cache size bounds); each cache wraps one of
// these behind its own lock, so the structure itself is deliberately
// not concurrency-safe.
package lru

import "container/list"

// entry is one key/value pair on the recency list.
type entry[K comparable, V any] struct {
	key   K
	value V
}

// Cache is a size-bounded map with LRU eviction. A MaxEntries of zero
// or less means unbounded (the cache degenerates to a plain map plus
// recency list). Not safe for concurrent use; callers hold their own
// lock.
type Cache[K comparable, V any] struct {
	// MaxEntries bounds the number of live entries; <= 0 is unbounded.
	MaxEntries int

	order *list.List
	items map[K]*list.Element
}

// New creates an empty cache bounded to maxEntries (<= 0 = unbounded).
func New[K comparable, V any](maxEntries int) *Cache[K, V] {
	return &Cache[K, V]{
		MaxEntries: maxEntries,
		order:      list.New(),
		items:      map[K]*list.Element{},
	}
}

// Len returns the number of live entries.
func (c *Cache[K, V]) Len() int { return len(c.items) }

// Get returns the value for key and marks it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*entry[K, V]).value, true
	}
	var zero V
	return zero, false
}

// Peek returns the value without touching recency.
func (c *Cache[K, V]) Peek(key K) (V, bool) {
	if el, ok := c.items[key]; ok {
		return el.Value.(*entry[K, V]).value, true
	}
	var zero V
	return zero, false
}

// Add inserts or replaces key, marking it most recently used. Both ways
// an Add can displace a live value are reported so the caller can
// release any state tied to it (body interning refcounts, counters):
// overwriting an existing key returns the old value with replaced=true,
// and a fresh insert that pushes the cache past MaxEntries evicts and
// returns the least recently used entry. The two cases are mutually
// exclusive — a replace never changes the entry count.
func (c *Cache[K, V]) Add(key K, value V) (old V, replaced bool, evictedKey K, evictedValue V, evicted bool) {
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		e := el.Value.(*entry[K, V])
		old, replaced = e.value, true
		e.value = value
		return
	}
	c.items[key] = c.order.PushFront(&entry[K, V]{key: key, value: value})
	if c.MaxEntries > 0 && len(c.items) > c.MaxEntries {
		evictedKey, evictedValue, evicted = c.removeOldest()
	}
	return
}

// Remove deletes key, reporting whether it was present.
func (c *Cache[K, V]) Remove(key K) bool {
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.order.Remove(el)
	delete(c.items, key)
	return true
}

// removeOldest evicts the least recently used entry.
func (c *Cache[K, V]) removeOldest() (K, V, bool) {
	el := c.order.Back()
	if el == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	e := el.Value.(*entry[K, V])
	c.order.Remove(el)
	delete(c.items, e.key)
	return e.key, e.value, true
}

// Each calls fn over every live entry in most-recent-first order.
func (c *Cache[K, V]) Each(fn func(key K, value V)) {
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry[K, V])
		fn(e.key, e.value)
	}
}
