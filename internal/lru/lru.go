// Package lru provides the minimal least-recently-used bookkeeping the
// crawl caches share. A multi-million-site crawl must keep every cache
// memory-bounded (ROADMAP: cache size bounds); each cache wraps one of
// these behind its own lock, so the structure itself is deliberately
// not concurrency-safe.
package lru

import "container/list"

// entry is one key/value pair on the recency list, with the byte cost
// the caller charged it via AddWithSize.
type entry[K comparable, V any] struct {
	key   K
	value V
	size  int64
}

// Evicted is one entry displaced by an Add/AddWithSize, reported so the
// caller can release any state tied to it (body interning refcounts,
// counters).
type Evicted[K comparable, V any] struct {
	Key   K
	Value V
	Size  int64
}

// Cache is a size-bounded map with LRU eviction, bounded two ways: by
// entry count (MaxEntries) and by the total byte cost callers charge
// entries through AddWithSize (MaxBytes). Either bound at zero or less
// is off; with both off the cache degenerates to a plain map plus
// recency list. Not safe for concurrent use; callers hold their own
// lock.
type Cache[K comparable, V any] struct {
	// MaxEntries bounds the number of live entries; <= 0 is unbounded.
	MaxEntries int
	// MaxBytes bounds the summed sizes of live entries; <= 0 is
	// unbounded. An entry alone larger than MaxBytes is never retained:
	// it evicts everything else and then itself.
	MaxBytes int64

	order *list.List
	items map[K]*list.Element
	bytes int64
}

// New creates an empty cache bounded to maxEntries (<= 0 = unbounded).
func New[K comparable, V any](maxEntries int) *Cache[K, V] {
	return NewWithBytes[K, V](maxEntries, 0)
}

// NewWithBytes creates an empty cache bounded to maxEntries and
// maxBytes (each <= 0 = that bound unbounded).
func NewWithBytes[K comparable, V any](maxEntries int, maxBytes int64) *Cache[K, V] {
	return &Cache[K, V]{
		MaxEntries: maxEntries,
		MaxBytes:   maxBytes,
		order:      list.New(),
		items:      map[K]*list.Element{},
	}
}

// Len returns the number of live entries.
func (c *Cache[K, V]) Len() int { return len(c.items) }

// Bytes returns the summed byte cost of live entries.
func (c *Cache[K, V]) Bytes() int64 { return c.bytes }

// Get returns the value for key and marks it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*entry[K, V]).value, true
	}
	var zero V
	return zero, false
}

// Peek returns the value without touching recency.
func (c *Cache[K, V]) Peek(key K) (V, bool) {
	if el, ok := c.items[key]; ok {
		return el.Value.(*entry[K, V]).value, true
	}
	var zero V
	return zero, false
}

// Add inserts or replaces key at zero byte cost, marking it most
// recently used. Both ways an Add can displace a live value are
// reported so the caller can release any state tied to it:
// overwriting an existing key returns the old value with replaced=true,
// and a fresh insert that pushes the cache past MaxEntries evicts and
// returns the least recently used entry. The two cases are mutually
// exclusive — a replace never changes the entry count.
func (c *Cache[K, V]) Add(key K, value V) (old V, replaced bool, evictedKey K, evictedValue V, evicted bool) {
	old, replaced, evs := c.AddWithSize(key, value, 0)
	if len(evs) > 0 {
		// Size-zero entries cannot trip MaxBytes, so at most one entry
		// (the MaxEntries overflow) is displaced.
		evictedKey, evictedValue, evicted = evs[0].Key, evs[0].Value, true
	}
	return
}

// AddWithSize inserts or replaces key charged at size bytes, marking it
// most recently used, then evicts least-recently-used entries until
// both bounds hold again. Overwriting an existing key returns the old
// value with replaced=true (its byte charge is swapped for size);
// every entry evicted to restore the bounds is returned in
// least-recent-first order so the caller can release state tied to
// each. A single entry larger than MaxBytes is itself evicted — served
// to the caller but never retained.
func (c *Cache[K, V]) AddWithSize(key K, value V, size int64) (old V, replaced bool, evicted []Evicted[K, V]) {
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		e := el.Value.(*entry[K, V])
		old, replaced = e.value, true
		c.bytes += size - e.size
		e.value, e.size = value, size
	} else {
		c.items[key] = c.order.PushFront(&entry[K, V]{key: key, value: value, size: size})
		c.bytes += size
	}
	for (c.MaxEntries > 0 && len(c.items) > c.MaxEntries) ||
		(c.MaxBytes > 0 && c.bytes > c.MaxBytes) {
		ek, ev, es, ok := c.removeOldest()
		if !ok {
			break
		}
		evicted = append(evicted, Evicted[K, V]{Key: ek, Value: ev, Size: es})
	}
	return
}

// Remove deletes key, reporting whether it was present.
func (c *Cache[K, V]) Remove(key K) bool {
	el, ok := c.items[key]
	if !ok {
		return false
	}
	e := el.Value.(*entry[K, V])
	c.order.Remove(el)
	delete(c.items, key)
	c.bytes -= e.size
	return true
}

// removeOldest evicts the least recently used entry.
func (c *Cache[K, V]) removeOldest() (K, V, int64, bool) {
	el := c.order.Back()
	if el == nil {
		var zk K
		var zv V
		return zk, zv, 0, false
	}
	e := el.Value.(*entry[K, V])
	c.order.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.size
	return e.key, e.value, e.size, true
}

// Each calls fn over every live entry in most-recent-first order.
func (c *Cache[K, V]) Each(fn func(key K, value V)) {
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry[K, V])
		fn(e.key, e.value)
	}
}
