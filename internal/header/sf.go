// Package header implements the subset of RFC 8941 HTTP Structured
// Fields that the Permissions-Policy header is defined in terms of:
// dictionaries whose member values are items or inner lists, with
// parameters. Parsing is strict — any violation fails the whole field —
// because that is exactly the browser behaviour behind the paper's
// §4.3.3 finding that 3,244 frames with syntax errors have their entire
// header removed and fall back to the default allowlists.
package header

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ItemKind discriminates Item values.
type ItemKind uint8

const (
	KindToken ItemKind = iota
	KindString
	KindInteger
	KindDecimal
	KindBoolean
)

// Item is an RFC 8941 item (bare value plus parameters).
type Item struct {
	Kind    ItemKind
	Token   string
	String  string
	Integer int64
	Decimal float64
	Boolean bool
	Params  []Param
}

// Param is one ;key=value parameter.
type Param struct {
	Key   string
	Value Item
}

// Member is one dictionary member: either a single Item or an inner list.
type Member struct {
	Key     string
	IsInner bool
	Item    Item
	Inner   []Item
	// Params holds the parameters of an inner-list member.
	Params []Param
}

// Dictionary preserves member order (the spec processes members in
// order; later duplicates win, which we record via the Members slice and
// resolve in Get).
type Dictionary struct {
	Members []Member
}

// Get returns the last member with the given key.
func (d Dictionary) Get(key string) (Member, bool) {
	for i := len(d.Members) - 1; i >= 0; i-- {
		if d.Members[i].Key == key {
			return d.Members[i], true
		}
	}
	return Member{}, false
}

// SyntaxError describes a structured-field parse failure with its byte
// offset, so the misconfiguration linter can explain what went wrong.
type SyntaxError struct {
	Offset int
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("structured field syntax error at offset %d: %s", e.Offset, e.Msg)
}

// ErrEmpty is returned for fields that contain no members at all.
var ErrEmpty = errors.New("structured field: empty")

type parser struct {
	s   string
	pos int
}

func (p *parser) err(msg string) error {
	return &SyntaxError{Offset: p.pos, Msg: msg}
}

func (p *parser) eof() bool { return p.pos >= len(p.s) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.s[p.pos]
}

func (p *parser) skipSP() {
	for !p.eof() && p.s[p.pos] == ' ' {
		p.pos++
	}
}

func (p *parser) skipOWS() {
	for !p.eof() && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

// ParseDictionary parses an sf-dictionary. Multiple header field lines
// should be joined with ", " by the caller before parsing, per RFC 8941.
func ParseDictionary(field string) (Dictionary, error) {
	p := &parser{s: field}
	var d Dictionary
	p.skipSP()
	if p.eof() {
		return d, ErrEmpty
	}
	for {
		key, err := p.parseKey()
		if err != nil {
			return d, err
		}
		m := Member{Key: key}
		if p.peek() == '=' {
			p.pos++
			if p.peek() == '(' {
				inner, params, err := p.parseInnerList()
				if err != nil {
					return d, err
				}
				m.IsInner = true
				m.Inner = inner
				m.Params = params
			} else {
				item, err := p.parseItem()
				if err != nil {
					return d, err
				}
				m.Item = item
			}
		} else {
			// Bare key: boolean true member.
			m.Item = Item{Kind: KindBoolean, Boolean: true}
			params, err := p.parseParams()
			if err != nil {
				return d, err
			}
			m.Item.Params = params
		}
		d.Members = append(d.Members, m)
		p.skipOWS()
		if p.eof() {
			return d, nil
		}
		if p.peek() != ',' {
			return d, p.err(fmt.Sprintf("expected ',' between members, found %q", string(p.peek())))
		}
		p.pos++
		p.skipOWS()
		if p.eof() {
			return d, p.err("trailing comma")
		}
	}
}

func isLCAlpha(c byte) bool { return c >= 'a' && c <= 'z' }
func isDigit(c byte) bool   { return c >= '0' && c <= '9' }
func isKeyChar(c byte) bool {
	return isLCAlpha(c) || isDigit(c) || c == '_' || c == '-' || c == '.' || c == '*'
}
func isTokenStart(c byte) bool {
	return isLCAlpha(c) || (c >= 'A' && c <= 'Z') || c == '*'
}
func isTokenChar(c byte) bool {
	switch {
	case isTokenStart(c), isDigit(c):
		return true
	}
	switch c {
	case ':', '/', '!', '#', '$', '%', '&', '\'', '+', '-', '.', '^', '_', '`', '|', '~':
		return true
	}
	return false
}

func (p *parser) parseKey() (string, error) {
	start := p.pos
	if p.eof() || !(isLCAlpha(p.peek()) || p.peek() == '*') {
		return "", p.err("dictionary key must start with lowercase letter or '*'")
	}
	for !p.eof() && isKeyChar(p.peek()) {
		p.pos++
	}
	return p.s[start:p.pos], nil
}

func (p *parser) parseInnerList() ([]Item, []Param, error) {
	if p.peek() != '(' {
		return nil, nil, p.err("expected '('")
	}
	p.pos++
	var items []Item
	for {
		p.skipSP()
		if p.eof() {
			return nil, nil, p.err("unterminated inner list")
		}
		if p.peek() == ')' {
			p.pos++
			params, err := p.parseParams()
			return items, params, err
		}
		item, err := p.parseItem()
		if err != nil {
			return nil, nil, err
		}
		items = append(items, item)
		if !p.eof() && p.peek() != ' ' && p.peek() != ')' {
			return nil, nil, p.err("inner-list items must be space-separated")
		}
	}
}

func (p *parser) parseItem() (Item, error) {
	bare, err := p.parseBareItem()
	if err != nil {
		return Item{}, err
	}
	params, err := p.parseParams()
	if err != nil {
		return Item{}, err
	}
	bare.Params = params
	return bare, nil
}

func (p *parser) parseBareItem() (Item, error) {
	if p.eof() {
		return Item{}, p.err("expected item")
	}
	c := p.peek()
	switch {
	case c == '"':
		s, err := p.parseString()
		return Item{Kind: KindString, String: s}, err
	case c == '?':
		p.pos++
		if p.eof() || (p.peek() != '0' && p.peek() != '1') {
			return Item{}, p.err("boolean must be ?0 or ?1")
		}
		b := p.peek() == '1'
		p.pos++
		return Item{Kind: KindBoolean, Boolean: b}, nil
	case c == '-' || isDigit(c):
		return p.parseNumber()
	case isTokenStart(c):
		start := p.pos
		p.pos++
		for !p.eof() && isTokenChar(p.peek()) {
			p.pos++
		}
		return Item{Kind: KindToken, Token: p.s[start:p.pos]}, nil
	default:
		return Item{}, p.err(fmt.Sprintf("unexpected character %q", string(c)))
	}
}

func (p *parser) parseString() (string, error) {
	p.pos++ // opening quote
	var b strings.Builder
	for {
		if p.eof() {
			return "", p.err("unterminated string")
		}
		c := p.s[p.pos]
		switch {
		case c == '"':
			p.pos++
			return b.String(), nil
		case c == '\\':
			p.pos++
			if p.eof() || (p.s[p.pos] != '"' && p.s[p.pos] != '\\') {
				return "", p.err("invalid escape in string")
			}
			b.WriteByte(p.s[p.pos])
			p.pos++
		case c < 0x20 || c > 0x7e:
			return "", p.err("invalid character in string")
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
}

func (p *parser) parseNumber() (Item, error) {
	start := p.pos
	if p.peek() == '-' {
		p.pos++
	}
	digits := 0
	decimal := false
	for !p.eof() {
		c := p.peek()
		if isDigit(c) {
			digits++
			p.pos++
			continue
		}
		if c == '.' && !decimal {
			decimal = true
			p.pos++
			continue
		}
		break
	}
	if digits == 0 {
		return Item{}, p.err("number without digits")
	}
	text := p.s[start:p.pos]
	if decimal {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Item{}, p.err("invalid decimal")
		}
		return Item{Kind: KindDecimal, Decimal: f}, nil
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return Item{}, p.err("invalid integer")
	}
	return Item{Kind: KindInteger, Integer: n}, nil
}

func (p *parser) parseParams() ([]Param, error) {
	var params []Param
	for !p.eof() && p.peek() == ';' {
		p.pos++
		p.skipSP()
		key, err := p.parseKey()
		if err != nil {
			return nil, err
		}
		val := Item{Kind: KindBoolean, Boolean: true}
		if !p.eof() && p.peek() == '=' {
			p.pos++
			val, err = p.parseBareItem()
			if err != nil {
				return nil, err
			}
		}
		params = append(params, Param{Key: key, Value: val})
	}
	return params, nil
}

// SerializeItem renders an Item back to its textual form (used by the
// header generator).
func SerializeItem(it Item) string {
	var b strings.Builder
	switch it.Kind {
	case KindToken:
		b.WriteString(it.Token)
	case KindString:
		b.WriteByte('"')
		for i := 0; i < len(it.String); i++ {
			c := it.String[i]
			if c == '"' || c == '\\' {
				b.WriteByte('\\')
			}
			b.WriteByte(c)
		}
		b.WriteByte('"')
	case KindInteger:
		b.WriteString(strconv.FormatInt(it.Integer, 10))
	case KindDecimal:
		b.WriteString(strconv.FormatFloat(it.Decimal, 'f', -1, 64))
	case KindBoolean:
		if it.Boolean {
			b.WriteString("?1")
		} else {
			b.WriteString("?0")
		}
	}
	for _, p := range it.Params {
		b.WriteByte(';')
		b.WriteString(p.Key)
		if !(p.Value.Kind == KindBoolean && p.Value.Boolean) {
			b.WriteByte('=')
			b.WriteString(SerializeItem(Item{Kind: p.Value.Kind, Token: p.Value.Token,
				String: p.Value.String, Integer: p.Value.Integer,
				Decimal: p.Value.Decimal, Boolean: p.Value.Boolean}))
		}
	}
	return b.String()
}
