package header

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestParseDictionaryPermissionsPolicyShapes(t *testing.T) {
	// Shapes that real Permissions-Policy headers take.
	d, err := ParseDictionary(`camera=(), geolocation=(self "https://iframe.com"), fullscreen=*`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(d.Members) != 3 {
		t.Fatalf("got %d members", len(d.Members))
	}
	cam, ok := d.Get("camera")
	if !ok || !cam.IsInner || len(cam.Inner) != 0 {
		t.Errorf("camera=() should be an empty inner list: %+v", cam)
	}
	geo, _ := d.Get("geolocation")
	if !geo.IsInner || len(geo.Inner) != 2 {
		t.Fatalf("geolocation: %+v", geo)
	}
	if geo.Inner[0].Kind != KindToken || geo.Inner[0].Token != "self" {
		t.Errorf("first geolocation entry: %+v", geo.Inner[0])
	}
	if geo.Inner[1].Kind != KindString || geo.Inner[1].String != "https://iframe.com" {
		t.Errorf("second geolocation entry: %+v", geo.Inner[1])
	}
	fs, _ := d.Get("fullscreen")
	if fs.IsInner || fs.Item.Kind != KindToken || fs.Item.Token != "*" {
		t.Errorf("fullscreen=*: %+v", fs)
	}
}

func TestParseDictionaryBareKey(t *testing.T) {
	d, err := ParseDictionary("a, b;x=1, c=?0")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	a, _ := d.Get("a")
	if a.Item.Kind != KindBoolean || !a.Item.Boolean {
		t.Errorf("bare key must be boolean true: %+v", a)
	}
	b, _ := d.Get("b")
	if len(b.Item.Params) != 1 || b.Item.Params[0].Key != "x" ||
		b.Item.Params[0].Value.Integer != 1 {
		t.Errorf("params: %+v", b)
	}
	c, _ := d.Get("c")
	if c.Item.Kind != KindBoolean || c.Item.Boolean {
		t.Errorf("?0 must parse false: %+v", c)
	}
}

func TestParseDictionaryDuplicateKeysLastWins(t *testing.T) {
	d, err := ParseDictionary("camera=(self), camera=()")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cam, _ := d.Get("camera")
	if len(cam.Inner) != 0 {
		t.Errorf("last duplicate must win: %+v", cam)
	}
}

func TestParseDictionaryNumbersDecimalsStrings(t *testing.T) {
	d, err := ParseDictionary(`n=-42, f=3.5, s="a\"b\\c"`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	n, _ := d.Get("n")
	if n.Item.Integer != -42 {
		t.Errorf("n: %+v", n)
	}
	f, _ := d.Get("f")
	if f.Item.Kind != KindDecimal || f.Item.Decimal != 3.5 {
		t.Errorf("f: %+v", f)
	}
	s, _ := d.Get("s")
	if s.Item.String != `a"b\c` {
		t.Errorf("s: %q", s.Item.String)
	}
}

func TestParseDictionarySyntaxErrors(t *testing.T) {
	// Every one of these must fail, because the browser drops the whole
	// header for them (paper §4.3.3).
	bad := []string{
		"camera=(self,",                   // unterminated inner list
		"camera=(self), ",                 // trailing comma
		"camera=(self) geolocation=()",    // missing comma
		"Camera=()",                       // uppercase key
		`geolocation=(self "unterminated`, // unterminated string
		"camera=(self 'none')",            // single quotes are FP syntax, not SF
		"camera self; geolocation 'none'", // whole header in FP syntax
		"camera=(?2)",                     // bad boolean
		"=()",                             // missing key
		"camera=((self))",                 // nested inner list
		"camera=(self\x01)",               // control character
	}
	for _, field := range bad {
		if _, err := ParseDictionary(field); err == nil {
			t.Errorf("ParseDictionary(%q): expected error", field)
		} else {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("ParseDictionary(%q): error %v is not *SyntaxError", field, err)
			}
		}
	}
}

func TestParseDictionaryEmpty(t *testing.T) {
	if _, err := ParseDictionary(""); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty field: got %v", err)
	}
	if _, err := ParseDictionary("   "); !errors.Is(err, ErrEmpty) {
		t.Errorf("whitespace field: got %v", err)
	}
}

func TestInnerListParams(t *testing.T) {
	d, err := ParseDictionary(`camera=(self "https://x.com");report-to=endpoint`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cam, _ := d.Get("camera")
	if len(cam.Params) != 1 || cam.Params[0].Key != "report-to" {
		t.Errorf("inner-list params: %+v", cam.Params)
	}
}

func TestSerializeItemRoundTrip(t *testing.T) {
	items := []Item{
		{Kind: KindToken, Token: "self"},
		{Kind: KindToken, Token: "*"},
		{Kind: KindString, String: `https://a.com`},
		{Kind: KindString, String: `quote " and backslash \`},
		{Kind: KindInteger, Integer: -7},
		{Kind: KindBoolean, Boolean: false},
	}
	for _, it := range items {
		text := SerializeItem(it)
		d, err := ParseDictionary("k=" + text)
		if err != nil {
			t.Errorf("round trip parse of %q: %v", text, err)
			continue
		}
		got, _ := d.Get("k")
		g := got.Item
		if g.Kind != it.Kind || g.Token != it.Token || g.String != it.String ||
			g.Integer != it.Integer || g.Boolean != it.Boolean {
			t.Errorf("round trip %q: got %+v want %+v", text, g, it)
		}
	}
}

// Property: parsing never panics and either returns a dictionary with at
// least one member or an error.
func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		d, err := ParseDictionary(s)
		return err != nil || len(d.Members) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkParseDictionary(b *testing.B) {
	field := `accelerometer=(),autoplay=(self),camera=(),encrypted-media=(self "https://youtube.com"),fullscreen=*,geolocation=(self),gyroscope=(),magnetometer=(),microphone=(),midi=(),payment=(),picture-in-picture=*,sync-xhr=(self),usb=()`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseDictionary(field); err != nil {
			b.Fatal(err)
		}
	}
}
