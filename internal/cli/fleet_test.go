package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseShardSpec(t *testing.T) {
	cases := []struct {
		spec          string
		shard, shards int
		wantErr       bool
	}{
		{"", 0, 0, false},
		{"0/1", 0, 1, false},
		{"3/4", 3, 4, false},
		{"4/4", 0, 0, true},
		{"-1/4", 0, 0, true},
		{"2", 0, 0, true},
		{"a/b", 0, 0, true},
		{"1/0", 0, 0, true},
	}
	for _, tc := range cases {
		shard, shards, err := ParseShardSpec(tc.spec)
		if (err != nil) != tc.wantErr || shard != tc.shard || shards != tc.shards {
			t.Errorf("ParseShardSpec(%q) = (%d, %d, %v), want (%d, %d, err=%v)",
				tc.spec, shard, shards, err, tc.shard, tc.shards, tc.wantErr)
		}
	}
}

// crawlArgs is the small deterministic population the fleet CLI tests
// crawl: no chaos, generous timeout, so shard outputs are exactly
// reproducible.
func fleetCrawlArgs() []string {
	return []string{"-sites", "40", "-seed", "21", "-workers", "8", "-timeout", "2s", "-retries", "0"}
}

// crawlTo runs the in-process Crawl command with extra flags appended.
func crawlTo(t *testing.T, out string, extra ...string) {
	t.Helper()
	args := append(fleetCrawlArgs(), "-out", out)
	args = append(args, extra...)
	var stdout, stderr bytes.Buffer
	if code := Crawl(context.Background(), args, &stdout, &stderr); code != 0 {
		t.Fatalf("crawl %v: code=%d stderr=%q", extra, code, stderr.String())
	}
}

// reportJSON renders a dataset's analysis report for equality checks.
func reportJSON(t *testing.T, path string) string {
	t.Helper()
	out, errOut, code := run(t, reportFn, "-in", path, "-json")
	if code != 0 {
		t.Fatalf("report -in %s: code=%d stderr=%q", path, code, errOut)
	}
	return out
}

// TestFleetMergeOnly: shard crawls run in-process via the Crawl
// command with -shard, then the Fleet driver's -merge-only path
// reconciles their checkpoints into a dataset whose report matches a
// single unsharded crawl byte for byte.
func TestFleetMergeOnly(t *testing.T) {
	dir := t.TempDir()
	single := filepath.Join(dir, "single.jsonl")
	merged := filepath.Join(dir, "merged.jsonl")
	crawlTo(t, single)
	crawlTo(t, merged+".shard0", "-shard", "0/2")
	crawlTo(t, merged+".shard1", "-shard", "1/2")

	var stdout, stderr bytes.Buffer
	code := Fleet(context.Background(), []string{
		"-procs", "2", "-out", merged, "-merge-only", "-expect-records", "40",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("fleet -merge-only: code=%d stderr=%q", code, stderr.String())
	}
	if got, want := reportJSON(t, merged), reportJSON(t, single); got != want {
		t.Error("merged fleet report differs from single-process report")
	}
	// A successful merge removes the shard checkpoints.
	if _, err := os.Stat(merged + ".shard0"); !os.IsNotExist(err) {
		t.Errorf("shard checkpoint survived the merge: %v", err)
	}

	// The -expect-records gate fails closed on a short merge.
	code = Fleet(context.Background(), []string{
		"-procs", "2", "-out", merged, "-merge-only", "-expect-records", "41",
	}, &stdout, &stderr)
	if code != 1 {
		t.Errorf("short merge: code=%d, want 1", code)
	}
}

// TestFleetFlagValidation: bad driver flags exit with usage errors
// before any work happens.
func TestFleetFlagValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Fleet(context.Background(), []string{"-procs", "0"}, &stdout, &stderr); code != 2 {
		t.Errorf("-procs 0: code=%d, want 2", code)
	}
	if code := Fleet(context.Background(), []string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: code=%d, want 2", code)
	}
	if code := Crawl(context.Background(), []string{"-shard", "9"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad -shard spec: code=%d, want 2", code)
	}
	if code := Crawl(context.Background(), []string{"-shard", "5/4"}, &stdout, &stderr); code != 2 {
		t.Errorf("out-of-range -shard: code=%d, want 2", code)
	}
}

// TestFleetEndToEnd builds the real permfleet binary and drives a
// 3-process fleet through it — fork, partition, shared archive,
// merge — and checks the merged report matches an in-process
// single-crawl baseline. This is the CLI-level version of the CI
// fleet-soak gate, scaled down.
func TestFleetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("process-forking soak skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "permfleet")
	build := exec.Command("go", "build", "-o", bin, "permodyssey/cmd/permfleet")
	build.Dir = moduleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building permfleet: %v\n%s", err, out)
	}

	single := filepath.Join(dir, "single.jsonl")
	crawlTo(t, single)

	merged := filepath.Join(dir, "fleet.jsonl")
	cache := filepath.Join(dir, "archive")
	args := []string{
		"-procs", "3", "-out", merged, "-cache-dir", cache, "-expect-records", "40", "--",
	}
	args = append(args, fleetCrawlArgs()...)
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("permfleet: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "merged 40 records from 3 shards") {
		t.Errorf("driver output missing merge report:\n%s", out)
	}
	if got, want := reportJSON(t, merged), reportJSON(t, single); got != want {
		t.Error("fleet report differs from single-process report")
	}
	// The shared archive compacted into one manifest: no shard files
	// left, and an offline replay from it needs zero network fetches.
	entries, err := os.ReadDir(cache)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "manifest-") {
			t.Errorf("unmerged shard manifest: %s", e.Name())
		}
	}
	replay := filepath.Join(dir, "replay.jsonl")
	crawlTo(t, replay, "-cache-dir", cache, "-offline")
	if got, want := reportJSON(t, replay), reportJSON(t, single); got != want {
		t.Error("offline replay from the fleet archive differs from the single-process report")
	}
}

// moduleRoot locates the repository root (where go.mod lives) so the
// end-to-end test can build cmd/permfleet from any test working dir.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test working directory")
		}
		dir = parent
	}
}

// TestAggregateStatsExplicitDegradation: when per-shard stats files
// are gone (a -merge-only rerun after the first merge cleaned them
// up), the aggregate must record the gap — missing_shards listed, no
// totals — and must overwrite any stale <out>.stats.json from a
// previous run rather than leaving old totals masquerading as fresh.
func TestAggregateStatsExplicitDegradation(t *testing.T) {
	dir := t.TempDir()
	merged := filepath.Join(dir, "merged.jsonl")
	crawlTo(t, merged+".shard0", "-shard", "0/2")
	crawlTo(t, merged+".shard1", "-shard", "1/2")

	// A stale aggregate from an imaginary earlier run.
	stale := merged + ".stats.json"
	if err := os.WriteFile(stale, []byte(`{"totals":{"Crawl":{"Visited":9999}}}`), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	code := Fleet(context.Background(), []string{
		"-procs", "2", "-out", merged, "-merge-only",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("fleet -merge-only: code=%d stderr=%q", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "no shard stats found") {
		t.Errorf("stderr missing degradation notice: %q", stderr.String())
	}

	raw, err := os.ReadFile(stale)
	if err != nil {
		t.Fatal(err)
	}
	var agg map[string]any
	if err := json.Unmarshal(raw, &agg); err != nil {
		t.Fatal(err)
	}
	if _, hasTotals := agg["totals"]; hasTotals {
		t.Error("aggregate with zero shard stats must not carry totals")
	}
	missing, _ := agg["missing_shards"].([]any)
	if len(missing) != 2 {
		t.Errorf("missing_shards = %v, want both shards listed", agg["missing_shards"])
	}
	if strings.Contains(string(raw), "9999") {
		t.Error("stale totals survived the rewrite")
	}
}

// TestAggregateStatsPartial: one shard's stats file present, one
// missing — totals cover the subset and say so.
func TestAggregateStatsPartial(t *testing.T) {
	dir := t.TempDir()
	merged := filepath.Join(dir, "merged.jsonl")
	crawlTo(t, merged+".shard0", "-shard", "0/2", "-stats-json", merged+".shard0.stats.json")
	crawlTo(t, merged+".shard1", "-shard", "1/2")

	var stdout, stderr bytes.Buffer
	code := Fleet(context.Background(), []string{
		"-procs", "2", "-out", merged, "-merge-only", "-keep-shards",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("fleet -merge-only: code=%d stderr=%q", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "stats incomplete: shards [1]") {
		t.Errorf("stderr missing partial-coverage notice: %q", stderr.String())
	}

	raw, err := os.ReadFile(merged + ".stats.json")
	if err != nil {
		t.Fatal(err)
	}
	var agg struct {
		Missing []int          `json:"missing_shards"`
		Totals  map[string]any `json:"totals"`
	}
	if err := json.Unmarshal(raw, &agg); err != nil {
		t.Fatal(err)
	}
	if len(agg.Missing) != 1 || agg.Missing[0] != 1 {
		t.Errorf("missing_shards = %v, want [1]", agg.Missing)
	}
	if agg.Totals == nil {
		t.Error("partial coverage should still sum the shards that reported")
	}
}
