package cli

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strconv"
	"strings"

	"permodyssey/internal/analysis"
	"permodyssey/internal/bundle"
	"permodyssey/internal/core"
	"permodyssey/internal/diskcache"
	"permodyssey/internal/fleet"
)

// openVerified opens a bundle and refuses to return it until its
// digest (and signature, when a key is given) checks out — analysis
// must never run over tampered evidence.
func openVerified(path, key string, stderr io.Writer) (*bundle.Bundle, error) {
	b, err := bundle.Open(path)
	if err != nil {
		return nil, err
	}
	if err := b.Verify(key); err != nil {
		b.Close()
		return nil, err
	}
	fmt.Fprintf(stderr, "bundle %s verified: %d files, digest %s, %s %s, %d records\n",
		path, len(b.Manifest.Files), short(b.Manifest.Digest), b.Manifest.Tool, b.Manifest.ToolVersion, b.Manifest.Records)
	return b, nil
}

func short(digest string) string {
	if len(digest) > 12 {
		return digest[:12]
	}
	return digest
}

// sealCrawlBundle compacts the archive's manifest shards into the one
// deterministic manifest a bundle requires, then seals everything at
// path. Used by permcrawl after a finished crawl and by permfleet
// after a merged one (which has already run the archive merge — the
// rerun is an idempotent compaction).
func sealCrawlBundle(path, cacheDir, datasetPath, report, tool string, cfg bundle.Config, records int, mr *fleet.MergeReport, key string, stderr io.Writer) error {
	if _, err := diskcache.MergeShards(cacheDir); err != nil {
		return fmt.Errorf("compacting archive: %w", err)
	}
	m, err := bundle.Seal(path, bundle.Spec{
		DatasetPath: datasetPath,
		ArchiveDir:  cacheDir,
		Report:      report,
		Tool:        tool,
		ToolVersion: core.ToolVersion,
		Config:      cfg,
		Records:     records,
		FleetMerge:  mr,
		Key:         key,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "bundle sealed at %s: %d files, digest %s\n", path, len(m.Files), short(m.Digest))
	return nil
}

// diffBundlesCmd is permreport -diff-bundles: verify both bundles,
// re-run analysis on each sealed dataset, and render the longitudinal
// drift between them. Tables are computed unbounded so new/vanished
// permissions are real drift, never top-N truncation.
func diffBundlesCmd(beforePath, afterPath, key string, asJSON bool, stdout, stderr io.Writer) int {
	load := func(path string) (analysis.ReportData, string, error) {
		b, err := openVerified(path, key, stderr)
		if err != nil {
			return analysis.ReportData{}, "", err
		}
		defer b.Close()
		ds, err := b.Dataset()
		if err != nil {
			return analysis.ReportData{}, "", err
		}
		label := filepath.Base(path)
		if era := b.Manifest.Config.Era; era != 0 {
			label = fmt.Sprintf("%s [era %d]", label, era)
		}
		return analysis.New(ds).ReportData(0), label, nil
	}
	before, labelA, err := load(beforePath)
	if err != nil {
		fmt.Fprintln(stderr, "permreport:", err)
		return 1
	}
	after, labelB, err := load(afterPath)
	if err != nil {
		fmt.Fprintln(stderr, "permreport:", err)
		return 1
	}
	drift := analysis.Diff(before, after, labelA, labelB)
	if asJSON {
		out, err := json.MarshalIndent(drift, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "permreport:", err)
			return 1
		}
		stdout.Write(out)
		fmt.Fprintln(stdout)
		return 0
	}
	fmt.Fprintln(stdout, drift)
	return 0
}

// scanCrawlConfig best-effort extracts the population knobs a bundle
// records from a raw permcrawl argument list (the fleet's passthrough
// args). Unknown flags are ignored; values mirror permcrawl's
// defaults. Both "-flag v" and "-flag=v" spellings are handled.
func scanCrawlConfig(args []string) bundle.Config {
	cfg := bundle.Config{Sites: 5000, Seed: 1, Flags: args}
	value := func(i int) (string, bool) {
		if eq := strings.IndexByte(args[i], '='); eq >= 0 {
			return args[i][eq+1:], true
		}
		if i+1 < len(args) {
			return args[i+1], true
		}
		return "", false
	}
	for i := 0; i < len(args); i++ {
		name := strings.TrimLeft(args[i], "-")
		if eq := strings.IndexByte(name, '='); eq >= 0 {
			name = name[:eq]
		}
		switch name {
		case "sites":
			if v, ok := value(i); ok {
				if n, err := strconv.Atoi(v); err == nil {
					cfg.Sites = n
				}
			}
		case "seed":
			if v, ok := value(i); ok {
				if n, err := strconv.ParseInt(v, 10, 64); err == nil {
					cfg.Seed = n
				}
			}
		case "era":
			if v, ok := value(i); ok {
				if n, err := strconv.Atoi(v); err == nil {
					cfg.Era = n
				}
			}
		case "chaos":
			cfg.Chaos = true
		case "chaos-faults":
			if v, ok := value(i); ok {
				cfg.ChaosFaults = v
			}
		}
	}
	return cfg
}
