package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// quickSupervisor shrinks the supervisor tunables so fake-worker soaks
// finish in milliseconds instead of the production backoff schedule.
func quickSupervisor(t *testing.T) {
	t.Helper()
	base, cap, grace := restartBackoffBase, restartBackoffMax, workerGrace
	restartBackoffBase = 5 * time.Millisecond
	restartBackoffMax = 20 * time.Millisecond
	workerGrace = 2 * time.Second
	t.Cleanup(func() { restartBackoffBase, restartBackoffMax, workerGrace = base, cap, grace })
}

// writeScript drops an executable /bin/sh fake worker into dir.
func writeScript(t *testing.T, dir, name, body string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte("#!/bin/sh\n"+body), 0o755); err != nil {
		t.Fatal(err)
	}
	return p
}

func testSpec(bin, dir string) workerSpec {
	return workerSpec{
		bin:         bin,
		shard:       0,
		args:        []string{WorkerSentinel, "-sites", "40"},
		heartbeat:   filepath.Join(dir, "hb"),
		maxRestarts: 3,
		out:         &prefixWriter{w: io.Discard},
	}
}

// TestSuperviseShardCrashThenResume: a worker that dies once is
// relaunched — with -resume appended so completed ranks are read back
// from its checkpoint — and the shard still succeeds.
func TestSuperviseShardCrashThenResume(t *testing.T) {
	quickSupervisor(t)
	dir := t.TempDir()
	marker := filepath.Join(dir, "crashed-once")
	argLog := filepath.Join(dir, "args.log")
	bin := writeScript(t, dir, "worker.sh", fmt.Sprintf(`echo "$@" >> %q
if [ ! -f %q ]; then touch %q; exit 1; fi
exit 0
`, argLog, marker, marker))

	oc := superviseShard(context.Background(), testSpec(bin, dir), io.Discard)
	if oc.err != nil || oc.restarts != 1 || oc.watchdogKills != 0 {
		t.Fatalf("outcome = %+v, want 1 restart, 0 watchdog kills, nil err", oc)
	}
	raw, err := os.ReadFile(argLog)
	if err != nil {
		t.Fatal(err)
	}
	attempts := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(attempts) != 2 {
		t.Fatalf("worker launched %d times, want 2:\n%s", len(attempts), raw)
	}
	if strings.Contains(attempts[0], "-resume") {
		t.Errorf("first launch already had -resume: %q", attempts[0])
	}
	if !strings.Contains(attempts[1], "-resume") {
		t.Errorf("relaunch missing -resume: %q", attempts[1])
	}
}

// TestSuperviseShardBudgetExhausted: a worker that crashes every time
// burns exactly maxRestarts relaunches and then the supervisor gives
// up with a budget error instead of looping forever.
func TestSuperviseShardBudgetExhausted(t *testing.T) {
	quickSupervisor(t)
	dir := t.TempDir()
	argLog := filepath.Join(dir, "args.log")
	bin := writeScript(t, dir, "worker.sh", fmt.Sprintf("echo x >> %q\nexit 1\n", argLog))
	spec := testSpec(bin, dir)
	spec.maxRestarts = 2

	oc := superviseShard(context.Background(), spec, io.Discard)
	if oc.err == nil || !strings.Contains(oc.err.Error(), "restart budget of 2 exhausted") {
		t.Fatalf("err = %v, want budget exhaustion", oc.err)
	}
	if oc.restarts != 2 {
		t.Errorf("restarts = %d, want 2", oc.restarts)
	}
	raw, _ := os.ReadFile(argLog)
	if got := strings.Count(string(raw), "x"); got != 3 {
		t.Errorf("worker launched %d times, want 3 (initial + 2 restarts)", got)
	}
}

// TestSuperviseShardWatchdogKillsWedgedWorker: a worker that is alive
// but making no progress (its heartbeat never advances) is SIGKILLed
// by the watchdog and restarted; the relaunch completes the shard.
func TestSuperviseShardWatchdogKillsWedgedWorker(t *testing.T) {
	quickSupervisor(t)
	dir := t.TempDir()
	marker := filepath.Join(dir, "wedged-once")
	// exec replaces the shell with sleep, so the watchdog's SIGKILL hits
	// the sleeping process itself and Wait returns promptly.
	bin := writeScript(t, dir, "worker.sh", fmt.Sprintf(`if [ ! -f %q ]; then touch %q; exec sleep 60; fi
exit 0
`, marker, marker))
	spec := testSpec(bin, dir)
	spec.watchdog = 150 * time.Millisecond

	var driverLog bytes.Buffer
	start := time.Now()
	oc := superviseShard(context.Background(), spec, &driverLog)
	if oc.err != nil || oc.restarts != 1 || oc.watchdogKills != 1 {
		t.Fatalf("outcome = %+v, want 1 restart, 1 watchdog kill, nil err", oc)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("wedged worker held the shard for %s; watchdog too slow", elapsed)
	}
	if !strings.Contains(driverLog.String(), "watchdog: no progress") {
		t.Errorf("driver log missing watchdog notice:\n%s", driverLog.String())
	}
}

// TestSuperviseShardHeartbeatDefersWatchdog: a slow worker whose
// heartbeat keeps advancing is NOT killed — the watchdog acts on
// progress, not wall-clock runtime.
func TestSuperviseShardHeartbeatDefersWatchdog(t *testing.T) {
	quickSupervisor(t)
	dir := t.TempDir()
	hb := filepath.Join(dir, "hb")
	// Runs ~8 watchdog periods but touches the heartbeat every ~2.
	bin := writeScript(t, dir, "worker.sh", fmt.Sprintf(`for i in 1 2 3 4; do sleep 0.2; touch %q; done
exit 0
`, hb))
	spec := testSpec(bin, dir)
	spec.heartbeat = hb
	spec.watchdog = 500 * time.Millisecond

	oc := superviseShard(context.Background(), spec, io.Discard)
	if oc.err != nil || oc.watchdogKills != 0 {
		t.Fatalf("outcome = %+v, want no kills for a heartbeating worker", oc)
	}
}

// TestSuperviseShardGracefulInterrupt: canceling the supervisor's
// context delivers SIGTERM (not SIGKILL) to the worker, which gets to
// run its shutdown path; the supervisor reports the interruption
// without burning a restart.
func TestSuperviseShardGracefulInterrupt(t *testing.T) {
	quickSupervisor(t)
	dir := t.TempDir()
	termLog := filepath.Join(dir, "term.log")
	bin := writeScript(t, dir, "worker.sh", fmt.Sprintf(`trap 'echo checkpointed >> %q; exit 3' TERM
sleep 30 &
wait $!
`, termLog))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(200 * time.Millisecond)
		cancel()
	}()

	oc := superviseShard(ctx, testSpec(bin, dir), io.Discard)
	if oc.err == nil || !strings.Contains(oc.err.Error(), "interrupted") {
		t.Fatalf("err = %v, want interrupted", oc.err)
	}
	if oc.restarts != 0 {
		t.Errorf("restarts = %d, want 0 — interruption must not burn the budget", oc.restarts)
	}
	raw, err := os.ReadFile(termLog)
	if err != nil || !strings.Contains(string(raw), "checkpointed") {
		t.Errorf("worker never saw SIGTERM (log: %q, %v) — was it SIGKILLed?", raw, err)
	}
}

// fakeWorkerScript builds a fleet-shaped fake worker: it parses the
// driver-appended flags, writes a valid shard checkpoint and stats
// file, and — for shard 0 only — crashes once after a partial
// checkpoint, then demands -resume on the relaunch (exit 9 loudly if
// the supervisor forgot it).
func fakeWorkerScript(t *testing.T, dir string) string {
	t.Helper()
	marker := filepath.Join(dir, "shard0-crashed")
	return writeScript(t, dir, "worker.sh", fmt.Sprintf(`out=""; stats=""; shard=""; resume=0
while [ $# -gt 0 ]; do
  case "$1" in
    -out) out=$2; shift 2 ;;
    -stats-json) stats=$2; shift 2 ;;
    -shard) shard=$2; shift 2 ;;
    -resume) resume=1; shift ;;
    *) shift ;;
  esac
done
i=${shard%%%%/*}
if [ "$i" = 0 ] && [ ! -f %[1]q ]; then
  touch %[1]q
  printf '{"rank":0,"url":"https://site-0.test/"}\n' > "$out"
  echo "shard 0: simulated crash" >&2
  exit 1
fi
if [ "$i" = 0 ]; then
  [ "$resume" = 1 ] || { echo "relaunch without -resume" >&2; exit 9; }
  printf '{"rank":0,"url":"https://site-0.test/"}\n{"rank":2,"url":"https://site-2.test/"}\n' > "$out"
  printf '{"shard":0,"shards":2,"Crawl":{"Visited":1,"Resumed":1,"MaxReadyDepth":3}}\n' > "$stats"
else
  printf '{"rank":1,"url":"https://site-1.test/"}\n{"rank":3,"url":"https://site-3.test/"}\n' > "$out"
  printf '{"shard":1,"shards":2,"Crawl":{"Visited":2,"Resumed":0,"MaxReadyDepth":5}}\n' > "$stats"
fi
exit 0
`, marker))
}

// TestFleetSupervisorRecoversCrashedWorker drives the whole Fleet
// driver in-process against fake -self workers: shard 0 crashes
// mid-crawl, the supervisor relaunches it with -resume, the merge
// still produces every rank exactly once, the aggregated stats file
// records both the summed totals and the restart ledger, and the
// per-shard files are cleaned up.
func TestFleetSupervisorRecoversCrashedWorker(t *testing.T) {
	quickSupervisor(t)
	dir := t.TempDir()
	bin := fakeWorkerScript(t, dir)
	out := filepath.Join(dir, "fleet.jsonl")

	var stdout, stderr bytes.Buffer
	code := Fleet(context.Background(), []string{
		"-procs", "2", "-out", out, "-self", bin, "-expect-records", "4",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("fleet: code=%d\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "shard 0 recovered after 1 restart") {
		t.Errorf("stderr missing recovery notice:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "fleet stats: visited 3 + resumed 1") {
		t.Errorf("stderr missing summed fleet stats line:\n%s", stderr.String())
	}

	raw, err := os.ReadFile(out + ".stats.json")
	if err != nil {
		t.Fatalf("aggregated stats: %v", err)
	}
	var agg struct {
		Shards []map[string]any `json:"shards"`
		Totals struct {
			Crawl struct {
				Visited       float64
				Resumed       float64
				MaxReadyDepth float64
			}
		} `json:"totals"`
		Supervisor struct {
			Restarts      []int `json:"restarts"`
			WatchdogKills []int `json:"watchdog_kills"`
		} `json:"supervisor"`
	}
	if err := json.Unmarshal(raw, &agg); err != nil {
		t.Fatalf("parsing %s: %v\n%s", out+".stats.json", err, raw)
	}
	if agg.Totals.Crawl.Visited != 3 || agg.Totals.Crawl.Resumed != 1 {
		t.Errorf("totals = visited %v + resumed %v, want 3 + 1", agg.Totals.Crawl.Visited, agg.Totals.Crawl.Resumed)
	}
	if agg.Totals.Crawl.MaxReadyDepth != 5 {
		t.Errorf("MaxReadyDepth total = %v, want max(3,5) = 5", agg.Totals.Crawl.MaxReadyDepth)
	}
	if len(agg.Shards) != 2 || agg.Shards[0] == nil || agg.Shards[1] == nil {
		t.Errorf("aggregated stats missing per-shard breakdown: %s", raw)
	}
	if want := []int{1, 0}; len(agg.Supervisor.Restarts) != 2 ||
		agg.Supervisor.Restarts[0] != want[0] || agg.Supervisor.Restarts[1] != want[1] {
		t.Errorf("supervisor restarts = %v, want %v", agg.Supervisor.Restarts, want)
	}

	// Cleanup: shard checkpoints, per-shard stats, and heartbeats gone.
	for i := 0; i < 2; i++ {
		for _, p := range []string{
			fmt.Sprintf("%s.shard%d", out, i),
			fmt.Sprintf("%s.shard%d.stats.json", out, i),
			fmt.Sprintf("%s.shard%d.heartbeat", out, i),
		} {
			if _, err := os.Stat(p); !os.IsNotExist(err) {
				t.Errorf("per-shard file survived cleanup: %s", p)
			}
		}
	}
}

// TestFleetBudgetExhaustedKeepsShards: when a shard never comes back
// the driver reports the failure, keeps every shard file for a
// -merge-only rerun, and exits nonzero.
func TestFleetBudgetExhaustedKeepsShards(t *testing.T) {
	quickSupervisor(t)
	dir := t.TempDir()
	bin := writeScript(t, dir, "worker.sh", `out=""; shard=""
while [ $# -gt 0 ]; do
  case "$1" in
    -out) out=$2; shift 2 ;;
    -shard) shard=$2; shift 2 ;;
    *) shift ;;
  esac
done
case "$shard" in
  0/*) printf '{"rank":0,"url":"https://site-0.test/"}\n' > "$out"; exit 0 ;;
  *) exit 1 ;;
esac
`)
	out := filepath.Join(dir, "fleet.jsonl")
	var stdout, stderr bytes.Buffer
	code := Fleet(context.Background(), []string{
		"-procs", "2", "-out", out, "-self", bin, "-max-restarts", "1",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("fleet with dead shard: code=%d, want 1\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "restart budget of 1 exhausted") {
		t.Errorf("stderr missing budget exhaustion:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "-merge-only") {
		t.Errorf("stderr missing -merge-only hint:\n%s", stderr.String())
	}
	if _, err := os.Stat(out + ".shard0"); err != nil {
		t.Errorf("healthy shard checkpoint removed on failure: %v", err)
	}
}

// TestFleetInterruptedMergesPartial: canceling the driver SIGTERMs the
// workers, and the driver still merges whatever their checkpoints
// hold, keeping the shard files for a full resume.
func TestFleetInterruptedMergesPartial(t *testing.T) {
	quickSupervisor(t)
	dir := t.TempDir()
	bin := writeScript(t, dir, "worker.sh", `out=""; shard=""
while [ $# -gt 0 ]; do
  case "$1" in
    -out) out=$2; shift 2 ;;
    -shard) shard=$2; shift 2 ;;
    *) shift ;;
  esac
done
i=${shard%%/*}
printf '{"rank":%d,"url":"https://site-%d.test/"}\n' "$i" "$i" > "$out"
trap 'exit 3' TERM
sleep 30 &
wait $!
`)
	out := filepath.Join(dir, "fleet.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()
	var stdout, stderr bytes.Buffer
	code := Fleet(ctx, []string{"-procs", "2", "-out", out, "-self", bin}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("interrupted fleet: code=%d, want 1\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "interrupted; merging completed shard checkpoints") {
		t.Errorf("stderr missing interruption notice:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "partial dataset written") {
		t.Errorf("stderr missing partial merge:\n%s", stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("partial dataset: %v", err)
	}
	if got := strings.Count(string(raw), `"url"`); got != 2 {
		t.Errorf("partial dataset has %d records, want 2:\n%s", got, raw)
	}
	for i := 0; i < 2; i++ {
		if _, err := os.Stat(fmt.Sprintf("%s.shard%d", out, i)); err != nil {
			t.Errorf("shard %d checkpoint removed after interruption: %v", i, err)
		}
	}
}
