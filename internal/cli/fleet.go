package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"permodyssey/internal/analysis"
	"permodyssey/internal/diskcache"
	"permodyssey/internal/fleet"
)

// WorkerSentinel is the first argument that makes the permfleet binary
// run as a crawl worker instead of the driver: the driver re-execs its
// own binary so the fleet needs no second executable on PATH.
const WorkerSentinel = "crawl-worker"

// ParseShardSpec parses the -shard "i/n" flag into (shard, shards).
// The empty spec means no sharding (0, 0).
func ParseShardSpec(spec string) (shard, shards int, err error) {
	if spec == "" {
		return 0, 0, nil
	}
	is, ns, ok := strings.Cut(spec, "/")
	if !ok {
		return 0, 0, fmt.Errorf("-shard %q: want \"i/n\" (e.g. 0/4)", spec)
	}
	shard, err = strconv.Atoi(is)
	if err == nil {
		shards, err = strconv.Atoi(ns)
	}
	if err != nil {
		return 0, 0, fmt.Errorf("-shard %q: want two integers \"i/n\"", spec)
	}
	if shards < 1 || shard < 0 || shard >= shards {
		return 0, 0, fmt.Errorf("-shard %q: want 0 <= i < n", spec)
	}
	return shard, shards, nil
}

// Fleet is the permfleet command: it forks -procs copies of its own
// binary as supervised crawl workers, hands each one rank partition of
// the population (-shard i/n) and its own checkpoint, stats, and
// heartbeat files, lets them populate one shared -cache-dir archive
// through per-shard manifests, and merges the results — datasets via
// fleet.MergeFiles, the archive via diskcache.MergeShards, stats via
// fleet.SumStats — into exactly what one process crawling the whole
// population would have produced.
//
// Each worker runs under a supervisor (superviseShard): a crashed
// worker is relaunched with -resume over its own shard checkpoint
// (completed ranks are never re-crawled) under an exponential-backoff
// restart budget (-max-restarts), a worker whose heartbeat goes stale
// is SIGKILLed and restarted the same way (-watchdog), and driver
// cancellation propagates as SIGTERM so workers checkpoint and exit
// cleanly — after which the driver still merges whatever completed.
//
// Crawl flags for the workers go after "--":
//
//	permfleet -procs 4 -out crawl.jsonl -cache-dir archive -- -sites 2000 -seed 13 -chaos
func Fleet(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("permfleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	procs := fs.Int("procs", 4, "worker processes (each crawls ranks ≡ its index mod -procs)")
	out := fs.String("out", "crawl.jsonl", "merged dataset path; shard i streams to <out>.shard<i>")
	cacheDir := fs.String("cache-dir", "", "shared content-addressed archive directory; each worker appends a per-shard manifest, merged after the crawl")
	self := fs.String("self", "", "worker binary to exec (default: this binary re-execed with a \""+WorkerSentinel+"\" first argument)")
	mergeOnly := fs.Bool("merge-only", false, "skip the crawl; merge existing <out>.shard<i> files (and -cache-dir manifests) from a previous run")
	keepShards := fs.Bool("keep-shards", false, "keep the per-shard dataset, stats, and heartbeat files after a successful merge")
	expect := fs.Int("expect-records", -1, "fail unless the merged dataset has exactly N records (-1 = no check)")
	maxRestarts := fs.Int("max-restarts", 3, "restart budget per shard: relaunch a crashed or watchdog-killed worker with -resume up to N times before giving up")
	watchdog := fs.Duration("watchdog", 2*time.Minute, "SIGKILL and restart a worker whose heartbeat file reports no completed visit for this long (0 disables the watchdog)")
	bundlePath := fs.String("bundle", "", "after a successful merge, seal config, merged dataset, report, and the merged -cache-dir archive into a Web Execution Bundle at this path (directory or .tar.gz)")
	bundleKey := fs.String("bundle-key", "", "HMAC-sign the bundle digest with this key")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: permfleet [driver flags] -- [permcrawl flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *procs < 1 {
		fmt.Fprintln(stderr, "permfleet: -procs must be >= 1")
		return 2
	}
	if *maxRestarts < 0 {
		fmt.Fprintln(stderr, "permfleet: -max-restarts must be >= 0")
		return 2
	}
	if *bundlePath != "" && *cacheDir == "" {
		fmt.Fprintln(stderr, "permfleet: -bundle requires -cache-dir (a bundle seals the resource archive)")
		return 2
	}
	shardPath := func(i int) string { return fmt.Sprintf("%s.shard%d", *out, i) }
	statsPath := func(i int) string { return shardPath(i) + ".stats.json" }
	hbPath := func(i int) string { return shardPath(i) + ".heartbeat" }

	outcomes := make([]shardOutcome, *procs)
	if !*mergeOnly {
		bin := *self
		if bin == "" {
			exe, err := os.Executable()
			if err != nil {
				fmt.Fprintln(stderr, "permfleet: locating own binary:", err)
				return 1
			}
			bin = exe
		}
		// Worker and supervisor goroutines all funnel into stderr; one
		// shared lock keeps their writes whole.
		slog := &syncWriter{w: stderr}
		// Worker argv: the user's crawl flags first, the driver's own
		// assignments last — flag parsing lets later flags win, so the
		// partition, output, and archive wiring cannot be overridden from
		// the passthrough side.
		var wg sync.WaitGroup
		for i := 0; i < *procs; i++ {
			workerArgs := []string{WorkerSentinel}
			workerArgs = append(workerArgs, fs.Args()...)
			workerArgs = append(workerArgs,
				"-shard", fmt.Sprintf("%d/%d", i, *procs),
				"-out", shardPath(i),
				"-stats-json", statsPath(i),
				"-heartbeat", hbPath(i),
			)
			if *cacheDir != "" {
				workerArgs = append(workerArgs, "-cache-dir", *cacheDir)
			}
			spec := workerSpec{
				bin:         bin,
				shard:       i,
				args:        workerArgs,
				heartbeat:   hbPath(i),
				watchdog:    *watchdog,
				maxRestarts: *maxRestarts,
				out:         &prefixWriter{w: slog, prefix: fmt.Sprintf("[shard %d] ", i)},
			}
			wg.Add(1)
			go func(i int, spec workerSpec) {
				defer wg.Done()
				outcomes[i] = superviseShard(ctx, spec, slog)
			}(i, spec)
		}
		wg.Wait()
		for i, oc := range outcomes {
			if oc.restarts > 0 {
				fmt.Fprintf(stderr, "permfleet: shard %d recovered after %d restart(s) (%d watchdog kill(s))\n",
					i, oc.restarts, oc.watchdogKills)
			}
		}
		if ctx.Err() != nil {
			// Interrupted fleet: every worker was SIGTERMed and
			// checkpointed. Merge whatever completed so the partial crawl
			// is inspectable, and keep the shard files for a -merge-only
			// or full -resume rerun.
			fmt.Fprintln(stderr, "permfleet: interrupted; merging completed shard checkpoints (shard files kept)")
			mergePartialShards(*out, *procs, shardPath, stderr)
			return 1
		}
		failed := 0
		for _, oc := range outcomes {
			if oc.err != nil {
				failed++
				fmt.Fprintln(stderr, "permfleet:", oc.err)
			}
		}
		if failed > 0 {
			fmt.Fprintf(stderr, "permfleet: %d of %d workers failed; shard files kept for -merge-only after a fix\n", failed, *procs)
			return 1
		}
	}

	shardPaths := make([]string, *procs)
	for i := range shardPaths {
		shardPaths[i] = shardPath(i)
	}
	merged, rep, err := fleet.MergeFiles(*out, shardPaths...)
	if err != nil {
		fmt.Fprintln(stderr, "permfleet:", err)
		return 1
	}
	fmt.Fprintln(stderr, rep)

	if *cacheDir != "" {
		ms, err := diskcache.MergeShards(*cacheDir)
		if err != nil {
			fmt.Fprintln(stderr, "permfleet: merging archive manifests:", err)
			return 1
		}
		fmt.Fprintf(stderr, "archive: merged %d manifest shards (%d lines) into %d URLs (%d reconciled, %d successes preferred)\n",
			ms.Shards, ms.Lines, ms.URLs, ms.Reconciled, ms.SuccessesPreferred)
		if ms.OrphanTempsSwept > 0 || ms.TornTails > 0 || ms.CorruptLinesDropped > 0 {
			fmt.Fprintf(stderr, "archive fsck: %d orphaned temp files swept, %d torn manifest tails and %d corrupt lines dropped (killed-writer debris repaired)\n",
				ms.OrphanTempsSwept, ms.TornTails, ms.CorruptLinesDropped)
		}
		if ms.MissingObjects > 0 {
			fmt.Fprintf(stderr, "permfleet: DATA LOSS: %d manifest entries have no object in the archive\n", ms.MissingObjects)
			return 1
		}
	}

	if *expect >= 0 && len(merged.Records) != *expect {
		fmt.Fprintf(stderr, "permfleet: merged %d records, want %d — shard files kept for inspection\n", len(merged.Records), *expect)
		return 1
	}

	aggregateStats(*out, *procs, statsPath, outcomes, stderr)

	// Seal after everything above held: the dataset merged, the archive
	// merged with zero missing objects, and the record count expected.
	if *bundlePath != "" {
		cfg := scanCrawlConfig(fs.Args())
		report := analysis.New(merged).FullReport() + "\n"
		if err := sealCrawlBundle(*bundlePath, *cacheDir, *out, report, "permfleet", cfg, len(merged.Records), &rep, *bundleKey, stderr); err != nil {
			fmt.Fprintln(stderr, "permfleet: sealing bundle:", err)
			return 1
		}
	}

	if !*keepShards {
		for i, p := range shardPaths {
			removeReporting(stderr, p)
			removeReporting(stderr, statsPath(i))
			removeReporting(stderr, hbPath(i))
		}
	}
	fmt.Fprintf(stdout, "fleet dataset written to %s (%d records from %d shards)\n", *out, len(merged.Records), *procs)
	return 0
}

// mergePartialShards is the interrupted-fleet merge: whatever shard
// checkpoints exist are reconciled into the output dataset so an
// operator can inspect the partial crawl, without failing on shards
// that never wrote a file. Best-effort by design — the driver is
// already exiting nonzero.
func mergePartialShards(out string, procs int, shardPath func(int) string, stderr io.Writer) {
	var present []string
	for i := 0; i < procs; i++ {
		if _, err := os.Stat(shardPath(i)); err == nil {
			present = append(present, shardPath(i))
		}
	}
	if len(present) == 0 {
		return
	}
	merged, rep, err := fleet.MergeFiles(out, present...)
	if err != nil {
		fmt.Fprintln(stderr, "permfleet: partial merge:", err)
		return
	}
	fmt.Fprintf(stderr, "permfleet: partial dataset written to %s (%d records; resume with -merge-only or re-run the fleet)\n%s\n",
		out, len(merged.Records), rep)
}

// aggregateStats folds the per-shard -stats-json files into one
// <out>.stats.json: the raw per-shard objects, the summed totals
// (fleet.SumStats), and the supervisor's restart ledger. A shard whose
// stats file is missing or unreadable (an older run's leftovers merged
// with -merge-only after the first merge cleaned them up, say) makes
// the degradation explicit instead of silent: the written file always
// lists "missing_shards", totals that cover only a subset say so on
// stderr, and when every stats file is gone the aggregate is still
// rewritten — totals omitted entirely — so a stale <out>.stats.json
// from a previous run can never masquerade as this run's numbers.
func aggregateStats(out string, procs int, statsPath func(int) string, outcomes []shardOutcome, stderr io.Writer) {
	shards := make([]map[string]any, procs)
	var present []map[string]any
	missing := []int{}
	for i := 0; i < procs; i++ {
		raw, err := os.ReadFile(statsPath(i))
		if err != nil {
			fmt.Fprintf(stderr, "permfleet: no stats for shard %d (%v)\n", i, err)
			missing = append(missing, i)
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			fmt.Fprintf(stderr, "permfleet: unreadable stats for shard %d: %v\n", i, err)
			missing = append(missing, i)
			continue
		}
		shards[i] = m
		present = append(present, m)
	}
	restarts := make([]int, procs)
	kills := make([]int, procs)
	for i, oc := range outcomes {
		restarts[i], kills[i] = oc.restarts, oc.watchdogKills
	}
	agg := map[string]any{
		"shards":         shards,
		"missing_shards": missing,
		"supervisor": map[string]any{
			"restarts":       restarts,
			"watchdog_kills": kills,
		},
	}
	var totals map[string]any
	if len(present) > 0 {
		totals = fleet.SumStats(present)
		agg["totals"] = totals
	}
	if len(missing) > 0 {
		fmt.Fprintf(stderr, "permfleet: stats incomplete: shards %v have no stats file; totals cover %d of %d shards\n",
			missing, len(present), procs)
	}
	buf, err := json.MarshalIndent(agg, "", "  ")
	if err == nil {
		err = os.WriteFile(out+".stats.json", append(buf, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintln(stderr, "permfleet: writing aggregated stats:", err)
		return
	}
	if len(present) == 0 {
		fmt.Fprintf(stderr, "permfleet: no shard stats found; %s records the gap (no totals)\n", out+".stats.json")
		return
	}
	visited, resumed := crawlTotals(totals)
	fmt.Fprintf(stderr, "fleet stats: visited %d + resumed %d across %d shards; restarts %v, watchdog kills %v; totals in %s\n",
		visited, resumed, len(present), restarts, kills, out+".stats.json")
}

// crawlTotals pulls the crawl counters the kill-injection soak asserts
// on (visited live + resumed from checkpoints = every rank exactly
// once) out of a summed stats object.
func crawlTotals(totals map[string]any) (visited, resumed int) {
	crawl, _ := totals["Crawl"].(map[string]any)
	v, _ := crawl["Visited"].(float64)
	r, _ := crawl["Resumed"].(float64)
	return int(v), int(r)
}

// removeReporting removes path, reporting — not failing on — anything
// unexpected. A shard file that refuses to delete is a nuisance; the
// merged dataset it fed is already safe.
func removeReporting(stderr io.Writer, path string) {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		fmt.Fprintf(stderr, "permfleet: removing %s: %v\n", path, err)
	}
}

// syncWriter serializes concurrent writers (per-shard prefix writers,
// supervisor restart notices) onto one underlying stream.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(b []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(b)
}

// prefixWriter tags every line of a worker's interleaved output with
// its shard, buffering partial lines so concurrent workers cannot
// splice into each other mid-line.
type prefixWriter struct {
	mu     sync.Mutex
	w      io.Writer
	prefix string
	buf    bytes.Buffer
}

func (p *prefixWriter) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.buf.Write(b)
	for {
		line, err := p.buf.ReadString('\n')
		if err != nil {
			// Partial line: keep it buffered for the next write.
			p.buf.WriteString(line)
			break
		}
		fmt.Fprintf(p.w, "%s%s", p.prefix, line)
	}
	return len(b), nil
}

// Flush writes any buffered partial final line.
func (p *prefixWriter) Flush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.buf.Len() > 0 {
		fmt.Fprintf(p.w, "%s%s\n", p.prefix, p.buf.String())
		p.buf.Reset()
	}
}
