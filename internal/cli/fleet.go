package cli

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"

	"permodyssey/internal/diskcache"
	"permodyssey/internal/fleet"
)

// WorkerSentinel is the first argument that makes the permfleet binary
// run as a crawl worker instead of the driver: the driver re-execs its
// own binary so the fleet needs no second executable on PATH.
const WorkerSentinel = "crawl-worker"

// ParseShardSpec parses the -shard "i/n" flag into (shard, shards).
// The empty spec means no sharding (0, 0).
func ParseShardSpec(spec string) (shard, shards int, err error) {
	if spec == "" {
		return 0, 0, nil
	}
	is, ns, ok := strings.Cut(spec, "/")
	if !ok {
		return 0, 0, fmt.Errorf("-shard %q: want \"i/n\" (e.g. 0/4)", spec)
	}
	shard, err = strconv.Atoi(is)
	if err == nil {
		shards, err = strconv.Atoi(ns)
	}
	if err != nil {
		return 0, 0, fmt.Errorf("-shard %q: want two integers \"i/n\"", spec)
	}
	if shards < 1 || shard < 0 || shard >= shards {
		return 0, 0, fmt.Errorf("-shard %q: want 0 <= i < n", spec)
	}
	return shard, shards, nil
}

// Fleet is the permfleet command: it forks -procs copies of its own
// binary as crawl workers, hands each one rank partition of the
// population (-shard i/n) and its own checkpoint and stats files, lets
// them populate one shared -cache-dir archive through per-shard
// manifests, and merges the results — datasets via fleet.MergeFiles,
// the archive via diskcache.MergeShards — into exactly what one
// process crawling the whole population would have produced.
//
// Crawl flags for the workers go after "--":
//
//	permfleet -procs 4 -out crawl.jsonl -cache-dir archive -- -sites 2000 -seed 13 -chaos
func Fleet(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("permfleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	procs := fs.Int("procs", 4, "worker processes (each crawls ranks ≡ its index mod -procs)")
	out := fs.String("out", "crawl.jsonl", "merged dataset path; shard i streams to <out>.shard<i>")
	cacheDir := fs.String("cache-dir", "", "shared content-addressed archive directory; each worker appends a per-shard manifest, merged after the crawl")
	self := fs.String("self", "", "worker binary to exec (default: this binary re-execed with a \""+WorkerSentinel+"\" first argument)")
	mergeOnly := fs.Bool("merge-only", false, "skip the crawl; merge existing <out>.shard<i> files (and -cache-dir manifests) from a previous run")
	keepShards := fs.Bool("keep-shards", false, "keep the per-shard dataset files after a successful merge")
	expect := fs.Int("expect-records", -1, "fail unless the merged dataset has exactly N records (-1 = no check)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: permfleet [driver flags] -- [permcrawl flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *procs < 1 {
		fmt.Fprintln(stderr, "permfleet: -procs must be >= 1")
		return 2
	}
	shardPath := func(i int) string { return fmt.Sprintf("%s.shard%d", *out, i) }

	if !*mergeOnly {
		bin := *self
		if bin == "" {
			exe, err := os.Executable()
			if err != nil {
				fmt.Fprintln(stderr, "permfleet: locating own binary:", err)
				return 1
			}
			bin = exe
		}
		// Worker argv: the user's crawl flags first, the driver's own
		// assignments last — flag parsing lets later flags win, so the
		// partition, output, and archive wiring cannot be overridden from
		// the passthrough side.
		var wg sync.WaitGroup
		errs := make([]error, *procs)
		for i := 0; i < *procs; i++ {
			workerArgs := []string{WorkerSentinel}
			workerArgs = append(workerArgs, fs.Args()...)
			workerArgs = append(workerArgs,
				"-shard", fmt.Sprintf("%d/%d", i, *procs),
				"-out", shardPath(i),
				"-stats-json", shardPath(i)+".stats.json",
			)
			if *cacheDir != "" {
				workerArgs = append(workerArgs, "-cache-dir", *cacheDir)
			}
			cmd := exec.CommandContext(ctx, bin, workerArgs...)
			pw := &prefixWriter{w: stderr, prefix: fmt.Sprintf("[shard %d] ", i)}
			cmd.Stdout = pw
			cmd.Stderr = pw
			wg.Add(1)
			go func(i int, cmd *exec.Cmd, pw *prefixWriter) {
				defer wg.Done()
				err := cmd.Run()
				pw.Flush()
				if err != nil {
					errs[i] = fmt.Errorf("shard %d: %w", i, err)
				}
			}(i, cmd, pw)
		}
		wg.Wait()
		failed := 0
		for _, err := range errs {
			if err != nil {
				failed++
				fmt.Fprintln(stderr, "permfleet:", err)
			}
		}
		if failed > 0 {
			fmt.Fprintf(stderr, "permfleet: %d of %d workers failed; shard files kept for -merge-only after a fix\n", failed, *procs)
			return 1
		}
	}

	shardPaths := make([]string, *procs)
	for i := range shardPaths {
		shardPaths[i] = shardPath(i)
	}
	merged, rep, err := fleet.MergeFiles(*out, shardPaths...)
	if err != nil {
		fmt.Fprintln(stderr, "permfleet:", err)
		return 1
	}
	fmt.Fprintln(stderr, rep)

	if *cacheDir != "" {
		ms, err := diskcache.MergeShards(*cacheDir)
		if err != nil {
			fmt.Fprintln(stderr, "permfleet: merging archive manifests:", err)
			return 1
		}
		fmt.Fprintf(stderr, "archive: merged %d manifest shards (%d lines) into %d URLs (%d reconciled, %d successes preferred)\n",
			ms.Shards, ms.Lines, ms.URLs, ms.Reconciled, ms.SuccessesPreferred)
		if ms.MissingObjects > 0 {
			fmt.Fprintf(stderr, "permfleet: DATA LOSS: %d manifest entries have no object in the archive\n", ms.MissingObjects)
			return 1
		}
	}

	if *expect >= 0 && len(merged.Records) != *expect {
		fmt.Fprintf(stderr, "permfleet: merged %d records, want %d — shard files kept for inspection\n", len(merged.Records), *expect)
		return 1
	}
	if !*keepShards {
		for _, p := range shardPaths {
			os.Remove(p)
		}
	}
	fmt.Fprintf(stdout, "fleet dataset written to %s (%d records from %d shards)\n", *out, len(merged.Records), *procs)
	return 0
}

// prefixWriter tags every line of a worker's interleaved output with
// its shard, buffering partial lines so concurrent workers cannot
// splice into each other mid-line.
type prefixWriter struct {
	mu     sync.Mutex
	w      io.Writer
	prefix string
	buf    bytes.Buffer
}

func (p *prefixWriter) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.buf.Write(b)
	for {
		line, err := p.buf.ReadString('\n')
		if err != nil {
			// Partial line: keep it buffered for the next write.
			p.buf.WriteString(line)
			break
		}
		fmt.Fprintf(p.w, "%s%s", p.prefix, line)
	}
	return len(b), nil
}

// Flush writes any buffered partial final line.
func (p *prefixWriter) Flush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.buf.Len() > 0 {
		fmt.Fprintf(p.w, "%s%s\n", p.prefix, p.buf.String())
		p.buf.Reset()
	}
}
