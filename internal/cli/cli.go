// Package cli implements the command-line surface behind the cmd/
// binaries as testable functions: each takes raw arguments and output
// writers and returns a process exit code. The main packages are thin
// wrappers, so the entire command behaviour is covered by unit tests.
package cli

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"permodyssey/internal/analysis"
	"permodyssey/internal/core"
	"permodyssey/internal/permissions"
	"permodyssey/internal/policy"
	"permodyssey/internal/store"
)

// Lint is the policylint command.
func Lint(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("policylint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	header := fs.String("header", "", "Permissions-Policy header value to lint")
	fpHeader := fs.String("feature-policy", "", "legacy Feature-Policy header value to lint")
	allow := fs.String("allow", "", "iframe allow attribute to lint")
	embedded := fs.Bool("embedded", false, "lint as an embedded document's header")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *header == "" && *allow == "" && *fpHeader == "" {
		fs.Usage()
		return 2
	}
	exit := 0
	printIssues := func(scope string, issues []policy.Issue) {
		if len(issues) == 0 {
			fmt.Fprintf(stdout, "%s: no issues\n", scope)
			return
		}
		for _, i := range issues {
			fmt.Fprintf(stdout, "%s: %s\n", scope, i)
		}
		exit = 1
	}
	if *header != "" {
		issues := policy.Lint(*header, !*embedded)
		if policy.HasBlockingIssue(issues) {
			fmt.Fprintln(stdout, "INVALID: the browser drops this header entirely; default allowlists apply")
			exit = 1
		} else if p, _, err := policy.ParsePermissionsPolicy(*header); err == nil {
			fmt.Fprintf(stdout, "parsed %d directives: %s\n", len(p.Directives), p.HeaderValue())
		}
		printIssues("header", issues)
	}
	if *fpHeader != "" {
		p, issues := policy.ParseFeaturePolicy(*fpHeader)
		fmt.Fprintf(stdout, "feature-policy parsed %d directives (deprecated; only Chromium still enforces it)\n", len(p.Directives))
		printIssues("feature-policy", issues)
	}
	if *allow != "" {
		p, issues := policy.ParseAllowAttr(*allow)
		fmt.Fprintf(stdout, "allow attribute parsed %d directives: %s\n", len(p.Directives), p.AllowAttrValue())
		for _, d := range p.Directives {
			if d.Allowlist.All {
				issues = append(issues, policy.Issue{
					Kind: policy.IssueContradictory, Feature: d.Feature,
					Detail: "wildcard delegation survives redirects of the iframe (§5.2); pin the origin",
				})
			}
		}
		printIssues("allow", issues)
	}
	return exit
}

// Gen is the policygen command.
func Gen(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("policygen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mode := fs.String("mode", "disable-powerful", "disable-all | disable-powerful | from-usage")
	browserName := fs.String("browser", "chromium", "chromium | firefox | safari")
	version := fs.Int("version", 127, "browser major version")
	used := fs.String("used", "", "comma-separated permissions the site uses (from-usage)")
	delegate := fs.String("delegate", "", "comma-separated perm=origin pairs needing delegation")
	allow := fs.String("allow", "", "emit a minimal allow attribute for these permissions instead")
	reportOnly := fs.Bool("report-only", false, "emit as Permissions-Policy-Report-Only (trial before enforcing)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *allow != "" {
		attr, err := core.GenerateAllowAttr(splitList(*allow))
		if err != nil {
			fmt.Fprintln(stderr, "policygen:", err)
			return 1
		}
		fmt.Fprintf(stdout, "allow=%q\n", attr)
		return 0
	}
	in := core.GeneratorInput{Version: *version, DelegatedTo: map[string][]string{}}
	switch *mode {
	case "disable-all":
		in.Mode = core.DisableAll
	case "disable-powerful":
		in.Mode = core.DisablePowerful
	case "from-usage":
		in.Mode = core.FromUsage
		in.UsedPermissions = splitList(*used)
	default:
		fmt.Fprintf(stderr, "policygen: unknown mode %q\n", *mode)
		return 2
	}
	switch strings.ToLower(*browserName) {
	case "chromium", "chrome":
		in.Browser = permissions.Chromium
	case "firefox":
		in.Browser = permissions.Firefox
	case "safari":
		in.Browser = permissions.Safari
	default:
		fmt.Fprintf(stderr, "policygen: unknown browser %q\n", *browserName)
		return 2
	}
	for _, pair := range splitList(*delegate) {
		perm, org, ok := strings.Cut(pair, "=")
		if !ok {
			fmt.Fprintf(stderr, "policygen: bad -delegate entry %q (want perm=origin)\n", pair)
			return 2
		}
		in.DelegatedTo[perm] = append(in.DelegatedTo[perm], org)
		found := false
		for _, u := range in.UsedPermissions {
			if u == perm {
				found = true
			}
		}
		if !found {
			in.UsedPermissions = append(in.UsedPermissions, perm)
		}
	}
	if *reportOnly {
		value, err := core.GenerateReportOnly(in, "default")
		if err != nil {
			fmt.Fprintln(stderr, "policygen:", err)
			return 1
		}
		fmt.Fprintf(stdout, "Permissions-Policy-Report-Only: %s\n", value)
		return 0
	}
	header, err := core.Generate(in)
	if err != nil {
		fmt.Fprintln(stderr, "policygen:", err)
		return 1
	}
	fmt.Fprintf(stdout, "Permissions-Policy: %s\n", header)
	return 0
}

// Support is the permsupport command.
func Support(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("permsupport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	chromium := fs.Int("chromium", 127, "Chromium version")
	firefox := fs.Int("firefox", 128, "Firefox version")
	safari := fs.Int("safari", 17, "Safari version")
	changes := fs.String("changes", "", "print support changes for this engine instead")
	from := fs.Int("from", 80, "change window start (exclusive)")
	to := fs.Int("to", 127, "change window end (inclusive)")
	identify := fs.String("identify", "", "comma-separated permission surface to fingerprint back to engine versions")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *identify != "" {
		ranges := permissions.IdentifyFromSurface(splitList(*identify))
		if len(ranges) == 0 {
			fmt.Fprintln(stdout, "surface matches no known engine/version")
			return 1
		}
		for _, r := range ranges {
			fmt.Fprintln(stdout, r)
		}
		return 0
	}
	if *changes != "" {
		b, ok := parseBrowser(*changes)
		if !ok {
			fmt.Fprintf(stderr, "permsupport: unknown engine %q\n", *changes)
			return 2
		}
		fmt.Fprint(stdout, core.SupportChanges(b, *from, *to))
		return 0
	}
	fmt.Fprint(stdout, core.SupportTable(map[permissions.Browser]int{
		permissions.Chromium: *chromium,
		permissions.Firefox:  *firefox,
		permissions.Safari:   *safari,
	}))
	return 0
}

// Report is the permreport command. Analysis is the only thing it
// ever runs: whether the dataset comes from -in or from a sealed
// bundle (-from-bundle, verified first), no browser, network, or
// script interpreter is involved — the Web Execution Bundles replay
// model.
func Report(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("permreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "crawl.jsonl", "dataset path (JSONL from permcrawl)")
	fromBundle := fs.String("from-bundle", "", "analyze a sealed crawl bundle (directory or .tar.gz) instead of -in: verify its digest, then re-run analysis only")
	diffBundles := fs.Bool("diff-bundles", false, "longitudinal mode: diff two sealed bundles given as positional arguments into a drift report")
	key := fs.String("bundle-key", "", "HMAC key for verifying signed bundles")
	table := fs.String("table", "", "single table: 3,4,5,6,7,8,9,10,fig2,failures,directives")
	topN := fs.Int("n", 10, "rows per ranking table")
	asJSON := fs.Bool("json", false, "emit the full report as JSON")
	asHTML := fs.Bool("html", false, "emit the full report as HTML")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *diffBundles {
		if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "permreport: -diff-bundles wants exactly two bundle paths (before after)")
			return 2
		}
		return diffBundlesCmd(fs.Arg(0), fs.Arg(1), *key, *asJSON, stdout, stderr)
	}
	var ds *store.Dataset
	var src string
	if *fromBundle != "" {
		b, err := openVerified(*fromBundle, *key, stderr)
		if err != nil {
			fmt.Fprintln(stderr, "permreport:", err)
			return 1
		}
		defer b.Close()
		ds, err = b.Dataset()
		if err != nil {
			fmt.Fprintln(stderr, "permreport:", err)
			return 1
		}
		src = *fromBundle
	} else {
		var err error
		ds, err = store.LoadFile(*in)
		if err != nil {
			fmt.Fprintln(stderr, "permreport:", err)
			return 1
		}
		src = *in
	}
	a := analysis.New(ds)
	// An empty or fully-failed dataset renders clean zero rows, but a
	// report over nothing is almost never what the caller wanted: warn
	// (on stderr, keeping stdout byte-comparable) and exit nonzero.
	exit := 0
	if a.Websites() == 0 {
		fmt.Fprintf(stderr, "permreport: warning: %s has no analyzable records (%d records, all failed or partial); tables are zero rows\n",
			src, a.TotalRecords())
		exit = 1
	}
	switch {
	case *asHTML:
		fmt.Fprint(stdout, a.HTML(*topN))
		return exit
	case *asJSON:
		out, err := a.JSON(*topN)
		if err != nil {
			fmt.Fprintln(stderr, "permreport:", err)
			return 1
		}
		stdout.Write(out)
		fmt.Fprintln(stdout)
		return exit
	}
	switch *table {
	case "":
		fmt.Fprintln(stdout, a.FullReport())
	case "3":
		rows, total := a.Table3TopEmbeds(*topN)
		fmt.Fprintln(stdout, analysis.RenderTable3(rows, total))
	case "4":
		rows, totalRow, _ := a.Table4Invocations(*topN)
		fmt.Fprintln(stdout, analysis.RenderTable4(rows, totalRow))
	case "5":
		rows, totalRow, _ := a.Table5StatusChecks(*topN)
		fmt.Fprintln(stdout, analysis.RenderTable5(rows, totalRow))
	case "6":
		rows, totalRow, _ := a.Table6Static(*topN)
		fmt.Fprintln(stdout, analysis.RenderTable6(rows, totalRow))
	case "7":
		rows, total := a.Table7DelegatedEmbeds(*topN)
		fmt.Fprintln(stdout, analysis.RenderTable7(rows, total))
	case "8":
		rows, totalRow := a.Table8DelegatedPermissions(*topN)
		fmt.Fprintln(stdout, analysis.RenderTable8(rows, totalRow))
	case "9":
		rows, totalRow, _ := a.Table9HeaderDirectives(*topN)
		fmt.Fprintln(stdout, analysis.RenderTable9(rows, totalRow))
	case "10", "13":
		rows, total := a.OverPermissioned(analysis.DefaultOverPermissionConfig(), *topN)
		fmt.Fprintln(stdout, analysis.RenderTable10(rows, total))
	case "fig2":
		fmt.Fprintln(stdout, analysis.RenderFigure2(a.Figure2Adoption()))
	case "failures":
		fmt.Fprintln(stdout, analysis.RenderFailures(a.FailureTaxonomy()))
	case "directives":
		fmt.Fprintln(stdout, analysis.RenderDirectiveShares(a.DelegationDirectives()))
	default:
		fmt.Fprintf(stderr, "permreport: unknown table %q\n", *table)
		return 2
	}
	return exit
}

// PoC is the localscheme-poc command.
func PoC(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("localscheme-poc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	top := fs.String("top", "https://example.org", "victim top-level origin")
	attacker := fs.String("attacker", "https://attacker.example", "third-party origin receiving the hijacked delegation")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	out, err := core.RenderSpecIssue(*top, *attacker)
	if err != nil {
		fmt.Fprintln(stderr, "localscheme-poc:", err)
		return 1
	}
	fmt.Fprint(stdout, out)
	return 0
}

func parseBrowser(name string) (permissions.Browser, bool) {
	switch strings.ToLower(name) {
	case "chromium", "chrome":
		return permissions.Chromium, true
	case "firefox":
		return permissions.Firefox, true
	case "safari":
		return permissions.Safari, true
	}
	return 0, false
}

func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
