package cli

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"syscall"
	"time"
)

// Supervisor tunables. Package variables rather than flags: the tests
// shrink them to keep fake-worker soaks fast; production runs never
// need to.
var (
	// workerGrace is how long a SIGTERMed worker gets to checkpoint and
	// exit before exec forcibly kills it (cmd.WaitDelay), and likewise
	// how long a watchdog-killed worker's pipes may take to drain.
	workerGrace = 10 * time.Second
	// restartBackoffBase is the delay before the first relaunch of a
	// failed worker; it doubles per restart, capped at restartBackoffMax.
	restartBackoffBase = 500 * time.Millisecond
	restartBackoffMax  = 30 * time.Second
)

// workerSpec describes one shard's worker process to its supervisor.
type workerSpec struct {
	bin   string
	shard int
	// args is the worker argv for a fresh launch; relaunches append
	// "-resume" so the worker skips every rank its checkpoint already
	// covers instead of re-crawling them.
	args []string
	// heartbeat is the file the worker touches on every completed
	// visit; its mtime going stale is what the watchdog acts on.
	heartbeat string
	// watchdog is the no-progress deadline past which the worker is
	// SIGKILLed and restarted. 0 disables the watchdog.
	watchdog time.Duration
	// maxRestarts is the restart budget: how many relaunches (crash or
	// watchdog kill alike) this shard gets before the supervisor gives
	// up on it.
	maxRestarts int
	// out receives the worker's interleaved stdout+stderr (the fleet's
	// line-prefixed writer).
	out *prefixWriter
}

// shardOutcome is what one shard's supervisor reports back: how many
// times it had to relaunch the worker, how many of those were watchdog
// kills of a wedged process, and the terminal error if the shard never
// completed (nil after a success, however many restarts it took).
type shardOutcome struct {
	restarts      int
	watchdogKills int
	err           error
}

// superviseShard runs one shard's worker to completion, restarting it
// on crashes and watchdog-detected hangs.
//
// The restart state machine:
//
//	launch ──────────────► running
//	  ▲                      │
//	  │          ┌───────────┼─────────────┐
//	  │          │ exit 0    │ exit != 0   │ heartbeat stale
//	  │          ▼           ▼             ▼
//	  │        done        crashed      SIGKILL (wedged)
//	  │                      │             │
//	  │                      └──────┬──────┘
//	  │       budget left: backoff, │ relaunch with -resume
//	  └──────────────────────────────┘
//	                 budget exhausted (or ctx canceled): give up
//
// Every relaunch appends -resume, so completed ranks are read back
// from the shard checkpoint and never re-crawled; the exponential
// backoff keeps a crash-looping worker from burning the budget in
// milliseconds. Cancellation of ctx is propagated to the worker as
// SIGTERM (cmd.Cancel) with workerGrace to checkpoint and exit
// (cmd.WaitDelay); the supervisor then reports the interruption
// without restarting, leaving the checkpoint for a later merge.
func superviseShard(ctx context.Context, spec workerSpec, driverLog io.Writer) shardOutcome {
	var out shardOutcome
	for attempt := 0; ; attempt++ {
		args := spec.args
		if attempt > 0 {
			args = append(append(make([]string, 0, len(spec.args)+1), spec.args...), "-resume")
		}
		wedged, err := runWorkerOnce(ctx, spec, args)
		if wedged {
			out.watchdogKills++
		}
		if err == nil {
			return out
		}
		if ctx.Err() != nil {
			// The fleet itself is shutting down: the worker was told to
			// checkpoint and exit, and it did. Not a shard failure.
			out.err = fmt.Errorf("shard %d: interrupted: %w", spec.shard, ctx.Err())
			return out
		}
		if attempt >= spec.maxRestarts {
			out.err = fmt.Errorf("shard %d: %w (restart budget of %d exhausted)", spec.shard, err, spec.maxRestarts)
			return out
		}
		backoff := min(restartBackoffBase<<uint(attempt), restartBackoffMax)
		fmt.Fprintf(driverLog, "permfleet: shard %d: %v; restarting with -resume in %s (restart %d/%d)\n",
			spec.shard, err, backoff, attempt+1, spec.maxRestarts)
		out.restarts++
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			out.err = fmt.Errorf("shard %d: interrupted: %w", spec.shard, ctx.Err())
			return out
		}
	}
}

// runWorkerOnce launches the worker once and waits it out under the
// watchdog. Returns wedged=true when the watchdog SIGKILLed the
// process for a stale heartbeat; err is nil only on a clean exit 0.
func runWorkerOnce(ctx context.Context, spec workerSpec, args []string) (wedged bool, err error) {
	cmd := exec.CommandContext(ctx, spec.bin, args...)
	cmd.Stdout = spec.out
	cmd.Stderr = spec.out
	// Graceful termination end to end: driver cancellation reaches the
	// worker as SIGTERM (not the default SIGKILL) so it can flush its
	// checkpoint; WaitDelay both bounds that grace and unsticks Wait if
	// a killed worker's pipes are held open by an orphaned child.
	cmd.Cancel = func() error { return cmd.Process.Signal(syscall.SIGTERM) }
	cmd.WaitDelay = workerGrace
	start := time.Now()
	if err := cmd.Start(); err != nil {
		return false, err
	}
	defer spec.out.Flush()
	waitCh := make(chan error, 1)
	go func() { waitCh <- cmd.Wait() }()
	if spec.watchdog <= 0 {
		return false, <-waitCh
	}
	poll := max(spec.watchdog/4, 25*time.Millisecond)
	tick := time.NewTicker(poll)
	defer tick.Stop()
	for {
		select {
		case err := <-waitCh:
			return false, err
		case <-tick.C:
			last := start
			if fi, err := os.Stat(spec.heartbeat); err == nil && fi.ModTime().After(last) {
				last = fi.ModTime()
			}
			if stale := time.Since(last); stale > spec.watchdog {
				cmd.Process.Kill()
				if werr := <-waitCh; werr == nil {
					// Raced a clean exit: the worker finished between the
					// staleness check and the kill. Success stands.
					return false, nil
				}
				return true, fmt.Errorf("watchdog: no progress for %s (deadline %s); killed",
					stale.Round(time.Millisecond), spec.watchdog)
			}
		}
	}
}
