package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"permodyssey/internal/core"
)

func run(t *testing.T, fn func([]string, *bytes.Buffer, *bytes.Buffer) int, args ...string) (string, string, int) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := fn(args, &out, &errOut)
	return out.String(), errOut.String(), code
}

func lintFn(args []string, out, errOut *bytes.Buffer) int    { return Lint(args, out, errOut) }
func genFn(args []string, out, errOut *bytes.Buffer) int     { return Gen(args, out, errOut) }
func supportFn(args []string, out, errOut *bytes.Buffer) int { return Support(args, out, errOut) }
func reportFn(args []string, out, errOut *bytes.Buffer) int  { return Report(args, out, errOut) }
func pocFn(args []string, out, errOut *bytes.Buffer) int     { return PoC(args, out, errOut) }

func TestLintCommand(t *testing.T) {
	out, _, code := run(t, lintFn, "-header", "camera=(), geolocation=(self)")
	if code != 0 || !strings.Contains(out, "no issues") {
		t.Errorf("clean header: code=%d out=%q", code, out)
	}
	out, _, code = run(t, lintFn, "-header", "camera 'none'")
	if code != 1 || !strings.Contains(out, "INVALID") {
		t.Errorf("FP syntax: code=%d out=%q", code, out)
	}
	out, _, code = run(t, lintFn, "-allow", "camera *")
	if code != 1 || !strings.Contains(out, "wildcard") {
		t.Errorf("wildcard allow: code=%d out=%q", code, out)
	}
	_, _, code = run(t, lintFn)
	if code != 2 {
		t.Errorf("no args: code=%d", code)
	}
	out, _, code = run(t, lintFn, "-feature-policy", "camera 'self'")
	if code != 0 || !strings.Contains(out, "deprecated") {
		t.Errorf("FP lint: code=%d out=%q", code, out)
	}
}

func TestGenCommand(t *testing.T) {
	out, _, code := run(t, genFn, "-mode", "disable-powerful")
	if code != 0 || !strings.Contains(out, "Permissions-Policy: ") || !strings.Contains(out, "camera=()") {
		t.Errorf("disable-powerful: code=%d out=%q", code, out)
	}
	out, _, code = run(t, genFn, "-mode", "from-usage", "-used", "camera", "-delegate", "camera=https://m.example")
	if code != 0 || !strings.Contains(out, `camera=(self "https://m.example")`) {
		t.Errorf("from-usage: code=%d out=%q", code, out)
	}
	out, _, code = run(t, genFn, "-mode", "disable-powerful", "-report-only")
	if code != 0 || !strings.Contains(out, "Permissions-Policy-Report-Only:") || !strings.Contains(out, "report-to=default") {
		t.Errorf("report-only: code=%d out=%q", code, out)
	}
	out, _, code = run(t, genFn, "-allow", "camera,microphone")
	if code != 0 || !strings.Contains(out, `allow="camera; microphone"`) {
		t.Errorf("allow: code=%d out=%q", code, out)
	}
	_, _, code = run(t, genFn, "-mode", "bogus")
	if code != 2 {
		t.Errorf("bad mode: code=%d", code)
	}
	_, _, code = run(t, genFn, "-browser", "netscape")
	if code != 2 {
		t.Errorf("bad browser: code=%d", code)
	}
	_, _, code = run(t, genFn, "-mode", "from-usage", "-used", "not-a-permission")
	if code != 1 {
		t.Errorf("unknown permission: code=%d", code)
	}
}

func TestSupportCommand(t *testing.T) {
	out, _, code := run(t, supportFn)
	if code != 0 || !strings.Contains(out, "camera") || !strings.Contains(out, "Chromium 127") {
		t.Errorf("table: code=%d", code)
	}
	out, _, code = run(t, supportFn, "-changes", "chromium", "-from", "88", "-to", "90")
	if code != 0 || !strings.Contains(out, "interest-cohort") {
		t.Errorf("changes: code=%d out=%q", code, out)
	}
	_, _, code = run(t, supportFn, "-changes", "netscape")
	if code != 2 {
		t.Errorf("bad engine: code=%d", code)
	}
	// Fingerprint round trip: surface of Chromium 127 identifies itself.
	table, _, _ := run(t, supportFn)
	_ = table
	out, _, code = run(t, supportFn, "-identify", "camera,geolocation")
	if code != 1 {
		t.Errorf("nonsense surface must fail: code=%d out=%q", code, out)
	}
}

func TestReportAndPoCCommands(t *testing.T) {
	// Produce a tiny dataset via the orchestrator, then report on it.
	opts := core.DefaultMeasurementOptions()
	opts.Web.NumSites = 60
	opts.Web.Seed = 8
	opts.Crawl.Workers = 8
	opts.Crawl.PerSiteTimeout = 300 * time.Millisecond
	opts.StallTime = 600 * time.Millisecond
	m, err := core.Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "crawl.jsonl")
	if err := m.Dataset.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	out, _, code := run(t, reportFn, "-in", path)
	if code != 0 || !strings.Contains(out, "Table 4") {
		t.Errorf("full report: code=%d", code)
	}
	out, _, code = run(t, reportFn, "-in", path, "-table", "fig2")
	if code != 0 || !strings.Contains(out, "Permissions-Policy documents") {
		t.Errorf("fig2: code=%d out=%q", code, out)
	}
	out, _, code = run(t, reportFn, "-in", path, "-json")
	if code != 0 {
		t.Fatalf("json: code=%d", code)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Errorf("json output invalid: %v", err)
	}
	out, _, code = run(t, reportFn, "-in", path, "-html")
	if code != 0 || !strings.Contains(out, "<!DOCTYPE html>") {
		t.Errorf("html: code=%d", code)
	}
	_, _, code = run(t, reportFn, "-in", path, "-table", "nope")
	if code != 2 {
		t.Errorf("bad table: code=%d", code)
	}
	_, _, code = run(t, reportFn, "-in", filepath.Join(t.TempDir(), "missing.jsonl"))
	if code != 1 {
		t.Errorf("missing dataset: code=%d", code)
	}

	out, _, code = run(t, pocFn)
	if code != 0 || !strings.Contains(out, "Table 11") {
		t.Errorf("poc: code=%d", code)
	}
	_, _, code = run(t, pocFn, "-top", "https://%%%")
	if code != 1 {
		t.Errorf("bad origin: code=%d", code)
	}
}

func TestCrawlCommand(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.jsonl")
	var out, errOut bytes.Buffer
	code := Crawl(context.Background(), []string{
		"-sites", "40", "-seed", "12", "-workers", "8",
		"-timeout", "300ms", "-out", path, "-report",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("crawl: code=%d stderr=%q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Table 4") {
		t.Error("report missing")
	}
	if !strings.Contains(errOut.String(), "dataset written") {
		t.Errorf("stderr: %q", errOut.String())
	}
	// The dataset must load and report.
	rout, _, rcode := run(t, reportFn, "-in", path, "-table", "failures")
	if rcode != 0 || !strings.Contains(rout, "ok") {
		t.Errorf("report on crawl output: code=%d out=%q", rcode, rout)
	}
	// Bad flag → usage exit.
	if c := Crawl(context.Background(), []string{"-bogus"}, &out, &errOut); c != 2 {
		t.Errorf("bad flag: code=%d", c)
	}
}

// TestCrawlOfflineReplay is the CLI shape of the offline-replay CI
// job: warm crawl with -cache-dir, offline re-crawl of the same
// population, identical reports and zero network fetches.
func TestCrawlOfflineReplay(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "archive")
	base := []string{
		"-sites", "60", "-seed", "19", "-workers", "8",
		"-timeout", "2s", "-retries", "0", "-cache-dir", cache,
	}
	crawl := func(out, stats string, offline bool) string {
		t.Helper()
		args := append([]string{}, base...)
		args = append(args, "-out", out, "-stats-json", stats)
		if offline {
			args = append(args, "-offline")
		}
		var stdout, stderr bytes.Buffer
		if code := Crawl(context.Background(), args, &stdout, &stderr); code != 0 {
			t.Fatalf("crawl(offline=%v): code=%d stderr=%q", offline, code, stderr.String())
		}
		rout, rerr, rcode := run(t, reportFn, "-in", out, "-json")
		if rcode != 0 {
			t.Fatalf("report: code=%d stderr=%q", rcode, rerr)
		}
		return rout
	}

	warmStats := filepath.Join(dir, "warm-stats.json")
	replayStats := filepath.Join(dir, "replay-stats.json")
	warmReport := crawl(filepath.Join(dir, "warm.jsonl"), warmStats, false)
	replayReport := crawl(filepath.Join(dir, "replay.jsonl"), replayStats, true)

	if warmReport != replayReport {
		t.Error("offline replay produced a different analysis report")
	}
	var stats struct {
		Fetch struct {
			NetworkFetches uint64 `json:"network_fetches"`
			Disk           struct {
				Hits   uint64 `json:"hits"`
				Writes uint64 `json:"writes"`
			} `json:"disk"`
		}
	}
	raw, err := os.ReadFile(replayStats)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Fetch.NetworkFetches != 0 {
		t.Errorf("offline replay made %d network fetches, want 0", stats.Fetch.NetworkFetches)
	}
	if stats.Fetch.Disk.Hits == 0 {
		t.Error("offline replay recorded no archive hits")
	}

	// The incompatible flag combinations exit with usage errors.
	var stdout, stderr bytes.Buffer
	if code := Crawl(context.Background(), []string{"-offline"}, &stdout, &stderr); code != 2 {
		t.Errorf("-offline without -cache-dir: code=%d", code)
	}
	if code := Crawl(context.Background(), []string{"-cache-dir", cache, "-no-cache"}, &stdout, &stderr); code != 2 {
		t.Errorf("-cache-dir with -no-cache: code=%d", code)
	}
}

func TestReportAllTables(t *testing.T) {
	// Cover every per-table dispatch path on a small dataset.
	opts := core.DefaultMeasurementOptions()
	opts.Web.NumSites = 50
	opts.Web.Seed = 77
	opts.Crawl.Workers = 8
	opts.Crawl.PerSiteTimeout = 300 * time.Millisecond
	opts.StallTime = 600 * time.Millisecond
	m, err := core.Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "crawl.jsonl")
	if err := m.Dataset.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	for _, table := range []string{"3", "4", "5", "6", "7", "8", "9", "10", "13", "failures", "directives"} {
		out, errOut, code := run(t, reportFn, "-in", path, "-table", table)
		if code != 0 {
			t.Errorf("table %s: code=%d stderr=%q", table, code, errOut)
		}
		if len(out) < 20 {
			t.Errorf("table %s: output too short: %q", table, out)
		}
	}
}

func TestSupportAllEngines(t *testing.T) {
	for _, engine := range []string{"chrome", "firefox", "safari"} {
		_, _, code := run(t, supportFn, "-changes", engine, "-from", "1", "-to", "140")
		if code != 0 {
			t.Errorf("changes %s: code=%d", engine, code)
		}
	}
	// Identify a real surface through the CLI.
	var surface strings.Builder
	for i, name := range permissionSurface() {
		if i > 0 {
			surface.WriteByte(',')
		}
		surface.WriteString(name)
	}
	out, _, code := run(t, supportFn, "-identify", surface.String())
	if code != 0 || !strings.Contains(out, "Chromium") {
		t.Errorf("identify: code=%d out=%q", code, out)
	}
}
