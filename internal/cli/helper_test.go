package cli

import "permodyssey/internal/permissions"

// permissionSurface returns the Chromium 127 supported-permission list
// for fingerprint-identification tests.
func permissionSurface() []string {
	return permissions.SupportedPermissions(permissions.Chromium, 127)
}
