package cli

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"permodyssey/internal/bundle"
	"permodyssey/internal/core"
	"permodyssey/internal/crawler"
	"permodyssey/internal/policy"
	"permodyssey/internal/store"
	"permodyssey/internal/synthweb"
)

// Crawl is the permcrawl command.
func Crawl(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("permcrawl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sites := fs.Int("sites", 5000, "number of synthetic sites to generate and crawl")
	seed := fs.Int64("seed", 1, "population seed (crawls are reproducible per seed)")
	workers := fs.Int("workers", 32, "parallel crawlers (the paper used 40)")
	timeout := fs.Duration("timeout", 2*time.Second, "per-site hard deadline")
	out := fs.String("out", "crawl.jsonl", "output dataset path")
	interact := fs.Bool("interact", false, "fire click/load handlers (Appendix A.3 manual mode)")
	noLazy := fs.Bool("no-lazy-scroll", false, "do not scroll lazy iframes (ablation)")
	expected := fs.Bool("expected-spec", false, "use the fixed local-scheme inheritance instead of the spec as written")
	report := fs.Bool("report", false, "print the full analysis report after the crawl")
	follow := fs.Int("follow-links", 0, "visit up to N same-site internal pages per site (lifts the §6.1 landing-page limitation)")
	retries := fs.Int("retries", 1, "retry transient failures (timeout, ephemeral) up to N extra attempts with exponential backoff")
	backoff := fs.Duration("retry-backoff", 100*time.Millisecond, "base delay before the first retry (doubles per attempt)")
	hostConc := fs.Int("host-concurrency", crawler.DefaultHostConcurrency, "cap concurrently in-flight visits per host (negative = unlimited)")
	deferBreaker := fs.Bool("defer-breaker-open", true, "defer visits to breaker-open hosts until the half-open probe time instead of recording breaker-open failures")
	noCache := fs.Bool("no-cache", false, "disable the shared fetch, script-parse, and static-findings caches")
	noCompile := fs.Bool("no-compile", false, "disable the compile-once script path; realms execute parsed ASTs directly")
	noDOMCache := fs.Bool("no-dom-cache", false, "disable the shared parsed-document (DOM) cache; every frame re-parses its own document")
	cacheEntries := fs.Int("cache-entries", 0, "cap each shared cache at N entries, evicted LRU (0 = unbounded)")
	cacheBytes := fs.Int64("cache-bytes", 0, "cap the fetch cache's total cached body bytes, evicted LRU (0 = unbounded)")
	resume := fs.Bool("resume", false, "load an existing -out dataset, skip its completed ranks, and append the rest")
	chaos := fs.Bool("chaos", false, "inject deterministic faults into the synthetic web (resets, slow-loris, malformed headers, redirect loops, flapping hosts, oversized bodies)")
	chaosSeed := fs.Int64("chaos-seed", 0, "fault-assignment seed (0 = population seed)")
	chaosRate := fs.Float64("chaos-rate", 0.08, "fraction of healthy sites given a fault")
	chaosSubRate := fs.Float64("chaos-subresource-rate", 0.10, "fraction of shared widget/CDN hosts that reset mid-body")
	chaosFaults := fs.String("chaos-faults", "", "comma-separated fault kinds to inject (default all: reset,slow-loris,malformed-header,oversized-header,redirect-loop,flap,oversized-body)")
	breakerN := fs.Int("breaker-threshold", 5, "consecutive per-host failures before the circuit breaker opens (0 = breaker off)")
	breakerCooldown := fs.Duration("breaker-cooldown", 500*time.Millisecond, "how long an open circuit waits before half-open probing")
	maxBody := fs.Int64("max-body", 0, "cap fetched bodies at N bytes; oversized pages become partial records (0 = 4 MiB default)")
	cacheDir := fs.String("cache-dir", "", "persist every fetch outcome to a content-addressed archive rooted here; later runs read it back instead of refetching")
	offline := fs.Bool("offline", false, "strict replay from -cache-dir: no network fetches, archived failures replay as recorded, misses become unreachable failures")
	statsJSON := fs.String("stats-json", "", "write the run's cache/crawl/archive counters as indented JSON to this file")
	shardSpec := fs.String("shard", "", "fleet mode: crawl only ranks ≡ i (mod n), given as \"i/n\"; with -cache-dir the archive manifest is written to a per-shard file so n processes can share one archive (see permfleet)")
	heartbeat := fs.String("heartbeat", "", "touch this file on every completed visit — the liveness signal a supervising permfleet watchdog watches")
	era := fs.Int("era", 0, "crawl a population calibrated to this measurement year (2020, 2022, or 2024+; 0 = the paper's present-day defaults) for longitudinal comparisons")
	bundlePath := fs.String("bundle", "", "after a finished crawl, seal config, dataset, report, and the -cache-dir archive into a Web Execution Bundle at this path (directory or .tar.gz)")
	bundleKey := fs.String("bundle-key", "", "HMAC-sign the bundle digest with this key")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *offline && *cacheDir == "" {
		fmt.Fprintln(stderr, "permcrawl: -offline requires -cache-dir")
		return 2
	}
	if *cacheDir != "" && *noCache {
		fmt.Fprintln(stderr, "permcrawl: -cache-dir is incompatible with -no-cache")
		return 2
	}
	if *bundlePath != "" && *cacheDir == "" {
		fmt.Fprintln(stderr, "permcrawl: -bundle requires -cache-dir (a bundle seals the resource archive)")
		return 2
	}
	if *bundlePath != "" && *shardSpec != "" {
		fmt.Fprintln(stderr, "permcrawl: -bundle cannot seal one shard of a fleet crawl; use permfleet -bundle after the merge")
		return 2
	}
	shard, shards, err := ParseShardSpec(*shardSpec)
	if err != nil {
		fmt.Fprintln(stderr, "permcrawl:", err)
		return 2
	}

	opts := core.DefaultMeasurementOptions()
	if *era != 0 {
		// Era calibration replaces the population config wholesale, so it
		// must land before the explicit knobs below override it.
		opts.Web = synthweb.EraConfig(*era)
	}
	opts.Web.NumSites = *sites
	opts.Web.Seed = *seed
	opts.Crawl.Workers = *workers
	opts.Crawl.PerSiteTimeout = *timeout
	opts.Crawl.FollowInternalLinks = *follow
	opts.Crawl.MaxRetries = *retries
	opts.Crawl.RetryBackoff = *backoff
	opts.Crawl.HostConcurrency = *hostConc
	opts.Crawl.DeferBreakerOpen = *deferBreaker
	opts.DisableCache = *noCache
	opts.DisableCompile = *noCompile
	opts.DisableDOMCache = *noDOMCache
	opts.CacheEntries = *cacheEntries
	opts.CacheBytes = *cacheBytes
	opts.StallTime = 2 * *timeout
	if *chaos {
		cc := synthweb.DefaultChaosConfig()
		cc.Seed = *chaosSeed
		cc.SiteRate = *chaosRate
		cc.SubresourceRate = *chaosSubRate
		if *chaosFaults != "" {
			kinds, err := synthweb.ParseFaultList(*chaosFaults)
			if err != nil {
				fmt.Fprintln(stderr, "permcrawl:", err)
				return 2
			}
			cc.Kinds = kinds
		}
		opts.Web.Chaos = cc
	}
	opts.Breaker = crawler.BreakerConfig{Threshold: *breakerN, Cooldown: *breakerCooldown}
	opts.MaxBodyBytes = *maxBody
	opts.CacheDir = *cacheDir
	opts.Offline = *offline
	opts.Shard, opts.Shards = shard, shards
	opts.BrowserOpts.Interact = *interact
	opts.BrowserOpts.ScrollLazyIframes = !*noLazy
	if *expected {
		opts.BrowserOpts.Mode = policy.SpecExpected
	}
	opts.Log = stderr
	last := 0
	opts.Crawl.Progress = func(done, total int) {
		if total > 0 && done*10/total != last {
			last = done * 10 / total
			fmt.Fprintf(stderr, "  %d%% (%d/%d)\n", last*10, done, total)
		}
	}
	if *heartbeat != "" {
		// Heartbeat = progress, not mere liveness: the file's mtime
		// advances only when a visit actually completes, so a wedged
		// crawl — alive but stuck — goes visibly stale and the
		// supervisor's watchdog can kill and restart it.
		touchFile(*heartbeat)
		progress := opts.Crawl.Progress
		opts.Crawl.Progress = func(done, total int) {
			touchFile(*heartbeat)
			progress(done, total)
		}
	}

	// Resume: reload the completed prefix of a prior interrupted crawl
	// (tolerating a truncated final line) and append only new records.
	if *resume {
		if prior, err := store.LoadPartialFile(*out); err == nil && len(prior.Records) > 0 {
			// Canceled records are artifacts of the interruption, not site
			// outcomes: drop them here too, or the rewritten prefix would
			// keep the stale record alongside the re-crawled one.
			kept, dropped := prior.Records[:0], 0
			for _, r := range prior.Records {
				if r.Failure == store.FailureCanceled {
					dropped++
					continue
				}
				kept = append(kept, r)
			}
			prior.Records = kept
			opts.Crawl.Resume = prior
			// Rewrite the complete prefix: an interrupted crawl may have
			// left a truncated final line, which appending would corrupt.
			if err := prior.SaveFile(*out); err != nil {
				fmt.Fprintln(stderr, "permcrawl: resume:", err)
				return 1
			}
			fmt.Fprintf(stderr, "resuming: %d records already in %s", len(prior.Records), *out)
			if dropped > 0 {
				fmt.Fprintf(stderr, " (%d canceled records dropped for re-crawl)", dropped)
			}
			fmt.Fprintln(stderr)
		} else if err != nil && !os.IsNotExist(err) {
			fmt.Fprintln(stderr, "permcrawl: resume:", err)
			return 1
		}
	}

	// Stream each record to disk the moment its visit completes (C14),
	// rather than holding everything until the end of the crawl.
	mode := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
	if opts.Crawl.Resume != nil {
		mode = os.O_CREATE | os.O_WRONLY | os.O_APPEND
	}
	f, err := os.OpenFile(*out, mode, 0o644)
	if err != nil {
		fmt.Fprintln(stderr, "permcrawl:", err)
		return 1
	}
	bw := bufio.NewWriter(f)
	enc := json.NewEncoder(bw)
	var sinkErr error
	opts.Crawl.Sink = func(rec store.SiteRecord) {
		if err := enc.Encode(rec); err != nil && sinkErr == nil {
			sinkErr = err
		}
	}

	m, err := core.Run(ctx, opts)
	if err != nil {
		f.Close()
		fmt.Fprintln(stderr, "permcrawl:", err)
		return 1
	}
	if err := bw.Flush(); err == nil {
		err = f.Close()
		if sinkErr != nil {
			err = sinkErr
		}
		if err != nil {
			fmt.Fprintln(stderr, "permcrawl: saving:", err)
			return 1
		}
	} else {
		f.Close()
		fmt.Fprintln(stderr, "permcrawl: saving:", err)
		return 1
	}
	fmt.Fprintf(stderr, "dataset written to %s (%d records, %s)\n",
		*out, len(m.Dataset.Records), m.Elapsed.Round(time.Millisecond))
	if *statsJSON != "" {
		buf, err := json.MarshalIndent(m.Stats, "", "  ")
		if err == nil {
			err = os.WriteFile(*statsJSON, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(stderr, "permcrawl: writing stats:", err)
			return 1
		}
	}
	// A crawl cut short by cancellation (the driver's SIGTERM, an
	// operator's Ctrl-C) still checkpointed everything above — but it
	// is not a finished dataset, and a supervising fleet driver needs
	// the distinction to know the shard wants a -resume relaunch.
	if ctx.Err() != nil {
		fmt.Fprintf(stderr, "permcrawl: interrupted; %d records checkpointed in %s (rerun with -resume to finish)\n",
			len(m.Dataset.Records), *out)
		return 3
	}
	// Seal only a finished crawl: an interrupted one returned above, and
	// a bundle of half a dataset would replay as the wrong measurement.
	if *bundlePath != "" {
		cfg := bundle.Config{Sites: *sites, Seed: *seed, Era: *era, Chaos: *chaos, ChaosFaults: *chaosFaults, Flags: args}
		if err := sealCrawlBundle(*bundlePath, *cacheDir, *out, m.Report()+"\n", "permcrawl", cfg, len(m.Dataset.Records), nil, *bundleKey, stderr); err != nil {
			fmt.Fprintln(stderr, "permcrawl: sealing bundle:", err)
			return 1
		}
	}
	if *report {
		fmt.Fprintln(stdout, m.Report())
	}
	return 0
}

// touchFile advances path's mtime, creating it (stamped with this
// process's pid) on first touch. Failures are ignored: a heartbeat is
// advisory, and a worker must never die because its liveness file is
// unwritable.
func touchFile(path string) {
	now := time.Now()
	if os.Chtimes(path, now, now) == nil {
		return
	}
	if f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644); err == nil {
		fmt.Fprintf(f, "%d\n", os.Getpid())
		f.Close()
	}
}
