package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"permodyssey/internal/bundle"
)

// TestCrawlBundleReplay is the CLI shape of the bundle-replay CI job:
// a crawl sealed with -bundle, then permreport -from-bundle verifying
// the digest and reproducing the crawl-time report byte for byte —
// analysis only, no browser, network, or interpreter.
func TestCrawlBundleReplay(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "archive")
	bdir := filepath.Join(dir, "crawl.bundle")
	crawlTo(t, filepath.Join(dir, "out.jsonl"),
		"-cache-dir", cache, "-bundle", bdir, "-bundle-key", "s3cret")

	sealed, err := os.ReadFile(filepath.Join(bdir, bundle.ReportName))
	if err != nil {
		t.Fatalf("sealed report: %v", err)
	}
	out, errOut, code := run(t, reportFn, "-from-bundle", bdir, "-bundle-key", "s3cret")
	if code != 0 {
		t.Fatalf("-from-bundle: code=%d stderr=%q", code, errOut)
	}
	if out != string(sealed) {
		t.Error("-from-bundle report differs from the sealed crawl-time report")
	}
	if !strings.Contains(errOut, "verified") {
		t.Errorf("stderr missing verification provenance: %q", errOut)
	}

	// The wrong key must refuse to analyze.
	if _, _, code := run(t, reportFn, "-from-bundle", bdir, "-bundle-key", "wrong"); code != 1 {
		t.Errorf("wrong key: code=%d, want 1", code)
	}

	// Tampered evidence must refuse to analyze.
	ds := filepath.Join(bdir, bundle.DatasetName)
	raw, err := os.ReadFile(ds)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(ds, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, errOut, code = run(t, reportFn, "-from-bundle", bdir)
	if code != 1 {
		t.Errorf("tampered bundle: code=%d, want 1", code)
	}
	if !strings.Contains(errOut, "verification failed") {
		t.Errorf("tampered bundle stderr: %q", errOut)
	}
}

// TestCrawlBundleFlagValidation: the sealing flag combinations that
// cannot produce a complete bundle exit with usage errors up front.
func TestCrawlBundleFlagValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Crawl(context.Background(), []string{"-bundle", "b"}, &stdout, &stderr); code != 2 {
		t.Errorf("-bundle without -cache-dir: code=%d, want 2", code)
	}
	if code := Crawl(context.Background(), []string{
		"-bundle", "b", "-cache-dir", "c", "-shard", "0/2",
	}, &stdout, &stderr); code != 2 {
		t.Errorf("-bundle with -shard: code=%d, want 2", code)
	}
	if code := Fleet(context.Background(), []string{"-bundle", "b"}, &stdout, &stderr); code != 2 {
		t.Errorf("fleet -bundle without -cache-dir: code=%d, want 2", code)
	}
	if _, _, code := run(t, reportFn, "-diff-bundles", "only-one"); code != 2 {
		t.Errorf("-diff-bundles with one path: code=%d, want 2", code)
	}
}

// TestFleetBundleSeal: the permfleet sealing path — shard crawls into
// a shared archive, merge, seal — produces a bundle whose replay is
// byte-identical to the merged report and whose manifest records the
// fleet's provenance.
func TestFleetBundleSeal(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "archive")
	merged := filepath.Join(dir, "merged.jsonl")
	btar := filepath.Join(dir, "fleet.bundle.tar.gz")
	crawlTo(t, merged+".shard0", "-shard", "0/2", "-cache-dir", cache)
	crawlTo(t, merged+".shard1", "-shard", "1/2", "-cache-dir", cache)

	var stdout, stderr bytes.Buffer
	code := Fleet(context.Background(), []string{
		"-procs", "2", "-out", merged, "-merge-only", "-cache-dir", cache,
		"-bundle", btar, "--", "-sites", "40", "-seed", "21",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("fleet: code=%d stderr=%q", code, stderr.String())
	}

	b, err := bundle.Open(btar)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Manifest.Tool != "permfleet" {
		t.Errorf("Tool = %q, want permfleet", b.Manifest.Tool)
	}
	if b.Manifest.FleetMerge == nil || b.Manifest.FleetMerge.Records != 40 {
		t.Errorf("FleetMerge = %+v, want 40 merged records", b.Manifest.FleetMerge)
	}
	if b.Manifest.Config.Sites != 40 || b.Manifest.Config.Seed != 21 {
		t.Errorf("Config = %+v, want sites 40 seed 21", b.Manifest.Config)
	}
	sealed, err := b.Report()
	if err != nil {
		t.Fatal(err)
	}
	out, errOut, rcode := run(t, reportFn, "-from-bundle", btar)
	if rcode != 0 {
		t.Fatalf("-from-bundle: code=%d stderr=%q", rcode, errOut)
	}
	if out != sealed {
		t.Error("fleet bundle replay differs from the sealed merged report")
	}
}

// TestDiffBundlesDeterministic crawls the same seed under two
// synthweb eras, seals both, and checks the longitudinal drift report
// is labeled with the eras and byte-identical across runs.
func TestDiffBundlesDeterministic(t *testing.T) {
	dir := t.TempDir()
	seal := func(era string) string {
		path := filepath.Join(dir, "era"+era+".bundle")
		crawlTo(t, filepath.Join(dir, "era"+era+".jsonl"),
			"-era", era, "-cache-dir", filepath.Join(dir, "archive"+era), "-bundle", path)
		return path
	}
	before, after := seal("2020"), seal("2024")

	diff := func() string {
		out, errOut, code := run(t, reportFn, "-diff-bundles", before, after)
		if code != 0 {
			t.Fatalf("-diff-bundles: code=%d stderr=%q", code, errOut)
		}
		return out
	}
	first := diff()
	if first != diff() {
		t.Error("-diff-bundles is not deterministic across runs")
	}
	for _, want := range []string{"[era 2020]", "[era 2024]", "Longitudinal drift report", "Table 4 drift"} {
		if !strings.Contains(first, want) {
			t.Errorf("drift report missing %q", want)
		}
	}

	// The JSON form parses and carries the same sections.
	out, errOut, code := run(t, reportFn, "-diff-bundles", "-json", before, after)
	if code != 0 {
		t.Fatalf("-diff-bundles -json: code=%d stderr=%q", code, errOut)
	}
	var drift struct {
		Population []json.RawMessage `json:"population"`
		Adoption   []json.RawMessage `json:"adoption"`
	}
	if err := json.Unmarshal([]byte(out), &drift); err != nil {
		t.Fatalf("drift JSON: %v", err)
	}
	if len(drift.Population) == 0 || len(drift.Adoption) == 0 {
		t.Error("drift JSON missing population/adoption sections")
	}
}

// TestReportEmptyDatasetWarns pins the empty-dataset contract: clean
// zero-row tables on stdout, an explicit warning on stderr, and a
// nonzero exit so pipelines cannot mistake a report over nothing for
// a healthy run.
func TestReportEmptyDatasetWarns(t *testing.T) {
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	out, errOut, code := run(t, reportFn, "-in", empty)
	if code != 1 {
		t.Errorf("empty dataset: code=%d, want 1", code)
	}
	if !strings.Contains(errOut, "no analyzable records") {
		t.Errorf("stderr missing warning: %q", errOut)
	}
	if !strings.Contains(out, "Table 4") {
		t.Error("empty dataset should still render zero-row tables")
	}
	for _, bad := range []string{"NaN", "+Inf", "-Inf"} {
		if strings.Contains(out, bad) {
			t.Errorf("empty dataset report contains %q", bad)
		}
	}
	// The JSON form exits nonzero too.
	if _, _, code := run(t, reportFn, "-in", empty, "-json"); code != 1 {
		t.Errorf("empty dataset -json: code=%d, want 1", code)
	}
}
