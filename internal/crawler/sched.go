package crawler

import (
	"container/heap"
	"context"
	"net/url"
	"sync"
	"time"

	"permodyssey/internal/store"
)

// DefaultHostConcurrency caps concurrently in-flight visits per host.
// One slow-loris host with many queued sites must not monopolize the
// worker pool; four in flight keeps a healthy host saturated while the
// rest of the pool works elsewhere.
const DefaultHostConcurrency = 4

// maxBreakerDeferrals bounds how many times one entry can be re-parked
// because its host's circuit was open. Past the bound the entry is
// dispatched anyway and takes its breaker-open short-circuit through
// the normal retry path — the escape hatch that keeps a permanently
// dead host from deferring its queue forever.
const maxBreakerDeferrals = 8

// schedEntry is one site's position in the scheduler: its target, how
// many retry attempts it has spent, and — while parked on the deferral
// heap — when it becomes dispatchable again.
type schedEntry struct {
	t    Target
	host string
	// readyAt is the earliest instant this entry may dispatch; zero
	// means immediately. A backoff requeue sets it to the retry
	// deadline, a breaker deferral to the circuit's half-open time.
	readyAt time.Time
	// retries is the number of extra attempts already spent; first is
	// how the first attempt failed, for the recovered-vs-stuck table.
	retries int
	first   store.FailureClass
	// start is when the first attempt dispatched; Elapsed covers every
	// attempt plus the time spent parked between them.
	start time.Time
	// breakerDeferrals counts circuit-open re-parks (see
	// maxBreakerDeferrals); index is the heap position.
	breakerDeferrals int
	index            int
}

// deferHeap is a min-heap of parked entries ordered by readyAt.
type deferHeap []*schedEntry

func (h deferHeap) Len() int           { return len(h) }
func (h deferHeap) Less(i, j int) bool { return h[i].readyAt.Before(h[j].readyAt) }
func (h deferHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *deferHeap) Push(x any)        { e := x.(*schedEntry); e.index = len(*h); *h = append(*h, e) }
func (h *deferHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// scheduler is the crawl's dispatch core: a FIFO ready queue, a
// min-heap of time-deferred entries, and per-host in-flight accounting.
// It replaces the flat jobs channel so that
//
//   - a transiently-failed visit is re-queued with its backoff deadline
//     instead of sleeping inside a worker (non-blocking retries),
//   - a visit whose host's circuit is open is parked until the
//     breaker's half-open probe time instead of burning a dispatch on a
//     short-circuit, and
//   - no host holds more than hostCap visits in flight, so a slow or
//     flapping host cannot monopolize the pool.
//
// Entries flow ready → (dispatch | hostWait | deferred) → ready …
// until finished. All state is guarded by mu; workers block in next on
// cond, woken by releases, deferral deadlines (one shared timer armed
// for the earliest deadline), completion, or cancellation.
type scheduler struct {
	hostCap      int // <= 0 = unlimited
	breaker      *Breaker
	deferBreaker bool

	mu   sync.Mutex
	cond *sync.Cond
	// ready is the FIFO dispatch queue; head is a cursor so popping is
	// O(1) without reslicing churn.
	ready []*schedEntry
	head  int
	// deferred holds time-parked entries; hostWait holds entries whose
	// host is at its in-flight cap, resumed one per slot release.
	deferred deferHeap
	hostWait map[string][]*schedEntry
	inflight map[string]int
	// outstanding is every entry not yet finished; zero means the crawl
	// is drained and workers may exit.
	outstanding int
	stopped     bool
	timer       *time.Timer
	timerAt     time.Time

	// Counters surfaced through Crawler.Stats.
	requeued        int64
	deferredTotal   int64
	breakerDeferred int64
	maxReady        int64
	maxHostInflight int64
}

// newScheduler creates an empty scheduler; hostCap <= 0 disables the
// per-host in-flight cap, breaker may be nil.
func newScheduler(hostCap int, breaker *Breaker, deferBreaker bool) *scheduler {
	s := &scheduler{
		hostCap:  hostCap,
		breaker:  breaker,
		hostWait: map[string][]*schedEntry{},
		inflight: map[string]int{},
	}
	s.deferBreaker = deferBreaker && breaker != nil
	s.cond = sync.NewCond(&s.mu)
	return s
}

// targetHost extracts the host a target's visit will hit, the key for
// in-flight caps and breaker deferral. Unparseable URLs share the ""
// bucket; they fail fast at visit time anyway.
func targetHost(rawURL string) string {
	u, err := url.Parse(rawURL)
	if err != nil {
		return ""
	}
	return u.Hostname()
}

// enqueue adds a fresh target to the tail of the ready queue.
func (s *scheduler) enqueue(t Target) {
	s.mu.Lock()
	s.readyPushLocked(&schedEntry{t: t, host: targetHost(t.URL)})
	s.outstanding++
	s.mu.Unlock()
}

// readyPushLocked appends to the ready queue and tracks its high-water
// depth.
func (s *scheduler) readyPushLocked(e *schedEntry) {
	s.ready = append(s.ready, e)
	if depth := int64(len(s.ready) - s.head); depth > s.maxReady {
		s.maxReady = depth
	}
}

// readyPopLocked pops the head of the ready queue, compacting the
// backing slice once the cursor has consumed half of it.
func (s *scheduler) readyPopLocked() *schedEntry {
	e := s.ready[s.head]
	s.ready[s.head] = nil
	s.head++
	if s.head > len(s.ready)/2 && s.head > 32 {
		s.ready = append(s.ready[:0], s.ready[s.head:]...)
		s.head = 0
	}
	return e
}

// next blocks until an entry is dispatchable and claims a host slot for
// it, or returns false when the crawl is drained or cancelled.
func (s *scheduler) next(ctx context.Context) (*schedEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped || ctx.Err() != nil || s.outstanding == 0 {
			return nil, false
		}
		now := time.Now()
		// Promote every deferred entry whose deadline has passed.
		for len(s.deferred) > 0 && !now.Before(s.deferred[0].readyAt) {
			s.readyPushLocked(heap.Pop(&s.deferred).(*schedEntry))
		}
		for s.head < len(s.ready) {
			e := s.readyPopLocked()
			if s.hostCap > 0 && s.inflight[e.host] >= s.hostCap {
				// Host saturated: park until a slot frees (release moves
				// exactly one waiter back per freed slot).
				s.hostWait[e.host] = append(s.hostWait[e.host], e)
				continue
			}
			if s.deferBreaker && e.breakerDeferrals < maxBreakerDeferrals {
				if at, allow := s.breaker.NextProbe(e.host); !allow {
					// Circuit open: dispatching now would only burn the
					// visit on a short-circuit. Park until the half-open
					// probe time instead.
					e.breakerDeferrals++
					s.breakerDeferred++
					s.deferLocked(e, at)
					continue
				}
			}
			s.inflight[e.host]++
			if n := int64(s.inflight[e.host]); n > s.maxHostInflight {
				s.maxHostInflight = n
			}
			if e.start.IsZero() {
				e.start = now
			}
			return e, true
		}
		s.waitLocked()
	}
}

// requeue releases the entry's host slot and parks it until readyAt —
// the non-blocking retry: the worker that called this immediately asks
// next for other work instead of sleeping out the backoff.
func (s *scheduler) requeue(e *schedEntry, readyAt time.Time) {
	s.mu.Lock()
	s.releaseLocked(e.host)
	s.requeued++
	s.deferLocked(e, readyAt)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// finish releases the entry's host slot and retires it; when the last
// outstanding entry finishes, every blocked worker is released.
func (s *scheduler) finish(e *schedEntry) {
	s.mu.Lock()
	s.releaseLocked(e.host)
	s.outstanding--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// releaseLocked frees one in-flight slot for host and resumes exactly
// one host-capped waiter into the slot it freed.
func (s *scheduler) releaseLocked(host string) {
	if n := s.inflight[host]; n <= 1 {
		delete(s.inflight, host)
	} else {
		s.inflight[host] = n - 1
	}
	if q := s.hostWait[host]; len(q) > 0 {
		e := q[0]
		if len(q) == 1 {
			delete(s.hostWait, host)
		} else {
			s.hostWait[host] = q[1:]
		}
		s.readyPushLocked(e)
	}
}

// deferLocked parks e on the deferral heap until readyAt and keeps the
// shared timer armed for the earliest deadline.
func (s *scheduler) deferLocked(e *schedEntry, readyAt time.Time) {
	e.readyAt = readyAt
	heap.Push(&s.deferred, e)
	s.deferredTotal++
	s.armTimerLocked(readyAt)
}

// armTimerLocked (re)arms the wake-up timer if at is earlier than what
// it is currently armed for.
func (s *scheduler) armTimerLocked(at time.Time) {
	if !s.timerAt.IsZero() && !at.Before(s.timerAt) {
		return
	}
	d := time.Until(at)
	if d < 0 {
		d = 0
	}
	s.timerAt = at
	if s.timer == nil {
		s.timer = time.AfterFunc(d, s.timerFired)
	} else {
		s.timer.Reset(d)
	}
}

// timerFired wakes every waiter so due deferrals promote.
func (s *scheduler) timerFired() {
	s.mu.Lock()
	s.timerAt = time.Time{}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// waitLocked blocks until new work may be dispatchable: a release, a
// promotion deadline, completion, or cancellation.
func (s *scheduler) waitLocked() {
	if len(s.deferred) > 0 {
		s.armTimerLocked(s.deferred[0].readyAt)
	}
	s.cond.Wait()
}

// stop cancels the scheduler: every blocked or future next call returns
// false. Parked entries are abandoned, matching the old pool's
// behaviour of not visiting undelivered targets after cancellation.
func (s *scheduler) stop() {
	s.mu.Lock()
	s.stopped = true
	if s.timer != nil {
		s.timer.Stop()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}
