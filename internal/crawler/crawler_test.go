package crawler

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"permodyssey/internal/browser"
	"permodyssey/internal/script"
	"permodyssey/internal/store"
	"permodyssey/internal/synthweb"
)

func TestClassify(t *testing.T) {
	tests := []struct {
		err  error
		want store.FailureClass
	}{
		{nil, store.FailureNone},
		{context.DeadlineExceeded, store.FailureTimeout},
		{&net.DNSError{Err: "no such host", IsNotFound: true}, store.FailureUnreachable},
		{io.ErrUnexpectedEOF, store.FailureEphemeral},
		{errors.New("reading x: unexpected EOF"), store.FailureEphemeral},
		{errors.New("malformed HTTP response"), store.FailureMinor},
		{errors.New("status 404 fetching x"), store.FailureUnreachable},
		{errors.New("anything else"), store.FailureMinor},
	}
	for _, tt := range tests {
		if got := Classify(tt.err); got != tt.want {
			t.Errorf("Classify(%v) = %q; want %q", tt.err, got, tt.want)
		}
	}
}

// TestCrawlSyntheticWeb is the pipeline integration test: generate a
// small synthetic web, serve it, crawl it, and verify the failure
// taxonomy and the collected structure.
func TestCrawlSyntheticWeb(t *testing.T) {
	cfg := synthweb.DefaultConfig()
	cfg.NumSites = 250
	cfg.Seed = 7
	// Push failure rates up so each class appears in a small sample.
	cfg.UnreachableRate = 0.06
	cfg.TimeoutRate = 0.05
	cfg.EphemeralRate = 0.08
	cfg.MinorRate = 0.02

	srv := synthweb.NewServer(cfg)
	srv.StallTime = 500 * time.Millisecond
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	fetcher := browser.NewHTTPFetcher(srv.Client(0))
	b := browser.New(fetcher, browser.DefaultOptions())
	c := New(b, Config{Workers: 16, PerSiteTimeout: 250 * time.Millisecond})

	var targets []Target
	for _, s := range srv.Sites() {
		targets = append(targets, Target{Rank: s.Rank, URL: s.URL()})
	}
	ds := c.Crawl(context.Background(), targets)
	if len(ds.Records) != cfg.NumSites {
		t.Fatalf("records: %d", len(ds.Records))
	}

	counts := ds.FailureCounts()
	t.Logf("failure taxonomy: %v", counts)
	for _, class := range []store.FailureClass{
		store.FailureUnreachable, store.FailureTimeout, store.FailureEphemeral,
	} {
		if counts[class] == 0 {
			t.Errorf("failure class %q never observed", class)
		}
	}
	if counts["ok"] < cfg.NumSites*3/4 {
		t.Errorf("too few successful sites: %d", counts["ok"])
	}

	// Collected structure sanity: some sites have headers, widgets with
	// delegation, local frames, dynamic invocations and static findings.
	var withHeader, withDelegation, withLocal, withInvocations, withStatic int
	for _, rec := range ds.Successful() {
		top := rec.Page.TopFrame()
		if top.HasPermissionsPolicy {
			withHeader++
		}
		if len(top.Invocations) > 0 {
			withInvocations++
		}
		if len(top.StaticFindings) > 0 {
			withStatic++
		}
		for _, fr := range rec.Page.EmbeddedFrames() {
			if fr.Element.HasAllow {
				withDelegation++
				break
			}
		}
		for _, fr := range rec.Page.EmbeddedFrames() {
			if fr.LocalScheme {
				withLocal++
				break
			}
		}
	}
	if withHeader == 0 || withDelegation == 0 || withLocal == 0 ||
		withInvocations == 0 || withStatic == 0 {
		t.Errorf("structure: header=%d delegation=%d local=%d dyn=%d static=%d",
			withHeader, withDelegation, withLocal, withInvocations, withStatic)
	}
	// The crawl is ordered by rank.
	for i := 1; i < len(ds.Records); i++ {
		if ds.Records[i].Rank <= ds.Records[i-1].Rank {
			t.Fatal("records not sorted by rank")
		}
	}
}

// TestCrawlDeterminism proves re-runs yield identical datasets — and
// that the fetch/parse caches are observationally transparent: a cached
// crawl produces record-for-record the same output as an uncached one.
func TestCrawlDeterminism(t *testing.T) {
	cfg := synthweb.DefaultConfig()
	cfg.NumSites = 40
	cfg.Seed = 11
	// Timing-dependent failure classes would make the success set depend
	// on scheduler load; determinism is about content, so use a healthy
	// population and a generous deadline.
	cfg.UnreachableRate, cfg.TimeoutRate, cfg.EphemeralRate, cfg.MinorRate = 0, 0, 0, 0

	run := func(cached bool) []string {
		srv := synthweb.NewServer(cfg)
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		var fetcher browser.Fetcher = browser.NewHTTPFetcher(srv.Client(0))
		opts := browser.DefaultOptions()
		if cached {
			fetcher = browser.NewCachingFetcher(fetcher)
			opts.ScriptCache = script.NewParseCache()
		}
		b := browser.New(fetcher, opts)
		c := New(b, Config{Workers: 8, PerSiteTimeout: 5 * time.Second})
		var targets []Target
		for _, s := range srv.Sites() {
			targets = append(targets, Target{Rank: s.Rank, URL: s.URL()})
		}
		ds := c.Crawl(context.Background(), targets)
		if len(ds.Records) != cfg.NumSites {
			t.Fatalf("records: %d", len(ds.Records))
		}
		return normalizeRecords(t, ds)
	}
	uncachedA, uncachedB, cached := run(false), run(false), run(true)
	for i := range uncachedA {
		if uncachedA[i] != uncachedB[i] {
			t.Errorf("record %d differs between uncached runs:\n%s\n%s",
				i, uncachedA[i], uncachedB[i])
		}
		if uncachedA[i] != cached[i] {
			t.Errorf("record %d differs with cache on:\nuncached: %s\ncached:   %s",
				i, uncachedA[i], cached[i])
		}
	}
}

// TestCrawlCompileEquivalence proves the compiled script path is
// observationally transparent at crawl scale: a crawl executing every
// script through cached compiled programs produces record-for-record
// the same dataset as the tree-walking interpreter.
func TestCrawlCompileEquivalence(t *testing.T) {
	cfg := synthweb.DefaultConfig()
	cfg.NumSites = 40
	cfg.Seed = 23
	cfg.UnreachableRate, cfg.TimeoutRate, cfg.EphemeralRate, cfg.MinorRate = 0, 0, 0, 0

	run := func(compiled bool) []string {
		srv := synthweb.NewServer(cfg)
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		opts := browser.DefaultOptions()
		opts.ScriptCache = script.NewParseCache()
		if compiled {
			opts.CompileCache = script.NewBoundedCompileCache(0, opts.ScriptCache.Parse)
		}
		b := browser.New(browser.NewHTTPFetcher(srv.Client(0)), opts)
		c := New(b, Config{Workers: 8, PerSiteTimeout: 5 * time.Second})
		var targets []Target
		for _, s := range srv.Sites() {
			targets = append(targets, Target{Rank: s.Rank, URL: s.URL()})
		}
		ds := c.Crawl(context.Background(), targets)
		if len(ds.Records) != cfg.NumSites {
			t.Fatalf("records: %d", len(ds.Records))
		}
		return normalizeRecords(t, ds)
	}
	tree, comp := run(false), run(true)
	for i := range tree {
		if tree[i] != comp[i] {
			t.Errorf("record %d differs with compilation on:\ntree:     %s\ncompiled: %s",
				i, tree[i], comp[i])
		}
	}
}
