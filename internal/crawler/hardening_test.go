package crawler

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"permodyssey/internal/browser"
	"permodyssey/internal/store"
)

// panicFetcher panics on configured URLs and serves a canned page
// otherwise.
type panicFetcher struct {
	panicOn map[string]bool
}

func (f *panicFetcher) Fetch(_ context.Context, rawURL string) (*browser.Response, error) {
	if f.panicOn[rawURL] {
		panic("interpreter stack corrupted by " + rawURL)
	}
	return &browser.Response{Status: 200, FinalURL: rawURL,
		Body: "<html><body><p>ok</p></body></html>"}, nil
}

// TestPanicIsolation: a panic inside one site's visit becomes a
// FailureMinor record; the rest of the crawl is untouched.
func TestPanicIsolation(t *testing.T) {
	f := &panicFetcher{panicOn: map[string]bool{"https://evil.test/": true}}
	b := browser.New(f, browser.DefaultOptions())
	c := New(b, Config{Workers: 2, PerSiteTimeout: time.Second})

	ds := c.Crawl(context.Background(), []Target{
		{Rank: 1, URL: "https://fine.test/"},
		{Rank: 2, URL: "https://evil.test/"},
		{Rank: 3, URL: "https://also-fine.test/"},
	})
	if len(ds.Records) != 3 {
		t.Fatalf("crawl lost records: %d of 3", len(ds.Records))
	}
	var evil store.SiteRecord
	okCount := 0
	for _, r := range ds.Records {
		if r.URL == "https://evil.test/" {
			evil = r
		} else if r.OK() {
			okCount++
		}
	}
	if evil.Failure != store.FailureMinor {
		t.Errorf("panicking site failure = %q, want minor", evil.Failure)
	}
	if !strings.Contains(evil.Error, "panic:") {
		t.Errorf("panicking site error = %q, want a panic message", evil.Error)
	}
	if okCount != 2 {
		t.Errorf("healthy sites measured = %d, want 2", okCount)
	}
	if got := c.Stats().Panics; got != 1 {
		t.Errorf("stats panics = %d, want 1", got)
	}
}

// subresourceFetcher serves a main page embedding an iframe and an
// external script whose hosts are dead, plus a truncated-body page.
type subresourceFetcher struct{}

func (subresourceFetcher) Fetch(_ context.Context, rawURL string) (*browser.Response, error) {
	switch {
	case strings.HasPrefix(rawURL, "https://main.test/"):
		return &browser.Response{Status: 200, FinalURL: rawURL, Body: `<html><body>
			<iframe src="https://deadwidget.test/frame"></iframe>
			<script src="https://deadcdn.test/lib.js"></script>
			<p>content</p></body></html>`}, nil
	case strings.HasPrefix(rawURL, "https://truncated.test/"):
		return &browser.Response{Status: 200, FinalURL: rawURL,
			Body: "<html><body><p>cut", BodyTruncated: true}, nil
	case strings.HasPrefix(rawURL, "https://clean.test/"):
		return &browser.Response{Status: 200, FinalURL: rawURL,
			Body: "<html><body><p>ok</p></body></html>"}, nil
	default:
		return nil, errors.New("read tcp: connection reset by peer")
	}
}

// TestPartialRecords: losing a subresource degrades the record to
// Partial instead of failing it, with the reasons named; clean pages
// stay unmarked.
func TestPartialRecords(t *testing.T) {
	b := browser.New(subresourceFetcher{}, browser.DefaultOptions())
	c := New(b, Config{Workers: 1, PerSiteTimeout: time.Second})

	ds := c.Crawl(context.Background(), []Target{
		{Rank: 1, URL: "https://main.test/"},
		{Rank: 2, URL: "https://truncated.test/"},
		{Rank: 3, URL: "https://clean.test/"},
	})
	byURL := map[string]store.SiteRecord{}
	for _, r := range ds.Records {
		byURL[r.URL] = r
	}

	main := byURL["https://main.test/"]
	if !main.OK() || !main.Partial {
		t.Fatalf("subresource-degraded site: OK=%v Partial=%v failure=%q err=%q",
			main.OK(), main.Partial, main.Failure, main.Error)
	}
	want := []string{"frame-load-failed", "script-load-failed"}
	if len(main.DegradedReasons) != len(want) {
		t.Fatalf("DegradedReasons = %v, want %v", main.DegradedReasons, want)
	}
	for i, r := range want {
		if main.DegradedReasons[i] != r {
			t.Errorf("DegradedReasons[%d] = %q, want %q", i, main.DegradedReasons[i], r)
		}
	}

	trunc := byURL["https://truncated.test/"]
	if !trunc.OK() || !trunc.Partial {
		t.Fatalf("truncated site: OK=%v Partial=%v", trunc.OK(), trunc.Partial)
	}
	if len(trunc.DegradedReasons) != 1 || trunc.DegradedReasons[0] != "body-truncated" {
		t.Errorf("truncated DegradedReasons = %v, want [body-truncated]", trunc.DegradedReasons)
	}

	clean := byURL["https://clean.test/"]
	if !clean.OK() || clean.Partial {
		t.Errorf("clean site: OK=%v Partial=%v reasons=%v", clean.OK(), clean.Partial, clean.DegradedReasons)
	}

	if got := c.Stats().Partial; got != 2 {
		t.Errorf("stats partial = %d, want 2", got)
	}
	counts := ds.FailureCounts()
	if counts["partial"] != 2 || counts["ok"] != 1 {
		t.Errorf("FailureCounts = %v, want partial:2 ok:1", counts)
	}
}
