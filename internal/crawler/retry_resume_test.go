package crawler

import (
	"context"
	"encoding/json"
	"net"
	"sync"
	"testing"
	"time"

	"permodyssey/internal/browser"
	"permodyssey/internal/store"
	"permodyssey/internal/synthweb"
)

// flakyFetcher serves a canned page, failing each URL a configured
// number of times first.
type flakyFetcher struct {
	mu       sync.Mutex
	failures map[string]int // remaining failures per URL; -1 = forever
	fail     func(url string) error
}

func (f *flakyFetcher) Fetch(_ context.Context, rawURL string) (*browser.Response, error) {
	f.mu.Lock()
	n := f.failures[rawURL]
	if n != 0 {
		if n > 0 {
			f.failures[rawURL] = n - 1
		}
		f.mu.Unlock()
		return nil, f.fail(rawURL)
	}
	f.mu.Unlock()
	return &browser.Response{
		Status: 200, FinalURL: rawURL,
		Body: "<html><body><p>ok</p></body></html>",
	}, nil
}

func timeoutErr(string) error { return context.DeadlineExceeded }

func TestRetryTransientFailure(t *testing.T) {
	f := &flakyFetcher{failures: map[string]int{"https://flaky.test/": 2}, fail: timeoutErr}
	b := browser.New(f, browser.DefaultOptions())
	c := New(b, Config{Workers: 1, PerSiteTimeout: time.Second,
		MaxRetries: 3, RetryBackoff: time.Millisecond})

	ds := c.Crawl(context.Background(), []Target{{Rank: 1, URL: "https://flaky.test/"}})
	rec := ds.Records[0]
	if !rec.OK() {
		t.Fatalf("record not OK after retries: failure=%q err=%q", rec.Failure, rec.Error)
	}
	if rec.Retries != 2 {
		t.Errorf("record retries = %d, want 2", rec.Retries)
	}
	if got := c.Stats().Retries; got != 2 {
		t.Errorf("stats retries = %d, want 2", got)
	}
}

func TestRetryExhausted(t *testing.T) {
	f := &flakyFetcher{failures: map[string]int{"https://down.test/": -1}, fail: timeoutErr}
	b := browser.New(f, browser.DefaultOptions())
	c := New(b, Config{Workers: 1, PerSiteTimeout: time.Second,
		MaxRetries: 2, RetryBackoff: time.Millisecond})

	ds := c.Crawl(context.Background(), []Target{{Rank: 1, URL: "https://down.test/"}})
	rec := ds.Records[0]
	if rec.Failure != store.FailureTimeout {
		t.Fatalf("failure = %q, want timeout", rec.Failure)
	}
	if rec.Retries != 2 {
		t.Errorf("record retries = %d, want 2 (budget exhausted)", rec.Retries)
	}
}

func TestNoRetryForPersistentFailure(t *testing.T) {
	dnsErr := func(url string) error {
		return &net.DNSError{Err: "no such host", Name: url, IsNotFound: true}
	}
	f := &flakyFetcher{failures: map[string]int{"https://gone.test/": -1}, fail: dnsErr}
	b := browser.New(f, browser.DefaultOptions())
	c := New(b, Config{Workers: 1, PerSiteTimeout: time.Second,
		MaxRetries: 3, RetryBackoff: time.Millisecond})

	ds := c.Crawl(context.Background(), []Target{{Rank: 1, URL: "https://gone.test/"}})
	rec := ds.Records[0]
	if rec.Failure != store.FailureUnreachable {
		t.Fatalf("failure = %q, want unreachable", rec.Failure)
	}
	if rec.Retries != 0 || c.Stats().Retries != 0 {
		t.Errorf("unreachable (persistent) was retried: rec=%d stats=%d",
			rec.Retries, c.Stats().Retries)
	}
}

// normalizeRecords strips wall-clock noise and serializes records for
// dataset equality checks.
func normalizeRecords(t *testing.T, ds *store.Dataset) []string {
	t.Helper()
	out := make([]string, 0, len(ds.Records))
	for _, rec := range ds.Records {
		rec.Elapsed = 0
		buf, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(buf))
	}
	return out
}

// TestCrawlResume proves interrupt-then-resume converges to the same
// dataset as one uninterrupted crawl: crawl half the targets, feed the
// partial dataset back through Config.Resume, and compare against a
// full reference run record by record.
func TestCrawlResume(t *testing.T) {
	cfg := synthweb.DefaultConfig()
	cfg.NumSites = 40
	cfg.Seed = 13
	// Unreachable sites fail deterministically (DNS, no timing); the
	// timing-sensitive classes stay out so datasets compare exactly.
	cfg.UnreachableRate = 0.1
	cfg.TimeoutRate, cfg.EphemeralRate, cfg.MinorRate = 0, 0, 0

	srv := synthweb.NewServer(cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	newCrawler := func(resume *store.Dataset) *Crawler {
		b := browser.New(browser.NewHTTPFetcher(srv.Client(0)), browser.DefaultOptions())
		return New(b, Config{Workers: 8, PerSiteTimeout: 5 * time.Second, Resume: resume})
	}
	var targets []Target
	for _, s := range srv.Sites() {
		targets = append(targets, Target{Rank: s.Rank, URL: s.URL()})
	}

	full := newCrawler(nil).Crawl(context.Background(), targets)

	// "Interrupt" after half the targets, then resume over the full list.
	partial := newCrawler(nil).Crawl(context.Background(), targets[:20])
	resumed := newCrawler(partial)
	ds := resumed.Crawl(context.Background(), targets)

	if got := resumed.Stats().Resumed; got != 20 {
		t.Errorf("resumed = %d, want 20", got)
	}
	if got := resumed.Stats().Visited; got != 20 {
		t.Errorf("visited = %d, want 20", got)
	}
	want, got := normalizeRecords(t, full), normalizeRecords(t, ds)
	if len(want) != len(got) {
		t.Fatalf("record counts differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("record %d differs after resume:\nfull:    %s\nresumed: %s",
				i, want[i], got[i])
		}
	}
}

// TestResumeRecrawlsCanceledRecords is the regression test for the
// resume-skips-cancelled-ranks bug: before Classify learned about
// context.Canceled, a visit interrupted by crawl shutdown was recorded
// as FailureMinor — persistent — so resume carried the record over and
// never re-visited the site. Now the record carries FailureCanceled and
// resume drops it: the rank is re-crawled, while genuinely persistent
// failures from the prior run are still skipped.
func TestResumeRecrawlsCanceledRecords(t *testing.T) {
	prior := &store.Dataset{Records: []store.SiteRecord{
		{Rank: 1, URL: "https://a.test/", Failure: store.FailureCanceled, Error: "context canceled"},
		{Rank: 2, URL: "https://b.test/", Failure: store.FailureUnreachable, Error: "no such host"},
	}}
	// The live fetcher succeeds for every URL, so any rank that actually
	// gets re-visited produces an OK record — which is exactly how we
	// tell "re-crawled" from "carried over".
	f := &flakyFetcher{failures: map[string]int{}, fail: timeoutErr}
	b := browser.New(f, browser.DefaultOptions())
	c := New(b, Config{Workers: 2, PerSiteTimeout: time.Second, Resume: prior})

	ds := c.Crawl(context.Background(), []Target{
		{Rank: 1, URL: "https://a.test/"},
		{Rank: 2, URL: "https://b.test/"},
	})

	byRank := map[int]store.SiteRecord{}
	for _, r := range ds.Records {
		byRank[r.Rank] = r
	}
	if len(byRank) != 2 {
		t.Fatalf("got %d distinct ranks, want 2: %+v", len(byRank), ds.Records)
	}
	if rec := byRank[1]; !rec.OK() {
		t.Errorf("canceled rank 1 was not re-crawled: failure=%q err=%q", rec.Failure, rec.Error)
	}
	if rec := byRank[2]; rec.Failure != store.FailureUnreachable {
		t.Errorf("persistent rank 2 should carry over unreachable, got failure=%q", rec.Failure)
	}
	if got := c.Stats().Resumed; got != 1 {
		t.Errorf("resumed = %d, want 1 (only the persistent record)", got)
	}
	if got := c.Stats().Visited; got != 1 {
		t.Errorf("visited = %d, want 1 (only the canceled rank)", got)
	}
}

// TestCancelMidCrawlThenResume drives the bug end to end: cancel a
// crawl mid-flight against a hanging site, check the interrupted
// record's class is transient FailureCanceled, then resume and verify
// the site is measured for real.
func TestCancelMidCrawlThenResume(t *testing.T) {
	release := make(chan struct{})
	hang := newHangingFetcher(release)
	b := browser.New(hang, browser.DefaultOptions())
	c := New(b, Config{Workers: 1, PerSiteTimeout: time.Minute})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-hang.started()
		cancel()
	}()
	partial := c.Crawl(ctx, []Target{{Rank: 1, URL: "https://slow.test/"}})
	close(release)

	if len(partial.Records) != 1 {
		t.Fatalf("got %d records, want 1", len(partial.Records))
	}
	if got := partial.Records[0].Failure; got != store.FailureCanceled {
		t.Fatalf("interrupted visit classified %q, want %q", got, store.FailureCanceled)
	}
	if !partial.Records[0].Failure.Transient() {
		t.Fatal("canceled class must be transient")
	}

	f := &flakyFetcher{failures: map[string]int{}, fail: timeoutErr}
	rb := browser.New(f, browser.DefaultOptions())
	rc := New(rb, Config{Workers: 1, PerSiteTimeout: time.Second, Resume: partial})
	ds := rc.Crawl(context.Background(), []Target{{Rank: 1, URL: "https://slow.test/"}})
	if len(ds.Records) != 1 || !ds.Records[0].OK() {
		t.Fatalf("resume did not re-crawl the canceled rank: %+v", ds.Records)
	}
	if got := rc.Stats().Resumed; got != 0 {
		t.Errorf("resumed = %d, want 0 (canceled record must be dropped)", got)
	}
}

// hangingFetcher blocks until released or the context dies, signalling
// once the first fetch has begun.
type hangingFetcher struct {
	startOnce sync.Once
	start     chan struct{}
	release   chan struct{}
}

func newHangingFetcher(release chan struct{}) *hangingFetcher {
	return &hangingFetcher{start: make(chan struct{}), release: release}
}

func (h *hangingFetcher) started() <-chan struct{} { return h.start }

func (h *hangingFetcher) Fetch(ctx context.Context, rawURL string) (*browser.Response, error) {
	h.startOnce.Do(func() { close(h.start) })
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-h.release:
		return &browser.Response{Status: 200, FinalURL: rawURL, Body: "<html></html>"}, nil
	}
}
