package crawler

import (
	"context"
	"encoding/json"
	"net"
	"sync"
	"testing"
	"time"

	"permodyssey/internal/browser"
	"permodyssey/internal/store"
	"permodyssey/internal/synthweb"
)

// flakyFetcher serves a canned page, failing each URL a configured
// number of times first.
type flakyFetcher struct {
	mu       sync.Mutex
	failures map[string]int // remaining failures per URL; -1 = forever
	fail     func(url string) error
}

func (f *flakyFetcher) Fetch(_ context.Context, rawURL string) (*browser.Response, error) {
	f.mu.Lock()
	n := f.failures[rawURL]
	if n != 0 {
		if n > 0 {
			f.failures[rawURL] = n - 1
		}
		f.mu.Unlock()
		return nil, f.fail(rawURL)
	}
	f.mu.Unlock()
	return &browser.Response{
		Status: 200, FinalURL: rawURL,
		Body: "<html><body><p>ok</p></body></html>",
	}, nil
}

func timeoutErr(string) error { return context.DeadlineExceeded }

func TestRetryTransientFailure(t *testing.T) {
	f := &flakyFetcher{failures: map[string]int{"https://flaky.test/": 2}, fail: timeoutErr}
	b := browser.New(f, browser.DefaultOptions())
	c := New(b, Config{Workers: 1, PerSiteTimeout: time.Second,
		MaxRetries: 3, RetryBackoff: time.Millisecond})

	ds := c.Crawl(context.Background(), []Target{{Rank: 1, URL: "https://flaky.test/"}})
	rec := ds.Records[0]
	if !rec.OK() {
		t.Fatalf("record not OK after retries: failure=%q err=%q", rec.Failure, rec.Error)
	}
	if rec.Retries != 2 {
		t.Errorf("record retries = %d, want 2", rec.Retries)
	}
	if got := c.Stats().Retries; got != 2 {
		t.Errorf("stats retries = %d, want 2", got)
	}
}

func TestRetryExhausted(t *testing.T) {
	f := &flakyFetcher{failures: map[string]int{"https://down.test/": -1}, fail: timeoutErr}
	b := browser.New(f, browser.DefaultOptions())
	c := New(b, Config{Workers: 1, PerSiteTimeout: time.Second,
		MaxRetries: 2, RetryBackoff: time.Millisecond})

	ds := c.Crawl(context.Background(), []Target{{Rank: 1, URL: "https://down.test/"}})
	rec := ds.Records[0]
	if rec.Failure != store.FailureTimeout {
		t.Fatalf("failure = %q, want timeout", rec.Failure)
	}
	if rec.Retries != 2 {
		t.Errorf("record retries = %d, want 2 (budget exhausted)", rec.Retries)
	}
}

func TestNoRetryForPersistentFailure(t *testing.T) {
	dnsErr := func(url string) error {
		return &net.DNSError{Err: "no such host", Name: url, IsNotFound: true}
	}
	f := &flakyFetcher{failures: map[string]int{"https://gone.test/": -1}, fail: dnsErr}
	b := browser.New(f, browser.DefaultOptions())
	c := New(b, Config{Workers: 1, PerSiteTimeout: time.Second,
		MaxRetries: 3, RetryBackoff: time.Millisecond})

	ds := c.Crawl(context.Background(), []Target{{Rank: 1, URL: "https://gone.test/"}})
	rec := ds.Records[0]
	if rec.Failure != store.FailureUnreachable {
		t.Fatalf("failure = %q, want unreachable", rec.Failure)
	}
	if rec.Retries != 0 || c.Stats().Retries != 0 {
		t.Errorf("unreachable (persistent) was retried: rec=%d stats=%d",
			rec.Retries, c.Stats().Retries)
	}
}

// normalizeRecords strips wall-clock noise and serializes records for
// dataset equality checks.
func normalizeRecords(t *testing.T, ds *store.Dataset) []string {
	t.Helper()
	out := make([]string, 0, len(ds.Records))
	for _, rec := range ds.Records {
		rec.Elapsed = 0
		buf, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(buf))
	}
	return out
}

// TestCrawlResume proves interrupt-then-resume converges to the same
// dataset as one uninterrupted crawl: crawl half the targets, feed the
// partial dataset back through Config.Resume, and compare against a
// full reference run record by record.
func TestCrawlResume(t *testing.T) {
	cfg := synthweb.DefaultConfig()
	cfg.NumSites = 40
	cfg.Seed = 13
	// Unreachable sites fail deterministically (DNS, no timing); the
	// timing-sensitive classes stay out so datasets compare exactly.
	cfg.UnreachableRate = 0.1
	cfg.TimeoutRate, cfg.EphemeralRate, cfg.MinorRate = 0, 0, 0

	srv := synthweb.NewServer(cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	newCrawler := func(resume *store.Dataset) *Crawler {
		b := browser.New(browser.NewHTTPFetcher(srv.Client(0)), browser.DefaultOptions())
		return New(b, Config{Workers: 8, PerSiteTimeout: 5 * time.Second, Resume: resume})
	}
	var targets []Target
	for _, s := range srv.Sites() {
		targets = append(targets, Target{Rank: s.Rank, URL: s.URL()})
	}

	full := newCrawler(nil).Crawl(context.Background(), targets)

	// "Interrupt" after half the targets, then resume over the full list.
	partial := newCrawler(nil).Crawl(context.Background(), targets[:20])
	resumed := newCrawler(partial)
	ds := resumed.Crawl(context.Background(), targets)

	if got := resumed.Stats().Resumed; got != 20 {
		t.Errorf("resumed = %d, want 20", got)
	}
	if got := resumed.Stats().Visited; got != 20 {
		t.Errorf("visited = %d, want 20", got)
	}
	want, got := normalizeRecords(t, full), normalizeRecords(t, ds)
	if len(want) != len(got) {
		t.Fatalf("record counts differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("record %d differs after resume:\nfull:    %s\nresumed: %s",
				i, want[i], got[i])
		}
	}
}
