package crawler

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"permodyssey/internal/browser"
)

// ErrCircuitOpen is returned (wrapped, with the host) for fetches the
// circuit breaker refused because the target host had just failed
// repeatedly. Classify maps it to store.FailureBreakerOpen, which is
// transient: the retry backoff outlives the breaker cooldown, so a
// later attempt becomes the half-open probe.
var ErrCircuitOpen = errors.New("circuit open")

// BreakerConfig tunes the per-host circuit breaker.
type BreakerConfig struct {
	// Threshold is how many consecutive failures open a host's circuit;
	// 0 disables the breaker.
	Threshold int
	// Cooldown is how long an open circuit refuses requests before it
	// half-opens and lets a single probe through. With the scheduler's
	// breaker deferral on (Config.DeferBreakerOpen) a retried visit is
	// parked until the probe time whatever the backoff; without it, keep
	// the cooldown at or below the crawler's retry backoff so a retried
	// visit always gets its probe.
	Cooldown time.Duration
}

// DefaultBreakerConfig trips after 5 consecutive failures and
// half-opens after 500ms.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{Threshold: 5, Cooldown: 500 * time.Millisecond}
}

// BreakerStats is a point-in-time snapshot of Breaker counters.
type BreakerStats struct {
	// Trips counts closed→open transitions; Reopens half-open probes
	// that failed and re-opened the circuit.
	Trips   uint64
	Reopens uint64
	// HalfOpenProbes counts requests let through an open circuit after
	// its cooldown; Closes the probes that succeeded and closed it.
	HalfOpenProbes uint64
	Closes         uint64
	// ShortCircuits counts requests refused while a circuit was open.
	ShortCircuits uint64
	// OpenHosts is the number of hosts currently open or half-open.
	OpenHosts uint64
}

// circuitState is one host's breaker position.
type circuitState uint8

const (
	circuitClosed circuitState = iota
	circuitOpen
	circuitHalfOpen // one probe in flight
)

// hostCircuit tracks one host.
type hostCircuit struct {
	state       circuitState
	consecutive int
	openedAt    time.Time
}

// Breaker is a per-host circuit breaker: after Threshold consecutive
// failures against one host it refuses further requests to that host
// (short-circuit) until Cooldown has passed, then lets exactly one
// probe through (half-open). A successful probe closes the circuit; a
// failed one re-opens it for another cooldown. The paper's crawl lost
// ~57k sites to flaky origins; a production crawler must stop hammering
// them without losing the ones that recover.
type Breaker struct {
	cfg BreakerConfig

	mu    sync.Mutex
	hosts map[string]*hostCircuit

	trips, reopens, halfOpens, closes, shortCircuits atomic.Uint64
}

// NewBreaker creates a Breaker; a zero Threshold disables it (Allow
// always true, Report a no-op).
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 500 * time.Millisecond
	}
	return &Breaker{cfg: cfg, hosts: map[string]*hostCircuit{}}
}

// Allow reports whether a request to host may proceed right now. A
// false return is a short-circuit: the caller must not hit the host.
func (b *Breaker) Allow(host string) bool {
	if b.cfg.Threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c, ok := b.hosts[host]
	if !ok {
		return true
	}
	switch c.state {
	case circuitClosed:
		return true
	case circuitHalfOpen:
		// A probe is already in flight; everyone else waits.
		b.shortCircuits.Add(1)
		return false
	default: // open
		if time.Since(c.openedAt) >= b.cfg.Cooldown {
			c.state = circuitHalfOpen
			b.halfOpens.Add(1)
			return true
		}
		b.shortCircuits.Add(1)
		return false
	}
}

// NextProbe reports whether a request to host could be admitted right
// now without mutating any circuit state, and — when it could not —
// the earliest instant the circuit will next admit a probe. The crawl
// scheduler consults it before dispatching a visit so that sites on an
// open circuit are deferred to the half-open time instead of burning a
// dispatch on a short-circuit. Unlike Allow it never transitions the
// circuit to half-open and never counts a short-circuit; the fetch
// path's Allow still arbitrates who becomes the actual probe.
func (b *Breaker) NextProbe(host string) (at time.Time, allow bool) {
	if b.cfg.Threshold <= 0 {
		return time.Time{}, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c, ok := b.hosts[host]
	if !ok || c.state == circuitClosed {
		return time.Time{}, true
	}
	if c.state == circuitHalfOpen {
		// A probe is in flight; its outcome lands within roughly one
		// cooldown (success closes the circuit, failure re-opens it and
		// restarts the clock), so that is when to look again.
		return time.Now().Add(b.cfg.Cooldown), false
	}
	probeAt := c.openedAt.Add(b.cfg.Cooldown)
	if !time.Now().Before(probeAt) {
		return time.Time{}, true
	}
	return probeAt, false
}

// Report records the outcome of a request Allow let through.
func (b *Breaker) Report(host string, ok bool) {
	if b.cfg.Threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.hosts[host]
	if c == nil {
		if ok {
			return // healthy host, nothing to track
		}
		c = &hostCircuit{}
		b.hosts[host] = c
	}
	if ok {
		if c.state != circuitClosed {
			b.closes.Add(1)
		}
		delete(b.hosts, host) // closed with a clean slate
		return
	}
	c.consecutive++
	switch c.state {
	case circuitHalfOpen:
		c.state = circuitOpen
		c.openedAt = time.Now()
		b.reopens.Add(1)
	case circuitClosed:
		if c.consecutive >= b.cfg.Threshold {
			c.state = circuitOpen
			c.openedAt = time.Now()
			b.trips.Add(1)
		}
	}
}

// Stats snapshots the breaker counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	open := uint64(0)
	for _, c := range b.hosts {
		if c.state != circuitClosed {
			open++
		}
	}
	b.mu.Unlock()
	return BreakerStats{
		Trips:          b.trips.Load(),
		Reopens:        b.reopens.Load(),
		HalfOpenProbes: b.halfOpens.Load(),
		Closes:         b.closes.Load(),
		ShortCircuits:  b.shortCircuits.Load(),
		OpenHosts:      open,
	}
}

// BreakerFetcher guards every fetch of the wrapped Fetcher with a
// Breaker, keyed by URL host. It sits directly above the real HTTP
// fetcher — below the response cache — so cache hits never count and
// every real network attempt does.
type BreakerFetcher struct {
	Inner   browser.Fetcher
	Breaker *Breaker
}

// NewBreakerFetcher wraps inner with a fresh Breaker under cfg.
func NewBreakerFetcher(inner browser.Fetcher, cfg BreakerConfig) *BreakerFetcher {
	return &BreakerFetcher{Inner: inner, Breaker: NewBreaker(cfg)}
}

// Fetch implements browser.Fetcher.
func (f *BreakerFetcher) Fetch(ctx context.Context, rawURL string) (*browser.Response, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, err
	}
	host := u.Hostname()
	if !f.Breaker.Allow(host) {
		return nil, fmt.Errorf("%w for host %s", ErrCircuitOpen, host)
	}
	resp, err := f.Inner.Fetch(ctx, rawURL)
	// A cancelled parent context says nothing about the host's health;
	// don't let one slow site open circuits for everyone else.
	if err != nil && (errors.Is(err, context.Canceled) || ctx.Err() != nil) {
		return resp, err
	}
	f.Breaker.Report(host, err == nil)
	return resp, err
}
