package crawler

import (
	"context"
	"errors"
	"testing"
	"time"

	"permodyssey/internal/browser"
	"permodyssey/internal/store"
)

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: 20 * time.Millisecond})

	// Below threshold: stays closed.
	for i := 0; i < 2; i++ {
		if !b.Allow("h.test") {
			t.Fatalf("closed circuit refused request %d", i)
		}
		b.Report("h.test", false)
	}
	if s := b.Stats(); s.Trips != 0 {
		t.Fatalf("tripped below threshold: %+v", s)
	}

	// Third consecutive failure: trips open.
	b.Allow("h.test")
	b.Report("h.test", false)
	if s := b.Stats(); s.Trips != 1 || s.OpenHosts != 1 {
		t.Fatalf("want 1 trip and 1 open host, got %+v", s)
	}
	if b.Allow("h.test") {
		t.Fatal("open circuit allowed a request inside its cooldown")
	}
	if s := b.Stats(); s.ShortCircuits == 0 {
		t.Fatalf("short-circuit not counted: %+v", s)
	}

	// Other hosts are unaffected.
	if !b.Allow("other.test") {
		t.Fatal("healthy host blocked by another host's open circuit")
	}

	// After the cooldown: exactly one half-open probe gets through.
	time.Sleep(25 * time.Millisecond)
	if !b.Allow("h.test") {
		t.Fatal("cooled-down circuit refused its half-open probe")
	}
	if b.Allow("h.test") {
		t.Fatal("second request allowed while a probe was in flight")
	}

	// Failed probe: re-opens for another cooldown.
	b.Report("h.test", false)
	if s := b.Stats(); s.Reopens != 1 || s.HalfOpenProbes != 1 {
		t.Fatalf("want 1 reopen after failed probe, got %+v", s)
	}
	if b.Allow("h.test") {
		t.Fatal("re-opened circuit allowed a request")
	}

	// Successful probe: closes and forgets the host.
	time.Sleep(25 * time.Millisecond)
	if !b.Allow("h.test") {
		t.Fatal("re-cooled circuit refused its probe")
	}
	b.Report("h.test", true)
	if s := b.Stats(); s.Closes != 1 || s.OpenHosts != 0 {
		t.Fatalf("want closed circuit after successful probe, got %+v", s)
	}
	if !b.Allow("h.test") {
		t.Fatal("closed circuit refused a request")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 0})
	for i := 0; i < 100; i++ {
		if !b.Allow("h.test") {
			t.Fatal("disabled breaker refused a request")
		}
		b.Report("h.test", false)
	}
	if s := b.Stats(); s != (BreakerStats{}) {
		t.Fatalf("disabled breaker counted something: %+v", s)
	}
}

func TestBreakerFetcherShortCircuits(t *testing.T) {
	f := &flakyFetcher{failures: map[string]int{"https://down.test/": -1},
		fail: func(string) error { return errors.New("read tcp: connection reset by peer") }}
	bf := NewBreakerFetcher(f, BreakerConfig{Threshold: 2, Cooldown: time.Hour})
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := bf.Fetch(ctx, "https://down.test/"); err == nil {
			t.Fatal("want fetch error")
		}
	}
	_, err := bf.Fetch(ctx, "https://down.test/")
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen after threshold, got %v", err)
	}
	if got := Classify(err); got != store.FailureBreakerOpen {
		t.Fatalf("Classify(short-circuit) = %q, want breaker-open", got)
	}
	// The short-circuited attempt never reached the inner fetcher.
	if s := bf.Breaker.Stats(); s.ShortCircuits != 1 {
		t.Fatalf("want 1 short-circuit, got %+v", s)
	}
	// A healthy host is unaffected.
	if _, err := bf.Fetch(ctx, "https://ok.test/"); err != nil {
		t.Fatalf("healthy host blocked: %v", err)
	}
}

func TestBreakerFetcherIgnoresCancellation(t *testing.T) {
	f := &flakyFetcher{failures: map[string]int{"https://slow.test/": -1},
		fail: func(string) error { return context.Canceled }}
	bf := NewBreakerFetcher(f, BreakerConfig{Threshold: 1, Cooldown: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 3; i++ {
		if _, err := bf.Fetch(ctx, "https://slow.test/"); errors.Is(err, ErrCircuitOpen) {
			t.Fatal("cancellation opened the circuit")
		}
	}
	if s := bf.Breaker.Stats(); s.Trips != 0 {
		t.Fatalf("cancelled fetches tripped the breaker: %+v", s)
	}
}

// TestBreakerRecoversFlappingSite drives a full crawl against a host
// that fails enough to open its circuit, then recovers: the retry
// backoff must outlive the cooldown so a half-open probe lands and the
// site is measured after all.
func TestBreakerRecoversFlappingSite(t *testing.T) {
	f := &flakyFetcher{failures: map[string]int{"https://flap.test/": 2},
		fail: func(string) error { return errors.New("read tcp: connection reset by peer") }}
	bf := NewBreakerFetcher(f, BreakerConfig{Threshold: 2, Cooldown: time.Millisecond})
	b := browser.New(bf, browser.DefaultOptions())
	c := New(b, Config{Workers: 1, PerSiteTimeout: time.Second,
		MaxRetries: 4, RetryBackoff: 5 * time.Millisecond})

	ds := c.Crawl(context.Background(), []Target{{Rank: 1, URL: "https://flap.test/"}})
	rec := ds.Records[0]
	if !rec.OK() {
		t.Fatalf("flapping site not recovered: failure=%q err=%q", rec.Failure, rec.Error)
	}
	if rec.FirstAttemptFailure != store.FailureEphemeral {
		t.Errorf("FirstAttemptFailure = %q, want ephemeral", rec.FirstAttemptFailure)
	}
	s := bf.Breaker.Stats()
	if s.Trips != 1 {
		t.Errorf("want the circuit to trip once, got %+v", s)
	}
	if s.HalfOpenProbes == 0 || s.Closes == 0 {
		t.Errorf("want a successful half-open probe, got %+v", s)
	}
}
