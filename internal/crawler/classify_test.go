package crawler

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/url"
	"syscall"
	"testing"

	"permodyssey/internal/browser"
	"permodyssey/internal/store"
)

// TestClassifyTaxonomy pins the whole error taxonomy in one table,
// including the wrapped forms that net/http and net/url actually
// produce: a mid-body reset arrives as url.Error → net.OpError →
// syscall.ECONNRESET, not as a bare string, and must land in the
// ephemeral class even though the same OpError type also carries dial
// failures (unreachable).
func TestClassifyTaxonomy(t *testing.T) {
	dialErr := &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
	readReset := &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
	cases := []struct {
		name string
		err  error
		want store.FailureClass
	}{
		{"nil", nil, store.FailureNone},

		// Timeouts.
		{"deadline", context.DeadlineExceeded, store.FailureTimeout},
		{"wrapped deadline", fmt.Errorf("visit: %w", context.DeadlineExceeded), store.FailureTimeout},
		{"url timeout", &url.Error{Op: "Get", URL: "https://x.test/", Err: context.DeadlineExceeded}, store.FailureTimeout},

		// Unreachable: DNS and dial-stage failures.
		{"dns", &net.DNSError{Err: "no such host", Name: "x.test", IsNotFound: true}, store.FailureUnreachable},
		{"url-wrapped dns", &url.Error{Op: "Get", URL: "https://x.test/", Err: &net.DNSError{Err: "no such host"}}, store.FailureUnreachable},
		{"dial refused", dialErr, store.FailureUnreachable},
		{"url-wrapped dial", &url.Error{Op: "Get", URL: "https://x.test/", Err: dialErr}, store.FailureUnreachable},
		{"http status", errors.New("fetch https://x.test/: status 500"), store.FailureUnreachable},

		// Ephemeral: the connection died mid-exchange.
		{"read reset", readReset, store.FailureEphemeral},
		{"url-wrapped reset", &url.Error{Op: "Get", URL: "https://x.test/", Err: readReset}, store.FailureEphemeral},
		{"bare econnreset", syscall.ECONNRESET, store.FailureEphemeral},
		{"unexpected EOF", io.ErrUnexpectedEOF, store.FailureEphemeral},
		{"url-wrapped unexpected EOF", &url.Error{Op: "Get", URL: "https://x.test/", Err: io.ErrUnexpectedEOF}, store.FailureEphemeral},
		{"stringly EOF", errors.New("fetch: EOF"), store.FailureEphemeral},
		{"stringly unexpected EOF", errors.New("fetch https://x.test/: unexpected EOF"), store.FailureEphemeral},
		{"stringly reset", errors.New("read tcp: connection reset by peer"), store.FailureEphemeral},
		{"write on broken conn", &net.OpError{Op: "write", Net: "tcp", Err: syscall.EPIPE}, store.FailureEphemeral},

		// Minor: protocol garbage the crawler refused to consume. The
		// EOF fallback must not hijack these even when their message
		// happens to mention EOF (it runs after the minor-class checks
		// and matches only "unexpected EOF" or a wrapped io.EOF suffix).
		{"malformed response", errors.New("net/http: malformed HTTP response \"x\""), store.FailureMinor},
		{"malformed header", &url.Error{Op: "Get", URL: "https://x.test/", Err: errors.New("malformed MIME header line")}, store.FailureMinor},
		{"malformed mentioning EOF", errors.New("net/http: malformed chunked encoding before EOF"), store.FailureMinor},
		{"oversized header", errors.New("net/http: server response headers exceeded 262144 bytes; aborted"), store.FailureMinor},
		{"redirect loop", &url.Error{Op: "Get", URL: "https://x.test/", Err: errors.New("stopped after 10 redirects")}, store.FailureMinor},
		{"redirect loop mentioning EOF", errors.New("stopped after 10 redirects; last response ended in EOF"), store.FailureMinor},
		{"EOF substring mid-word", errors.New("parsing GEOFENCE frame failed"), store.FailureMinor},
		{"unknown", errors.New("something odd"), store.FailureMinor},

		// Breaker short-circuit.
		{"circuit open", fmt.Errorf("%w for host x.test", ErrCircuitOpen), store.FailureBreakerOpen},
		{"url-wrapped circuit open", &url.Error{Op: "Get", URL: "https://x.test/", Err: ErrCircuitOpen}, store.FailureBreakerOpen},

		// Cancellation: the crawl shut down mid-visit. Transient, so
		// resume re-crawls instead of persisting a minor failure.
		{"canceled", context.Canceled, store.FailureCanceled},
		{"wrapped canceled", fmt.Errorf("visit: %w", context.Canceled), store.FailureCanceled},
		{"url-wrapped canceled", &url.Error{Op: "Get", URL: "https://x.test/", Err: context.Canceled}, store.FailureCanceled},

		// Offline replay: archived failures keep their recorded class;
		// a genuine archive miss is the DNS-failure analogue.
		{"replayed timeout", &browser.ReplayedFailure{Class: string(store.FailureTimeout), Msg: "Get \"https://x.test/\": context deadline exceeded"}, store.FailureTimeout},
		{"replayed ephemeral", &browser.ReplayedFailure{Class: string(store.FailureEphemeral), Msg: "reading https://x.test/: unexpected EOF"}, store.FailureEphemeral},
		{"offline miss", fmt.Errorf("%w: https://x.test/", browser.ErrNotArchived), store.FailureUnreachable},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Classify(tc.err); got != tc.want {
				t.Errorf("Classify(%v) = %q, want %q", tc.err, got, tc.want)
			}
		})
	}
}

// TestClassifyTransient pins which classes the retry loop acts on.
func TestClassifyTransient(t *testing.T) {
	transient := []store.FailureClass{store.FailureTimeout, store.FailureEphemeral, store.FailureBreakerOpen, store.FailureCanceled}
	persistent := []store.FailureClass{store.FailureNone, store.FailureUnreachable, store.FailureMinor, store.FailureExcluded}
	for _, f := range transient {
		if !f.Transient() {
			t.Errorf("%q should be transient", f)
		}
	}
	for _, f := range persistent {
		if f.Transient() {
			t.Errorf("%q should not be transient", f)
		}
	}
}
