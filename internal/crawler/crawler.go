// Package crawler runs the measurement at scale: a worker pool of mini
// browsers with per-site deadlines, the paper's crawl-failure taxonomy
// (§4), post-visit exclusion of incomplete pages, and immediate result
// persistence into a dataset.
//
// The paper ran 40 parallel Playwright crawlers with a 60s load budget
// plus 20s settle time and a 90s hard deadline per page; this crawler
// exposes the same knobs scaled to the synthetic web.
package crawler

import (
	"context"
	"errors"
	"io"
	"net"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"permodyssey/internal/browser"
	"permodyssey/internal/origin"
	"permodyssey/internal/store"
)

// Target is one site to visit.
type Target struct {
	Rank int
	URL  string
}

// Config tunes the crawl.
type Config struct {
	// Workers is the number of parallel crawlers (the paper used 40).
	Workers int
	// PerSiteTimeout is the hard deadline per page (the paper's 90s).
	PerSiteTimeout time.Duration
	// FollowInternalLinks, when positive, visits up to that many
	// same-site pages linked from the landing page — lifting the
	// landing-page-only limitation of §6.1. The per-site deadline covers
	// the landing page plus all internal pages together.
	FollowInternalLinks int
	// Progress, when non-nil, receives the number of completed sites.
	Progress func(done, total int)
	// Sink, when non-nil, receives each record as soon as its visit
	// completes (the paper's C14: results are persisted immediately, not
	// at the end of the crawl). Called from the collector goroutine, in
	// completion order.
	Sink func(store.SiteRecord)
}

// DefaultConfig returns crawl settings scaled for the synthetic web.
func DefaultConfig() Config {
	return Config{
		Workers:        32,
		PerSiteTimeout: 10 * time.Second,
	}
}

// Crawler drives a Browser over a target list.
type Crawler struct {
	Browser *browser.Browser
	Config  Config
}

// New creates a Crawler.
func New(b *browser.Browser, cfg Config) *Crawler {
	if cfg.Workers <= 0 {
		cfg.Workers = 32
	}
	if cfg.PerSiteTimeout <= 0 {
		cfg.PerSiteTimeout = 10 * time.Second
	}
	return &Crawler{Browser: b, Config: cfg}
}

// Crawl visits every target and returns the dataset, ordered by rank.
func (c *Crawler) Crawl(ctx context.Context, targets []Target) *store.Dataset {
	jobs := make(chan Target)
	results := make(chan store.SiteRecord)

	var wg sync.WaitGroup
	for i := 0; i < c.Config.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range jobs {
				results <- c.visit(ctx, t)
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, t := range targets {
			select {
			case jobs <- t:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	ds := &store.Dataset{}
	done := 0
	for rec := range results {
		ds.Add(rec)
		if c.Config.Sink != nil {
			c.Config.Sink(rec)
		}
		done++
		if c.Config.Progress != nil {
			c.Config.Progress(done, len(targets))
		}
	}
	sort.Slice(ds.Records, func(i, j int) bool { return ds.Records[i].Rank < ds.Records[j].Rank })
	return ds
}

// visit measures one site with the per-site deadline.
func (c *Crawler) visit(ctx context.Context, t Target) store.SiteRecord {
	start := time.Now()
	vctx, cancel := context.WithTimeout(ctx, c.Config.PerSiteTimeout)
	defer cancel()
	page, err := c.Browser.Visit(vctx, t.URL)
	rec := store.SiteRecord{Rank: t.Rank, URL: t.URL, Elapsed: time.Since(start)}
	if err != nil {
		rec.Failure = Classify(err)
		rec.Error = err.Error()
		return rec
	}
	if page.Truncated {
		// The paper excluded pages whose frame collection was incomplete
		// ("often occurred due to the presence of numerous included
		// frames", §4).
		rec.Failure = store.FailureExcluded
		rec.Page = page
		return rec
	}
	rec.Page = page
	if c.Config.FollowInternalLinks > 0 {
		rec.InternalPages = c.followLinks(vctx, page)
		rec.Elapsed = time.Since(start)
	}
	return rec
}

// followLinks visits up to FollowInternalLinks same-site pages linked
// from the landing page. Failures on internal pages are silently
// skipped: the landing page remains the record of note.
func (c *Crawler) followLinks(ctx context.Context, page *browser.PageResult) []browser.PageResult {
	top := page.TopFrame()
	if top == nil || top.Site == "" {
		return nil
	}
	var out []browser.PageResult
	seen := map[string]bool{page.URL: true, top.FinalURL: true}
	for _, link := range page.Links {
		if len(out) >= c.Config.FollowInternalLinks {
			break
		}
		if seen[link] {
			continue
		}
		seen[link] = true
		o, err := origin.Parse(link)
		if err != nil || o.Site() != top.Site {
			continue // external links stay out of scope
		}
		sub, err := c.Browser.Visit(ctx, link)
		if err != nil || sub.Truncated {
			continue
		}
		out = append(out, *sub)
	}
	return out
}

// Classify maps a visit error to the paper's failure taxonomy.
func Classify(err error) store.FailureClass {
	if err == nil {
		return store.FailureNone
	}
	// Deadline: page-load timeout.
	if errors.Is(err, context.DeadlineExceeded) {
		return store.FailureTimeout
	}
	var ue *url.Error
	if errors.As(err, &ue) && ue.Timeout() {
		return store.FailureTimeout
	}
	// DNS and connection failures: unreachable.
	var dnsErr *net.DNSError
	if errors.As(err, &dnsErr) {
		return store.FailureUnreachable
	}
	var opErr *net.OpError
	if errors.As(err, &opErr) {
		return store.FailureUnreachable
	}
	msg := err.Error()
	switch {
	case errors.Is(err, io.ErrUnexpectedEOF), strings.Contains(msg, "unexpected EOF"),
		strings.Contains(msg, "EOF"):
		// The body died mid-read: ephemeral content.
		return store.FailureEphemeral
	case strings.Contains(msg, "malformed"):
		return store.FailureMinor
	case strings.Contains(msg, "status "):
		return store.FailureUnreachable
	default:
		return store.FailureMinor
	}
}
