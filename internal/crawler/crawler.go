// Package crawler runs the measurement at scale: a worker pool of mini
// browsers with per-site deadlines, the paper's crawl-failure taxonomy
// (§4), post-visit exclusion of incomplete pages, retry-with-backoff
// for transient failures, checkpoint/resume over a partial dataset, and
// immediate result persistence into a dataset.
//
// The paper ran 40 parallel Playwright crawlers with a 60s load budget
// plus 20s settle time and a 90s hard deadline per page; this crawler
// exposes the same knobs scaled to the synthetic web.
package crawler

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"permodyssey/internal/browser"
	"permodyssey/internal/origin"
	"permodyssey/internal/store"
)

// Target is one site to visit.
type Target struct {
	Rank int
	URL  string
}

// PartitionTargets returns the shard'th of shards rank-partitions of
// targets: the subset whose Rank ≡ shard (mod shards), preserving
// order. The modulo split interleaves ranks across the fleet so every
// shard sees the same mix of popular and tail sites (rank correlates
// with page weight in the synthetic population, as it does on the real
// web); the partitions are disjoint and their union is the full target
// list, which is what lets a merged fleet crawl reproduce a
// single-process dataset exactly. shards <= 1 returns targets
// unchanged.
func PartitionTargets(targets []Target, shard, shards int) []Target {
	if shards <= 1 {
		return targets
	}
	out := make([]Target, 0, len(targets)/shards+1)
	for _, t := range targets {
		if t.Rank%shards == shard {
			out = append(out, t)
		}
	}
	return out
}

// Crawl defaults — the single source of truth shared by DefaultConfig
// and the fallbacks New applies to a partially-filled Config.
const (
	// DefaultWorkers is the parallel crawler count (the paper used 40).
	DefaultWorkers = 32
	// DefaultPerSiteTimeout is the hard per-page deadline analogue of
	// the paper's 90s, scaled to the synthetic web.
	DefaultPerSiteTimeout = 10 * time.Second
	// DefaultRetryBackoff is the base delay before a retry; it doubles
	// per attempt.
	DefaultRetryBackoff = 100 * time.Millisecond
)

// Config tunes the crawl.
type Config struct {
	// Workers is the number of parallel crawlers.
	Workers int
	// PerSiteTimeout is the hard deadline per page; each retry attempt
	// gets a fresh deadline.
	PerSiteTimeout time.Duration
	// MaxRetries is how many extra attempts a visit gets when it fails
	// with a transient class (timeout, ephemeral — see
	// store.FailureClass.Transient). 0 disables retries.
	MaxRetries int
	// RetryBackoff is the delay before the first retry, doubling per
	// subsequent attempt (exponential backoff). The scheduler serves it
	// by re-queueing the visit with a deadline — the worker moves on to
	// other sites meanwhile — unless BlockingBackoff reverts to
	// sleeping inside the worker.
	RetryBackoff time.Duration
	// HostConcurrency caps concurrently in-flight visits per host so
	// one slow host cannot monopolize the pool. 0 means
	// DefaultHostConcurrency; negative disables the cap.
	HostConcurrency int
	// Breaker, when non-nil, is the per-host circuit breaker guarding
	// the fetch path (core wires the BreakerFetcher's Breaker here). It
	// lets the scheduler observe circuit state at dispatch time.
	Breaker *Breaker
	// DeferBreakerOpen defers a visit whose host's circuit is open
	// until the breaker's half-open probe time instead of dispatching
	// it into a guaranteed breaker-open short-circuit. Requires
	// Breaker.
	DeferBreakerOpen bool
	// BlockingBackoff reverts to the legacy retry behaviour: the worker
	// sleeps out each backoff instead of re-queueing the visit. Kept as
	// the measurable baseline for the scheduler benchmarks; leave it
	// off in production crawls.
	BlockingBackoff bool
	// Resume, when non-nil, is a partial dataset from an interrupted
	// crawl: its records are carried over verbatim and their ranks are
	// skipped, so interrupt-then-resume converges to the same dataset
	// as one uninterrupted run.
	Resume *store.Dataset
	// FollowInternalLinks, when positive, visits up to that many
	// same-site pages linked from the landing page — lifting the
	// landing-page-only limitation of §6.1. The per-site deadline covers
	// the landing page plus all internal pages together.
	FollowInternalLinks int
	// Progress, when non-nil, receives the number of completed sites
	// (resumed records count as already completed).
	Progress func(done, total int)
	// Sink, when non-nil, receives each record as soon as its visit
	// completes (the paper's C14: results are persisted immediately, not
	// at the end of the crawl). Called from the collector goroutine, in
	// completion order. Resumed records are not re-sent: they are
	// already persisted.
	Sink func(store.SiteRecord)
}

// withDefaults fills unset fields from the package defaults.
func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.PerSiteTimeout <= 0 {
		cfg.PerSiteTimeout = DefaultPerSiteTimeout
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	if cfg.HostConcurrency == 0 {
		cfg.HostConcurrency = DefaultHostConcurrency
	}
	return cfg
}

// DefaultConfig returns crawl settings scaled for the synthetic web.
func DefaultConfig() Config { return Config{}.withDefaults() }

// Stats counts what a crawl actually did, beyond the records it
// produced. Counters accumulate across Crawl calls on one Crawler.
type Stats struct {
	// Visited is the number of sites visited live this run; Resumed the
	// number skipped because a Resume dataset already contained them.
	Visited int
	Resumed int
	// Retries is the total number of extra visit attempts spent on
	// transient failures.
	Retries int
	// Panics is the number of visit attempts that panicked inside the
	// browser/parser/interpreter and were converted to FailureMinor
	// records instead of killing the crawl.
	Panics int
	// Partial is the number of records that succeeded in degraded form
	// (a subresource frame, external script, or body tail was lost).
	Partial int
	// Requeued is the number of transient-failure retries the scheduler
	// re-queued with a backoff deadline instead of sleeping inside a
	// worker. In scheduler mode (the default) it tracks Retries; under
	// BlockingBackoff it stays zero.
	Requeued int
	// Deferred is the total number of entries parked on the scheduler's
	// time-deferral heap: backoff requeues plus breaker deferrals.
	Deferred int
	// BreakerDeferred counts dispatches avoided because the target
	// host's circuit was open: the visit was deferred to the half-open
	// probe time instead of being burned as a breaker-open record.
	BreakerDeferred int
	// MaxReadyDepth is the high-water mark of the scheduler's ready
	// queue; MaxHostInFlight the largest per-host visit concurrency
	// observed (bounded by Config.HostConcurrency when the cap is on).
	MaxReadyDepth   int
	MaxHostInFlight int
}

// Crawler drives a Browser over a target list.
type Crawler struct {
	Browser *browser.Browser
	Config  Config

	visited atomic.Int64
	resumed atomic.Int64
	retries atomic.Int64
	panics  atomic.Int64
	partial atomic.Int64

	requeued        atomic.Int64
	deferred        atomic.Int64
	breakerDeferred atomic.Int64
	maxReady        atomic.Int64
	maxHostInflight atomic.Int64
}

// New creates a Crawler, filling unset Config fields with the package
// defaults (the same values DefaultConfig returns).
func New(b *browser.Browser, cfg Config) *Crawler {
	return &Crawler{Browser: b, Config: cfg.withDefaults()}
}

// Stats snapshots the crawl counters.
func (c *Crawler) Stats() Stats {
	return Stats{
		Visited:         int(c.visited.Load()),
		Resumed:         int(c.resumed.Load()),
		Retries:         int(c.retries.Load()),
		Panics:          int(c.panics.Load()),
		Partial:         int(c.partial.Load()),
		Requeued:        int(c.requeued.Load()),
		Deferred:        int(c.deferred.Load()),
		BreakerDeferred: int(c.breakerDeferred.Load()),
		MaxReadyDepth:   int(c.maxReady.Load()),
		MaxHostInFlight: int(c.maxHostInflight.Load()),
	}
}

// Crawl visits every target and returns the dataset, ordered by rank.
// With Config.Resume set, targets whose rank already has a record are
// skipped and the prior records are carried into the result.
//
// Dispatch runs through the host-aware scheduler: pending targets fill
// a ready queue, workers pull from it, transiently-failed visits are
// re-queued with their backoff deadline instead of blocking a worker,
// visits to a host whose circuit is open are deferred to the half-open
// probe time (Config.DeferBreakerOpen), and per-host in-flight caps
// keep one slow host from monopolizing the pool. The final dataset is
// identical to the old flat pool's — rank-sorted, resume-equivalent,
// with the same retry budget per site — only the worker-seconds spent
// waiting move off the workers.
func (c *Crawler) Crawl(ctx context.Context, targets []Target) *store.Dataset {
	ds := &store.Dataset{Records: make([]store.SiteRecord, 0, len(targets))}
	pending := targets
	done := 0
	if c.Config.Resume != nil {
		completed := make(map[int]bool, len(c.Config.Resume.Records))
		for _, r := range c.Config.Resume.Records {
			if r.Failure == store.FailureCanceled {
				// A cancelled visit is an artifact of the interrupted
				// run, not a site outcome: drop the record and re-crawl
				// its rank.
				continue
			}
			completed[r.Rank] = true
			ds.Records = append(ds.Records, r)
		}
		pending = make([]Target, 0, len(targets))
		for _, t := range targets {
			if completed[t.Rank] {
				done++
				continue
			}
			pending = append(pending, t)
		}
		c.resumed.Add(int64(done))
	}

	sched := newScheduler(c.Config.HostConcurrency, c.Config.Breaker, c.Config.DeferBreakerOpen)
	for _, t := range pending {
		sched.enqueue(t)
	}
	// The scheduler's cond cannot watch ctx directly; a watcher stops it
	// on cancellation so blocked workers wake and exit.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			sched.stop()
		case <-watchDone:
		}
	}()

	results := make(chan store.SiteRecord, c.Config.Workers)
	var wg sync.WaitGroup
	for i := 0; i < c.Config.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.worker(ctx, sched, results)
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	for rec := range results {
		ds.Add(rec)
		c.visited.Add(1)
		if c.Config.Sink != nil {
			c.Config.Sink(rec)
		}
		done++
		if c.Config.Progress != nil {
			c.Config.Progress(done, len(targets))
		}
	}
	close(watchDone)
	sched.stop()
	c.harvestSchedStats(sched)
	sort.Slice(ds.Records, func(i, j int) bool { return ds.Records[i].Rank < ds.Records[j].Rank })
	return ds
}

// worker pulls dispatchable entries from the scheduler until the crawl
// drains. One pull is one visit attempt; a transient failure with
// budget left re-queues the entry with its backoff deadline and the
// worker immediately pulls other work — the backoff costs no
// worker-seconds. Under Config.BlockingBackoff the worker instead runs
// the legacy in-place retry loop, the measurable baseline.
func (c *Crawler) worker(ctx context.Context, sched *scheduler, results chan<- store.SiteRecord) {
	cfg := c.Config
	for {
		e, ok := sched.next(ctx)
		if !ok {
			return
		}
		if cfg.BlockingBackoff {
			rec := c.visit(ctx, e.t)
			sched.finish(e)
			results <- rec
			continue
		}
		rec := c.attempt(ctx, e.t)
		if rec.Failure.Transient() && e.retries < cfg.MaxRetries && ctx.Err() == nil {
			if e.retries == 0 {
				e.first = rec.Failure
			}
			backoff := cfg.RetryBackoff << uint(e.retries)
			e.retries++
			c.retries.Add(1)
			sched.requeue(e, time.Now().Add(backoff))
			continue
		}
		rec.Retries = e.retries
		if e.retries > 0 {
			rec.FirstAttemptFailure = e.first
		}
		rec.Elapsed = time.Since(e.start)
		sched.finish(e)
		results <- rec
	}
}

// harvestSchedStats folds one crawl's scheduler counters into the
// crawler's cumulative stats.
func (c *Crawler) harvestSchedStats(s *scheduler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c.requeued.Add(s.requeued)
	c.deferred.Add(s.deferredTotal)
	c.breakerDeferred.Add(s.breakerDeferred)
	if s.maxReady > c.maxReady.Load() {
		c.maxReady.Store(s.maxReady)
	}
	if s.maxHostInflight > c.maxHostInflight.Load() {
		c.maxHostInflight.Store(s.maxHostInflight)
	}
}

// visit measures one site, retrying transient failures with exponential
// backoff up to Config.MaxRetries extra attempts, sleeping each backoff
// inside the calling worker — the legacy blocking path kept as the
// scheduler's benchmark baseline (Config.BlockingBackoff). Each attempt
// gets a fresh per-site deadline; Elapsed covers all attempts plus
// backoff.
func (c *Crawler) visit(ctx context.Context, t Target) store.SiteRecord {
	start := time.Now()
	rec := c.attempt(ctx, t)
	firstFailure := rec.Failure
	for try := 0; try < c.Config.MaxRetries && rec.Failure.Transient(); try++ {
		backoff := c.Config.RetryBackoff << uint(try)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			rec.Elapsed = time.Since(start)
			return rec
		}
		c.retries.Add(1)
		rec = c.attempt(ctx, t)
		rec.Retries = try + 1
		rec.FirstAttemptFailure = firstFailure
	}
	rec.Elapsed = time.Since(start)
	return rec
}

// attempt performs one visit under one per-site deadline. A panic
// anywhere in the browser stack — parser, interpreter, frame walker —
// is confined to this attempt and becomes a FailureMinor record, so one
// pathological page can never take down the crawl (the paper's "minor
// crawler-level errors", 315 sites).
func (c *Crawler) attempt(ctx context.Context, t Target) (rec store.SiteRecord) {
	start := time.Now()
	rec = store.SiteRecord{Rank: t.Rank, URL: t.URL}
	defer func() {
		if r := recover(); r != nil {
			c.panics.Add(1)
			rec = store.SiteRecord{
				Rank:    t.Rank,
				URL:     t.URL,
				Failure: store.FailureMinor,
				Error:   fmt.Sprintf("panic: %v", r),
				Elapsed: time.Since(start),
			}
		}
	}()
	vctx, cancel := context.WithTimeout(ctx, c.Config.PerSiteTimeout)
	defer cancel()
	page, err := c.Browser.Visit(vctx, t.URL)
	rec.Elapsed = time.Since(start)
	if err != nil {
		rec.Failure = Classify(err)
		rec.Error = err.Error()
		return rec
	}
	if page.Truncated {
		// The paper excluded pages whose frame collection was incomplete
		// ("often occurred due to the presence of numerous included
		// frames", §4).
		rec.Failure = store.FailureExcluded
		rec.Page = page
		return rec
	}
	rec.Page = page
	if reasons := degradedReasons(page); len(reasons) > 0 {
		rec.Partial = true
		rec.DegradedReasons = reasons
		c.partial.Add(1)
	}
	if c.Config.FollowInternalLinks > 0 {
		rec.InternalPages = c.followLinks(vctx, page)
		rec.Elapsed = time.Since(start)
	}
	return rec
}

// degradedReasons inspects a successfully-visited page for signs that
// parts of it were lost in flight: subresource frames that never
// loaded, external scripts whose fetch failed, or a main document cut
// at the body-size cap. Such pages stay analyzable — the paper keeps
// every page whose frame data is complete — but the record is marked
// Partial so the analysis can report the degraded share honestly.
func degradedReasons(page *browser.PageResult) []string {
	seen := map[string]bool{}
	for _, fr := range page.Frames {
		if fr.LoadError == "frame load failed" {
			seen["frame-load-failed"] = true
		}
		if fr.BodyTruncated {
			seen["body-truncated"] = true
		}
		for _, se := range fr.ScriptErrors {
			if strings.HasPrefix(se, "load ") && strings.HasSuffix(se, " failed") {
				seen["script-load-failed"] = true
				break
			}
		}
	}
	if len(seen) == 0 {
		return nil
	}
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// followLinks visits up to FollowInternalLinks same-site pages linked
// from the landing page. Failures on internal pages are silently
// skipped: the landing page remains the record of note.
func (c *Crawler) followLinks(ctx context.Context, page *browser.PageResult) []browser.PageResult {
	top := page.TopFrame()
	if top == nil || top.Site == "" {
		return nil
	}
	var out []browser.PageResult
	seen := map[string]bool{page.URL: true, top.FinalURL: true}
	for _, link := range page.Links {
		if ctx.Err() != nil {
			// The per-site budget (or the crawl) is already over; without
			// this check the loop would keep iterating links until the
			// next Visit call noticed the dead context.
			break
		}
		if len(out) >= c.Config.FollowInternalLinks {
			break
		}
		if seen[link] {
			continue
		}
		seen[link] = true
		o, err := origin.Parse(link)
		if err != nil || o.Site() != top.Site {
			continue // external links stay out of scope
		}
		sub, err := c.Browser.Visit(ctx, link)
		if err != nil || sub.Truncated {
			continue
		}
		out = append(out, *sub)
	}
	return out
}

// Classify maps a visit error to the paper's failure taxonomy. Order
// matters: an error that died mid-exchange (a reset, a dropped body) is
// ephemeral even though Go wraps it in the same *net.OpError / *url.Error
// types as a refused dial, so the dial-stage check must look at the Op
// before the type alone decides "unreachable".
func Classify(err error) store.FailureClass {
	if err == nil {
		return store.FailureNone
	}
	// Breaker short-circuit: the crawler refused the request itself.
	if errors.Is(err, ErrCircuitOpen) {
		return store.FailureBreakerOpen
	}
	// Archived failures replayed offline carry the class the original
	// crawl recorded; report it verbatim.
	var rf *browser.ReplayedFailure
	if errors.As(err, &rf) {
		return store.FailureClass(rf.Class)
	}
	// Strict offline replay miss: the archive is the whole web in that
	// mode, and this URL is not on it — the DNS-failure analogue.
	if errors.Is(err, browser.ErrNotArchived) {
		return store.FailureUnreachable
	}
	// Crawl shutdown: the visit was cancelled mid-flight. Transient —
	// the site was never actually judged — so resume re-crawls it
	// instead of persisting a bogus minor failure.
	if errors.Is(err, context.Canceled) {
		return store.FailureCanceled
	}
	// Deadline: page-load timeout (includes slow-loris drips that never
	// finish inside the per-site budget).
	if errors.Is(err, context.DeadlineExceeded) {
		return store.FailureTimeout
	}
	var ue *url.Error
	if errors.As(err, &ue) && ue.Timeout() {
		return store.FailureTimeout
	}
	// DNS failures: unreachable, regardless of wrapping.
	var dnsErr *net.DNSError
	if errors.As(err, &dnsErr) {
		return store.FailureUnreachable
	}
	// Connections that died mid-exchange: the host answered, then the
	// content vanished under us — the paper's "ephemeral" class. This
	// must run before the generic OpError check because a reset surfaces
	// as a read-stage *net.OpError wrapping syscall.ECONNRESET.
	if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, io.ErrUnexpectedEOF) {
		return store.FailureEphemeral
	}
	var opErr *net.OpError
	if errors.As(err, &opErr) {
		if opErr.Op == "dial" {
			// Never got a connection: unreachable.
			return store.FailureUnreachable
		}
		// Read/write on an established connection failed: ephemeral.
		return store.FailureEphemeral
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, "malformed"),
		strings.Contains(msg, "headers exceeded"),
		strings.Contains(msg, "redirects"):
		// Protocol garbage the crawler refused to consume: the paper's
		// minor crawler-level errors. Checked before the EOF fallback —
		// a minor-class message that merely mentions "EOF" ("malformed
		// chunk before EOF") must not be promoted to ephemeral, where
		// the retry loop would waste attempts on it.
		return store.FailureMinor
	case strings.Contains(msg, "connection reset"),
		strings.Contains(msg, "unexpected EOF"),
		strings.HasSuffix(msg, ": EOF"),
		msg == "EOF":
		// String fallbacks for resets/EOFs that lost their typed chain
		// through intermediate fmt.Errorf wrapping. A bare substring
		// match on "EOF" is too loose (it hijacks any message that
		// mentions EOF); accept only "unexpected EOF" or a wrapped
		// io.EOF, which Go always renders as a ": EOF" suffix.
		return store.FailureEphemeral
	case strings.Contains(msg, "status "):
		return store.FailureUnreachable
	default:
		return store.FailureMinor
	}
}
