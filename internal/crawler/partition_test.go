package crawler

import (
	"fmt"
	"testing"
)

// TestPartitionTargets: the shard partitions are disjoint, cover the
// full target list, interleave ranks, and preserve order — the
// properties the fleet merge relies on.
func TestPartitionTargets(t *testing.T) {
	targets := make([]Target, 0, 100)
	for rank := 1; rank <= 100; rank++ {
		targets = append(targets, Target{Rank: rank, URL: fmt.Sprintf("https://site-%d.test/", rank)})
	}

	const shards = 4
	seen := map[int]int{} // rank → shard that claimed it
	total := 0
	for shard := 0; shard < shards; shard++ {
		part := PartitionTargets(targets, shard, shards)
		total += len(part)
		last := -1
		for _, p := range part {
			if p.Rank%shards != shard {
				t.Errorf("shard %d got rank %d (%d mod %d = %d)", shard, p.Rank, p.Rank, shards, p.Rank%shards)
			}
			if prev, dup := seen[p.Rank]; dup {
				t.Errorf("rank %d claimed by shards %d and %d", p.Rank, prev, shard)
			}
			seen[p.Rank] = shard
			if p.Rank <= last {
				t.Errorf("shard %d out of order: rank %d after %d", shard, p.Rank, last)
			}
			last = p.Rank
		}
	}
	if total != len(targets) {
		t.Errorf("partitions cover %d of %d targets", total, len(targets))
	}

	// Degenerate shapes: one shard is the identity, and an empty list
	// partitions into empty lists.
	if got := PartitionTargets(targets, 0, 1); len(got) != len(targets) {
		t.Errorf("1-shard partition has %d targets, want %d", len(got), len(targets))
	}
	if got := PartitionTargets(nil, 2, 4); len(got) != 0 {
		t.Errorf("empty partition has %d targets", len(got))
	}
}
