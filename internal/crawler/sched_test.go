package crawler

import (
	"context"
	"regexp"
	"sync"
	"testing"
	"time"

	"permodyssey/internal/browser"
	"permodyssey/internal/store"
	"permodyssey/internal/synthweb"
)

// hostCountingFetcher serves a canned page while tracking, per host, how
// many fetches are in flight at once.
type hostCountingFetcher struct {
	mu      sync.Mutex
	cur     map[string]int
	maxSeen map[string]int
}

func (f *hostCountingFetcher) Fetch(_ context.Context, rawURL string) (*browser.Response, error) {
	host := targetHost(rawURL)
	f.mu.Lock()
	f.cur[host]++
	if f.cur[host] > f.maxSeen[host] {
		f.maxSeen[host] = f.cur[host]
	}
	f.mu.Unlock()
	// Long enough that uncapped dispatch would demonstrably overlap.
	time.Sleep(5 * time.Millisecond)
	f.mu.Lock()
	f.cur[host]--
	f.mu.Unlock()
	return &browser.Response{
		Status: 200, FinalURL: rawURL,
		Body: "<html><body><p>ok</p></body></html>",
	}, nil
}

// TestHostConcurrencyCap floods two hosts with many more workers than
// the per-host cap allows and asserts no host ever exceeded it, while a
// control run without the cap proves the workload would have.
func TestHostConcurrencyCap(t *testing.T) {
	targets := make([]Target, 0, 24)
	for i := 0; i < 12; i++ {
		targets = append(targets,
			Target{Rank: 2*i + 1, URL: "https://a.test/" + string(rune('a'+i))},
			Target{Rank: 2*i + 2, URL: "https://b.test/" + string(rune('a'+i))})
	}
	run := func(hostConc int) (*hostCountingFetcher, Stats) {
		f := &hostCountingFetcher{cur: map[string]int{}, maxSeen: map[string]int{}}
		b := browser.New(f, browser.DefaultOptions())
		c := New(b, Config{Workers: 16, PerSiteTimeout: time.Second, HostConcurrency: hostConc})
		ds := c.Crawl(context.Background(), targets)
		if len(ds.Records) != len(targets) {
			t.Fatalf("records: %d, want %d", len(ds.Records), len(targets))
		}
		return f, c.Stats()
	}

	f, stats := run(3)
	for host, m := range f.maxSeen {
		if m > 3 {
			t.Errorf("host %s saw %d concurrent visits, cap 3", host, m)
		}
	}
	if stats.MaxHostInFlight > 3 {
		t.Errorf("MaxHostInFlight %d exceeds cap 3", stats.MaxHostInFlight)
	}

	// Control: unlimited dispatch of the same workload overlaps more,
	// so the capped run above was a real constraint, not a slow fetcher.
	f, stats = run(-1)
	over := 0
	for _, m := range f.maxSeen {
		if m > 3 {
			over++
		}
	}
	if over == 0 {
		t.Errorf("uncapped control never exceeded 3 concurrent visits per host: %v", f.maxSeen)
	}
	if stats.MaxHostInFlight <= 3 {
		t.Errorf("uncapped MaxHostInFlight %d, want > 3", stats.MaxHostInFlight)
	}
}

// stampingFetcher records when each fetch attempt arrives, failing the
// first failures attempts with a timeout-class error.
type stampingFetcher struct {
	mu       sync.Mutex
	stamps   []time.Time
	failures int
}

func (f *stampingFetcher) Fetch(_ context.Context, rawURL string) (*browser.Response, error) {
	f.mu.Lock()
	f.stamps = append(f.stamps, time.Now())
	n := len(f.stamps)
	f.mu.Unlock()
	if n <= f.failures {
		return nil, context.DeadlineExceeded
	}
	return &browser.Response{
		Status: 200, FinalURL: rawURL,
		Body: "<html><body><p>ok</p></body></html>",
	}, nil
}

// TestBackoffDeferralNeverEarly asserts the scheduler's deferral heap
// honors retry deadlines: with idle workers standing by, a re-queued
// visit still never re-attempts before its exponential backoff has
// elapsed.
func TestBackoffDeferralNeverEarly(t *testing.T) {
	const backoff = 40 * time.Millisecond
	f := &stampingFetcher{failures: 2}
	b := browser.New(f, browser.DefaultOptions())
	c := New(b, Config{Workers: 8, PerSiteTimeout: time.Second,
		MaxRetries: 3, RetryBackoff: backoff})

	ds := c.Crawl(context.Background(), []Target{{Rank: 1, URL: "https://slow.test/"}})
	if rec := ds.Records[0]; !rec.OK() || rec.Retries != 2 {
		t.Fatalf("record: failure=%q retries=%d, want ok with 2 retries", rec.Failure, rec.Retries)
	}
	if len(f.stamps) != 3 {
		t.Fatalf("attempts: %d, want 3", len(f.stamps))
	}
	for i := 1; i < len(f.stamps); i++ {
		want := backoff << uint(i-1)
		if gap := f.stamps[i].Sub(f.stamps[i-1]); gap < want {
			t.Errorf("retry %d fired %v after the previous attempt, before its %v backoff", i, gap, want)
		}
	}
	if stats := c.Stats(); stats.Requeued != 2 || stats.Deferred != 2 {
		t.Errorf("requeued %d / deferred %d, want 2 / 2", stats.Requeued, stats.Deferred)
	}
}

// deadFetcher fails every fetch with an ephemeral-class error.
type deadFetcher struct{}

func (deadFetcher) Fetch(_ context.Context, _ string) (*browser.Response, error) {
	return nil, errReset{}
}

type errReset struct{}

func (errReset) Error() string   { return "read tcp 127.0.0.1:1->127.0.0.1:2: connection reset by peer" }
func (errReset) Timeout() bool   { return false }
func (errReset) Temporary() bool { return true }

// TestBreakerDeferral opens a dead host's circuit and asserts the
// scheduler deferred the retries that came up while it was open — and
// that the final record still carries the host's real failure class,
// not breaker-open.
func TestBreakerDeferral(t *testing.T) {
	bf := NewBreakerFetcher(deadFetcher{}, BreakerConfig{Threshold: 2, Cooldown: 100 * time.Millisecond})
	b := browser.New(bf, browser.DefaultOptions())
	c := New(b, Config{Workers: 4, PerSiteTimeout: time.Second,
		MaxRetries: 3, RetryBackoff: 20 * time.Millisecond,
		Breaker: bf.Breaker, DeferBreakerOpen: true})

	ds := c.Crawl(context.Background(), []Target{{Rank: 1, URL: "https://dead.test/"}})
	rec := ds.Records[0]
	// Attempts 1–2 fail and trip the circuit (threshold 2); the retries
	// become ready at 20ms and 40ms backoffs, both inside the 100ms
	// cooldown, so the scheduler must park them until the probe time —
	// where Allow admits them as half-open probes that observe the real
	// failure. Without deferral they would short-circuit to breaker-open.
	if rec.Failure != store.FailureEphemeral {
		t.Errorf("failure = %q, want ephemeral (the probe's real outcome)", rec.Failure)
	}
	if rec.Retries != 3 {
		t.Errorf("retries = %d, want 3 (budget exhausted)", rec.Retries)
	}
	stats := c.Stats()
	if stats.BreakerDeferred == 0 {
		t.Errorf("no breaker deferrals despite cooldown > backoff: %+v", stats)
	}
	if stats.Deferred != stats.Requeued+stats.BreakerDeferred {
		t.Errorf("deferred %d != requeued %d + breaker-deferred %d",
			stats.Deferred, stats.Requeued, stats.BreakerDeferred)
	}
	if sc := bf.Breaker.Stats().ShortCircuits; sc != 0 {
		t.Errorf("%d short-circuits burned; deferral should have absorbed them all", sc)
	}
}

// TestBlockingBackoffBaseline pins the legacy in-worker retry loop the
// benchmarks compare against: same record, same retry accounting, no
// scheduler requeues.
func TestBlockingBackoffBaseline(t *testing.T) {
	f := &flakyFetcher{failures: map[string]int{"https://flaky.test/": 2}, fail: timeoutErr}
	b := browser.New(f, browser.DefaultOptions())
	c := New(b, Config{Workers: 2, PerSiteTimeout: time.Second,
		MaxRetries: 3, RetryBackoff: time.Millisecond, BlockingBackoff: true})

	ds := c.Crawl(context.Background(), []Target{{Rank: 1, URL: "https://flaky.test/"}})
	rec := ds.Records[0]
	if !rec.OK() || rec.Retries != 2 {
		t.Fatalf("record: failure=%q retries=%d, want ok with 2 retries", rec.Failure, rec.Retries)
	}
	stats := c.Stats()
	if stats.Retries != 2 {
		t.Errorf("stats retries = %d, want 2", stats.Retries)
	}
	if stats.Requeued != 0 || stats.Deferred != 0 {
		t.Errorf("blocking baseline used the deferral heap: %+v", stats)
	}
}

// schedAddrPattern matches the ephemeral host:port pairs net errors
// embed — connection noise, different on every run.
var schedAddrPattern = regexp.MustCompile(`127\.0\.0\.1:\d+`)

// TestSchedulerDeterminismChaos runs the same seeded chaotic population
// twice through the scheduler — per-host caps on, retries on — and
// asserts the two datasets are identical: deferral, requeueing, and
// host caps reorder work in time but must not change any record.
func TestSchedulerDeterminismChaos(t *testing.T) {
	cfg := synthweb.DefaultConfig()
	cfg.NumSites = 60
	cfg.Seed = 17
	// Only the timing-independent classes, so records compare exactly.
	cfg.TimeoutRate, cfg.EphemeralRate, cfg.MinorRate = 0, 0, 0
	cfg.Chaos = synthweb.ChaosConfig{
		Enabled:      true,
		SiteRate:     0.3,
		FlapFailures: 2,
		Kinds: []synthweb.Fault{
			synthweb.FaultReset, synthweb.FaultMalformedHeader,
			synthweb.FaultRedirectLoop, synthweb.FaultFlap,
		},
	}

	run := func() []string {
		srv := synthweb.NewServer(cfg)
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		var targets []Target
		for _, s := range srv.Sites() {
			targets = append(targets, Target{Rank: s.Rank, URL: s.URL()})
		}
		b := browser.New(browser.NewHTTPFetcher(srv.Client(0)), browser.DefaultOptions())
		c := New(b, Config{Workers: 12, PerSiteTimeout: 2 * time.Second,
			MaxRetries: 3, RetryBackoff: 10 * time.Millisecond, HostConcurrency: 2})
		recs := normalizeRecords(t, c.Crawl(context.Background(), targets))
		for i, r := range recs {
			recs[i] = schedAddrPattern.ReplaceAllString(r, "127.0.0.1:0")
		}
		return recs
	}

	first, second := run(), run()
	if len(first) != len(second) {
		t.Fatalf("run lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("record %d differs between runs:\n first:  %s\n second: %s", i, first[i], second[i])
		}
	}
}
