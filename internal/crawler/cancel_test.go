package crawler

import (
	"context"
	"testing"
	"time"

	"permodyssey/internal/browser"
	"permodyssey/internal/synthweb"
)

// TestCrawlContextCancellation: cancelling the crawl context stops
// dispatching new targets; already-dispatched visits drain.
func TestCrawlContextCancellation(t *testing.T) {
	cfg := synthweb.DefaultConfig()
	cfg.NumSites = 200
	cfg.Seed = 21
	cfg.UnreachableRate, cfg.TimeoutRate, cfg.EphemeralRate, cfg.MinorRate = 0, 0, 0, 0
	srv := synthweb.NewServer(cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	b := browser.New(browser.NewHTTPFetcher(srv.Client(0)), browser.DefaultOptions())
	c := New(b, Config{Workers: 4, PerSiteTimeout: time.Second})
	ctx, cancel := context.WithCancel(context.Background())

	var targets []Target
	for _, s := range srv.Sites() {
		targets = append(targets, Target{Rank: s.Rank, URL: s.URL()})
	}
	done := 0
	c.Config.Progress = func(d, total int) {
		done = d
		if d == 10 {
			cancel()
		}
	}
	ds := c.Crawl(ctx, targets)
	if len(ds.Records) >= len(targets) {
		t.Errorf("cancellation did not stop the crawl: %d records", len(ds.Records))
	}
	if len(ds.Records) < 10 {
		t.Errorf("in-flight work must drain: %d records, %d progress", len(ds.Records), done)
	}
}

// TestCrawlEmptyTargets: a crawl over nothing completes immediately.
func TestCrawlEmptyTargets(t *testing.T) {
	b := browser.New(browser.MapFetcher{}, browser.DefaultOptions())
	c := New(b, Config{Workers: 2, PerSiteTimeout: time.Second})
	ds := c.Crawl(context.Background(), nil)
	if len(ds.Records) != 0 {
		t.Errorf("records: %d", len(ds.Records))
	}
}

// TestDefaultsApplied: zero-value config fields get sane defaults.
func TestDefaultsApplied(t *testing.T) {
	c := New(nil, Config{})
	if c.Config.Workers <= 0 || c.Config.PerSiteTimeout <= 0 {
		t.Errorf("defaults not applied: %+v", c.Config)
	}
}
