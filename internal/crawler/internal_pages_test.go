package crawler

import (
	"context"
	"testing"
	"time"

	"permodyssey/internal/analysis"
	"permodyssey/internal/browser"
	"permodyssey/internal/synthweb"
)

// TestFollowInternalLinks lifts the landing-page-only limitation: the
// store-locator pages of ecommerce sites use geolocation that the
// landing page never shows; following links must surface it.
func TestFollowInternalLinks(t *testing.T) {
	cfg := synthweb.DefaultConfig()
	cfg.NumSites = 400
	cfg.Seed = 31
	cfg.UnreachableRate, cfg.TimeoutRate, cfg.EphemeralRate, cfg.MinorRate = 0, 0, 0, 0
	srv := synthweb.NewServer(cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	b := browser.New(browser.NewHTTPFetcher(srv.Client(0)), browser.DefaultOptions())
	c := New(b, Config{Workers: 16, PerSiteTimeout: 5 * time.Second, FollowInternalLinks: 3})
	var targets []Target
	for _, s := range srv.Sites() {
		targets = append(targets, Target{Rank: s.Rank, URL: s.URL()})
	}
	ds := c.Crawl(context.Background(), targets)

	withInternal := 0
	for _, rec := range ds.Successful() {
		withInternal += len(rec.InternalPages)
	}
	if withInternal == 0 {
		t.Fatal("internal pages must be visited")
	}

	a := analysis.New(ds)
	gain := a.InternalPages()
	t.Logf("internal-page gain: %+v", gain)
	if gain.SitesWithInternalPages == 0 {
		t.Fatal("no sites with internal pages analyzed")
	}
	if gain.PermissionsGained["geolocation"] == 0 {
		t.Errorf("store locators must reveal geolocation only on internal pages: %v", gain.PermissionsGained)
	}
	// The gain must be strictly additive: landing-page analysis results
	// are unchanged by following links (same tables from rec.Page).
	for _, rec := range ds.Successful() {
		if rec.Page == nil {
			t.Fatal("landing page result missing")
		}
	}
}

// TestFollowInternalLinksOffByDefault preserves the paper's scope.
func TestFollowInternalLinksOffByDefault(t *testing.T) {
	cfg := synthweb.DefaultConfig()
	cfg.NumSites = 30
	cfg.Seed = 31
	cfg.UnreachableRate, cfg.TimeoutRate, cfg.EphemeralRate, cfg.MinorRate = 0, 0, 0, 0
	srv := synthweb.NewServer(cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	b := browser.New(browser.NewHTTPFetcher(srv.Client(0)), browser.DefaultOptions())
	c := New(b, Config{Workers: 8, PerSiteTimeout: 5 * time.Second})
	var targets []Target
	for _, s := range srv.Sites() {
		targets = append(targets, Target{Rank: s.Rank, URL: s.URL()})
	}
	ds := c.Crawl(context.Background(), targets)
	for _, rec := range ds.Successful() {
		if len(rec.InternalPages) != 0 {
			t.Fatalf("internal pages visited without opt-in: %+v", rec.InternalPages)
		}
	}
}
