package store

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"permodyssey/internal/browser"
	"permodyssey/internal/webapi"
)

func sampleDataset() *Dataset {
	d := &Dataset{}
	d.Add(SiteRecord{
		Rank: 1, URL: "https://a.example/",
		Elapsed: 120 * time.Millisecond,
		Page: &browser.PageResult{
			URL: "https://a.example/",
			Frames: []browser.FrameResult{
				{
					URL: "https://a.example/", TopLevel: true,
					Origin: "https://a.example", Site: "a.example",
					HasPermissionsPolicy: true,
					PermissionsPolicyRaw: "camera=()",
					HeaderValid:          true,
					Invocations: []webapi.Invocation{{
						API: "navigator.getBattery", Kind: webapi.KindInvocation,
						Permissions: []string{"battery"},
						ScriptURL:   "https://cdn.example/a.js",
					}},
				},
			},
		},
	})
	d.Add(SiteRecord{Rank: 2, URL: "https://b.example/", Failure: FailureTimeout, Error: "deadline"})
	d.Add(SiteRecord{Rank: 3, URL: "https://c.example/", Failure: FailureUnreachable, Error: "dns"})
	return d
}

func TestJSONLRoundTrip(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	if err := d.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Fatalf("lines: %d", lines)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != 3 {
		t.Fatalf("records: %d", len(back.Records))
	}
	r := back.Records[0]
	if !r.OK() || r.Page.TopFrame().PermissionsPolicyRaw != "camera=()" {
		t.Errorf("record 0: %+v", r)
	}
	if got := r.Page.TopFrame().Invocations[0].Permissions[0]; got != "battery" {
		t.Errorf("invocation: %q", got)
	}
	if back.Records[1].Failure != FailureTimeout || back.Records[1].OK() {
		t.Errorf("record 1: %+v", back.Records[1])
	}
}

func TestFileRoundTrip(t *testing.T) {
	d := sampleDataset()
	path := filepath.Join(t.TempDir(), "crawl.jsonl")
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(d.Records) {
		t.Fatalf("records: %d", len(back.Records))
	}
}

func TestFailureCountsAndSuccessful(t *testing.T) {
	d := sampleDataset()
	counts := d.FailureCounts()
	if counts["ok"] != 1 || counts[FailureTimeout] != 1 || counts[FailureUnreachable] != 1 {
		t.Errorf("counts: %v", counts)
	}
	if len(d.Successful()) != 1 {
		t.Errorf("successful: %d", len(d.Successful()))
	}
}

func TestReadJSONLBadInput(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Error("expected decode error")
	}
	d, err := ReadJSONL(strings.NewReader(""))
	if err != nil || len(d.Records) != 0 {
		t.Errorf("empty input: %v, %d", err, len(d.Records))
	}
}
