// Package store holds measurement results: one record per visited site,
// with the full per-frame data the browser collected, JSONL persistence
// (the paper saves each site to its database immediately after the
// visit, C14), and dataset-level accessors the analysis builds on.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"permodyssey/internal/browser"
)

// SchemaVersion identifies the SiteRecord JSONL wire format. Sealed
// crawl bundles (internal/bundle) record it so a future reader can
// refuse — or migrate — a dataset whose schema it no longer
// understands. Bump it when a field changes shape or meaning, not when
// one is added compatibly.
const SchemaVersion = 1

// FailureClass is the crawl-failure taxonomy of §4.
type FailureClass string

const (
	FailureNone FailureClass = ""
	// FailureUnreachable: DNS errors and other major fetch failures
	// (27,733 sites in the paper).
	FailureUnreachable FailureClass = "unreachable"
	// FailureTimeout: the page-load deadline expired (28,700 sites).
	FailureTimeout FailureClass = "timeout"
	// FailureEphemeral: content vanished mid-collection — "execution
	// context was destroyed" (60,183 sites).
	FailureEphemeral FailureClass = "ephemeral"
	// FailureMinor: crawler-level errors (315 sites).
	FailureMinor FailureClass = "minor"
	// FailureExcluded: visited but excluded from analysis for incomplete
	// frame data (the paper's 65,169 exclusions).
	FailureExcluded FailureClass = "excluded"
	// FailureBreakerOpen: the per-host circuit breaker was open — the
	// crawler refused to hammer a host that had just failed repeatedly.
	// Transient by definition: a later half-open probe may pass.
	FailureBreakerOpen FailureClass = "breaker-open"
	// FailureCanceled: the crawl itself was cancelled while this visit
	// was in flight. An artifact of the interrupted run, not a site
	// property — resume drops these records and re-crawls their ranks
	// (a non-transient class here would persist the misclassification
	// and skip the sites forever).
	FailureCanceled FailureClass = "canceled"
)

// SiteRecord is one site's outcome.
type SiteRecord struct {
	Rank    int                 `json:"rank"`
	URL     string              `json:"url"`
	Failure FailureClass        `json:"failure,omitempty"`
	Error   string              `json:"error,omitempty"`
	Page    *browser.PageResult `json:"page,omitempty"`
	// InternalPages are additional same-site pages visited when the
	// crawler follows internal links (off by default, matching the
	// paper's landing-page-only scope; §6.1 lists the restriction as a
	// limitation).
	InternalPages []browser.PageResult `json:"internal_pages,omitempty"`
	// Retries is how many extra visit attempts transient failures cost
	// before this record settled (0 when the first attempt stood).
	Retries int `json:"retries,omitempty"`
	// FirstAttemptFailure records how the first visit attempt failed
	// when retries followed it — the raw material for the
	// first-attempt-vs-recovered analysis. Empty when the first attempt
	// stood (no retries).
	FirstAttemptFailure FailureClass `json:"first_attempt_failure,omitempty"`
	// Partial marks a degraded-but-usable record: the main document
	// loaded and was analyzed, but some subresource — a widget frame, an
	// external script, the tail of an oversized body — did not survive.
	// Partial records stay in the analyzable set.
	Partial bool `json:"partial,omitempty"`
	// DegradedReasons lists what degraded a Partial record
	// ("frame-load-failed", "script-load-failed", "body-truncated").
	DegradedReasons []string      `json:"degraded_reasons,omitempty"`
	Elapsed         time.Duration `json:"elapsed_ns"`
}

// OK reports whether the site was measured successfully.
func (r SiteRecord) OK() bool { return r.Failure == FailureNone && r.Page != nil }

// Transient reports whether a retry of this failure class could
// plausibly succeed: timeouts (a slow server may answer within a fresh
// deadline), ephemeral mid-body deaths, circuit-breaker refusals (the
// breaker half-opens after its cooldown), and cancelled visits (a
// resumed crawl visits them again under a live context). Unreachable
// hosts (DNS) and minor protocol garbage are persistent site
// properties.
func (f FailureClass) Transient() bool {
	return f == FailureTimeout || f == FailureEphemeral || f == FailureBreakerOpen ||
		f == FailureCanceled
}

// Dataset is an in-memory result set.
type Dataset struct {
	Records []SiteRecord
}

// Add appends a record.
func (d *Dataset) Add(r SiteRecord) { d.Records = append(d.Records, r) }

// Successful returns the analyzable records.
func (d *Dataset) Successful() []SiteRecord {
	var out []SiteRecord
	for _, r := range d.Records {
		if r.OK() {
			out = append(out, r)
		}
	}
	return out
}

// FailureCounts tallies records per failure class, with successful
// records split into "ok" (clean) and "partial" (degraded-but-usable),
// so the buckets partition the dataset: every record lands in exactly
// one.
func (d *Dataset) FailureCounts() map[FailureClass]int {
	out := map[FailureClass]int{}
	for _, r := range d.Records {
		switch {
		case r.OK() && r.Partial:
			out["partial"]++
		case r.OK():
			out["ok"]++
		default:
			out[r.Failure]++
		}
	}
	return out
}

// WriteJSONL streams the dataset as JSON lines.
func (d *Dataset) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range d.Records {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL loads a dataset from JSON lines.
func ReadJSONL(r io.Reader) (*Dataset, error) {
	d := &Dataset{}
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var rec SiteRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return d, nil
		} else if err != nil {
			return nil, fmt.Errorf("store: decoding record %d: %w", len(d.Records), err)
		}
		d.Add(rec)
	}
}

// ReadJSONLPartial loads records until EOF or the first decode error,
// returning everything decoded so far. An interrupted crawl (process
// killed mid-write) leaves a truncated final line in its JSONL sink;
// resume loads the complete prefix and re-crawls the rest.
func ReadJSONLPartial(r io.Reader) *Dataset {
	d := &Dataset{}
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var rec SiteRecord
		if err := dec.Decode(&rec); err != nil {
			return d
		}
		d.Add(rec)
	}
}

// LoadPartialFile reads a possibly-truncated dataset from a file path.
func LoadPartialFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSONLPartial(f), nil
}

// SaveFile writes the dataset to a file path.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := d.WriteJSONL(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset from a file path.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSONL(f)
}
