// Package diskcache persists fetched resources as a content-addressed
// on-disk archive, the step that turns a crawl into a replayable
// dataset: objects are stored once by SHA-256 under
// objects/ab/cdef..., and a JSONL manifest maps each URL to its
// outcome — the object's hash plus status/headers for successes, the
// failure class and message for fetches that failed. A repeat crawl of
// the same population reads everything back and skips the network
// entirely; strict offline mode replays a finished crawl byte for
// byte, failures included, and turns every genuine miss into a
// distinguishable error instead of a network fetch (the
// archive-then-replay design Web Execution Bundles argues is what
// makes web measurements reproducible and auditable).
//
// The archive is built to survive the crawler dying on top of it:
// objects land via temp-file-plus-rename so a crash never leaves a
// half-written object under its final name; the manifest is appended
// one line per outcome and a truncated or corrupt tail is dropped on
// open (and compacted away); and a hash-mismatched, truncated, or
// missing object is treated as a miss and re-fetched — corruption
// degrades the archive, it never fails the crawl. A SIGKILLed writer
// additionally leaves debris with no live owner — temp object and
// manifest files mid-rename, a torn manifest tail — so Open and
// MergeShards run a crash-consistency pass: temp files are tagged with
// their writer's pid and swept once that pid is dead (age-gated for
// untagged strays), and the sweep's counts are surfaced in
// ArchiveStats and MergeStats rather than silently absorbed.
//
// One directory can back a whole fleet of crawler processes at once:
// object writes are already atomic and content-addressed, and each
// process appends manifest lines to its own shard
// (manifest-<shard>.jsonl, Options.Shard), so no two processes ever
// write one file. Open reads every shard into a reconciled view, a
// lock file per shard makes a second Open of the same shard fail fast
// instead of silently interleaving appends, and MergeShards compacts
// all shards back into the single deterministic manifest a
// one-process crawl would have written.
package diskcache

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"permodyssey/internal/browser"
)

const (
	manifestName   = "manifest.jsonl"
	manifestPrefix = "manifest-"
	manifestExt    = ".jsonl"
	lockExt        = ".lock"
	objectsDir     = "objects"
)

// ErrLocked is wrapped by Open and MergeShards when a manifest shard's
// lock file is held by a live process: a second crawler appending the
// same shard would interleave writes and corrupt it, so the late
// arrival fails fast instead. Fleet members avoid the collision by
// using distinct Options.Shard names.
var ErrLocked = errors.New("diskcache: manifest shard locked")

// entry is one manifest line: the archived outcome of fetching URL.
// Exactly one of Hash (success; the body lives in the object store) or
// FailureClass (archived failure) is set.
type entry struct {
	URL           string      `json:"url"`
	Hash          string      `json:"hash,omitempty"`
	Size          int64       `json:"size,omitempty"`
	Status        int         `json:"status,omitempty"`
	Header        http.Header `json:"header,omitempty"`
	FinalURL      string      `json:"final_url,omitempty"`
	BodyTruncated bool        `json:"body_truncated,omitempty"`
	FailureClass  string      `json:"failure_class,omitempty"`
	FailureMsg    string      `json:"failure_msg,omitempty"`
	// Gen is the URL's store generation, strictly increasing across
	// re-stores of the same URL even across runs (each Open seeds the
	// counter from the highest generation any shard recorded). It makes
	// supersession durable: when a later run re-archives a URL — a
	// healed failure, or a success that has since gone bad — merge
	// reconciliation keeps the newest generation instead of guessing
	// from the outcome kind. Entries from pre-generation manifests
	// carry Gen 0 and lose to any re-store.
	Gen uint64 `json:"gen,omitempty"`
}

// success reports whether the entry archives a response (as opposed to
// a classified failure).
func (e entry) success() bool { return e.Hash != "" }

// indexed is an entry plus its overwrite generation (mirroring
// entry.Gen), bumped on every re-store of the same URL so a Load that
// judged a stale read corrupt cannot delete an object a concurrent
// Store just renamed into place.
type indexed struct {
	entry
	gen uint64
}

// Options tunes an Archive.
type Options struct {
	// Offline switches the archive to strict replay: loads serve
	// archived responses and replay archived failures, every miss
	// (including a corrupt object) returns an error wrapping
	// browser.ErrNotArchived, and nothing on disk is modified — no
	// compaction, no lock file, so any number of offline readers can
	// share the directory with a live fleet.
	Offline bool
	// Classify maps a failed fetch to the failure-taxonomy class
	// (store.FailureClass string) archived with it. Returning "" skips
	// archiving that failure — crawler-local conditions such as
	// cancellation or an open circuit breaker are not site properties
	// and must not poison replay. nil disables failure archiving.
	Classify func(err error) string
	// Shard names this process's manifest shard. "" appends to the
	// classic single manifest (manifest.jsonl); any other name appends
	// to manifest-<Shard>.jsonl, so a fleet of processes with distinct
	// shard names can populate one directory without ever sharing an
	// append handle. Open always reads every shard present, merged
	// deterministically (see reconcile); MergeShards compacts them back
	// into one manifest once the fleet is done.
	Shard string
}

// Archive is a content-addressed resource archive rooted at one
// directory. Safe for concurrent use by any number of crawl stacks in
// one process, and by multiple processes when each uses a distinct
// Options.Shard (object writes are atomic; manifest appends are
// per-shard single-writer, enforced by a lock file).
type Archive struct {
	dir      string
	shard    string
	offline  bool
	classify func(err error) string

	mu       sync.Mutex
	index    map[string]*indexed
	gens     map[string]uint64 // per-URL generation high-water mark, across all shards read
	manifest *os.File          // append handle; nil when offline or closed
	lockPath string            // held shard lock; "" when offline or closed

	hits, writes, corrupt, bytesStored atomic.Uint64
	orphansSwept                       atomic.Uint64
}

// Open loads (or creates) the archive rooted at dir. Every manifest
// shard present is read tolerantly — a truncated tail or corrupt line
// from an interrupted crawl is dropped, later duplicates of a URL win
// within a shard, cross-shard duplicates reconcile deterministically —
// and this process's own shard is compacted back to one line per URL
// before its append handle opens. Online, a crash-consistency pass
// first sweeps temp objects and temp manifests orphaned by dead
// writers (counted in ArchiveStats.OrphansSwept), then the shard's
// lock file is acquired: a second process opening the same shard fails
// fast (ErrLocked) rather than interleaving appends; a lock left by a
// dead process is stolen. In offline mode nothing is written — no
// sweep, no compaction, no lock.
func Open(dir string, opts Options) (*Archive, error) {
	if err := validShard(opts.Shard); err != nil {
		return nil, err
	}
	a := &Archive{
		dir:      dir,
		shard:    opts.Shard,
		offline:  opts.Offline,
		classify: opts.Classify,
		index:    map[string]*indexed{},
		gens:     map[string]uint64{},
	}
	if err := os.MkdirAll(filepath.Join(dir, objectsDir), 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	if !a.offline {
		// Crash-consistency pass: GC temp objects and temp manifests left
		// by writers that died mid-rename (offline readers must not touch
		// the directory, so the sweep is online-only).
		a.orphansSwept.Add(uint64(sweepOrphans(dir)))
	}
	own, clean, err := a.loadShards()
	if err != nil {
		return nil, err
	}
	if a.offline {
		return a, nil
	}
	path := manifestPath(dir, a.shard)
	lock, err := acquireLock(path + lockExt)
	if err != nil {
		return nil, err
	}
	a.lockPath = path + lockExt
	if !clean {
		if err := compactShard(dir, path, own); err != nil {
			lock()
			a.lockPath = ""
			return nil, err
		}
	}
	mf, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		lock()
		a.lockPath = ""
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	a.manifest = mf
	return a, nil
}

// validShard rejects shard names that would escape the manifest naming
// scheme (path separators, the empty-extension trick) — a shard name is
// a filename fragment, nothing more.
func validShard(shard string) error {
	if shard == "" {
		return nil
	}
	for _, r := range shard {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("diskcache: invalid shard name %q (want [A-Za-z0-9._-]+)", shard)
		}
	}
	return nil
}

// manifestPath names a shard's manifest file inside dir.
func manifestPath(dir, shard string) string {
	if shard == "" {
		return filepath.Join(dir, manifestName)
	}
	return filepath.Join(dir, manifestPrefix+shard+manifestExt)
}

// shardFiles lists every manifest shard present in dir, sorted by
// shardLess so reconciliation visits them in deterministic priority
// order. The unsharded manifest.jsonl is shard "".
func shardFiles(dir string) ([]string, error) {
	var shards []string
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		shards = append(shards, "")
	}
	matches, err := filepath.Glob(filepath.Join(dir, manifestPrefix+"*"+manifestExt))
	if err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	for _, m := range matches {
		name := filepath.Base(m)
		shards = append(shards, strings.TrimSuffix(strings.TrimPrefix(name, manifestPrefix), manifestExt))
	}
	sort.Slice(shards, func(i, j int) bool { return shardLess(shards[i], shards[j]) })
	return shards, nil
}

// shardLess orders shard names for reconciliation: the unsharded
// manifest first, then shorter names before longer, then
// lexicographic — which orders decimal shard ids numerically ("2"
// before "10") without requiring zero padding.
func shardLess(a, b string) bool {
	if (a == "") != (b == "") {
		return a == ""
	}
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

// reconcile decides whether challenger c from shard cs replaces
// incumbent e from shard es when both archived the same URL. The rules
// are deterministic regardless of read order: a newer store generation
// wins outright — a URL re-archived by a later run supersedes the
// older outcome even when the old one was a success and the new one a
// failure (success → refail must not resurrect the stale success).
// Within one generation (the common fleet case: two shards of the same
// run racing on a shared subresource host) a success beats an archived
// failure — the fleet member that got the page wins over the one that
// caught the site mid-fault — and between two successes or two
// failures the lower shard id wins.
func reconcile(e entry, es string, c entry, cs string) bool {
	if e.Gen != c.Gen {
		return c.Gen > e.Gen
	}
	if e.success() != c.success() {
		return c.success()
	}
	return shardLess(cs, es)
}

// loadShards reads every manifest shard in dir into the index,
// returning this archive's own-shard entries and whether its own shard
// file was already one clean line per URL (false forces compaction).
func (a *Archive) loadShards() (own map[string]entry, clean bool, err error) {
	shards, err := shardFiles(a.dir)
	if err != nil {
		return nil, false, err
	}
	own, clean = map[string]entry{}, true
	source := map[string]string{} // URL → shard that currently owns the index entry
	for _, shard := range shards {
		m, ls, err := loadManifestFile(manifestPath(a.dir, shard))
		if err != nil {
			return nil, false, err
		}
		if shard == a.shard {
			own, clean = m, ls.clean()
		}
		for url, e := range m {
			// Track the highest generation any shard recorded — even for
			// entries that lose reconciliation — so this process's own
			// re-stores always append a strictly newer generation.
			if e.Gen > a.gens[url] {
				a.gens[url] = e.Gen
			}
			if cur, ok := a.index[url]; !ok || reconcile(cur.entry, source[url], e, shard) {
				a.index[url] = &indexed{entry: e, gen: e.Gen}
				source[url] = shard
			}
		}
	}
	return own, clean, nil
}

// loadStats describes how tolerant a manifest-shard read had to be.
type loadStats struct {
	// lines counts the well-formed entries read; dups how many of them
	// re-stated a URL already seen in the same shard (append-during-crawl
	// churn).
	lines, dups int
	// corrupt counts undecodable lines dropped; torn marks a final line
	// with no trailing newline — the classic tail a killed writer leaves.
	corrupt int
	torn    bool
}

// clean reports whether the shard was already one well-formed line per
// URL — nothing dropped, nothing duplicated, so no compaction is owed.
func (s loadStats) clean() bool { return s.dups == 0 && s.corrupt == 0 && !s.torn }

// loadManifestFile reads one manifest shard tolerantly: within the
// file later duplicates of a URL win, corrupt lines and a truncated
// tail are dropped (counted in loadStats), and a missing file is an
// empty clean shard.
func loadManifestFile(path string) (m map[string]entry, ls loadStats, err error) {
	m = map[string]entry{}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return m, ls, nil
	}
	if err != nil {
		return nil, ls, fmt.Errorf("diskcache: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for {
		line, readErr := br.ReadBytes('\n')
		if n := len(line); n > 0 && line[n-1] == '\n' {
			var e entry
			if json.Unmarshal(line, &e) == nil && e.URL != "" {
				if _, dup := m[e.URL]; dup {
					ls.dups++
				}
				m[e.URL] = e
				ls.lines++
			} else {
				ls.corrupt++ // corrupt line: drop it
			}
		} else if n > 0 {
			ls.torn = true // truncated tail from an interrupted crawl
		}
		if readErr != nil {
			return m, ls, nil
		}
	}
}

// orphanTTL is the age past which a temp file with no pid tag (written
// by an older archive version) is presumed crash debris. Pid-tagged
// temps don't need the age gate: the tag decides ownership exactly.
const orphanTTL = time.Hour

// tempPattern names a temp file for os.CreateTemp with this process's
// pid embedded (".obj-1234-*"), so a crash-consistency sweep can tell a
// dead writer's debris from a live writer's rename-in-progress.
func tempPattern(kind string) string {
	return fmt.Sprintf(".%s-%d-*", kind, os.Getpid())
}

// tempOrphaned reports whether a temp file named name (already known to
// carry a ".obj-" or ".manifest-" prefix) is crash debris safe to
// remove: its embedded writer pid is dead, or — when the name carries
// no pid tag — its mtime predates the orphanTTL age gate.
func tempOrphaned(name string, modTime time.Time) bool {
	rest := name[strings.IndexByte(name, '-')+1:]
	if pidStr, _, ok := strings.Cut(rest, "-"); ok {
		if pid, err := strconv.Atoi(pidStr); err == nil && pid > 0 {
			return !pidAlive(pid)
		}
	}
	return time.Since(modTime) > orphanTTL
}

// sweepOrphans is the crash-consistency GC over dir: temp manifest
// files in the root (a compaction killed mid-rewrite) and temp object
// files under objects/ (a Store killed mid-rename) whose owning writer
// is provably gone are removed. Files whose owner is still alive are
// untouched, so any number of fleet members can sweep concurrently
// while others write. Returns the number of orphans removed.
func sweepOrphans(dir string) int {
	removed := sweepDir(dir, ".manifest-")
	buckets, err := os.ReadDir(filepath.Join(dir, objectsDir))
	if err != nil {
		return removed
	}
	for _, b := range buckets {
		if b.IsDir() {
			removed += sweepDir(filepath.Join(dir, objectsDir, b.Name()), ".obj-")
		}
	}
	return removed
}

// sweepDir removes orphaned temp files with the given prefix directly
// inside dir, counting only removals that succeeded (a concurrent
// sweeper may get there first).
func sweepDir(dir, prefix string) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	removed := 0
	for _, de := range entries {
		if de.IsDir() || !strings.HasPrefix(de.Name(), prefix) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		if tempOrphaned(de.Name(), info.ModTime()) && os.Remove(filepath.Join(dir, de.Name())) == nil {
			removed++
		}
	}
	return removed
}

// compactShard atomically rewrites one shard's manifest as one line per
// URL, sorted by URL so the result is byte-deterministic.
func compactShard(dir, path string, entries map[string]entry) error {
	tmp, err := os.CreateTemp(dir, tempPattern("manifest"))
	if err != nil {
		return fmt.Errorf("diskcache: compacting: %w", err)
	}
	bw := bufio.NewWriter(tmp)
	enc := json.NewEncoder(bw)
	urls := make([]string, 0, len(entries))
	for url := range entries {
		urls = append(urls, url)
	}
	sort.Strings(urls)
	for _, url := range urls {
		if err := enc.Encode(entries[url]); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("diskcache: compacting: %w", err)
		}
	}
	if err := bw.Flush(); err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("diskcache: compacting: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("diskcache: compacting: %w", err)
	}
	return nil
}

// acquireLock takes the shard lock at path, failing fast (ErrLocked)
// when a live process holds it. The lock file records the holder's
// pid; a lock whose pid is dead — a crawler that crashed without
// Close — is stolen so resume never needs manual cleanup. Returns the
// release func.
func acquireLock(path string) (release func(), err error) {
	for attempt := 0; attempt < 4; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			fmt.Fprintf(f, "%d\n", os.Getpid())
			f.Close()
			return func() { os.Remove(path) }, nil
		}
		if !os.IsExist(err) {
			return nil, fmt.Errorf("diskcache: %w", err)
		}
		raw, readErr := os.ReadFile(path)
		if readErr != nil {
			// Raced with the holder's release; retry the create.
			continue
		}
		pid, parseErr := strconv.Atoi(strings.TrimSpace(string(raw)))
		if parseErr == nil && pidAlive(pid) {
			return nil, fmt.Errorf("%w: %s held by pid %d (another crawler is appending this shard; use a distinct -shard, or remove the lock if that process is gone)",
				ErrLocked, path, pid)
		}
		// Stale: the recorded holder is dead (or the file is garbage
		// from a torn write). Steal it and retry the exclusive create.
		os.Remove(path)
	}
	return nil, fmt.Errorf("%w: %s (lock contention)", ErrLocked, path)
}

// pidAlive reports whether pid is a live process we could signal. A
// permission error still means "alive" — it exists, it just isn't ours.
func pidAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = p.Signal(syscall.Signal(0))
	return err == nil || errors.Is(err, syscall.EPERM)
}

// Load implements browser.ResponseArchive. Online, it returns
// (nil, nil) for anything it cannot serve — unarchived URLs, archived
// failures (the site may be healthy again; re-fetch it), and corrupt
// or truncated objects, which are dropped so the re-fetch rewrites
// them. Offline, archived failures replay as *browser.ReplayedFailure
// and every miss is an error wrapping browser.ErrNotArchived.
func (a *Archive) Load(rawURL string) (*browser.Response, error) {
	a.mu.Lock()
	ix, ok := a.index[rawURL]
	if !ok {
		a.mu.Unlock()
		return a.miss(rawURL)
	}
	e, gen := ix.entry, ix.gen
	a.mu.Unlock()

	if e.Hash == "" {
		if a.offline {
			a.hits.Add(1)
			return nil, &browser.ReplayedFailure{Class: e.FailureClass, Msg: e.FailureMsg}
		}
		return nil, nil
	}
	body, err := os.ReadFile(a.objectPath(e.Hash))
	if err == nil && int64(len(body)) == e.Size {
		if sum := sha256.Sum256(body); hex.EncodeToString(sum[:]) == e.Hash {
			a.hits.Add(1)
			return &browser.Response{
				Status:        e.Status,
				Header:        e.Header,
				Body:          string(body),
				FinalURL:      e.FinalURL,
				BodyTruncated: e.BodyTruncated,
			}, nil
		}
	}
	// Corrupt, truncated, or missing object: degrade to a miss so the
	// caller re-fetches. Online, drop the index entry and the bad
	// object so the re-fetch rewrites both — unless a concurrent Store
	// already replaced them (generation check).
	a.corrupt.Add(1)
	if !a.offline {
		a.mu.Lock()
		if cur, ok := a.index[rawURL]; ok && cur.gen == gen {
			delete(a.index, rawURL)
			os.Remove(a.objectPath(e.Hash))
		}
		a.mu.Unlock()
	}
	return a.miss(rawURL)
}

// miss is the no-entry outcome: nil online, distinguishable offline.
func (a *Archive) miss(rawURL string) (*browser.Response, error) {
	if a.offline {
		return nil, fmt.Errorf("%w: %s", browser.ErrNotArchived, rawURL)
	}
	return nil, nil
}

// Store implements browser.ResponseArchive: the object lands first
// (temp file + rename; skipped when an intact copy of the same content
// already exists), then the manifest line. A disk error degrades the
// archive silently — the crawl itself already has the response.
func (a *Archive) Store(rawURL string, resp *browser.Response) {
	if a.offline || resp == nil {
		return
	}
	sum := sha256.Sum256([]byte(resp.Body))
	e := entry{
		URL:           rawURL,
		Hash:          hex.EncodeToString(sum[:]),
		Size:          int64(len(resp.Body)),
		Status:        resp.Status,
		Header:        resp.Header,
		FinalURL:      resp.FinalURL,
		BodyTruncated: resp.BodyTruncated,
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.writeObjectLocked(e.Hash, resp.Body); err != nil {
		return
	}
	a.appendLocked(e)
}

// StoreFailure implements browser.ResponseArchive: a failed fetch is
// archived with its taxonomy class so offline replay reproduces the
// failure. Crawler-local conditions (Classify returns "") are skipped.
func (a *Archive) StoreFailure(rawURL string, fetchErr error) {
	if a.offline || a.classify == nil || fetchErr == nil {
		return
	}
	class := a.classify(fetchErr)
	if class == "" {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.appendLocked(entry{URL: rawURL, FailureClass: class, FailureMsg: fetchErr.Error()})
}

// writeObjectLocked stores body under its content hash, atomically. An
// existing object of the right size is trusted (content addressing:
// same hash, same bytes); a wrong-sized one — a truncated write from a
// crash — is repaired by the rename. Callers hold a.mu.
func (a *Archive) writeObjectLocked(hash, body string) error {
	path := a.objectPath(hash)
	if fi, err := os.Stat(path); err == nil && fi.Size() == int64(len(body)) {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), tempPattern("obj"))
	if err != nil {
		return err
	}
	if _, err := tmp.WriteString(body); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	a.bytesStored.Add(uint64(len(body)))
	return nil
}

// appendLocked stamps e with the URL's next store generation, writes
// one manifest line, and updates the index. The generation comes from
// the high-water mark rather than the live index entry so that a
// corrupt-object deletion (Load's recovery path) can never reset the
// counter and let a stale shard line win a later merge. Each line is a
// single Write call, so a crash mid-append corrupts at most the tail —
// which Open drops. Callers hold a.mu.
func (a *Archive) appendLocked(e entry) {
	e.Gen = a.gens[e.URL] + 1
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	if a.manifest != nil {
		if _, err := a.manifest.Write(append(line, '\n')); err != nil {
			return
		}
	}
	a.gens[e.URL] = e.Gen
	if ix := a.index[e.URL]; ix != nil {
		ix.entry, ix.gen = e, e.Gen
	} else {
		a.index[e.URL] = &indexed{entry: e, gen: e.Gen}
	}
	a.writes.Add(1)
}

func (a *Archive) objectPath(hash string) string {
	return filepath.Join(a.dir, objectsDir, hash[:2], hash[2:])
}

// Stats implements browser.ResponseArchive.
func (a *Archive) Stats() browser.ArchiveStats {
	a.mu.Lock()
	entries := uint64(len(a.index))
	hashes := map[string]struct{}{}
	for _, ix := range a.index {
		if ix.Hash != "" {
			hashes[ix.Hash] = struct{}{}
		}
	}
	a.mu.Unlock()
	return browser.ArchiveStats{
		Hits:             a.hits.Load(),
		Writes:           a.writes.Load(),
		CorruptRecovered: a.corrupt.Load(),
		OrphansSwept:     a.orphansSwept.Load(),
		BytesStored:      a.bytesStored.Load(),
		Entries:          entries,
		Objects:          uint64(len(hashes)),
	}
}

// Close releases the manifest append handle and the shard lock. Stores
// after Close still update the in-memory index and object store but no
// longer reach the manifest; close the archive only once the crawl is
// done with it.
func (a *Archive) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	var err error
	if a.manifest != nil {
		err = a.manifest.Close()
		a.manifest = nil
	}
	if a.lockPath != "" {
		os.Remove(a.lockPath)
		a.lockPath = ""
	}
	return err
}

// MergeStats describes what MergeShards reconciled.
type MergeStats struct {
	// Shards is the number of manifest shard files merged (the
	// unsharded manifest counts when present).
	Shards int
	// Lines is the total well-formed manifest lines read across shards;
	// URLs the unique URLs in the merged manifest.
	Lines int
	URLs  int
	// Reconciled counts URLs archived by more than one shard;
	// SuccessesPreferred the subset where a same-generation success
	// displaced an archived failure; GenerationsAdvanced the subset
	// resolved by store generation — a later run's re-store (success or
	// failure) superseding an older generation's outcome.
	Reconciled          int
	SuccessesPreferred  int
	GenerationsAdvanced int
	// MissingObjects counts merged success entries whose object file is
	// absent or size-mismatched — the data-loss signal a merge gate
	// fails on. (Online replay would degrade these to re-fetches; a
	// merge that just collected a finished fleet crawl should have
	// none.)
	MissingObjects int
	// Crash-consistency counters: OrphanTempsSwept is temp object and
	// temp manifest files GC'd because their writer pid is dead;
	// CorruptLinesDropped and TornTails count undecodable manifest lines
	// and newline-less final lines dropped across shards — the debris a
	// SIGKILLed fleet worker leaves, repaired rather than merged.
	OrphanTempsSwept    int
	CorruptLinesDropped int
	TornTails           int
}

// MergeShards compacts every manifest shard in dir into the single
// unsharded manifest a one-process crawl would have written: one line
// per URL, sorted by URL, duplicates reconciled by the same
// deterministic rules Open applies (newest store generation first,
// then success over archived failure, then lowest shard id). Shard
// files are removed after the merged
// manifest lands atomically. Every shard's lock must be free —
// merging under a live crawler would lose its writes — so MergeShards
// fails fast (ErrLocked) if any shard is still held by a live
// process. Idempotent: rerunning on a merged directory is a no-op
// compaction. The merge doubles as the fleet's crash-consistency
// collection point: orphaned temp files from SIGKILLed writers are
// swept and torn manifest tails dropped, with counts in MergeStats.
func MergeShards(dir string) (MergeStats, error) {
	var ms MergeStats
	shards, err := shardFiles(dir)
	if err != nil {
		return ms, err
	}
	// Lock every shard present plus the merge target, releasing all on
	// return. Locking in shardLess order keeps two concurrent merges
	// from deadlocking; both cannot win.
	lockShards := shards
	if len(shards) == 0 || shards[0] != "" {
		lockShards = append([]string{""}, shards...)
	}
	var releases []func()
	defer func() {
		for _, r := range releases {
			r()
		}
	}()
	for _, shard := range lockShards {
		release, err := acquireLock(manifestPath(dir, shard) + lockExt)
		if err != nil {
			return ms, err
		}
		releases = append(releases, release)
	}

	ms.OrphanTempsSwept = sweepOrphans(dir)

	merged := map[string]entry{}
	source := map[string]string{}
	for _, shard := range shards {
		m, ls, err := loadManifestFile(manifestPath(dir, shard))
		if err != nil {
			return ms, err
		}
		ms.Shards++
		ms.Lines += ls.lines
		ms.CorruptLinesDropped += ls.corrupt
		if ls.torn {
			ms.TornTails++
		}
		for url, e := range m {
			cur, ok := merged[url]
			if !ok {
				merged[url] = e
				source[url] = shard
				continue
			}
			ms.Reconciled++
			if reconcile(cur, source[url], e, shard) {
				if e.Gen != cur.Gen {
					ms.GenerationsAdvanced++
				} else if e.success() && !cur.success() {
					ms.SuccessesPreferred++
				}
				merged[url] = e
				source[url] = shard
			} else if cur.Gen != e.Gen {
				ms.GenerationsAdvanced++
			} else if cur.success() && !e.success() {
				ms.SuccessesPreferred++
			}
		}
	}
	ms.URLs = len(merged)
	for _, e := range merged {
		if !e.success() {
			continue
		}
		fi, err := os.Stat(filepath.Join(dir, objectsDir, e.Hash[:2], e.Hash[2:]))
		if err != nil || fi.Size() != e.Size {
			ms.MissingObjects++
		}
	}
	if err := os.MkdirAll(filepath.Join(dir, objectsDir), 0o755); err != nil {
		return ms, fmt.Errorf("diskcache: %w", err)
	}
	if err := compactShard(dir, filepath.Join(dir, manifestName), merged); err != nil {
		return ms, err
	}
	// The merged manifest is durable; the shard files are now redundant.
	for _, shard := range shards {
		if shard == "" {
			continue
		}
		if err := os.Remove(manifestPath(dir, shard)); err != nil {
			return ms, fmt.Errorf("diskcache: removing merged shard: %w", err)
		}
	}
	return ms, nil
}
