// Package diskcache persists fetched resources as a content-addressed
// on-disk archive, the step that turns a crawl into a replayable
// dataset: objects are stored once by SHA-256 under
// objects/ab/cdef..., and a JSONL manifest maps each URL to its
// outcome — the object's hash plus status/headers for successes, the
// failure class and message for fetches that failed. A repeat crawl of
// the same population reads everything back and skips the network
// entirely; strict offline mode replays a finished crawl byte for
// byte, failures included, and turns every genuine miss into a
// distinguishable error instead of a network fetch (the
// archive-then-replay design Web Execution Bundles argues is what
// makes web measurements reproducible and auditable).
//
// The archive is built to survive the crawler dying on top of it:
// objects land via temp-file-plus-rename so a crash never leaves a
// half-written object under its final name; the manifest is appended
// one line per outcome and a truncated or corrupt tail is dropped on
// open (and compacted away); and a hash-mismatched, truncated, or
// missing object is treated as a miss and re-fetched — corruption
// degrades the archive, it never fails the crawl.
package diskcache

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"permodyssey/internal/browser"
)

const (
	manifestName = "manifest.jsonl"
	objectsDir   = "objects"
)

// entry is one manifest line: the archived outcome of fetching URL.
// Exactly one of Hash (success; the body lives in the object store) or
// FailureClass (archived failure) is set.
type entry struct {
	URL           string      `json:"url"`
	Hash          string      `json:"hash,omitempty"`
	Size          int64       `json:"size,omitempty"`
	Status        int         `json:"status,omitempty"`
	Header        http.Header `json:"header,omitempty"`
	FinalURL      string      `json:"final_url,omitempty"`
	BodyTruncated bool        `json:"body_truncated,omitempty"`
	FailureClass  string      `json:"failure_class,omitempty"`
	FailureMsg    string      `json:"failure_msg,omitempty"`
}

// indexed is an entry plus its overwrite generation, bumped on every
// re-store of the same URL so a Load that judged a stale read corrupt
// cannot delete an object a concurrent Store just renamed into place.
type indexed struct {
	entry
	gen uint64
}

// Options tunes an Archive.
type Options struct {
	// Offline switches the archive to strict replay: loads serve
	// archived responses and replay archived failures, every miss
	// (including a corrupt object) returns an error wrapping
	// browser.ErrNotArchived, and nothing on disk is modified.
	Offline bool
	// Classify maps a failed fetch to the failure-taxonomy class
	// (store.FailureClass string) archived with it. Returning "" skips
	// archiving that failure — crawler-local conditions such as
	// cancellation or an open circuit breaker are not site properties
	// and must not poison replay. nil disables failure archiving.
	Classify func(err error) string
}

// Archive is a content-addressed resource archive rooted at one
// directory. Safe for concurrent use by any number of crawl stacks in
// one process; multi-process sharing is limited to read-side safety
// (object writes are atomic, but two processes appending one manifest
// interleave).
type Archive struct {
	dir      string
	offline  bool
	classify func(err error) string

	mu       sync.Mutex
	index    map[string]*indexed
	manifest *os.File // append handle; nil when offline or closed

	hits, writes, corrupt, bytesStored atomic.Uint64
}

// Open loads (or creates) the archive rooted at dir. The manifest is
// read tolerantly — a truncated tail or corrupt line from an
// interrupted crawl is dropped, later duplicates of a URL win — and
// compacted back to one line per URL before the append handle opens.
// In offline mode nothing is written, not even the compaction.
func Open(dir string, opts Options) (*Archive, error) {
	a := &Archive{
		dir:      dir,
		offline:  opts.Offline,
		classify: opts.Classify,
		index:    map[string]*indexed{},
	}
	if err := os.MkdirAll(filepath.Join(dir, objectsDir), 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	path := filepath.Join(dir, manifestName)
	clean, err := a.loadManifest(path)
	if err != nil {
		return nil, err
	}
	if a.offline {
		return a, nil
	}
	if !clean {
		if err := a.compact(path); err != nil {
			return nil, err
		}
	}
	mf, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	a.manifest = mf
	return a, nil
}

// loadManifest reads the manifest into the index, reporting whether the
// file was already one clean line per URL (false forces compaction).
func (a *Archive) loadManifest(path string) (clean bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return true, nil
	}
	if err != nil {
		return false, fmt.Errorf("diskcache: %w", err)
	}
	defer f.Close()
	clean = true
	br := bufio.NewReader(f)
	for {
		line, readErr := br.ReadBytes('\n')
		if n := len(line); n > 0 && line[n-1] == '\n' {
			var e entry
			if json.Unmarshal(line, &e) == nil && e.URL != "" {
				if _, dup := a.index[e.URL]; dup {
					clean = false // duplicate: append-during-crawl churn
				}
				a.index[e.URL] = &indexed{entry: e}
			} else {
				clean = false // corrupt line: drop it
			}
		} else if n > 0 {
			clean = false // truncated tail from an interrupted crawl
		}
		if readErr != nil {
			return clean, nil
		}
	}
}

// compact atomically rewrites the manifest as one line per URL.
func (a *Archive) compact(path string) error {
	tmp, err := os.CreateTemp(a.dir, ".manifest-*")
	if err != nil {
		return fmt.Errorf("diskcache: compacting: %w", err)
	}
	bw := bufio.NewWriter(tmp)
	enc := json.NewEncoder(bw)
	for _, ix := range a.index {
		if err := enc.Encode(ix.entry); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("diskcache: compacting: %w", err)
		}
	}
	if err := bw.Flush(); err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("diskcache: compacting: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("diskcache: compacting: %w", err)
	}
	return nil
}

// Load implements browser.ResponseArchive. Online, it returns
// (nil, nil) for anything it cannot serve — unarchived URLs, archived
// failures (the site may be healthy again; re-fetch it), and corrupt
// or truncated objects, which are dropped so the re-fetch rewrites
// them. Offline, archived failures replay as *browser.ReplayedFailure
// and every miss is an error wrapping browser.ErrNotArchived.
func (a *Archive) Load(rawURL string) (*browser.Response, error) {
	a.mu.Lock()
	ix, ok := a.index[rawURL]
	if !ok {
		a.mu.Unlock()
		return a.miss(rawURL)
	}
	e, gen := ix.entry, ix.gen
	a.mu.Unlock()

	if e.Hash == "" {
		if a.offline {
			a.hits.Add(1)
			return nil, &browser.ReplayedFailure{Class: e.FailureClass, Msg: e.FailureMsg}
		}
		return nil, nil
	}
	body, err := os.ReadFile(a.objectPath(e.Hash))
	if err == nil && int64(len(body)) == e.Size {
		if sum := sha256.Sum256(body); hex.EncodeToString(sum[:]) == e.Hash {
			a.hits.Add(1)
			return &browser.Response{
				Status:        e.Status,
				Header:        e.Header,
				Body:          string(body),
				FinalURL:      e.FinalURL,
				BodyTruncated: e.BodyTruncated,
			}, nil
		}
	}
	// Corrupt, truncated, or missing object: degrade to a miss so the
	// caller re-fetches. Online, drop the index entry and the bad
	// object so the re-fetch rewrites both — unless a concurrent Store
	// already replaced them (generation check).
	a.corrupt.Add(1)
	if !a.offline {
		a.mu.Lock()
		if cur, ok := a.index[rawURL]; ok && cur.gen == gen {
			delete(a.index, rawURL)
			os.Remove(a.objectPath(e.Hash))
		}
		a.mu.Unlock()
	}
	return a.miss(rawURL)
}

// miss is the no-entry outcome: nil online, distinguishable offline.
func (a *Archive) miss(rawURL string) (*browser.Response, error) {
	if a.offline {
		return nil, fmt.Errorf("%w: %s", browser.ErrNotArchived, rawURL)
	}
	return nil, nil
}

// Store implements browser.ResponseArchive: the object lands first
// (temp file + rename; skipped when an intact copy of the same content
// already exists), then the manifest line. A disk error degrades the
// archive silently — the crawl itself already has the response.
func (a *Archive) Store(rawURL string, resp *browser.Response) {
	if a.offline || resp == nil {
		return
	}
	sum := sha256.Sum256([]byte(resp.Body))
	e := entry{
		URL:           rawURL,
		Hash:          hex.EncodeToString(sum[:]),
		Size:          int64(len(resp.Body)),
		Status:        resp.Status,
		Header:        resp.Header,
		FinalURL:      resp.FinalURL,
		BodyTruncated: resp.BodyTruncated,
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.writeObjectLocked(e.Hash, resp.Body); err != nil {
		return
	}
	a.appendLocked(e)
}

// StoreFailure implements browser.ResponseArchive: a failed fetch is
// archived with its taxonomy class so offline replay reproduces the
// failure. Crawler-local conditions (Classify returns "") are skipped.
func (a *Archive) StoreFailure(rawURL string, fetchErr error) {
	if a.offline || a.classify == nil || fetchErr == nil {
		return
	}
	class := a.classify(fetchErr)
	if class == "" {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.appendLocked(entry{URL: rawURL, FailureClass: class, FailureMsg: fetchErr.Error()})
}

// writeObjectLocked stores body under its content hash, atomically. An
// existing object of the right size is trusted (content addressing:
// same hash, same bytes); a wrong-sized one — a truncated write from a
// crash — is repaired by the rename. Callers hold a.mu.
func (a *Archive) writeObjectLocked(hash, body string) error {
	path := a.objectPath(hash)
	if fi, err := os.Stat(path); err == nil && fi.Size() == int64(len(body)) {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".obj-*")
	if err != nil {
		return err
	}
	if _, err := tmp.WriteString(body); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	a.bytesStored.Add(uint64(len(body)))
	return nil
}

// appendLocked writes one manifest line and updates the index. Each
// line is a single Write call, so a crash mid-append corrupts at most
// the tail — which Open drops. Callers hold a.mu.
func (a *Archive) appendLocked(e entry) {
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	if a.manifest != nil {
		if _, err := a.manifest.Write(append(line, '\n')); err != nil {
			return
		}
	}
	if ix := a.index[e.URL]; ix != nil {
		ix.entry, ix.gen = e, ix.gen+1
	} else {
		a.index[e.URL] = &indexed{entry: e, gen: 1}
	}
	a.writes.Add(1)
}

func (a *Archive) objectPath(hash string) string {
	return filepath.Join(a.dir, objectsDir, hash[:2], hash[2:])
}

// Stats implements browser.ResponseArchive.
func (a *Archive) Stats() browser.ArchiveStats {
	a.mu.Lock()
	entries := uint64(len(a.index))
	hashes := map[string]struct{}{}
	for _, ix := range a.index {
		if ix.Hash != "" {
			hashes[ix.Hash] = struct{}{}
		}
	}
	a.mu.Unlock()
	return browser.ArchiveStats{
		Hits:             a.hits.Load(),
		Writes:           a.writes.Load(),
		CorruptRecovered: a.corrupt.Load(),
		BytesStored:      a.bytesStored.Load(),
		Entries:          entries,
		Objects:          uint64(len(hashes)),
	}
}

// Close releases the manifest append handle. Stores after Close still
// update the in-memory index and object store but no longer reach the
// manifest; close the archive only once the crawl is done with it.
func (a *Archive) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.manifest == nil {
		return nil
	}
	err := a.manifest.Close()
	a.manifest = nil
	return err
}
