// Package diskcache persists fetched resources as a content-addressed
// on-disk archive, the step that turns a crawl into a replayable
// dataset: objects are stored once by SHA-256 under
// objects/ab/cdef..., and a JSONL manifest maps each URL to its
// outcome — the object's hash plus status/headers for successes, the
// failure class and message for fetches that failed. A repeat crawl of
// the same population reads everything back and skips the network
// entirely; strict offline mode replays a finished crawl byte for
// byte, failures included, and turns every genuine miss into a
// distinguishable error instead of a network fetch (the
// archive-then-replay design Web Execution Bundles argues is what
// makes web measurements reproducible and auditable).
//
// The archive is built to survive the crawler dying on top of it:
// objects land via temp-file-plus-rename so a crash never leaves a
// half-written object under its final name; the manifest is appended
// one line per outcome and a truncated or corrupt tail is dropped on
// open (and compacted away); and a hash-mismatched, truncated, or
// missing object is treated as a miss and re-fetched — corruption
// degrades the archive, it never fails the crawl.
//
// One directory can back a whole fleet of crawler processes at once:
// object writes are already atomic and content-addressed, and each
// process appends manifest lines to its own shard
// (manifest-<shard>.jsonl, Options.Shard), so no two processes ever
// write one file. Open reads every shard into a reconciled view, a
// lock file per shard makes a second Open of the same shard fail fast
// instead of silently interleaving appends, and MergeShards compacts
// all shards back into the single deterministic manifest a
// one-process crawl would have written.
package diskcache

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"

	"permodyssey/internal/browser"
)

const (
	manifestName   = "manifest.jsonl"
	manifestPrefix = "manifest-"
	manifestExt    = ".jsonl"
	lockExt        = ".lock"
	objectsDir     = "objects"
)

// ErrLocked is wrapped by Open and MergeShards when a manifest shard's
// lock file is held by a live process: a second crawler appending the
// same shard would interleave writes and corrupt it, so the late
// arrival fails fast instead. Fleet members avoid the collision by
// using distinct Options.Shard names.
var ErrLocked = errors.New("diskcache: manifest shard locked")

// entry is one manifest line: the archived outcome of fetching URL.
// Exactly one of Hash (success; the body lives in the object store) or
// FailureClass (archived failure) is set.
type entry struct {
	URL           string      `json:"url"`
	Hash          string      `json:"hash,omitempty"`
	Size          int64       `json:"size,omitempty"`
	Status        int         `json:"status,omitempty"`
	Header        http.Header `json:"header,omitempty"`
	FinalURL      string      `json:"final_url,omitempty"`
	BodyTruncated bool        `json:"body_truncated,omitempty"`
	FailureClass  string      `json:"failure_class,omitempty"`
	FailureMsg    string      `json:"failure_msg,omitempty"`
}

// success reports whether the entry archives a response (as opposed to
// a classified failure).
func (e entry) success() bool { return e.Hash != "" }

// indexed is an entry plus its overwrite generation, bumped on every
// re-store of the same URL so a Load that judged a stale read corrupt
// cannot delete an object a concurrent Store just renamed into place.
type indexed struct {
	entry
	gen uint64
}

// Options tunes an Archive.
type Options struct {
	// Offline switches the archive to strict replay: loads serve
	// archived responses and replay archived failures, every miss
	// (including a corrupt object) returns an error wrapping
	// browser.ErrNotArchived, and nothing on disk is modified — no
	// compaction, no lock file, so any number of offline readers can
	// share the directory with a live fleet.
	Offline bool
	// Classify maps a failed fetch to the failure-taxonomy class
	// (store.FailureClass string) archived with it. Returning "" skips
	// archiving that failure — crawler-local conditions such as
	// cancellation or an open circuit breaker are not site properties
	// and must not poison replay. nil disables failure archiving.
	Classify func(err error) string
	// Shard names this process's manifest shard. "" appends to the
	// classic single manifest (manifest.jsonl); any other name appends
	// to manifest-<Shard>.jsonl, so a fleet of processes with distinct
	// shard names can populate one directory without ever sharing an
	// append handle. Open always reads every shard present, merged
	// deterministically (see reconcile); MergeShards compacts them back
	// into one manifest once the fleet is done.
	Shard string
}

// Archive is a content-addressed resource archive rooted at one
// directory. Safe for concurrent use by any number of crawl stacks in
// one process, and by multiple processes when each uses a distinct
// Options.Shard (object writes are atomic; manifest appends are
// per-shard single-writer, enforced by a lock file).
type Archive struct {
	dir      string
	shard    string
	offline  bool
	classify func(err error) string

	mu       sync.Mutex
	index    map[string]*indexed
	manifest *os.File // append handle; nil when offline or closed
	lockPath string   // held shard lock; "" when offline or closed

	hits, writes, corrupt, bytesStored atomic.Uint64
}

// Open loads (or creates) the archive rooted at dir. Every manifest
// shard present is read tolerantly — a truncated tail or corrupt line
// from an interrupted crawl is dropped, later duplicates of a URL win
// within a shard, cross-shard duplicates reconcile deterministically —
// and this process's own shard is compacted back to one line per URL
// before its append handle opens. Online, the shard's lock file is
// acquired first: a second process opening the same shard fails fast
// (ErrLocked) rather than interleaving appends; a lock left by a dead
// process is stolen. In offline mode nothing is written, not even the
// compaction or the lock.
func Open(dir string, opts Options) (*Archive, error) {
	if err := validShard(opts.Shard); err != nil {
		return nil, err
	}
	a := &Archive{
		dir:      dir,
		shard:    opts.Shard,
		offline:  opts.Offline,
		classify: opts.Classify,
		index:    map[string]*indexed{},
	}
	if err := os.MkdirAll(filepath.Join(dir, objectsDir), 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	own, clean, err := a.loadShards()
	if err != nil {
		return nil, err
	}
	if a.offline {
		return a, nil
	}
	path := manifestPath(dir, a.shard)
	lock, err := acquireLock(path + lockExt)
	if err != nil {
		return nil, err
	}
	a.lockPath = path + lockExt
	if !clean {
		if err := compactShard(dir, path, own); err != nil {
			lock()
			a.lockPath = ""
			return nil, err
		}
	}
	mf, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		lock()
		a.lockPath = ""
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	a.manifest = mf
	return a, nil
}

// validShard rejects shard names that would escape the manifest naming
// scheme (path separators, the empty-extension trick) — a shard name is
// a filename fragment, nothing more.
func validShard(shard string) error {
	if shard == "" {
		return nil
	}
	for _, r := range shard {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("diskcache: invalid shard name %q (want [A-Za-z0-9._-]+)", shard)
		}
	}
	return nil
}

// manifestPath names a shard's manifest file inside dir.
func manifestPath(dir, shard string) string {
	if shard == "" {
		return filepath.Join(dir, manifestName)
	}
	return filepath.Join(dir, manifestPrefix+shard+manifestExt)
}

// shardFiles lists every manifest shard present in dir, sorted by
// shardLess so reconciliation visits them in deterministic priority
// order. The unsharded manifest.jsonl is shard "".
func shardFiles(dir string) ([]string, error) {
	var shards []string
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		shards = append(shards, "")
	}
	matches, err := filepath.Glob(filepath.Join(dir, manifestPrefix+"*"+manifestExt))
	if err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	for _, m := range matches {
		name := filepath.Base(m)
		shards = append(shards, strings.TrimSuffix(strings.TrimPrefix(name, manifestPrefix), manifestExt))
	}
	sort.Slice(shards, func(i, j int) bool { return shardLess(shards[i], shards[j]) })
	return shards, nil
}

// shardLess orders shard names for reconciliation: the unsharded
// manifest first, then shorter names before longer, then
// lexicographic — which orders decimal shard ids numerically ("2"
// before "10") without requiring zero padding.
func shardLess(a, b string) bool {
	if (a == "") != (b == "") {
		return a == ""
	}
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

// reconcile decides whether challenger c from shard cs replaces
// incumbent e from shard es when both archived the same URL. The rules
// are deterministic regardless of read order: a success beats an
// archived failure (the fleet member that got the page wins over the
// one that caught the site mid-fault); between two successes or two
// failures the lower shard id wins.
func reconcile(e entry, es string, c entry, cs string) bool {
	if e.success() != c.success() {
		return c.success()
	}
	return shardLess(cs, es)
}

// loadShards reads every manifest shard in dir into the index,
// returning this archive's own-shard entries and whether its own shard
// file was already one clean line per URL (false forces compaction).
func (a *Archive) loadShards() (own map[string]entry, clean bool, err error) {
	shards, err := shardFiles(a.dir)
	if err != nil {
		return nil, false, err
	}
	own, clean = map[string]entry{}, true
	source := map[string]string{} // URL → shard that currently owns the index entry
	for _, shard := range shards {
		m, shardClean, _, err := loadManifestFile(manifestPath(a.dir, shard))
		if err != nil {
			return nil, false, err
		}
		if shard == a.shard {
			own, clean = m, shardClean
		}
		for url, e := range m {
			if cur, ok := a.index[url]; !ok || reconcile(cur.entry, source[url], e, shard) {
				a.index[url] = &indexed{entry: e}
				source[url] = shard
			}
		}
	}
	return own, clean, nil
}

// loadManifestFile reads one manifest shard tolerantly: within the
// file later duplicates of a URL win, corrupt lines and a truncated
// tail are dropped (reported via clean=false), and a missing file is
// an empty clean shard. lines counts the well-formed entries read.
func loadManifestFile(path string) (m map[string]entry, clean bool, lines int, err error) {
	m, clean = map[string]entry{}, true
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return m, true, 0, nil
	}
	if err != nil {
		return nil, false, 0, fmt.Errorf("diskcache: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for {
		line, readErr := br.ReadBytes('\n')
		if n := len(line); n > 0 && line[n-1] == '\n' {
			var e entry
			if json.Unmarshal(line, &e) == nil && e.URL != "" {
				if _, dup := m[e.URL]; dup {
					clean = false // duplicate: append-during-crawl churn
				}
				m[e.URL] = e
				lines++
			} else {
				clean = false // corrupt line: drop it
			}
		} else if n > 0 {
			clean = false // truncated tail from an interrupted crawl
		}
		if readErr != nil {
			return m, clean, lines, nil
		}
	}
}

// compactShard atomically rewrites one shard's manifest as one line per
// URL, sorted by URL so the result is byte-deterministic.
func compactShard(dir, path string, entries map[string]entry) error {
	tmp, err := os.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return fmt.Errorf("diskcache: compacting: %w", err)
	}
	bw := bufio.NewWriter(tmp)
	enc := json.NewEncoder(bw)
	urls := make([]string, 0, len(entries))
	for url := range entries {
		urls = append(urls, url)
	}
	sort.Strings(urls)
	for _, url := range urls {
		if err := enc.Encode(entries[url]); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("diskcache: compacting: %w", err)
		}
	}
	if err := bw.Flush(); err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("diskcache: compacting: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("diskcache: compacting: %w", err)
	}
	return nil
}

// acquireLock takes the shard lock at path, failing fast (ErrLocked)
// when a live process holds it. The lock file records the holder's
// pid; a lock whose pid is dead — a crawler that crashed without
// Close — is stolen so resume never needs manual cleanup. Returns the
// release func.
func acquireLock(path string) (release func(), err error) {
	for attempt := 0; attempt < 4; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			fmt.Fprintf(f, "%d\n", os.Getpid())
			f.Close()
			return func() { os.Remove(path) }, nil
		}
		if !os.IsExist(err) {
			return nil, fmt.Errorf("diskcache: %w", err)
		}
		raw, readErr := os.ReadFile(path)
		if readErr != nil {
			// Raced with the holder's release; retry the create.
			continue
		}
		pid, parseErr := strconv.Atoi(strings.TrimSpace(string(raw)))
		if parseErr == nil && pidAlive(pid) {
			return nil, fmt.Errorf("%w: %s held by pid %d (another crawler is appending this shard; use a distinct -shard, or remove the lock if that process is gone)",
				ErrLocked, path, pid)
		}
		// Stale: the recorded holder is dead (or the file is garbage
		// from a torn write). Steal it and retry the exclusive create.
		os.Remove(path)
	}
	return nil, fmt.Errorf("%w: %s (lock contention)", ErrLocked, path)
}

// pidAlive reports whether pid is a live process we could signal. A
// permission error still means "alive" — it exists, it just isn't ours.
func pidAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = p.Signal(syscall.Signal(0))
	return err == nil || errors.Is(err, syscall.EPERM)
}

// Load implements browser.ResponseArchive. Online, it returns
// (nil, nil) for anything it cannot serve — unarchived URLs, archived
// failures (the site may be healthy again; re-fetch it), and corrupt
// or truncated objects, which are dropped so the re-fetch rewrites
// them. Offline, archived failures replay as *browser.ReplayedFailure
// and every miss is an error wrapping browser.ErrNotArchived.
func (a *Archive) Load(rawURL string) (*browser.Response, error) {
	a.mu.Lock()
	ix, ok := a.index[rawURL]
	if !ok {
		a.mu.Unlock()
		return a.miss(rawURL)
	}
	e, gen := ix.entry, ix.gen
	a.mu.Unlock()

	if e.Hash == "" {
		if a.offline {
			a.hits.Add(1)
			return nil, &browser.ReplayedFailure{Class: e.FailureClass, Msg: e.FailureMsg}
		}
		return nil, nil
	}
	body, err := os.ReadFile(a.objectPath(e.Hash))
	if err == nil && int64(len(body)) == e.Size {
		if sum := sha256.Sum256(body); hex.EncodeToString(sum[:]) == e.Hash {
			a.hits.Add(1)
			return &browser.Response{
				Status:        e.Status,
				Header:        e.Header,
				Body:          string(body),
				FinalURL:      e.FinalURL,
				BodyTruncated: e.BodyTruncated,
			}, nil
		}
	}
	// Corrupt, truncated, or missing object: degrade to a miss so the
	// caller re-fetches. Online, drop the index entry and the bad
	// object so the re-fetch rewrites both — unless a concurrent Store
	// already replaced them (generation check).
	a.corrupt.Add(1)
	if !a.offline {
		a.mu.Lock()
		if cur, ok := a.index[rawURL]; ok && cur.gen == gen {
			delete(a.index, rawURL)
			os.Remove(a.objectPath(e.Hash))
		}
		a.mu.Unlock()
	}
	return a.miss(rawURL)
}

// miss is the no-entry outcome: nil online, distinguishable offline.
func (a *Archive) miss(rawURL string) (*browser.Response, error) {
	if a.offline {
		return nil, fmt.Errorf("%w: %s", browser.ErrNotArchived, rawURL)
	}
	return nil, nil
}

// Store implements browser.ResponseArchive: the object lands first
// (temp file + rename; skipped when an intact copy of the same content
// already exists), then the manifest line. A disk error degrades the
// archive silently — the crawl itself already has the response.
func (a *Archive) Store(rawURL string, resp *browser.Response) {
	if a.offline || resp == nil {
		return
	}
	sum := sha256.Sum256([]byte(resp.Body))
	e := entry{
		URL:           rawURL,
		Hash:          hex.EncodeToString(sum[:]),
		Size:          int64(len(resp.Body)),
		Status:        resp.Status,
		Header:        resp.Header,
		FinalURL:      resp.FinalURL,
		BodyTruncated: resp.BodyTruncated,
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.writeObjectLocked(e.Hash, resp.Body); err != nil {
		return
	}
	a.appendLocked(e)
}

// StoreFailure implements browser.ResponseArchive: a failed fetch is
// archived with its taxonomy class so offline replay reproduces the
// failure. Crawler-local conditions (Classify returns "") are skipped.
func (a *Archive) StoreFailure(rawURL string, fetchErr error) {
	if a.offline || a.classify == nil || fetchErr == nil {
		return
	}
	class := a.classify(fetchErr)
	if class == "" {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.appendLocked(entry{URL: rawURL, FailureClass: class, FailureMsg: fetchErr.Error()})
}

// writeObjectLocked stores body under its content hash, atomically. An
// existing object of the right size is trusted (content addressing:
// same hash, same bytes); a wrong-sized one — a truncated write from a
// crash — is repaired by the rename. Callers hold a.mu.
func (a *Archive) writeObjectLocked(hash, body string) error {
	path := a.objectPath(hash)
	if fi, err := os.Stat(path); err == nil && fi.Size() == int64(len(body)) {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".obj-*")
	if err != nil {
		return err
	}
	if _, err := tmp.WriteString(body); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	a.bytesStored.Add(uint64(len(body)))
	return nil
}

// appendLocked writes one manifest line and updates the index. Each
// line is a single Write call, so a crash mid-append corrupts at most
// the tail — which Open drops. Callers hold a.mu.
func (a *Archive) appendLocked(e entry) {
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	if a.manifest != nil {
		if _, err := a.manifest.Write(append(line, '\n')); err != nil {
			return
		}
	}
	if ix := a.index[e.URL]; ix != nil {
		ix.entry, ix.gen = e, ix.gen+1
	} else {
		a.index[e.URL] = &indexed{entry: e, gen: 1}
	}
	a.writes.Add(1)
}

func (a *Archive) objectPath(hash string) string {
	return filepath.Join(a.dir, objectsDir, hash[:2], hash[2:])
}

// Stats implements browser.ResponseArchive.
func (a *Archive) Stats() browser.ArchiveStats {
	a.mu.Lock()
	entries := uint64(len(a.index))
	hashes := map[string]struct{}{}
	for _, ix := range a.index {
		if ix.Hash != "" {
			hashes[ix.Hash] = struct{}{}
		}
	}
	a.mu.Unlock()
	return browser.ArchiveStats{
		Hits:             a.hits.Load(),
		Writes:           a.writes.Load(),
		CorruptRecovered: a.corrupt.Load(),
		BytesStored:      a.bytesStored.Load(),
		Entries:          entries,
		Objects:          uint64(len(hashes)),
	}
}

// Close releases the manifest append handle and the shard lock. Stores
// after Close still update the in-memory index and object store but no
// longer reach the manifest; close the archive only once the crawl is
// done with it.
func (a *Archive) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	var err error
	if a.manifest != nil {
		err = a.manifest.Close()
		a.manifest = nil
	}
	if a.lockPath != "" {
		os.Remove(a.lockPath)
		a.lockPath = ""
	}
	return err
}

// MergeStats describes what MergeShards reconciled.
type MergeStats struct {
	// Shards is the number of manifest shard files merged (the
	// unsharded manifest counts when present).
	Shards int
	// Lines is the total well-formed manifest lines read across shards;
	// URLs the unique URLs in the merged manifest.
	Lines int
	URLs  int
	// Reconciled counts URLs archived by more than one shard;
	// SuccessesPreferred the subset where a success displaced an
	// archived failure.
	Reconciled         int
	SuccessesPreferred int
	// MissingObjects counts merged success entries whose object file is
	// absent or size-mismatched — the data-loss signal a merge gate
	// fails on. (Online replay would degrade these to re-fetches; a
	// merge that just collected a finished fleet crawl should have
	// none.)
	MissingObjects int
}

// MergeShards compacts every manifest shard in dir into the single
// unsharded manifest a one-process crawl would have written: one line
// per URL, sorted by URL, duplicates reconciled by the same
// deterministic rules Open applies (success over archived failure,
// then lowest shard id). Shard files are removed after the merged
// manifest lands atomically. Every shard's lock must be free —
// merging under a live crawler would lose its writes — so MergeShards
// fails fast (ErrLocked) if any shard is still held by a live
// process. Idempotent: rerunning on a merged directory is a no-op
// compaction.
func MergeShards(dir string) (MergeStats, error) {
	var ms MergeStats
	shards, err := shardFiles(dir)
	if err != nil {
		return ms, err
	}
	// Lock every shard present plus the merge target, releasing all on
	// return. Locking in shardLess order keeps two concurrent merges
	// from deadlocking; both cannot win.
	lockShards := shards
	if len(shards) == 0 || shards[0] != "" {
		lockShards = append([]string{""}, shards...)
	}
	var releases []func()
	defer func() {
		for _, r := range releases {
			r()
		}
	}()
	for _, shard := range lockShards {
		release, err := acquireLock(manifestPath(dir, shard) + lockExt)
		if err != nil {
			return ms, err
		}
		releases = append(releases, release)
	}

	merged := map[string]entry{}
	source := map[string]string{}
	for _, shard := range shards {
		m, _, lines, err := loadManifestFile(manifestPath(dir, shard))
		if err != nil {
			return ms, err
		}
		ms.Shards++
		ms.Lines += lines
		for url, e := range m {
			cur, ok := merged[url]
			if !ok {
				merged[url] = e
				source[url] = shard
				continue
			}
			ms.Reconciled++
			if reconcile(cur, source[url], e, shard) {
				if e.success() && !cur.success() {
					ms.SuccessesPreferred++
				}
				merged[url] = e
				source[url] = shard
			} else if cur.success() && !e.success() {
				ms.SuccessesPreferred++
			}
		}
	}
	ms.URLs = len(merged)
	for _, e := range merged {
		if !e.success() {
			continue
		}
		fi, err := os.Stat(filepath.Join(dir, objectsDir, e.Hash[:2], e.Hash[2:]))
		if err != nil || fi.Size() != e.Size {
			ms.MissingObjects++
		}
	}
	if err := os.MkdirAll(filepath.Join(dir, objectsDir), 0o755); err != nil {
		return ms, fmt.Errorf("diskcache: %w", err)
	}
	if err := compactShard(dir, filepath.Join(dir, manifestName), merged); err != nil {
		return ms, err
	}
	// The merged manifest is durable; the shard files are now redundant.
	for _, shard := range shards {
		if shard == "" {
			continue
		}
		if err := os.Remove(manifestPath(dir, shard)); err != nil {
			return ms, fmt.Errorf("diskcache: removing merged shard: %w", err)
		}
	}
	return ms, nil
}
