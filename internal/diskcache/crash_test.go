package diskcache

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// deadPid is beyond kernel.pid_max on any stock config, so a temp file
// tagged with it always reads as crash debris.
const deadPid = 999999999

// plantKillDebris simulates the on-disk aftermath of SIGKILLing a
// fleet worker that was writing shard: a torn manifest tail (the
// append died mid-line), an orphaned temp object (a Store died between
// CreateTemp and Rename), and an orphaned temp manifest (a compaction
// died mid-rewrite). Returns the orphan paths.
func plantKillDebris(t *testing.T, dir, shard string) (orphanObj, orphanManifest string) {
	t.Helper()
	f, err := os.OpenFile(manifestPath(dir, shard), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"url":"https://torn.test/","hash":"ab`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	bucket := filepath.Join(dir, objectsDir, "zz")
	if err := os.MkdirAll(bucket, 0o755); err != nil {
		t.Fatal(err)
	}
	orphanObj = filepath.Join(bucket, fmt.Sprintf(".obj-%d-123456", deadPid))
	orphanManifest = filepath.Join(dir, fmt.Sprintf(".manifest-%d-123456", deadPid))
	for _, p := range []string{orphanObj, orphanManifest} {
		if err := os.WriteFile(p, []byte("half-written"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return orphanObj, orphanManifest
}

// TestReopenAfterSIGKILLedWriter is the crash-recovery acceptance
// test: a shard whose writer died mid-append and mid-rename reopens
// cleanly — the fsck sweeps both orphaned temp files and reports them,
// the torn manifest tail is dropped and compacted away, the intact
// entries survive, and the reopened shard keeps working.
func TestReopenAfterSIGKILLedWriter(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, Options{Shard: "1"})
	a.Store("https://intact.test/", resp("survived the kill"))
	a.Close()
	orphanObj, orphanManifest := plantKillDebris(t, dir, "1")
	// A temp file owned by a live writer (this process) must survive
	// the sweep: a concurrent fleet member may be mid-rename right now.
	liveTemp := filepath.Join(dir, objectsDir, "zz", fmt.Sprintf(".obj-%d-777", os.Getpid()))
	if err := os.WriteFile(liveTemp, []byte("mid-rename"), 0o644); err != nil {
		t.Fatal(err)
	}

	b := mustOpen(t, dir, Options{Shard: "1"})
	if got := b.Stats().OrphansSwept; got != 2 {
		t.Errorf("OrphansSwept = %d, want 2", got)
	}
	for _, p := range []string{orphanObj, orphanManifest} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("orphan %s survived the fsck", p)
		}
	}
	if _, err := os.Stat(liveTemp); err != nil {
		t.Errorf("live writer's temp file was swept: %v", err)
	}
	if got, err := b.Load("https://intact.test/"); err != nil || got == nil || got.Body != "survived the kill" {
		t.Errorf("intact entry lost after crash recovery: %v, %v", got, err)
	}
	if got, err := b.Load("https://torn.test/"); got != nil || err != nil {
		t.Errorf("torn entry resurrected: %v, %v", got, err)
	}
	b.Store("https://after.test/", resp("post-recovery write"))
	b.Close()

	// The reopen compacted the torn tail away: a third open sees a
	// clean shard with both entries and nothing left to sweep.
	c := mustOpen(t, dir, Options{Shard: "1"})
	if got := c.Stats().OrphansSwept; got != 0 {
		t.Errorf("second reopen swept %d orphans, want 0", got)
	}
	for _, url := range []string{"https://intact.test/", "https://after.test/"} {
		if got, err := c.Load(url); err != nil || got == nil {
			t.Errorf("Load(%s) after recovery = %v, %v", url, got, err)
		}
	}
}

// TestUntaggedTempAgeGate: a temp file with no pid tag (an older
// archive version's naming) is swept only once it is older than the
// orphanTTL — a fresh one might still be owned by a live writer we
// cannot identify.
func TestUntaggedTempAgeGate(t *testing.T) {
	dir := t.TempDir()
	mustOpen(t, dir, Options{}).Close()
	bucket := filepath.Join(dir, objectsDir, "ab")
	if err := os.MkdirAll(bucket, 0o755); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(bucket, ".obj-123456")
	stale := filepath.Join(bucket, ".obj-654321")
	for _, p := range []string{fresh, stale} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * orphanTTL)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	a := mustOpen(t, dir, Options{})
	if got := a.Stats().OrphansSwept; got != 1 {
		t.Errorf("OrphansSwept = %d, want 1 (stale untagged temp only)", got)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale untagged temp survived")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh untagged temp swept: %v", err)
	}
}

// TestMergeShardsCrashConsistency: merging after a kill-injected fleet
// crawl sweeps the dead workers' debris, drops torn tails, reports all
// of it in MergeStats, and still reconciles the surviving entries
// deterministically.
func TestMergeShardsCrashConsistency(t *testing.T) {
	dir := t.TempDir()
	// Both workers open before either stores — the fleet shape — so the
	// duplicate lands at the same store generation in both shards and
	// reconciliation falls through to shard priority.
	a := mustOpen(t, dir, Options{Shard: "0"})
	b := mustOpen(t, dir, Options{Shard: "1"})
	a.Store("https://both.test/", resp("from shard 0"))
	a.Store("https://only0.test/", resp("only in 0"))
	b.Store("https://both.test/", resp("from shard 1"))
	b.Store("https://only1.test/", resp("only in 1"))
	a.Close()
	b.Close()
	plantKillDebris(t, dir, "1")
	// A corrupt (non-JSON, newline-terminated) line in shard 0, as if
	// two interleaved writes tore each other before the per-shard
	// manifests existed to prevent exactly that.
	f, err := os.OpenFile(manifestPath(dir, "0"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("%%% not json %%%\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ms, err := MergeShards(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ms.OrphanTempsSwept != 2 {
		t.Errorf("OrphanTempsSwept = %d, want 2", ms.OrphanTempsSwept)
	}
	if ms.TornTails != 1 {
		t.Errorf("TornTails = %d, want 1", ms.TornTails)
	}
	if ms.CorruptLinesDropped != 1 {
		t.Errorf("CorruptLinesDropped = %d, want 1", ms.CorruptLinesDropped)
	}
	if ms.URLs != 3 || ms.MissingObjects != 0 {
		t.Errorf("URLs = %d, MissingObjects = %d, want 3, 0", ms.URLs, ms.MissingObjects)
	}
	m := mustOpen(t, dir, Options{})
	if got, err := m.Load("https://both.test/"); err != nil || got == nil || got.Body != "from shard 0" {
		t.Errorf("reconciliation lost shard priority: %v, %v", got, err)
	}
	for _, url := range []string{"https://only0.test/", "https://only1.test/"} {
		if got, err := m.Load(url); err != nil || got == nil {
			t.Errorf("Load(%s) after merge = %v, %v", url, got, err)
		}
	}
	if got, err := m.Load("https://torn.test/"); got != nil || err != nil {
		t.Errorf("torn entry resurrected by merge: %v, %v", got, err)
	}
}
