package diskcache

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"permodyssey/internal/browser"
)

func mustOpen(t *testing.T, dir string, opts Options) *Archive {
	t.Helper()
	a, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

func resp(body string) *browser.Response {
	return &browser.Response{
		Status:   200,
		Header:   http.Header{"Content-Type": []string{"text/html"}},
		Body:     body,
		FinalURL: "https://final.test/",
	}
}

// classifyAll archives every failure under one class, for tests that
// don't care about the taxonomy.
func classifyAll(error) string { return "ephemeral" }

func TestRoundtripAndReopen(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, Options{Classify: classifyAll})
	a.Store("https://a.test/", resp("body A"))
	a.Store("https://b.test/", resp("body B"))
	a.StoreFailure("https://down.test/", errors.New("connection reset"))

	check := func(a *Archive, label string) {
		t.Helper()
		got, err := a.Load("https://a.test/")
		if err != nil || got == nil {
			t.Fatalf("%s: Load(a) = %v, %v", label, got, err)
		}
		if got.Body != "body A" || got.Status != 200 || got.FinalURL != "https://final.test/" {
			t.Errorf("%s: Load(a) lost fields: %+v", label, got)
		}
		if got.Header.Get("Content-Type") != "text/html" {
			t.Errorf("%s: Load(a) lost headers: %v", label, got.Header)
		}
		// Online mode never serves archived failures: the site may be
		// healthy again, so the caller should re-fetch it.
		if got, err := a.Load("https://down.test/"); got != nil || err != nil {
			t.Errorf("%s: Load(down) = %v, %v; want nil, nil online", label, got, err)
		}
		// Unknown URL is a plain miss online.
		if got, err := a.Load("https://never.test/"); got != nil || err != nil {
			t.Errorf("%s: Load(never) = %v, %v; want nil, nil", label, got, err)
		}
	}
	check(a, "same process")
	if s := a.Stats(); s.Writes != 3 || s.Entries != 3 || s.Objects != 2 || s.BytesStored == 0 {
		t.Errorf("stats = %+v, want 3 writes, 3 entries, 2 objects", s)
	}
	a.Close()

	check(mustOpen(t, dir, Options{}), "after reopen")
}

func TestObjectDedupAcrossURLs(t *testing.T) {
	a := mustOpen(t, t.TempDir(), Options{})
	a.Store("https://cdn-a.test/lib.js", resp("shared body"))
	a.Store("https://cdn-b.test/lib.js", resp("shared body"))
	s := a.Stats()
	if s.Entries != 2 || s.Objects != 1 {
		t.Errorf("stats = %+v, want 2 entries sharing 1 object", s)
	}
	if want := uint64(len("shared body")); s.BytesStored != want {
		t.Errorf("bytes stored = %d, want %d (second store must not rewrite)", s.BytesStored, want)
	}
}

// TestManifestCompaction: append-during-crawl leaves one line per
// outcome, including overwrites; reopening compacts back to one line
// per URL with the last outcome winning.
func TestManifestCompaction(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, Options{Classify: classifyAll})
	a.StoreFailure("https://x.test/", errors.New("reset"))
	a.Store("https://x.test/", resp("recovered"))
	a.Store("https://y.test/", resp("y"))
	a.Close()

	if got := manifestLines(t, dir); got != 3 {
		t.Fatalf("manifest has %d lines before compaction, want 3 (append-only)", got)
	}
	b := mustOpen(t, dir, Options{})
	if got := manifestLines(t, dir); got != 2 {
		t.Errorf("manifest has %d lines after reopen, want 2 (compacted)", got)
	}
	got, err := b.Load("https://x.test/")
	if err != nil || got == nil || got.Body != "recovered" {
		t.Errorf("Load(x) = %v, %v; want the later success to win", got, err)
	}
}

// TestTruncatedManifestTail: a crash mid-append leaves a partial final
// line; open drops it, keeps the complete prefix, and compacts.
func TestTruncatedManifestTail(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, Options{})
	a.Store("https://ok.test/", resp("intact"))
	a.Close()

	path := filepath.Join(dir, manifestName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"url":"https://torn.test/","hash":"ab`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b := mustOpen(t, dir, Options{})
	if got, err := b.Load("https://ok.test/"); err != nil || got == nil || got.Body != "intact" {
		t.Errorf("intact prefix lost after truncated tail: %v, %v", got, err)
	}
	if got, err := b.Load("https://torn.test/"); got != nil || err != nil {
		t.Errorf("truncated tail resurrected: %v, %v", got, err)
	}
	if got := manifestLines(t, dir); got != 1 {
		t.Errorf("manifest has %d lines after recovery, want 1", got)
	}
}

// TestCorruptLineDropped: a corrupt (non-JSON) interior line is
// dropped without losing its neighbours.
func TestCorruptLineDropped(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, Options{})
	a.Store("https://first.test/", resp("first"))
	a.Close()
	path := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append([]byte("!!not json!!\n"), raw...), 0o644); err != nil {
		t.Fatal(err)
	}
	b := mustOpen(t, dir, Options{})
	if got, err := b.Load("https://first.test/"); err != nil || got == nil {
		t.Errorf("record after corrupt line lost: %v, %v", got, err)
	}
}

// TestCorruptObjectDegradesToMiss: a bit-flipped object fails hash
// verification, counts as a corrupt recovery, and becomes a miss so
// the caller re-fetches; the re-store repairs the archive.
func TestCorruptObjectDegradesToMiss(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, Options{})
	a.Store("https://x.test/", resp("pristine body"))
	flipObjectByte(t, dir)

	if got, err := a.Load("https://x.test/"); got != nil || err != nil {
		t.Fatalf("corrupt object served: %v, %v; want miss", got, err)
	}
	if s := a.Stats(); s.CorruptRecovered != 1 {
		t.Errorf("corrupt recoveries = %d, want 1", s.CorruptRecovered)
	}
	// The re-fetch path stores again and the archive heals.
	a.Store("https://x.test/", resp("pristine body"))
	if got, err := a.Load("https://x.test/"); err != nil || got == nil || got.Body != "pristine body" {
		t.Errorf("archive did not heal after re-store: %v, %v", got, err)
	}
}

// TestTruncatedObjectDegradesToMiss: a half-written object (wrong
// size) is a miss, not an error.
func TestTruncatedObjectDegradesToMiss(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, Options{})
	a.Store("https://x.test/", resp("a body long enough to truncate"))
	truncateObject(t, dir)
	if got, err := a.Load("https://x.test/"); got != nil || err != nil {
		t.Fatalf("truncated object served: %v, %v; want miss", got, err)
	}
	if s := a.Stats(); s.CorruptRecovered != 1 {
		t.Errorf("corrupt recoveries = %d, want 1", s.CorruptRecovered)
	}
}

// TestMissingObjectDegradesToMiss: the manifest references an object
// someone deleted; still a miss, never fatal.
func TestMissingObjectDegradesToMiss(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, Options{})
	a.Store("https://x.test/", resp("body"))
	removeObjects(t, dir)
	if got, err := a.Load("https://x.test/"); got != nil || err != nil {
		t.Fatalf("missing object: %v, %v; want miss", got, err)
	}
}

func TestOfflineMissIsDistinguishable(t *testing.T) {
	a := mustOpen(t, t.TempDir(), Options{Offline: true})
	got, err := a.Load("https://never.test/")
	if got != nil {
		t.Fatalf("offline miss returned a response: %+v", got)
	}
	if !errors.Is(err, browser.ErrNotArchived) {
		t.Fatalf("offline miss error = %v, want wrap of ErrNotArchived", err)
	}
	if !strings.Contains(err.Error(), "https://never.test/") {
		t.Errorf("offline miss error should name the URL: %v", err)
	}
}

func TestOfflineReplaysArchivedFailures(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, Options{Classify: func(error) string { return "timeout" }})
	a.Store("https://ok.test/", resp("fine"))
	a.StoreFailure("https://slow.test/", errors.New("context deadline exceeded"))
	a.Close()

	b := mustOpen(t, dir, Options{Offline: true})
	if got, err := b.Load("https://ok.test/"); err != nil || got == nil || got.Body != "fine" {
		t.Errorf("offline success replay: %v, %v", got, err)
	}
	_, err := b.Load("https://slow.test/")
	var rf *browser.ReplayedFailure
	if !errors.As(err, &rf) {
		t.Fatalf("offline failure replay error = %v, want *ReplayedFailure", err)
	}
	if rf.Class != "timeout" || !strings.Contains(rf.Msg, "deadline") {
		t.Errorf("replayed failure = %+v, want recorded class and message", rf)
	}
	if s := b.Stats(); s.Hits != 2 {
		t.Errorf("offline hits = %d, want 2 (failure replays count)", s.Hits)
	}
}

// TestOfflineWritesNothing: strict replay never modifies the archive —
// no stores, no failure stores, no compaction, even when the manifest
// has append churn that online open would compact away.
func TestOfflineWritesNothing(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, Options{})
	a.Store("https://x.test/", resp("v1"))
	a.Store("https://x.test/", resp("v2")) // duplicate line: compaction bait
	a.Close()

	before, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	b := mustOpen(t, dir, Options{Offline: true, Classify: classifyAll})
	b.Store("https://new.test/", resp("nope"))
	b.StoreFailure("https://new2.test/", errors.New("nope"))
	if got, err := b.Load("https://new.test/"); got != nil || !errors.Is(err, browser.ErrNotArchived) {
		t.Errorf("offline Store took effect: %v, %v", got, err)
	}
	after, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("offline mode modified the manifest")
	}
	if s := b.Stats(); s.Writes != 0 {
		t.Errorf("offline writes = %d, want 0", s.Writes)
	}
}

// TestOfflineCorruptObjectIsMiss: offline cannot re-fetch, so a
// corrupt object is an ErrNotArchived miss — and the archive is left
// untouched for a later online repair.
func TestOfflineCorruptObjectIsMiss(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, Options{})
	a.Store("https://x.test/", resp("body"))
	a.Close()
	flipObjectByte(t, dir)

	b := mustOpen(t, dir, Options{Offline: true})
	_, err := b.Load("https://x.test/")
	if !errors.Is(err, browser.ErrNotArchived) {
		t.Fatalf("offline corrupt load error = %v, want ErrNotArchived", err)
	}
	if s := b.Stats(); s.CorruptRecovered != 1 {
		t.Errorf("corrupt recoveries = %d, want 1", s.CorruptRecovered)
	}
	if countObjects(t, dir) != 1 {
		t.Error("offline mode deleted the corrupt object")
	}
}

func TestStoreFailureSkipsCrawlLocalClasses(t *testing.T) {
	a := mustOpen(t, t.TempDir(), Options{Classify: func(err error) string {
		if errors.Is(err, context.Canceled) {
			return "" // crawl-local: not a site property
		}
		return "unreachable"
	}})
	a.StoreFailure("https://interrupted.test/", context.Canceled)
	a.StoreFailure("https://gone.test/", errors.New("no such host"))
	if s := a.Stats(); s.Entries != 1 || s.Writes != 1 {
		t.Errorf("stats = %+v, want only the unreachable failure archived", s)
	}
}

func TestStoreFailureNilClassify(t *testing.T) {
	a := mustOpen(t, t.TempDir(), Options{})
	a.StoreFailure("https://x.test/", errors.New("boom"))
	if s := a.Stats(); s.Entries != 0 {
		t.Errorf("nil Classify archived a failure: %+v", s)
	}
}

// TestConcurrentStoreLoad hammers one archive from many goroutines —
// the shape of several crawl workers sharing one stack — under -race.
func TestConcurrentStoreLoad(t *testing.T) {
	a := mustOpen(t, t.TempDir(), Options{Classify: classifyAll})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				url := fmt.Sprintf("https://r%d.test/", i%10)
				switch i % 3 {
				case 0:
					a.Store(url, resp(fmt.Sprintf("body %d", i%10)))
				case 1:
					if r, err := a.Load(url); err != nil {
						t.Errorf("Load(%s): %v", url, err)
					} else if r != nil && !strings.HasPrefix(r.Body, "body ") {
						t.Errorf("Load(%s) garbled body %q", url, r.Body)
					}
				case 2:
					a.StoreFailure(fmt.Sprintf("https://f%d.test/", i%10), errors.New("reset"))
				}
			}
		}(g)
	}
	wg.Wait()
	a.Close()
	if s := a.Stats(); s.Entries == 0 {
		t.Error("concurrent run archived nothing")
	}
}

// TestTwoCrawlStacksOneArchive: two independent CachingFetchers (the
// two-crawler shape) share one archive; the second serves everything
// from disk without touching its own network.
func TestTwoCrawlStacksOneArchive(t *testing.T) {
	a := mustOpen(t, t.TempDir(), Options{})
	urls := []string{"https://a.test/", "https://b.test/", "https://c.test/"}

	first := browser.NewCachingFetcher(fetcherFunc(func(_ context.Context, u string) (*browser.Response, error) {
		return resp("body of " + u), nil
	}))
	first.Disk = a
	for _, u := range urls {
		if _, err := first.Fetch(context.Background(), u); err != nil {
			t.Fatal(err)
		}
	}

	second := browser.NewCachingFetcher(fetcherFunc(func(_ context.Context, u string) (*browser.Response, error) {
		t.Errorf("second stack hit the network for %s", u)
		return nil, errors.New("network")
	}))
	second.Disk = a
	for _, u := range urls {
		got, err := second.Fetch(context.Background(), u)
		if err != nil || got.Body != "body of "+u {
			t.Fatalf("second stack Fetch(%s) = %v, %v", u, got, err)
		}
	}
	if s := second.Stats(); s.NetworkFetches != 0 {
		t.Errorf("second stack network fetches = %d, want 0", s.NetworkFetches)
	}
}

type fetcherFunc func(ctx context.Context, rawURL string) (*browser.Response, error)

func (f fetcherFunc) Fetch(ctx context.Context, rawURL string) (*browser.Response, error) {
	return f(ctx, rawURL)
}

// --- filesystem fault helpers ---

func manifestLines(t *testing.T, dir string) int {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		n++
	}
	return n
}

func objectFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.Walk(filepath.Join(dir, objectsDir), func(path string, fi os.FileInfo, err error) error {
		if err == nil && !fi.IsDir() {
			out = append(out, path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func countObjects(t *testing.T, dir string) int { return len(objectFiles(t, dir)) }

func flipObjectByte(t *testing.T, dir string) {
	t.Helper()
	for _, path := range objectFiles(t, dir) {
		raw, err := os.ReadFile(path)
		if err != nil || len(raw) == 0 {
			t.Fatal("cannot corrupt object", path, err)
		}
		raw[0] ^= 0xFF
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	t.Fatal("no object to corrupt")
}

func truncateObject(t *testing.T, dir string) {
	t.Helper()
	for _, path := range objectFiles(t, dir) {
		if err := os.Truncate(path, 3); err != nil {
			t.Fatal(err)
		}
		return
	}
	t.Fatal("no object to truncate")
}

func removeObjects(t *testing.T, dir string) {
	t.Helper()
	for _, path := range objectFiles(t, dir) {
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
	}
}
