package diskcache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"permodyssey/internal/browser"
)

// TestOpenSameShardFailsFast is the regression test for the
// documented multi-process manifest corruption: two processes opening
// the same directory (same shard) used to interleave appends silently;
// now the second Open fails fast with ErrLocked instead.
func TestOpenSameShardFailsFast(t *testing.T) {
	for _, shard := range []string{"", "3"} {
		t.Run("shard="+shard, func(t *testing.T) {
			dir := t.TempDir()
			a := mustOpen(t, dir, Options{Shard: shard})
			if _, err := Open(dir, Options{Shard: shard}); !errors.Is(err, ErrLocked) {
				t.Fatalf("second Open error = %v, want ErrLocked", err)
			}
			a.Close()
			// Close releases the lock; the next Open succeeds.
			mustOpen(t, dir, Options{Shard: shard})
		})
	}
}

// TestOpenDistinctShardsCoexist: the fleet shape — same directory,
// distinct shards — opens concurrently, and each process's writes land
// in its own manifest file.
func TestOpenDistinctShardsCoexist(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, Options{Shard: "0"})
	b := mustOpen(t, dir, Options{Shard: "1"})
	a.Store("https://a.test/", resp("from shard 0"))
	b.Store("https://b.test/", resp("from shard 1"))
	a.Close()
	b.Close()
	for _, name := range []string{"manifest-0.jsonl", "manifest-1.jsonl"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing shard manifest %s: %v", name, err)
		}
	}
	// A later reader sees the union of both shards.
	c := mustOpen(t, dir, Options{Shard: "2"})
	for url, body := range map[string]string{
		"https://a.test/": "from shard 0",
		"https://b.test/": "from shard 1",
	} {
		if got, err := c.Load(url); err != nil || got == nil || got.Body != body {
			t.Errorf("Load(%s) = %v, %v; want %q", url, got, err, body)
		}
	}
}

// TestStaleLockStolen: a lock file left by a dead process (or a torn
// write that never recorded a pid) must not wedge the archive forever.
func TestStaleLockStolen(t *testing.T) {
	for name, content := range map[string]string{
		"dead pid": "999999999\n", // beyond kernel.pid_max on any stock config
		"garbage":  "not a pid\n",
		"empty":    "",
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			lock := filepath.Join(dir, manifestName+lockExt)
			if err := os.WriteFile(lock, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			a := mustOpen(t, dir, Options{})
			a.Store("https://x.test/", resp("stole the stale lock"))
			a.Close()
		})
	}
}

// TestLiveLockRespected: a lock naming a live pid (ours) is never
// stolen, and the error names the holder.
func TestLiveLockRespected(t *testing.T) {
	dir := t.TempDir()
	lock := filepath.Join(dir, manifestName+lockExt)
	if err := os.WriteFile(lock, []byte(fmt.Sprintf("%d\n", os.Getpid())), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir, Options{})
	if !errors.Is(err, ErrLocked) {
		t.Fatalf("Open error = %v, want ErrLocked", err)
	}
	if !strings.Contains(err.Error(), fmt.Sprint(os.Getpid())) {
		t.Errorf("error should name the holding pid: %v", err)
	}
}

func TestInvalidShardName(t *testing.T) {
	for _, shard := range []string{"a/b", "..\\x", "sh ard", "s*"} {
		if _, err := Open(t.TempDir(), Options{Shard: shard}); err == nil {
			t.Errorf("Open with shard %q succeeded, want error", shard)
		}
	}
}

// TestReconcileSuccessOverFailure: when one shard archived a failure
// and another the recovered success for the same URL, every reader —
// pre-merge Open, offline Open, and the merged manifest — serves the
// success, regardless of shard order.
func TestReconcileSuccessOverFailure(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, Options{Shard: "0", Classify: classifyAll})
	b := mustOpen(t, dir, Options{Shard: "1"})
	// The *higher* shard holds the success: success must win on merit,
	// not on shard order.
	a.StoreFailure("https://flaky.test/", errors.New("reset"))
	b.Store("https://flaky.test/", resp("recovered"))
	a.Close()
	b.Close()

	check := func(label string, ar *Archive) {
		t.Helper()
		got, err := ar.Load("https://flaky.test/")
		if err != nil || got == nil || got.Body != "recovered" {
			t.Errorf("%s: Load = %v, %v; want the success to win", label, got, err)
		}
	}
	pre := mustOpen(t, dir, Options{Shard: "9"})
	check("pre-merge open", pre)
	pre.Close()

	ms, err := MergeShards(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Reconciled != 1 || ms.SuccessesPreferred != 1 {
		t.Errorf("merge stats = %+v, want 1 reconciled, 1 success preferred", ms)
	}
	check("after merge", mustOpen(t, dir, Options{}))
}

// TestReconcileNewerGenerationWins is the regression test for the
// success-then-refail sequence: run 1 archives a URL as a success; a
// later run re-fetches it (say the object went corrupt, or the
// population drifted) and archives a failure. The failure carries a
// newer store generation, and reconciliation — pre-merge Open, offline
// Open, and MergeShards compaction — must keep it. The old rule
// ("success always beats failure") resurrected the stale success.
func TestReconcileNewerGenerationWins(t *testing.T) {
	dir := t.TempDir()
	run1 := mustOpen(t, dir, Options{})
	run1.Store("https://wasgood.test/", resp("stale success"))
	run1.Close()

	// Run 2 opens against the existing manifest (seeding its generation
	// counter past run 1's) and archives the refail in its own shard.
	run2 := mustOpen(t, dir, Options{Shard: "0", Classify: classifyAll})
	run2.StoreFailure("https://wasgood.test/", errors.New("gone now"))
	run2.Close()

	checkFailed := func(label string, ar *Archive) {
		t.Helper()
		var rf *browser.ReplayedFailure
		if got, err := ar.Load("https://wasgood.test/"); !errors.As(err, &rf) {
			t.Errorf("%s: Load = %v, %v; want the newer failure to win", label, got, err)
		}
	}
	pre := mustOpen(t, dir, Options{Offline: true})
	checkFailed("pre-merge offline open", pre)

	ms, err := MergeShards(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Reconciled != 1 || ms.GenerationsAdvanced != 1 || ms.SuccessesPreferred != 0 {
		t.Errorf("merge stats = %+v, want 1 reconciled, 1 generation advanced, 0 successes preferred", ms)
	}
	checkFailed("after merge", mustOpen(t, dir, Options{Offline: true}))

	// The healing direction across runs: a third run re-archives the
	// success at a yet-newer generation, which supersedes the failure.
	run3 := mustOpen(t, dir, Options{Shard: "1"})
	run3.Store("https://wasgood.test/", resp("healed"))
	run3.Close()
	if _, err := MergeShards(dir); err != nil {
		t.Fatal(err)
	}
	healed := mustOpen(t, dir, Options{Offline: true})
	if got, err := healed.Load("https://wasgood.test/"); err != nil || got == nil || got.Body != "healed" {
		t.Errorf("after heal: Load = %v, %v; want the re-archived success", got, err)
	}
}

// TestReconcileDivergentDigests: two shards archived the same URL with
// different bodies (the site changed under the fleet mid-crawl). The
// reconciliation must be deterministic — lowest shard id wins — and
// must not count as data loss.
func TestReconcileDivergentDigests(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, Options{Shard: "0"})
	b := mustOpen(t, dir, Options{Shard: "1"})
	a.Store("https://drift.test/", resp("version from shard 0"))
	b.Store("https://drift.test/", resp("version from shard 1"))
	a.Close()
	b.Close()

	ms, err := MergeShards(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Reconciled != 1 || ms.MissingObjects != 0 {
		t.Errorf("merge stats = %+v, want 1 reconciled, 0 missing objects", ms)
	}
	got, err := mustOpen(t, dir, Options{}).Load("https://drift.test/")
	if err != nil || got == nil || got.Body != "version from shard 0" {
		t.Errorf("Load after merge = %v, %v; want shard 0's version", got, err)
	}
}

// TestMergeShards covers the full merge path: several shards with
// overlap and within-shard churn compact into one sorted manifest, the
// shard files disappear, and a second merge (and a reopen) are
// no-ops — merge-then-reopen idempotence.
func TestMergeShards(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		a := mustOpen(t, dir, Options{Shard: fmt.Sprint(i), Classify: classifyAll})
		a.Store(fmt.Sprintf("https://only-%d.test/", i), resp(fmt.Sprintf("body %d", i)))
		a.Store("https://shared.test/", resp("shared body"))
		a.Store("https://shared.test/", resp("shared body")) // within-shard churn
		a.Close()
	}
	ms, err := MergeShards(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Shards != 3 || ms.URLs != 4 || ms.MissingObjects != 0 {
		t.Errorf("merge stats = %+v, want 3 shards, 4 urls, 0 missing", ms)
	}
	if ms.Reconciled != 2 {
		t.Errorf("reconciled = %d, want 2 (shared.test seen by 3 shards)", ms.Reconciled)
	}
	left, err := filepath.Glob(filepath.Join(dir, manifestPrefix+"*"+manifestExt))
	if err != nil || len(left) != 0 {
		t.Errorf("shard manifests left after merge: %v (err %v)", left, err)
	}
	if got := manifestLines(t, dir); got != 4 {
		t.Errorf("merged manifest has %d lines, want 4", got)
	}
	mergedBytes := func() string {
		raw, err := os.ReadFile(filepath.Join(dir, manifestName))
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	first := mergedBytes()

	// Idempotence: merging again changes nothing, and a reopen finds a
	// clean manifest (no recompaction churn).
	if ms2, err := MergeShards(dir); err != nil || ms2.URLs != 4 || ms2.Reconciled != 0 {
		t.Errorf("second merge = %+v, %v; want 4 urls, 0 reconciled", ms2, err)
	}
	if second := mergedBytes(); second != first {
		t.Error("second merge rewrote the manifest differently")
	}
	a := mustOpen(t, dir, Options{})
	a.Close()
	if after := mergedBytes(); after != first {
		t.Error("reopen after merge modified the manifest")
	}
}

// TestMergeShardsTruncatedTail: a shard whose writer died mid-append
// loses only its torn final line.
func TestMergeShardsTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, Options{Shard: "0"})
	a.Store("https://intact.test/", resp("intact"))
	a.Close()
	f, err := os.OpenFile(manifestPath(dir, "0"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"url":"https://torn.test/","hash":"ab`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ms, err := MergeShards(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ms.URLs != 1 {
		t.Errorf("merged urls = %d, want 1 (torn line dropped)", ms.URLs)
	}
	b := mustOpen(t, dir, Options{})
	if got, err := b.Load("https://intact.test/"); err != nil || got == nil || got.Body != "intact" {
		t.Errorf("intact entry lost: %v, %v", got, err)
	}
	if got, err := b.Load("https://torn.test/"); got != nil || err != nil {
		t.Errorf("torn entry resurrected: %v, %v", got, err)
	}
}

// TestMergeShardsEmptyShard: an empty shard file (a worker that opened
// the archive and crawled nothing) merges away cleanly.
func TestMergeShardsEmptyShard(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, Options{Shard: "0"})
	a.Store("https://x.test/", resp("x"))
	a.Close()
	empty := mustOpen(t, dir, Options{Shard: "1"})
	empty.Close()

	ms, err := MergeShards(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Shards != 2 || ms.URLs != 1 {
		t.Errorf("merge stats = %+v, want 2 shards, 1 url", ms)
	}
	if _, err := os.Stat(manifestPath(dir, "1")); !os.IsNotExist(err) {
		t.Errorf("empty shard file survived the merge: %v", err)
	}
}

// TestMergeShardsRefusesLiveShard: merging under a crawler that still
// holds its shard would lose whatever it appends next; the merge must
// fail fast instead.
func TestMergeShardsRefusesLiveShard(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, Options{Shard: "0"})
	a.Store("https://x.test/", resp("x"))
	if _, err := MergeShards(dir); !errors.Is(err, ErrLocked) {
		t.Fatalf("MergeShards under a live shard = %v, want ErrLocked", err)
	}
	a.Close()
	if _, err := MergeShards(dir); err != nil {
		t.Fatalf("MergeShards after Close: %v", err)
	}
}

// TestMergeShardsDetectsMissingObjects: a success entry whose object
// vanished is the data-loss signal the fleet gate fails on.
func TestMergeShardsDetectsMissingObjects(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, Options{Shard: "0"})
	a.Store("https://x.test/", resp("doomed body"))
	a.Close()
	removeObjects(t, dir)
	ms, err := MergeShards(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ms.MissingObjects != 1 {
		t.Errorf("missing objects = %d, want 1", ms.MissingObjects)
	}
}

// TestOfflineReadsAllShards: strict replay over an unmerged fleet
// directory serves the union of every shard — and takes no lock, so
// any number of offline readers coexist with each other.
func TestOfflineReadsAllShards(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, Options{Shard: "0", Classify: classifyAll})
	b := mustOpen(t, dir, Options{Shard: "1"})
	a.Store("https://a.test/", resp("A"))
	a.StoreFailure("https://down.test/", errors.New("reset"))
	b.Store("https://b.test/", resp("B"))
	a.Close()
	b.Close()

	r1 := mustOpen(t, dir, Options{Offline: true})
	r2 := mustOpen(t, dir, Options{Offline: true})
	for _, r := range []*Archive{r1, r2} {
		if got, err := r.Load("https://a.test/"); err != nil || got == nil || got.Body != "A" {
			t.Errorf("offline Load(a) = %v, %v", got, err)
		}
		if got, err := r.Load("https://b.test/"); err != nil || got == nil || got.Body != "B" {
			t.Errorf("offline Load(b) = %v, %v", got, err)
		}
		var rf *browser.ReplayedFailure
		if _, err := r.Load("https://down.test/"); !errors.As(err, &rf) {
			t.Errorf("offline Load(down) = %v, want replayed failure", err)
		}
	}
	// No locks were taken: a live writer can still open its shard.
	w := mustOpen(t, dir, Options{Shard: "0"})
	w.Close()
}
