package script

import "sync"

// Realm-global snapshotting: embedders that install a large host
// surface (the webapi realm defines dozens of namespace objects and
// hundreds of natives) build it ONCE on a template interpreter, take a
// snapshot, and stamp cheap deep clones into each new realm. Natives
// and closures are shared — they are immutable, and host functions
// recover per-realm state through Interp.Host at call time — while
// objects and arrays are cloned so realms cannot observe each other's
// mutations. Aliasing is preserved within a snapshot: if the template
// defines window, self and globalThis as one object, every clone keeps
// them identical, matching real browser realm semantics.

// GlobalSnapshot is an immutable capture of an interpreter's global
// bindings, ready to be cloned into other interpreters.
type GlobalSnapshot struct {
	names []string
	vals  []Value
}

// NewBareInterp creates an interpreter with an empty global scope — no
// builtins. Pair with InstallSnapshot to stamp a prebuilt surface.
func NewBareInterp() *Interp {
	return &Interp{Global: NewEnv(nil), MaxSteps: 200000, rng: 0x9E3779B97F4A7C15}
}

// SnapshotGlobals captures the interpreter's current global bindings.
// The snapshot holds the live values; take it only when the template's
// surface is fully built and will not be mutated again.
func (in *Interp) SnapshotGlobals() *GlobalSnapshot {
	s := &GlobalSnapshot{}
	for name, v := range in.Global.vars {
		s.names = append(s.names, name)
		s.vals = append(s.vals, v)
	}
	return s
}

// InstallSnapshot deep-clones the snapshot's bindings into the global
// scope. Each call produces a fresh object graph isolated from the
// template and from every other clone.
func (in *Interp) InstallSnapshot(s *GlobalSnapshot) {
	c := &cloner{objs: map[*Object]*Object{}, arrs: map[*Array]*Array{}}
	for i, name := range s.names {
		in.Global.Define(name, c.clone(s.vals[i]))
	}
}

// cloner deep-copies a value graph, preserving aliasing (and surviving
// cycles) via the seen maps.
type cloner struct {
	objs map[*Object]*Object
	arrs map[*Array]*Array
}

func (c *cloner) clone(v Value) Value {
	switch v.kind {
	case KindObject:
		return ObjectValue(c.cloneObject(v.obj))
	case KindArray:
		return Value{kind: KindArray, arr: c.cloneArray(v.arr)}
	default:
		// Scalars are values; natives and closures are shared immutably.
		return v
	}
}

func (c *cloner) cloneObject(o *Object) *Object {
	if dup, ok := c.objs[o]; ok {
		return dup
	}
	dup := &Object{
		props: make(map[string]Value, len(o.props)),
		order: append([]string(nil), o.order...),
		Class: o.Class,
		Call:  o.Call,
	}
	c.objs[o] = dup // register before recursing: cycles and aliases hit it
	for k, pv := range o.props {
		dup.props[k] = c.clone(pv)
	}
	return dup
}

func (c *cloner) cloneArray(a *Array) *Array {
	if dup, ok := c.arrs[a]; ok {
		return dup
	}
	dup := &Array{}
	c.arrs[a] = dup
	if a.Elems != nil {
		dup.Elems = make([]Value, len(a.Elems))
		for i, e := range a.Elems {
			dup.Elems[i] = c.clone(e)
		}
	}
	if a.Props != nil {
		dup.Props = make(map[string]Value, len(a.Props))
		for k, pv := range a.Props {
			dup.Props[k] = c.clone(pv)
		}
	}
	return dup
}

// builtinsSnap lazily captures the standard builtins from a throwaway
// template, so NewInterp stamps a clone instead of rebuilding every
// native on each call.
var (
	builtinsOnce sync.Once
	builtinsSnap *GlobalSnapshot
)

func builtinsSnapshot() *GlobalSnapshot {
	builtinsOnce.Do(func() {
		tmpl := NewBareInterp()
		tmpl.installBuiltins()
		builtinsSnap = tmpl.SnapshotGlobals()
	})
	return builtinsSnap
}
