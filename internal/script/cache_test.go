package script

import (
	"sync"
	"testing"
)

func TestParseCacheHitMiss(t *testing.T) {
	c := NewParseCache()
	src := "var x = 1 + 2;"
	p1, err := c.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("second parse did not return the cached program")
	}
	if _, err := c.Parse("var y = 3;"); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Misses != 2 || s.Hits != 1 || s.Entries != 2 {
		t.Errorf("stats = %+v, want 2 misses, 1 hit, 2 entries", s)
	}
}

func TestParseCacheErrorsCached(t *testing.T) {
	c := NewParseCache()
	src := "var = ;" // syntax error
	_, err1 := c.Parse(src)
	if err1 == nil {
		t.Fatal("expected parse error")
	}
	_, err2 := c.Parse(src)
	if err2 != err1 {
		t.Errorf("error not cached: %v vs %v", err1, err2)
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != 1 {
		t.Errorf("stats = %+v, want the failure parsed once", s)
	}
}

// TestParseCacheConcurrent hammers one source from many goroutines;
// under -race this proves cache and shared *Program are safe, and the
// accounting shows exactly one real parse.
func TestParseCacheConcurrent(t *testing.T) {
	c := NewParseCache()
	src := `function f(n) { var total = 0; for (var i = 0; i < n; i++) { total += i; } return total; } f(10);`
	const goroutines = 32

	var wg sync.WaitGroup
	progs := make([]*Program, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := c.Parse(src)
			if err != nil {
				t.Error(err)
				return
			}
			progs[i] = p
			// Execute the shared program in a private interpreter, the
			// way concurrent crawl workers share one parsed widget script.
			if err := NewInterp().RunProgram(p, "https://cdn.example/lib.js"); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	for i := 1; i < goroutines; i++ {
		if progs[i] != progs[0] {
			t.Fatal("goroutines saw different programs for one source")
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Entries != 1 {
		t.Errorf("stats = %+v, want exactly one parse", s)
	}
	if s.Hits+s.Coalesced != goroutines-1 {
		t.Errorf("hits (%d) + coalesced (%d) != %d", s.Hits, s.Coalesced, goroutines-1)
	}
}
