package script

// Statement lowering. Each compiled statement counts one interpreter
// step at entry (loops additionally count one per iteration, calls one
// per invocation), so runaway compiled scripts still hit ErrBudget.

func (c *compiler) compileStmts(stmts []Node) ([]execFn, error) {
	out := make([]execFn, 0, len(stmts))
	for _, s := range stmts {
		fn, err := c.compileStmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, fn)
	}
	return out, nil
}

func (c *compiler) compileStmt(n Node) (execFn, error) {
	switch s := n.(type) {
	case *SeqStmt:
		fns, err := c.compileStmts(s.Body)
		if err != nil {
			return nil, err
		}
		return func(in *Interp, env *Env) error {
			if err := in.step(0); err != nil {
				return err
			}
			return runAll(in, env, fns)
		}, nil
	case *BlockStmt:
		return c.compileBlock(s)
	case *VarDecl:
		var initX cexpr
		if s.Init != nil {
			var err error
			initX, err = c.compileExpr(s.Init)
			if err != nil {
				return nil, err
			}
		} else {
			initX = litExpr(Undefined())
		}
		name := s.Name
		// The declaring scope is the innermost frame, when one exists and
		// laid the name out (a var nested under if/while belongs to an
		// enclosing block whose layout includes it; a var whose block
		// pushed no frame spills through dynamic Define, matching the
		// tree-walker's map scopes).
		if len(c.scopes) > 0 {
			if slot, ok := c.scopes[len(c.scopes)-1].slotOf[name]; ok {
				return func(in *Interp, env *Env) error {
					if err := in.step(0); err != nil {
						return err
					}
					v, err := initX.fn(in, env)
					if err != nil {
						return err
					}
					env.slots[slot] = v
					return nil
				}, nil
			}
		}
		return func(in *Interp, env *Env) error {
			if err := in.step(0); err != nil {
				return err
			}
			v, err := initX.fn(in, env)
			if err != nil {
				return err
			}
			env.Define(name, v)
			return nil
		}, nil
	case *ExprStmt:
		x, err := c.compileExpr(s.X)
		if err != nil {
			return nil, err
		}
		return func(in *Interp, env *Env) error {
			if err := in.step(0); err != nil {
				return err
			}
			_, err := x.fn(in, env)
			return err
		}, nil
	case *IfStmt:
		condX, err := c.compileExpr(s.Cond)
		if err != nil {
			return nil, err
		}
		thenFn, err := c.compileStmt(s.Then)
		if err != nil {
			return nil, err
		}
		var elseFn execFn
		if s.Else != nil {
			if elseFn, err = c.compileStmt(s.Else); err != nil {
				return nil, err
			}
		}
		if condX.isLit {
			if condX.lit.Truthy() {
				return thenFn, nil
			}
			if elseFn != nil {
				return elseFn, nil
			}
			return stepOnly, nil
		}
		return func(in *Interp, env *Env) error {
			if err := in.step(0); err != nil {
				return err
			}
			cond, err := condX.fn(in, env)
			if err != nil {
				return err
			}
			if cond.Truthy() {
				return thenFn(in, env)
			}
			if elseFn != nil {
				return elseFn(in, env)
			}
			return nil
		}, nil
	case *WhileStmt:
		condX, err := c.compileExpr(s.Cond)
		if err != nil {
			return nil, err
		}
		bodyFn, err := c.compileStmt(s.Body)
		if err != nil {
			return nil, err
		}
		return func(in *Interp, env *Env) error {
			for {
				if err := in.step(0); err != nil {
					return err
				}
				cond, err := condX.fn(in, env)
				if err != nil {
					return err
				}
				if !cond.Truthy() {
					return nil
				}
				if err := runLoopBody(in, env, bodyFn); err != nil {
					if _, brk := err.(breakSignal); brk {
						return nil
					}
					return err
				}
			}
		}, nil
	case *DoWhileStmt:
		bodyFn, err := c.compileStmt(s.Body)
		if err != nil {
			return nil, err
		}
		condX, err := c.compileExpr(s.Cond)
		if err != nil {
			return nil, err
		}
		return func(in *Interp, env *Env) error {
			for {
				if err := in.step(0); err != nil {
					return err
				}
				if err := runLoopBody(in, env, bodyFn); err != nil {
					if _, brk := err.(breakSignal); brk {
						return nil
					}
					return err
				}
				cond, err := condX.fn(in, env)
				if err != nil {
					return err
				}
				if !cond.Truthy() {
					return nil
				}
			}
		}, nil
	case *ForStmt:
		return c.compileFor(s)
	case *SwitchStmt:
		return c.compileSwitch(s)
	case *ReturnStmt:
		var x cexpr
		if s.X != nil {
			var err error
			if x, err = c.compileExpr(s.X); err != nil {
				return nil, err
			}
		} else {
			x = litExpr(Undefined())
		}
		return func(in *Interp, env *Env) error {
			if err := in.step(0); err != nil {
				return err
			}
			v, err := x.fn(in, env)
			if err != nil {
				return err
			}
			return returnSignal{v: v}
		}, nil
	case *BreakStmt:
		return func(in *Interp, env *Env) error {
			if err := in.step(0); err != nil {
				return err
			}
			return breakSignal{}
		}, nil
	case *ContinueStmt:
		return func(in *Interp, env *Env) error {
			if err := in.step(0); err != nil {
				return err
			}
			return continueSignal{}
		}, nil
	case *ThrowStmt:
		x, err := c.compileExpr(s.X)
		if err != nil {
			return nil, err
		}
		return func(in *Interp, env *Env) error {
			if err := in.step(0); err != nil {
				return err
			}
			v, err := x.fn(in, env)
			if err != nil {
				return err
			}
			return &Thrown{V: v}
		}, nil
	case *TryStmt:
		return c.compileTry(s)
	case *FuncDecl:
		// A declaration in executed position (switch cases, if branches):
		// the binding appears when the statement runs, not at scope entry.
		cf, err := c.compileFunc(s.Name, s.Params, s.Body, nil, s.Line)
		if err != nil {
			return nil, err
		}
		name := s.Name
		slot := -1
		if len(c.scopes) > 0 {
			if i, ok := c.scopes[len(c.scopes)-1].slotOf[name]; ok {
				slot = i
			}
		}
		return func(in *Interp, env *Env) error {
			if err := in.step(0); err != nil {
				return err
			}
			v := FuncValue(&Closure{
				Name: name, Params: cf.params, compiled: cf,
				Env: env, ScriptURL: in.CurrentScriptURL(), Line: cf.line,
			})
			if slot >= 0 {
				env.slots[slot] = v
			} else {
				env.Define(name, v)
			}
			return nil
		}, nil
	default:
		// Expression in statement position (for-init expressions).
		x, err := c.compileExpr(n)
		if err != nil {
			return nil, err
		}
		return func(in *Interp, env *Env) error {
			if err := in.step(0); err != nil {
				return err
			}
			_, err := x.fn(in, env)
			return err
		}, nil
	}
}

func stepOnly(in *Interp, env *Env) error { return in.step(0) }

func runAll(in *Interp, env *Env, fns []execFn) error {
	for _, fn := range fns {
		if err := fn(in, env); err != nil {
			return err
		}
	}
	return nil
}

// runLoopBody translates continue into normal completion, like
// execLoopBody does for the tree-walker.
func runLoopBody(in *Interp, env *Env, body execFn) error {
	err := body(in, env)
	if _, cont := err.(continueSignal); cont {
		return nil
	}
	return err
}

func (c *compiler) compileBlock(b *BlockStmt) (execFn, error) {
	decls := declNames(b.Body)
	if len(decls) == 0 {
		// No bindings can land here: skip the frame entirely. The
		// tree-walker's empty map env is observationally inert.
		fns, err := c.compileStmts(b.Body)
		if err != nil {
			return nil, err
		}
		return func(in *Interp, env *Env) error {
			if err := in.step(0); err != nil {
				return err
			}
			return runAll(in, env, fns)
		}, nil
	}
	fl := newLayout(decls, poolableScope(b.Body))
	c.push(fl)
	var hoisted []*hoistedDecl
	for _, stmt := range b.Body {
		fd, ok := stmt.(*FuncDecl)
		if !ok {
			continue
		}
		cf, err := c.compileFunc(fd.Name, fd.Params, fd.Body, nil, fd.Line)
		if err != nil {
			c.pop()
			return nil, err
		}
		hoisted = append(hoisted, &hoistedDecl{name: fd.Name, slot: fl.slotOf[fd.Name], cf: cf})
	}
	var fns []execFn
	for _, stmt := range b.Body {
		if _, ok := stmt.(*FuncDecl); ok {
			continue
		}
		fn, err := c.compileStmt(stmt)
		if err != nil {
			c.pop()
			return nil, err
		}
		fns = append(fns, fn)
	}
	c.pop()
	return func(in *Interp, env *Env) error {
		if err := in.step(0); err != nil {
			return err
		}
		fe := newFrame(env, fl)
		defineHoisted(in, fe, hoisted)
		err := runAll(in, fe, fns)
		if fl.poolable {
			releaseFrame(fe)
		}
		return err
	}, nil
}

func (c *compiler) compileFor(s *ForStmt) (execFn, error) {
	var fl *frameLayout
	if s.Init != nil {
		if decls := declNames([]Node{s.Init}); len(decls) > 0 {
			fl = newLayout(decls, poolableScope([]Node{s.Init, s.Cond, s.Post, s.Body}))
		}
	}
	if fl != nil {
		c.push(fl)
		defer c.pop()
	}
	var initFn execFn
	var err error
	if s.Init != nil {
		if initFn, err = c.compileStmt(s.Init); err != nil {
			return nil, err
		}
	}
	var condX cexpr
	hasCond := s.Cond != nil
	if hasCond {
		if condX, err = c.compileExpr(s.Cond); err != nil {
			return nil, err
		}
	}
	var postX cexpr
	hasPost := s.Post != nil
	if hasPost {
		if postX, err = c.compileExpr(s.Post); err != nil {
			return nil, err
		}
	}
	bodyFn, err := c.compileStmt(s.Body)
	if err != nil {
		return nil, err
	}
	run := func(in *Interp, env *Env) error {
		if initFn != nil {
			if err := initFn(in, env); err != nil {
				return err
			}
		}
		for {
			if err := in.step(0); err != nil {
				return err
			}
			if hasCond {
				cond, err := condX.fn(in, env)
				if err != nil {
					return err
				}
				if !cond.Truthy() {
					return nil
				}
			}
			if err := runLoopBody(in, env, bodyFn); err != nil {
				if _, brk := err.(breakSignal); brk {
					return nil
				}
				return err
			}
			if hasPost {
				if _, err := postX.fn(in, env); err != nil {
					return err
				}
			}
		}
	}
	layout := fl
	return func(in *Interp, env *Env) error {
		if err := in.step(0); err != nil {
			return err
		}
		fenv := env
		if layout != nil {
			fenv = newFrame(env, layout)
		}
		err := run(in, fenv)
		if layout != nil && layout.poolable {
			releaseFrame(fenv)
		}
		return err
	}, nil
}

func (c *compiler) compileSwitch(s *SwitchStmt) (execFn, error) {
	tagX, err := c.compileExpr(s.Tag)
	if err != nil {
		return nil, err
	}
	// Case tests evaluate in the enclosing scope, before the case-body
	// scope exists — compile them outside the pushed layout.
	tests := make([]*cexpr, len(s.Cases))
	for i, cs := range s.Cases {
		if cs.Test == nil {
			continue
		}
		x, err := c.compileExpr(cs.Test)
		if err != nil {
			return nil, err
		}
		tests[i] = &x
	}
	var all []Node
	for _, cs := range s.Cases {
		all = append(all, cs.Body...)
	}
	var fl *frameLayout
	if decls := declNames(all); len(decls) > 0 {
		fl = newLayout(decls, poolableScope(all))
		c.push(fl)
		defer c.pop()
	}
	bodies := make([][]execFn, len(s.Cases))
	for i, cs := range s.Cases {
		// Switch does not hoist: function declarations in case bodies
		// bind when executed, so they compile as ordinary statements.
		if bodies[i], err = c.compileStmts(cs.Body); err != nil {
			return nil, err
		}
	}
	layout := fl
	return func(in *Interp, env *Env) error {
		if err := in.step(0); err != nil {
			return err
		}
		tag, err := tagX.fn(in, env)
		if err != nil {
			return err
		}
		matched, defaultIdx := -1, -1
		for i := range tests {
			if tests[i] == nil {
				defaultIdx = i
				continue
			}
			tv, err := tests[i].fn(in, env)
			if err != nil {
				return err
			}
			if StrictEquals(tag, tv) {
				matched = i
				break
			}
		}
		if matched < 0 {
			matched = defaultIdx
		}
		if matched < 0 {
			return nil
		}
		senv := env
		if layout != nil {
			senv = newFrame(env, layout)
		}
		var rerr error
	cases:
		for i := matched; i < len(bodies); i++ { // fallthrough semantics
			for _, fn := range bodies[i] {
				if err := fn(in, senv); err != nil {
					if _, brk := err.(breakSignal); !brk {
						rerr = err
					}
					break cases
				}
			}
		}
		if layout != nil && layout.poolable {
			releaseFrame(senv)
		}
		return rerr
	}, nil
}

func (c *compiler) compileTry(s *TryStmt) (execFn, error) {
	bodyFn, err := c.compileBlock(s.Body)
	if err != nil {
		return nil, err
	}
	var catchFl *frameLayout
	var catchFn execFn
	if s.Catch != nil {
		if s.CatchVar != "" {
			// The catch variable lives in its own one-slot scope wrapping
			// the catch block, exactly like the tree-walker's extra env.
			catchFl = newLayout([]string{s.CatchVar}, poolableScope(s.Catch.Body))
			c.push(catchFl)
		}
		catchFn, err = c.compileBlock(s.Catch)
		if s.CatchVar != "" {
			c.pop()
		}
		if err != nil {
			return nil, err
		}
	}
	var finallyFn execFn
	if s.Finally != nil {
		if finallyFn, err = c.compileBlock(s.Finally); err != nil {
			return nil, err
		}
	}
	runCatch := func(in *Interp, env *Env, caught Value) error {
		cenv := env
		if catchFl != nil {
			cenv = newFrame(env, catchFl)
			cenv.slots[0] = caught
		}
		err := catchFn(in, cenv)
		if catchFl != nil && catchFl.poolable {
			releaseFrame(cenv)
		}
		return err
	}
	return func(in *Interp, env *Env) error {
		if err := in.step(0); err != nil {
			return err
		}
		err := bodyFn(in, env)
		if err != nil && catchFn != nil {
			if thrown, ok := errAsThrown(err); ok {
				err = runCatch(in, env, thrown.V)
			} else if rt, ok := errAsRuntime(err); ok {
				// Host TypeErrors are catchable, like in a browser.
				eo := NewObject()
				eo.Class = "Error"
				eo.Set("message", String(rt.Msg))
				err = runCatch(in, env, ObjectValue(eo))
			}
		}
		if finallyFn != nil {
			if ferr := finallyFn(in, env); ferr != nil {
				return ferr
			}
		}
		return err
	}, nil
}
