package script

import (
	"fmt"
	"strings"
	"testing"
)

// runBothWays executes src tree-walking and compiled, each against a
// fresh interpreter with a `probe(...)` native that records its
// arguments, and returns the two observation logs (trailing error
// included as a final entry).
func runBothWays(t *testing.T, src string) (tree, compiled []string) {
	t.Helper()
	run := func(exec func(in *Interp) error) []string {
		var log []string
		in := NewInterp()
		in.Global.Define("probe", NativeValue("probe", func(_ *Interp, _ Value, args []Value) (Value, error) {
			parts := make([]string, len(args))
			for i, a := range args {
				parts[i] = a.TypeOf() + ":" + a.ToString()
			}
			log = append(log, strings.Join(parts, "|"))
			return Undefined(), nil
		}))
		if err := exec(in); err != nil {
			log = append(log, "ERR "+err.Error())
		}
		return log
	}
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	tree = run(func(in *Interp) error { return in.RunProgram(prog, "test://equiv") })
	cp, err := Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	compiled = run(func(in *Interp) error { return in.RunCompiled(cp, "test://equiv") })
	return tree, compiled
}

func assertEquivalent(t *testing.T, src string) {
	t.Helper()
	tree, compiled := runBothWays(t, src)
	if fmt.Sprint(tree) != fmt.Sprint(compiled) {
		t.Errorf("tree-walk and compiled diverge for:\n%s\ntree:     %v\ncompiled: %v", src, tree, compiled)
	}
	if len(tree) == 0 {
		t.Errorf("script produced no observations (probe never called, no error):\n%s", src)
	}
}

// TestCompileEquivalence runs a corpus of scripts through both
// execution paths and requires identical observable behavior: same
// probe calls in the same order with the same values, same final error.
func TestCompileEquivalence(t *testing.T) {
	corpus := []string{
		// Basics, folding fodder, string ops.
		`probe(1 + 2 * 3, "a" + "b", 10 % 3, 2 < 1, "x" < "y", 7 & 3, 7 | 8, 5 ^ 1);`,
		`probe(!0, -(-3), +"42", ~5, typeof {}, typeof missingVar);`,
		`probe(1 && 2, 0 || "fb", null ?? "d", 0 ?? "kept", true ? "y" : "n");`,
		`var x = 1; x += 2; x *= 3; probe(x); x -= 4; probe(x, x++, x, --x);`,
		// Scoping: hoisting, shadowing, blocks, read-before-declare.
		`var a = 1; { var a = 2; probe(a); } probe(a);`,
		`var a = 1; function f() { probe(a); var a = 2; probe(a); } f(); probe(a);`,
		`var a = 1; function f() { a = 9; } f(); probe(a);`,
		`function f() { b = 7; var b; probe(b); } f(); probe(typeof b);`,
		`var a = 1; { if (true) var a = 5; probe(a); } probe(a);`,
		`var a = 1; { probe(typeof a); var g = 2; if (true) var a = 5; probe(a); } probe(a);`,
		`var i = 0; while (i < 3) { var sq = i * i; probe(sq); i = i + 1; } probe(i);`,
		// Functions: params, arguments, defaults, recursion, closures.
		`function add(a, b) { return a + b; } probe(add(1, 2), add(1), add(1, 2, 3));`,
		`function f() { return arguments.length + ":" + arguments[1]; } probe(f("a", "b", "c"));`,
		`function fib(n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); } probe(fib(10));`,
		`function counter() { var n = 0; return function () { n = n + 1; return n; }; }
		 var c1 = counter(); var c2 = counter(); probe(c1(), c1(), c2(), c1());`,
		`var inc = function (x) { return x + 1; }; var dbl = (x) => x * 2; probe(dbl(inc(3)));`,
		`function outer() { function inner() { return "in"; } return inner(); } probe(outer());`,
		`probe(mutual1(4)); function mutual1(n) { return n <= 0 ? "done" : mutual2(n - 1); }
		 function mutual2(n) { return mutual1(n - 1); }`,
		`function f(a, a) { return a; } probe(f(1, 2));`,
		`var o = { m: function () { return this.tag; }, tag: "T" }; probe(o.m());`,
		`function F(v) { this.v = v; } var o = new F(42); probe(o.v);`,
		// this at top level, method extraction losing this.
		`probe(typeof this);`,
		`var o = { tag: "t", m: function () { return typeof this; } }; var g = o.m; probe(o.m(), o["m"]());`,
		// Loops: for, do-while, nested break/continue.
		`var s = 0; for (var i = 0; i < 5; i++) { if (i === 2) continue; s += i; } probe(s, i);`,
		`var s = ""; for (var i = 0; i < 10; i++) { if (i > 3) break; s += i; } probe(s);`,
		`var n = 0; do { n++; } while (n < 4); probe(n);`,
		`var s = 0; for (var i = 0; i < 3; i++) for (var j = 0; j < 3; j++) { if (j === 1) continue; s += 1; } probe(s);`,
		`for (var i = 0, j = 10; i < j; i++, j--) {} probe(i, j);`,
		// Switch: match, default, fallthrough, decls in cases.
		`switch (2) { case 1: probe("one"); case 2: probe("two"); case 3: probe("three"); break; case 4: probe("four"); }`,
		`switch ("zz") { case "a": probe("a"); break; default: probe("dflt"); }`,
		`switch (1) { case 1: var sv = "set"; } probe(typeof sv);`,
		// try/catch/finally, throw, host errors, nesting.
		`try { throw { code: 7 }; } catch (e) { probe(e.code); } finally { probe("fin"); }`,
		`try { nope.prop; } catch (e) { probe(e.message); }`,
		`try { probe("ok"); } catch (e) { probe("never"); } probe("after");`,
		`function f() { try { return "t"; } finally { probe("fin"); } } probe(f());`,
		`try { try { throw "inner"; } finally { probe("f1"); } } catch (e) { probe(e); }`,
		`try { undefinedFn(); } catch (e) { probe(e.message); }`,
		// Objects, arrays, members, computed access, compound member ops.
		`var o = { a: 1, b: { c: 2 } }; o.b.d = o.a + o.b.c; probe(o.b.d, JSON.stringify(o));`,
		`var a = [1, 2, 3]; a.push(4); a[0] = a[1] + a[3]; probe(a.join(","), a.length);`,
		`var a = [5]; a[-1] = "neg"; a[1.5] = "frac"; probe(a[-1], a[1.5], a.length, JSON.stringify(a));`,
		`var i = 0; var a = [10, 20, 30]; a[i++] += 5; probe(i, a.join(","));`,
		`var o = {}; var k = "dyn"; o[k] = 1; o[k] += 2; probe(o.dyn);`,
		`var a = [1, 2, 3]; probe(a.map(function (x) { return x * 2; }).join(","), a.filter(function (x) { return x > 1; }).length);`,
		`var s = 0; [1, 2, 3].forEach(function (v, i) { s += v * i; }); probe(s);`,
		`var out = []; for (var i = 0; i < 3; i++) { out.push((function (n) { return function () { return n; }; })(i)); } probe(out[0](), out[1](), out[2]());`,
		// Spread, optional chaining/calls, apply/call/bind.
		`function sum(a, b, c) { return a + b + c; } var args = [1, 2, 3]; probe(sum.apply(null, args), sum(...args));`,
		`var o = null; probe(o?.x, o?.m?.(), typeof o?.a?.b);`,
		`function greet(g, n) { return g + " " + n + " from " + (this && this.tag); }
		 probe(greet.call({ tag: "c" }, "hi", "x"), greet.bind({ tag: "b" }, "yo")("z"));`,
		// Builtins: Math (deterministic LCG), JSON, parseInt, Object.
		`probe(Math.floor(3.7), Math.max(1, 9, 4), Math.abs(-2), parseInt("12px"), parseFloat("3.5rem"));`,
		`probe(Math.random() === Math.random());`,
		`probe(JSON.stringify({ b: 2, a: [1, "x", null] }), Object.keys({ x: 1, y: 2 }).join(","));`,
		`var e = new Error("boom"); probe(e.message, typeof e.stack);`,
		// Promises + setTimeout (synchronous in this interpreter).
		`Promise.resolve(5).then(function (v) { probe("then", v); }); probe("after");`,
		`setTimeout(function () { probe("timer"); }, 0); probe("sync");`,
		// Errors escaping to the top level keep line/message parity.
		`var x = 1;
		 probe("before");
		 x.missing.deeper;`,
		`probe("a"); ({}).nope();`,
		`probe(1 in { 1: "x" }, "k" in { k: 1 }, "k" in {});`,
		// Sequence/comma operator, template strings, ternary chains.
		`var x = (probe("first"), 2); probe(x);`,
		"var who = 'w'; probe(`hello ${who} ${1 + 1}`);",
		`var v = 5; probe(v < 3 ? "lo" : v < 7 ? "mid" : "hi");`,
		// Update on member/index single-evaluation.
		`var calls = 0; function idx() { calls++; return 0; } var a = [10]; a[idx()]++; probe(calls, a[0]);`,
		`var calls = 0; function base() { calls++; return o; } var o = { n: 1 }; base().n += 4; probe(calls, o.n);`,
	}
	for i, src := range corpus {
		t.Run(fmt.Sprintf("case%02d", i), func(t *testing.T) { assertEquivalent(t, src) })
	}
}

// TestCompileEquivalenceBudget checks a compiled runaway loop still
// exhausts the step budget.
func TestCompileEquivalenceBudget(t *testing.T) {
	prog, err := Parse(`while (true) { var x = 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInterp()
	in.MaxSteps = 5000
	if err := in.RunCompiled(cp, "test://budget"); err != ErrBudget {
		t.Fatalf("compiled runaway loop: got %v, want ErrBudget", err)
	}
}

// TestCompileEquivalenceRecursionCap checks compiled infinite recursion
// hits the call-stack cap rather than overflowing the Go stack.
func TestCompileEquivalenceRecursionCap(t *testing.T) {
	src := `function f() { return f(); } f();`
	tree, compiled := runBothWays(t, src)
	for _, log := range [][]string{tree, compiled} {
		if len(log) != 1 || !strings.Contains(log[0], "maximum call stack") {
			t.Fatalf("want call-stack error, got %v", log)
		}
	}
}

// TestCompiledSharedAcrossInterps runs one compiled program in several
// interpreters and checks the runs stay independent (no shared frames
// or globals leaking through the immutable compiled form).
func TestCompiledSharedAcrossInterps(t *testing.T) {
	prog, err := Parse(`var n = (typeof seed === "number") ? seed : -1;
		function bump() { n += 1; return n; }
		bump(); bump();`)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	for seed := 0; seed < 3; seed++ {
		in := NewInterp()
		in.Global.Define("seed", Number(float64(seed*100)))
		if err := in.RunCompiled(cp, "test://shared"); err != nil {
			t.Fatal(err)
		}
		v, _ := in.Global.Get("n")
		if want := float64(seed*100 + 2); v.Num() != want {
			t.Fatalf("seed %d: n = %v, want %v", seed, v.Num(), want)
		}
	}
}

func TestCompileCache(t *testing.T) {
	pc := NewParseCache()
	cc := NewBoundedCompileCache(0, pc.Parse)
	src := `var x = 1 + 2;`
	a, err := cc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same source should share one compiled program")
	}
	if _, err := cc.Compile(`var broken = ;`); err == nil {
		t.Fatal("want parse error through compile cache")
	}
	st := cc.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 hit, 2 misses, 2 entries", st)
	}
	if ps := pc.Stats(); ps.Misses != 2 {
		t.Fatalf("layered parse cache misses = %d, want 2", ps.Misses)
	}
}
