package script

import (
	"math"
	"strings"
)

// installBuiltins populates the global scope with the standard objects
// the probe scripts need: Object, Array, JSON, Math, console, Error,
// Promise, and a synchronous setTimeout.
func (in *Interp) installBuiltins() {
	g := in.Global

	// console: a sink; the browser layer may replace it to capture logs.
	console := NewObject()
	for _, m := range []string{"log", "warn", "error", "info", "debug"} {
		console.Set(m, NativeValue("console."+m, func(_ *Interp, _ Value, _ []Value) (Value, error) {
			return Undefined(), nil
		}))
	}
	g.Define("console", ObjectValue(console))

	// Object.keys / Object.assign / Object.entries.
	objectNS := NewObject()
	objectNS.Set("keys", NativeValue("Object.keys", func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 || args[0].Kind() != KindObject {
			return ArrayValue(), nil
		}
		return StringsValue(args[0].Obj().Keys()), nil
	}))
	objectNS.Set("assign", NativeValue("Object.assign", func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 || args[0].Kind() != KindObject {
			return Undefined(), nil
		}
		dst := args[0]
		for _, src := range args[1:] {
			if src.Kind() != KindObject {
				continue
			}
			for _, k := range src.Obj().Keys() {
				v, _ := src.Obj().Get(k)
				dst.Obj().Set(k, v)
			}
		}
		return dst, nil
	}))
	objectNS.Set("entries", NativeValue("Object.entries", func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 || args[0].Kind() != KindObject {
			return ArrayValue(), nil
		}
		var pairs []Value
		for _, k := range args[0].Obj().Keys() {
			v, _ := args[0].Obj().Get(k)
			pairs = append(pairs, ArrayValue(String(k), v))
		}
		return ArrayValue(pairs...), nil
	}))
	g.Define("Object", ObjectValue(objectNS))

	arrayNS := NewObject()
	arrayNS.Set("isArray", NativeValue("Array.isArray", func(_ *Interp, _ Value, args []Value) (Value, error) {
		return Bool(len(args) > 0 && args[0].Kind() == KindArray), nil
	}))
	arrayNS.Set("from", NativeValue("Array.from", func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) > 0 && args[0].Kind() == KindArray {
			return ArrayValue(append([]Value{}, args[0].Arr().Elems...)...), nil
		}
		return ArrayValue(), nil
	}))
	g.Define("Array", ObjectValue(arrayNS))

	jsonNS := NewObject()
	jsonNS.Set("stringify", NativeValue("JSON.stringify", func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return String("undefined"), nil
		}
		return String(JSONString(args[0])), nil
	}))
	g.Define("JSON", ObjectValue(jsonNS))

	mathNS := NewObject()
	mathNS.Set("floor", NativeValue("Math.floor", numFn(math.Floor)))
	mathNS.Set("ceil", NativeValue("Math.ceil", numFn(math.Ceil)))
	mathNS.Set("round", NativeValue("Math.round", numFn(math.Round)))
	mathNS.Set("abs", NativeValue("Math.abs", numFn(math.Abs)))
	mathNS.Set("min", NativeValue("Math.min", func(_ *Interp, _ Value, args []Value) (Value, error) {
		m := math.Inf(1)
		for _, a := range args {
			m = math.Min(m, a.ToNumber())
		}
		return Number(m), nil
	}))
	mathNS.Set("max", NativeValue("Math.max", func(_ *Interp, _ Value, args []Value) (Value, error) {
		m := math.Inf(-1)
		for _, a := range args {
			m = math.Max(m, a.ToNumber())
		}
		return Number(m), nil
	}))
	mathNS.Set("random", NativeValue("Math.random", func(in *Interp, _ Value, _ []Value) (Value, error) {
		// Deterministic LCG so crawls are reproducible.
		in.rng = in.rng*6364136223846793005 + 1442695040888963407
		return Number(float64(in.rng>>11) / float64(1<<53)), nil
	}))
	g.Define("Math", ObjectValue(mathNS))

	// Error: captures the interpreter's stack like V8's Error().stack —
	// the mechanism the paper's instrumentation (Figure 1) relies on.
	g.Define("Error", NativeValue("Error", func(in *Interp, _ Value, args []Value) (Value, error) {
		eo := NewObject()
		eo.Class = "Error"
		msg := ""
		if len(args) > 0 {
			msg = args[0].ToString()
		}
		eo.Set("message", String(msg))
		eo.Set("stack", String(in.StackTrace()))
		return ObjectValue(eo), nil
	}))
	g.Define("TypeError", mustGlobal(g, "Error"))

	// Promise with eager (synchronous) resolution.
	promiseNS := NewObject()
	promiseNS.Set("resolve", NativeValue("Promise.resolve", func(_ *Interp, _ Value, args []Value) (Value, error) {
		v := Undefined()
		if len(args) > 0 {
			v = args[0]
		}
		return ResolvedPromise(v), nil
	}))
	promiseNS.Set("reject", NativeValue("Promise.reject", func(_ *Interp, _ Value, args []Value) (Value, error) {
		v := Undefined()
		if len(args) > 0 {
			v = args[0]
		}
		return RejectedPromise(v), nil
	}))
	promiseNS.Set("all", NativeValue("Promise.all", func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 || args[0].Kind() != KindArray {
			return ResolvedPromise(ArrayValue()), nil
		}
		var results []Value
		for _, p := range args[0].Arr().Elems {
			if p.Kind() == KindObject && p.Obj().Class == "Promise" {
				if state := p.Obj().GetOr("__state", String("")); state.Str() == "rejected" {
					return p, nil
				}
				results = append(results, p.Obj().GetOr("__value", Undefined()))
			} else {
				results = append(results, p)
			}
		}
		return ResolvedPromise(ArrayValue(results...)), nil
	}))
	g.Define("Promise", ObjectValue(promiseNS))

	// setTimeout: synchronous execution — the crawler's "wait 20 seconds
	// on the page" phase collapses to immediate callback execution.
	g.Define("setTimeout", NativeValue("setTimeout", func(in *Interp, _ Value, args []Value) (Value, error) {
		if len(args) > 0 && args[0].IsCallable() {
			if _, err := in.call(args[0], Undefined(), nil, 0); err != nil {
				return Undefined(), err
			}
		}
		return Number(1), nil
	}))
	g.Define("setInterval", NativeValue("setInterval", func(in *Interp, _ Value, args []Value) (Value, error) {
		// One tick is enough for the measurement model.
		if len(args) > 0 && args[0].IsCallable() {
			if _, err := in.call(args[0], Undefined(), nil, 0); err != nil {
				return Undefined(), err
			}
		}
		return Number(1), nil
	}))
	g.Define("clearTimeout", NativeValue("clearTimeout", noop))
	g.Define("clearInterval", NativeValue("clearInterval", noop))
	g.Define("parseInt", NativeValue("parseInt", func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Number(math.NaN()), nil
		}
		return Number(math.Trunc(args[0].ToNumber())), nil
	}))
	g.Define("parseFloat", NativeValue("parseFloat", func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Number(math.NaN()), nil
		}
		return Number(args[0].ToNumber()), nil
	}))
	g.Define("String", NativeValue("String", func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return String(""), nil
		}
		return String(args[0].ToString()), nil
	}))
	g.Define("Boolean", NativeValue("Boolean", func(_ *Interp, _ Value, args []Value) (Value, error) {
		return Bool(len(args) > 0 && args[0].Truthy()), nil
	}))
	g.Define("Number", NativeValue("Number", func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Number(0), nil
		}
		return Number(args[0].ToNumber()), nil
	}))
	g.Define("encodeURIComponent", NativeValue("encodeURIComponent", func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return String("undefined"), nil
		}
		return String(strings.ReplaceAll(args[0].ToString(), " ", "%20")), nil
	}))
	g.Define("globalThis", Undefined()) // replaced by the browser layer
	g.Define("NaN", Number(math.NaN()))
	g.Define("Infinity", Number(math.Inf(1)))
}

func numFn(f func(float64) float64) func(*Interp, Value, []Value) (Value, error) {
	return func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Number(math.NaN()), nil
		}
		return Number(f(args[0].ToNumber())), nil
	}
}

func noop(_ *Interp, _ Value, _ []Value) (Value, error) { return Undefined(), nil }

func mustGlobal(g *Env, name string) Value {
	v, _ := g.Get(name)
	return v
}

// ResolvedPromise builds a synchronously-resolved promise object: then
// callbacks fire immediately, which models the crawler's settled-page
// snapshot (every pending promise has resolved by collection time).
func ResolvedPromise(v Value) Value {
	return makePromise("resolved", v)
}

// RejectedPromise builds a rejected promise.
func RejectedPromise(reason Value) Value {
	return makePromise("rejected", reason)
}

// Promise methods are shared this-based natives rather than per-promise
// closures: they read __state/__value from the receiver, so a promise
// object cloned into another realm by InstallSnapshot keeps working —
// a captured-variable implementation would leak the template's state
// and identity into every clone.
var promiseThenV, promiseCatchV, promiseFinallyV Value

func init() {
	// Assigned in init: a package-level initializer would form a cycle
	// (then → ResolvedPromise → makePromise → then).
	promiseThenV = NativeValue("then", promiseThen)
	promiseCatchV = NativeValue("catch", promiseCatch)
	promiseFinallyV = NativeValue("finally", promiseFinally)
}

func promiseState(this Value) (state string, v Value) {
	if this.Kind() != KindObject {
		return "", Undefined()
	}
	return this.Obj().GetOr("__state", String("")).Str(),
		this.Obj().GetOr("__value", Undefined())
}

func promiseThen(in *Interp, this Value, args []Value) (Value, error) {
	state, v := promiseState(this)
	if state == "resolved" && len(args) > 0 && args[0].IsCallable() {
		r, err := in.call(args[0], Undefined(), []Value{v}, 0)
		if err != nil {
			return Undefined(), err
		}
		if r.Kind() == KindObject && r.Obj().Class == "Promise" {
			return r, nil
		}
		return ResolvedPromise(r), nil
	}
	if state == "rejected" && len(args) > 1 && args[1].IsCallable() {
		r, err := in.call(args[1], Undefined(), []Value{v}, 0)
		if err != nil {
			return Undefined(), err
		}
		return ResolvedPromise(r), nil
	}
	return this, nil
}

func promiseCatch(in *Interp, this Value, args []Value) (Value, error) {
	state, v := promiseState(this)
	if state == "rejected" && len(args) > 0 && args[0].IsCallable() {
		r, err := in.call(args[0], Undefined(), []Value{v}, 0)
		if err != nil {
			return Undefined(), err
		}
		return ResolvedPromise(r), nil
	}
	return this, nil
}

func promiseFinally(in *Interp, this Value, args []Value) (Value, error) {
	if len(args) > 0 && args[0].IsCallable() {
		if _, err := in.call(args[0], Undefined(), nil, 0); err != nil {
			return Undefined(), err
		}
	}
	return this, nil
}

func makePromise(state string, v Value) Value {
	p := NewObject()
	p.Class = "Promise"
	p.Set("__state", String(state))
	p.Set("__value", v)
	p.Set("then", promiseThenV)
	p.Set("catch", promiseCatchV)
	p.Set("finally", promiseFinallyV)
	return ObjectValue(p)
}
