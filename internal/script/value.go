package script

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates runtime values.
type Kind uint8

const (
	KindUndefined Kind = iota
	KindNull
	KindBool
	KindNumber
	KindString
	KindObject
	KindArray
	KindFunc   // closure
	KindNative // Go-implemented function
)

// Value is a JavaScript value.
type Value struct {
	kind Kind
	b    bool
	n    float64
	s    string
	obj  *Object
	arr  *Array
	fn   *Closure
	nat  *Native
}

// Object is a property bag. Host objects (navigator, document, ...) are
// Objects whose function-valued properties are Natives.
type Object struct {
	props map[string]Value
	order []string
	// Class tags host objects ("Promise", "PermissionStatus", ...).
	Class string
	// Call, when non-nil, makes the object callable/constructible —
	// used for host constructors that also carry static properties
	// (Notification.requestPermission alongside new Notification()).
	Call *Native
}

// Array is a JS array.
type Array struct {
	Elems []Value
	// Props holds object-style properties set with non-element keys
	// (negative or fractional indexes, arbitrary strings) — JS arrays are
	// objects, and a[-1] = x is a property set, not an element write.
	// Allocated lazily; JSON serialization ignores it, like
	// JSON.stringify does for non-index array properties.
	Props map[string]Value
}

// Closure is a user-defined function.
type Closure struct {
	Name     string
	Params   []string
	Body     *BlockStmt
	ExprBody Node
	Env      *Env
	// ScriptURL is the URL of the script that defined the function; it
	// feeds stack-trace attribution (§4.1.1: "the stacktrace enables us
	// to determine the origin of a call").
	ScriptURL string
	Line      int
	// compiled, when set, is the pre-lowered body: calls run through
	// pooled frames and slot-resolved closures instead of the AST walk.
	compiled *compiledFunc
}

// Native is a host function.
type Native struct {
	Name string
	Fn   func(in *Interp, this Value, args []Value) (Value, error)
}

// ---- constructors ----

func Undefined() Value       { return Value{kind: KindUndefined} }
func Null() Value            { return Value{kind: KindNull} }
func Bool(b bool) Value      { return Value{kind: KindBool, b: b} }
func Number(n float64) Value { return Value{kind: KindNumber, n: n} }
func String(s string) Value  { return Value{kind: KindString, s: s} }

// NewObject creates an empty object.
func NewObject() *Object { return &Object{props: map[string]Value{}} }

// ObjectValue wraps an Object.
func ObjectValue(o *Object) Value { return Value{kind: KindObject, obj: o} }

// ArrayValue wraps element values.
func ArrayValue(elems ...Value) Value {
	return Value{kind: KindArray, arr: &Array{Elems: elems}}
}

// StringsValue builds an array of strings.
func StringsValue(ss []string) Value {
	elems := make([]Value, len(ss))
	for i, s := range ss {
		elems[i] = String(s)
	}
	return ArrayValue(elems...)
}

// NativeValue wraps a host function.
func NativeValue(name string, fn func(in *Interp, this Value, args []Value) (Value, error)) Value {
	return Value{kind: KindNative, nat: &Native{Name: name, Fn: fn}}
}

// FuncValue wraps a closure.
func FuncValue(c *Closure) Value { return Value{kind: KindFunc, fn: c} }

// ---- accessors ----

func (v Value) Kind() Kind        { return v.kind }
func (v Value) IsUndefined() bool { return v.kind == KindUndefined }
func (v Value) IsNull() bool      { return v.kind == KindNull }
func (v Value) IsCallable() bool {
	return v.kind == KindFunc || v.kind == KindNative ||
		(v.kind == KindObject && v.obj.Call != nil)
}

// Str returns the string payload (empty for non-strings).
func (v Value) Str() string { return v.s }

// Num returns the numeric payload.
func (v Value) Num() float64 { return v.n }

// BoolVal returns the bool payload.
func (v Value) BoolVal() bool { return v.b }

// Obj returns the object payload, or nil.
func (v Value) Obj() *Object { return v.obj }

// Arr returns the array payload, or nil.
func (v Value) Arr() *Array { return v.arr }

// Truthy implements JS truthiness.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindUndefined, KindNull:
		return false
	case KindBool:
		return v.b
	case KindNumber:
		return v.n != 0 && !math.IsNaN(v.n)
	case KindString:
		return v.s != ""
	default:
		return true
	}
}

// Set assigns a property, preserving insertion order for new keys.
func (o *Object) Set(key string, v Value) {
	if _, exists := o.props[key]; !exists {
		o.order = append(o.order, key)
	}
	o.props[key] = v
}

// Get reads a property.
func (o *Object) Get(key string) (Value, bool) {
	v, ok := o.props[key]
	return v, ok
}

// GetOr reads a property with a default.
func (o *Object) GetOr(key string, def Value) Value {
	if v, ok := o.props[key]; ok {
		return v
	}
	return def
}

// Keys returns property names in insertion order.
func (o *Object) Keys() []string { return append([]string{}, o.order...) }

// ToString implements JS ToString for diagnostics and concatenation.
func (v Value) ToString() string {
	switch v.kind {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "null"
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindNumber:
		if v.n == math.Trunc(v.n) && math.Abs(v.n) < 1e15 && !math.IsInf(v.n, 0) {
			return strconv.FormatInt(int64(v.n), 10)
		}
		return strconv.FormatFloat(v.n, 'g', -1, 64)
	case KindString:
		return v.s
	case KindArray:
		parts := make([]string, len(v.arr.Elems))
		for i, e := range v.arr.Elems {
			parts[i] = e.ToString()
		}
		return strings.Join(parts, ",")
	case KindObject:
		if v.obj.Class != "" {
			return "[object " + v.obj.Class + "]"
		}
		return "[object Object]"
	case KindFunc:
		return "function " + v.fn.Name + "() { [user code] }"
	case KindNative:
		return "function " + v.nat.Name + "() { [native code] }"
	}
	return ""
}

// ToNumber implements JS ToNumber loosely.
func (v Value) ToNumber() float64 {
	switch v.kind {
	case KindNumber:
		return v.n
	case KindBool:
		if v.b {
			return 1
		}
		return 0
	case KindString:
		s := strings.TrimSpace(v.s)
		if s == "" {
			return 0
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return math.NaN()
		}
		return f
	case KindNull:
		return 0
	default:
		return math.NaN()
	}
}

// TypeOf implements the typeof operator.
func (v Value) TypeOf() string {
	switch v.kind {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "object"
	case KindBool:
		return "boolean"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	case KindFunc, KindNative:
		return "function"
	default:
		return "object"
	}
}

// StrictEquals implements ===.
func StrictEquals(a, b Value) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case KindUndefined, KindNull:
		return true
	case KindBool:
		return a.b == b.b
	case KindNumber:
		return a.n == b.n
	case KindString:
		return a.s == b.s
	case KindObject:
		return a.obj == b.obj
	case KindArray:
		return a.arr == b.arr
	case KindFunc:
		return a.fn == b.fn
	case KindNative:
		return a.nat == b.nat
	}
	return false
}

// LooseEquals implements == (approximately: === plus null/undefined
// equivalence plus string/number coercion).
func LooseEquals(a, b Value) bool {
	if a.kind == b.kind {
		return StrictEquals(a, b)
	}
	if (a.kind == KindNull && b.kind == KindUndefined) ||
		(a.kind == KindUndefined && b.kind == KindNull) {
		return true
	}
	if (a.kind == KindNumber && b.kind == KindString) ||
		(a.kind == KindString && b.kind == KindNumber) ||
		(a.kind == KindBool || b.kind == KindBool) {
		return a.ToNumber() == b.ToNumber()
	}
	return false
}

// JSONString renders a value as JSON (cycles are not detected; host
// graphs are acyclic).
func JSONString(v Value) string {
	switch v.kind {
	case KindUndefined, KindFunc, KindNative:
		return "null"
	case KindNull:
		return "null"
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindNumber:
		return v.ToString()
	case KindString:
		return strconv.Quote(v.s)
	case KindArray:
		parts := make([]string, len(v.arr.Elems))
		for i, e := range v.arr.Elems {
			parts[i] = JSONString(e)
		}
		return "[" + strings.Join(parts, ",") + "]"
	case KindObject:
		keys := v.obj.Keys()
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			pv := v.obj.props[k]
			if pv.IsCallable() {
				continue
			}
			parts = append(parts, fmt.Sprintf("%s:%s", strconv.Quote(k), JSONString(pv)))
		}
		return "{" + strings.Join(parts, ",") + "}"
	}
	return "null"
}
