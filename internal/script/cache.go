package script

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"permodyssey/internal/lru"
)

// ParseStats is a point-in-time snapshot of ParseCache counters.
type ParseStats struct {
	// Hits are sources answered from the cache; Misses are real parses.
	Hits   uint64
	Misses uint64
	// Coalesced are lookups that joined an in-flight parse of the same
	// source and shared its result.
	Coalesced uint64
	// Evictions are entries dropped to keep the cache under its cap.
	Evictions uint64
	// Entries is the number of distinct sources currently cached.
	Entries uint64
}

type parseEntry struct {
	done chan struct{}
	prog *Program
	err  error
}

// ParseCache memoizes Parse keyed by source content, so each distinct
// script body — in a crawl, the handful of shared third-party widget
// and CDN scripts included by thousands of sites — is parsed exactly
// once per crawl. Programs are immutable after parsing (the interpreter
// only reads the AST; per-realm state lives in environments and
// closures), so a cached *Program is safe to execute concurrently from
// many realms. Parse failures are cached too: the same source always
// fails the same way.
//
// The cache is LRU-bounded (0 = unbounded): a chaos-heavy or
// multi-million-site crawl full of one-off inline scripts cannot grow
// it without limit. Evicting an in-flight entry is harmless — waiters
// hold the entry pointer; at worst the same source parses twice.
type ParseCache struct {
	mu      sync.Mutex
	entries *lru.Cache[[sha256.Size]byte, *parseEntry]

	hits, misses, coalesced, evictions atomic.Uint64
}

// NewParseCache creates an empty, unbounded cache; use
// NewBoundedParseCache to cap it.
func NewParseCache() *ParseCache {
	return NewBoundedParseCache(0)
}

// NewBoundedParseCache creates a cache holding at most maxEntries
// distinct sources (<= 0 = unbounded), evicted least-recently-used.
func NewBoundedParseCache(maxEntries int) *ParseCache {
	return &ParseCache{entries: lru.New[[sha256.Size]byte, *parseEntry](maxEntries)}
}

// Parse returns the cached program for src, parsing it on first sight.
// Concurrent first sights of the same source are de-duplicated: one
// caller parses, the rest wait and share the result.
func (c *ParseCache) Parse(src string) (*Program, error) {
	sum := sha256.Sum256([]byte(src))
	c.mu.Lock()
	if e, ok := c.entries.Get(sum); ok {
		c.mu.Unlock()
		select {
		case <-e.done:
			c.hits.Add(1)
		default:
			<-e.done
			c.coalesced.Add(1)
		}
		return e.prog, e.err
	}
	e := &parseEntry{done: make(chan struct{})}
	if _, _, _, _, evicted := c.entries.Add(sum, e); evicted {
		c.evictions.Add(1)
	}
	c.mu.Unlock()

	c.misses.Add(1)
	e.prog, e.err = Parse(src)
	close(e.done)
	return e.prog, e.err
}

// Stats snapshots the cache counters.
func (c *ParseCache) Stats() ParseStats {
	c.mu.Lock()
	entries := uint64(c.entries.Len())
	c.mu.Unlock()
	return ParseStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
	}
}
