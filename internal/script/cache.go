package script

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"permodyssey/internal/lru"
)

// ParseStats is a point-in-time snapshot of ParseCache counters.
type ParseStats struct {
	// Hits are sources answered from the cache; Misses are real parses.
	Hits   uint64
	Misses uint64
	// Coalesced are lookups that joined an in-flight parse of the same
	// source and shared its result.
	Coalesced uint64
	// Evictions are entries dropped to keep the cache under its cap.
	Evictions uint64
	// Entries is the number of distinct sources currently cached.
	Entries uint64
}

type parseEntry struct {
	done chan struct{}
	prog *Program
	err  error
}

// ParseCache memoizes Parse keyed by source content, so each distinct
// script body — in a crawl, the handful of shared third-party widget
// and CDN scripts included by thousands of sites — is parsed exactly
// once per crawl. Programs are immutable after parsing (the interpreter
// only reads the AST; per-realm state lives in environments and
// closures), so a cached *Program is safe to execute concurrently from
// many realms. Parse failures are cached too: the same source always
// fails the same way.
//
// The cache is LRU-bounded (0 = unbounded): a chaos-heavy or
// multi-million-site crawl full of one-off inline scripts cannot grow
// it without limit. Evicting an in-flight entry is harmless — waiters
// hold the entry pointer; at worst the same source parses twice.
type ParseCache struct {
	mu      sync.Mutex
	entries *lru.Cache[[sha256.Size]byte, *parseEntry]

	hits, misses, coalesced, evictions atomic.Uint64
}

// NewParseCache creates an empty, unbounded cache; use
// NewBoundedParseCache to cap it.
func NewParseCache() *ParseCache {
	return NewBoundedParseCache(0)
}

// NewBoundedParseCache creates a cache holding at most maxEntries
// distinct sources (<= 0 = unbounded), evicted least-recently-used.
func NewBoundedParseCache(maxEntries int) *ParseCache {
	return &ParseCache{entries: lru.New[[sha256.Size]byte, *parseEntry](maxEntries)}
}

// Parse returns the cached program for src, parsing it on first sight.
// Concurrent first sights of the same source are de-duplicated: one
// caller parses, the rest wait and share the result.
func (c *ParseCache) Parse(src string) (*Program, error) {
	sum := sha256.Sum256([]byte(src))
	c.mu.Lock()
	if e, ok := c.entries.Get(sum); ok {
		c.mu.Unlock()
		select {
		case <-e.done:
			c.hits.Add(1)
		default:
			<-e.done
			c.coalesced.Add(1)
		}
		return e.prog, e.err
	}
	e := &parseEntry{done: make(chan struct{})}
	if _, _, _, _, evicted := c.entries.Add(sum, e); evicted {
		c.evictions.Add(1)
	}
	c.mu.Unlock()

	c.misses.Add(1)
	e.prog, e.err = Parse(src)
	close(e.done)
	return e.prog, e.err
}

// CompileStats is a point-in-time snapshot of CompileCache counters.
type CompileStats struct {
	// Hits are sources answered from the cache; Misses are real
	// parse+compile runs.
	Hits   uint64
	Misses uint64
	// Coalesced are lookups that joined an in-flight compile of the same
	// source and shared its result.
	Coalesced uint64
	// Evictions are entries dropped to keep the cache under its cap.
	Evictions uint64
	// Entries is the number of distinct sources currently cached.
	Entries uint64
}

type compileEntry struct {
	done chan struct{}
	prog *Compiled
	err  error
}

// CompileCache memoizes Compile keyed by source content, layered over a
// parse function (typically ParseCache.Parse, so parse dedup and its
// stats stay live underneath). Compiled programs are immutable — every
// per-run mutable structure (frames, closures, this bindings) is
// allocated at execution time — so one cached *Compiled is safe to run
// concurrently from many realms. Failures are cached too: the same
// source always fails the same way.
type CompileCache struct {
	mu      sync.Mutex
	entries *lru.Cache[[sha256.Size]byte, *compileEntry]
	parse   func(string) (*Program, error)

	hits, misses, coalesced, evictions atomic.Uint64
}

// NewCompileCache creates an empty, unbounded cache parsing with the
// package Parse; use NewBoundedCompileCache to cap it or layer it over
// a ParseCache.
func NewCompileCache() *CompileCache {
	return NewBoundedCompileCache(0, nil)
}

// NewBoundedCompileCache creates a cache holding at most maxEntries
// distinct sources (<= 0 = unbounded), evicted least-recently-used.
// parse supplies the program for a source; nil means the package Parse.
func NewBoundedCompileCache(maxEntries int, parse func(string) (*Program, error)) *CompileCache {
	if parse == nil {
		parse = Parse
	}
	return &CompileCache{
		entries: lru.New[[sha256.Size]byte, *compileEntry](maxEntries),
		parse:   parse,
	}
}

// Compile returns the cached compiled program for src, parsing and
// lowering it on first sight. Concurrent first sights of the same
// source are de-duplicated: one caller compiles, the rest wait and
// share the result.
func (c *CompileCache) Compile(src string) (*Compiled, error) {
	sum := sha256.Sum256([]byte(src))
	c.mu.Lock()
	if e, ok := c.entries.Get(sum); ok {
		c.mu.Unlock()
		select {
		case <-e.done:
			c.hits.Add(1)
		default:
			<-e.done
			c.coalesced.Add(1)
		}
		return e.prog, e.err
	}
	e := &compileEntry{done: make(chan struct{})}
	if _, _, _, _, evicted := c.entries.Add(sum, e); evicted {
		c.evictions.Add(1)
	}
	c.mu.Unlock()

	c.misses.Add(1)
	var prog *Program
	if prog, e.err = c.parse(src); e.err == nil {
		e.prog, e.err = Compile(prog)
	}
	close(e.done)
	return e.prog, e.err
}

// Stats snapshots the cache counters.
func (c *CompileCache) Stats() CompileStats {
	c.mu.Lock()
	entries := uint64(c.entries.Len())
	c.mu.Unlock()
	return CompileStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
	}
}

// Stats snapshots the cache counters.
func (c *ParseCache) Stats() ParseStats {
	c.mu.Lock()
	entries := uint64(c.entries.Len())
	c.mu.Unlock()
	return ParseStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
	}
}
