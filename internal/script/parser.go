package script

import (
	"fmt"
	"strings"
)

type parser struct {
	toks []Tok
	pos  int
}

// Parse lexes and parses a program.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.atEOF() {
		stmt, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog.Body = append(prog.Body, stmt)
	}
	return prog, nil
}

func (p *parser) atEOF() bool { return p.toks[p.pos].Kind == TokEOF }

func (p *parser) cur() Tok { return p.toks[p.pos] }

func (p *parser) advance() Tok {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) isPunct(text string) bool {
	t := p.cur()
	return t.Kind == TokPunct && t.Text == text
}

func (p *parser) isKeyword(text string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == text
}

func (p *parser) eatPunct(text string) bool {
	if p.isPunct(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(text string) error {
	if !p.eatPunct(text) {
		return p.errf("expected %q, found %q", text, p.cur().Text)
	}
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Line: p.cur().Line, Msg: fmt.Sprintf(format, args...)}
}

// eatSemi consumes optional semicolons (ASI is approximated by making
// semicolons optional everywhere a statement ends).
func (p *parser) eatSemi() {
	for p.eatPunct(";") {
	}
}

func (p *parser) statement() (Node, error) {
	t := p.cur()
	if t.Kind == TokKeyword {
		switch t.Text {
		case "var", "let", "const":
			return p.varDecl()
		case "function":
			return p.funcDecl()
		case "if":
			return p.ifStmt()
		case "while":
			return p.whileStmt()
		case "switch":
			return p.switchStmt()
		case "do":
			return p.doWhileStmt()
		case "for":
			return p.forStmt()
		case "return":
			p.advance()
			var x Node
			if !p.isPunct(";") && !p.isPunct("}") && !p.atEOF() {
				var err error
				x, err = p.expression()
				if err != nil {
					return nil, err
				}
			}
			p.eatSemi()
			return &ReturnStmt{X: x}, nil
		case "break":
			p.advance()
			p.eatSemi()
			return &BreakStmt{}, nil
		case "continue":
			p.advance()
			p.eatSemi()
			return &ContinueStmt{}, nil
		case "throw":
			p.advance()
			x, err := p.expression()
			if err != nil {
				return nil, err
			}
			p.eatSemi()
			return &ThrowStmt{X: x}, nil
		case "try":
			return p.tryStmt()
		case "async":
			// `async function` — the interpreter is synchronous; async is
			// a no-op wrapper.
			p.advance()
			if p.isKeyword("function") {
				return p.funcDecl()
			}
			return nil, p.errf("async without function")
		}
	}
	if p.isPunct("{") {
		return p.block()
	}
	if p.isPunct(";") {
		p.advance()
		return &BlockStmt{}, nil
	}
	x, err := p.expression()
	if err != nil {
		return nil, err
	}
	p.eatSemi()
	return &ExprStmt{X: x}, nil
}

func (p *parser) varDecl() (Node, error) {
	p.advance() // var/let/const
	block := &SeqStmt{}
	for {
		t := p.cur()
		if t.Kind != TokIdent {
			return nil, p.errf("expected variable name, found %q", t.Text)
		}
		p.advance()
		decl := &VarDecl{Name: t.Text, Line: t.Line}
		if p.eatPunct("=") {
			init, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			decl.Init = init
		}
		block.Body = append(block.Body, decl)
		if !p.eatPunct(",") {
			break
		}
	}
	p.eatSemi()
	if len(block.Body) == 1 {
		return block.Body[0], nil
	}
	return block, nil
}

func (p *parser) funcDecl() (Node, error) {
	line := p.cur().Line
	p.advance() // function
	t := p.cur()
	if t.Kind != TokIdent {
		return nil, p.errf("expected function name")
	}
	p.advance()
	params, err := p.paramList()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Name: t.Text, Params: params, Body: body, Line: line}, nil
}

func (p *parser) paramList() ([]string, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var params []string
	for !p.isPunct(")") {
		p.eatPunct("...") // rest params collapse to a normal param
		t := p.cur()
		if t.Kind != TokIdent {
			return nil, p.errf("expected parameter name, found %q", t.Text)
		}
		p.advance()
		params = append(params, t.Text)
		// Default parameter values: parse and discard the default
		// expression (probe scripts rarely rely on them).
		if p.eatPunct("=") {
			if _, err := p.assignExpr(); err != nil {
				return nil, err
			}
		}
		if !p.eatPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return params, nil
}

func (p *parser) block() (*BlockStmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{}
	for !p.isPunct("}") {
		if p.atEOF() {
			return nil, p.errf("unterminated block")
		}
		stmt, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.Body = append(b.Body, stmt)
	}
	p.advance() // }
	return b, nil
}

func (p *parser) ifStmt() (Node, error) {
	p.advance() // if
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.statement()
	if err != nil {
		return nil, err
	}
	stmt := &IfStmt{Cond: cond, Then: then}
	if p.isKeyword("else") {
		p.advance()
		els, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmt.Else = els
	}
	return stmt, nil
}

func (p *parser) whileStmt() (Node, error) {
	p.advance() // while
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body}, nil
}

func (p *parser) forStmt() (Node, error) {
	p.advance() // for
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var init, cond, post Node
	var err error
	if !p.isPunct(";") {
		if p.isKeyword("var") || p.isKeyword("let") || p.isKeyword("const") {
			init, err = p.varDecl() // consumes the following ';' via eatSemi
		} else {
			init, err = p.expression()
			if err == nil {
				err = p.expectPunct(";")
			}
		}
		if err != nil {
			return nil, err
		}
		// for-in / for-of are not supported; varDecl would have consumed
		// the ident, and the next token would be `in`/`of`.
		if p.isKeyword("in") || p.isKeyword("of") {
			return nil, p.errf("for-in/for-of loops are not supported")
		}
	} else {
		p.advance()
	}
	if !p.isPunct(";") {
		cond, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		post, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &ForStmt{Init: init, Cond: cond, Post: post, Body: body}, nil
}

func (p *parser) switchStmt() (Node, error) {
	p.advance() // switch
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	tag, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	stmt := &SwitchStmt{Tag: tag}
	for !p.isPunct("}") {
		if p.atEOF() {
			return nil, p.errf("unterminated switch")
		}
		var c SwitchCase
		switch {
		case p.isKeyword("case"):
			p.advance()
			test, err := p.expression()
			if err != nil {
				return nil, err
			}
			c.Test = test
		case p.isKeyword("default"):
			p.advance()
		default:
			return nil, p.errf("expected case or default, found %q", p.cur().Text)
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		for !p.isKeyword("case") && !p.isKeyword("default") && !p.isPunct("}") {
			if p.atEOF() {
				return nil, p.errf("unterminated switch case")
			}
			s, err := p.statement()
			if err != nil {
				return nil, err
			}
			c.Body = append(c.Body, s)
		}
		stmt.Cases = append(stmt.Cases, c)
	}
	p.advance() // }
	return stmt, nil
}

func (p *parser) doWhileStmt() (Node, error) {
	p.advance() // do
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.isKeyword("while") {
		return nil, p.errf("expected while after do body")
	}
	p.advance()
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	p.eatSemi()
	return &DoWhileStmt{Body: body, Cond: cond}, nil
}

func (p *parser) tryStmt() (Node, error) {
	p.advance() // try
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	stmt := &TryStmt{Body: body}
	if p.isKeyword("catch") {
		p.advance()
		if p.eatPunct("(") {
			t := p.cur()
			if t.Kind != TokIdent {
				return nil, p.errf("expected catch parameter")
			}
			p.advance()
			stmt.CatchVar = t.Text
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		}
		c, err := p.block()
		if err != nil {
			return nil, err
		}
		stmt.Catch = c
	}
	if p.isKeyword("finally") {
		p.advance()
		f, err := p.block()
		if err != nil {
			return nil, err
		}
		stmt.Finally = f
	}
	if stmt.Catch == nil && stmt.Finally == nil {
		return nil, p.errf("try without catch or finally")
	}
	return stmt, nil
}

// ---- Expressions (precedence climbing) ----

func (p *parser) expression() (Node, error) {
	x, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	// Comma operator: evaluate both, yield the last.
	for p.isPunct(",") {
		line := p.cur().Line
		p.advance()
		y, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: ",", X: x, Y: y, Line: line}
	}
	return x, nil
}

func (p *parser) assignExpr() (Node, error) {
	// Arrow functions need lookahead: `ident =>` or `( params ) =>`.
	if fn, ok, err := p.tryArrow(); err != nil {
		return nil, err
	} else if ok {
		return fn, nil
	}
	x, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "=", "+=", "-=", "*=", "/=":
			switch x.(type) {
			case *Ident, *Member:
			default:
				return nil, p.errf("invalid assignment target")
			}
			p.advance()
			val, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			return &Assign{Op: t.Text, Target: x, Val: val, Line: t.Line}, nil
		}
	}
	return x, nil
}

// tryArrow attempts to parse an arrow function at the current position.
func (p *parser) tryArrow() (Node, bool, error) {
	start := p.pos
	line := p.cur().Line
	// async (…) => — skip the async.
	if p.isKeyword("async") {
		p.advance()
	}
	var params []string
	switch {
	case p.cur().Kind == TokIdent:
		params = []string{p.cur().Text}
		p.advance()
	case p.isPunct("("):
		depth := 0
		// Scan ahead to check whether `) =>` follows; only then commit.
		i := p.pos
		for ; i < len(p.toks); i++ {
			t := p.toks[i]
			if t.Kind == TokPunct && t.Text == "(" {
				depth++
			}
			if t.Kind == TokPunct && t.Text == ")" {
				depth--
				if depth == 0 {
					break
				}
			}
			if t.Kind == TokEOF {
				break
			}
		}
		if i+1 >= len(p.toks) || p.toks[i+1].Kind != TokPunct || p.toks[i+1].Text != "=>" {
			p.pos = start
			return nil, false, nil
		}
		var err error
		params, err = p.paramList()
		if err != nil {
			p.pos = start
			return nil, false, nil
		}
	default:
		p.pos = start
		return nil, false, nil
	}
	if !p.isPunct("=>") {
		p.pos = start
		return nil, false, nil
	}
	p.advance() // =>
	fn := &FuncLit{Params: params, Line: line}
	if p.isPunct("{") {
		body, err := p.block()
		if err != nil {
			return nil, false, err
		}
		fn.Body = body
	} else {
		x, err := p.assignExpr()
		if err != nil {
			return nil, false, err
		}
		fn.ExprBody = x
	}
	return fn, true, nil
}

func (p *parser) condExpr() (Node, error) {
	x, err := p.binaryExpr(0)
	if err != nil {
		return nil, err
	}
	if p.isPunct("?") && !p.isPunct("?.") {
		p.advance()
		then, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		els, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		return &Cond{Test: x, Then: then, Else: els}, nil
	}
	return x, nil
}

// binary operator precedence, low to high.
var binaryPrec = map[string]int{
	"??": 1, "||": 1, "&&": 2,
	"|": 3, "^": 3, "&": 3,
	"==": 4, "!=": 4, "===": 4, "!==": 4,
	"<": 5, ">": 5, "<=": 5, ">=": 5, "in": 5,
	"+": 6, "-": 6,
	"*": 7, "/": 7, "%": 7,
}

func (p *parser) binaryExpr(minPrec int) (Node, error) {
	x, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		op := t.Text
		var prec int
		var ok bool
		if t.Kind == TokPunct {
			prec, ok = binaryPrec[op]
		} else if t.Kind == TokKeyword && op == "in" {
			prec, ok = binaryPrec[op]
		}
		if !ok || prec < minPrec {
			return x, nil
		}
		line := t.Line
		p.advance()
		y, err := p.binaryExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		switch op {
		case "&&", "||", "??":
			x = &Logical{Op: op, X: x, Y: y, Line: line}
		default:
			x = &Binary{Op: op, X: x, Y: y, Line: line}
		}
	}
}

func (p *parser) unaryExpr() (Node, error) {
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "!", "-", "+", "~":
			p.advance()
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: t.Text, X: x}, nil
		case "++", "--":
			p.advance()
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &Update{Op: t.Text, Target: x}, nil
		}
	}
	if t.Kind == TokKeyword {
		switch t.Text {
		case "typeof", "delete", "await":
			p.advance()
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			if t.Text == "await" {
				// Synchronous interpreter: await unwraps promises, which
				// resolve eagerly; it is the identity here.
				return x, nil
			}
			return &Unary{Op: t.Text, X: x}, nil
		case "new":
			p.advance()
			// Parse the member expression that names the constructor,
			// WITHOUT consuming call parentheses: `new Error().stack`
			// must group as (new Error()).stack.
			callee, err := p.memberExprNoCall()
			if err != nil {
				return nil, err
			}
			var args []Node
			if p.isPunct("(") {
				args, err = p.argList()
				if err != nil {
					return nil, err
				}
			}
			return p.postfixFrom(&Call{Fn: callee, Args: args, New: true, Line: t.Line})
		}
	}
	return p.postfixExpr()
}

// memberExprNoCall parses primary followed by dot/bracket accesses but
// stops before call parentheses (for `new` callees).
func (p *parser) memberExprNoCall() (Node, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return x, nil
		}
		switch t.Text {
		case ".":
			p.advance()
			name := p.cur()
			if name.Kind != TokIdent && name.Kind != TokKeyword {
				return nil, p.errf("expected property name after '.'")
			}
			p.advance()
			x = &Member{Obj: x, Name: name.Text, Line: t.Line}
		case "[":
			p.advance()
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &Member{Obj: x, Index: idx, Line: t.Line}
		default:
			return x, nil
		}
	}
}

func (p *parser) postfixExpr() (Node, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	return p.postfixFrom(x)
}

// postfixFrom continues member/call/update suffixes on an already-parsed
// expression.
func (p *parser) postfixFrom(x Node) (Node, error) {
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return x, nil
		}
		switch t.Text {
		case ".", "?.":
			p.advance()
			// Optional call: fn?.(args).
			if t.Text == "?." && p.isPunct("(") {
				args, err := p.argList()
				if err != nil {
					return nil, err
				}
				x = &Call{Fn: x, Args: args, Optional: true, Line: t.Line}
				continue
			}
			name := p.cur()
			if name.Kind != TokIdent && name.Kind != TokKeyword {
				return nil, p.errf("expected property name after %q", t.Text)
			}
			p.advance()
			x = &Member{Obj: x, Name: name.Text, Optional: t.Text == "?.", Line: t.Line}
		case "[":
			p.advance()
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &Member{Obj: x, Index: idx, Line: t.Line}
		case "(":
			args, err := p.argList()
			if err != nil {
				return nil, err
			}
			x = &Call{Fn: x, Args: args, Line: t.Line}
		case "++", "--":
			p.advance()
			x = &Update{Op: t.Text, Target: x}
		default:
			return x, nil
		}
	}
}

func (p *parser) argList() ([]Node, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []Node
	for !p.isPunct(")") {
		if p.eatPunct("...") {
			x, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, &SpreadExpr{X: x})
		} else {
			x, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, x)
		}
		if !p.eatPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *parser) primary() (Node, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.advance()
		return &Lit{Val: Number(t.Num)}, nil
	case TokString:
		p.advance()
		return &Lit{Val: String(t.Text)}, nil
	case TokTemplate:
		p.advance()
		return expandTemplate(t.Text, t.Line)
	case TokIdent:
		p.advance()
		return &Ident{Name: t.Text, Line: t.Line}, nil
	case TokKeyword:
		switch t.Text {
		case "true":
			p.advance()
			return &Lit{Val: Bool(true)}, nil
		case "false":
			p.advance()
			return &Lit{Val: Bool(false)}, nil
		case "null":
			p.advance()
			return &Lit{Val: Null()}, nil
		case "undefined":
			p.advance()
			return &Lit{Val: Undefined()}, nil
		case "this":
			p.advance()
			return &ThisExpr{}, nil
		case "function":
			return p.funcLit()
		case "async":
			p.advance()
			if p.isKeyword("function") {
				return p.funcLit()
			}
			return nil, p.errf("async without function")
		}
	case TokPunct:
		switch t.Text {
		case "(":
			p.advance()
			x, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return x, nil
		case "{":
			return p.objectLit()
		case "[":
			return p.arrayLit()
		}
	}
	return nil, p.errf("unexpected token %q", t.Text)
}

// expandTemplate turns a template literal with ${...} interpolations
// into a string-concatenation expression. Nested braces inside the
// interpolation (object literals, blocks) are balanced.
func expandTemplate(raw string, line int) (Node, error) {
	var result Node = &Lit{Val: String("")}
	appendPart := func(n Node) {
		result = &Binary{Op: "+", X: result, Y: n, Line: line}
	}
	for i := 0; i < len(raw); {
		dollar := strings.Index(raw[i:], "${")
		if dollar < 0 {
			appendPart(&Lit{Val: String(raw[i:])})
			break
		}
		if dollar > 0 {
			appendPart(&Lit{Val: String(raw[i : i+dollar])})
		}
		i += dollar + 2
		depth := 1
		j := i
		for j < len(raw) && depth > 0 {
			switch raw[j] {
			case '{':
				depth++
			case '}':
				depth--
			}
			j++
		}
		if depth != 0 {
			return nil, &SyntaxError{Line: line, Msg: "unterminated ${ in template literal"}
		}
		exprSrc := raw[i : j-1]
		sub, err := Parse(exprSrc)
		if err != nil {
			return nil, &SyntaxError{Line: line, Msg: "invalid template interpolation: " + err.Error()}
		}
		if len(sub.Body) != 1 {
			return nil, &SyntaxError{Line: line, Msg: "template interpolation must be a single expression"}
		}
		es, ok := sub.Body[0].(*ExprStmt)
		if !ok {
			return nil, &SyntaxError{Line: line, Msg: "template interpolation must be an expression"}
		}
		appendPart(es.X)
		i = j
	}
	return result, nil
}

func (p *parser) funcLit() (Node, error) {
	line := p.cur().Line
	p.advance() // function
	// Optional name (ignored; named function expressions are rare in
	// probe scripts).
	if p.cur().Kind == TokIdent {
		p.advance()
	}
	params, err := p.paramList()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncLit{Params: params, Body: body, Line: line}, nil
}

func (p *parser) objectLit() (Node, error) {
	p.advance() // {
	lit := &ObjectLit{}
	for !p.isPunct("}") {
		t := p.cur()
		var key string
		switch t.Kind {
		case TokIdent, TokKeyword, TokString:
			key = t.Text
			p.advance()
		case TokNumber:
			key = t.Text
			p.advance()
		default:
			return nil, p.errf("expected object key, found %q", t.Text)
		}
		var val Node
		if p.eatPunct(":") {
			v, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			val = v
		} else if p.isPunct("(") {
			// Shorthand method: key(params) { ... }
			params, err := p.paramList()
			if err != nil {
				return nil, err
			}
			body, err := p.block()
			if err != nil {
				return nil, err
			}
			val = &FuncLit{Params: params, Body: body, Line: t.Line}
		} else {
			// Shorthand property {x} === {x: x}.
			val = &Ident{Name: key, Line: t.Line}
		}
		lit.Keys = append(lit.Keys, key)
		lit.Vals = append(lit.Vals, val)
		if !p.eatPunct(",") {
			break
		}
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return lit, nil
}

func (p *parser) arrayLit() (Node, error) {
	p.advance() // [
	lit := &ArrayLit{}
	for !p.isPunct("]") {
		x, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		lit.Elems = append(lit.Elems, x)
		if !p.eatPunct(",") {
			break
		}
	}
	if err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	return lit, nil
}
