package script

import (
	"testing"
)

func runAndGet(t *testing.T, src, varName string) Value {
	t.Helper()
	in := NewInterp()
	if err := in.Run(src, "t"); err != nil {
		t.Fatalf("run: %v", err)
	}
	v, _ := in.Global.Get(varName)
	return v
}

func TestSwitchBasic(t *testing.T) {
	src := `
	var result = '';
	var state = 'prompt';
	switch (state) {
	case 'granted':
		result = 'use';
		break;
	case 'prompt':
		result = 'ask';
		break;
	case 'denied':
		result = 'skip';
		break;
	default:
		result = 'unknown';
	}
	`
	if got := runAndGet(t, src, "result").ToString(); got != "ask" {
		t.Errorf("result = %q", got)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	src := `
	var hits = [];
	switch (2) {
	case 1:
		hits.push('one');
	case 2:
		hits.push('two');
	case 3:
		hits.push('three');
		break;
	case 4:
		hits.push('four');
	}
	var trace = hits.join(',');
	`
	if got := runAndGet(t, src, "trace").ToString(); got != "two,three" {
		t.Errorf("trace = %q", got)
	}
}

func TestSwitchDefaultPosition(t *testing.T) {
	// default in the middle still matches when nothing else does, and
	// falls through to subsequent cases.
	src := `
	var hits = [];
	switch ('nope') {
	case 'a':
		hits.push('a');
		break;
	default:
		hits.push('dflt');
	case 'b':
		hits.push('b');
		break;
	}
	var trace = hits.join(',');
	`
	if got := runAndGet(t, src, "trace").ToString(); got != "dflt,b" {
		t.Errorf("trace = %q", got)
	}
}

func TestSwitchNoMatchNoDefault(t *testing.T) {
	src := `
	var touched = false;
	switch (9) {
	case 1: touched = true; break;
	}
	`
	if runAndGet(t, src, "touched").Truthy() {
		t.Error("no case should run")
	}
}

func TestSwitchStrictMatching(t *testing.T) {
	// switch uses === : '2' must not match 2.
	src := `
	var result = 'none';
	switch ('2') {
	case 2: result = 'number'; break;
	case '2': result = 'string'; break;
	}
	`
	if got := runAndGet(t, src, "result").ToString(); got != "string" {
		t.Errorf("result = %q", got)
	}
}

func TestDoWhile(t *testing.T) {
	src := `
	var n = 0;
	do { n++; } while (n < 5);
	var once = 0;
	do { once++; } while (false);
	`
	in := NewInterp()
	if err := in.Run(src, "t"); err != nil {
		t.Fatal(err)
	}
	n, _ := in.Global.Get("n")
	once, _ := in.Global.Get("once")
	if n.Num() != 5 || once.Num() != 1 {
		t.Errorf("n=%v once=%v", n.ToString(), once.ToString())
	}
}

func TestDoWhileBreakContinue(t *testing.T) {
	src := `
	var sum = 0;
	var i = 0;
	do {
		i++;
		if (i === 3) { continue; }
		if (i > 5) { break; }
		sum += i;
	} while (true);
	`
	if got := runAndGet(t, src, "sum").Num(); got != 1+2+4+5 {
		t.Errorf("sum = %v", got)
	}
}

func TestSwitchSyntaxErrors(t *testing.T) {
	for _, src := range []string{
		"switch (x) { junk }",
		"switch (x) { case 1 }",
		"do { x() }", // missing while
	} {
		if err := NewInterp().Run(src, "t"); err == nil {
			t.Errorf("Run(%q): expected error", src)
		}
	}
}

func TestArrayReduce(t *testing.T) {
	src := `
	var sum = [1, 2, 3, 4].reduce(function (acc, x) { return acc + x; }, 0);
	var noInit = [5, 6].reduce(function (acc, x) { return acc + x; });
	`
	in := NewInterp()
	if err := in.Run(src, "t"); err != nil {
		t.Fatal(err)
	}
	sum, _ := in.Global.Get("sum")
	noInit, _ := in.Global.Get("noInit")
	if sum.Num() != 10 || noInit.Num() != 11 {
		t.Errorf("sum=%v noInit=%v", sum.ToString(), noInit.ToString())
	}
	if err := NewInterp().Run("[].reduce(function(a,b){return a})", "t"); err == nil {
		t.Error("reduce of empty array without init must error")
	}
}
