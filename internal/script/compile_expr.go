package script

import (
	"errors"
	"strings"
)

// Expression lowering with constant folding: Binary/Logical/Cond (and
// pure Unary) over literal operands collapse at compile time via the
// same applyBinary/applyUnary the tree-walker uses, so folding can
// never change semantics. Object and array literals never fold — each
// evaluation must produce a fresh mutable value.

func (c *compiler) compileExpr(n Node) (cexpr, error) {
	switch e := n.(type) {
	case *Lit:
		return litExpr(e.Val), nil
	case *Ident:
		return c.compileIdent(e.Name, e.Line), nil
	case *ThisExpr:
		if hops, slot, ok := c.resolve("this"); ok {
			return cexpr{fn: func(in *Interp, env *Env) (Value, error) {
				if v := envUp(env, hops).slots[slot]; v.kind != kindUnset {
					return v, nil
				}
				return Undefined(), nil
			}}, nil
		}
		return cexpr{fn: func(in *Interp, env *Env) (Value, error) {
			if v, ok := env.Get("this"); ok {
				return v, nil
			}
			return Undefined(), nil
		}}, nil
	case *Member:
		objX, err := c.compileExpr(e.Obj)
		if err != nil {
			return cexpr{}, err
		}
		name, line, optional := e.Name, e.Line, e.Optional
		if e.Index != nil {
			idxX, err := c.compileExpr(e.Index)
			if err != nil {
				return cexpr{}, err
			}
			return cexpr{fn: func(in *Interp, env *Env) (Value, error) {
				obj, err := objX.fn(in, env)
				if err != nil {
					return Undefined(), err
				}
				if optional && (obj.IsUndefined() || obj.IsNull()) {
					return Undefined(), nil
				}
				idx, err := idxX.fn(in, env)
				if err != nil {
					return Undefined(), err
				}
				return in.getIndexed(obj, idx, line)
			}}, nil
		}
		return cexpr{fn: func(in *Interp, env *Env) (Value, error) {
			obj, err := objX.fn(in, env)
			if err != nil {
				return Undefined(), err
			}
			if optional && (obj.IsUndefined() || obj.IsNull()) {
				return Undefined(), nil
			}
			return in.getMember(obj, name, line)
		}}, nil
	case *Call:
		return c.compileCall(e)
	case *Unary:
		xX, err := c.compileExpr(e.X)
		if err != nil {
			return cexpr{}, err
		}
		op := e.Op
		if xX.isLit {
			if v, err := applyUnary(op, xX.lit); err == nil {
				return litExpr(v), nil
			}
		}
		return cexpr{fn: func(in *Interp, env *Env) (Value, error) {
			x, err := xX.fn(in, env)
			if err != nil {
				if op == "typeof" {
					// typeof of an undefined variable is "undefined", not an error.
					var rt *RuntimeError
					if errors.As(err, &rt) && strings.HasSuffix(rt.Msg, "is not defined") {
						return String("undefined"), nil
					}
				}
				return Undefined(), err
			}
			return applyUnary(op, x)
		}}, nil
	case *Binary:
		xX, err := c.compileExpr(e.X)
		if err != nil {
			return cexpr{}, err
		}
		yX, err := c.compileExpr(e.Y)
		if err != nil {
			return cexpr{}, err
		}
		op, line := e.Op, e.Line
		if xX.isLit && yX.isLit {
			if v, err := applyBinary(op, xX.lit, yX.lit, line); err == nil {
				return litExpr(v), nil
			}
		}
		return cexpr{fn: func(in *Interp, env *Env) (Value, error) {
			x, err := xX.fn(in, env)
			if err != nil {
				return Undefined(), err
			}
			y, err := yX.fn(in, env)
			if err != nil {
				return Undefined(), err
			}
			return applyBinary(op, x, y, line)
		}}, nil
	case *Logical:
		xX, err := c.compileExpr(e.X)
		if err != nil {
			return cexpr{}, err
		}
		yX, err := c.compileExpr(e.Y)
		if err != nil {
			return cexpr{}, err
		}
		op := e.Op
		if xX.isLit {
			if logicalShortCircuits(op, xX.lit) {
				return litExpr(xX.lit), nil
			}
			return yX, nil
		}
		return cexpr{fn: func(in *Interp, env *Env) (Value, error) {
			x, err := xX.fn(in, env)
			if err != nil {
				return Undefined(), err
			}
			if logicalShortCircuits(op, x) {
				return x, nil
			}
			return yX.fn(in, env)
		}}, nil
	case *Cond:
		testX, err := c.compileExpr(e.Test)
		if err != nil {
			return cexpr{}, err
		}
		thenX, err := c.compileExpr(e.Then)
		if err != nil {
			return cexpr{}, err
		}
		elseX, err := c.compileExpr(e.Else)
		if err != nil {
			return cexpr{}, err
		}
		if testX.isLit {
			if testX.lit.Truthy() {
				return thenX, nil
			}
			return elseX, nil
		}
		return cexpr{fn: func(in *Interp, env *Env) (Value, error) {
			t, err := testX.fn(in, env)
			if err != nil {
				return Undefined(), err
			}
			if t.Truthy() {
				return thenX.fn(in, env)
			}
			return elseX.fn(in, env)
		}}, nil
	case *Assign:
		return c.compileAssign(e)
	case *Update:
		return c.compileUpdate(e)
	case *ObjectLit:
		vals := make([]cexpr, len(e.Vals))
		for i, v := range e.Vals {
			var err error
			if vals[i], err = c.compileExpr(v); err != nil {
				return cexpr{}, err
			}
		}
		keys := e.Keys
		return cexpr{fn: func(in *Interp, env *Env) (Value, error) {
			o := NewObject()
			for i, k := range keys {
				v, err := vals[i].fn(in, env)
				if err != nil {
					return Undefined(), err
				}
				o.Set(k, v)
			}
			return ObjectValue(o), nil
		}}, nil
	case *ArrayLit:
		elems := make([]cexpr, len(e.Elems))
		for i, el := range e.Elems {
			var err error
			if elems[i], err = c.compileExpr(el); err != nil {
				return cexpr{}, err
			}
		}
		return cexpr{fn: func(in *Interp, env *Env) (Value, error) {
			out := make([]Value, 0, len(elems))
			for i := range elems {
				v, err := elems[i].fn(in, env)
				if err != nil {
					return Undefined(), err
				}
				out = append(out, v)
			}
			return ArrayValue(out...), nil
		}}, nil
	case *FuncLit:
		cf, err := c.compileFunc("", e.Params, e.Body, e.ExprBody, e.Line)
		if err != nil {
			return cexpr{}, err
		}
		params, line := e.Params, e.Line
		return cexpr{fn: func(in *Interp, env *Env) (Value, error) {
			return FuncValue(&Closure{
				Params: params, compiled: cf, Env: env,
				ScriptURL: in.CurrentScriptURL(), Line: line,
			}), nil
		}}, nil
	case *SpreadExpr:
		return c.compileExpr(e.X)
	}
	return cexpr{}, errors.New("script: cannot compile node")
}

func logicalShortCircuits(op string, x Value) bool {
	switch op {
	case "&&":
		return !x.Truthy()
	case "||":
		return x.Truthy()
	case "??":
		return !x.IsUndefined() && !x.IsNull()
	}
	return false
}

// compileIdent resolves a variable read. A resolved slot still falls
// back to the dynamic chain while unset: a hoisted declaration does not
// bind its name until it executes, and the tree-walker would find an
// outer binding (or nothing) in the meantime.
func (c *compiler) compileIdent(name string, line int) cexpr {
	if hops, slot, ok := c.resolve(name); ok {
		return cexpr{fn: func(in *Interp, env *Env) (Value, error) {
			if v := envUp(env, hops).slots[slot]; v.kind != kindUnset {
				return v, nil
			}
			if v, ok := env.Get(name); ok {
				return v, nil
			}
			return Undefined(), in.rterr(line, "%s is not defined", name)
		}}
	}
	return cexpr{fn: func(in *Interp, env *Env) (Value, error) {
		if v, ok := env.Get(name); ok {
			return v, nil
		}
		return Undefined(), in.rterr(line, "%s is not defined", name)
	}}
}

// compileIdentWrite builds the sloppy-mode assignment path: write the
// resolved slot if its binding exists, otherwise walk the chain like
// Env.Assign (defining globally when absent).
func (c *compiler) compileIdentWrite(name string) func(env *Env, v Value) {
	if hops, slot, ok := c.resolve(name); ok {
		return func(env *Env, v Value) {
			sc := envUp(env, hops)
			if sc.slots[slot].kind != kindUnset {
				sc.slots[slot] = v
				return
			}
			env.Assign(name, v)
		}
	}
	return func(env *Env, v Value) { env.Assign(name, v) }
}

func (c *compiler) compileAssign(e *Assign) (cexpr, error) {
	valX, err := c.compileExpr(e.Val)
	if err != nil {
		return cexpr{}, err
	}
	op, line := e.Op, e.Line
	compound := op != "="
	binOp := strings.TrimSuffix(op, "=")
	switch t := e.Target.(type) {
	case *Ident:
		readX := c.compileIdent(t.Name, t.Line)
		write := c.compileIdentWrite(t.Name)
		return cexpr{fn: func(in *Interp, env *Env) (Value, error) {
			var cur Value
			if compound {
				var err error
				if cur, err = readX.fn(in, env); err != nil {
					return Undefined(), err
				}
			}
			val, err := valX.fn(in, env)
			if err != nil {
				return Undefined(), err
			}
			if compound {
				if val, err = applyBinary(binOp, cur, val, line); err != nil {
					return Undefined(), err
				}
			}
			write(env, val)
			return val, nil
		}}, nil
	case *Member:
		objX, err := c.compileExpr(t.Obj)
		if err != nil {
			return cexpr{}, err
		}
		var idxX cexpr
		hasIdx := t.Index != nil
		if hasIdx {
			if idxX, err = c.compileExpr(t.Index); err != nil {
				return cexpr{}, err
			}
		}
		name, tline := t.Name, t.Line
		return cexpr{fn: func(in *Interp, env *Env) (Value, error) {
			// Base and index evaluate exactly once, shared by the
			// compound-op read and the final write.
			base, err := objX.fn(in, env)
			if err != nil {
				return Undefined(), err
			}
			ref := memberRef{base: base, name: name}
			if hasIdx {
				idx, err := idxX.fn(in, env)
				if err != nil {
					return Undefined(), err
				}
				ref.idx, ref.hasIdx = idx, true
			}
			var cur Value
			if compound {
				if cur, err = in.readRef(ref, tline); err != nil {
					return Undefined(), err
				}
			}
			val, err := valX.fn(in, env)
			if err != nil {
				return Undefined(), err
			}
			if compound {
				if val, err = applyBinary(binOp, cur, val, line); err != nil {
					return Undefined(), err
				}
			}
			if err := in.writeRef(ref, val, line); err != nil {
				return Undefined(), err
			}
			return val, nil
		}}, nil
	}
	return cexpr{fn: func(in *Interp, env *Env) (Value, error) {
		return Undefined(), in.rterr(line, "invalid assignment target %T", e.Target)
	}}, nil
}

func (c *compiler) compileUpdate(e *Update) (cexpr, error) {
	delta := 1.0
	if e.Op == "--" {
		delta = -1
	}
	switch t := e.Target.(type) {
	case *Member:
		objX, err := c.compileExpr(t.Obj)
		if err != nil {
			return cexpr{}, err
		}
		var idxX cexpr
		hasIdx := t.Index != nil
		if hasIdx {
			if idxX, err = c.compileExpr(t.Index); err != nil {
				return cexpr{}, err
			}
		}
		name, line := t.Name, t.Line
		return cexpr{fn: func(in *Interp, env *Env) (Value, error) {
			base, err := objX.fn(in, env)
			if err != nil {
				return Undefined(), err
			}
			ref := memberRef{base: base, name: name}
			if hasIdx {
				idx, err := idxX.fn(in, env)
				if err != nil {
					return Undefined(), err
				}
				ref.idx, ref.hasIdx = idx, true
			}
			cur, err := in.readRef(ref, line)
			if err != nil {
				return Undefined(), err
			}
			nv := Number(cur.ToNumber() + delta)
			if err := in.writeRef(ref, nv, line); err != nil {
				return Undefined(), err
			}
			return nv, nil
		}}, nil
	case *Ident:
		readX := c.compileIdent(t.Name, t.Line)
		write := c.compileIdentWrite(t.Name)
		return cexpr{fn: func(in *Interp, env *Env) (Value, error) {
			cur, err := readX.fn(in, env)
			if err != nil {
				return Undefined(), err
			}
			nv := Number(cur.ToNumber() + delta)
			write(env, nv)
			return nv, nil
		}}, nil
	}
	return cexpr{fn: func(in *Interp, env *Env) (Value, error) {
		return Undefined(), in.rterr(0, "invalid update target %T", e.Target)
	}}, nil
}

func (c *compiler) compileCall(e *Call) (cexpr, error) {
	type argC struct {
		x      cexpr
		spread bool
	}
	args := make([]argC, len(e.Args))
	for i, a := range e.Args {
		if sp, ok := a.(*SpreadExpr); ok {
			x, err := c.compileExpr(sp.X)
			if err != nil {
				return cexpr{}, err
			}
			args[i] = argC{x: x, spread: true}
			continue
		}
		x, err := c.compileExpr(a)
		if err != nil {
			return cexpr{}, err
		}
		args[i] = argC{x: x}
	}
	evalArgs := func(in *Interp, env *Env) ([]Value, error) {
		out := make([]Value, 0, len(args))
		for i := range args {
			v, err := args[i].x.fn(in, env)
			if err != nil {
				return nil, err
			}
			if args[i].spread && v.kind == KindArray {
				out = append(out, v.arr.Elems...)
				continue
			}
			out = append(out, v)
		}
		return out, nil
	}
	isNew, optional, line := e.New, e.Optional, e.Line
	if m, ok := e.Fn.(*Member); ok && m.Index == nil {
		// Method call: the receiver binds this.
		objX, err := c.compileExpr(m.Obj)
		if err != nil {
			return cexpr{}, err
		}
		mName, mOpt, mLine := m.Name, m.Optional, m.Line
		return cexpr{fn: func(in *Interp, env *Env) (Value, error) {
			if err := in.step(line); err != nil {
				return Undefined(), err
			}
			this, err := objX.fn(in, env)
			if err != nil {
				return Undefined(), err
			}
			if mOpt && (this.IsUndefined() || this.IsNull()) {
				return Undefined(), nil
			}
			fnv, err := in.getMember(this, mName, mLine)
			if err != nil {
				return Undefined(), err
			}
			av, err := evalArgs(in, env)
			if err != nil {
				return Undefined(), err
			}
			return in.finishCall(fnv, this, av, mName, isNew, optional, line)
		}}, nil
	}
	fnX, err := c.compileExpr(e.Fn)
	if err != nil {
		return cexpr{}, err
	}
	var calleeName string
	if id, ok := e.Fn.(*Ident); ok {
		calleeName = id.Name
	}
	return cexpr{fn: func(in *Interp, env *Env) (Value, error) {
		if err := in.step(line); err != nil {
			return Undefined(), err
		}
		fnv, err := fnX.fn(in, env)
		if err != nil {
			return Undefined(), err
		}
		av, err := evalArgs(in, env)
		if err != nil {
			return Undefined(), err
		}
		return in.finishCall(fnv, Undefined(), av, calleeName, isNew, optional, line)
	}}, nil
}

// finishCall is the shared tail of both call paths: callable check,
// optional-call short-circuit, construct vs call dispatch.
func (in *Interp) finishCall(fnv, this Value, args []Value, calleeName string, isNew, optional bool, line int) (Value, error) {
	if !fnv.IsCallable() {
		if optional && (fnv.IsUndefined() || fnv.IsNull()) {
			return Undefined(), nil
		}
		if calleeName == "" {
			calleeName = "value"
		}
		return Undefined(), in.rterr(line, "%s is not a function", calleeName)
	}
	if isNew {
		return in.construct(fnv, args, line)
	}
	return in.call(fnv, this, args, line)
}
