package script

import (
	"fmt"
	"testing"
)

// TestParseCacheEviction: a bounded cache drops the least-recently-used
// source and re-parses it on the next sight.
func TestParseCacheEviction(t *testing.T) {
	c := NewBoundedParseCache(2)
	src := func(i int) string { return fmt.Sprintf("var x%d = %d;", i, i) }

	for i := 0; i < 3; i++ {
		if _, err := c.Parse(src(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Entries != 2 || s.Evictions != 1 {
		t.Fatalf("want 2 entries and 1 eviction, got %+v", s)
	}

	// src(0) was evicted: parsing it again is a miss; src(2) is a hit.
	if _, err := c.Parse(src(2)); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Hits != 1 {
		t.Fatalf("recently-used source not a hit: %+v", got)
	}
	if _, err := c.Parse(src(0)); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Misses != 4 {
		t.Fatalf("evicted source should re-parse (4 misses), got %+v", got)
	}
}
