package script

import (
	"strings"
	"testing"
)

// TestStringMethods sweeps the string surface real probe scripts use.
func TestStringMethods(t *testing.T) {
	tests := []struct{ expr, want string }{
		{"' padded '.trim()", "padded"},
		{"'a-b-c'.replace('-', '+')", "a+b-c"},
		{"'abcdef'.slice(1, 3)", "bc"},
		{"'abcdef'.substring(2)", "cdef"},
		{"'abcdef'.charAt(2)", "c"},
		{"'abcdef'.charAt(99)", ""},
		{"'abc'.toUpperCase()", "ABC"},
		{"'camera,mic'.startsWith('cam')", "true"},
		{"'camera,mic'.endsWith('mic')", "true"},
		{"'xyz'.indexOf('y')", "1"},
		{"'xyz'.indexOf('q')", "-1"},
		{"'a'.toString()", "a"},
		{"'one two'.split()[0]", "one two"},
		{"(5).toString()", "5"},
		{"(3.25).toFixed()", "3.25"},
	}
	for _, tt := range tests {
		if got := evalExpr(t, tt.expr).ToString(); got != tt.want {
			t.Errorf("%s = %q; want %q", tt.expr, got, tt.want)
		}
	}
}

func TestArrayMethods(t *testing.T) {
	tests := []struct{ expr, want string }{
		{"[1,2,3].pop()", "3"},
		{"[].pop()", "undefined"},
		{"[1,2,3].slice(1)", "2,3"},
		{"[1,2,3].slice(-2)", "2,3"},
		{"[1,2].concat([3,4], 5)", "1,2,3,4,5"},
		{"[1,2,3].find(function (x) { return x > 1; })", "2"},
		{"[1,2,3].some(function (x) { return x > 5; })", "false"},
		{"Array.isArray([1])", "true"},
		{"Array.isArray('no')", "false"},
		{"Array.from([7,8]).length", "2"},
		{"[3,1].includes(3)", "true"},
	}
	for _, tt := range tests {
		if got := evalExpr(t, tt.expr).ToString(); got != tt.want {
			t.Errorf("%s = %q; want %q", tt.expr, got, tt.want)
		}
	}
}

func TestObjectAndJSONBuiltins(t *testing.T) {
	in := NewInterp()
	src := `
	var a = {x: 1};
	Object.assign(a, {y: 2}, {z: 3});
	var keys = Object.keys(a).join(',');
	var entries = Object.entries(a).length;
	var json = JSON.stringify({b: true, n: 2, s: 'str', arr: [1, null]});
	`
	if err := in.Run(src, "t"); err != nil {
		t.Fatal(err)
	}
	keys, _ := in.Global.Get("keys")
	if keys.ToString() != "x,y,z" {
		t.Errorf("keys = %q", keys.ToString())
	}
	entries, _ := in.Global.Get("entries")
	if entries.Num() != 3 {
		t.Errorf("entries = %v", entries.ToString())
	}
	json, _ := in.Global.Get("json")
	if !strings.Contains(json.ToString(), `"arr":[1,null]`) || !strings.Contains(json.ToString(), `"b":true`) {
		t.Errorf("json = %q", json.ToString())
	}
}

func TestMathAndNumericBuiltins(t *testing.T) {
	tests := []struct{ expr, want string }{
		{"Math.floor(3.9)", "3"},
		{"Math.ceil(3.1)", "4"},
		{"Math.round(3.5)", "4"},
		{"Math.abs(-7)", "7"},
		{"Math.min(3, 1, 2)", "1"},
		{"Math.max(3, 9, 2)", "9"},
		{"parseInt('42.9')", "42"},
		{"parseFloat('2.5')", "2.5"},
		{"Number('8')", "8"},
		{"Number(true)", "1"},
		{"String(99)", "99"},
		{"Boolean('')", "false"},
		{"Boolean('x')", "true"},
		{"7 & 3", "3"},
		{"4 | 1", "5"},
		{"5 ^ 1", "4"},
		{"~0", "-1"},
		{"'x' in {x: 1}", "true"},
		{"'y' in {x: 1}", "false"},
		{"encodeURIComponent('a b')", "a%20b"},
	}
	for _, tt := range tests {
		if got := evalExpr(t, tt.expr).ToString(); got != tt.want {
			t.Errorf("%s = %q; want %q", tt.expr, got, tt.want)
		}
	}
}

func TestOperatorAssignsAndComma(t *testing.T) {
	in := NewInterp()
	src := `
	var n = 10;
	n -= 2; n *= 3; n /= 4; // 6
	var s = 'a'; s += 'b';
	var c = (1, 2, 3);
	`
	if err := in.Run(src, "t"); err != nil {
		t.Fatal(err)
	}
	n, _ := in.Global.Get("n")
	s, _ := in.Global.Get("s")
	c, _ := in.Global.Get("c")
	if n.Num() != 6 || s.ToString() != "ab" || c.Num() != 3 {
		t.Errorf("n=%v s=%v c=%v", n.ToString(), s.ToString(), c.ToString())
	}
}

func TestConstructUserFunction(t *testing.T) {
	in := NewInterp()
	src := `
	function Widget(name) { this.name = name; }
	var w = new Widget('chat');
	var n = w.name;
	function Factory() { return {made: true}; }
	var f = new Factory();
	var made = f.made;
	`
	if err := in.Run(src, "t"); err != nil {
		t.Fatal(err)
	}
	n, _ := in.Global.Get("n")
	made, _ := in.Global.Get("made")
	if n.ToString() != "chat" || !made.Truthy() {
		t.Errorf("n=%v made=%v", n.ToString(), made.ToString())
	}
}

func TestPromiseAllMixed(t *testing.T) {
	in := NewInterp()
	src := `
	var got = '';
	Promise.all([Promise.resolve(1), 2, Promise.resolve(3)]).then(function (vs) {
		got = vs.join('-');
	});
	var rejected = '';
	Promise.all([Promise.resolve(1), Promise.reject('bad')]).catch(function (e) {
		rejected = e;
	});
	`
	if err := in.Run(src, "t"); err != nil {
		t.Fatal(err)
	}
	got, _ := in.Global.Get("got")
	rejected, _ := in.Global.Get("rejected")
	if got.ToString() != "1-2-3" {
		t.Errorf("got = %q", got.ToString())
	}
	if rejected.ToString() != "bad" {
		t.Errorf("rejected = %q", rejected.ToString())
	}
}

func TestTimersAndConsole(t *testing.T) {
	in := NewInterp()
	src := `
	var ticks = 0;
	var id = setTimeout(function () { ticks++; }, 100);
	clearTimeout(id);
	var iv = setInterval(function () { ticks += 10; }, 100);
	clearInterval(iv);
	console.log('hello', ticks);
	console.warn('warn'); console.error('err'); console.info('info'); console.debug('dbg');
	`
	if err := in.Run(src, "t"); err != nil {
		t.Fatal(err)
	}
	ticks, _ := in.Global.Get("ticks")
	// setTimeout/setInterval run synchronously once in this model.
	if ticks.Num() != 11 {
		t.Errorf("ticks = %v", ticks.ToString())
	}
}

func TestStringEscapesAndComments(t *testing.T) {
	in := NewInterp()
	src := "// line comment\n" +
		"/* block\ncomment */\n" +
		`var s = 'tab\there\nnewline\rret\\slash\'quote';` + "\n" +
		"var hex = 0xFF;"
	if err := in.Run(src, "t"); err != nil {
		t.Fatal(err)
	}
	s, _ := in.Global.Get("s")
	if !strings.Contains(s.ToString(), "\t") || !strings.Contains(s.ToString(), "\n") ||
		!strings.Contains(s.ToString(), `\slash`) || !strings.Contains(s.ToString(), "'quote") {
		t.Errorf("escapes: %q", s.ToString())
	}
	hex, _ := in.Global.Get("hex")
	if hex.Num() != 255 {
		t.Errorf("hex = %v", hex.ToString())
	}
}

func TestValueConversions(t *testing.T) {
	tests := []struct{ expr, want string }{
		{"typeof true", "boolean"},
		{"typeof 1.5", "number"},
		{"typeof null", "object"},
		{"typeof [1]", "object"},
		{"typeof function () {}", "function"},
		{"'' + [1,2]", "1,2"},
		{"'' + {a:1}", "[object Object]"},
		{"'' + null", "null"},
		{"'' + undefined", "undefined"},
		{"1 + true", "2"},
		{"'3' * 2", "6"},
		{"'abc' < 'abd'", "true"},
		{"5 >= 5", "true"},
		{"false == 0", "true"},
		{"'0.5' / 1", "0.5"},
	}
	for _, tt := range tests {
		if got := evalExpr(t, tt.expr).ToString(); got != tt.want {
			t.Errorf("%s = %q; want %q", tt.expr, got, tt.want)
		}
	}
}

func TestCallFunctionFromHost(t *testing.T) {
	in := NewInterp()
	if err := in.Run("function add(a, b) { return a + b; }", "t"); err != nil {
		t.Fatal(err)
	}
	fn, _ := in.Global.Get("add")
	got, err := in.CallFunction(fn, Undefined(), []Value{Number(2), Number(3)})
	if err != nil || got.Num() != 5 {
		t.Errorf("CallFunction = %v, %v", got.ToString(), err)
	}
	if _, err := in.CallFunction(String("not callable"), Undefined(), nil); err == nil {
		t.Error("calling a string must fail")
	}
}

func TestErrorMessageProperty(t *testing.T) {
	in := NewInterp()
	src := `
	var e = new Error('boom');
	var msg = e.message;
	var hasStack = e.stack.length > 0;
	var te = new TypeError('typed');
	var tmsg = te.message;
	`
	if err := in.Run(src, "t"); err != nil {
		t.Fatal(err)
	}
	msg, _ := in.Global.Get("msg")
	hasStack, _ := in.Global.Get("hasStack")
	tmsg, _ := in.Global.Get("tmsg")
	if msg.ToString() != "boom" || !hasStack.Truthy() || tmsg.ToString() != "typed" {
		t.Errorf("msg=%q hasStack=%v tmsg=%q", msg.ToString(), hasStack.Truthy(), tmsg.ToString())
	}
}

func TestArrayIndexAssignmentGrowth(t *testing.T) {
	in := NewInterp()
	if err := in.Run("var a = [1]; a[3] = 9; var len = a.length; var hole = a[2];", "t"); err != nil {
		t.Fatal(err)
	}
	length, _ := in.Global.Get("len")
	hole, _ := in.Global.Get("hole")
	if length.Num() != 4 || !hole.IsUndefined() {
		t.Errorf("len=%v hole=%v", length.ToString(), hole.ToString())
	}
}

func TestObjectBracketAssignment(t *testing.T) {
	in := NewInterp()
	if err := in.Run("var o = {}; o['k' + 1] = 'v'; var got = o.k1;", "t"); err != nil {
		t.Fatal(err)
	}
	got, _ := in.Global.Get("got")
	if got.ToString() != "v" {
		t.Errorf("got = %q", got.ToString())
	}
	// Assigning a property on a primitive fails like a TypeError.
	if err := NewInterp().Run("var n = 5; n.x = 1;", "t"); err == nil {
		t.Error("property assignment on number must fail")
	}
}

// Non-element computed indices on an array (negative, fractional)
// become property sets instead of being silently dropped.
func TestArrayNonElementIndexAssignment(t *testing.T) {
	in := NewInterp()
	if err := in.Run(`var a = [5];
	a[-1] = 'neg'; a[1.5] = 'frac';
	var neg = a[-1]; var frac = a[1.5]; var len = a.length;`, "t"); err != nil {
		t.Fatal(err)
	}
	neg, _ := in.Global.Get("neg")
	frac, _ := in.Global.Get("frac")
	length, _ := in.Global.Get("len")
	if neg.ToString() != "neg" || frac.ToString() != "frac" || length.Num() != 1 {
		t.Errorf("neg=%q frac=%q len=%v", neg.ToString(), frac.ToString(), length.ToString())
	}
}

// Compound member/index assignment evaluates the target object and
// the index expression exactly once.
func TestCompoundMemberSingleEvaluation(t *testing.T) {
	in := NewInterp()
	if err := in.Run(`var baseCalls = 0, idxCalls = 0;
	var o = { n: 1 };
	function base() { baseCalls++; return o; }
	function idx() { idxCalls++; return 0; }
	base().n += 4;
	var a = [10];
	a[idx()] += 5;
	var n = o.n; var el = a[0];`, "t"); err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		v, _ := in.Global.Get(name)
		return v.Num()
	}
	if get("baseCalls") != 1 || get("n") != 5 {
		t.Errorf("base() calls=%v o.n=%v; want 1 and 5", get("baseCalls"), get("n"))
	}
	if get("idxCalls") != 1 || get("el") != 15 {
		t.Errorf("idx() calls=%v a[0]=%v; want 1 and 15", get("idxCalls"), get("el"))
	}
}
