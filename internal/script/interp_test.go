package script

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

// evalExpr runs `var __r = <expr>` and returns __r.
func evalExpr(t *testing.T, expr string) Value {
	t.Helper()
	in := NewInterp()
	if err := in.Run("var __r = ("+expr+");", "test://expr"); err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	v, _ := in.Global.Get("__r")
	return v
}

func TestArithmeticAndStrings(t *testing.T) {
	tests := []struct {
		expr string
		want string
	}{
		{"1 + 2 * 3", "7"},
		{"(1 + 2) * 3", "9"},
		{"10 % 3", "1"},
		{"'a' + 'b'", "ab"},
		{"'n=' + 5", "n=5"},
		{"1 < 2", "true"},
		{"'abc'.length", "3"},
		{"'A-B-C'.split('-').length", "3"},
		{"'Hello'.toLowerCase()", "hello"},
		{"'camera,mic'.includes('mic')", "true"},
		{"[1,2,3].length", "3"},
		{"[1,2,3].indexOf(2)", "1"},
		{"[1,2,3].join('|')", "1|2|3"},
		{"typeof 'x'", "string"},
		{"typeof undefined", "undefined"},
		{"typeof {}", "object"},
		{"typeof missingVar", "undefined"},
		{"true ? 'y' : 'n'", "y"},
		{"null == undefined", "true"},
		{"null === undefined", "false"},
		{"'5' == 5", "true"},
		{"'5' === 5", "false"},
		{"!0", "true"},
		{"1 && 2", "2"},
		{"0 || 'fallback'", "fallback"},
		{"null ?? 'dflt'", "dflt"},
		{"0 ?? 'dflt'", "0"},
		{"0x10", "16"},
		{"3.5 + 1", "4.5"},
		{"`template`", "template"},
		{"-(-3)", "3"},
	}
	for _, tt := range tests {
		if got := evalExpr(t, tt.expr).ToString(); got != tt.want {
			t.Errorf("%s = %q; want %q", tt.expr, got, tt.want)
		}
	}
}

func TestVariablesAndFunctions(t *testing.T) {
	in := NewInterp()
	src := `
	var total = 0;
	function add(a, b) { return a + b; }
	const inc = (x) => x + 1;
	let dbl = function (x) { return x * 2; };
	total = add(inc(1), dbl(3)); // 2 + 6
	`
	if err := in.Run(src, "test://fn"); err != nil {
		t.Fatal(err)
	}
	v, _ := in.Global.Get("total")
	if v.ToString() != "8" {
		t.Errorf("total = %s; want 8", v.ToString())
	}
}

func TestHoisting(t *testing.T) {
	in := NewInterp()
	if err := in.Run("var r = later(); function later() { return 42; }", "t"); err != nil {
		t.Fatal(err)
	}
	v, _ := in.Global.Get("r")
	if v.Num() != 42 {
		t.Errorf("hoisted call = %v", v.ToString())
	}
}

func TestClosures(t *testing.T) {
	in := NewInterp()
	src := `
	function counter() {
		var n = 0;
		return function () { n = n + 1; return n; };
	}
	var c = counter();
	c(); c();
	var result = c();
	`
	if err := in.Run(src, "t"); err != nil {
		t.Fatal(err)
	}
	v, _ := in.Global.Get("result")
	if v.Num() != 3 {
		t.Errorf("closure counter = %v", v.ToString())
	}
}

func TestObjectsAndArrays(t *testing.T) {
	in := NewInterp()
	src := `
	var o = {name: 'camera', nested: {deep: true}, list: [1, 2]};
	var byDot = o.name;
	var byIndex = o['name'];
	var deep = o.nested.deep;
	o.added = 'yes';
	o.list.push(3);
	var len = o.list.length;
	var keys = Object.keys(o).join(',');
	var shorthandVal = 7;
	var sh = {shorthandVal};
	var shv = sh.shorthandVal;
	`
	if err := in.Run(src, "t"); err != nil {
		t.Fatal(err)
	}
	expect := map[string]string{
		"byDot": "camera", "byIndex": "camera", "deep": "true",
		"len": "3", "keys": "name,nested,list,added", "shv": "7",
	}
	for name, want := range expect {
		v, _ := in.Global.Get(name)
		if v.ToString() != want {
			t.Errorf("%s = %q; want %q", name, v.ToString(), want)
		}
	}
}

func TestControlFlow(t *testing.T) {
	in := NewInterp()
	src := `
	var evens = [];
	for (var i = 0; i < 10; i++) {
		if (i % 2 !== 0) { continue; }
		if (i > 6) { break; }
		evens.push(i);
	}
	var sum = 0;
	var j = 0;
	while (j < 5) { sum += j; j++; }
	var evensStr = evens.join(',');
	`
	if err := in.Run(src, "t"); err != nil {
		t.Fatal(err)
	}
	v, _ := in.Global.Get("evensStr")
	if v.ToString() != "0,2,4,6" {
		t.Errorf("evens = %q", v.ToString())
	}
	s, _ := in.Global.Get("sum")
	if s.Num() != 10 {
		t.Errorf("sum = %v", s.ToString())
	}
}

func TestTryCatchThrow(t *testing.T) {
	in := NewInterp()
	src := `
	var caught = '';
	try {
		throw 'boom';
	} catch (e) {
		caught = e;
	} finally {
		caught += '!';
	}
	var typeErrCaught = false;
	try {
		undefined.property;
	} catch (e) {
		typeErrCaught = true;
	}
	`
	if err := in.Run(src, "t"); err != nil {
		t.Fatal(err)
	}
	v, _ := in.Global.Get("caught")
	if v.ToString() != "boom!" {
		t.Errorf("caught = %q", v.ToString())
	}
	te, _ := in.Global.Get("typeErrCaught")
	if !te.Truthy() {
		t.Error("host TypeError must be catchable")
	}
}

func TestUncaughtThrow(t *testing.T) {
	in := NewInterp()
	err := in.Run("throw 'unhandled';", "t")
	var thrown *Thrown
	if !errors.As(err, &thrown) || thrown.V.ToString() != "unhandled" {
		t.Errorf("err = %v", err)
	}
}

func TestStepBudget(t *testing.T) {
	in := NewInterp()
	in.MaxSteps = 1000
	err := in.Run("while (true) { var x = 1; }", "t")
	if !errors.Is(err, ErrBudget) {
		t.Errorf("infinite loop: err = %v; want budget exhaustion", err)
	}
}

func TestErrorStackAttribution(t *testing.T) {
	// The Figure 1 mechanism: new Error().stack reveals the script URL
	// of the calling frames.
	in := NewInterp()
	src := `
	function helper() { return new Error().stack; }
	var stack = helper();
	`
	if err := in.Run(src, "https://thirdparty.example/track.js"); err != nil {
		t.Fatal(err)
	}
	v, _ := in.Global.Get("stack")
	if !strings.Contains(v.ToString(), "https://thirdparty.example/track.js") {
		t.Errorf("stack missing script URL: %q", v.ToString())
	}
	if !strings.Contains(v.ToString(), "at helper") {
		t.Errorf("stack missing frame name: %q", v.ToString())
	}
}

func TestCrossScriptAttribution(t *testing.T) {
	// A function defined by script A but invoked from script B must
	// attribute to A (its defining script), like a stack trace does.
	in := NewInterp()
	if err := in.Run("function fromA() { return new Error().stack; }", "https://a.example/a.js"); err != nil {
		t.Fatal(err)
	}
	if err := in.Run("var st = fromA();", "https://b.example/b.js"); err != nil {
		t.Fatal(err)
	}
	v, _ := in.Global.Get("st")
	if !strings.Contains(v.ToString(), "a.example/a.js") {
		t.Errorf("innermost frame should be a.js: %q", v.ToString())
	}
	if !strings.Contains(v.ToString(), "b.example/b.js") {
		t.Errorf("outer frame should be b.js: %q", v.ToString())
	}
}

func TestCallApplyBind(t *testing.T) {
	in := NewInterp()
	src := `
	function whoami() { return this.name; }
	var viaCall = whoami.call({name: 'call'});
	var viaApply = whoami.apply({name: 'apply'}, []);
	var bound = whoami.bind({name: 'bind'});
	var viaBind = bound();
	function sum(a, b) { return a + b; }
	var applied = sum.apply(null, [3, 4]);
	`
	if err := in.Run(src, "t"); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]string{
		"viaCall": "call", "viaApply": "apply", "viaBind": "bind", "applied": "7",
	} {
		v, _ := in.Global.Get(name)
		if v.ToString() != want {
			t.Errorf("%s = %q; want %q", name, v.ToString(), want)
		}
	}
}

func TestInstrumentationWrapperPattern(t *testing.T) {
	// The paper's Figure 1 verbatim pattern must work end to end: save
	// the original function, overwrite it with a logging wrapper, call
	// through with apply, and the instrumented call still works.
	in := NewInterp()
	host := NewObject()
	calls := 0
	host.Set("query", NativeValue("query", func(_ *Interp, _ Value, args []Value) (Value, error) {
		calls++
		return String("granted"), nil
	}))
	nav := NewObject()
	nav.Set("permissions", ObjectValue(host))
	in.Global.Define("navigator", ObjectValue(nav))
	src := `
	var origFunc = navigator.permissions.query;
	var logged = [];
	navigator.permissions.query = function () {
		var stacktrace = new Error().stack;
		logged.push(stacktrace);
		return origFunc.apply(this, arguments);
	};
	var result = navigator.permissions.query({name: 'camera'});
	`
	if err := in.Run(src, "https://site.example/main.js"); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("original function called %d times; want 1", calls)
	}
	r, _ := in.Global.Get("result")
	if r.ToString() != "granted" {
		t.Errorf("result = %q", r.ToString())
	}
	lg, _ := in.Global.Get("logged")
	if lg.Kind() != KindArray || len(lg.Arr().Elems) != 1 {
		t.Fatalf("logged = %v", lg.ToString())
	}
	if !strings.Contains(lg.Arr().Elems[0].ToString(), "site.example/main.js") {
		t.Errorf("stack: %q", lg.Arr().Elems[0].ToString())
	}
}

func TestPromises(t *testing.T) {
	in := NewInterp()
	src := `
	var order = [];
	Promise.resolve('v1').then(function (v) {
		order.push('then:' + v);
		return 'v2';
	}).then(function (v) {
		order.push('chain:' + v);
	});
	Promise.reject('bad').catch(function (e) { order.push('catch:' + e); });
	Promise.resolve(1).finally(function () { order.push('finally'); });
	var trace = order.join(' ');
	`
	if err := in.Run(src, "t"); err != nil {
		t.Fatal(err)
	}
	v, _ := in.Global.Get("trace")
	if v.ToString() != "then:v1 chain:v2 catch:bad finally" {
		t.Errorf("trace = %q", v.ToString())
	}
}

func TestAwaitUnwrapsEagerPromise(t *testing.T) {
	in := NewInterp()
	src := `
	async function probe() {
		var p = await Promise.resolve('ok');
		return p;
	}
	var got = probe();
	`
	if err := in.Run(src, "t"); err != nil {
		t.Fatal(err)
	}
	v, _ := in.Global.Get("got")
	// await returns the promise object itself in this synchronous model;
	// unwrap for comparison.
	if v.Kind() == KindObject && v.Obj().Class == "Promise" {
		v = v.Obj().GetOr("__value", Undefined())
	}
	if v.ToString() != "ok" {
		t.Errorf("await result = %q", v.ToString())
	}
}

func TestArrayHigherOrder(t *testing.T) {
	in := NewInterp()
	src := `
	var doubled = [1,2,3].map(function (x) { return x * 2; }).join(',');
	var bigs = [1,5,10].filter(function (x) { return x > 2; }).length;
	var found = ['camera','mic'].find(function (x) { return x === 'mic'; });
	var any = [1,2].some(function (x) { return x === 2; });
	var seen = [];
	['a','b'].forEach(function (x, i) { seen.push(i + ':' + x); });
	var seenStr = seen.join(' ');
	`
	if err := in.Run(src, "t"); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]string{
		"doubled": "2,4,6", "bigs": "2", "found": "mic", "any": "true", "seenStr": "0:a 1:b",
	} {
		v, _ := in.Global.Get(name)
		if v.ToString() != want {
			t.Errorf("%s = %q; want %q", name, v.ToString(), want)
		}
	}
}

func TestSpread(t *testing.T) {
	in := NewInterp()
	src := `
	function three(a, b, c) { return a + b + c; }
	var args = [1, 2, 3];
	var r = three(...args);
	`
	if err := in.Run(src, "t"); err != nil {
		t.Fatal(err)
	}
	v, _ := in.Global.Get("r")
	if v.Num() != 6 {
		t.Errorf("spread result = %v", v.ToString())
	}
}

func TestOptionalChaining(t *testing.T) {
	in := NewInterp()
	src := `
	var nav = {permissions: null};
	var a = nav.permissions?.query;
	var b = nav.missing?.anything;
	var safe = nav.permissions?.query?.('x');
	`
	if err := in.Run(src, "t"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "safe"} {
		v, _ := in.Global.Get(name)
		if !v.IsUndefined() {
			t.Errorf("%s = %v; want undefined", name, v.ToString())
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"var = 3;",
		"function () {}",
		"if (x {",
		"'unterminated",
		"for (x of y) {}",
		"@",
	}
	for _, src := range bad {
		if err := NewInterp().Run(src, "t"); err == nil {
			t.Errorf("Run(%q): expected error", src)
		}
	}
}

func TestDeterministicMathRandom(t *testing.T) {
	run := func() string {
		in := NewInterp()
		if err := in.Run("var r = '' + Math.random() + Math.random();", "t"); err != nil {
			t.Fatal(err)
		}
		v, _ := in.Global.Get("r")
		return v.ToString()
	}
	if run() != run() {
		t.Error("Math.random must be deterministic across interpreter instances")
	}
}

// Property: the parser never panics on arbitrary input.
func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: every program either runs to completion or returns an error
// within the step budget (no hangs).
func TestRunTerminates(t *testing.T) {
	snippets := []string{
		"while(1){}", "for(;;){}", "var i=0; while(i<1e9){i++}",
		"function f(){return f()} f()",
	}
	for _, src := range snippets {
		in := NewInterp()
		in.MaxSteps = 5000
		if err := in.Run(src, "t"); err == nil {
			t.Errorf("%q: expected an error (budget or stack)", src)
		}
	}
}

func BenchmarkInterpQueryLoop(b *testing.B) {
	src := `
	var total = 0;
	for (var i = 0; i < 100; i++) { total += i; }
	`
	prog, err := Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in := NewInterp()
		if err := in.RunProgram(prog, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}
