package script

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
)

// Env is a lexical scope. It has two storage modes:
//
//   - map mode (layout == nil): a name→value map, used by the global
//     scope and every scope the tree-walking interpreter creates;
//   - frame mode (layout != nil): a compile-time slot layout plus a
//     flat value slice, used by compiled activation records so a scope
//     costs one slice instead of a map allocation per entry.
//
// A frame slot whose value is the unset sentinel does not bind its name
// yet — hoisted slots come into existence only when their declaration
// executes, matching the map mode's "no key until Define" semantics.
type Env struct {
	vars   map[string]Value
	parent *Env
	layout *frameLayout
	slots  []Value
}

// kindUnset marks a frame slot whose declaration has not executed yet.
// It never escapes the Env accessors.
const kindUnset Kind = 0xFF

// frameLayout is the immutable compile-time shape of a frame-mode
// scope: slot names, their indexes, and whether frames of this shape
// may be recycled through the frame pool (no closure created anywhere
// in the scope's body can capture them).
type frameLayout struct {
	names    []string
	slotOf   map[string]int
	poolable bool
}

// framePool recycles poolable activation frames (and their slot
// slices) across compiled calls and block entries.
var framePool = sync.Pool{New: func() any { return &Env{} }}

// newFrame creates (or recycles) a frame-mode scope for a layout.
func newFrame(parent *Env, fl *frameLayout) *Env {
	n := len(fl.names)
	var e *Env
	if fl.poolable {
		e = framePool.Get().(*Env)
	} else {
		e = &Env{}
	}
	e.parent, e.layout, e.vars = parent, fl, nil
	if cap(e.slots) >= n {
		e.slots = e.slots[:n]
	} else {
		e.slots = make([]Value, n)
	}
	for i := range e.slots {
		e.slots[i] = Value{kind: kindUnset}
	}
	return e
}

// releaseFrame returns a poolable frame to the pool, dropping every
// value reference it holds.
func releaseFrame(e *Env) {
	for i := range e.slots {
		e.slots[i] = Value{}
	}
	e.parent, e.layout = nil, nil
	e.slots = e.slots[:0]
	framePool.Put(e)
}

// NewEnv creates a map-mode scope nested in parent (nil for the global
// scope).
func NewEnv(parent *Env) *Env {
	return &Env{vars: map[string]Value{}, parent: parent}
}

// Define declares a variable in this scope.
func (e *Env) Define(name string, v Value) {
	if e.layout != nil {
		if i, ok := e.layout.slotOf[name]; ok {
			e.slots[i] = v
			return
		}
		// A name the compiler did not lay out (host interop): spill to a
		// lazily-allocated side map.
		if e.vars == nil {
			e.vars = map[string]Value{}
		}
	}
	e.vars[name] = v
}

// Get resolves a name through the scope chain.
func (e *Env) Get(name string) (Value, bool) {
	for s := e; s != nil; s = s.parent {
		if s.layout != nil {
			if i, ok := s.layout.slotOf[name]; ok {
				if v := s.slots[i]; v.kind != kindUnset {
					return v, true
				}
				continue // hoisted but not yet declared — keep walking
			}
			if s.vars != nil {
				if v, ok := s.vars[name]; ok {
					return v, true
				}
			}
			continue
		}
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return Undefined(), false
}

// Assign sets an existing binding, or defines globally if absent
// (sloppy-mode semantics, which real probe scripts rely on).
func (e *Env) Assign(name string, v Value) {
	for s := e; s != nil; s = s.parent {
		if s.layout != nil {
			if i, ok := s.layout.slotOf[name]; ok && s.slots[i].kind != kindUnset {
				s.slots[i] = v
				return
			}
			if s.vars != nil {
				if _, ok := s.vars[name]; ok {
					s.vars[name] = v
					return
				}
			}
		} else if _, ok := s.vars[name]; ok {
			s.vars[name] = v
			return
		}
		if s.parent == nil {
			if s.vars == nil {
				s.vars = map[string]Value{}
			}
			s.vars[name] = v
			return
		}
	}
}

// envUp walks hops parents up the scope chain.
func envUp(e *Env, hops int) *Env {
	for ; hops > 0; hops-- {
		e = e.parent
	}
	return e
}

// control-flow sentinels.
type breakSignal struct{}
type continueSignal struct{}
type returnSignal struct{ v Value }

func (breakSignal) Error() string    { return "break outside loop" }
func (continueSignal) Error() string { return "continue outside loop" }
func (returnSignal) Error() string   { return "return outside function" }

// Thrown carries a JS-thrown value through Go error returns.
type Thrown struct{ V Value }

func (t *Thrown) Error() string { return "uncaught: " + t.V.ToString() }

// RuntimeError is an interpreter-level failure (TypeError analogue).
type RuntimeError struct {
	Msg  string
	Line int
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("script runtime error at line %d: %s", e.Line, e.Msg)
}

// ErrBudget is returned when a script exceeds its step budget — the
// analogue of the crawler's per-page timeout for runaway scripts.
var ErrBudget = errors.New("script: step budget exhausted")

// frame is one call-stack entry.
type frame struct {
	fnName    string
	scriptURL string
	line      int
}

// Interp executes programs against a shared global environment (one
// realm per document, like a browser).
type Interp struct {
	Global *Env
	// MaxSteps bounds evaluation steps per Run call.
	MaxSteps int
	// Host lets embedders (the webapi realm) attach per-realm state that
	// shared native functions recover at call time — the indirection that
	// makes one immutable global-object template serve every realm.
	Host  any
	steps int
	stack []frame
	// rng is a deterministic LCG for Math.random, keeping crawls
	// reproducible (C1-C14 of the paper's reproducibility appendix).
	rng uint64
}

// NewInterp creates an interpreter with standard builtins installed.
// The builtins are stamped from a shared snapshot rather than rebuilt:
// constructing a realm costs a shallow clone of a few namespace
// objects, not hundreds of fresh natives.
func NewInterp() *Interp {
	in := NewBareInterp()
	in.InstallSnapshot(builtinsSnapshot())
	return in
}

// Run parses and executes src. scriptURL labels stack frames for
// 1P/3P attribution.
func (in *Interp) Run(src, scriptURL string) error {
	prog, err := Parse(src)
	if err != nil {
		return err
	}
	return in.RunProgram(prog, scriptURL)
}

// RunProgram executes a parsed program.
func (in *Interp) RunProgram(prog *Program, scriptURL string) error {
	in.steps = 0
	in.stack = append(in.stack, frame{fnName: "<script>", scriptURL: scriptURL})
	defer func() { in.stack = in.stack[:len(in.stack)-1] }()
	// Hoist function declarations.
	for _, stmt := range prog.Body {
		if fd, ok := stmt.(*FuncDecl); ok {
			in.Global.Define(fd.Name, FuncValue(&Closure{
				Name: fd.Name, Params: fd.Params, Body: fd.Body,
				Env: in.Global, ScriptURL: scriptURL, Line: fd.Line,
			}))
		}
	}
	for _, stmt := range prog.Body {
		if _, ok := stmt.(*FuncDecl); ok {
			continue
		}
		if err := in.exec(stmt, in.Global); err != nil {
			return err
		}
	}
	return nil
}

// CurrentScriptURL reports the script URL of the innermost frame — the
// instrumentation's view of "who called this API".
func (in *Interp) CurrentScriptURL() string {
	if len(in.stack) == 0 {
		return ""
	}
	return in.stack[len(in.stack)-1].scriptURL
}

// StackTrace renders the call stack the way the paper's Figure 1
// captures it via new Error().stack.
func (in *Interp) StackTrace() string {
	var b strings.Builder
	b.WriteString("Error")
	for i := len(in.stack) - 1; i >= 0; i-- {
		f := in.stack[i]
		fmt.Fprintf(&b, "\n    at %s (%s:%d)", f.fnName, f.scriptURL, f.line)
	}
	return b.String()
}

// CallFunction invokes a callable Value from Go (used by the browser to
// fire event handlers and promise callbacks).
func (in *Interp) CallFunction(fn Value, this Value, args []Value) (Value, error) {
	return in.call(fn, this, args, 0)
}

func (in *Interp) step(line int) error {
	in.steps++
	if in.steps > in.MaxSteps {
		return ErrBudget
	}
	_ = line
	return nil
}

func (in *Interp) rterr(line int, format string, args ...any) error {
	return &RuntimeError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// ---- statement execution ----

func (in *Interp) exec(n Node, env *Env) error {
	if err := in.step(0); err != nil {
		return err
	}
	switch s := n.(type) {
	case *SeqStmt:
		for _, stmt := range s.Body {
			if err := in.exec(stmt, env); err != nil {
				return err
			}
		}
		return nil
	case *BlockStmt:
		inner := NewEnv(env)
		// Hoist nested function declarations.
		for _, stmt := range s.Body {
			if fd, ok := stmt.(*FuncDecl); ok {
				inner.Define(fd.Name, FuncValue(&Closure{
					Name: fd.Name, Params: fd.Params, Body: fd.Body,
					Env: inner, ScriptURL: in.CurrentScriptURL(), Line: fd.Line,
				}))
			}
		}
		for _, stmt := range s.Body {
			if _, ok := stmt.(*FuncDecl); ok {
				continue
			}
			if err := in.exec(stmt, inner); err != nil {
				return err
			}
		}
		return nil
	case *VarDecl:
		v := Undefined()
		if s.Init != nil {
			var err error
			v, err = in.eval(s.Init, env)
			if err != nil {
				return err
			}
		}
		env.Define(s.Name, v)
		return nil
	case *ExprStmt:
		_, err := in.eval(s.X, env)
		return err
	case *IfStmt:
		cond, err := in.eval(s.Cond, env)
		if err != nil {
			return err
		}
		if cond.Truthy() {
			return in.exec(s.Then, env)
		}
		if s.Else != nil {
			return in.exec(s.Else, env)
		}
		return nil
	case *WhileStmt:
		for {
			cond, err := in.eval(s.Cond, env)
			if err != nil {
				return err
			}
			if !cond.Truthy() {
				return nil
			}
			if err := in.execLoopBody(s.Body, env); err != nil {
				if _, brk := err.(breakSignal); brk {
					return nil
				}
				return err
			}
		}
	case *ForStmt:
		inner := NewEnv(env)
		if s.Init != nil {
			if err := in.exec(asStmt(s.Init), inner); err != nil {
				return err
			}
		}
		for {
			if s.Cond != nil {
				cond, err := in.eval(s.Cond, inner)
				if err != nil {
					return err
				}
				if !cond.Truthy() {
					return nil
				}
			}
			if err := in.execLoopBody(s.Body, inner); err != nil {
				if _, brk := err.(breakSignal); brk {
					return nil
				}
				return err
			}
			if s.Post != nil {
				if _, err := in.eval(s.Post, inner); err != nil {
					return err
				}
			}
		}
	case *SwitchStmt:
		tag, err := in.eval(s.Tag, env)
		if err != nil {
			return err
		}
		matched := -1
		defaultIdx := -1
		for i, c := range s.Cases {
			if c.Test == nil {
				defaultIdx = i
				continue
			}
			tv, err := in.eval(c.Test, env)
			if err != nil {
				return err
			}
			if StrictEquals(tag, tv) {
				matched = i
				break
			}
		}
		if matched < 0 {
			matched = defaultIdx
		}
		if matched < 0 {
			return nil
		}
		inner := NewEnv(env)
		for i := matched; i < len(s.Cases); i++ { // fallthrough semantics
			for _, stmt := range s.Cases[i].Body {
				if err := in.exec(stmt, inner); err != nil {
					if _, brk := err.(breakSignal); brk {
						return nil
					}
					return err
				}
			}
		}
		return nil
	case *DoWhileStmt:
		for {
			if err := in.execLoopBody(s.Body, env); err != nil {
				if _, brk := err.(breakSignal); brk {
					return nil
				}
				return err
			}
			cond, err := in.eval(s.Cond, env)
			if err != nil {
				return err
			}
			if !cond.Truthy() {
				return nil
			}
		}
	case *ReturnStmt:
		v := Undefined()
		if s.X != nil {
			var err error
			v, err = in.eval(s.X, env)
			if err != nil {
				return err
			}
		}
		return returnSignal{v: v}
	case *BreakStmt:
		return breakSignal{}
	case *ContinueStmt:
		return continueSignal{}
	case *ThrowStmt:
		v, err := in.eval(s.X, env)
		if err != nil {
			return err
		}
		return &Thrown{V: v}
	case *TryStmt:
		err := in.exec(s.Body, env)
		var thrown *Thrown
		if err != nil && errors.As(err, &thrown) && s.Catch != nil {
			inner := NewEnv(env)
			if s.CatchVar != "" {
				inner.Define(s.CatchVar, thrown.V)
			}
			err = in.exec(s.Catch, inner)
		} else if rt := (&RuntimeError{}); err != nil && errors.As(err, &rt) && s.Catch != nil {
			// Host TypeErrors are catchable, like in a browser.
			inner := NewEnv(env)
			if s.CatchVar != "" {
				eo := NewObject()
				eo.Class = "Error"
				eo.Set("message", String(rt.Msg))
				inner.Define(s.CatchVar, ObjectValue(eo))
			}
			err = in.exec(s.Catch, inner)
		}
		if s.Finally != nil {
			if ferr := in.exec(s.Finally, env); ferr != nil {
				return ferr
			}
		}
		return err
	case *FuncDecl:
		env.Define(s.Name, FuncValue(&Closure{
			Name: s.Name, Params: s.Params, Body: s.Body,
			Env: env, ScriptURL: in.CurrentScriptURL(), Line: s.Line,
		}))
		return nil
	default:
		// Expression used in statement position (from for-init).
		_, err := in.eval(n, env)
		return err
	}
}

// execLoopBody runs a loop body, translating continue into nil.
func (in *Interp) execLoopBody(body Node, env *Env) error {
	err := in.exec(body, env)
	if _, cont := err.(continueSignal); cont {
		return nil
	}
	return err
}

func asStmt(n Node) Node { return n }

// ---- expression evaluation ----

func (in *Interp) eval(n Node, env *Env) (Value, error) {
	if err := in.step(0); err != nil {
		return Undefined(), err
	}
	switch e := n.(type) {
	case *Lit:
		return e.Val, nil
	case *Ident:
		if v, ok := env.Get(e.Name); ok {
			return v, nil
		}
		return Undefined(), in.rterr(e.Line, "%s is not defined", e.Name)
	case *ThisExpr:
		if v, ok := env.Get("this"); ok {
			return v, nil
		}
		return Undefined(), nil
	case *Member:
		obj, err := in.eval(e.Obj, env)
		if err != nil {
			return Undefined(), err
		}
		if e.Optional && (obj.IsUndefined() || obj.IsNull()) {
			return Undefined(), nil
		}
		if e.Index != nil {
			idx, err := in.eval(e.Index, env)
			if err != nil {
				return Undefined(), err
			}
			return in.getIndexed(obj, idx, e.Line)
		}
		return in.getMember(obj, e.Name, e.Line)
	case *Call:
		return in.evalCall(e, env)
	case *Unary:
		x, err := in.eval(e.X, env)
		if err != nil {
			if e.Op == "typeof" {
				// typeof of an undefined variable is "undefined", not an error.
				var rt *RuntimeError
				if errors.As(err, &rt) && strings.HasSuffix(rt.Msg, "is not defined") {
					return String("undefined"), nil
				}
			}
			return Undefined(), err
		}
		return applyUnary(e.Op, x)
	case *Binary:
		return in.evalBinary(e, env)
	case *Logical:
		x, err := in.eval(e.X, env)
		if err != nil {
			return Undefined(), err
		}
		switch e.Op {
		case "&&":
			if !x.Truthy() {
				return x, nil
			}
		case "||":
			if x.Truthy() {
				return x, nil
			}
		case "??":
			if !x.IsUndefined() && !x.IsNull() {
				return x, nil
			}
		}
		return in.eval(e.Y, env)
	case *Cond:
		t, err := in.eval(e.Test, env)
		if err != nil {
			return Undefined(), err
		}
		if t.Truthy() {
			return in.eval(e.Then, env)
		}
		return in.eval(e.Else, env)
	case *Assign:
		return in.evalAssign(e, env)
	case *Update:
		delta := 1.0
		if e.Op == "--" {
			delta = -1
		}
		// Member targets resolve base and index exactly once, shared by
		// the read and the write (a[f()]++ must call f once).
		if m, ok := e.Target.(*Member); ok {
			ref, err := in.resolveRef(m, env)
			if err != nil {
				return Undefined(), err
			}
			cur, err := in.readRef(ref, m.Line)
			if err != nil {
				return Undefined(), err
			}
			nv := Number(cur.ToNumber() + delta)
			if err := in.writeRef(ref, nv, m.Line); err != nil {
				return Undefined(), err
			}
			return nv, nil
		}
		cur, err := in.eval(e.Target, env)
		if err != nil {
			return Undefined(), err
		}
		nv := Number(cur.ToNumber() + delta)
		id, ok := e.Target.(*Ident)
		if !ok {
			return Undefined(), in.rterr(0, "invalid update target %T", e.Target)
		}
		env.Assign(id.Name, nv)
		return nv, nil
	case *ObjectLit:
		o := NewObject()
		for i, k := range e.Keys {
			v, err := in.eval(e.Vals[i], env)
			if err != nil {
				return Undefined(), err
			}
			o.Set(k, v)
		}
		return ObjectValue(o), nil
	case *ArrayLit:
		elems := make([]Value, 0, len(e.Elems))
		for _, el := range e.Elems {
			v, err := in.eval(el, env)
			if err != nil {
				return Undefined(), err
			}
			elems = append(elems, v)
		}
		return ArrayValue(elems...), nil
	case *FuncLit:
		return FuncValue(&Closure{
			Params: e.Params, Body: e.Body, ExprBody: e.ExprBody,
			Env: env, ScriptURL: in.CurrentScriptURL(), Line: e.Line,
		}), nil
	case *SpreadExpr:
		return in.eval(e.X, env)
	}
	return Undefined(), in.rterr(0, "cannot evaluate %T", n)
}

func (in *Interp) evalBinary(e *Binary, env *Env) (Value, error) {
	x, err := in.eval(e.X, env)
	if err != nil {
		return Undefined(), err
	}
	y, err := in.eval(e.Y, env)
	if err != nil {
		return Undefined(), err
	}
	return applyBinary(e.Op, x, y, e.Line)
}

// applyUnary applies a unary operator to an evaluated operand. Pure,
// shared by the tree-walking and compiled paths (and compile-time
// folding). delete is evaluate-and-ignore: the interpreter has no
// property deletion, matching the tree-walker's historic behavior.
func applyUnary(op string, x Value) (Value, error) {
	switch op {
	case "!":
		return Bool(!x.Truthy()), nil
	case "-":
		return Number(-x.ToNumber()), nil
	case "+":
		return Number(x.ToNumber()), nil
	case "~":
		return Number(float64(^int64(x.ToNumber()))), nil
	case "typeof":
		return String(x.TypeOf()), nil
	case "delete":
		return Bool(true), nil
	}
	return Undefined(), &RuntimeError{Msg: fmt.Sprintf("unknown unary %q", op)}
}

// applyBinary applies a (non-short-circuit) binary operator to two
// already-evaluated values. It is pure, so the compiler folds constant
// operands through it at compile time, and the tree-walking and
// compiled paths share it for identical semantics.
func applyBinary(op string, x, y Value, line int) (Value, error) {
	switch op {
	case ",":
		return y, nil
	case "+":
		if x.kind == KindString || y.kind == KindString ||
			x.kind == KindArray || y.kind == KindArray ||
			x.kind == KindObject || y.kind == KindObject {
			return String(x.ToString() + y.ToString()), nil
		}
		return Number(x.ToNumber() + y.ToNumber()), nil
	case "-":
		return Number(x.ToNumber() - y.ToNumber()), nil
	case "*":
		return Number(x.ToNumber() * y.ToNumber()), nil
	case "/":
		return Number(x.ToNumber() / y.ToNumber()), nil
	case "%":
		return Number(math.Mod(x.ToNumber(), y.ToNumber())), nil
	case "==":
		return Bool(LooseEquals(x, y)), nil
	case "!=":
		return Bool(!LooseEquals(x, y)), nil
	case "===":
		return Bool(StrictEquals(x, y)), nil
	case "!==":
		return Bool(!StrictEquals(x, y)), nil
	case "<", ">", "<=", ">=":
		if x.kind == KindString && y.kind == KindString {
			switch op {
			case "<":
				return Bool(x.s < y.s), nil
			case ">":
				return Bool(x.s > y.s), nil
			case "<=":
				return Bool(x.s <= y.s), nil
			default:
				return Bool(x.s >= y.s), nil
			}
		}
		a, b := x.ToNumber(), y.ToNumber()
		switch op {
		case "<":
			return Bool(a < b), nil
		case ">":
			return Bool(a > b), nil
		case "<=":
			return Bool(a <= b), nil
		default:
			return Bool(a >= b), nil
		}
	case "&":
		return Number(float64(int64(x.ToNumber()) & int64(y.ToNumber()))), nil
	case "|":
		return Number(float64(int64(x.ToNumber()) | int64(y.ToNumber()))), nil
	case "^":
		return Number(float64(int64(x.ToNumber()) ^ int64(y.ToNumber()))), nil
	case "in":
		if y.kind == KindObject {
			_, ok := y.obj.Get(x.ToString())
			return Bool(ok), nil
		}
		return Bool(false), nil
	}
	return Undefined(), &RuntimeError{Line: line, Msg: fmt.Sprintf("unknown operator %q", op)}
}

func (in *Interp) evalAssign(e *Assign, env *Env) (Value, error) {
	switch t := e.Target.(type) {
	case *Ident:
		var cur Value
		if e.Op != "=" {
			var err error
			cur, err = in.eval(t, env)
			if err != nil {
				return Undefined(), err
			}
		}
		val, err := in.eval(e.Val, env)
		if err != nil {
			return Undefined(), err
		}
		if e.Op != "=" {
			val, err = applyBinary(strings.TrimSuffix(e.Op, "="), cur, val, e.Line)
			if err != nil {
				return Undefined(), err
			}
		}
		env.Assign(t.Name, val)
		return val, nil
	case *Member:
		// The base and index evaluate exactly once, shared by the
		// compound-op read and the final write (a[i++] += 1 bumps i once).
		ref, err := in.resolveRef(t, env)
		if err != nil {
			return Undefined(), err
		}
		var cur Value
		if e.Op != "=" {
			cur, err = in.readRef(ref, t.Line)
			if err != nil {
				return Undefined(), err
			}
		}
		val, err := in.eval(e.Val, env)
		if err != nil {
			return Undefined(), err
		}
		if e.Op != "=" {
			val, err = applyBinary(strings.TrimSuffix(e.Op, "="), cur, val, e.Line)
			if err != nil {
				return Undefined(), err
			}
		}
		if err := in.writeRef(ref, val, e.Line); err != nil {
			return Undefined(), err
		}
		return val, nil
	}
	return Undefined(), in.rterr(e.Line, "invalid assignment target %T", e.Target)
}

// memberRef is a member-assignment target with its base (and computed
// index, if any) already evaluated — each exactly once.
type memberRef struct {
	base   Value
	name   string // dot access
	idx    Value  // bracket access
	hasIdx bool
}

// resolveRef evaluates a member target's base and index expressions.
func (in *Interp) resolveRef(m *Member, env *Env) (memberRef, error) {
	base, err := in.eval(m.Obj, env)
	if err != nil {
		return memberRef{}, err
	}
	ref := memberRef{base: base, name: m.Name}
	if m.Index != nil {
		idx, err := in.eval(m.Index, env)
		if err != nil {
			return memberRef{}, err
		}
		ref.idx, ref.hasIdx = idx, true
	}
	return ref, nil
}

func (in *Interp) readRef(ref memberRef, line int) (Value, error) {
	if ref.hasIdx {
		return in.getIndexed(ref.base, ref.idx, line)
	}
	return in.getMember(ref.base, ref.name, line)
}

func (in *Interp) writeRef(ref memberRef, val Value, line int) error {
	if ref.hasIdx {
		return in.setIndexed(ref.base, ref.idx, val, line)
	}
	return in.setMember(ref.base, ref.name, val, line)
}

// arrayIndex reports whether idx selects an array element: a
// non-negative integer number. Everything else — negative, fractional,
// NaN, strings — addresses an object-style property instead.
func arrayIndex(idx Value) (int, bool) {
	if idx.kind != KindNumber {
		return 0, false
	}
	i := int(idx.n)
	if float64(i) != idx.n || i < 0 {
		return 0, false
	}
	return i, true
}

// getIndexed resolves obj[idx]: the array element fast path, then the
// generic member surface keyed by ToString(idx).
func (in *Interp) getIndexed(obj, idx Value, line int) (Value, error) {
	if obj.kind == KindArray {
		if i, ok := arrayIndex(idx); ok {
			if i < len(obj.arr.Elems) {
				return obj.arr.Elems[i], nil
			}
			return Undefined(), nil
		}
	}
	return in.getMember(obj, idx.ToString(), line)
}

// maxArrayGrow bounds how far a single out-of-range element write may
// extend an array — a runtime error beats an unbounded allocation from
// a[1e9] = x inside a hostile script.
const maxArrayGrow = 1 << 20

// setIndexed implements obj[idx] = val.
func (in *Interp) setIndexed(obj, idx, val Value, line int) error {
	if obj.kind == KindArray {
		if i, ok := arrayIndex(idx); ok {
			if i >= maxArrayGrow {
				return in.rterr(line, "array index %d exceeds growth limit", i)
			}
			for len(obj.arr.Elems) <= i {
				obj.arr.Elems = append(obj.arr.Elems, Undefined())
			}
			obj.arr.Elems[i] = val
			return nil
		}
	}
	return in.setMember(obj, idx.ToString(), val, line)
}

// setMember implements obj.name = val for every assignable base kind.
func (in *Interp) setMember(obj Value, name string, val Value, line int) error {
	switch obj.kind {
	case KindObject:
		obj.obj.Set(name, val)
		return nil
	case KindArray:
		// JS arrays are objects: non-element keys land in the property
		// bag (ignored by JSON serialization, like real JSON.stringify).
		if obj.arr.Props == nil {
			obj.arr.Props = map[string]Value{}
		}
		obj.arr.Props[name] = val
		return nil
	}
	return in.rterr(line, "cannot set property %q of %s", name, obj.TypeOf())
}

func (in *Interp) evalCall(e *Call, env *Env) (Value, error) {
	var this Value = Undefined()
	var fn Value
	var err error
	var calleeName string
	if m, ok := e.Fn.(*Member); ok && m.Index == nil {
		this, err = in.eval(m.Obj, env)
		if err != nil {
			return Undefined(), err
		}
		if m.Optional && (this.IsUndefined() || this.IsNull()) {
			return Undefined(), nil
		}
		fn, err = in.getMember(this, m.Name, m.Line)
		if err != nil {
			return Undefined(), err
		}
		calleeName = m.Name
	} else {
		fn, err = in.eval(e.Fn, env)
		if err != nil {
			return Undefined(), err
		}
		if id, ok := e.Fn.(*Ident); ok {
			calleeName = id.Name
		}
	}
	args := make([]Value, 0, len(e.Args))
	for _, a := range e.Args {
		if sp, ok := a.(*SpreadExpr); ok {
			v, err := in.eval(sp.X, env)
			if err != nil {
				return Undefined(), err
			}
			if v.kind == KindArray {
				args = append(args, v.arr.Elems...)
			} else {
				args = append(args, v)
			}
			continue
		}
		v, err := in.eval(a, env)
		if err != nil {
			return Undefined(), err
		}
		args = append(args, v)
	}
	if !fn.IsCallable() {
		if e.Optional && (fn.IsUndefined() || fn.IsNull()) {
			return Undefined(), nil
		}
		if calleeName == "" {
			calleeName = "value"
		}
		return Undefined(), in.rterr(e.Line, "%s is not a function", calleeName)
	}
	if e.New {
		return in.construct(fn, args, e.Line)
	}
	return in.call(fn, this, args, e.Line)
}

// construct implements `new`: natives act as constructors directly;
// closures get a fresh `this` object.
func (in *Interp) construct(fn Value, args []Value, line int) (Value, error) {
	if fn.kind == KindNative {
		return in.call(fn, Undefined(), args, line)
	}
	thisObj := ObjectValue(NewObject())
	ret, err := in.call(fn, thisObj, args, line)
	if err != nil {
		return Undefined(), err
	}
	if ret.kind == KindObject || ret.kind == KindArray {
		return ret, nil
	}
	return thisObj, nil
}

func (in *Interp) call(fn Value, this Value, args []Value, line int) (Value, error) {
	if len(in.stack) > 200 {
		return Undefined(), in.rterr(line, "maximum call stack size exceeded")
	}
	if fn.kind == KindObject && fn.obj.Call != nil {
		in.stack = append(in.stack, frame{fnName: fn.obj.Call.Name, scriptURL: in.CurrentScriptURL(), line: line})
		v, err := fn.obj.Call.Fn(in, this, args)
		in.stack = in.stack[:len(in.stack)-1]
		return v, err
	}
	switch fn.kind {
	case KindNative:
		in.stack = append(in.stack, frame{fnName: fn.nat.Name, scriptURL: in.CurrentScriptURL(), line: line})
		v, err := fn.nat.Fn(in, this, args)
		in.stack = in.stack[:len(in.stack)-1]
		return v, err
	case KindFunc:
		c := fn.fn
		if c.compiled != nil {
			return in.callCompiled(c, this, args)
		}
		env := NewEnv(c.Env)
		env.Define("this", this)
		for i, p := range c.Params {
			if i < len(args) {
				env.Define(p, args[i])
			} else {
				env.Define(p, Undefined())
			}
		}
		env.Define("arguments", ArrayValue(args...))
		name := c.Name
		if name == "" {
			name = "<anonymous>"
		}
		in.stack = append(in.stack, frame{fnName: name, scriptURL: c.ScriptURL, line: c.Line})
		defer func() { in.stack = in.stack[:len(in.stack)-1] }()
		if c.ExprBody != nil {
			return in.eval(c.ExprBody, env)
		}
		err := in.exec(c.Body, env)
		if rs, ok := err.(returnSignal); ok {
			return rs.v, nil
		}
		if err != nil {
			return Undefined(), err
		}
		return Undefined(), nil
	}
	return Undefined(), in.rterr(line, "not callable")
}
