package script

// Node is any AST node.
type Node interface{ node() }

// ---- Statements ----

// Program is the root.
type Program struct{ Body []Node }

// VarDecl declares one variable (var/let/const collapse to one form).
type VarDecl struct {
	Name string
	Init Node // may be nil
	Line int
}

// ExprStmt wraps an expression used as a statement.
type ExprStmt struct{ X Node }

// IfStmt is if/else.
type IfStmt struct {
	Cond Node
	Then Node
	Else Node // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Node
	Body Node
}

// ForStmt is a classic for loop (any clause may be nil).
type ForStmt struct {
	Init Node
	Cond Node
	Post Node
	Body Node
}

// SwitchStmt is switch (Tag) { cases }.
type SwitchStmt struct {
	Tag   Node
	Cases []SwitchCase
}

// SwitchCase is one case (Test nil for default). Execution falls
// through to subsequent cases until a break, like JavaScript.
type SwitchCase struct {
	Test Node
	Body []Node
}

// DoWhileStmt is do Body while (Cond).
type DoWhileStmt struct {
	Body Node
	Cond Node
}

// BlockStmt is { ... }; it opens a scope.
type BlockStmt struct{ Body []Node }

// SeqStmt runs statements in the CURRENT scope (no new environment) —
// used for multi-declarator var statements, whose bindings must land in
// the enclosing scope.
type SeqStmt struct{ Body []Node }

// ReturnStmt returns from a function.
type ReturnStmt struct{ X Node } // X may be nil

// BreakStmt / ContinueStmt control loops.
type BreakStmt struct{}
type ContinueStmt struct{}

// ThrowStmt throws a value.
type ThrowStmt struct{ X Node }

// TryStmt is try/catch/finally.
type TryStmt struct {
	Body     *BlockStmt
	CatchVar string
	Catch    *BlockStmt // may be nil
	Finally  *BlockStmt // may be nil
}

// FuncDecl is a named function declaration.
type FuncDecl struct {
	Name   string
	Params []string
	Body   *BlockStmt
	Line   int
}

// ---- Expressions ----

// Ident references a variable.
type Ident struct {
	Name string
	Line int
}

// Lit is a literal value (string/number/bool/null/undefined).
type Lit struct{ Val Value }

// ThisExpr is `this`.
type ThisExpr struct{}

// Member is obj.Name or obj[Expr].
type Member struct {
	Obj      Node
	Name     string // set for dot access
	Index    Node   // set for bracket access
	Optional bool   // ?. access
	Line     int
}

// Call is fn(args...).
type Call struct {
	Fn       Node
	Args     []Node
	New      bool // new Fn(args)
	Optional bool // fn?.(args): undefined when fn is nullish
	Line     int
}

// Unary is op X (prefix).
type Unary struct {
	Op string
	X  Node
}

// Binary is X op Y.
type Binary struct {
	Op   string
	X, Y Node
	Line int
}

// Logical is X && Y or X || Y or X ?? Y (short-circuit).
type Logical struct {
	Op   string
	X, Y Node
	Line int
}

// Cond is the ternary.
type Cond struct {
	Test, Then, Else Node
}

// Assign is Target = Val (and op-assign like +=).
type Assign struct {
	Op     string // "=", "+=", ...
	Target Node   // Ident or Member
	Val    Node
	Line   int
}

// Update is X++ / X-- (postfix and prefix collapse; value semantics of
// the postfix form are rarely load-bearing in probe scripts).
type Update struct {
	Op     string // "++" or "--"
	Target Node
}

// ObjectLit is {k: v, ...}.
type ObjectLit struct {
	Keys []string
	Vals []Node
}

// ArrayLit is [v, ...].
type ArrayLit struct{ Elems []Node }

// FuncLit is a function expression or arrow function.
type FuncLit struct {
	Params []string
	Body   *BlockStmt
	// ExprBody is set for `(x) => expr` arrows.
	ExprBody Node
	Line     int
}

// SpreadExpr is ...x in call arguments.
type SpreadExpr struct{ X Node }

func (*Program) node()      {}
func (*VarDecl) node()      {}
func (*ExprStmt) node()     {}
func (*IfStmt) node()       {}
func (*WhileStmt) node()    {}
func (*ForStmt) node()      {}
func (*BlockStmt) node()    {}
func (*SeqStmt) node()      {}
func (*SwitchStmt) node()   {}
func (*DoWhileStmt) node()  {}
func (*ReturnStmt) node()   {}
func (*BreakStmt) node()    {}
func (*ContinueStmt) node() {}
func (*ThrowStmt) node()    {}
func (*TryStmt) node()      {}
func (*FuncDecl) node()     {}
func (*Ident) node()        {}
func (*Lit) node()          {}
func (*ThisExpr) node()     {}
func (*Member) node()       {}
func (*Call) node()         {}
func (*Unary) node()        {}
func (*Binary) node()       {}
func (*Logical) node()      {}
func (*Cond) node()         {}
func (*Assign) node()       {}
func (*Update) node()       {}
func (*ObjectLit) node()    {}
func (*ArrayLit) node()     {}
func (*FuncLit) node()      {}
func (*SpreadExpr) node()   {}
