package script

import "errors"

// This file lowers a parsed *Program into a compiled form that executes
// without re-walking the AST: every statement and expression becomes a
// Go closure, constant subexpressions fold at compile time, and locally
// declared names resolve to (hops, slot) indexes into frame-mode Envs
// instead of map lookups. Compiled programs are immutable and safe to
// execute concurrently from many interpreters — per-run state lives in
// the Interp and its environments, never in the compiled closures.
//
// The compile-time scope stack mirrors runtime frames EXACTLY: a scope
// is pushed if and only if the corresponding construct allocates a
// frame at runtime. Blocks that declare nothing push neither, so hop
// counts stay in sync. A frame slot left at the kindUnset sentinel does
// not bind its name yet, which preserves the tree-walker's "no binding
// until the declaration executes" semantics for hoisted slots.

type execFn func(in *Interp, env *Env) error
type evalFn func(in *Interp, env *Env) (Value, error)

// Compiled is a program lowered to directly-executable closures.
type Compiled struct {
	top     []execFn
	hoisted []*hoistedDecl
}

// hoistedDecl is a function declaration hoisted to its scope's entry.
// slot is the frame slot to define it in, or -1 for dynamic Define
// (top-level declarations land in the map-mode global scope).
type hoistedDecl struct {
	name string
	slot int
	cf   *compiledFunc
}

// compiledFunc is the compiled form of a function body. The activation
// record merges the tree-walker's call env and body-block env into one
// frame: slot 0 is `this`, then parameters, an `arguments` slot only if
// the body mentions that identifier, then body-level declarations.
type compiledFunc struct {
	name       string
	params     []string
	paramSlots []int
	layout     *frameLayout
	argSlot    int // -1 when the body never mentions `arguments`
	hoisted    []*hoistedDecl
	body       []execFn
	expr       evalFn // expression-bodied arrows
	line       int
}

// cexpr is a compiled expression. isLit marks compile-time constants so
// parent nodes can fold (Binary with two lits, Logical/Cond with a lit
// test). Object and array literals are never lits: each evaluation must
// allocate a fresh mutable value.
type cexpr struct {
	fn    evalFn
	lit   Value
	isLit bool
}

func litExpr(v Value) cexpr {
	return cexpr{
		fn:    func(*Interp, *Env) (Value, error) { return v, nil },
		lit:   v,
		isLit: true,
	}
}

// Compile lowers a parsed program. It never mutates prog, and the
// result may be shared across goroutines and interpreters.
func Compile(prog *Program) (*Compiled, error) {
	c := &compiler{}
	out := &Compiled{}
	for _, stmt := range prog.Body {
		fd, ok := stmt.(*FuncDecl)
		if !ok {
			continue
		}
		cf, err := c.compileFunc(fd.Name, fd.Params, fd.Body, nil, fd.Line)
		if err != nil {
			return nil, err
		}
		out.hoisted = append(out.hoisted, &hoistedDecl{name: fd.Name, slot: -1, cf: cf})
	}
	for _, stmt := range prog.Body {
		if _, ok := stmt.(*FuncDecl); ok {
			continue
		}
		fn, err := c.compileStmt(stmt)
		if err != nil {
			return nil, err
		}
		out.top = append(out.top, fn)
	}
	return out, nil
}

// RunCompiled executes a compiled program against the global scope,
// exactly as RunProgram executes its AST.
func (in *Interp) RunCompiled(p *Compiled, scriptURL string) error {
	in.steps = 0
	in.stack = append(in.stack, frame{fnName: "<script>", scriptURL: scriptURL})
	defer func() { in.stack = in.stack[:len(in.stack)-1] }()
	for _, h := range p.hoisted {
		in.Global.Define(h.name, FuncValue(&Closure{
			Name: h.name, Params: h.cf.params, compiled: h.cf,
			Env: in.Global, ScriptURL: scriptURL, Line: h.cf.line,
		}))
	}
	for _, fn := range p.top {
		if err := fn(in, in.Global); err != nil {
			return err
		}
	}
	return nil
}

// callCompiled is the KindFunc call path for closures carrying compiled
// bodies: one pooled frame instead of a map env per call.
func (in *Interp) callCompiled(c *Closure, this Value, args []Value) (Value, error) {
	cf := c.compiled
	env := newFrame(c.Env, cf.layout)
	env.slots[0] = this
	for i, slot := range cf.paramSlots {
		if i < len(args) {
			env.slots[slot] = args[i]
		} else {
			env.slots[slot] = Undefined()
		}
	}
	if cf.argSlot >= 0 {
		env.slots[cf.argSlot] = ArrayValue(args...)
	}
	name := c.Name
	if name == "" {
		name = "<anonymous>"
	}
	in.stack = append(in.stack, frame{fnName: name, scriptURL: c.ScriptURL, line: c.Line})
	defineHoisted(in, env, cf.hoisted)
	var ret Value
	var err error
	if cf.expr != nil {
		ret, err = cf.expr(in, env)
	} else {
		for _, fn := range cf.body {
			if err = fn(in, env); err != nil {
				break
			}
		}
		if rs, ok := err.(returnSignal); ok {
			ret, err = rs.v, nil
		}
	}
	in.stack = in.stack[:len(in.stack)-1]
	if cf.layout.poolable {
		releaseFrame(env)
	}
	if err != nil {
		return Undefined(), err
	}
	return ret, nil
}

func defineHoisted(in *Interp, env *Env, hoisted []*hoistedDecl) {
	for _, h := range hoisted {
		v := FuncValue(&Closure{
			Name: h.name, Params: h.cf.params, compiled: h.cf,
			Env: env, ScriptURL: in.CurrentScriptURL(), Line: h.cf.line,
		})
		if h.slot >= 0 {
			env.slots[h.slot] = v
		} else {
			env.Define(h.name, v)
		}
	}
}

func errAsThrown(err error) (*Thrown, bool) {
	var t *Thrown
	if errors.As(err, &t) {
		return t, true
	}
	return nil, false
}

func errAsRuntime(err error) (*RuntimeError, bool) {
	var rt *RuntimeError
	if errors.As(err, &rt) {
		return rt, true
	}
	return nil, false
}

// ---- compiler ----

type compiler struct {
	scopes []*frameLayout // innermost last; one entry per runtime frame
}

func (c *compiler) push(fl *frameLayout) { c.scopes = append(c.scopes, fl) }
func (c *compiler) pop()                 { c.scopes = c.scopes[:len(c.scopes)-1] }

// resolve finds name in the compile-time scope stack, returning how
// many frames up it lives and at which slot.
func (c *compiler) resolve(name string) (hops, slot int, ok bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, found := c.scopes[i].slotOf[name]; found {
			return len(c.scopes) - 1 - i, s, true
		}
	}
	return 0, 0, false
}

func newLayout(names []string, poolable bool) *frameLayout {
	fl := &frameLayout{names: names, slotOf: make(map[string]int, len(names)), poolable: poolable}
	for i, n := range names {
		fl.slotOf[n] = i
	}
	return fl
}

// declNames collects the names tree-walk execution would Define into
// the scope owning stmts: direct VarDecl/FuncDecl children, recursing
// through constructs that execute sub-statements in the SAME env
// (SeqStmt, if branches, while/do-while bodies) and stopping at
// constructs that open their own scope (blocks, for, switch, try,
// function bodies).
func declNames(stmts []Node) []string {
	var out []string
	seen := map[string]bool{}
	var visit func(n Node)
	visit = func(n Node) {
		switch s := n.(type) {
		case *VarDecl:
			if !seen[s.Name] {
				seen[s.Name] = true
				out = append(out, s.Name)
			}
		case *FuncDecl:
			if !seen[s.Name] {
				seen[s.Name] = true
				out = append(out, s.Name)
			}
		case *SeqStmt:
			for _, b := range s.Body {
				visit(b)
			}
		case *IfStmt:
			visit(s.Then)
			if s.Else != nil {
				visit(s.Else)
			}
		case *WhileStmt:
			visit(s.Body)
		case *DoWhileStmt:
			visit(s.Body)
		}
	}
	for _, s := range stmts {
		visit(s)
	}
	return out
}

// findNode reports whether pred holds for any node in the subtree.
func findNode(n Node, pred func(Node) bool) bool {
	if n == nil {
		return false
	}
	if pred(n) {
		return true
	}
	find := func(m Node) bool { return findNode(m, pred) }
	findAll := func(ms []Node) bool {
		for _, m := range ms {
			if findNode(m, pred) {
				return true
			}
		}
		return false
	}
	switch s := n.(type) {
	case *Program:
		return findAll(s.Body)
	case *BlockStmt:
		return findAll(s.Body)
	case *SeqStmt:
		return findAll(s.Body)
	case *VarDecl:
		return find(s.Init)
	case *ExprStmt:
		return find(s.X)
	case *IfStmt:
		return find(s.Cond) || find(s.Then) || find(s.Else)
	case *WhileStmt:
		return find(s.Cond) || find(s.Body)
	case *DoWhileStmt:
		return find(s.Body) || find(s.Cond)
	case *ForStmt:
		return find(s.Init) || find(s.Cond) || find(s.Post) || find(s.Body)
	case *SwitchStmt:
		if find(s.Tag) {
			return true
		}
		for _, cs := range s.Cases {
			if find(cs.Test) || findAll(cs.Body) {
				return true
			}
		}
		return false
	case *ReturnStmt:
		return find(s.X)
	case *ThrowStmt:
		return find(s.X)
	case *TryStmt:
		if s.Body != nil && findAll(s.Body.Body) {
			return true
		}
		if s.Catch != nil && findAll(s.Catch.Body) {
			return true
		}
		return s.Finally != nil && findAll(s.Finally.Body)
	case *FuncDecl:
		if s.Body != nil {
			return findAll(s.Body.Body)
		}
		return false
	case *FuncLit:
		if s.Body != nil && findAll(s.Body.Body) {
			return true
		}
		return find(s.ExprBody)
	case *Member:
		return find(s.Obj) || find(s.Index)
	case *Call:
		return find(s.Fn) || findAll(s.Args)
	case *Unary:
		return find(s.X)
	case *Binary:
		return find(s.X) || find(s.Y)
	case *Logical:
		return find(s.X) || find(s.Y)
	case *Cond:
		return find(s.Test) || find(s.Then) || find(s.Else)
	case *Assign:
		return find(s.Target) || find(s.Val)
	case *Update:
		return find(s.Target)
	case *ObjectLit:
		return findAll(s.Vals)
	case *ArrayLit:
		return findAll(s.Elems)
	case *SpreadExpr:
		return find(s.X)
	}
	return false
}

func isFuncNode(n Node) bool {
	switch n.(type) {
	case *FuncLit, *FuncDecl:
		return true
	}
	return false
}

// poolableScope reports whether frames for a scope whose body is stmts
// may be recycled: no closure created anywhere inside can capture them.
func poolableScope(stmts []Node) bool {
	for _, s := range stmts {
		if findNode(s, isFuncNode) {
			return false
		}
	}
	return true
}

func identUsed(name string, stmts []Node) bool {
	pred := func(n Node) bool {
		id, ok := n.(*Ident)
		return ok && id.Name == name
	}
	for _, s := range stmts {
		if findNode(s, pred) {
			return true
		}
	}
	return false
}

// compileFunc compiles a function body into a compiledFunc whose merged
// activation layout is slot 0 = this, then params, then an arguments
// slot if used, then body-level declarations.
func (c *compiler) compileFunc(name string, params []string, body *BlockStmt, exprBody Node, line int) (*compiledFunc, error) {
	fl := &frameLayout{slotOf: map[string]int{}}
	add := func(n string) int {
		if i, ok := fl.slotOf[n]; ok {
			return i
		}
		i := len(fl.names)
		fl.names = append(fl.names, n)
		fl.slotOf[n] = i
		return i
	}
	add("this")
	paramSlots := make([]int, len(params))
	for i, p := range params {
		paramSlots[i] = add(p)
	}
	var scan []Node
	if exprBody != nil {
		scan = []Node{exprBody}
	} else if body != nil {
		scan = body.Body
	}
	argSlot := -1
	if identUsed("arguments", scan) {
		argSlot = add("arguments")
	}
	if exprBody == nil {
		for _, n := range declNames(scan) {
			add(n)
		}
	}
	fl.poolable = poolableScope(scan)

	cf := &compiledFunc{
		name: name, params: params, paramSlots: paramSlots,
		layout: fl, argSlot: argSlot, line: line,
	}
	c.push(fl)
	defer c.pop()
	if exprBody != nil {
		x, err := c.compileExpr(exprBody)
		if err != nil {
			return nil, err
		}
		cf.expr = x.fn
		return cf, nil
	}
	for _, stmt := range scan {
		fd, ok := stmt.(*FuncDecl)
		if !ok {
			continue
		}
		sub, err := c.compileFunc(fd.Name, fd.Params, fd.Body, nil, fd.Line)
		if err != nil {
			return nil, err
		}
		cf.hoisted = append(cf.hoisted, &hoistedDecl{name: fd.Name, slot: fl.slotOf[fd.Name], cf: sub})
	}
	for _, stmt := range scan {
		if _, ok := stmt.(*FuncDecl); ok {
			continue
		}
		fn, err := c.compileStmt(stmt)
		if err != nil {
			return nil, err
		}
		cf.body = append(cf.body, fn)
	}
	return cf, nil
}
