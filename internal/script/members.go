package script

import (
	"strings"
)

// getMember resolves property access for every value kind, including
// the method surface of strings, arrays and functions that permission
// probe scripts routinely use (split, includes, forEach, apply, ...).
func (in *Interp) getMember(v Value, name string, line int) (Value, error) {
	switch v.kind {
	case KindUndefined, KindNull:
		return Undefined(), in.rterr(line, "cannot read properties of %s (reading %q)", v.TypeOf(), name)
	case KindObject:
		if p, ok := v.obj.Get(name); ok {
			return p, nil
		}
		return Undefined(), nil
	case KindArray:
		return in.arrayMember(v, name)
	case KindString:
		return in.stringMember(v, name)
	case KindFunc, KindNative:
		return in.funcMember(v, name)
	case KindNumber:
		switch name {
		case "toFixed":
			return NativeValue("toFixed", func(_ *Interp, this Value, args []Value) (Value, error) {
				return String(this.ToString()), nil
			}), nil
		case "toString":
			return boundToString(v), nil
		}
		return Undefined(), nil
	default:
		return Undefined(), nil
	}
}

func boundToString(v Value) Value {
	return NativeValue("toString", func(_ *Interp, _ Value, _ []Value) (Value, error) {
		return String(v.ToString()), nil
	})
}

func (in *Interp) arrayMember(v Value, name string) (Value, error) {
	arr := v.arr
	switch name {
	case "length":
		return Number(float64(len(arr.Elems))), nil
	case "push":
		return NativeValue("push", func(_ *Interp, _ Value, args []Value) (Value, error) {
			arr.Elems = append(arr.Elems, args...)
			return Number(float64(len(arr.Elems))), nil
		}), nil
	case "pop":
		return NativeValue("pop", func(_ *Interp, _ Value, _ []Value) (Value, error) {
			if len(arr.Elems) == 0 {
				return Undefined(), nil
			}
			last := arr.Elems[len(arr.Elems)-1]
			arr.Elems = arr.Elems[:len(arr.Elems)-1]
			return last, nil
		}), nil
	case "includes":
		return NativeValue("includes", func(_ *Interp, _ Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return Bool(false), nil
			}
			for _, e := range arr.Elems {
				if StrictEquals(e, args[0]) {
					return Bool(true), nil
				}
			}
			return Bool(false), nil
		}), nil
	case "indexOf":
		return NativeValue("indexOf", func(_ *Interp, _ Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return Number(-1), nil
			}
			for i, e := range arr.Elems {
				if StrictEquals(e, args[0]) {
					return Number(float64(i)), nil
				}
			}
			return Number(-1), nil
		}), nil
	case "join":
		return NativeValue("join", func(_ *Interp, _ Value, args []Value) (Value, error) {
			sep := ","
			if len(args) > 0 {
				sep = args[0].ToString()
			}
			parts := make([]string, len(arr.Elems))
			for i, e := range arr.Elems {
				parts[i] = e.ToString()
			}
			return String(strings.Join(parts, sep)), nil
		}), nil
	case "slice":
		return NativeValue("slice", func(_ *Interp, _ Value, args []Value) (Value, error) {
			start, end := 0, len(arr.Elems)
			if len(args) > 0 {
				start = clampIndex(int(args[0].ToNumber()), len(arr.Elems))
			}
			if len(args) > 1 {
				end = clampIndex(int(args[1].ToNumber()), len(arr.Elems))
			}
			if start > end {
				start = end
			}
			return ArrayValue(append([]Value{}, arr.Elems[start:end]...)...), nil
		}), nil
	case "forEach":
		return NativeValue("forEach", func(in *Interp, _ Value, args []Value) (Value, error) {
			if len(args) == 0 || !args[0].IsCallable() {
				return Undefined(), nil
			}
			for i, e := range arr.Elems {
				if _, err := in.call(args[0], Undefined(), []Value{e, Number(float64(i)), v}, 0); err != nil {
					return Undefined(), err
				}
			}
			return Undefined(), nil
		}), nil
	case "map":
		return NativeValue("map", func(in *Interp, _ Value, args []Value) (Value, error) {
			out := make([]Value, 0, len(arr.Elems))
			for i, e := range arr.Elems {
				r, err := in.call(args[0], Undefined(), []Value{e, Number(float64(i)), v}, 0)
				if err != nil {
					return Undefined(), err
				}
				out = append(out, r)
			}
			return ArrayValue(out...), nil
		}), nil
	case "filter":
		return NativeValue("filter", func(in *Interp, _ Value, args []Value) (Value, error) {
			var out []Value
			for i, e := range arr.Elems {
				r, err := in.call(args[0], Undefined(), []Value{e, Number(float64(i)), v}, 0)
				if err != nil {
					return Undefined(), err
				}
				if r.Truthy() {
					out = append(out, e)
				}
			}
			return ArrayValue(out...), nil
		}), nil
	case "find":
		return NativeValue("find", func(in *Interp, _ Value, args []Value) (Value, error) {
			for i, e := range arr.Elems {
				r, err := in.call(args[0], Undefined(), []Value{e, Number(float64(i)), v}, 0)
				if err != nil {
					return Undefined(), err
				}
				if r.Truthy() {
					return e, nil
				}
			}
			return Undefined(), nil
		}), nil
	case "some":
		return NativeValue("some", func(in *Interp, _ Value, args []Value) (Value, error) {
			for i, e := range arr.Elems {
				r, err := in.call(args[0], Undefined(), []Value{e, Number(float64(i)), v}, 0)
				if err != nil {
					return Undefined(), err
				}
				if r.Truthy() {
					return Bool(true), nil
				}
			}
			return Bool(false), nil
		}), nil
	case "reduce":
		return NativeValue("reduce", func(in *Interp, _ Value, args []Value) (Value, error) {
			if len(args) == 0 || !args[0].IsCallable() {
				return Undefined(), &RuntimeError{Msg: "reduce requires a callback"}
			}
			var acc Value
			start := 0
			if len(args) > 1 {
				acc = args[1]
			} else {
				if len(arr.Elems) == 0 {
					return Undefined(), &RuntimeError{Msg: "reduce of empty array with no initial value"}
				}
				acc = arr.Elems[0]
				start = 1
			}
			for i := start; i < len(arr.Elems); i++ {
				r, err := in.call(args[0], Undefined(), []Value{acc, arr.Elems[i], Number(float64(i)), v}, 0)
				if err != nil {
					return Undefined(), err
				}
				acc = r
			}
			return acc, nil
		}), nil
	case "concat":
		return NativeValue("concat", func(_ *Interp, _ Value, args []Value) (Value, error) {
			out := append([]Value{}, arr.Elems...)
			for _, a := range args {
				if a.kind == KindArray {
					out = append(out, a.arr.Elems...)
				} else {
					out = append(out, a)
				}
			}
			return ArrayValue(out...), nil
		}), nil
	default:
		if p, ok := arr.Props[name]; ok {
			return p, nil
		}
		return Undefined(), nil
	}
}

func clampIndex(i, n int) int {
	if i < 0 {
		i += n
	}
	if i < 0 {
		return 0
	}
	if i > n {
		return n
	}
	return i
}

func (in *Interp) stringMember(v Value, name string) (Value, error) {
	s := v.s
	switch name {
	case "length":
		return Number(float64(len(s))), nil
	case "includes":
		return NativeValue("includes", func(_ *Interp, _ Value, args []Value) (Value, error) {
			return Bool(len(args) > 0 && strings.Contains(s, args[0].ToString())), nil
		}), nil
	case "indexOf":
		return NativeValue("indexOf", func(_ *Interp, _ Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return Number(-1), nil
			}
			return Number(float64(strings.Index(s, args[0].ToString()))), nil
		}), nil
	case "startsWith":
		return NativeValue("startsWith", func(_ *Interp, _ Value, args []Value) (Value, error) {
			return Bool(len(args) > 0 && strings.HasPrefix(s, args[0].ToString())), nil
		}), nil
	case "endsWith":
		return NativeValue("endsWith", func(_ *Interp, _ Value, args []Value) (Value, error) {
			return Bool(len(args) > 0 && strings.HasSuffix(s, args[0].ToString())), nil
		}), nil
	case "toLowerCase":
		return NativeValue("toLowerCase", func(_ *Interp, _ Value, _ []Value) (Value, error) {
			return String(strings.ToLower(s)), nil
		}), nil
	case "toUpperCase":
		return NativeValue("toUpperCase", func(_ *Interp, _ Value, _ []Value) (Value, error) {
			return String(strings.ToUpper(s)), nil
		}), nil
	case "split":
		return NativeValue("split", func(_ *Interp, _ Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return ArrayValue(String(s)), nil
			}
			parts := strings.Split(s, args[0].ToString())
			return StringsValue(parts), nil
		}), nil
	case "trim":
		return NativeValue("trim", func(_ *Interp, _ Value, _ []Value) (Value, error) {
			return String(strings.TrimSpace(s)), nil
		}), nil
	case "slice", "substring":
		return NativeValue(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			start, end := 0, len(s)
			if len(args) > 0 {
				start = clampIndex(int(args[0].ToNumber()), len(s))
			}
			if len(args) > 1 {
				end = clampIndex(int(args[1].ToNumber()), len(s))
			}
			if start > end {
				start = end
			}
			return String(s[start:end]), nil
		}), nil
	case "replace":
		return NativeValue("replace", func(_ *Interp, _ Value, args []Value) (Value, error) {
			if len(args) < 2 {
				return String(s), nil
			}
			return String(strings.Replace(s, args[0].ToString(), args[1].ToString(), 1)), nil
		}), nil
	case "charAt":
		return NativeValue("charAt", func(_ *Interp, _ Value, args []Value) (Value, error) {
			i := 0
			if len(args) > 0 {
				i = int(args[0].ToNumber())
			}
			if i < 0 || i >= len(s) {
				return String(""), nil
			}
			return String(string(s[i])), nil
		}), nil
	case "toString":
		return boundToString(v), nil
	default:
		return Undefined(), nil
	}
}

// funcMember implements call/apply/bind — apply in particular is the
// exact idiom of the paper's Figure 1 instrumentation wrapper
// (origFunc.apply(this, [...params])).
func (in *Interp) funcMember(fn Value, name string) (Value, error) {
	switch name {
	case "call":
		return NativeValue("call", func(in *Interp, _ Value, args []Value) (Value, error) {
			this := Undefined()
			var rest []Value
			if len(args) > 0 {
				this = args[0]
				rest = args[1:]
			}
			return in.call(fn, this, rest, 0)
		}), nil
	case "apply":
		return NativeValue("apply", func(in *Interp, _ Value, args []Value) (Value, error) {
			this := Undefined()
			var rest []Value
			if len(args) > 0 {
				this = args[0]
			}
			if len(args) > 1 && args[1].kind == KindArray {
				rest = args[1].arr.Elems
			}
			return in.call(fn, this, rest, 0)
		}), nil
	case "bind":
		return NativeValue("bind", func(_ *Interp, _ Value, args []Value) (Value, error) {
			boundThis := Undefined()
			var bound []Value
			if len(args) > 0 {
				boundThis = args[0]
				bound = append([]Value{}, args[1:]...)
			}
			return NativeValue("bound", func(in *Interp, _ Value, callArgs []Value) (Value, error) {
				return in.call(fn, boundThis, append(append([]Value{}, bound...), callArgs...), 0)
			}), nil
		}), nil
	case "name":
		if fn.kind == KindFunc {
			return String(fn.fn.Name), nil
		}
		return String(fn.nat.Name), nil
	default:
		return Undefined(), nil
	}
}
