// Package script implements a small JavaScript-subset engine: lexer,
// parser and tree-walking interpreter. It exists so the mini browser can
// actually *execute* the scripts served by the synthetic web and record
// permission-related API invocations through instrumented host objects —
// the same mechanism as the paper's Figure 1, where the original
// function is wrapped to log the call, stack trace and arguments before
// delegating to the real implementation.
//
// Supported language: var/let/const, function declarations and
// expressions, arrow functions, if/else, while/for (bounded by a step
// budget), return, member access, calls, new, object/array literals,
// strings/numbers/booleans/null/undefined, template literals (without
// interpolation), the usual unary/binary/logical operators, assignment,
// and ternaries. That covers realistic permission-probing snippets;
// anything fancier fails with a runtime error that the crawler records
// as a script error, like a real browser console error.
package script

import (
	"fmt"
	"strings"
)

// TokKind is a lexical token kind.
type TokKind uint8

const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokPunct
	// TokTemplate is a template literal with its ${...} interpolations
	// still embedded; the parser expands it into a concatenation.
	TokTemplate
)

// Tok is one token.
type Tok struct {
	Kind TokKind
	Text string
	Num  float64
	Pos  int // byte offset, for error messages
	Line int
}

var keywords = map[string]bool{
	"var": true, "let": true, "const": true, "function": true,
	"if": true, "else": true, "return": true, "true": true, "false": true,
	"null": true, "undefined": true, "new": true, "typeof": true,
	"while": true, "for": true, "break": true, "continue": true,
	"this": true, "try": true, "catch": true, "finally": true, "throw": true,
	"in": true, "of": true, "await": true, "async": true, "delete": true,
	"switch": true, "case": true, "default": true, "do": true,
}

// SyntaxError is a lexing/parsing failure.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("script syntax error at line %d: %s", e.Line, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []Tok
}

// Lex tokenizes src.
func Lex(src string) ([]Tok, error) {
	l := &lexer{src: src, line: 1}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.Kind == TokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return &SyntaxError{Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (Tok, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Tok{Kind: TokEOF, Pos: l.pos, Line: l.line}, nil
	}
	start, line := l.pos, l.line
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Tok{Kind: kind, Text: text, Pos: start, Line: line}, nil
	case c >= '0' && c <= '9':
		return l.number(start, line)
	case c == '"' || c == '\'':
		return l.quoted(c, start, line)
	case c == '`':
		return l.template(start, line)
	default:
		return l.punct(start, line)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case strings.HasPrefix(l.src[l.pos:], "//"):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case strings.HasPrefix(l.src[l.pos:], "/*"):
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
				return
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		default:
			return
		}
	}
}

func (l *lexer) number(start, line int) (Tok, error) {
	var n float64
	seenDot := false
	frac := 0.1
	// Hex literals.
	if strings.HasPrefix(l.src[l.pos:], "0x") || strings.HasPrefix(l.src[l.pos:], "0X") {
		l.pos += 2
		for l.pos < len(l.src) {
			c := l.src[l.pos]
			var v float64
			switch {
			case c >= '0' && c <= '9':
				v = float64(c - '0')
			case c >= 'a' && c <= 'f':
				v = float64(c-'a') + 10
			case c >= 'A' && c <= 'F':
				v = float64(c-'A') + 10
			default:
				return Tok{Kind: TokNumber, Num: n, Text: l.src[start:l.pos], Pos: start, Line: line}, nil
			}
			n = n*16 + v
			l.pos++
		}
		return Tok{Kind: TokNumber, Num: n, Text: l.src[start:l.pos], Pos: start, Line: line}, nil
	}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c >= '0' && c <= '9':
			if seenDot {
				n += float64(c-'0') * frac
				frac /= 10
			} else {
				n = n*10 + float64(c-'0')
			}
			l.pos++
		case c == '.' && !seenDot:
			seenDot = true
			l.pos++
		default:
			return Tok{Kind: TokNumber, Num: n, Text: l.src[start:l.pos], Pos: start, Line: line}, nil
		}
	}
	return Tok{Kind: TokNumber, Num: n, Text: l.src[start:l.pos], Pos: start, Line: line}, nil
}

func (l *lexer) quoted(quote byte, start, line int) (Tok, error) {
	l.pos++
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return Tok{}, l.errf("unterminated string")
		}
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return Tok{Kind: TokString, Text: b.String(), Pos: start, Line: line}, nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return Tok{}, l.errf("unterminated escape")
			}
			switch e := l.src[l.pos]; e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			default:
				b.WriteByte(e)
			}
			l.pos++
		case '\n':
			return Tok{}, l.errf("newline in string")
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
}

func (l *lexer) template(start, line int) (Tok, error) {
	l.pos++
	var b strings.Builder
	interpolated := false
	for {
		if l.pos >= len(l.src) {
			return Tok{}, l.errf("unterminated template literal")
		}
		c := l.src[l.pos]
		switch c {
		case '`':
			l.pos++
			kind := TokString
			if interpolated {
				kind = TokTemplate
			}
			return Tok{Kind: kind, Text: b.String(), Pos: start, Line: line}, nil
		case '\\':
			l.pos++
			if l.pos < len(l.src) {
				b.WriteByte(l.src[l.pos])
				l.pos++
			}
		case '$':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '{' {
				interpolated = true
			}
			b.WriteByte(c)
			l.pos++
		case '\n':
			l.line++
			b.WriteByte(c)
			l.pos++
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
}

// multiPuncts are matched longest-first.
var multiPuncts = []string{
	"===", "!==", "**=", "...", "=>", "==", "!=", "<=", ">=", "&&", "||",
	"??", "?.", "++", "--", "+=", "-=", "*=", "/=",
}

func (l *lexer) punct(start, line int) (Tok, error) {
	rest := l.src[l.pos:]
	for _, p := range multiPuncts {
		if strings.HasPrefix(rest, p) {
			l.pos += len(p)
			return Tok{Kind: TokPunct, Text: p, Pos: start, Line: line}, nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', '{', '}', '[', ']', ';', ',', '.', ':', '?', '=',
		'+', '-', '*', '/', '<', '>', '!', '%', '&', '|', '~', '^':
		l.pos++
		return Tok{Kind: TokPunct, Text: string(c), Pos: start, Line: line}, nil
	}
	return Tok{}, l.errf("unexpected character %q", string(c))
}
