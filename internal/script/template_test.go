package script

import (
	"testing"
)

func TestTemplateInterpolation(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{"var r = `hello ${name}!`;", "hello world!"},
		{"var r = `${name}`;", "world"},
		{"var r = `a${1 + 2}b`;", "a3b"},
		{"var r = `x=${obj.x}, y=${obj['y']}`;", "x=1, y=2"},
		{"var r = `${name}${name}`;", "worldworld"},
		{"var r = `nested ${fn({k: 'v'})}`;", "nested v"},
		{"var r = `no interpolation`;", "no interpolation"},
		{"var r = `price: ${n > 5 ? 'high' : 'low'}`;", "price: high"},
	}
	for _, tt := range tests {
		in := NewInterp()
		setup := `
		var name = 'world';
		var obj = {x: 1, y: 2};
		var n = 9;
		function fn(o) { return o.k; }
		`
		if err := in.Run(setup+tt.src, "t"); err != nil {
			t.Errorf("%s: %v", tt.src, err)
			continue
		}
		v, _ := in.Global.Get("r")
		if v.ToString() != tt.want {
			t.Errorf("%s = %q; want %q", tt.src, v.ToString(), tt.want)
		}
	}
}

func TestTemplateMultiline(t *testing.T) {
	in := NewInterp()
	if err := in.Run("var r = `line1\nline2 ${1+1}`;", "t"); err != nil {
		t.Fatal(err)
	}
	v, _ := in.Global.Get("r")
	if v.ToString() != "line1\nline2 2" {
		t.Errorf("r = %q", v.ToString())
	}
}

func TestTemplateErrors(t *testing.T) {
	for _, src := range []string{
		"var r = `${;}`;",
		"var r = `${}`;",
	} {
		if err := NewInterp().Run(src, "t"); err == nil {
			t.Errorf("Run(%q): expected error", src)
		}
	}
}

func TestTemplateInRealisticProbe(t *testing.T) {
	// The kind of code real scripts ship: building a beacon URL from a
	// permission state.
	in := NewInterp()
	src := `
	var state = 'granted';
	var url = ` + "`/beacon?perm=camera&state=${state}&ts=${42}`" + `;
	`
	if err := in.Run(src, "t"); err != nil {
		t.Fatal(err)
	}
	v, _ := in.Global.Get("url")
	if v.ToString() != "/beacon?perm=camera&state=granted&ts=42" {
		t.Errorf("url = %q", v.ToString())
	}
}
