package synthweb

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"permodyssey/internal/html"
	"permodyssey/internal/policy"
)

func TestGenerateDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSites = 500
	for rank := 1; rank <= 500; rank += 37 {
		a := cfg.Generate(rank)
		b := cfg.Generate(rank)
		if a.Host != b.Host || a.Kind != b.Kind || a.PermissionsPolicy != b.PermissionsPolicy ||
			len(a.Widgets) != len(b.Widgets) || len(a.ScriptIdx) != len(b.ScriptIdx) {
			t.Fatalf("rank %d not deterministic: %+v vs %+v", rank, a, b)
		}
		if cfg.RenderHTML(a) != cfg.RenderHTML(b) {
			t.Fatalf("rank %d HTML not deterministic", rank)
		}
	}
	// Different seeds give different populations.
	cfg2 := cfg
	cfg2.Seed = cfg.Seed + 1
	diff := 0
	for rank := 1; rank <= 100; rank++ {
		if cfg.Generate(rank).PermissionsPolicy != cfg2.Generate(rank).PermissionsPolicy ||
			len(cfg.Generate(rank).Widgets) != len(cfg2.Generate(rank).Widgets) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds must change the population")
	}
}

func TestPopulationCalibration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSites = 8000
	var headered, broken, fp, withDelegation, failures int
	for rank := 1; rank <= cfg.NumSites; rank++ {
		s := cfg.Generate(rank)
		if s.Kind != KindOK {
			failures++
		}
		if s.PermissionsPolicy != "" {
			headered++
			if _, _, err := policy.ParsePermissionsPolicy(s.PermissionsPolicy); err != nil {
				broken++
			}
		}
		if s.FeaturePolicy != "" {
			fp++
		}
		for _, w := range s.Widgets {
			if w.WithDelegation {
				withDelegation++
				break
			}
		}
	}
	headerRate := float64(headered) / float64(cfg.NumSites)
	if headerRate < 0.03 || headerRate > 0.06 {
		t.Errorf("top-level header rate %.3f outside 4.5%% band", headerRate)
	}
	brokenShare := float64(broken) / float64(headered)
	if brokenShare < 0.01 || brokenShare > 0.12 {
		t.Errorf("broken-header share %.3f outside ~5.5%% band", brokenShare)
	}
	if fp == 0 {
		t.Error("Feature-Policy headers must appear")
	}
	failureRate := float64(failures) / float64(cfg.NumSites)
	if failureRate < 0.08 || failureRate > 0.16 {
		t.Errorf("failure rate %.3f outside band", failureRate)
	}
	delegRate := float64(withDelegation) / float64(cfg.NumSites)
	if delegRate < 0.08 || delegRate > 0.25 {
		t.Errorf("widget-delegation rate %.3f outside band (paper 12.07%%)", delegRate)
	}
}

func TestCatalogInvariants(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range Catalog {
		if w.Site == "" || w.Path == "" {
			t.Errorf("widget %+v missing identity", w)
		}
		if seen[w.Site] {
			t.Errorf("duplicate widget site %s", w.Site)
		}
		seen[w.Site] = true
		// InclusionProb 0 is legal: nested-only creatives (2mdn.net) are
		// reachable exclusively through other widgets' frames.
		if w.InclusionProb < 0 || w.InclusionProb > 0.1 {
			t.Errorf("%s: implausible inclusion prob %f", w.Site, w.InclusionProb)
		}
		if w.DelegationRate < 0 || w.DelegationRate > 1 {
			t.Errorf("%s: delegation rate %f", w.Site, w.DelegationRate)
		}
		// Every allow template must parse without hard errors.
		p, _ := policy.ParseAllowAttr(w.AllowTemplate)
		if w.AllowTemplate != "" && p.Empty() {
			t.Errorf("%s: allow template %q yields no directives", w.Site, w.AllowTemplate)
		}
		// Widget headers must parse (they are served as real headers).
		if w.Header != "" {
			if _, _, err := policy.ParsePermissionsPolicy(w.Header); err != nil {
				t.Errorf("%s: header %q invalid: %v", w.Site, w.Header, err)
			}
		}
	}
	// The paper's protagonists must be present.
	for _, site := range []string{"google.com", "youtube.com", "livechatinc.com", "doubleclick.net", "stripe.com"} {
		if _, ok := WidgetBySite(site); !ok {
			t.Errorf("catalog missing %s", site)
		}
	}
}

func TestLiveChatTemplateMatchesPaper(t *testing.T) {
	lc, ok := WidgetBySite("livechatinc.com")
	if !ok {
		t.Fatal("livechat missing")
	}
	if lc.DelegationRate < 0.99 {
		t.Errorf("livechat delegation rate %.4f; paper says 99.69%%", lc.DelegationRate)
	}
	p, _ := policy.ParseAllowAttr(lc.AllowTemplate)
	for _, feature := range []string{"clipboard-read", "clipboard-write", "autoplay",
		"microphone", "camera", "display-capture", "picture-in-picture", "fullscreen"} {
		al, ok := p.Get(feature)
		if !ok {
			t.Errorf("livechat template missing %s", feature)
			continue
		}
		switch feature {
		case "microphone", "camera", "display-capture", "picture-in-picture", "fullscreen":
			if !al.All {
				t.Errorf("livechat %s must be a wildcard delegation (§5.2)", feature)
			}
		}
	}
	if strings.Contains(lc.Script, "getUserMedia") || strings.Contains(lc.Script, "clipboard.read") {
		t.Error("the livechat widget must not contain camera/microphone/clipboard-read APIs (§5.2)")
	}
}

func TestRenderHTMLParsable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSites = 200
	for rank := 1; rank <= 200; rank += 11 {
		s := cfg.Generate(rank)
		doc := html.Parse(cfg.RenderHTML(s))
		frames := html.Iframes(doc)
		wantMin := len(s.Widgets) + s.LocalIframes + s.PlainIframes
		if len(frames) < wantMin {
			t.Errorf("rank %d: %d iframes rendered, want ≥ %d", rank, len(frames), wantMin)
		}
		scripts := html.Scripts(doc)
		if len(scripts) < len(s.ScriptIdx) {
			t.Errorf("rank %d: %d scripts rendered, want ≥ %d", rank, len(scripts), len(s.ScriptIdx))
		}
	}
}

func TestServerVirtualHosting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSites = 50
	cfg.UnreachableRate, cfg.TimeoutRate, cfg.EphemeralRate, cfg.MinorRate = 0, 0, 0, 0
	srv := NewServer(cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := srv.Client(5 * time.Second)

	// A site page.
	site := cfg.Generate(1)
	resp, err := client.Get(site.URL())
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "Site 1") {
		t.Errorf("site page: %d %q", resp.StatusCode, string(body)[:min(80, len(body))])
	}

	// A widget host.
	resp, err = client.Get("https://www.livechatinc.com/chat")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "livechatinc.com widget") {
		t.Errorf("widget body: %q", string(body)[:min(80, len(body))])
	}

	// A script CDN.
	resp, err = client.Get("https://cdn.googletagmanager.com/gtag.js")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "allowed") {
		t.Errorf("script body: %q", string(body)[:min(80, len(body))])
	}

	// Widget headers are served.
	resp, err = client.Get("https://www.doubleclick.net/ads")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("Permissions-Policy") == "" {
		t.Error("doubleclick must serve a Permissions-Policy header (drives Figure 2 embedded adoption)")
	}

	// Unknown hosts 404.
	resp, err = client.Get("https://unknown.example/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("unknown host: %d", resp.StatusCode)
	}
}

func TestServerFailureModes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSites = 300
	cfg.Seed = 9
	cfg.UnreachableRate, cfg.TimeoutRate = 0.15, 0.1
	cfg.EphemeralRate, cfg.MinorRate = 0.1, 0.05
	srv := NewServer(cfg)
	srv.StallTime = 300 * time.Millisecond
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	find := func(kind SiteKind) Site {
		for rank := 1; rank <= cfg.NumSites; rank++ {
			if s := cfg.Generate(rank); s.Kind == kind {
				return s
			}
		}
		t.Fatalf("no site of kind %v", kind)
		return Site{}
	}

	// Unreachable: DNS error from the transport.
	client := srv.Client(5 * time.Second)
	if _, err := client.Get(find(KindUnreachable).URL()); err == nil ||
		!strings.Contains(err.Error(), "no such host") {
		t.Errorf("unreachable site error: %v", err)
	}

	// Timeout: deadline exceeded under a short client timeout.
	quick := srv.Client(50 * time.Millisecond)
	if _, err := quick.Get(find(KindTimeout).URL()); err == nil {
		t.Error("timeout site must exceed the deadline")
	}

	// Ephemeral: body dies mid-read.
	resp, err := client.Get(find(KindEphemeral).URL())
	if err == nil {
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Error("ephemeral site must fail the body read")
	}

	// Minor: malformed response.
	if _, err := client.Get(find(KindMinor).URL()); err == nil ||
		!strings.Contains(err.Error(), "malformed") {
		t.Errorf("minor site error: %v", err)
	}
}

func TestTransportContextCancel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSites = 5
	cfg.UnreachableRate, cfg.TimeoutRate, cfg.EphemeralRate, cfg.MinorRate = 0, 0, 0, 0
	srv := NewServer(cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", cfg.Generate(1).URL(), nil)
	if _, err := srv.Client(0).Do(req); err == nil {
		t.Error("cancelled context must fail")
	}
}

func TestHeaderTemplatesAllValid(t *testing.T) {
	for _, ht := range HeaderTemplates {
		if _, _, err := policy.ParsePermissionsPolicy(ht.Value); err != nil {
			t.Errorf("template %s invalid: %v", ht.Name, err)
		}
	}
	for _, ht := range BrokenHeaders {
		if _, _, err := policy.ParsePermissionsPolicy(ht.Value); err == nil {
			t.Errorf("broken template %s parsed cleanly", ht.Name)
		}
	}
	for _, ht := range MisconfiguredHeaders {
		_, issues, err := policy.ParsePermissionsPolicy(ht.Value)
		if err != nil {
			t.Errorf("misconfigured template %s must parse (semantic, not syntax): %v", ht.Name, err)
		}
		if len(issues) == 0 {
			t.Errorf("misconfigured template %s produced no issues", ht.Name)
		}
	}
	for _, ht := range FeaturePolicyHeaders {
		p, _ := policy.ParseFeaturePolicy(ht.Value)
		if p.Empty() {
			t.Errorf("FP template %s yields no directives", ht.Name)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkGenerateSite(b *testing.B) {
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Generate(i%20000 + 1)
	}
}

func BenchmarkRenderHTML(b *testing.B) {
	cfg := DefaultConfig()
	site := cfg.Generate(42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.RenderHTML(site)
	}
}

func TestEraConfigPresets(t *testing.T) {
	if EraConfig(2019).TopHeaderRate != 0 {
		t.Error("pre-rename era must have no Permissions-Policy header")
	}
	if EraConfig(2019).FPHeaderRate == 0 {
		t.Error("2020 era must serve some Feature-Policy")
	}
	mid := EraConfig(2022)
	if mid.TopHeaderRate <= 0 || mid.TopHeaderRate >= DefaultConfig().TopHeaderRate {
		t.Errorf("2022 adoption must sit between 2020 and 2024: %f", mid.TopHeaderRate)
	}
	if EraConfig(2024).TopHeaderRate != DefaultConfig().TopHeaderRate {
		t.Error("2024 era is the calibrated default")
	}
}

func TestSiteKindString(t *testing.T) {
	for kind, want := range map[SiteKind]string{
		KindOK: "ok", KindUnreachable: "unreachable", KindTimeout: "timeout",
		KindEphemeral: "ephemeral", KindMinor: "minor", SiteKind(99): "unknown",
	} {
		if kind.String() != want {
			t.Errorf("SiteKind(%d) = %q; want %q", kind, kind.String(), want)
		}
	}
}

func TestRenderInternalPage(t *testing.T) {
	cfg := DefaultConfig()
	// Find an ecommerce site with a store locator.
	var site Site
	found := false
	for rank := 1; rank <= 4000 && !found; rank++ {
		s := cfg.Generate(rank)
		for _, p := range s.InternalPages {
			if p == "/stores" {
				site, found = s, true
			}
		}
	}
	if !found {
		t.Fatal("no store-locator site generated")
	}
	body, ok := cfg.RenderInternalPage(site, "/stores")
	if !ok || !strings.Contains(body, "geolocation") {
		t.Errorf("store page: ok=%v body=%q", ok, body)
	}
	if _, ok := cfg.RenderInternalPage(site, "/not-linked"); ok {
		t.Error("unlinked paths must not render")
	}
	if about, ok := cfg.RenderInternalPage(site, "/about"); ok && strings.Contains(about, "geolocation") {
		t.Error("about pages are permission-inert")
	}
}

func TestServerSitesAndInternalPages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSites = 30
	cfg.UnreachableRate, cfg.TimeoutRate, cfg.EphemeralRate, cfg.MinorRate = 0, 0, 0, 0
	srv := NewServer(cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sites := srv.Sites()
	if len(sites) != 30 || sites[0].Rank != 1 {
		t.Fatalf("Sites(): %d", len(sites))
	}
	client := srv.Client(5 * time.Second)
	// Serve an internal page over HTTP when one exists.
	for _, s := range sites {
		for _, p := range s.InternalPages {
			resp, err := client.Get("https://" + s.Host + p)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 || len(body) == 0 {
				t.Errorf("internal page %s%s: %d", s.Host, p, resp.StatusCode)
			}
			return
		}
	}
	t.Skip("no internal pages in this small sample")
}
