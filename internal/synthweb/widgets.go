// Package synthweb generates and serves the synthetic web the
// measurement crawls. The live top-1M list and a real Chromium are not
// available offline, so this package substitutes a deterministic site
// population whose *inputs* — headers, widget embeddings, delegation
// templates, script behaviour, failure modes — are calibrated to the
// aggregate numbers the paper reports. The pipeline must then *recover*
// those numbers through genuine HTTP fetches, HTML parsing, policy
// evaluation and script execution, which is what validates the
// measurement machinery.
package synthweb

// Widget models one embeddable third-party document (the external
// embedded documents of Tables 3 and 7), with the delegation template it
// is included with and the behaviour of the scripts it serves.
type Widget struct {
	// Site is the widget's registrable domain (the paper's embedded
	// document site).
	Site string
	// Path is the iframe document path on that site.
	Path string
	// InclusionProb is the probability a site embeds this widget at
	// least once — calibrated to Table 3 counts over 817,800 sites.
	InclusionProb float64
	// DelegationRate is the fraction of inclusions that carry the allow
	// template (Table 7 / Table 3 ratio; livechatinc.com: 99.69%,
	// google.com: 4.95%).
	DelegationRate float64
	// AllowTemplate is the allow attribute used when delegating.
	AllowTemplate string
	// Header is the widget document's own Permissions-Policy header
	// ("" = none). Ad/video widgets drive the embedded-document header
	// adoption of Figure 2 (12.3% of embedded docs).
	Header string
	// Script is the JavaScript the widget document runs.
	Script string
	// Category is the §4.2.1 purpose grouping.
	Category string
	// Lazy marks widgets typically included with loading="lazy".
	Lazy bool
	// NestedIframe, when non-empty, is an iframe tag the widget document
	// itself embeds — the nested-delegation chains the paper's §4.2
	// simplification skips but §2.2.5 warns about ("once a permission is
	// delegated ... the top-level website can no longer prevent nested
	// delegations").
	NestedIframe string
}

// chClientHintsAllAllowed is the User-Agent Client-Hints header shape
// §4.3.2 found dominating embedded documents: directives granting '*',
// which "effectively has no impact because the header can only enforce
// restrictions".
const chClientHintsAllAllowed = "ch-ua=*, ch-ua-arch=*, ch-ua-bitness=*, ch-ua-full-version=*, ch-ua-full-version-list=*, ch-ua-mobile=*, ch-ua-model=*, ch-ua-platform=*, ch-ua-platform-version=*, ch-ua-wow64=*"

// adScript is served by advertising widgets: Privacy-Sandbox calls plus
// general-API probing, all first-party from the iframe's perspective
// (§4.1.1: embedded activity is 74.86% first-party).
const adScript = `
var feats = document.featurePolicy.allowedFeatures();
if (feats.includes('browsing-topics')) { document.browsingTopics().then(function (t) {}); }
navigator.joinAdInterestGroup({owner: location.origin, name: 'shoppers'});
navigator.runAdAuction({seller: location.origin}).then(function (u) {});
navigator.permissions.query({name: 'attribution-reporting'}).then(function (s) {});
`

// videoScript: media playback probing — encrypted media, autoplay,
// picture-in-picture. Deliberately no sensor usage: the accelerometer /
// gyroscope entries in its allow template are the unused delegations of
// Table 10.
const videoScript = `
navigator.requestMediaKeySystemAccess('com.widevine.alpha', []).then(function (a) {});
var v = document.createElement('video');
v.play().catch(function () {});
v.requestPictureInPicture().catch(function () {});
document.featurePolicy.allowsFeature('autoplay');
document.getElementById('share').addEventListener('click', function () {
	navigator.clipboard.writeText(location.href);
	if (navigator.canShare) { navigator.share({url: location.href}); }
	v.requestFullscreen().catch(function () {});
});
`

// socialScript: static-only share/clipboard functionality behind a
// click — visible to static analysis, invisible to the no-interaction
// dynamic pass (facebook.com's unused clipboard-write / web-share /
// encrypted-media in Table 10).
const socialScript = `
var shareBtn = document.getElementById('share');
shareBtn.addEventListener('click', function () {
	if (navigator.canShare) { navigator.share({url: location.href}); }
	navigator.clipboard.writeText(location.href);
});
var emCfg = 'requestMediaKeySystemAccess';
`

// inertWidgetScript is a widget that performs no permission-related
// work at all — like most like-buttons and login shims in the wild.
const inertWidgetScript = `
var mounted = false;
window.addEventListener('load', function () { mounted = true; });
`

// chatScript is the LiveChat-style customer-support widget of §5.2: it
// performs no permission-related invocations at all and contains none of
// the APIs statically — instead of video calls it posts a meeting URL.
const chatScript = `
var state = {open: false};
window.addEventListener('load', function () { state.open = true; });
function startMeeting() {
	fetch('/meeting').then(function (r) { return r; });
	console.log('meeting url sent to visitor');
}
// The chat's media player wires the benign delegations (autoplay,
// fullscreen, picture-in-picture, clipboard-write) behind clicks —
// static evidence exists for those. What it NEVER touches, even in
// code, are camera / microphone / clipboard-read / display-capture:
// exactly the §5.2 finding.
var theater = document.getElementById('share');
theater.addEventListener('click', function () {
	var vid = document.createElement('video');
	vid.setAttribute('autoplay', '');
	vid.play().catch(function () {});
	vid.requestPictureInPicture().catch(function () {});
	vid.requestFullscreen().catch(function () {});
	navigator.clipboard.writeText('chat transcript');
});
setTimeout(function () { if (state.open) { console.log('chat ready'); } }, 100);
`

// paymentScript actually uses the payment permission.
const paymentScript = `
var req = new PaymentRequest([{supportedMethods: 'basic-card'}], {total: {amount: {value: '1.00'}}});
req.canMakePayment().then(function (ok) {});
`

// challengeScript: Cloudflare-style challenge widget probing isolation
// and private state tokens.
const challengeScript = `
var iso = window.isSecureContext;
var coi = 'crossOriginIsolated probe';
var probe = 'hasPrivateToken';
document.featurePolicy.allowedFeatures();
navigator.permissions.query({name: 'storage-access'}).then(function (s) {});
document.hasStorageAccess().then(function (h) { if (!h) { document.requestStorageAccess().catch(function () {}); } });
`

// sessionScript: identity widgets (Google session) using FedCM/OTP.
const sessionScript = `
navigator.credentials.get({identity: {providers: []}}).then(function (c) {}).catch(function () {});
`

// trackerFrameScript: generic tracking iframe — battery plus topics from
// inside the frame (Table 4: battery's embedded contexts are 96.83%
// first-party: the tracker calls it in its own iframe).
const trackerFrameScript = `
navigator.getBattery().then(function (b) { var lvl = b.level; });
document.browsingTopics().then(function (t) {}).catch(function () {});
navigator.userAgentData.getHighEntropyValues(['arch', 'model']).then(function (h) {});
`

// supportUnusedScript: customer-support widgets other than LiveChat —
// same over-permissioned pattern (camera/microphone delegated, unused).
const supportUnusedScript = `
var cfg = {plan: 'basic'};
window.addEventListener('load', function () { console.log('support widget ready'); });
`

// mapScript: embedded maps use geolocation when delegated.
const mapScript = `
navigator.permissions.query({name: 'geolocation'}).then(function (s) {
	if (s.state !== 'denied') {
		navigator.geolocation.getCurrentPosition(function (p) {}, function () {});
	}
});
`

// Catalog is the widget population, calibrated to Tables 3, 7, 10 and
// 13. InclusionProb values are Table 3 counts divided by 817,800 (or
// Table 7 counts for delegation-dominant widgets); DelegationRate is the
// Table 7 / Table 3 ratio.
var Catalog = []Widget{
	{
		// google.com is the most-included embed (Table 3) but almost
		// never delegated-to (4.95%, §4.2) — below the 5% threshold, so
		// it must not show up in the over-permission analysis even
		// though its frames are permission-inert.
		Site: "google.com", Path: "/widget", Category: "session",
		InclusionProb: 0.0651, DelegationRate: 0.0495,
		AllowTemplate: "identity-credentials-get; otp-credentials",
		Script:        inertWidgetScript,
	},
	{
		Site: "youtube.com", Path: "/embed", Category: "multimedia",
		InclusionProb: 0.0343, DelegationRate: 0.644,
		AllowTemplate: "accelerometer; autoplay; clipboard-write; encrypted-media; gyroscope; picture-in-picture; web-share",
		// Video embeds pair the UA-CH wildcards with a sizeable disable
		// block — the embedded-header mix of §4.3.2 (51% disable / 31% '*').
		Header: "interest-cohort=(), camera=(), microphone=(), geolocation=(), usb=(), midi=(), magnetometer=(), display-capture=(), payment=(), autoplay=(self), encrypted-media=(self), fullscreen=(self), " + chClientHintsAllAllowed,
		Script: videoScript,
		Lazy:   true,
	},
	{
		Site: "doubleclick.net", Path: "/ads", Category: "ads",
		InclusionProb: 0.0318, DelegationRate: 0.679,
		AllowTemplate: "attribution-reporting; run-ad-auction; join-ad-interest-group; private-aggregation",
		Header:        "camera=(), microphone=(), geolocation=(), payment=(), usb=(), serial=(), hid=(), bluetooth=(), " + chClientHintsAllAllowed,
		Script:        adScript,
	},
	{
		Site: "googlesyndication.com", Path: "/safeframe", Category: "ads",
		InclusionProb: 0.0309, DelegationRate: 0.802,
		AllowTemplate: "attribution-reporting; run-ad-auction; join-ad-interest-group",
		Header:        "camera=(), microphone=(), geolocation=(), display-capture=(), " + chClientHintsAllAllowed,
		Script:        adScript,
		// Safeframes nest the actual creative: a second-hop delegation
		// the embedding website cannot see or prevent.
		NestedIframe: `<iframe src="https://www.2mdn.net/creative" allow="attribution-reporting; run-ad-auction"></iframe>`,
	},
	{
		// The nested creative CDN: never embedded directly by websites
		// (InclusionProb 0), only reachable through safeframes.
		Site: "2mdn.net", Path: "/creative", Category: "ads",
		InclusionProb: 0, DelegationRate: 0,
		Header: chClientHintsAllAllowed,
		Script: adScript,
	},
	{
		// facebook.com's delegated clipboard-write / web-share /
		// encrypted-media are UNUSED (Table 10 row 3): the like button
		// performs no permission-related work.
		Site: "facebook.com", Path: "/plugins/like", Category: "social",
		InclusionProb: 0.0256, DelegationRate: 0.847,
		AllowTemplate: "clipboard-write; web-share; encrypted-media",
		Script:        inertWidgetScript,
	},
	{
		Site: "yandex.com", Path: "/metrica", Category: "tracking",
		InclusionProb: 0.0231, DelegationRate: 0.02,
		AllowTemplate: "storage-access",
		Script:        trackerFrameScript,
	},
	{
		Site: "twitter.com", Path: "/tweet", Category: "social",
		InclusionProb: 0.0218, DelegationRate: 0.03,
		AllowTemplate: "web-share",
		Script:        socialScript,
	},
	{
		Site: "livechatinc.com", Path: "/chat", Category: "customer-support",
		InclusionProb: 0.0168, DelegationRate: 0.9969,
		// The exact template of §5.2, wildcards included.
		AllowTemplate: "clipboard-read; clipboard-write; autoplay; microphone *; camera *; display-capture *; picture-in-picture *; fullscreen *",
		Script:        chatScript,
	},
	{
		Site: "criteo.com", Path: "/retarget", Category: "ads",
		InclusionProb: 0.0165, DelegationRate: 0.358,
		AllowTemplate: "attribution-reporting",
		Header:        chClientHintsAllAllowed,
		Script:        adScript,
	},
	{
		Site: "cloudflare.com", Path: "/challenge", Category: "other",
		InclusionProb: 0.0164, DelegationRate: 0.989,
		AllowTemplate: "cross-origin-isolated; private-state-token-issuance",
		Script:        challengeScript,
	},
	{
		Site: "stripe.com", Path: "/checkout", Category: "payment",
		InclusionProb: 0.0047, DelegationRate: 0.93,
		AllowTemplate: "payment",
		Header:        "payment=(self), camera=()",
		Script:        paymentScript,
	},
	{
		Site: "vimeo.com", Path: "/video", Category: "multimedia",
		InclusionProb: 0.0027, DelegationRate: 0.91,
		AllowTemplate: "autoplay; fullscreen; picture-in-picture; encrypted-media",
		Script:        videoScript,
		Lazy:          true,
	},
	{
		Site: "google-maps.com", Path: "/maps", Category: "maps",
		InclusionProb: 0.0035, DelegationRate: 0.55,
		AllowTemplate: "geolocation",
		Script:        mapScript,
		Lazy:          true,
	},
	{
		// Generic hosted video players: the bulk of autoplay /
		// encrypted-media / fullscreen delegation that makes autoplay the
		// most-delegated permission in Table 8.
		Site: "playercdn.net", Path: "/player", Category: "multimedia",
		InclusionProb: 0.04, DelegationRate: 0.9,
		AllowTemplate: "autoplay; fullscreen; picture-in-picture",
		Script:        videoScript,
		Lazy:          true,
	},
	{
		// Video conferencing: camera/microphone delegations that ARE
		// used — the counterweight keeping over-permissioning a property
		// of specific widgets, not of delegation per se.
		Site: "meetwidget.com", Path: "/room", Category: "conferencing",
		InclusionProb: 0.012, DelegationRate: 0.9,
		AllowTemplate: "microphone *; camera *; display-capture",
		Script: `
navigator.permissions.query({name: 'camera'}).then(function (s) {});
navigator.mediaDevices.getUserMedia({audio: true, video: true}).then(function (st) {}).catch(function () {});
document.getElementById('share').addEventListener('click', function () {
	navigator.mediaDevices.getDisplayMedia({video: true}).catch(function () {});
});
`,
	},
	{
		Site: "hcaptcha.com", Path: "/captcha", Category: "other",
		InclusionProb: 0.01, DelegationRate: 0.6,
		AllowTemplate: "private-state-token-issuance",
		Script:        challengeScript,
	},
	// Long tail of Table 13.
	{
		Site: "youtube-nocookie.com", Path: "/embed", Category: "multimedia",
		InclusionProb: 0.00125, DelegationRate: 0.96,
		AllowTemplate: "accelerometer; autoplay; clipboard-write; encrypted-media; gyroscope; picture-in-picture",
		Script:        videoScript, Lazy: true,
	},
	{
		Site: "razorpay.com", Path: "/pay", Category: "payment",
		InclusionProb: 0.0005, DelegationRate: 0.95,
		AllowTemplate: "payment; clipboard-write; camera",
		Script:        supportUnusedScript, // delegated but unused (Table 10)
	},
	{
		Site: "ladesk.com", Path: "/chat", Category: "customer-support",
		InclusionProb: 0.00039, DelegationRate: 0.95,
		AllowTemplate: "microphone; camera",
		Script:        supportUnusedScript,
	},
	{
		Site: "driftt.com", Path: "/widget", Category: "customer-support",
		InclusionProb: 0.00037, DelegationRate: 0.94,
		AllowTemplate: "encrypted-media",
		Script:        supportUnusedScript,
	},
	{
		Site: "wixapps.net", Path: "/app", Category: "mixed",
		InclusionProb: 0.00032, DelegationRate: 0.94,
		// §4.2.1: always delegates the same five regardless of purpose.
		AllowTemplate: "autoplay; camera; microphone; geolocation; vr",
		Script:        videoScript, // uses autoplay/media only
	},
	{
		Site: "qualified.com", Path: "/meet", Category: "customer-support",
		InclusionProb: 0.00014, DelegationRate: 0.95,
		AllowTemplate: "microphone; camera",
		Script:        supportUnusedScript,
	},
	{
		Site: "dailymotion.com", Path: "/player", Category: "multimedia",
		InclusionProb: 0.00013, DelegationRate: 0.95,
		AllowTemplate: "accelerometer; gyroscope; clipboard-write; web-share; encrypted-media",
		Script:        supportUnusedScript, // none used (Table 13)
		Lazy:          true,
	},
	{
		Site: "tinypass.com", Path: "/paywall", Category: "payment",
		InclusionProb: 0.00013, DelegationRate: 0.92,
		AllowTemplate: "payment",
		Script:        supportUnusedScript,
	},
	{
		Site: "imbox.io", Path: "/chat", Category: "customer-support",
		InclusionProb: 0.00012, DelegationRate: 0.95,
		AllowTemplate: "camera; microphone",
		Script:        supportUnusedScript,
	},
	{
		Site: "glassix.com", Path: "/chat", Category: "customer-support",
		InclusionProb: 0.0001, DelegationRate: 0.95,
		AllowTemplate: "camera; microphone; display-capture",
		Script:        supportUnusedScript,
	},
	{
		Site: "vidyard.com", Path: "/player", Category: "multimedia",
		InclusionProb: 0.00006, DelegationRate: 0.93,
		AllowTemplate: "camera; microphone; clipboard-write; display-capture",
		Script:        supportUnusedScript,
	},
	{
		Site: "jotform.com", Path: "/form", Category: "mixed",
		InclusionProb: 0.00004, DelegationRate: 0.92,
		AllowTemplate: "camera; geolocation; microphone",
		Script:        supportUnusedScript,
	},
	{
		Site: "typeform.com", Path: "/form", Category: "mixed",
		InclusionProb: 0.00004, DelegationRate: 0.9,
		AllowTemplate: "camera; microphone",
		Script:        supportUnusedScript,
	},
}

// WidgetBySite returns the catalog entry for a site.
func WidgetBySite(site string) (Widget, bool) {
	for _, w := range Catalog {
		if w.Site == site {
			return w, true
		}
	}
	return Widget{}, false
}
