package synthweb

import (
	"fmt"
	"math/rand"
	"strings"
)

// SiteKind classifies the fate of a site visit, reproducing the
// crawl-failure taxonomy of §4 (counts out of 1M: 27,733 unreachable,
// 28,700 timeouts, 60,183 ephemeral collection errors, 315 minor
// crawler errors).
type SiteKind uint8

const (
	KindOK SiteKind = iota
	// KindUnreachable: the host does not resolve (ERR_NAME_NOT_RESOLVED).
	KindUnreachable
	// KindTimeout: the server stalls past the crawler deadline.
	KindTimeout
	// KindEphemeral: the response dies mid-body (execution context
	// destroyed analogue).
	KindEphemeral
	// KindMinor: the server speaks garbage, crashing the client parser.
	KindMinor
)

func (k SiteKind) String() string {
	switch k {
	case KindOK:
		return "ok"
	case KindUnreachable:
		return "unreachable"
	case KindTimeout:
		return "timeout"
	case KindEphemeral:
		return "ephemeral"
	case KindMinor:
		return "minor"
	}
	return "unknown"
}

// Category is a coarse site vertical, which modulates widget and script
// inclusion (video sites embed players, news sites embed ads, shops
// embed support chats).
type Category string

const (
	CatBusiness  Category = "business"
	CatBlog      Category = "blog"
	CatNews      Category = "news"
	CatEcommerce Category = "ecommerce"
	CatVideo     Category = "video"
	CatLanding   Category = "landing"
)

var categories = []struct {
	cat    Category
	weight float64
}{
	{CatBusiness, 0.31}, {CatBlog, 0.20}, {CatNews, 0.12},
	{CatEcommerce, 0.15}, {CatVideo, 0.08}, {CatLanding, 0.14},
}

// WidgetInclude is one widget embedding on a site.
type WidgetInclude struct {
	WidgetIndex    int
	WithDelegation bool
	Lazy           bool
}

// Site is one generated website descriptor. It is computed purely from
// (Config.Seed, rank), so the population is reproducible without
// storing anything (C1-C4 of the paper's reproducibility criteria).
type Site struct {
	Rank     int
	Host     string
	Kind     SiteKind
	Category Category

	// Fault is the chaos-layer failure mode injected on top of an
	// otherwise-healthy site (FaultNone when chaos is off or the site
	// was spared). Only KindOK sites carry faults: the polite SiteKind
	// taxonomy already covers the others.
	Fault Fault

	// Headers ("" = absent).
	PermissionsPolicy string
	FeaturePolicy     string
	ReportOnly        string
	CSP               string

	Widgets      []WidgetInclude
	ScriptIdx    []int // indexes into HostScripts
	LocalIframes int   // srcdoc consent/banner frames
	PlainIframes int   // same-site iframes without permission relevance

	// InternalPages lists same-site paths linked from the landing page.
	// Some carry permission functionality the landing page lacks — the
	// beyond-landing-page blind spot of §6.1 (store locators, checkout
	// pages), which the crawler's FollowInternalLinks mode can recover.
	InternalPages []string
}

// URL returns the site's landing page URL.
func (s Site) URL() string { return "https://" + s.Host + "/" }

// Config calibrates the population. Every default is annotated with the
// paper statistic it encodes.
type Config struct {
	Seed     int64
	NumSites int

	UnreachableRate float64 // 27,733/1M
	TimeoutRate     float64 // 28,700/1M
	EphemeralRate   float64 // 60,183/1M
	MinorRate       float64 // 315/1M (rounded up to stay visible at small N)

	TopHeaderRate     float64 // 4.5% of top-level documents serve Permissions-Policy
	BrokenHeaderShare float64 // ≈5.5% of header sites have syntax-invalid headers
	MisconfigShare    float64 // ≈13.4% of header sites have semantic defects
	FPHeaderRate      float64 // ≈0.5% serve the legacy Feature-Policy header
	BothHeadersShare  float64 // small overlap serves both (2,302 sites)

	CSPRate          float64 // share of sites with any CSP
	CSPFrameSrcShare float64 // share of CSP sites restricting frames

	LocalIframeRate float64 // 54.1% of embedded documents are local
	PlainIframeRate float64 // filler iframes to reach 3.2 per framed site

	// Chaos is the fault-injection layer (off by default): hostile
	// server behaviours layered over the polite failure taxonomy.
	Chaos ChaosConfig
}

// DefaultConfig returns the paper-calibrated configuration.
func DefaultConfig() Config {
	return Config{
		Seed:     1,
		NumSites: 20000,

		UnreachableRate: 0.0277,
		TimeoutRate:     0.0287,
		EphemeralRate:   0.0602,
		MinorRate:       0.0004,

		TopHeaderRate:     0.045,
		BrokenHeaderShare: 0.055,
		MisconfigShare:    0.134,
		FPHeaderRate:      0.005,
		BothHeadersShare:  0.05,

		CSPRate:          0.12,
		CSPFrameSrcShare: 0.25,

		LocalIframeRate: 0.62,
		PlainIframeRate: 0.55,
	}
}

// tlds gives hosts registrable-domain variety.
var tlds = []string{"com", "com", "com", "net", "org", "de", "co.uk", "io", "fr", "ru", "com.br", "info", "nl", "it", "es"}

// siteSeed decorrelates per-site RNG streams. Feeding consecutive seeds
// straight into rand.NewSource leaves the early draws of neighbouring
// streams correlated (empirically, a fixed draw index across thousands
// of consecutive seeds can avoid whole sub-intervals of [0,1), silently
// zeroing out low-probability events). splitmix64 finalization breaks
// the correlation.
func siteSeed(seed int64, rank int, stream uint64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(rank)*0xBF58476D1CE4E5B9 + stream
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Generate deterministically computes the descriptor for one site rank
// (1-based).
func (c Config) Generate(rank int) Site {
	rng := rand.New(rand.NewSource(siteSeed(c.Seed, rank, 0x1)))
	s := Site{
		Rank: rank,
		Host: fmt.Sprintf("www.site%06d.%s", rank, tlds[rng.Intn(len(tlds))]),
	}

	// Fate.
	switch f := rng.Float64(); {
	case f < c.UnreachableRate:
		s.Kind = KindUnreachable
	case f < c.UnreachableRate+c.TimeoutRate:
		s.Kind = KindTimeout
	case f < c.UnreachableRate+c.TimeoutRate+c.EphemeralRate:
		s.Kind = KindEphemeral
	case f < c.UnreachableRate+c.TimeoutRate+c.EphemeralRate+c.MinorRate:
		s.Kind = KindMinor
	default:
		s.Kind = KindOK
	}

	// Chaos fault, from its own decorrelated stream so toggling chaos
	// never perturbs the rest of the population.
	if s.Kind == KindOK && c.Chaos.Enabled && c.Chaos.SiteRate > 0 {
		cc := c.Chaos.withDefaults(c.Seed)
		crng := rand.New(rand.NewSource(siteSeed(cc.Seed, rank, 0x7)))
		if crng.Float64() < cc.SiteRate {
			kinds := cc.kinds()
			s.Fault = kinds[crng.Intn(len(kinds))]
		}
	}

	// Category.
	cw := rng.Float64()
	acc := 0.0
	for _, entry := range categories {
		acc += entry.weight
		if cw < acc {
			s.Category = entry.cat
			break
		}
	}
	if s.Category == "" {
		s.Category = CatLanding
	}

	// Headers.
	if rng.Float64() < c.TopHeaderRate {
		switch h := rng.Float64(); {
		case h < c.BrokenHeaderShare:
			s.PermissionsPolicy = pickTemplate(rng, BrokenHeaders)
		case h < c.BrokenHeaderShare+c.MisconfigShare:
			s.PermissionsPolicy = pickTemplate(rng, MisconfiguredHeaders)
		default:
			s.PermissionsPolicy = pickTemplate(rng, HeaderTemplates)
		}
		if rng.Float64() < c.BothHeadersShare {
			s.FeaturePolicy = pickTemplate(rng, FeaturePolicyHeaders)
		}
		// A small share of header adopters trials report-only mode.
		if rng.Float64() < 0.08 {
			s.ReportOnly = `camera=();report-to=default, microphone=();report-to=default`
		}
	} else if rng.Float64() < c.FPHeaderRate {
		s.FeaturePolicy = pickTemplate(rng, FeaturePolicyHeaders)
	}
	if rng.Float64() < c.CSPRate {
		if rng.Float64() < c.CSPFrameSrcShare {
			s.CSP = "default-src 'self'; frame-src *; script-src *"
		} else {
			s.CSP = "script-src 'self' https:; object-src 'none'"
		}
	}

	// Widgets.
	for i, w := range Catalog {
		p := w.InclusionProb * categoryWidgetBoost(s.Category, w.Category)
		if rng.Float64() >= p {
			continue
		}
		s.Widgets = append(s.Widgets, WidgetInclude{
			WidgetIndex:    i,
			WithDelegation: rng.Float64() < w.DelegationRate,
			Lazy:           w.Lazy && rng.Float64() < 0.7,
		})
	}

	// Host scripts.
	for i, hs := range HostScripts {
		p := hs.InclusionProb * categoryScriptBoost(s.Category, hs.Name)
		if rng.Float64() < p {
			s.ScriptIdx = append(s.ScriptIdx, i)
		}
	}

	// Local and plain iframes.
	if rng.Float64() < c.LocalIframeRate {
		s.LocalIframes = 1 + rng.Intn(3)
	}
	if rng.Float64() < c.PlainIframeRate {
		s.PlainIframes = 1 + rng.Intn(2)
	}

	// Internal pages. Shops get store locators (geolocation fires
	// there, not on the landing page); several verticals link an
	// about/news page without permission relevance.
	if s.Category == CatEcommerce && rng.Float64() < 0.35 {
		s.InternalPages = append(s.InternalPages, "/stores")
	}
	if rng.Float64() < 0.4 {
		s.InternalPages = append(s.InternalPages, "/about")
	}
	return s
}

func pickTemplate(rng *rand.Rand, ts []HeaderTemplate) string {
	total := 0.0
	for _, t := range ts {
		total += t.Weight
	}
	f := rng.Float64() * total
	for _, t := range ts {
		f -= t.Weight
		if f < 0 {
			return t.Value
		}
	}
	return ts[len(ts)-1].Value
}

func categoryWidgetBoost(site Category, widget string) float64 {
	switch {
	case site == CatVideo && widget == "multimedia":
		return 3.0
	case site == CatNews && widget == "ads":
		return 2.2
	case site == CatEcommerce && (widget == "customer-support" || widget == "payment" || widget == "conferencing"):
		return 2.5
	case site == CatBlog && widget == "social":
		return 1.6
	case site == CatLanding:
		return 0.5
	}
	return 1.0
}

func categoryScriptBoost(site Category, script string) float64 {
	switch {
	case site == CatNews && (script == "ads-loader" || script == "push-service"):
		return 2.5
	case site == CatEcommerce && (script == "gated-camera-1p" || script == "geolocation-1p" ||
		script == "webauthn-1p" || script == "gated-obfuscated-1p"):
		return 2.0
	case site == CatVideo && script == "gated-obfuscated-1p":
		return 2.0
	case site == CatVideo && script == "encrypted-media-1p":
		return 3.0
	case site == CatLanding:
		return 0.6
	}
	return 1.0
}

// RenderHTML renders the landing page for a site descriptor.
func (c Config) RenderHTML(s Site) string {
	rng := rand.New(rand.NewSource(siteSeed(c.Seed, s.Rank, 0x2)))
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><title>")
	fmt.Fprintf(&b, "Site %d (%s)", s.Rank, s.Category)
	b.WriteString("</title>\n")

	for _, idx := range s.ScriptIdx {
		hs := HostScripts[idx]
		if hs.URL != "" {
			fmt.Fprintf(&b, "<script src=%q></script>\n", hs.URL)
		} else {
			fmt.Fprintf(&b, "<script>%s</script>\n", hs.Body)
		}
	}
	b.WriteString("</head><body>\n")
	b.WriteString(`<div id="share"></div><div id="copy"></div><div id="call"></div><div id="near-me"></div>` + "\n")

	for _, wi := range s.Widgets {
		w := Catalog[wi.WidgetIndex]
		src := "https://www." + w.Site + w.Path
		attrs := fmt.Sprintf("src=%q id=%q class=%q", src, w.Category+"-frame", "embed "+w.Category)
		if wi.WithDelegation {
			attrs += fmt.Sprintf(" allow=%q", w.AllowTemplate)
		}
		if wi.Lazy {
			attrs += ` loading="lazy"`
		}
		fmt.Fprintf(&b, "<iframe %s></iframe>\n", attrs)
	}
	// Rare explicit directive forms (§4.2.2's tail: 0.40% explicit
	// 'src', 0.15% 'none', 0.16% single origin).
	switch r := rng.Float64(); {
	case r < 0.008:
		b.WriteString(`<iframe src="https://www.playercdn.net/player" allow="autoplay 'src'; fullscreen 'src'"></iframe>` + "\n")
	case r < 0.012:
		b.WriteString(`<iframe src="https://www.playercdn.net/player" allow="gamepad 'none'; autoplay"></iframe>` + "\n")
	case r < 0.016:
		b.WriteString(`<iframe src="https://www.google-maps.com/maps" allow="geolocation https://www.google-maps.com"></iframe>` + "\n")
	}
	for i := 0; i < s.LocalIframes; i++ {
		// Local-scheme documents: srcdoc banners and about:blank shims.
		if rng.Float64() < 0.5 {
			b.WriteString(`<iframe srcdoc="&lt;p&gt;consent banner&lt;/p&gt;" class="consent"></iframe>` + "\n")
		} else {
			b.WriteString(`<iframe src="about:blank" name="shim"></iframe>` + "\n")
		}
	}
	for i := 0; i < s.PlainIframes; i++ {
		fmt.Fprintf(&b, "<iframe src=\"/frame%d.html\" class=\"inhouse\"></iframe>\n", i)
	}
	for _, path := range s.InternalPages {
		fmt.Fprintf(&b, "<a href=%q>%s</a>\n", path, strings.TrimPrefix(path, "/"))
	}
	b.WriteString("<p>Synthetic content.</p></body></html>\n")
	return b.String()
}

// RenderInternalPage renders a linked same-site page.
func (c Config) RenderInternalPage(s Site, path string) (string, bool) {
	found := false
	for _, p := range s.InternalPages {
		if p == path {
			found = true
		}
	}
	if !found {
		return "", false
	}
	switch path {
	case "/stores":
		// The store locator actually uses geolocation on load — visible
		// only to a crawler that leaves the landing page.
		return `<!DOCTYPE html><html><body><h1>Find a store</h1>
<script>
navigator.geolocation.getCurrentPosition(function (pos) {
	var near = pos.coords.latitude;
}, function () {});
</script></body></html>`, true
	default:
		return `<!DOCTYPE html><html><body><h1>About us</h1><p>Nothing to see.</p></body></html>`, true
	}
}
