package synthweb

// EraConfig returns a population calibrated to a measurement year,
// enabling longitudinal comparisons like the one the paper draws
// against Kaleli et al.'s 2020 Feature-Policy study (100K sites, few
// header users, mostly turning features off).
//
//   - 2020: the Permissions-Policy header does not exist yet; a ~1% tail
//     serves the Feature-Policy header. Kaleli et al. found most of the
//     few adopters used it to switch features off.
//   - 2022: the rename has shipped; early Permissions-Policy adoption
//     (~1.5%, dominated by the single-directive FLoC opt-out), legacy
//     Feature-Policy still visible.
//   - 2024 (default): the paper's numbers.
func EraConfig(year int) Config {
	cfg := DefaultConfig()
	switch {
	case year <= 2020:
		cfg.TopHeaderRate = 0
		cfg.FPHeaderRate = 0.011
	case year <= 2022:
		cfg.TopHeaderRate = 0.015
		cfg.FPHeaderRate = 0.008
		cfg.BothHeadersShare = 0.12
	default:
		// the calibrated 2024 defaults
	}
	return cfg
}
