package synthweb

// HostScript is a script loaded by host pages: either a shared
// third-party library (the dominant source of top-level permission
// activity: 98.32% of top-level invocations come from 3P scripts,
// §4.1.1) or first-party code.
type HostScript struct {
	// URL is empty for inline (first-party) snippets; otherwise the
	// external script URL, whose site determines 1P/3P classification.
	URL string
	// Body is the JavaScript source.
	Body string
	// InclusionProb is the probability a site includes this script,
	// modulated by category affinity in the generator.
	InclusionProb float64
	// Name keys the script for category affinity rules.
	Name string
}

// HostScripts is the host-page script population. The bodies are chosen
// so the dynamic pipeline reproduces Table 4/5's ranking: General
// Permission APIs first by a wide margin (mostly via the deprecated
// Feature Policy API — §6.2's 429,259 websites), then battery,
// notifications, browsing topics.
var HostScripts = []HostScript{
	{
		Name: "tag-manager",
		URL:  "https://cdn.googletagmanager.com/gtag.js",
		// The ubiquitous tag loader: retrieves the full allowed-feature
		// list through the DEPRECATED Feature Policy API (most sites'
		// only general-API activity) and checks ad permissions. The body
		// is minified/obfuscated the way real tag loaders ship —
		// property names assembled at runtime — so it is INVISIBLE to
		// string-matching static analysis but fully visible dynamically.
		// This asymmetry is why the paper's dynamic rate (40.65%)
		// exceeds its static rate (30.5%).
		Body: `
var d = document, fpKey = 'feature' + 'Policy';
var fp = d[fpKey];
var allowed = fp ? fp['allowed' + 'Features']() : [];
if (allowed.includes('attribution-reporting')) { var arOK = true; }
var nv = window['navi' + 'gator'];
nv['permi' + 'ssions']['qu' + 'ery']({name: 'attribution-reporting'}).then(function (s) {}).catch(function () {});
`,
		InclusionProb: 0.25,
	},
	{
		Name: "analytics",
		URL:  "https://stats.metricscdn.net/analytics.js",
		// Fingerprint-flavoured analytics: battery + full feature list,
		// also shipped minified (dynamic-only visibility).
		Body: `
var w = window, n = w['navi' + 'gator'];
n['get' + 'Battery']().then(function (b) { var fp = b.level + ':' + b.charging; });
var d = document, fpObj = d['feature' + 'Policy'];
var surface = fpObj ? fpObj['feat' + 'ures']() : [];
var cnt = surface.length;
`,
		InclusionProb: 0.08,
	},
	{
		Name: "ads-loader",
		URL:  "https://pagead.adsloader-cdn.com/ads.js",
		// Top-level ad auction probing (browsing topics ranks 4th in
		// Table 4, 98% third-party at top level); minified build.
		Body: `
var d = document;
d['browsing' + 'Topics']().then(function (t) {}).catch(function () {});
navigator['permi' + 'ssions'].query({name: 'run-ad-auction'}).then(function (s) {});
d['feature' + 'Policy']['allows' + 'Feature']('join-ad-interest-group');
`,
		InclusionProb: 0.042,
	},
	{
		Name: "push-service",
		URL:  "https://sdk.pushnotify.com/web-push.js",
		// Web-push vendors drive 3P notification activity (89.18% 3P in
		// Table 4). Ships readable, so static analysis sees it too.
		Body: `
navigator.permissions.query({name: 'notifications'}).then(function (s) {
	if (s.state === 'prompt') { Notification.requestPermission().then(function (r) {}); }
});
navigator.serviceWorker.register('/sw.js').then(function (reg) {
	reg.pushManager.subscribe({userVisibleOnly: true}).catch(function () {});
});
`,
		InclusionProb: 0.05,
	},
	{
		Name: "antibot",
		URL:  "https://challenge.botguard.io/probe.js",
		// Anti-bot probe: checks a handful of permission states
		// (Table 5's mean of 1.74 specific permissions, max 33).
		Body: `
var checks = ['notifications', 'geolocation', 'microphone', 'camera', 'midi', 'push'];
checks.forEach(function (name) {
	navigator.permissions.query({name: name}).then(function (s) {}).catch(function () {});
});
var map = navigator.keyboard.getLayoutMap();
`,
		InclusionProb: 0.02,
	},
	{
		Name: "consent-manager",
		URL:  "https://cdn.consentframework.net/cmp.js",
		Body: `
document.featurePolicy.allowedFeatures();
document.hasStorageAccess().then(function (h) {});
`,
		InclusionProb: 0.05,
	},
	{
		Name: "geolocation-1p",
		// First-party store locator: geolocation is 81.03% first-party
		// at top level (Table 4) — the rare 1P-dominated permission.
		Body: `
function locate() {
	navigator.geolocation.getCurrentPosition(function (pos) {
		var near = pos.coords.latitude;
	}, function () {});
}
locate();
`,
		InclusionProb: 0.0045,
	},
	{
		Name: "webauthn-1p",
		Body: `
navigator.credentials.get({publicKey: {challenge: 'c'}}).then(function (cred) {}).catch(function () {});
`,
		InclusionProb: 0.006,
	},
	{
		Name: "keyboard-1p",
		Body: `
navigator.keyboard.getLayoutMap().then(function (m) {});
`,
		InclusionProb: 0.0009,
	},
	{
		Name: "copy-link-1p",
		// Static-only: the copy action sits behind a click, so the
		// no-interaction crawl sees it only statically (§4.1.3 /
		// Table 12's static-only population). Clipboard Write tops the
		// paper's Table 6 with 135,694 websites.
		Body: `
document.getElementById('copy').addEventListener('click', function () {
	navigator.clipboard.writeText(location.href);
});
`,
		InclusionProb: 0.14,
	},
	{
		Name: "share-button-1p",
		// Web Share ranks lower than Clipboard Write in Table 6 (54,995
		// vs 135,694): fewer sites wire the full share sheet.
		Body: `
document.getElementById('share').addEventListener('click', function () {
	navigator.share({url: location.href, title: document.title});
	navigator.clipboard.writeText(location.href);
});
`,
		InclusionProb: 0.06,
	},
	{
		Name: "gated-camera-1p",
		// Video-chat behind a call button: camera/microphone visible to
		// static analysis and the interaction pass only.
		Body: `
document.getElementById('call').addEventListener('click', function () {
	navigator.mediaDevices.getUserMedia({video: true, audio: true}).then(function (s) {});
});
`,
		InclusionProb: 0.028,
	},
	{
		Name: "gated-obfuscated-1p",
		// Minified screen-share behind a click: invisible to static
		// analysis AND to the no-interaction dynamic pass — only the
		// interaction experiment observes it. This is what keeps the
		// paper's Table 12 detection rates below 100%.
		Body: `
document.getElementById('call').addEventListener('click', function () {
	var n = window['navi' + 'gator'];
	n['mediaDevices']['getDisplay' + 'Media']({video: true}).catch(function () {});
	n['wake' + 'Lock']['request']('screen').catch(function () {});
});
`,
		InclusionProb: 0.06,
	},
	{
		Name: "gated-geo-1p",
		Body: `
document.getElementById('near-me').addEventListener('click', function () {
	navigator.geolocation.getCurrentPosition(function (p) {});
});
`,
		InclusionProb: 0.07,
	},
	{
		Name: "encrypted-media-1p",
		// First-party players: encrypted-media for video playback
		// (§4.1.4 "typical website functionality").
		Body: `
var em = navigator.requestMediaKeySystemAccess('org.w3.clearkey', []);
em.then(function (a) {}).catch(function () {});
`,
		InclusionProb: 0.012,
	},
	{
		Name: "battery-inline-1p",
		Body: `
navigator.getBattery().then(function (b) { if (b.level < 0.2) { console.log('low'); } });
`,
		InclusionProb: 0.012,
	},
	{
		Name: "dead-code-1p",
		// Dead permission code: statically detected, never executed —
		// one of the paper's documented static over-report sources.
		Body: `
var PREMIUM = false;
if (PREMIUM) {
	navigator.mediaDevices.getDisplayMedia({video: true});
	queryLocalFonts().then(function (f) {});
}
`,
		InclusionProb: 0.04,
	},
}

// HeaderTemplates are the top-level Permissions-Policy configurations.
// §4.3.1: "More than 50% of top-level websites adopt one of three
// identical configurations", suggesting copy-pasted templates; the most
// common sizes are 18 permissions (26.62%), 1 (24.33%) and 9 (8.47%).
type HeaderTemplate struct {
	Name   string
	Value  string
	Weight float64
}

// template18 is the classic "security headers" disable-everything
// template (18 directives, all empty allowlists).
const template18 = "accelerometer=(), autoplay=(), camera=(), display-capture=(), encrypted-media=(), fullscreen=(), geolocation=(), gyroscope=(), magnetometer=(), microphone=(), midi=(), payment=(), picture-in-picture=(), publickey-credentials-get=(), sync-xhr=(), usb=(), xr-spatial-tracking=(), interest-cohort=()"

// template1 is the famous single-directive FLoC opt-out.
const template1 = "interest-cohort=()"

// template9 mixes disables with self grants (9 directives).
const template9 = "camera=(), microphone=(), geolocation=(self), payment=(), usb=(), magnetometer=(), gyroscope=(), accelerometer=(), sync-xhr=(self)"

// HeaderTemplates weights reproduce the configuration-size distribution.
var HeaderTemplates = []HeaderTemplate{
	{Name: "disable-18", Value: template18, Weight: 0.2662},
	{Name: "floc-1", Value: template1, Weight: 0.2433},
	{Name: "mixed-9", Value: template9, Weight: 0.0847},
	{Name: "geo-self", Value: "geolocation=(self), camera=(), microphone=()", Weight: 0.09},
	{Name: "wildcard", Value: "fullscreen=*, autoplay=*, payment=(self)", Weight: 0.06},
	{Name: "third-party-geo", Value: `geolocation=(self "https://google-maps.com"), camera=()`, Weight: 0.03},
	{Name: "disable-powerful", Value: "camera=(), microphone=(), geolocation=(), display-capture=(), payment=()", Weight: 0.15},
	{Name: "kitchen-sink", Value: template18 + ", browsing-topics=(), attribution-reporting=(), join-ad-interest-group=(), run-ad-auction=(), idle-detection=(), serial=(), hid=(), bluetooth=(), local-fonts=(), keyboard-map=(), window-management=(), ambient-light-sensor=(), battery=(), gamepad=(), web-share=(self), clipboard-read=(), clipboard-write=(self), storage-access=(), screen-wake-lock=(), compute-pressure=(), pointer-lock=(), speaker-selection=(), otp-credentials=(), identity-credentials-get=(), publickey-credentials-create=(), top-level-storage-access=(), direct-sockets=(), keyboard-lock=(), system-wake-lock=(), vr=(), cross-origin-isolated=(), private-state-token-issuance=()", Weight: 0.04},
}

// BrokenHeaders are the syntax-invalid configurations of §4.3.3: the
// browser removes the whole header (≈5.5% of header-bearing sites),
// with Feature-Policy syntax the most common cause.
var BrokenHeaders = []HeaderTemplate{
	{Name: "fp-syntax", Value: "camera 'none'; microphone 'none'; geolocation 'self'", Weight: 0.6},
	{Name: "trailing-comma", Value: "camera=(), microphone=(),", Weight: 0.25},
	{Name: "uppercase", Value: "Camera=(), Microphone=()", Weight: 0.15},
}

// MisconfiguredHeaders parse but carry the semantic defect classes of
// §4.3.3 (unrecognized tokens, unquoted URLs, contradictions, url
// directives lacking self).
var MisconfiguredHeaders = []HeaderTemplate{
	{Name: "none-token", Value: "camera=(none), microphone=(none)", Weight: 0.35},
	{Name: "zero-token", Value: "interest-cohort=(0)", Weight: 0.1},
	{Name: "unquoted-url", Value: "geolocation=(self https://maps.example.com)", Weight: 0.25},
	{Name: "self-and-star", Value: "fullscreen=(self *), camera=()", Weight: 0.15},
	{Name: "url-without-self", Value: `camera=("https://meetwidget.com")`, Weight: 0.15},
}

// FeaturePolicyHeaders are legacy headers still served by ~0.51% of
// documents (Figure 2).
var FeaturePolicyHeaders = []HeaderTemplate{
	{Name: "fp-disable", Value: "camera 'none'; microphone 'none'; geolocation 'none'", Weight: 0.7},
	{Name: "fp-self", Value: "geolocation 'self'; camera 'self'", Weight: 0.3},
}
