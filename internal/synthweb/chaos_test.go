package synthweb

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"permodyssey/internal/browser"
)

// chaosServer starts a small population where every healthy site
// carries the given fault.
func chaosServer(t *testing.T, fault Fault, n int) *Server {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NumSites = n
	cfg.Seed = 42
	cfg.Chaos = ChaosConfig{Enabled: true, SiteRate: 1.0, Kinds: []Fault{fault},
		FlapFailures: 2, DripDelay: 30 * time.Millisecond, OversizeBytes: 256 << 10}
	srv := NewServer(cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// faultySite returns a site carrying the fault.
func faultySite(t *testing.T, srv *Server, fault Fault) Site {
	t.Helper()
	for _, s := range srv.Sites() {
		if s.Fault == fault {
			return s
		}
	}
	t.Fatalf("no site carries fault %v", fault)
	return Site{}
}

// TestChaosAssignmentDeterministic: fault assignment is a pure function
// of (seed, rank); chaos off means no faults; only healthy sites carry
// them.
func TestChaosAssignmentDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSites = 400
	cfg.Seed = 7
	cfg.Chaos = DefaultChaosConfig()

	genAll := func(c Config) []Site {
		out := make([]Site, c.NumSites)
		for i := range out {
			out[i] = c.Generate(i)
		}
		return out
	}
	a, b := genAll(cfg), genAll(cfg)
	faults := 0
	for i := range a {
		if a[i].Fault != b[i].Fault {
			t.Fatalf("rank %d: fault differs between identical generations (%v vs %v)", i, a[i].Fault, b[i].Fault)
		}
		if a[i].Fault != FaultNone {
			faults++
			if a[i].Kind != KindOK {
				t.Errorf("rank %d: fault %v on non-OK site kind %v", i, a[i].Fault, a[i].Kind)
			}
		}
	}
	if faults == 0 {
		t.Fatal("default chaos rate injected no faults in 400 sites")
	}

	cfg.Chaos = ChaosConfig{}
	for i, s := range genAll(cfg) {
		if s.Fault != FaultNone {
			t.Fatalf("rank %d: fault %v with chaos disabled", i, s.Fault)
		}
	}

	// A different chaos seed re-deals the faults without touching the
	// underlying site population.
	cfg.Chaos = DefaultChaosConfig()
	cfg.Chaos.Seed = 99
	c := genAll(cfg)
	moved := false
	for i := range a {
		if a[i].Kind != c[i].Kind {
			t.Fatalf("rank %d: chaos seed changed the site kind", i)
		}
		if a[i].Fault != c[i].Fault {
			moved = true
		}
	}
	if !moved {
		t.Error("changing the chaos seed never moved a fault")
	}
}

func TestFaultParsing(t *testing.T) {
	for _, f := range AllFaults {
		got, err := ParseFault(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFault(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := ParseFault("nonsense"); err == nil {
		t.Error("ParseFault accepted nonsense")
	}
	kinds, err := ParseFaultList("reset, flap")
	if err != nil || len(kinds) != 2 || kinds[0] != FaultReset || kinds[1] != FaultFlap {
		t.Errorf("ParseFaultList = %v, %v", kinds, err)
	}
}

// getFull performs a GET and reads the whole body, returning the first
// error of either stage — a mid-body reset only surfaces on the read.
func getFull(client *http.Client, url string) (string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

func TestFaultReset(t *testing.T) {
	srv := chaosServer(t, FaultReset, 40)
	site := faultySite(t, srv, FaultReset)
	_, err := getFull(srv.Client(2*time.Second), site.URL())
	if err == nil {
		t.Fatal("reset site served a complete response")
	}
	if !strings.Contains(err.Error(), "reset") && !strings.Contains(err.Error(), "EOF") {
		t.Errorf("want a reset/EOF error, got %v", err)
	}
}

func TestFaultSlowLoris(t *testing.T) {
	srv := chaosServer(t, FaultSlowLoris, 40)
	site := faultySite(t, srv, FaultSlowLoris)
	client := srv.Client(150 * time.Millisecond)
	start := time.Now()
	resp, err := client.Get(site.URL())
	if err == nil {
		// Headers arrive promptly; the drip starves the body read.
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatal("slow-loris site completed inside the deadline")
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("failed too fast for a drip-feed: %v (%v)", elapsed, err)
	}
}

func TestFaultMalformedHeader(t *testing.T) {
	srv := chaosServer(t, FaultMalformedHeader, 40)
	site := faultySite(t, srv, FaultMalformedHeader)
	_, err := srv.Client(2 * time.Second).Get(site.URL())
	if err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("want a malformed-response error, got %v", err)
	}
}

func TestFaultOversizedHeader(t *testing.T) {
	srv := chaosServer(t, FaultOversizedHeader, 40)
	site := faultySite(t, srv, FaultOversizedHeader)
	_, err := srv.Client(2 * time.Second).Get(site.URL())
	if err == nil || !strings.Contains(err.Error(), "headers exceeded") {
		t.Fatalf("want a headers-exceeded error, got %v", err)
	}
}

func TestFaultRedirectLoop(t *testing.T) {
	srv := chaosServer(t, FaultRedirectLoop, 40)
	site := faultySite(t, srv, FaultRedirectLoop)
	_, err := srv.Client(2 * time.Second).Get(site.URL())
	if err == nil || !strings.Contains(err.Error(), "redirects") {
		t.Fatalf("want a redirect-loop error, got %v", err)
	}
}

func TestFaultFlap(t *testing.T) {
	srv := chaosServer(t, FaultFlap, 40)
	site := faultySite(t, srv, FaultFlap)
	client := srv.Client(2 * time.Second)

	// The first FlapFailures attempts die, then the site recovers.
	for i := 0; i < 2; i++ {
		if _, err := getFull(client, site.URL()); err == nil {
			t.Fatalf("flapping site served attempt %d", i+1)
		}
	}
	body, err := getFull(client, site.URL())
	if err != nil {
		t.Fatalf("flapping site still failing after %d attempts: %v", 2, err)
	}
	if !strings.Contains(body, "<html") {
		t.Fatal("recovered flap response is not the healthy page")
	}
}

func TestFaultOversizedBody(t *testing.T) {
	srv := chaosServer(t, FaultOversizedBody, 40)
	site := faultySite(t, srv, FaultOversizedBody)

	f := browser.NewHTTPFetcher(srv.Client(5 * time.Second))
	f.MaxBodyBytes = 64 << 10
	resp, err := f.Fetch(context.Background(), site.URL())
	if err != nil {
		t.Fatal(err)
	}
	if !resp.BodyTruncated {
		t.Fatal("oversized body not marked truncated")
	}
	if int64(len(resp.Body)) != f.MaxBodyBytes {
		t.Errorf("truncated body length = %d, want %d", len(resp.Body), f.MaxBodyBytes)
	}
	// The truncated prefix is still the real page: the padding comes
	// after the closing </html>.
	if !strings.Contains(resp.Body, "<html") {
		t.Error("truncated prefix lost the document")
	}
}

// TestSubresourceFaultDeterministic: the shared-host fault decision is
// a pure function of (seed, host) and respects the configured rate.
func TestSubresourceFaultDeterministic(t *testing.T) {
	cc := DefaultChaosConfig()
	hosts := []string{"widget-pay.test", "cdn-a.test", "widget-map.test", "cdn-b.test"}
	faulted := 0
	for _, h := range hosts {
		a := cc.SubresourceFault(1, h)
		if b := cc.SubresourceFault(1, h); a != b {
			t.Fatalf("host %s: decision not deterministic", h)
		}
		if a != FaultNone {
			faulted++
			if a != FaultReset {
				t.Errorf("host %s: subresource fault %v, want reset-only", h, a)
			}
		}
	}
	off := ChaosConfig{}
	for _, h := range hosts {
		if off.SubresourceFault(1, h) != FaultNone {
			t.Fatalf("disabled chaos faulted host %s", h)
		}
	}
}
