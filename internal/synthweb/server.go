package synthweb

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Server serves the synthetic web over a single loopback listener with
// virtual hosting: every synthetic site, widget host and script CDN is
// dispatched by Host header. The companion Transport makes an ordinary
// *http.Client resolve any https:// URL to this listener, so the
// crawler performs genuine HTTP requests end to end — the paper's
// Playwright-against-live-web substrate swapped for
// net/http-against-loopback.
type Server struct {
	Config Config

	listener net.Listener
	server   *http.Server

	mu        sync.RWMutex
	siteRank  map[string]int // site host → rank
	scriptURL map[string]string
	widgetKey map[string]int // widget host → catalog index

	// StallTime is how long KindTimeout sites hang before responding;
	// set it above the crawler's per-site deadline.
	StallTime time.Duration

	// chaos is the resolved fault-injection config; flapCount tracks
	// how many requests each flapping host has failed so far.
	chaos     ChaosConfig
	flapMu    sync.Mutex
	flapCount map[string]int
}

// NewServer builds (but does not start) a Server for the population.
func NewServer(cfg Config) *Server {
	s := &Server{
		Config:    cfg,
		siteRank:  make(map[string]int, cfg.NumSites),
		scriptURL: map[string]string{},
		widgetKey: map[string]int{},
		StallTime: 2 * time.Second,
		chaos:     cfg.Chaos.withDefaults(cfg.Seed),
		flapCount: map[string]int{},
	}
	for rank := 1; rank <= cfg.NumSites; rank++ {
		site := cfg.Generate(rank)
		s.siteRank[site.Host] = rank
	}
	for i, w := range Catalog {
		s.widgetKey["www."+w.Site] = i
	}
	for _, hs := range HostScripts {
		if hs.URL != "" {
			s.scriptURL[strings.TrimPrefix(hs.URL, "https://")] = hs.Body
		}
	}
	return s
}

// Start begins serving on a loopback port.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	s.listener = ln
	s.server = &http.Server{Handler: http.HandlerFunc(s.handle)}
	go func() { _ = s.server.Serve(ln) }()
	return nil
}

// Close stops the server.
func (s *Server) Close() error {
	if s.server == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return s.server.Shutdown(ctx)
}

// Addr returns the listener address.
func (s *Server) Addr() string {
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Sites returns every generated site descriptor.
func (s *Server) Sites() []Site {
	out := make([]Site, 0, s.Config.NumSites)
	for rank := 1; rank <= s.Config.NumSites; rank++ {
		out = append(out, s.Config.Generate(rank))
	}
	return out
}

// Transport returns an http.RoundTripper that dials this server for
// every https URL, failing unreachable synthetic hosts with a DNS
// error — the crawler's ERR_NAME_NOT_RESOLVED analogue.
func (s *Server) Transport() http.RoundTripper {
	return &http.Transport{
		DialTLSContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			host := addr
			if h, _, err := net.SplitHostPort(addr); err == nil {
				host = h
			}
			if rank, ok := s.rankOf(host); ok {
				if s.Config.Generate(rank).Kind == KindUnreachable {
					return nil, &net.DNSError{Err: "no such host", Name: host, IsNotFound: true}
				}
			}
			var d net.Dialer
			return d.DialContext(ctx, "tcp", s.Addr())
		},
		// The synthetic web is plain HTTP behind a fake-TLS dial.
		DisableCompression: true,
		// Nearly every site host is visited exactly once, so keep-alive
		// conns are only worth caching for the shared widget/CDN hosts.
		// Without a tight global cap, a large crawl accumulates one idle
		// socket per visited host and exhausts file descriptors (observed
		// at 20k sites: accept4 "too many open files").
		MaxIdleConns:        128,
		MaxIdleConnsPerHost: 4,
		IdleConnTimeout:     2 * time.Second,
		// Bound response headers so FaultOversizedHeader hosts fail the
		// way a hardened production crawler would, instead of buffering
		// the transport's default 10 MiB per response.
		MaxResponseHeaderBytes: 256 << 10,
	}
}

// Client returns an http.Client over Transport.
func (s *Server) Client(timeout time.Duration) *http.Client {
	return &http.Client{Transport: s.Transport(), Timeout: timeout}
}

func (s *Server) rankOf(host string) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.siteRank[host]
	return r, ok
}

func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	host := r.Host
	if h, _, err := net.SplitHostPort(host); err == nil {
		host = h
	}

	// Script CDNs.
	if body, ok := s.scriptURL[host+r.URL.Path]; ok {
		if s.Config.Chaos.SubresourceFault(s.Config.Seed, host) != FaultNone {
			s.resetMidBody(w)
			return
		}
		w.Header().Set("Content-Type", "application/javascript")
		fmt.Fprint(w, body)
		return
	}
	if r.URL.Path == "/sw.js" {
		w.Header().Set("Content-Type", "application/javascript")
		fmt.Fprint(w, "// service worker stub")
		return
	}

	// Widget hosts.
	if idx, ok := s.widgetKey[host]; ok {
		if s.Config.Chaos.SubresourceFault(s.Config.Seed, host) != FaultNone {
			s.resetMidBody(w)
			return
		}
		s.serveWidget(w, r, idx)
		return
	}

	// Synthetic sites.
	if rank, ok := s.rankOf(host); ok {
		s.serveSite(w, r, rank)
		return
	}
	http.NotFound(w, r)
}

func (s *Server) serveWidget(w http.ResponseWriter, r *http.Request, idx int) {
	widget := Catalog[idx]
	if widget.Header != "" {
		w.Header().Set("Permissions-Policy", widget.Header)
	}
	w.Header().Set("Content-Type", "text/html")
	fmt.Fprintf(w, `<!DOCTYPE html><html><head><title>%s widget</title></head><body>
<div id="share"></div>
<script>%s</script>
%s
</body></html>`, widget.Site, widget.Script, widget.NestedIframe)
}

func (s *Server) serveSite(w http.ResponseWriter, r *http.Request, rank int) {
	site := s.Config.Generate(rank)

	switch site.Kind {
	case KindTimeout:
		time.Sleep(s.StallTime)
		// After stalling past every reasonable deadline, answer anyway:
		// a crawler with a generous budget would classify it as slow.
		fmt.Fprint(w, "<html><body>slow</body></html>")
		return
	case KindEphemeral:
		// Announce more bytes than are sent: the client observes an
		// unexpected EOF mid-body, the paper's "execution context was
		// destroyed" analogue.
		w.Header().Set("Content-Type", "text/html")
		w.Header().Set("Content-Length", "4096")
		fmt.Fprint(w, "<html><body>ephem")
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
			}
		}
		return
	case KindMinor:
		// Speak garbage: the client fails with a malformed-response
		// error, the analogue of the 315 crawler-crashing sites.
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				fmt.Fprint(conn, "NOT-HTTP GARBAGE\r\n\r\n")
				conn.Close()
				return
			}
		}
		w.WriteHeader(http.StatusInternalServerError)
		return
	}

	// Chaos fault, layered over an otherwise-healthy site. applyFault
	// reports false when the fault lets this particular request through
	// (a flapping host that has recovered).
	if site.Fault != FaultNone && s.applyFault(w, r, site) {
		return
	}

	// Healthy site.
	switch {
	case r.URL.Path == "/" || r.URL.Path == "/index.html":
		if site.PermissionsPolicy != "" {
			w.Header().Set("Permissions-Policy", site.PermissionsPolicy)
		}
		if site.FeaturePolicy != "" {
			w.Header().Set("Feature-Policy", site.FeaturePolicy)
		}
		if site.ReportOnly != "" {
			w.Header().Set("Permissions-Policy-Report-Only", site.ReportOnly)
		}
		if site.CSP != "" {
			w.Header().Set("Content-Security-Policy", site.CSP)
		}
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, s.Config.RenderHTML(site))
	case strings.HasPrefix(r.URL.Path, "/frame"):
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, "<html><body><p>in-house frame</p></body></html>")
	default:
		if body, ok := s.Config.RenderInternalPage(site, r.URL.Path); ok {
			if site.PermissionsPolicy != "" {
				w.Header().Set("Permissions-Policy", site.PermissionsPolicy)
			}
			w.Header().Set("Content-Type", "text/html")
			fmt.Fprint(w, body)
			return
		}
		http.NotFound(w, r)
	}
}

// applyFault executes one chaos fault for a request to a fault-carrying
// site. It reports whether the request was consumed; false means the
// fault lets this request through (a recovered flapping host) and the
// healthy site should be served.
func (s *Server) applyFault(w http.ResponseWriter, r *http.Request, site Site) bool {
	switch site.Fault {
	case FaultReset:
		s.resetMidBody(w)
	case FaultSlowLoris:
		s.dripBody(w, r)
	case FaultMalformedHeader:
		s.malformedHeader(w)
	case FaultOversizedHeader:
		// A single header value past the client transport's
		// MaxResponseHeaderBytes budget; the body never matters.
		w.Header().Set("X-Chaos-Padding", strings.Repeat("x", 512<<10))
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, "<html><body>oversized header</body></html>")
	case FaultRedirectLoop:
		// Two paths that 302 to each other until the client gives up.
		target := "/chaos-loop-a"
		if r.URL.Path == "/chaos-loop-a" {
			target = "/chaos-loop-b"
		}
		http.Redirect(w, r, target, http.StatusFound)
	case FaultFlap:
		s.flapMu.Lock()
		failed := s.flapCount[site.Host]
		if failed >= s.chaos.FlapFailures {
			s.flapMu.Unlock()
			return false // recovered: serve the healthy site
		}
		s.flapCount[site.Host] = failed + 1
		s.flapMu.Unlock()
		s.resetMidBody(w)
	case FaultOversizedBody:
		if r.URL.Path != "/" && r.URL.Path != "/index.html" {
			return false
		}
		s.oversizedBody(w, site)
	default:
		return false
	}
	return true
}

// resetMidBody promises a body, sends a fragment of it, then closes the
// connection with a TCP RST — the client observes a mid-body
// connection-reset (or unexpected EOF) error.
func (s *Server) resetMidBody(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	conn, buf, err := hj.Hijack()
	if err != nil {
		return
	}
	buf.WriteString("HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Length: 4096\r\n\r\n<html><body>res")
	buf.Flush()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0) // RST instead of FIN
	}
	conn.Close()
}

// dripBody serves headers promptly, then drips the body a few bytes at
// a time until the client hangs up — the slow-loris server. The page
// deadline, not this loop, ends the exchange.
func (s *Server) dripBody(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	fmt.Fprint(w, "<html><body>")
	if flusher != nil {
		flusher.Flush()
	}
	ticker := time.NewTicker(s.chaos.DripDelay)
	defer ticker.Stop()
	// Hard cap so an unattended connection cannot drip forever.
	for i := 0; i < 100000; i++ {
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
		fmt.Fprint(w, "<!-- drip -->")
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// malformedHeader speaks a response whose header section is not HTTP.
func (s *Server) malformedHeader(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	conn, buf, err := hj.Hijack()
	if err != nil {
		return
	}
	buf.WriteString("HTTP/1.1 200 OK\r\nthis header line has no colon\r\n\r\n<html></html>")
	buf.Flush()
	conn.Close()
}

// oversizedBody serves the site's real landing page followed by padding
// past the fetcher's MaxBodyBytes, forcing the body-truncation path
// while keeping the truncated prefix a complete, parseable document.
func (s *Server) oversizedBody(w http.ResponseWriter, site Site) {
	if site.PermissionsPolicy != "" {
		w.Header().Set("Permissions-Policy", site.PermissionsPolicy)
	}
	w.Header().Set("Content-Type", "text/html")
	fmt.Fprint(w, s.Config.RenderHTML(site))
	pad := strings.Repeat("<!-- padding padding padding -->", 1024) // 32 KiB
	written := 0
	for written < s.chaos.OversizeBytes {
		n, err := io.WriteString(w, pad)
		written += n
		if err != nil {
			return
		}
	}
}
