package synthweb

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Fault is one chaos-layer failure mode a synthetic host can exhibit on
// top of the polite site-fate taxonomy (SiteKind). Where SiteKind
// reproduces the paper's §4 outcome classes, faults reproduce the
// hostile server behaviours a production crawl meets on the way there:
// connections that die mid-body, servers that drip bytes forever,
// responses the HTTP client cannot parse, redirect cycles, origins that
// flap, and bodies that never end.
type Fault uint8

const (
	FaultNone Fault = iota
	// FaultReset closes the connection with a TCP RST mid-body.
	FaultReset
	// FaultSlowLoris serves headers promptly and then drips the body a
	// few bytes at a time, slower than any reasonable page deadline.
	FaultSlowLoris
	// FaultMalformedHeader speaks a response whose header section does
	// not parse as HTTP.
	FaultMalformedHeader
	// FaultOversizedHeader serves a response header larger than the
	// client transport's response-header budget.
	FaultOversizedHeader
	// FaultRedirectLoop 302-redirects in a cycle until the client gives
	// up.
	FaultRedirectLoop
	// FaultFlap fails (RST) the first ChaosConfig.FlapFailures requests
	// to the host, then recovers — the retry/circuit-breaker exerciser.
	FaultFlap
	// FaultOversizedBody serves a body larger than the fetcher's
	// MaxBodyBytes, forcing the truncation path.
	FaultOversizedBody
)

// AllFaults lists every injectable fault kind.
var AllFaults = []Fault{
	FaultReset, FaultSlowLoris, FaultMalformedHeader, FaultOversizedHeader,
	FaultRedirectLoop, FaultFlap, FaultOversizedBody,
}

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultReset:
		return "reset"
	case FaultSlowLoris:
		return "slowloris"
	case FaultMalformedHeader:
		return "malformed-header"
	case FaultOversizedHeader:
		return "oversized-header"
	case FaultRedirectLoop:
		return "redirect-loop"
	case FaultFlap:
		return "flap"
	case FaultOversizedBody:
		return "oversized-body"
	}
	return "unknown"
}

// ParseFault resolves a fault name (the String form) back to its value.
func ParseFault(name string) (Fault, error) {
	for _, f := range append([]Fault{FaultNone}, AllFaults...) {
		if f.String() == name {
			return f, nil
		}
	}
	return FaultNone, fmt.Errorf("synthweb: unknown fault %q", name)
}

// ParseFaultList resolves a comma-separated fault-name list; an empty
// list means every kind.
func ParseFaultList(s string) ([]Fault, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []Fault
	for _, name := range strings.Split(s, ",") {
		f, err := ParseFault(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// ChaosConfig turns the synthetic web hostile. Fault assignment is
// deterministic per (Seed, host): the same population with the same
// chaos settings always fails the same way, so chaotic crawls stay
// reproducible and resumable.
type ChaosConfig struct {
	// Enabled switches the chaos layer on.
	Enabled bool
	// Seed decorrelates fault assignment from population generation; 0
	// reuses the population seed.
	Seed int64
	// SiteRate is the share of otherwise-healthy sites afflicted with a
	// random enabled fault.
	SiteRate float64
	// SubresourceRate is the share of shared widget/CDN hosts afflicted.
	// Subresource faults are always mid-body resets: a stateless,
	// order-independent failure, so a chaotic crawl's records do not
	// depend on visit scheduling (flapping or dripping shared hosts
	// would couple one site's record to its neighbours' timing).
	SubresourceRate float64
	// Kinds limits site faults to these kinds; empty means AllFaults.
	Kinds []Fault
	// FlapFailures is how many requests a flapping host fails before it
	// recovers (default 2).
	FlapFailures int
	// DripDelay is the slow-loris inter-chunk delay (default 40ms).
	DripDelay time.Duration
	// OversizeBytes is the FaultOversizedBody body size (default 6 MiB,
	// above the fetcher's 4 MiB MaxBodyBytes default).
	OversizeBytes int
}

// DefaultChaosConfig returns a chaos layer calibrated so every fault
// kind appears in a few-hundred-site population without drowning the
// healthy measurement.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		Enabled:         true,
		SiteRate:        0.08,
		SubresourceRate: 0.10,
		FlapFailures:    2,
		DripDelay:       40 * time.Millisecond,
		OversizeBytes:   6 << 20,
	}
}

// withDefaults fills unset tuning fields.
func (cc ChaosConfig) withDefaults(populationSeed int64) ChaosConfig {
	if cc.Seed == 0 {
		cc.Seed = populationSeed
	}
	if cc.FlapFailures <= 0 {
		cc.FlapFailures = 2
	}
	if cc.DripDelay <= 0 {
		cc.DripDelay = 40 * time.Millisecond
	}
	if cc.OversizeBytes <= 0 {
		cc.OversizeBytes = 6 << 20
	}
	return cc
}

// kinds returns the enabled site-fault kinds, sorted for determinism.
func (cc ChaosConfig) kinds() []Fault {
	if len(cc.Kinds) == 0 {
		return AllFaults
	}
	out := append([]Fault(nil), cc.Kinds...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// hostFraction hashes a host into [0, 1) under the chaos seed —
// the deterministic coin for per-host subresource faults.
func hostFraction(seed int64, host string) float64 {
	z := uint64(seed) * 0x9E3779B97F4A7C15
	for i := 0; i < len(host); i++ {
		z = (z ^ uint64(host[i])) * 0x100000001B3
	}
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// SubresourceFault reports the fault (if any) for a shared widget/CDN
// host. Always FaultReset — see ChaosConfig.SubresourceRate.
func (cc ChaosConfig) SubresourceFault(populationSeed int64, host string) Fault {
	if !cc.Enabled || cc.SubresourceRate <= 0 {
		return FaultNone
	}
	cc = cc.withDefaults(populationSeed)
	if hostFraction(cc.Seed, host) < cc.SubresourceRate {
		return FaultReset
	}
	return FaultNone
}
