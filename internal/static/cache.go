package static

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"permodyssey/internal/lru"
)

// CacheStats is a point-in-time snapshot of Cache counters.
type CacheStats struct {
	// Hits are script bodies answered from the cache; Misses are real
	// pattern scans.
	Hits   uint64
	Misses uint64
	// Evictions are entries dropped to keep the cache under its cap.
	Evictions uint64
	// Entries is the number of distinct script bodies currently cached.
	Entries uint64
}

// Cache memoizes Analyzer.Analyze keyed by script content, mirroring
// script.ParseCache: the same third-party widget script is included by
// thousands of sites, and its pattern scan — a walk over the full
// registry — is identical every time. Findings depend on the source
// alone except for the ScriptURL attribution field, so entries are
// stored URL-less and stamped per caller.
//
// The cache is LRU-bounded (0 = unbounded) so one-off inline scripts
// cannot grow it without limit across a multi-million-site crawl.
type Cache struct {
	analyzer *Analyzer

	mu      sync.Mutex
	entries *lru.Cache[[sha256.Size]byte, []Finding]

	hits, misses, evictions atomic.Uint64
}

// NewCache wraps analyzer with a findings cache holding at most
// maxEntries distinct script bodies (<= 0 = unbounded). A nil analyzer
// gets a fresh one over the full registry.
func NewCache(analyzer *Analyzer, maxEntries int) *Cache {
	if analyzer == nil {
		analyzer = NewAnalyzer()
	}
	return &Cache{
		analyzer: analyzer,
		entries:  lru.New[[sha256.Size]byte, []Finding](maxEntries),
	}
}

// Analyze returns the findings for src, scanning it on first sight and
// stamping scriptURL onto the (shared, otherwise read-only) results.
func (c *Cache) Analyze(src, scriptURL string) []Finding {
	sum := sha256.Sum256([]byte(src))
	c.mu.Lock()
	cached, ok := c.entries.Get(sum)
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		cached = c.analyzer.Analyze(src, "")
		c.mu.Lock()
		if _, _, _, _, evicted := c.entries.Add(sum, cached); evicted {
			c.evictions.Add(1)
		}
		c.mu.Unlock()
	} else {
		c.hits.Add(1)
	}
	if len(cached) == 0 {
		return nil
	}
	out := make([]Finding, len(cached))
	copy(out, cached)
	for i := range out {
		out[i].ScriptURL = scriptURL
	}
	return out
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	entries := uint64(c.entries.Len())
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
	}
}
