package static

import (
	"strings"
	"testing"
)

func TestAnalyzeFindsPermissionAPIs(t *testing.T) {
	a := NewAnalyzer()
	src := `
	navigator.mediaDevices.getUserMedia({video: true});
	navigator.geolocation.getCurrentPosition(ok, err);
	navigator.clipboard.writeText(link);
	document.browsingTopics().then(use);
	`
	fs := a.Analyze(src, "https://cdn.example/app.js")
	perms := Permissions(fs)
	joined := strings.Join(perms, ",")
	for _, want := range []string{"camera", "microphone", "geolocation", "clipboard-write", "browsing-topics"} {
		if !strings.Contains(joined, want) {
			t.Errorf("permissions %v missing %s", perms, want)
		}
	}
	for _, f := range fs {
		if f.ScriptURL != "https://cdn.example/app.js" {
			t.Errorf("script attribution: %+v", f)
		}
	}
}

func TestAnalyzeGeneralAPIs(t *testing.T) {
	a := NewAnalyzer()
	fs := a.Analyze(`if (document.featurePolicy.allowsFeature('camera')) { go(); }`, "")
	if !HasGeneralAPI(fs) {
		t.Fatal("featurePolicy API must be a general finding")
	}
	var found Finding
	for _, f := range fs {
		if f.General && strings.Contains(f.Pattern, "allowsFeature") {
			found = f
		}
	}
	if !found.Deprecated || !found.StatusCheck {
		t.Errorf("featurePolicy.allowsFeature flags: %+v", found)
	}
}

func TestLongestPatternWins(t *testing.T) {
	a := NewAnalyzer()
	fs := a.Analyze(`navigator.permissions.query({name:'midi'})`, "")
	var patterns []string
	for _, f := range fs {
		patterns = append(patterns, f.Pattern)
	}
	joined := strings.Join(patterns, "|")
	if !strings.Contains(joined, "navigator.permissions.query") {
		t.Errorf("patterns: %v", patterns)
	}
}

func TestFirstOccurrenceOnly(t *testing.T) {
	a := NewAnalyzer()
	src := strings.Repeat("navigator.getBattery();\n", 50)
	fs := a.Analyze(src, "")
	count := 0
	for _, f := range fs {
		if f.Permission == "battery" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("battery findings: %d; want 1 (first occurrence only)", count)
	}
}

func TestObfuscationLimitation(t *testing.T) {
	// §4.1.3: string matching "does not account for variable assignments,
	// aliases, or other syntactic variations". The obfuscated form below
	// calls getUserMedia at runtime but must NOT be found statically —
	// that asymmetry is the paper's motivation for the hybrid approach.
	a := NewAnalyzer()
	obfuscated := `
	var n = window['navi' + 'gator'];
	var m = n['mediaDevi' + 'ces'];
	m['getUser' + 'Media']({video: true});
	`
	fs := a.Analyze(obfuscated, "")
	for _, f := range fs {
		if f.Permission == "camera" || f.Permission == "microphone" {
			t.Errorf("static analysis should miss the obfuscated call: %+v", f)
		}
	}
}

func TestDeadCodeIsStillReported(t *testing.T) {
	// The paper's other static limitation: dead code that never runs is
	// still reported (a source of over-reporting relative to dynamic).
	a := NewAnalyzer()
	fs := a.Analyze(`if (false) { navigator.geolocation.getCurrentPosition(f); }`, "")
	if len(Permissions(fs)) == 0 {
		t.Error("dead-code matches are expected (documented over-report)")
	}
}

func TestEmptyAndCleanScripts(t *testing.T) {
	a := NewAnalyzer()
	if fs := a.Analyze("", ""); len(fs) != 0 {
		t.Errorf("empty script: %v", fs)
	}
	if fs := a.Analyze("console.log('hello'); var x = 1 + 2;", ""); len(fs) != 0 {
		t.Errorf("clean script: %v", fs)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	a := NewAnalyzer()
	src := strings.Repeat("var x = compute(); // filler line\n", 200) +
		"navigator.permissions.query({name:'camera'});\n" +
		"document.featurePolicy.allowedFeatures();\n"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Analyze(src, "bench.js")
	}
}
