// Package static implements the paper's static permission analysis
// (§3.1.1): string matching of permission-related Web-API expressions in
// the scripts a website loads, including inline and dynamically created
// scripts. It identifies functionality that may be hidden behind user
// interaction, at the cost of missing aliased or obfuscated calls
// (§4.1.3) — a limitation the tests document deliberately.
package static

import (
	"sort"
	"strings"

	"permodyssey/internal/permissions"
)

// Finding records one matched pattern in one script.
type Finding struct {
	// Permission is the permission the pattern belongs to; empty for
	// General Permission API matches.
	Permission string
	// Pattern is the API expression that matched.
	Pattern string
	// General marks General Permission API findings.
	General bool
	// Deprecated marks Feature-Policy-era API names.
	Deprecated bool
	// StatusCheck marks status-querying general APIs.
	StatusCheck bool
	// ScriptURL is the script's URL ("" for inline scripts).
	ScriptURL string
}

// Analyzer matches permission API patterns in script sources. Build one
// with NewAnalyzer and reuse it: the pattern table is immutable.
type Analyzer struct {
	patterns []patternEntry
}

type patternEntry struct {
	pattern    string
	permission string
	general    bool
	deprecated bool
	status     bool
}

// NewAnalyzer builds an analyzer over the full registry (Appendix A.4)
// plus the General Permission APIs.
func NewAnalyzer() *Analyzer {
	a := &Analyzer{}
	for _, p := range permissions.All() {
		for _, api := range p.APIs {
			a.patterns = append(a.patterns, patternEntry{pattern: api, permission: p.Name})
		}
	}
	for _, g := range permissions.GeneralAPIs {
		a.patterns = append(a.patterns, patternEntry{
			pattern: g.Expr, general: true, deprecated: g.Deprecated, status: g.StatusCheck,
		})
	}
	// Longest pattern first so "navigator.permissions.query" wins over
	// the bare "navigator.permissions".
	sort.SliceStable(a.patterns, func(i, j int) bool {
		return len(a.patterns[i].pattern) > len(a.patterns[j].pattern)
	})
	return a
}

// Analyze matches all patterns in one script source. Each pattern
// produces at most one finding per script (the paper counts first
// occurrences only).
func (a *Analyzer) Analyze(src, scriptURL string) []Finding {
	var out []Finding
	claimed := map[string]bool{} // permission or pattern already reported
	for _, e := range a.patterns {
		if !strings.Contains(src, e.pattern) {
			continue
		}
		key := e.permission
		if e.general {
			key = "general:" + e.pattern
		}
		if claimed[key] {
			continue
		}
		claimed[key] = true
		out = append(out, Finding{
			Permission:  e.permission,
			Pattern:     e.pattern,
			General:     e.general,
			Deprecated:  e.deprecated,
			StatusCheck: e.status,
			ScriptURL:   scriptURL,
		})
	}
	return out
}

// Permissions extracts the distinct permission names from findings.
func Permissions(fs []Finding) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range fs {
		if f.Permission == "" || seen[f.Permission] {
			continue
		}
		seen[f.Permission] = true
		out = append(out, f.Permission)
	}
	sort.Strings(out)
	return out
}

// HasGeneralAPI reports whether any finding is a General Permission API.
func HasGeneralAPI(fs []Finding) bool {
	for _, f := range fs {
		if f.General {
			return true
		}
	}
	return false
}
