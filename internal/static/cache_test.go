package static

import (
	"fmt"
	"testing"
)

// TestCacheMemoizesByContent: the second scan of an identical script is
// a hit, and findings carry each caller's own URL attribution.
func TestCacheMemoizesByContent(t *testing.T) {
	c := NewCache(nil, 0)
	src := "navigator.geolocation.getCurrentPosition(cb);"

	a := c.Analyze(src, "https://cdn-a.test/lib.js")
	b := c.Analyze(src, "https://cdn-b.test/lib.js")
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("geolocation pattern not found")
	}
	if a[0].ScriptURL != "https://cdn-a.test/lib.js" || b[0].ScriptURL != "https://cdn-b.test/lib.js" {
		t.Fatalf("ScriptURL attribution leaked between callers: %q / %q", a[0].ScriptURL, b[0].ScriptURL)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("want 1 hit / 1 miss, got %+v", s)
	}

	// Mutating one caller's findings must not corrupt the shared entry.
	a[0].ScriptURL = "mutated"
	if again := c.Analyze(src, "https://cdn-c.test/lib.js"); again[0].ScriptURL != "https://cdn-c.test/lib.js" {
		t.Fatalf("shared cache entry was mutated: %q", again[0].ScriptURL)
	}
}

// TestCacheCleanScript: scripts with no findings are cached too.
func TestCacheCleanScript(t *testing.T) {
	c := NewCache(nil, 0)
	for i := 0; i < 2; i++ {
		if got := c.Analyze("var a = 1;", "https://x.test/a.js"); got != nil {
			t.Fatalf("clean script produced findings: %v", got)
		}
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("want 1 hit / 1 miss for clean script, got %+v", s)
	}
}

// TestCacheEviction: the bound holds and evicted scripts re-scan.
func TestCacheEviction(t *testing.T) {
	c := NewCache(nil, 2)
	src := func(i int) string {
		return fmt.Sprintf("var v%d = %d; navigator.geolocation.getCurrentPosition(cb);", i, i)
	}
	for i := 0; i < 3; i++ {
		c.Analyze(src(i), "https://x.test/a.js")
	}
	s := c.Stats()
	if s.Entries != 2 || s.Evictions != 1 {
		t.Fatalf("want 2 entries and 1 eviction, got %+v", s)
	}
	c.Analyze(src(0), "https://x.test/a.js")
	if got := c.Stats(); got.Misses != 4 {
		t.Fatalf("evicted script should re-scan (4 misses), got %+v", got)
	}
}
