// Package permissions is the registry of browser permissions (the
// specification calls them "features"; the paper calls everything a
// permission). For each permission it records the characteristics the
// study relies on:
//
//   - whether the permission is policy-controlled (has an allowlist that
//     the Permissions-Policy header and iframe allow attribute govern);
//   - its default allowlist (self or *), per the individual feature
//     specifications;
//   - whether it is a powerful feature (requires explicit user consent,
//     usually via a prompt);
//   - the Web-API surface associated with it, used both by the static
//     analyzer (string matching, §3.1.1) and the dynamic instrumentation
//     (§3.1.1, Figure 1);
//   - a coarse purpose category matching the grouping of §4.2.1.
//
// The registry covers the complete instrumented list of Appendix A.4 plus
// the User-Agent Client-Hints features that dominate embedded-document
// headers (§4.3.2).
package permissions

import (
	"fmt"
	"sort"
	"strings"
)

// DefaultAllowlist is a permission's default allowlist as defined by its
// specification (§2.2.1 of the paper).
type DefaultAllowlist uint8

const (
	// DefaultNone marks permissions that are not policy-controlled; they
	// have no allowlist at all (paper Table 2: notifications, push).
	DefaultNone DefaultAllowlist = iota
	// DefaultSelf allows the permission only in same-origin contexts.
	DefaultSelf
	// DefaultAll ("*") allows the permission in all contexts, including
	// arbitrarily nested third-party iframes.
	DefaultAll
)

func (d DefaultAllowlist) String() string {
	switch d {
	case DefaultSelf:
		return "self"
	case DefaultAll:
		return "*"
	default:
		return "N/A"
	}
}

// Category is the coarse purpose grouping used in §4.2.1.
type Category uint8

const (
	CategoryOther Category = iota
	CategoryAds
	CategoryMedia
	CategorySensor
	CategoryCommunication
	CategoryPayment
	CategoryIdentity
	CategoryStorage
	CategoryInput
	CategoryDevice
	CategoryDisplay
	CategoryClientHints
)

var categoryNames = map[Category]string{
	CategoryOther:         "other",
	CategoryAds:           "ads",
	CategoryMedia:         "media",
	CategorySensor:        "sensor",
	CategoryCommunication: "communication",
	CategoryPayment:       "payment",
	CategoryIdentity:      "identity",
	CategoryStorage:       "storage",
	CategoryInput:         "input",
	CategoryDevice:        "device",
	CategoryDisplay:       "display",
	CategoryClientHints:   "client-hints",
}

func (c Category) String() string { return categoryNames[c] }

// Permission describes one entry of the registry.
type Permission struct {
	// Name is the policy token ("camera", "browsing-topics", ...). For
	// permissions that are not policy-controlled it is the conventional
	// permission name ("notifications").
	Name string
	// DisplayName is the human-readable name the paper's tables use
	// ("Browsing Topics", "Public Key Credentials Get").
	DisplayName string
	// Default is the default allowlist; DefaultNone for permissions that
	// are not policy-controlled.
	Default DefaultAllowlist
	// Powerful marks features that require explicit user consent.
	Powerful bool
	// Category is the purpose grouping of §4.2.1.
	Category Category
	// APIs are the Web-API expressions associated with this permission.
	// They double as the static-analysis string patterns and as the
	// dynamic instrumentation points.
	APIs []string
	// QueryName, when non-empty, is the name accepted by
	// navigator.permissions.query({name: ...}) for this permission.
	QueryName string
}

// PolicyControlled reports whether the permission has an allowlist.
func (p Permission) PolicyControlled() bool { return p.Default != DefaultNone }

// registry holds every known permission, keyed by Name.
var registry = map[string]Permission{}

// ordered keeps registration order for deterministic iteration.
var ordered []string

func register(p Permission) {
	if p.DisplayName == "" {
		p.DisplayName = titleize(p.Name)
	}
	if _, dup := registry[p.Name]; dup {
		panic(fmt.Sprintf("permissions: duplicate registration of %q", p.Name))
	}
	registry[p.Name] = p
	ordered = append(ordered, p.Name)
}

func titleize(name string) string {
	parts := strings.Split(name, "-")
	for i, p := range parts {
		if p == "" {
			continue
		}
		parts[i] = strings.ToUpper(p[:1]) + p[1:]
	}
	return strings.Join(parts, " ")
}

// Lookup returns the permission registered under name.
func Lookup(name string) (Permission, bool) {
	p, ok := registry[strings.ToLower(strings.TrimSpace(name))]
	return p, ok
}

// Known reports whether name is a registered permission token.
func Known(name string) bool {
	_, ok := Lookup(name)
	return ok
}

// All returns every registered permission in registration order.
func All() []Permission {
	out := make([]Permission, 0, len(ordered))
	for _, name := range ordered {
		out = append(out, registry[name])
	}
	return out
}

// PolicyControlledNames returns the sorted names of all policy-controlled
// permissions — the set a complete Permissions-Policy header must cover
// (§6.2: no measured website declared a directive for all of them).
func PolicyControlledNames() []string {
	var out []string
	for _, p := range registry {
		if p.PolicyControlled() {
			out = append(out, p.Name)
		}
	}
	sort.Strings(out)
	return out
}

// PowerfulNames returns the sorted names of all powerful permissions.
func PowerfulNames() []string {
	var out []string
	for _, p := range registry {
		if p.Powerful {
			out = append(out, p.Name)
		}
	}
	sort.Strings(out)
	return out
}

// ByQueryName resolves a navigator.permissions.query name to the
// registered permission (query names sometimes differ from policy
// tokens, e.g. query "notifications" ↔ Notification API).
func ByQueryName(name string) (Permission, bool) {
	name = strings.ToLower(strings.TrimSpace(name))
	for _, p := range registry {
		if p.QueryName == name {
			return p, true
		}
	}
	return Lookup(name)
}

func init() {
	// Sensors (tracking-relevant per §4.1.4).
	register(Permission{Name: "accelerometer", Default: DefaultSelf, Category: CategorySensor,
		APIs: []string{"new Accelerometer", "Accelerometer("}, QueryName: "accelerometer"})
	register(Permission{Name: "ambient-light-sensor", Default: DefaultSelf, Category: CategorySensor,
		APIs: []string{"new AmbientLightSensor", "AmbientLightSensor("}, QueryName: "ambient-light-sensor"})
	register(Permission{Name: "gyroscope", Default: DefaultSelf, Category: CategorySensor,
		APIs: []string{"new Gyroscope", "Gyroscope("}, QueryName: "gyroscope"})
	register(Permission{Name: "magnetometer", Default: DefaultSelf, Category: CategorySensor,
		APIs: []string{"new Magnetometer", "Magnetometer("}, QueryName: "magnetometer"})
	register(Permission{Name: "battery", Default: DefaultSelf, Category: CategorySensor,
		APIs: []string{"navigator.getBattery"}})
	register(Permission{Name: "compute-pressure", Default: DefaultSelf, Category: CategorySensor,
		APIs: []string{"new PressureObserver", "PressureObserver("}})

	// Media and display.
	register(Permission{Name: "camera", Default: DefaultSelf, Powerful: true, Category: CategoryMedia,
		APIs: []string{"navigator.mediaDevices.getUserMedia", "getUserMedia"}, QueryName: "camera"})
	register(Permission{Name: "microphone", Default: DefaultSelf, Powerful: true, Category: CategoryMedia,
		APIs: []string{"navigator.mediaDevices.getUserMedia", "getUserMedia"}, QueryName: "microphone"})
	register(Permission{Name: "display-capture", Default: DefaultSelf, Powerful: true, Category: CategoryMedia,
		APIs: []string{"navigator.mediaDevices.getDisplayMedia", "getDisplayMedia"}})
	register(Permission{Name: "autoplay", Default: DefaultSelf, Category: CategoryMedia,
		APIs: []string{"autoplay"}})
	register(Permission{Name: "encrypted-media", Default: DefaultSelf, Category: CategoryMedia,
		APIs: []string{"requestMediaKeySystemAccess"}})
	register(Permission{Name: "fullscreen", Default: DefaultSelf, Category: CategoryDisplay,
		APIs: []string{"requestFullscreen"}})
	register(Permission{Name: "picture-in-picture", Default: DefaultAll, Category: CategoryDisplay,
		APIs: []string{"requestPictureInPicture"}})
	register(Permission{Name: "screen-wake-lock", Default: DefaultSelf, Category: CategoryDisplay,
		APIs: []string{"navigator.wakeLock.request"}, QueryName: "screen-wake-lock"})
	register(Permission{Name: "system-wake-lock", Default: DefaultSelf, Category: CategoryDisplay,
		APIs: []string{"systemWakeLock"}})
	register(Permission{Name: "speaker-selection", Default: DefaultSelf, Category: CategoryMedia,
		APIs: []string{"selectAudioOutput", "setSinkId"}})
	register(Permission{Name: "vr", DisplayName: "VR", Default: DefaultSelf, Category: CategoryDisplay,
		APIs: []string{"getVRDisplays"}})
	register(Permission{Name: "xr-spatial-tracking", DisplayName: "XR Spatial Tracking",
		Default: DefaultSelf, Powerful: true, Category: CategoryDisplay,
		APIs: []string{"navigator.xr.requestSession"}})

	// Location and communication.
	register(Permission{Name: "geolocation", Default: DefaultSelf, Powerful: true, Category: CategorySensor,
		APIs:      []string{"navigator.geolocation.getCurrentPosition", "navigator.geolocation.watchPosition"},
		QueryName: "geolocation"})
	register(Permission{Name: "notifications", Default: DefaultNone, Powerful: true, Category: CategoryCommunication,
		APIs: []string{"Notification.requestPermission", "new Notification"}, QueryName: "notifications"})
	register(Permission{Name: "push", Default: DefaultNone, Powerful: true, Category: CategoryCommunication,
		APIs: []string{"pushManager.subscribe"}, QueryName: "push"})
	register(Permission{Name: "web-share", Default: DefaultSelf, Category: CategoryCommunication,
		APIs: []string{"navigator.share", "navigator.canShare"}})

	// Clipboard and input.
	register(Permission{Name: "clipboard-read", Default: DefaultSelf, Powerful: true, Category: CategoryInput,
		APIs: []string{"navigator.clipboard.readText", "navigator.clipboard.read"}, QueryName: "clipboard-read"})
	register(Permission{Name: "clipboard-write", Default: DefaultSelf, Category: CategoryInput,
		APIs: []string{"navigator.clipboard.writeText", "navigator.clipboard.write"}, QueryName: "clipboard-write"})
	register(Permission{Name: "keyboard-lock", Default: DefaultSelf, Category: CategoryInput,
		APIs: []string{"navigator.keyboard.lock"}})
	register(Permission{Name: "keyboard-map", DisplayName: "keyboard-map", Default: DefaultSelf, Category: CategoryInput,
		APIs: []string{"navigator.keyboard.getLayoutMap"}})
	register(Permission{Name: "pointer-lock", Default: DefaultSelf, Category: CategoryInput,
		APIs: []string{"requestPointerLock"}})
	register(Permission{Name: "gamepad", Default: DefaultAll, Category: CategoryInput,
		APIs: []string{"navigator.getGamepads"}})
	register(Permission{Name: "local-fonts", Default: DefaultSelf, Powerful: true, Category: CategoryInput,
		APIs: []string{"queryLocalFonts"}, QueryName: "local-fonts"})
	register(Permission{Name: "idle-detection", Default: DefaultSelf, Powerful: true, Category: CategoryInput,
		APIs: []string{"new IdleDetector", "IdleDetector.requestPermission"}, QueryName: "idle-detection"})
	register(Permission{Name: "window-management", Default: DefaultSelf, Powerful: true, Category: CategoryDisplay,
		APIs: []string{"getScreenDetails"}, QueryName: "window-management"})

	// Devices.
	register(Permission{Name: "bluetooth", Default: DefaultSelf, Powerful: true, Category: CategoryDevice,
		APIs: []string{"navigator.bluetooth.requestDevice"}})
	register(Permission{Name: "usb", DisplayName: "USB", Default: DefaultSelf, Powerful: true, Category: CategoryDevice,
		APIs: []string{"navigator.usb.requestDevice"}})
	register(Permission{Name: "serial", Default: DefaultSelf, Powerful: true, Category: CategoryDevice,
		APIs: []string{"navigator.serial.requestPort"}})
	register(Permission{Name: "hid", DisplayName: "HID", Default: DefaultSelf, Powerful: true, Category: CategoryDevice,
		APIs: []string{"navigator.hid.requestDevice"}})
	register(Permission{Name: "midi", DisplayName: "MIDI", Default: DefaultSelf, Powerful: true, Category: CategoryDevice,
		APIs: []string{"navigator.requestMIDIAccess"}, QueryName: "midi"})
	register(Permission{Name: "direct-sockets", Default: DefaultSelf, Category: CategoryDevice,
		APIs: []string{"new TCPSocket", "new UDPSocket"}})

	// Storage and identity.
	register(Permission{Name: "storage-access", Default: DefaultAll, Powerful: true, Category: CategoryStorage,
		APIs: []string{"document.requestStorageAccess", "document.hasStorageAccess"}, QueryName: "storage-access"})
	register(Permission{Name: "top-level-storage-access", Default: DefaultSelf, Powerful: true, Category: CategoryStorage,
		APIs: []string{"document.requestStorageAccessFor"}, QueryName: "top-level-storage-access"})
	register(Permission{Name: "publickey-credentials-get", DisplayName: "Public Key Credentials Get",
		Default: DefaultSelf, Powerful: true, Category: CategoryIdentity,
		APIs: []string{"navigator.credentials.get"}})
	register(Permission{Name: "publickey-credentials-create", DisplayName: "Public Key Credentials Create",
		Default: DefaultSelf, Powerful: true, Category: CategoryIdentity,
		APIs: []string{"navigator.credentials.create"}})
	register(Permission{Name: "identity-credentials-get", Default: DefaultSelf, Category: CategoryIdentity,
		APIs: []string{"navigator.credentials.get"}})
	register(Permission{Name: "otp-credentials", DisplayName: "OTP Credentials", Default: DefaultSelf, Category: CategoryIdentity,
		APIs: []string{"OTPCredential"}})

	// Payment.
	register(Permission{Name: "payment", Default: DefaultSelf, Category: CategoryPayment,
		APIs: []string{"new PaymentRequest", "PaymentRequest("}, QueryName: "payment-handler"})

	// Advertising / Privacy-Sandbox.
	register(Permission{Name: "attribution-reporting", Default: DefaultAll, Category: CategoryAds,
		APIs: []string{"attributionReporting", "attributionsrc"}})
	register(Permission{Name: "browsing-topics", Default: DefaultAll, Category: CategoryAds,
		APIs: []string{"document.browsingTopics"}})
	register(Permission{Name: "run-ad-auction", Default: DefaultAll, Category: CategoryAds,
		APIs: []string{"navigator.runAdAuction"}})
	register(Permission{Name: "join-ad-interest-group", Default: DefaultAll, Category: CategoryAds,
		APIs: []string{"navigator.joinAdInterestGroup"}})
	register(Permission{Name: "interest-cohort", Default: DefaultAll, Category: CategoryAds,
		APIs: []string{"document.interestCohort"}})
	register(Permission{Name: "private-state-token-issuance", Default: DefaultSelf, Category: CategoryAds,
		APIs: []string{"hasPrivateToken"}})

	// Misc platform features.
	register(Permission{Name: "sync-xhr", DisplayName: "sync-xhr", Default: DefaultAll, Category: CategoryOther,
		APIs: []string{"XMLHttpRequest"}})
	register(Permission{Name: "cross-origin-isolated", Default: DefaultSelf, Category: CategoryOther,
		APIs: []string{"crossOriginIsolated"}})

	// User-Agent Client Hints: the nine most prevalent embedded-document
	// header directives (§4.3.2). All default to self per the UA-CH spec.
	for _, hint := range []string{
		"ch-ua", "ch-ua-arch", "ch-ua-bitness", "ch-ua-full-version",
		"ch-ua-full-version-list", "ch-ua-mobile", "ch-ua-model",
		"ch-ua-platform", "ch-ua-platform-version", "ch-ua-wow64",
	} {
		register(Permission{Name: hint, DisplayName: strings.ToUpper(hint[:5]) + hint[5:],
			Default: DefaultSelf, Category: CategoryClientHints,
			APIs: []string{"navigator.userAgentData"}})
	}
}
