package permissions

import (
	"strings"
	"testing"
)

func TestTable2Characteristics(t *testing.T) {
	// Paper Table 2: Example of Permissions Characteristics.
	tests := []struct {
		name             string
		powerful         bool
		policyControlled bool
		def              string
	}{
		{"camera", true, true, "self"},
		{"geolocation", true, true, "self"},
		{"gamepad", false, true, "*"},
		{"notifications", true, false, "N/A"},
		{"push", true, false, "N/A"},
	}
	for _, tt := range tests {
		p, ok := Lookup(tt.name)
		if !ok {
			t.Fatalf("Lookup(%q): not registered", tt.name)
		}
		if p.Powerful != tt.powerful {
			t.Errorf("%s: Powerful = %v; want %v", tt.name, p.Powerful, tt.powerful)
		}
		if p.PolicyControlled() != tt.policyControlled {
			t.Errorf("%s: PolicyControlled = %v; want %v", tt.name, p.PolicyControlled(), tt.policyControlled)
		}
		if got := p.Default.String(); got != tt.def {
			t.Errorf("%s: Default = %q; want %q", tt.name, got, tt.def)
		}
	}
}

func TestAppendixA4Coverage(t *testing.T) {
	// Every permission listed in Appendix A.4 must be registered.
	a4 := []string{
		"accelerometer", "ambient-light-sensor", "battery", "bluetooth",
		"browsing-topics", "camera", "clipboard-read", "clipboard-write",
		"compute-pressure", "direct-sockets", "display-capture",
		"encrypted-media", "gamepad", "geolocation", "gyroscope", "hid",
		"idle-detection", "keyboard-lock", "keyboard-map", "local-fonts",
		"magnetometer", "microphone", "midi", "notifications", "payment",
		"pointer-lock", "publickey-credentials-create",
		"publickey-credentials-get", "push", "screen-wake-lock", "serial",
		"speaker-selection", "storage-access", "system-wake-lock",
		"top-level-storage-access", "usb", "web-share",
		"window-management", "xr-spatial-tracking",
	}
	for _, name := range a4 {
		if !Known(name) {
			t.Errorf("Appendix A.4 permission %q not registered", name)
		}
	}
}

func TestLookupNormalization(t *testing.T) {
	if _, ok := Lookup(" Camera "); !ok {
		t.Error("Lookup should normalize case and whitespace")
	}
	if Known("no-such-permission") {
		t.Error("unknown token must not be Known")
	}
}

func TestDisplayNames(t *testing.T) {
	tests := map[string]string{
		"browsing-topics":           "Browsing Topics",
		"publickey-credentials-get": "Public Key Credentials Get",
		"battery":                   "Battery",
		"usb":                       "USB",
		"midi":                      "MIDI",
		"keyboard-map":              "keyboard-map",
		"encrypted-media":           "Encrypted Media",
	}
	for name, want := range tests {
		p, _ := Lookup(name)
		if p.DisplayName != want {
			t.Errorf("%s: DisplayName = %q; want %q", name, p.DisplayName, want)
		}
	}
}

func TestRegistryInvariants(t *testing.T) {
	all := All()
	if len(all) < 49 {
		t.Fatalf("registry too small: %d entries", len(all))
	}
	for _, p := range all {
		if p.Name == "" || p.DisplayName == "" {
			t.Errorf("permission %+v missing names", p)
		}
		if p.Name != strings.ToLower(p.Name) {
			t.Errorf("%s: names must be lower-case tokens", p.Name)
		}
		if len(p.APIs) == 0 {
			t.Errorf("%s: no API patterns", p.Name)
		}
		if !p.PolicyControlled() && p.Default != DefaultNone {
			t.Errorf("%s: inconsistent policy-control flags", p.Name)
		}
	}
	// Policy-controlled and not are both present.
	if len(PolicyControlledNames()) == 0 || len(PolicyControlledNames()) == len(all) {
		t.Error("expected a mix of policy-controlled and uncontrolled permissions")
	}
	if len(PowerfulNames()) == 0 {
		t.Error("expected powerful permissions")
	}
}

func TestByQueryName(t *testing.T) {
	p, ok := ByQueryName("camera")
	if !ok || p.Name != "camera" {
		t.Errorf("ByQueryName(camera) = %v, %v", p, ok)
	}
	p, ok = ByQueryName("payment-handler")
	if !ok || p.Name != "payment" {
		t.Errorf("ByQueryName(payment-handler) = %v, %v", p, ok)
	}
	if _, ok := ByQueryName("nonexistent"); ok {
		t.Error("unknown query name resolved")
	}
}

func TestSupportMatrix(t *testing.T) {
	// §2.2.6: only Chromium supports the Permissions-Policy header.
	if !Headers[Chromium].PermissionsPolicy {
		t.Error("Chromium must support the Permissions-Policy header")
	}
	if Headers[Firefox].PermissionsPolicy || Headers[Safari].PermissionsPolicy {
		t.Error("Firefox/Safari must not support the Permissions-Policy header")
	}
	for _, b := range Browsers {
		if !Headers[b].AllowAttribute {
			t.Errorf("%s: all major browsers partly support the allow attribute", b)
		}
	}
	// Chromium still enforces Feature-Policy as fallback.
	if !Headers[Chromium].FeaturePolicy {
		t.Error("Chromium enforces the deprecated Feature-Policy header")
	}
	// Spot checks.
	if !SupportedIn("camera", Chromium, 127) {
		t.Error("camera supported in Chromium 127")
	}
	if SupportedIn("camera", Chromium, 10) {
		t.Error("camera not supported in Chromium 10")
	}
	if SupportedIn("browsing-topics", Firefox, 130) {
		t.Error("Topics rejected by Mozilla (§4.1.1)")
	}
	if SupportedIn("interest-cohort", Chromium, 120) {
		t.Error("FLoC removed in Chromium 115")
	}
	if !SupportedIn("interest-cohort", Chromium, 100) {
		t.Error("FLoC was supported in Chromium 100")
	}
}

func TestSupportedPermissionsMonotonicity(t *testing.T) {
	// More permissions become available with newer versions (removal of
	// FLoC is the only exception; compare pre-FLoC versions).
	older := len(SupportedPermissions(Chromium, 60))
	newer := len(SupportedPermissions(Chromium, 88))
	if newer <= older {
		t.Errorf("support surface should grow: v60=%d v88=%d", older, newer)
	}
}

func TestChangesBetween(t *testing.T) {
	changes := ChangesBetween(Chromium, 88, 90)
	foundFloc := false
	for _, c := range changes {
		if c.Permission == "interest-cohort" && c.Kind == "added" && c.Version == 89 {
			foundFloc = true
		}
		if c.Version <= 88 || c.Version > 90 {
			t.Errorf("change outside window: %v", c)
		}
	}
	if !foundFloc {
		t.Error("expected interest-cohort addition at Chromium 89")
	}
	removal := ChangesBetween(Chromium, 114, 115)
	foundRemoval := false
	for _, c := range removal {
		if c.Permission == "interest-cohort" && c.Kind == "removed" {
			foundRemoval = true
		}
	}
	if !foundRemoval {
		t.Error("expected interest-cohort removal at Chromium 115")
	}
}

func TestFingerprintSurfaceDistinguishesVersions(t *testing.T) {
	// §4.1.1: permission lists can fingerprint browsers and versions.
	a := FingerprintSurface(Chromium, 100)
	b := FingerprintSurface(Chromium, 127)
	if len(a) == len(b) {
		t.Error("Chromium 100 and 127 should expose different surfaces")
	}
	c := FingerprintSurface(Firefox, 127)
	if len(c) >= len(b) {
		t.Error("Firefox surface should be smaller than Chromium's")
	}
}

func TestGeneralAPIs(t *testing.T) {
	g, ok := IsGeneralAPI("navigator.permissions.query")
	if !ok || !g.StatusCheck {
		t.Error("navigator.permissions.query is a status-checking general API")
	}
	g, ok = IsGeneralAPI("document.featurePolicy.allowedFeatures")
	if !ok || !g.Deprecated {
		t.Error("featurePolicy API is deprecated Feature Policy")
	}
	if _, ok := IsGeneralAPI("navigator.getBattery"); ok {
		t.Error("battery API is permission-specific, not general")
	}
	// Both deprecated and current names present (§6.2).
	var dep, cur int
	for _, g := range GeneralAPIs {
		if g.Deprecated {
			dep++
		} else {
			cur++
		}
	}
	if dep == 0 || cur == 0 {
		t.Error("need both Feature-Policy and Permissions-Policy API names")
	}
}
